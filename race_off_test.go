//go:build !race

package silc

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
