// Distance browsing: the paper's headline capability. A cursor streams
// objects in increasing network distance, paying only incremental cost per
// additional neighbor — the pattern behind "show me more results" in a
// mapping service. The example also traces progressive refinement, the
// mechanism that lets the cursor rank objects without computing exact
// distances it never needs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silc"
)

func main() {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{
		Rows: 40, Cols: 40, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	restaurants := make([]silc.VertexID, 60)
	for i := range restaurants {
		restaurants[i] = silc.VertexID(rng.Intn(net.NumVertices()))
	}
	objs := silc.NewObjectSet(net, restaurants)
	q := silc.VertexID(rng.Intn(net.NumVertices()))

	// Page 1: the first five restaurants.
	fmt.Printf("browsing restaurants from intersection %d:\n", q)
	cursor := ix.Browse(objs, q)
	for i := 0; i < 5; i++ {
		n, ok := cursor.Next()
		if !ok {
			break
		}
		fmt.Printf("  %2d. restaurant #%2d  %.4f away\n", i+1, n.ID, n.Dist)
	}

	// The user clicks "more": the cursor continues where it stopped —
	// no recomputation of the first page.
	fmt.Println("  --- more ---")
	for i := 5; i < 10; i++ {
		n, ok := cursor.Next()
		if !ok {
			break
		}
		fmt.Printf("  %2d. restaurant #%2d  %.4f away\n", i+1, n.ID, n.Dist)
	}

	// Under the hood: progressive refinement. Watch an interval tighten
	// hop by hop until exact.
	dest := restaurants[0]
	fmt.Printf("\nprogressive refinement of distance(%d, %d):\n", q, dest)
	r := ix.NewRefiner(q, dest)
	iv := r.Interval()
	fmt.Printf("  lookup:  [%.4f, %.4f]  width %.4f\n", iv.Lo, iv.Hi, iv.Hi-iv.Lo)
	for !r.Done() {
		r.Step()
		iv = r.Interval()
		if r.Steps()%5 == 0 || r.Done() {
			fmt.Printf("  step %2d: [%.4f, %.4f]  width %.4f\n",
				r.Steps(), iv.Lo, iv.Hi, iv.Hi-iv.Lo)
		}
	}
	fmt.Printf("exact after %d refinements: %.4f\n", r.Steps(), iv.Lo)

	// Distance comparison without exact distances: most comparisons
	// resolve after a handful of refinements.
	a, b := restaurants[1], restaurants[2]
	fmt.Printf("\nis #1 closer than #2 from %d? %v (exact: %.4f vs %.4f)\n",
		q, ix.IsCloser(q, a, b), ix.Distance(q, a), ix.Distance(q, b))
}
