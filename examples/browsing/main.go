// Distance browsing: the paper's headline capability. The Engine.Neighbors
// iterator streams objects in increasing network distance, paying only
// incremental cost per additional neighbor — the pattern behind "show me
// more results" in a mapping service; breaking out of the loop abandons the
// remaining work, and an ε option trades rank exactness for fewer
// refinements. The example also traces progressive refinement, the
// mechanism that lets the stream rank objects without computing exact
// distances it never needs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"silc"
)

func main() {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{
		Rows: 40, Cols: 40, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	restaurants := make([]silc.VertexID, 60)
	for i := range restaurants {
		restaurants[i] = silc.VertexID(rng.Intn(net.NumVertices()))
	}
	objs, err := silc.NewObjectSet(net, restaurants)
	if err != nil {
		log.Fatal(err)
	}
	q := silc.VertexID(rng.Intn(net.NumVertices()))
	eng := ix.Engine()
	ctx := context.Background()

	// The first ten restaurants, streamed lazily: the iterator performs
	// only the incremental search each additional neighbor needs, and
	// breaking out of the loop abandons the rest.
	fmt.Printf("browsing restaurants from intersection %d:\n", q)
	shown := 0
	for n, err := range eng.Neighbors(ctx, objs, q) {
		if err != nil {
			log.Fatal(err)
		}
		if shown == 5 {
			// The user clicked "more": the stream continues where it
			// stopped — no recomputation of the first page.
			fmt.Println("  --- more ---")
		}
		fmt.Printf("  %2d. restaurant #%2d  %.4f away\n", shown+1, n.ID, n.Dist)
		if shown++; shown == 10 {
			break
		}
	}

	// ε-approximate browsing: certify each rank only to within (1+ε),
	// trading a bounded distance error for fewer refinements.
	fmt.Println("\nsame stream with ε = 0.25 (distances certified within 1.25×):")
	shown = 0
	for n, err := range eng.Neighbors(ctx, objs, q, silc.WithEpsilon(0.25)) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d. restaurant #%2d  ~%.4f away  [%.4f, %.4f]\n",
			shown+1, n.ID, n.Dist, n.Interval.Lo, n.Interval.Hi)
		if shown++; shown == 5 {
			break
		}
	}

	// Under the hood: progressive refinement. Watch an interval tighten
	// hop by hop until exact.
	dest := restaurants[0]
	fmt.Printf("\nprogressive refinement of distance(%d, %d):\n", q, dest)
	r := ix.NewRefiner(q, dest)
	iv := r.Interval()
	fmt.Printf("  lookup:  [%.4f, %.4f]  width %.4f\n", iv.Lo, iv.Hi, iv.Hi-iv.Lo)
	for !r.Done() {
		r.Step()
		iv = r.Interval()
		if r.Steps()%5 == 0 || r.Done() {
			fmt.Printf("  step %2d: [%.4f, %.4f]  width %.4f\n",
				r.Steps(), iv.Lo, iv.Hi, iv.Hi-iv.Lo)
		}
	}
	fmt.Printf("exact after %d refinements: %.4f\n", r.Steps(), iv.Lo)

	// Distance comparison without exact distances: most comparisons
	// resolve after a handful of refinements.
	a, b := restaurants[1], restaurants[2]
	closer, err := eng.IsCloser(ctx, q, a, b)
	if err != nil {
		log.Fatal(err)
	}
	da, _ := eng.Distance(ctx, q, a)
	db, _ := eng.Distance(ctx, q, b)
	fmt.Printf("\nis #1 closer than #2 from %d? %v (exact: %.4f vs %.4f)\n",
		q, closer, da, db)
}
