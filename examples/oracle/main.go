// The path-coherent-pair distance oracle: the "Path Coherence Beyond SILC"
// idea from the paper's discussion. Far-apart regions of a road network
// share their shortest-path structure (everyone driving northeast-to-
// northwest takes the same interstate), so one representative distance per
// region pair answers millions of queries within a chosen relative error.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silc"
)

func main() {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{
		Rows: 32, Cols: 32, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	n := net.NumVertices()
	fmt.Printf("network: %d vertices (%d vertex pairs)\n\n", n, n*n)

	for _, eps := range []float64{0.5, 0.25, 0.1} {
		o, err := silc.BuildDistanceOracle(ix, eps)
		if err != nil {
			log.Fatal(err)
		}

		// Measure the worst observed error over random queries.
		rng := rand.New(rand.NewSource(1))
		worst := 0.0
		trials := 2000
		for i := 0; i < trials; i++ {
			u := silc.VertexID(rng.Intn(n))
			v := silc.VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			exact := ix.Distance(u, v)
			approx := o.Distance(u, v)
			if rel := abs(approx-exact) / exact; rel > worst {
				worst = rel
			}
		}
		fmt.Printf("eps=%.2f: %6d pairs (%5.1f%% of n^2), %7.1f KiB, worst error %.1f%% over %d queries\n",
			eps, o.NumPairs(), 100*float64(o.NumPairs())/float64(n*n),
			float64(o.SizeBytes())/1024, 100*worst, trials)
	}

	fmt.Println("\neach stored pair is a PCP dumbbell: every source in region A reaches")
	fmt.Println("every destination in region B through shared shortest-path structure,")
	fmt.Println("so one representative distance serves the whole A x B block.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
