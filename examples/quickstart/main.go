// Quickstart: build a network, precompute the SILC index, and answer
// network-distance queries — nearest neighbors, exact distances, and
// shortest paths — without any graph search at query time.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"silc"
)

func main() {
	// 1. A synthetic road network: a perturbed lattice with holes and
	// shortcuts, edge costs = road length with traffic noise.
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{
		Rows: 48, Cols: 48, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d intersections, %d road segments\n",
		net.NumVertices(), net.NumEdges()/2)

	// 2. Precompute the SILC index: one shortest-path quadtree per vertex.
	// This is the one-time cost that every later query amortizes.
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	fmt.Printf("index:   %d Morton blocks (%.1f per vertex, %.2f MiB) in %v\n\n",
		s.TotalBlocks, s.BlocksPerVertex(), float64(s.TotalBytes)/(1<<20), s.BuildTime)

	// 3. Scatter some points of interest (say, coffee shops) and a query
	// location. Object sets are independent of the index: swap them freely.
	// The constructor validates every vertex id at the API edge.
	rng := rand.New(rand.NewSource(42))
	shops := make([]silc.VertexID, 30)
	for i := range shops {
		shops[i] = silc.VertexID(rng.Intn(net.NumVertices()))
	}
	objs, err := silc.NewObjectSet(net, shops)
	if err != nil {
		log.Fatal(err)
	}
	home := silc.VertexID(rng.Intn(net.NumVertices()))

	// 4. The five nearest shops by driving distance, exact. All queries go
	// through the Engine handle: context-aware, error-returning, optioned.
	eng := ix.Engine()
	ctx := context.Background()
	res, err := eng.Query(ctx, objs, home, 5, silc.WithExactDistances())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 nearest shops to intersection %d (by network distance):\n", home)
	for i, n := range res.Neighbors {
		fmt.Printf("  %d. shop #%d at intersection %d — %.4f network, %.4f straight-line\n",
			i+1, n.ID, n.Vertex, n.Dist, net.Euclid(home, n.Vertex))
	}
	fmt.Printf("query cost: %d interval lookups, %d refinements, %v CPU\n\n",
		res.Stats.Lookups, res.Stats.Refinements, res.Stats.CPUTime)

	// 5. Exact distance and turn-by-turn path to the winner.
	best := res.Neighbors[0].Vertex
	d, err := eng.Distance(ctx, home, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distance home -> shop: %.4f\n", d)
	path, err := eng.ShortestPath(ctx, home, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route (%d hops): %v\n", len(path)-1, path)
}
