// The paper's motivating scenario (its "find the closest Kinko's" example):
// ranking stores by straight-line ("as the crow flies") distance gives a
// different — and wrong — answer than ranking by travel distance along the
// road network.
//
// This example builds a river town with a single bridge at its south end.
// The print shop directly across the river is a stone's throw away on the
// map, but reaching it means driving the whole riverbank twice. The SILC
// index produces the exact network ranking; the geodesic ranking misleads,
// exactly as in the paper's Pittsburgh figure (error: +26 miles).
package main

import (
	"context"
	"fmt"
	"log"

	"silc"
)

const (
	bankCols = 6  // street columns per river bank
	bankRows = 10 // street rows
)

// buildRiverTown constructs two street grids separated by a river, joined by
// one bridge at the southern end. Road costs are street lengths.
func buildRiverTown() (*silc.Network, func(bank, row, col int) silc.VertexID, error) {
	nb := silc.NewNetworkBuilder()
	ids := make([][2][]silc.VertexID, bankRows)
	xAt := func(bank, col int) float64 {
		if bank == 0 {
			return 0.05 + 0.074*float64(col) // west bank: x in [0.05, 0.42]
		}
		return 0.58 + 0.074*float64(col) // east bank: x in [0.58, 0.95]
	}
	for r := 0; r < bankRows; r++ {
		for bank := 0; bank < 2; bank++ {
			ids[r][bank] = make([]silc.VertexID, bankCols)
			for c := 0; c < bankCols; c++ {
				ids[r][bank][c] = nb.AddVertex(silc.Point{
					X: xAt(bank, c),
					Y: 0.05 + 0.1*float64(r),
				})
			}
		}
	}
	at := func(bank, row, col int) silc.VertexID { return ids[row][bank][col] }
	// Streets within each bank.
	for r := 0; r < bankRows; r++ {
		for bank := 0; bank < 2; bank++ {
			for c := 0; c < bankCols; c++ {
				if c+1 < bankCols {
					nb.AddRoad(at(bank, r, c), at(bank, r, c+1), 0.074)
				}
				if r+1 < bankRows {
					nb.AddRoad(at(bank, r, c), at(bank, r+1, c), 0.1)
				}
			}
		}
	}
	// The single bridge, at the south end (row 0).
	nb.AddRoad(at(0, 0, bankCols-1), at(1, 0, 0), 0.16)
	net, err := nb.Build()
	return net, at, err
}

func main() {
	net, at, err := buildRiverTown()
	if err != nil {
		log.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The customer: a piano store on the west bank, north, by the river.
	piano := at(0, 8, 5)

	// Five print shops, named as in the paper.
	names := []string{"Oakland", "Downtown", "North Hills", "Greentree", "Monroeville"}
	shopVertices := []silc.VertexID{
		at(1, 8, 0), // Oakland: just across the river — but no bridge here
		at(0, 5, 3), // Downtown: same bank, mid-town
		at(0, 9, 1), // North Hills: same bank, north-west
		at(1, 2, 3), // Greentree: east bank, south — near the bridge
		at(0, 0, 0), // Monroeville: same bank, far south-west corner
	}
	objs, err := silc.NewObjectSet(net, shopVertices)
	if err != nil {
		log.Fatal(err)
	}
	eng := ix.Engine()
	ctx := context.Background()
	roadDist := func(v silc.VertexID) float64 {
		d, err := eng.Distance(ctx, piano, v)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	fmt.Printf("river town: %d intersections, one bridge; query: piano store at %d\n\n",
		net.NumVertices(), piano)

	// Geodesic ranking (what a naive map service shows).
	geo := objs.NearestEuclidean(net.Point(piano), len(names))
	fmt.Println("ranking by straight-line distance (\"as the crow flies\"):")
	for i, id := range geo {
		v := objs.Vertex(id)
		fmt.Printf("  %d. %-12s %.3f straight-line, %.3f by road\n",
			i+1, names[id], net.Point(piano).Dist(net.Point(v)), roadDist(v))
	}

	// Network ranking (exact, via the SILC index).
	res, err := eng.Query(ctx, objs, piano, len(names), silc.WithExactDistances())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranking by network distance (SILC):")
	for i, n := range res.Neighbors {
		fmt.Printf("  %d. %-12s %.3f by road\n", i+1, names[n.ID], n.Dist)
	}

	geoBest := objs.Vertex(geo[0])
	netBest := res.Neighbors[0]
	if geoBest != netBest.Vertex {
		extra := roadDist(geoBest) - netBest.Dist
		fmt.Printf("\nthe geodesic ranking sends the customer to %s; the true closest is %s.\n",
			names[geo[0]], names[netBest.ID])
		fmt.Printf("extra driving distance: %.3f (%.0fx the best route — the paper's \"+26 miles\")\n",
			extra, roadDist(geoBest)/netBest.Dist)
	}

	// The route across the bridge, retrieved hop by hop from the quadtrees.
	path, err := eng.ShortestPath(ctx, piano, objs.Vertex(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute to Oakland crosses the bridge: %d hops for a %.3f crow-fly gap\n",
		len(path)-1, net.Point(piano).Dist(net.Point(objs.Vertex(0))))

	// The paper's comparison primitive, answered by progressive refinement.
	closer, err := eng.IsCloser(ctx, piano, shopVertices[1], shopVertices[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IsCloser(Downtown vs Oakland): %v\n", closer)
}
