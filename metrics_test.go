package silc

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// pagedTestEngine writes a grid index in the paged format and reopens it
// through a deliberately tiny buffer pool, so a query sweep is cold:
// misses, real page reads, block decodes, and evictions are all forced.
func pagedTestEngine(t *testing.T) (*Engine, *ObjectSet) {
	t.Helper()
	net, err := GenerateGrid(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var pg bytes.Buffer
	if _, err := ix.WritePaged(&pg); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenIndexAt(bytes.NewReader(pg.Bytes()), int64(pg.Len()), BuildOptions{CacheFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]VertexID, net.NumVertices())
	for i := range vs {
		vs[i] = VertexID(i)
	}
	objs, err := NewObjectSet(paged.Engine().Network(), vs)
	if err != nil {
		t.Fatal(err)
	}
	return paged.Engine(), objs
}

// TestMetricsColdScanCounts runs a deterministic sequential cold scan and
// checks the triple equality the observability layer promises: per-query
// stats sum to the pool-wide aggregates, and both match the folded
// Prometheus counters — with every storage counter (hits, misses, reads,
// evictions, decodes) nonzero under pressure.
func TestMetricsColdScanCounts(t *testing.T) {
	eng, objs := pagedTestEngine(t)
	tracker := eng.qx.Tracker()
	base := tracker.Stats()
	baseReads := eng.pager.ReadStats()

	var sum QueryStats
	const queries = 40
	for q := 0; q < queries; q++ {
		res, err := eng.Query(context.Background(), objs, VertexID(q*6), 5)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		sum.PageHits += s.PageHits
		sum.PageMisses += s.PageMisses
		sum.PageReads += s.PageReads
		sum.Evictions += s.Evictions
		sum.BlocksDecoded += s.BlocksDecoded
	}

	// Under a 5% pool every counter must have moved.
	if sum.PageMisses == 0 || sum.PageReads == 0 || sum.BlocksDecoded == 0 || sum.Evictions == 0 {
		t.Fatalf("cold scan left counters at zero: %+v", sum)
	}

	// Per-query sums == pool-wide deltas (the statsum invariant surfaced
	// through the engine).
	agg := tracker.Stats()
	if got := agg.Hits - base.Hits; got != sum.PageHits {
		t.Errorf("pool hits delta %d != per-query sum %d", got, sum.PageHits)
	}
	if got := agg.Misses - base.Misses; got != sum.PageMisses {
		t.Errorf("pool misses delta %d != per-query sum %d", got, sum.PageMisses)
	}
	if got := agg.Evictions - base.Evictions; got != sum.Evictions {
		t.Errorf("pool evictions delta %d != per-query sum %d", got, sum.Evictions)
	}
	reads := eng.pager.ReadStats()
	if got := reads.Reads - baseReads.Reads; got != sum.PageReads {
		t.Errorf("pager reads delta %d != per-query sum %d", got, sum.PageReads)
	}
	if got := reads.BlocksDecoded - baseReads.BlocksDecoded; got != sum.BlocksDecoded {
		t.Errorf("pager decodes delta %d != per-query sum %d", got, sum.BlocksDecoded)
	}

	// The folded Prometheus counters saw exactly the query-attributed
	// traffic (they start at zero on a fresh engine).
	m := eng.obs
	if got := m.queries[opKNN].Value(); got != queries {
		t.Errorf("queries_total{op=knn} = %d, want %d", got, queries)
	}
	if got := m.latency[opKNN].Count(); got != queries {
		t.Errorf("query_seconds count = %d, want %d", got, queries)
	}
	for _, c := range []struct {
		name string
		got  int64
		want int64
	}{
		{"page_hits", m.pageHits.Value(), sum.PageHits},
		{"page_misses", m.pageMisses.Value(), sum.PageMisses},
		{"page_reads", m.pageReads.Value(), sum.PageReads},
		{"evictions", m.evictions.Value(), sum.Evictions},
		{"blocks_decoded", m.blocksDecoded.Value(), sum.BlocksDecoded},
	} {
		if c.got != c.want {
			t.Errorf("folded %s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestShardedPagedIOStatsSum is the regression test for the IOStats doc
// fix: on a sharded paged engine one pool and one pager serve every cell
// store, so per-query stats must still sum to the engine-wide aggregates
// — and ResetIOStats must zero the read counters of ALL cell stores.
func TestShardedPagedIOStatsSum(t *testing.T) {
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var pg bytes.Buffer
	if _, err := sx.WritePaged(&pg); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenShardedIndexAt(bytes.NewReader(pg.Bytes()), int64(pg.Len()), ShardedBuildOptions{CacheFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	eng := opened.Engine()
	eng.ResetIOStats()

	vs := make([]VertexID, net.NumVertices())
	for i := range vs {
		vs[i] = VertexID(i)
	}
	objs, err := NewObjectSet(eng.Network(), vs)
	if err != nil {
		t.Fatal(err)
	}

	var sum QueryStats
	const queries = 30
	for q := 0; q < queries; q++ {
		res, err := eng.Query(context.Background(), objs, VertexID(q*4), 4)
		if err != nil {
			t.Fatal(err)
		}
		sum.PageHits += res.Stats.PageHits
		sum.PageMisses += res.Stats.PageMisses
		sum.PageReads += res.Stats.PageReads
	}
	if sum.PageMisses == 0 || sum.PageReads == 0 {
		t.Fatalf("sharded cold scan recorded no page traffic: %+v", sum)
	}
	io := eng.IOStats()
	if io.PageHits != sum.PageHits || io.PageMisses != sum.PageMisses {
		t.Errorf("IOStats pool {hits %d misses %d} != per-query sums {%d %d}",
			io.PageHits, io.PageMisses, sum.PageHits, sum.PageMisses)
	}
	if io.PageReads != sum.PageReads {
		t.Errorf("IOStats reads %d (all cell stores) != per-query sum %d", io.PageReads, sum.PageReads)
	}

	// ResetIOStats zeroes tracker and every cell store's read counters.
	eng.ResetIOStats()
	if after := eng.IOStats(); after.PageHits != 0 || after.PageMisses != 0 || after.PageReads != 0 {
		t.Errorf("ResetIOStats left counters: %+v", after)
	}
	// The monotone Prometheus counters survive the reset.
	if eng.obs.pageMisses.Value() == 0 {
		t.Error("Prometheus miss counter was reset alongside IOStats")
	}
}

// TestIndexResetIOStatsCoversPager is the regression test for the old
// Index.ResetIOStats inconsistency: it used to reset only the tracker,
// leaving the pager's read counters running.
func TestIndexResetIOStatsCoversPager(t *testing.T) {
	net, err := GenerateGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var pg bytes.Buffer
	if _, err := ix.WritePaged(&pg); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenIndexAt(bytes.NewReader(pg.Bytes()), int64(pg.Len()), BuildOptions{CacheFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	eng := paged.Engine()
	vs := []VertexID{0, 5, 9, 20, 33}
	objs, err := NewObjectSet(eng.Network(), vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(context.Background(), objs, 7, 3); err != nil {
		t.Fatal(err)
	}
	if eng.IOStats().PageReads == 0 {
		t.Fatal("cold query performed no reads; test is vacuous")
	}
	paged.ResetIOStats()
	if after := eng.IOStats(); after.PageReads != 0 || after.PageMisses != 0 {
		t.Fatalf("Index.ResetIOStats left pager/tracker counters: %+v", after)
	}
}

// TestWriteMetricsFamilies scrapes a loaded engine and checks the
// exposition is populated and well-formed at the family level.
func TestWriteMetricsFamilies(t *testing.T) {
	eng, objs := pagedTestEngine(t)
	eng.SetTracing(true)
	ctx := context.Background()
	for q := 0; q < 10; q++ {
		if _, err := eng.Query(ctx, objs, VertexID(q*17), 4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Distance(ctx, 3, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WithinDistance(ctx, objs, 9, 2.0); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := eng.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`silc_engine_queries_total{op="knn"} 10`,
		`silc_engine_queries_total{op="distance"} 1`,
		`silc_engine_queries_total{op="range"} 1`,
		`silc_engine_query_seconds_count{op="knn"} 10`,
		"silc_knn_refinements_total",
		"silc_knn_filter_seconds_total",
		"silc_diskio_pool_hits_total",
		`silc_diskio_shard_hits_total{shard="0"}`,
		`silc_store_page_reads_total{store="0",source="readat"}`,
		"silc_engine_inflight_queries 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteMetrics missing %q", want)
		}
	}
	for _, fam := range []string{
		"silc_engine_queries_total", "silc_engine_query_seconds",
		"silc_diskio_shard_hits_total", "silc_store_page_reads_total",
	} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s has %d TYPE headers, want 1", fam, n)
		}
	}
	// A second scrape must not re-register the dynamic series.
	var b2 bytes.Buffer
	if err := eng.WriteMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b2.String(), `silc_diskio_shard_hits_total{shard="0"}`); n != 1 {
		t.Errorf("shard series appears %d times after second scrape, want 1", n)
	}
}

// TestStatsOptionOnScalarQueries covers the new WithStats support on
// Distance, DistanceInterval, and ShortestPath.
func TestStatsOptionOnScalarQueries(t *testing.T) {
	net, err := GenerateGrid(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.Engine()
	eng.SetTracing(true)
	ctx := context.Background()

	var st QueryStats
	if _, err := eng.Distance(ctx, 0, 87, WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Method != "DISTANCE" || st.Refinements == 0 || st.CPUTime <= 0 {
		t.Errorf("Distance stats not filled: %+v", st)
	}

	st = QueryStats{}
	if _, err := eng.DistanceInterval(ctx, 0, 87, WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Method != "INTERVAL" || st.CPUTime <= 0 {
		t.Errorf("DistanceInterval stats not filled: %+v", st)
	}
	if st.Refinements != 0 {
		t.Errorf("DistanceInterval should not refine, got %d steps", st.Refinements)
	}

	// Monolithic path retrieval follows quadtree colors hop by hop — no
	// refiner steps — so only the method tag and clock are asserted.
	st = QueryStats{}
	if _, err := eng.ShortestPath(ctx, 0, 87, WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Method != "PATH" || st.CPUTime <= 0 {
		t.Errorf("ShortestPath stats not filled: %+v", st)
	}
	if eng.obs.queries[opPath].Value() != 1 || eng.obs.queries[opInterval].Value() != 1 {
		t.Error("per-op counters did not advance for path/interval")
	}
}

// TestBatchFoldsMetrics checks that batch workers — whose contexts bypass
// the engine pool — still fold their spans into the op="batch" series.
func TestBatchFoldsMetrics(t *testing.T) {
	eng, objs := pagedTestEngine(t)
	queries := make([]VertexID, 20)
	for i := range queries {
		queries[i] = VertexID(i * 11)
	}
	br, err := eng.QueryBatch(context.Background(), objs, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(queries) {
		t.Fatalf("batch returned %d results", len(br.Results))
	}
	if got := eng.obs.queries[opBatch].Value(); got != int64(len(queries)) {
		t.Errorf("queries_total{op=batch} = %d, want %d", got, len(queries))
	}
	if got := eng.obs.latency[opBatch].Count(); got != int64(len(queries)) {
		t.Errorf("batch latency count = %d, want %d", got, len(queries))
	}
	// The per-query page traffic folded into the engine counters too.
	var sum int64
	for _, r := range br.Results {
		sum += r.Stats.PageMisses
	}
	if sum == 0 {
		t.Fatal("batch cold scan missed nothing; test is vacuous")
	}
	if got := eng.obs.pageMisses.Value(); got != sum {
		t.Errorf("folded misses %d != batch per-query sum %d", got, sum)
	}
}
