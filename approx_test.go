package silc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"silc/internal/sssp"
)

// approxFixture is one generator family instantiated small enough for
// Floyd-Warshall ground truth.
type approxFixture struct {
	name string
	net  *Network
}

func approxFixtures(t *testing.T) []approxFixture {
	t.Helper()
	road, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 11, Cols: 11, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := GenerateGrid(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := GenerateRingRadial(5, 14, 7)
	if err != nil {
		t.Fatal(err)
	}
	return []approxFixture{{"road", road}, {"grid", grid}, {"ring", ring}}
}

// TestEpsilonApproximationBound is the ε property test: on every generator
// family and on both engines, every neighbor reported under WithEpsilon(ε)
// carries a distance within (1+ε)× of the Floyd-Warshall ground truth —
// both per pair (reported ≤ true ≤ (1+ε)·reported) and per rank (the i-th
// reported neighbor's true distance ≤ (1+ε) × the true i-th-nearest
// distance) — and total refinement work drops monotonically as ε grows.
func TestEpsilonApproximationBound(t *testing.T) {
	epsilons := []float64{0, 0.05, 0.25, 1.0, 4.0}
	const k = 8

	for _, fx := range approxFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			net := fx.net
			n := net.NumVertices()
			truth := sssp.FloydWarshall(net.g)

			rng := rand.New(rand.NewSource(9))
			perm := rng.Perm(n)
			vertices := make([]VertexID, n/4+2)
			for i := range vertices {
				vertices[i] = VertexID(perm[i])
			}
			objs := mustObjects(t, net, vertices)

			// True sorted object distances per query, for the rank bound.
			queries := make([]VertexID, 12)
			for i := range queries {
				queries[i] = VertexID(rng.Intn(n))
			}

			mono, err := BuildIndex(net, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 4})
			if err != nil {
				t.Fatal(err)
			}

			for _, tc := range []struct {
				tag string
				eng *Engine
			}{{"mono", mono.Engine()}, {"sharded", sharded.Engine()}} {
				prevRefs := math.MaxInt64
				for _, eps := range epsilons {
					totalRefs := 0
					for _, q := range queries {
						res, err := tc.eng.Query(context.Background(), objs, q, k, WithEpsilon(eps))
						if err != nil {
							t.Fatal(err)
						}
						if len(res.Neighbors) != k {
							t.Fatalf("%s ε=%v q=%d: %d neighbors, want %d", tc.tag, eps, q, len(res.Neighbors), k)
						}
						totalRefs += res.Stats.Refinements

						// Per-pair bounds. Tolerance matches the index's
						// storage precision: Morton blocks keep λ bounds as
						// float32, so even "exact" interval collapses carry
						// ~1e-7 relative noise against float64
						// Floyd-Warshall. ε = 0 promises exact ranking with
						// an interval containing the truth (Dist is its
						// lower bound); ε > 0 additionally promises
						// reported ≤ true ≤ (1+ε)·reported.
						for _, nb := range res.Neighbors {
							want := truth[q][nb.Vertex]
							tol := 1e-6 * (1 + want)
							if nb.Dist > want+tol {
								t.Fatalf("%s ε=%v q=%d: reported %v exceeds truth %v for vertex %d",
									tc.tag, eps, q, nb.Dist, want, nb.Vertex)
							}
							if nb.Interval.Hi < want-tol {
								t.Fatalf("%s ε=%v q=%d: interval [%v,%v] misses truth %v for vertex %d",
									tc.tag, eps, q, nb.Interval.Lo, nb.Interval.Hi, want, nb.Vertex)
							}
							if eps > 0 && want > (1+eps)*nb.Dist+tol {
								t.Fatalf("%s ε=%v q=%d: truth %v exceeds (1+ε)·reported %v for vertex %d",
									tc.tag, eps, q, want, (1+eps)*nb.Dist, nb.Vertex)
							}
						}

						// Rank bound: the i-th report's true distance is within
						// (1+ε)× of the true i-th nearest object distance
						// (exact match of the sorted prefix at ε = 0).
						sorted := make([]float64, 0, objs.Len())
						for id := int32(0); id < int32(objs.Len()); id++ {
							sorted = append(sorted, truth[q][objs.Vertex(id)])
						}
						sortFloats(sorted)
						for i, nb := range res.Neighbors {
							trueAtPair := truth[q][nb.Vertex]
							tol := 1e-6 * (1 + sorted[i])
							if trueAtPair > (1+eps)*sorted[i]+tol {
								t.Fatalf("%s ε=%v q=%d rank %d: true %v exceeds (1+ε)×%v",
									tc.tag, eps, q, i, trueAtPair, sorted[i])
							}
						}
					}
					// Refinement work decreases monotonically across the
					// ε > 0 ladder. (ε = 0 is a different contract — exact
					// ranks certified by interval separation alone — so it
					// is excluded from the chain.)
					if eps > 0 {
						if totalRefs > prevRefs {
							t.Fatalf("%s: refinements increased from %d to %d as ε grew to %v",
								tc.tag, prevRefs, totalRefs, eps)
						}
						prevRefs = totalRefs
					}
				}
			}
		})
	}
}

// TestEpsilonNeighborsStream checks the ε bound through the iterator
// surface, including that ε = 0 streams exact distances.
func TestEpsilonNeighborsStream(t *testing.T) {
	net, engines := engineFixtures(t)
	truth := sssp.FloydWarshall(net.g)
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 30)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)
	q := VertexID(perm[35])

	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]
		for _, eps := range []float64{0, 0.3} {
			count, prev := 0, -1.0
			for nb, err := range eng.Neighbors(context.Background(), objs, q, WithEpsilon(eps)) {
				if err != nil {
					t.Fatalf("%s ε=%v: %v", tag, eps, err)
				}
				want := truth[q][nb.Vertex]
				tol := 1e-9 * (1 + want)
				if eps == 0 {
					if !nb.Exact || math.Abs(nb.Dist-want) > tol {
						t.Fatalf("%s ε=0: dist %v (exact=%v) vs truth %v", tag, nb.Dist, nb.Exact, want)
					}
				} else if nb.Dist > want+tol || want > (1+eps)*nb.Dist+tol {
					t.Fatalf("%s ε=%v: dist %v outside [%v/(1+ε), %v]", tag, eps, nb.Dist, want, want)
				}
				if nb.Dist < prev {
					t.Fatalf("%s ε=%v: stream not ascending (%v after %v)", tag, eps, nb.Dist, prev)
				}
				prev = nb.Dist
				count++
			}
			if count != objs.Len() {
				t.Fatalf("%s ε=%v: streamed %d of %d objects", tag, eps, count, objs.Len())
			}
		}
	}
}

// TestHybridMaxDistance cross-checks WithMaxDistance against the range
// query and ground truth: up to k neighbors, every one within the bound,
// and none missing while closer eligible objects exist.
func TestHybridMaxDistance(t *testing.T) {
	net, engines := engineFixtures(t)
	truth := sssp.FloydWarshall(net.g)
	rng := rand.New(rand.NewSource(13))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 40)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)
	ctx := context.Background()

	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]
		for _, q := range []VertexID{VertexID(perm[41]), VertexID(perm[42])} {
			for _, radius := range []float64{0.15, 0.4, 0.8} {
				for _, method := range []Method{MethodKNN, MethodINN, MethodINE} {
					const k = 6
					res, err := eng.Query(ctx, objs, q, k,
						WithMethod(method), WithMaxDistance(radius), WithExactDistances())
					if err != nil {
						t.Fatal(err)
					}
					// Ground truth: object distances ≤ radius, ascending.
					var want []float64
					for id := int32(0); id < int32(objs.Len()); id++ {
						if d := truth[q][objs.Vertex(id)]; d <= radius {
							want = append(want, d)
						}
					}
					sortFloats(want)
					if len(want) > k {
						want = want[:k]
					}
					if len(res.Neighbors) != len(want) {
						t.Fatalf("%s %s q=%d r=%v: %d neighbors, want %d",
							tag, method, q, radius, len(res.Neighbors), len(want))
					}
					for i, nb := range res.Neighbors {
						if nb.Dist > radius+1e-9 {
							t.Fatalf("%s %s: neighbor beyond bound: %v > %v", tag, method, nb.Dist, radius)
						}
						if math.Abs(nb.Dist-want[i]) > 1e-9*(1+want[i]) {
							t.Fatalf("%s %s rank %d: dist %v, want %v", tag, method, i, nb.Dist, want[i])
						}
					}
				}
			}
		}
	}
}

// TestMaxDistanceZeroIsARealBound locks in that WithMaxDistance(0) bounds
// results to distance exactly 0 (objects co-located with the query),
// consistent with WithinDistance's radius semantics — not "unbounded".
func TestMaxDistanceZeroIsARealBound(t *testing.T) {
	net, engines := engineFixtures(t)
	objs := mustObjects(t, net, []VertexID{4, 4, 28, 60})
	ctx := context.Background()
	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]
		res, err := eng.Query(ctx, objs, 4, 4, WithMaxDistance(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != 2 {
			t.Fatalf("%s: %d neighbors at distance 0 from vertex 4, want the 2 co-located objects", tag, len(res.Neighbors))
		}
		for _, nb := range res.Neighbors {
			if nb.Dist != 0 || nb.Vertex != 4 {
				t.Fatalf("%s: unexpected neighbor %+v under a zero bound", tag, nb)
			}
		}
		// From a vertex hosting no object, a zero bound matches nothing.
		res, err = eng.Query(ctx, objs, 5, 4, WithMaxDistance(0))
		if err != nil || len(res.Neighbors) != 0 {
			t.Fatalf("%s: zero bound from objectless vertex: %v, %d neighbors", tag, err, len(res.Neighbors))
		}
	}
}

// TestQueryCancellation checks that a cancelled context surfaces promptly
// from every entry point, with ctx.Err() as the error.
func TestQueryCancellation(t *testing.T) {
	net, engines := engineFixtures(t)
	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 30)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]

		if _, err := eng.Query(cancelled, objs, 0, 5); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Query on cancelled ctx: %v", tag, err)
		}
		if _, err := eng.Distance(cancelled, 0, VertexID(net.NumVertices()-1)); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Distance on cancelled ctx: %v", tag, err)
		}
		if _, err := eng.WithinDistance(cancelled, objs, 0, 0.5); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: WithinDistance on cancelled ctx: %v", tag, err)
		}
		if _, err := eng.QueryBatch(cancelled, objs, []VertexID{0, 1, 2}, 3); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: QueryBatch on cancelled ctx: %v", tag, err)
		}
		if _, err := eng.IsCloser(cancelled, 0, 1, 2); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: IsCloser on cancelled ctx: %v", tag, err)
		}
	}
}

// TestNeighborsMidStreamCancellation cancels a live browse after the third
// neighbor: the very next iteration must end the stream with ctx.Err() —
// cancellation lands within one refinement step, so no further neighbors
// appear.
func TestNeighborsMidStreamCancellation(t *testing.T) {
	net, engines := engineFixtures(t)
	rng := rand.New(rand.NewSource(23))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 40)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)

	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]
		ctx, cancel := context.WithCancel(context.Background())
		yielded, afterCancel := 0, 0
		var finalErr error
		for nb, err := range eng.Neighbors(ctx, objs, VertexID(perm[45])) {
			if err != nil {
				finalErr = err
				break
			}
			_ = nb
			yielded++
			if yielded == 3 {
				cancel()
			} else if yielded > 3 {
				afterCancel++
			}
		}
		cancel()
		if yielded < 3 {
			t.Fatalf("%s: only %d neighbors before cancel", tag, yielded)
		}
		if afterCancel > 0 {
			t.Fatalf("%s: %d neighbors yielded after cancellation", tag, afterCancel)
		}
		if !errors.Is(finalErr, context.Canceled) {
			t.Fatalf("%s: stream ended with %v, want context.Canceled", tag, finalErr)
		}
	}
}

// TestBrowserCancellation exercises the cursor-style surface: Next returns
// false after cancellation and Err reports why.
func TestBrowserCancellation(t *testing.T) {
	net, engines := engineFixtures(t)
	objs := mustObjects(t, net, []VertexID{2, 9, 17, 33, 50, 61})

	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]
		ctx, cancel := context.WithCancel(context.Background())
		br, err := eng.Browse(ctx, objs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := br.Next(); !ok {
			t.Fatalf("%s: first Next failed", tag)
		}
		cancel()
		if _, ok := br.Next(); ok {
			t.Fatalf("%s: Next succeeded after cancel", tag)
		}
		if !errors.Is(br.Err(), context.Canceled) {
			t.Fatalf("%s: Browser.Err = %v, want context.Canceled", tag, br.Err())
		}
	}
}

// TestEpsilonZeroMatchesExact locks in that WithEpsilon(0) is byte-for-byte
// the exact query.
func TestEpsilonZeroMatchesExact(t *testing.T) {
	net, engines := engineFixtures(t)
	objs := mustObjects(t, net, []VertexID{1, 8, 21, 34, 55, 72, 89})
	ctx := context.Background()
	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]
		plain, err := eng.Query(ctx, objs, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		eps0, err := eng.Query(ctx, objs, 3, 4, WithEpsilon(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Neighbors) != len(eps0.Neighbors) {
			t.Fatalf("%s: result sizes differ", tag)
		}
		for i := range plain.Neighbors {
			if plain.Neighbors[i].ID != eps0.Neighbors[i].ID ||
				plain.Neighbors[i].Dist != eps0.Neighbors[i].Dist {
				t.Fatalf("%s: ε=0 differs from exact at %d: %+v vs %+v",
					tag, i, plain.Neighbors[i], eps0.Neighbors[i])
			}
		}
	}
}
