package silc

import (
	"time"

	"silc/internal/core"
	"silc/internal/knn"
)

// ObjectSet is a set S of query objects placed on network vertices, indexed
// by a PMR quadtree. Object sets are independent of any index: build them,
// discard them, and swap them freely — the precomputed shortest paths are
// reused across all of them (the paper's decoupling property).
type ObjectSet struct {
	net  *Network
	objs *knn.Objects
}

// NewObjectSet places one object on each listed vertex (duplicates allowed).
// Object IDs are dense in input order.
func NewObjectSet(net *Network, vertices []VertexID) *ObjectSet {
	return &ObjectSet{net: net, objs: knn.NewObjects(net.g, vertices)}
}

// NewObjectSetFromPoints snaps each point to its nearest network vertex and
// places an object there. (The paper supports objects on edges and faces as
// well; this library implements the vertex-resident case its evaluation
// exercises.)
func NewObjectSetFromPoints(net *Network, pts []Point) *ObjectSet {
	vs := make([]VertexID, len(pts))
	for i, p := range pts {
		vs[i] = net.g.NearestVertex(p)
	}
	return NewObjectSet(net, vs)
}

// Len returns |S|.
func (s *ObjectSet) Len() int { return s.objs.Len() }

// Vertex returns the vertex hosting object id.
func (s *ObjectSet) Vertex(id int32) VertexID { return s.objs.ByID(id).Vertex }

// NearestEuclidean returns up to k object ids ordered by straight-line
// ("as the crow flies") distance from p — the geodesic ranking the paper's
// motivating examples compare against.
func (s *ObjectSet) NearestEuclidean(p Point, k int) []int32 {
	objs := s.objs.Tree().NearestEuclidean(p, k)
	out := make([]int32, len(objs))
	for i, o := range objs {
		out[i] = o.ID
	}
	return out
}

// Method selects the kNN algorithm.
type Method int

const (
	// MethodKNN is the paper's non-incremental best-first algorithm
	// (default; fastest at small k).
	MethodKNN Method = iota
	// MethodINN is the incremental algorithm (no Dk pruning; cheapest L
	// management, preferred at large k).
	MethodINN
	// MethodKNNI filters the queue with the static first-k estimate D⁰k.
	MethodKNNI
	// MethodKNNM skips total-ordering refinements via KMINDIST; its results
	// are unsorted. Exact on path-coherent road networks; see the package
	// documentation of internal/knn for the boundary caveat.
	MethodKNNM
	// MethodINE is the incremental-network-expansion baseline (Dijkstra
	// with a result buffer); needs no SILC index data.
	MethodINE
	// MethodIER is the incremental-Euclidean-restriction baseline (Euclidean
	// filter plus per-candidate A*).
	MethodIER
)

// String returns the method's name as used in the paper.
func (m Method) String() string {
	switch m {
	case MethodKNN:
		return "KNN"
	case MethodINN:
		return "INN"
	case MethodKNNI:
		return "KNN-I"
	case MethodKNNM:
		return "KNN-M"
	case MethodINE:
		return "INE"
	case MethodIER:
		return "IER"
	default:
		return "unknown"
	}
}

// Neighbor is one reported nearest neighbor.
type Neighbor struct {
	// ID is the object's id within its ObjectSet.
	ID int32
	// Vertex hosts the object.
	Vertex VertexID
	// Dist is the network distance from the query (exact when Exact).
	Dist float64
	// Interval is the final distance interval; a point interval when Exact.
	Interval Interval
	// Exact reports whether Dist is exact.
	Exact bool
}

// QueryStats describes one query's execution.
type QueryStats struct {
	Method      string
	MaxQueue    int           // peak search-queue size
	Refinements int           // progressive-refinement steps
	Lookups     int           // interval computations
	Settled     int           // graph vertices settled (INE/IER)
	PageHits    int64         // buffer-pool hits (DiskResident indexes)
	PageMisses  int64         // buffer-pool misses
	IOTime      time.Duration // modeled I/O time
	CPUTime     time.Duration // measured computation time
}

// Result is the outcome of a kNN query.
type Result struct {
	// Neighbors holds up to k neighbors, in increasing network distance
	// unless Sorted is false (MethodKNNM).
	Neighbors []Neighbor
	Sorted    bool
	Stats     QueryStats
}

// NearestNeighbors returns the k nearest objects to q by network distance
// using the paper's kNN algorithm, with distances fully refined to exact
// values. For algorithm selection and raw interval output use Query.
func (ix *Index) NearestNeighbors(objs *ObjectSet, q VertexID, k int) Result {
	return nearestNeighbors(ix.ix, objs, q, k)
}

func nearestNeighbors(qx core.QueryIndex, objs *ObjectSet, q VertexID, k int) Result {
	res := runQuery(qx, objs, q, k, MethodKNN)
	qc := core.NewQueryContext()
	for i := range res.Neighbors {
		n := &res.Neighbors[i]
		if !n.Exact {
			d := core.ExactDistance(qx, qc, q, n.Vertex)
			n.Dist = d
			n.Interval = Interval{Lo: d, Hi: d}
			n.Exact = true
		}
	}
	addContextIO(qx, &res.Stats, qc)
	return res
}

// addContextIO folds follow-up I/O (post-query exact refinement) into the
// query's reported page traffic.
func addContextIO(qx core.QueryIndex, s *QueryStats, qc *core.QueryContext) {
	if qc.IO.Hits == 0 && qc.IO.Misses == 0 {
		return
	}
	s.PageHits += qc.IO.Hits
	s.PageMisses += qc.IO.Misses
	s.IOTime += qc.IO.ModeledIOTime(qx.Tracker().MissLatency())
}

// Query runs the selected kNN method. Distances of reported neighbors are
// exact only where Exact is set: the algorithms refine intervals just far
// enough to certify the ranking, which is the paper's contract.
func (ix *Index) Query(objs *ObjectSet, q VertexID, k int, method Method) Result {
	return runQuery(ix.ix, objs, q, k, method)
}

// runQuery dispatches one kNN query on any QueryIndex — the monolithic
// index or the sharded one; the algorithms are generic over both.
func runQuery(qx core.QueryIndex, objs *ObjectSet, q VertexID, k int, method Method) Result {
	var raw knn.Result
	switch method {
	case MethodINE:
		raw = knn.INE(qx, objs.objs, q, k)
	case MethodIER:
		raw = knn.IER(qx, objs.objs, q, k)
	case MethodINN:
		raw = knn.Search(qx, objs.objs, q, k, knn.VariantINN)
	case MethodKNNI:
		raw = knn.Search(qx, objs.objs, q, k, knn.VariantKNNI)
	case MethodKNNM:
		raw = knn.Search(qx, objs.objs, q, k, knn.VariantKNNM)
	default:
		raw = knn.Search(qx, objs.objs, q, k, knn.VariantKNN)
	}
	return convertResult(raw)
}

func convertResult(raw knn.Result) Result {
	out := Result{Sorted: raw.Sorted}
	out.Neighbors = make([]Neighbor, len(raw.Neighbors))
	for i, n := range raw.Neighbors {
		out.Neighbors[i] = Neighbor{
			ID:       n.Object.ID,
			Vertex:   n.Object.Vertex,
			Dist:     n.Dist,
			Interval: n.Interval,
			Exact:    n.Exact,
		}
	}
	s := raw.Stats
	out.Stats = QueryStats{
		Method:      s.Algorithm,
		MaxQueue:    s.MaxQueue,
		Refinements: s.Refinements,
		Lookups:     s.Lookups,
		Settled:     s.Settled,
		PageHits:    s.IO.Hits,
		PageMisses:  s.IO.Misses,
		IOTime:      s.IOTime,
		CPUTime:     s.CPU,
	}
	return out
}

// WithinDistance returns every object whose network distance from q is at
// most radius (a network-distance range query — the "general framework"
// query type beyond nearest neighbors). Results are unordered; intervals
// are refined exactly far enough to decide membership, so Dist is exact
// only where Exact is set.
func (ix *Index) WithinDistance(objs *ObjectSet, q VertexID, radius float64) Result {
	return convertResult(knn.RangeSearch(ix.ix, objs.objs, q, radius))
}

// Browser is an incremental network-distance cursor over an object set —
// the "distance browsing" of the paper's title. Neighbors stream out in
// increasing network distance; state persists between calls, so the (k+1)st
// neighbor costs only incremental work. A single Browser is not safe for
// concurrent use, but any number of independent Browsers may run
// concurrently over one shared Index (or ShardedIndex) and ObjectSet.
type Browser struct {
	qx core.QueryIndex
	b  *knn.Browser
}

// Browse positions a cursor at query vertex q over objs.
func (ix *Index) Browse(objs *ObjectSet, q VertexID) *Browser {
	return browse(ix.ix, objs, q)
}

func browse(qx core.QueryIndex, objs *ObjectSet, q VertexID) *Browser {
	return &Browser{qx: qx, b: knn.NewBrowser(qx, objs.objs, q)}
}

// Next returns the next-nearest object; ok is false when S is exhausted.
// The reported distance is refined to exact.
func (b *Browser) Next() (Neighbor, bool) {
	raw, ok := b.b.Next()
	if !ok {
		return Neighbor{}, false
	}
	n := Neighbor{
		ID:       raw.Object.ID,
		Vertex:   raw.Object.Vertex,
		Dist:     raw.Dist,
		Interval: raw.Interval,
		Exact:    raw.Exact,
	}
	if !n.Exact {
		// Charge the exactness refinement to the cursor's own context, so
		// concurrent browsers each account their own traffic.
		d := core.ExactDistance(b.qx, b.b.Context(), b.b.Query(), n.Vertex)
		n.Dist, n.Interval, n.Exact = d, Interval{Lo: d, Hi: d}, true
	}
	return n, true
}

// Stats returns the cursor's accumulated statistics (queue sizes,
// refinements, and the buffer-pool traffic charged to this cursor).
func (b *Browser) Stats() QueryStats {
	s := b.b.Stats()
	return QueryStats{
		Method:      s.Algorithm,
		MaxQueue:    s.MaxQueue,
		Refinements: s.Refinements,
		Lookups:     s.Lookups,
		PageHits:    s.IO.Hits,
		PageMisses:  s.IO.Misses,
		IOTime:      s.IOTime,
	}
}
