package silc

import (
	"context"
	"fmt"
	"strings"
	"time"

	"silc/internal/core"
	"silc/internal/knn"
)

// ObjectSet is a set S of query objects placed on network vertices, indexed
// by a PMR quadtree. Object sets are independent of any index: build them,
// discard them, and swap them freely — the precomputed shortest paths are
// reused across all of them (the paper's decoupling property).
type ObjectSet struct {
	net  *Network
	objs *knn.Objects
	// version is the live-store snapshot version this set pins, zero for
	// static sets. Queries stamp it into Result.Stats.SnapshotVersion.
	version uint64
}

// NewObjectSet places one object on each listed vertex (duplicates
// allowed). Object IDs are dense in input order. Every vertex id is
// validated at this API edge: an id outside [0, NumVertices) returns
// ErrVertexRange, an empty list ErrEmptyObjects, a nil network
// ErrNilNetwork — instead of the out-of-bounds panic the pre-validation
// surface deferred to query time.
func NewObjectSet(net *Network, vertices []VertexID) (*ObjectSet, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	if len(vertices) == 0 {
		return nil, ErrEmptyObjects
	}
	n := net.NumVertices()
	for i, v := range vertices {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("%w: vertices[%d]=%d, want [0,%d)", ErrVertexRange, i, v, n)
		}
	}
	return &ObjectSet{net: net, objs: knn.NewObjects(net.g, vertices)}, nil
}

// NewObjectSetFromPoints snaps each point to its nearest network vertex and
// places an object there. Distinct points snapping to the same vertex
// collapse into ONE object — object ids are dense over the distinct snapped
// vertices in first-appearance order, not over the input points — so an id
// keeps identifying one network location (Remove/Move on a live store, and
// kNN results, never see phantom duplicates of one vertex). (The paper
// supports objects on edges and faces as well; this library implements the
// vertex-resident case its evaluation exercises.)
func NewObjectSetFromPoints(net *Network, pts []Point) (*ObjectSet, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	if len(pts) == 0 {
		return nil, ErrEmptyObjects
	}
	seen := make(map[VertexID]struct{}, len(pts))
	vs := make([]VertexID, 0, len(pts))
	for _, p := range pts {
		v := net.g.NearestVertex(p)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		vs = append(vs, v)
	}
	return NewObjectSet(net, vs)
}

// Len returns |S|.
func (s *ObjectSet) Len() int { return s.objs.Len() }

// Version returns the live-store snapshot version this set pins, zero for
// static sets built by the NewObjectSet constructors.
func (s *ObjectSet) Version() uint64 { return s.version }

// Vertex returns the vertex hosting object id.
func (s *ObjectSet) Vertex(id int32) VertexID { return s.objs.ByID(id).Vertex }

// NearestEuclidean returns up to k object ids ordered by straight-line
// ("as the crow flies") distance from p — the geodesic ranking the paper's
// motivating examples compare against.
func (s *ObjectSet) NearestEuclidean(p Point, k int) []int32 {
	objs := s.objs.Tree().NearestEuclidean(p, k)
	out := make([]int32, len(objs))
	for i, o := range objs {
		out[i] = s.objs.Label(o.ID) // tree objects carry dense slots
	}
	return out
}

// Method selects the kNN algorithm.
type Method int

const (
	// MethodKNN is the paper's non-incremental best-first algorithm
	// (default; fastest at small k).
	MethodKNN Method = iota
	// MethodINN is the incremental algorithm (no Dk pruning; cheapest L
	// management, preferred at large k).
	MethodINN
	// MethodKNNI filters the queue with the static first-k estimate D⁰k.
	MethodKNNI
	// MethodKNNM skips total-ordering refinements via KMINDIST; its results
	// are unsorted. Exact on path-coherent road networks; see the package
	// documentation of internal/knn for the boundary caveat.
	MethodKNNM
	// MethodINE is the incremental-network-expansion baseline (Dijkstra
	// with a result buffer); needs no SILC index data.
	MethodINE
	// MethodIER is the incremental-Euclidean-restriction baseline (Euclidean
	// filter plus per-candidate A*).
	MethodIER
)

// String returns the method's name as used in the paper.
func (m Method) String() string {
	switch m {
	case MethodKNN:
		return "KNN"
	case MethodINN:
		return "INN"
	case MethodKNNI:
		return "KNN-I"
	case MethodKNNM:
		return "KNN-M"
	case MethodINE:
		return "INE"
	case MethodIER:
		return "IER"
	default:
		return "unknown"
	}
}

// ParseMethod resolves a method name (as printed by Method.String; the
// hyphen in KNN-I/KNN-M is optional, case-insensitive). The empty string
// selects MethodKNN.
func ParseMethod(name string) (Method, error) {
	switch strings.ToUpper(name) {
	case "", "KNN":
		return MethodKNN, nil
	case "INN":
		return MethodINN, nil
	case "KNN-I", "KNNI":
		return MethodKNNI, nil
	case "KNN-M", "KNNM":
		return MethodKNNM, nil
	case "INE":
		return MethodINE, nil
	case "IER":
		return MethodIER, nil
	default:
		return 0, fmt.Errorf("%w %q", ErrBadMethod, name)
	}
}

// Neighbor is one reported nearest neighbor.
type Neighbor struct {
	// ID is the object's id within its ObjectSet.
	ID int32
	// Vertex hosts the object.
	Vertex VertexID
	// Dist is the network distance from the query (exact when Exact; under
	// WithEpsilon, the certified interval's lower bound).
	Dist float64
	// Interval is the final distance interval; a point interval when Exact.
	Interval Interval
	// Exact reports whether Dist is exact.
	Exact bool
}

// QueryStats describes one query's execution. The storage counters
// (PageReads, Evictions, BlocksDecoded) and the phase clocks are filled
// from the query's trace span; per-query PageHits/PageMisses/PageReads
// summed over a workload reproduce the engine's pool-wide IOStats
// exactly when every touch is query-attributed.
type QueryStats struct {
	Method      string
	MaxQueue    int   // peak search-queue size
	Refinements int   // progressive-refinement steps
	Lookups     int   // interval computations
	Settled     int   // graph vertices settled (INE/IER)
	HeapPushes  int64 // search-queue pushes (best-first family)
	PageHits    int64 // buffer-pool hits (DiskResident indexes)
	PageMisses  int64 // buffer-pool misses
	// PageReads counts real positioned reads a paged store performed for
	// this query (zero on modeled/in-RAM indexes).
	PageReads int64
	// Evictions counts pool pages this query's touches displaced.
	Evictions int64
	// BlocksDecoded counts quadtree blocks decoded on cold tree loads.
	BlocksDecoded int64
	// GatewayRoutes counts candidate gateway routes raced by cross-cell
	// refiners (sharded indexes only).
	GatewayRoutes int64
	IOTime        time.Duration // modeled I/O time
	CPUTime       time.Duration // measured computation time
	// SnapshotVersion is the live object-store version the query's pinned
	// snapshot reflects — the result is exact against exactly that version.
	// Zero for static object sets.
	SnapshotVersion uint64
	// FilterTime is the object-hierarchy filter phase's wall clock and
	// RefineTime the remainder (CPUTime − FilterTime); both are zero
	// unless the engine's tracing is enabled (Engine.SetTracing).
	FilterTime time.Duration
	RefineTime time.Duration
}

// Result is the outcome of a kNN query.
type Result struct {
	// Neighbors holds up to k neighbors, in increasing network distance
	// unless Sorted is false (MethodKNNM).
	Neighbors []Neighbor
	Sorted    bool
	Stats     QueryStats
}

func convertResult(raw knn.Result) Result {
	out := Result{Sorted: raw.Sorted}
	out.Neighbors = make([]Neighbor, len(raw.Neighbors))
	for i, n := range raw.Neighbors {
		out.Neighbors[i] = Neighbor{
			ID:       n.Object.ID,
			Vertex:   n.Object.Vertex,
			Dist:     n.Dist,
			Interval: n.Interval,
			Exact:    n.Exact,
		}
	}
	s := raw.Stats
	out.Stats = QueryStats{
		Method:      s.Algorithm,
		MaxQueue:    s.MaxQueue,
		Refinements: s.Refinements,
		Lookups:     s.Lookups,
		Settled:     s.Settled,
		PageHits:    s.IO.Hits,
		PageMisses:  s.IO.Misses,
		IOTime:      s.IOTime,
		CPUTime:     s.CPU,
	}
	return out
}

// legacyQuery adapts the pre-Engine call convention: k ≤ 0 yields an empty
// result (the historical behavior) and invalid arguments panic with the
// typed error at this API edge — callers wanting errors use Engine.Query.
func legacyQuery(e *Engine, objs *ObjectSet, q VertexID, k int, opts ...Option) Result {
	if k <= 0 {
		return Result{Sorted: true}
	}
	res, err := e.Query(context.Background(), objs, q, k, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// NearestNeighbors returns the k nearest objects to q by network distance
// using the paper's kNN algorithm, with distances fully refined to exact
// values.
//
// Deprecated: use Engine.Query with WithExactDistances for cancellation and
// error returns: ix.Engine().Query(ctx, objs, q, k, WithExactDistances()).
func (ix *Index) NearestNeighbors(objs *ObjectSet, q VertexID, k int) Result {
	return legacyQuery(ix.eng, objs, q, k, WithExactDistances())
}

// Query runs the selected kNN method. Distances of reported neighbors are
// exact only where Exact is set: the algorithms refine intervals just far
// enough to certify the ranking, which is the paper's contract.
//
// Deprecated: use Engine.Query: ix.Engine().Query(ctx, objs, q, k,
// WithMethod(method)).
func (ix *Index) Query(objs *ObjectSet, q VertexID, k int, method Method) Result {
	return legacyQuery(ix.eng, objs, q, k, WithMethod(method))
}

// WithinDistance returns every object whose network distance from q is at
// most radius. Results are unordered; intervals are refined exactly far
// enough to decide membership, so Dist is exact only where Exact is set.
//
// Deprecated: use Engine.WithinDistance for cancellation and error returns.
func (ix *Index) WithinDistance(objs *ObjectSet, q VertexID, radius float64) Result {
	return legacyWithin(ix.eng, objs, q, radius)
}

// legacyWithin adapts the pre-Engine range-query convention: a negative
// radius yields an empty result, invalid vertices panic at this edge.
func legacyWithin(e *Engine, objs *ObjectSet, q VertexID, radius float64) Result {
	if radius < 0 {
		return Result{}
	}
	res, err := e.WithinDistance(context.Background(), objs, q, radius)
	if err != nil {
		panic(err)
	}
	return res
}

// Browser is an incremental network-distance cursor over an object set —
// the "distance browsing" of the paper's title. Neighbors stream out in
// increasing network distance; state persists between calls, so the (k+1)st
// neighbor costs only incremental work. A single Browser is not safe for
// concurrent use, but any number of independent Browsers may run
// concurrently over one shared Engine and ObjectSet.
//
// New code usually wants the Engine.Neighbors iterator instead; Browser
// remains for cursor-style consumers that interleave Next with other work.
type Browser struct {
	qx  core.QueryIndex
	b   *knn.Browser
	eps float64
	ver uint64 // pinned snapshot version (zero for static sets)
	err error  // cancellation observed during post-report exactification
}

// Browse positions a cursor at query vertex q over objs.
//
// Deprecated: use Engine.Neighbors (iterator) or Engine.Browse (cursor with
// cancellation): for n, err := range ix.Engine().Neighbors(ctx, objs, q).
func (ix *Index) Browse(objs *ObjectSet, q VertexID) *Browser {
	return legacyBrowse(ix.eng, objs, q)
}

func legacyBrowse(e *Engine, objs *ObjectSet, q VertexID) *Browser {
	b, err := e.Browse(context.Background(), objs, q)
	if err != nil {
		panic(err)
	}
	return b
}

// Next returns the next-nearest object; ok is false when S is exhausted,
// the cursor's distance bound is reached, or its context was cancelled
// (distinguish with Err). Reported distances are refined to exact unless
// the cursor was opened with WithEpsilon.
func (b *Browser) Next() (Neighbor, bool) {
	raw, ok := b.b.Next()
	if !ok {
		return Neighbor{}, false
	}
	n := Neighbor{
		ID:       raw.Object.ID,
		Vertex:   raw.Object.Vertex,
		Dist:     raw.Dist,
		Interval: raw.Interval,
		Exact:    raw.Exact,
	}
	if !n.Exact && b.eps == 0 {
		// Charge the exactness refinement to the cursor's own context, so
		// concurrent browsers each account their own traffic.
		d := core.ExactDistance(b.qx, b.b.Context(), b.b.Query(), n.Vertex)
		if err := b.b.Context().Err(); err != nil {
			b.err = err
			return Neighbor{}, false // cancelled mid-refinement: see Err
		}
		n.Dist, n.Interval, n.Exact = d, Interval{Lo: d, Hi: d}, true
	}
	return n, true
}

// Err reports the context cancellation that ended the browse, nil for a
// live or normally exhausted cursor — a context that expires only after
// the cursor finished does not retroactively mark it cancelled.
func (b *Browser) Err() error {
	if err := b.b.Err(); err != nil {
		return err
	}
	// Cancellation can also land during the post-report exactness
	// refinement, before the search loop observes it; Next records it.
	return b.err
}

// Stats returns the cursor's accumulated statistics (queue sizes,
// refinements, and the buffer-pool traffic charged to this cursor).
func (b *Browser) Stats() QueryStats {
	s := convertBrowserStats(b.b.Stats())
	s.SnapshotVersion = b.ver
	return s
}

func convertBrowserStats(s knn.Stats) QueryStats {
	return QueryStats{
		Method:      s.Algorithm,
		MaxQueue:    s.MaxQueue,
		Refinements: s.Refinements,
		Lookups:     s.Lookups,
		PageHits:    s.IO.Hits,
		PageMisses:  s.IO.Misses,
		IOTime:      s.IOTime,
	}
}
