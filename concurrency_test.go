package silc

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// concurrencyFixture builds one shared index (memory- or disk-resident),
// an object set, and a pool of query vertices.
func concurrencyFixture(t *testing.T, diskResident bool) (*Index, *ObjectSet, []VertexID) {
	t.Helper()
	net := testNetwork(t)
	ix, err := BuildIndex(net, BuildOptions{DiskResident: diskResident})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 40)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	queries := make([]VertexID, 60)
	for i := range queries {
		queries[i] = VertexID(rng.Intn(net.NumVertices()))
	}
	return ix, mustObjects(t, net, vertices), queries
}

func neighborsEqual(t *testing.T, tag string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", tag, len(got), len(want))
	}
	for i := range got {
		// Equidistant neighbors may legally swap order, so compare the
		// certified distances rather than object identity.
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("%s: neighbor %d dist %v, want %v", tag, i, got[i].Dist, want[i].Dist)
		}
	}
}

func testParallelQueries(t *testing.T, diskResident bool) {
	ix, objs, queries := concurrencyFixture(t, diskResident)
	const k = 5

	want := make([]Result, len(queries))
	for i, q := range queries {
		want[i] = ix.NearestNeighbors(objs, q, k)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range queries {
				j := (i + w*7) % len(queries)
				res := ix.NearestNeighbors(objs, queries[j], k)
				neighborsEqual(t, "parallel query", res.Neighbors, want[j].Neighbors)
				if diskResident && res.Stats.PageHits+res.Stats.PageMisses == 0 {
					t.Errorf("disk-resident query reported no page traffic")
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestParallelQueriesMemoryResident(t *testing.T) { testParallelQueries(t, false) }
func TestParallelQueriesDiskResident(t *testing.T)   { testParallelQueries(t, true) }

func TestQueryBatchMatchesSequential(t *testing.T) {
	for _, disk := range []bool{false, true} {
		ix, objs, queries := concurrencyFixture(t, disk)
		const k = 4
		batch := ix.QueryBatch(objs, queries, k, MethodKNN)
		if len(batch.Results) != len(queries) {
			t.Fatalf("batch returned %d results for %d queries", len(batch.Results), len(queries))
		}
		if batch.Stats.Queries != len(queries) || batch.Stats.Workers < 1 {
			t.Fatalf("batch stats: %+v", batch.Stats)
		}
		if batch.Stats.QPS <= 0 || batch.Stats.Wall <= 0 {
			t.Fatalf("batch stats: %+v", batch.Stats)
		}
		var hits, misses int64
		for i, q := range queries {
			want := ix.Query(objs, q, k, MethodKNN)
			neighborsEqual(t, "batch result", batch.Results[i].Neighbors, want.Neighbors)
			hits += batch.Results[i].Stats.PageHits
			misses += batch.Results[i].Stats.PageMisses
		}
		// Aggregate traffic is exactly the sum of per-query traffic.
		if hits != batch.Stats.PageHits || misses != batch.Stats.PageMisses {
			t.Fatalf("aggregate IO %d/%d != summed per-query %d/%d",
				batch.Stats.PageHits, batch.Stats.PageMisses, hits, misses)
		}
		if disk && batch.Stats.PageHits+batch.Stats.PageMisses == 0 {
			t.Fatal("disk-resident batch reported no page traffic")
		}
		if !disk && batch.Stats.PageHits+batch.Stats.PageMisses != 0 {
			t.Fatal("memory-resident batch should report zero page traffic")
		}
	}
}

func TestQueryBatchWorkersBound(t *testing.T) {
	ix, objs, queries := concurrencyFixture(t, false)
	one := ix.QueryBatchWorkers(objs, queries, 3, MethodKNN, 1)
	four := ix.QueryBatchWorkers(objs, queries, 3, MethodKNN, 4)
	if one.Stats.Workers != 1 || four.Stats.Workers != 4 {
		t.Fatalf("workers = %d and %d", one.Stats.Workers, four.Stats.Workers)
	}
	for i := range queries {
		neighborsEqual(t, "worker bound", four.Results[i].Neighbors, one.Results[i].Neighbors)
	}
	empty := ix.QueryBatch(objs, nil, 3, MethodKNN)
	if len(empty.Results) != 0 || empty.Stats.Queries != 0 {
		t.Fatalf("empty batch: %+v", empty.Stats)
	}
}

func TestQueryBatchAllMethods(t *testing.T) {
	ix, objs, queries := concurrencyFixture(t, true)
	queries = queries[:10]
	for _, m := range []Method{MethodKNN, MethodINN, MethodKNNI, MethodKNNM, MethodINE, MethodIER} {
		batch := ix.QueryBatch(objs, queries, 3, m)
		for i, res := range batch.Results {
			if len(res.Neighbors) != 3 {
				t.Fatalf("%v query %d: %d neighbors", m, i, len(res.Neighbors))
			}
		}
	}
}

// TestConcurrentBrowsers interleaves several distance-browsing cursors over
// one shared disk-resident index: each cursor must stream the same sequence
// a fresh solo cursor produces.
func TestConcurrentBrowsers(t *testing.T) {
	ix, objs, queries := concurrencyFixture(t, true)
	starts := queries[:6]
	const steps = 15

	want := make([][]Neighbor, len(starts))
	for i, q := range starts {
		b := ix.Browse(objs, q)
		for j := 0; j < steps; j++ {
			n, ok := b.Next()
			if !ok {
				break
			}
			want[i] = append(want[i], n)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		for i, q := range starts {
			wg.Add(1)
			go func(i int, q VertexID) {
				defer wg.Done()
				b := ix.Browse(objs, q)
				for j := 0; j < steps; j++ {
					n, ok := b.Next()
					if !ok {
						if j != len(want[i]) {
							t.Errorf("cursor %d exhausted at %d, want %d", i, j, len(want[i]))
						}
						return
					}
					if math.Abs(n.Dist-want[i][j].Dist) > 1e-9 {
						t.Errorf("cursor %d step %d: dist %v, want %v", i, j, n.Dist, want[i][j].Dist)
						return
					}
				}
				if s := b.Stats(); s.PageHits+s.PageMisses == 0 {
					t.Errorf("cursor %d reported no page traffic", i)
				}
			}(i, q)
		}
	}
	wg.Wait()
}

// TestConcurrentMixedReaders drives every public query primitive at once
// over one shared disk-resident index — the -race canary for the whole
// query surface.
func TestConcurrentMixedReaders(t *testing.T) {
	ix, objs, queries := concurrencyFixture(t, true)
	var wg sync.WaitGroup
	run := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				f(i)
			}
		}()
	}
	n := len(queries)
	run(func(i int) { ix.NearestNeighbors(objs, queries[i%n], 3) })
	run(func(i int) { ix.Distance(queries[i%n], queries[(i+1)%n]) })
	run(func(i int) { ix.ShortestPath(queries[i%n], queries[(i+3)%n]) })
	run(func(i int) { ix.DistanceInterval(queries[i%n], queries[(i+5)%n]) })
	run(func(i int) { ix.IsCloser(queries[i%n], queries[(i+1)%n], queries[(i+2)%n]) })
	run(func(i int) { ix.WithinDistance(objs, queries[i%n], 0.2) })
	run(func(i int) { ix.IOStats() })
	wg.Wait()
	if s := ix.IOStats(); s.PageHits+s.PageMisses == 0 {
		t.Fatal("pool-wide counters should have accumulated traffic")
	}
}
