package silc

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"silc/internal/oracle"
)

// Steady-state allocation budgets for the Engine query surface, in
// allocations per operation with a warm query-context pool. The hot path is
// designed to be allocation-free; what remains is the result materialization
// the API contract requires (the raw neighbor slice drained from the search
// arena plus the public copy convertResult hands the caller — pooling those
// would let a query scribble over a result the caller still holds).
//
// These are regression budgets, not targets: a change that pushes any
// steady-state query over its budget reintroduced per-query garbage and
// should be fixed, not accommodated by raising the constant.
const (
	// budgetKNNAllocs bounds Engine.Query (KNN, k=10, warm pool): the
	// drained neighbor slice + the public result copy.
	budgetKNNAllocs = 8
	// budgetRangeAllocs bounds Engine.WithinDistance on a radius returning
	// a handful of objects; same two result slices.
	budgetRangeAllocs = 8
	// budgetNeighborsAllocs bounds a full Engine.Neighbors stream of 10
	// objects: the iterator closures and the browser cursor are per-stream
	// (not per-element) costs, so the stream fits the same budget as a
	// one-shot query.
	budgetNeighborsAllocs = 8
	// budgetLiveKNNAllocs bounds Engine.Query over a pinned live-world
	// snapshot (LiveObjects.View + KNN k=10, store version unchanged):
	// pinning is one atomic load of a cached wrapper, so the live path gets
	// NO extra allowance over the static-set budget — and per the
	// never-increase rule this constant may only ever go down.
	budgetLiveKNNAllocs = budgetKNNAllocs
)

// allocEngine is one backend variant under the allocation budget.
type allocEngine struct {
	name string
	eng  *Engine
}

// allocEngines builds the Engine variants the budgets cover: monolithic
// in-RAM, sharded, and disk-paged with a pool large enough that the steady
// state never evicts (the warm-pool regime — cold loads real-read and
// decode, which legitimately allocates). The paged variant runs in both
// block-page encodings, and the compressed one additionally through a
// memory mapping: decoding out of the mapping must not add a single
// steady-state allocation over the positioned-read path.
func allocEngines(t testing.TB, net *Network) []allocEngine {
	t.Helper()
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var pg bytes.Buffer
	if _, err := ix.WritePaged(&pg); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenIndexAt(bytes.NewReader(pg.Bytes()), int64(pg.Len()), BuildOptions{CacheFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	cix, err := BuildIndex(net, BuildOptions{Compression: CompressionDelta})
	if err != nil {
		t.Fatal(err)
	}
	var pg2 bytes.Buffer
	if _, err := cix.WritePaged(&pg2); err != nil {
		t.Fatal(err)
	}
	paged2, err := OpenIndexAt(bytes.NewReader(pg2.Bytes()), int64(pg2.Len()), BuildOptions{CacheFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "alloc.silcpg2")
	if err := os.WriteFile(path, pg2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenIndex(path, BuildOptions{CacheFraction: 1.0, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	return []allocEngine{
		{"monolithic", ix.Engine()},
		{"sharded", sx.Engine()},
		{"paged-warm", paged.Engine()},
		{"paged-pg2-warm", paged2.Engine()},
		{"paged-pg2-mmap-warm", mapped.Engine()},
	}
}

func allocFixture(t testing.TB) (*Network, *ObjectSet, []VertexID, []VertexID) {
	t.Helper()
	net := testNetwork(t)
	rng := rand.New(rand.NewSource(53))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 30)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	queries := make([]VertexID, 8)
	for i := range queries {
		queries[i] = VertexID(rng.Intn(net.NumVertices()))
	}
	return net, mustObjects(t, net, vertices), vertices, queries
}

// measureAllocs warms the path, then measures steady-state allocations.
func measureAllocs(f func()) float64 {
	for i := 0; i < 5; i++ {
		f() // warm the context pool, scratch arenas, and page cache
	}
	return testing.AllocsPerRun(50, f)
}

// TestAllocBudgetKNN enforces the tentpole property: warm Engine.Query
// (KNN, k=10) stays within budgetKNNAllocs on every backend variant.
func TestAllocBudgetKNN(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net, objs, _, queries := allocFixture(t)
	ctx := context.Background()
	q := queries[0]
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			got := measureAllocs(func() {
				if _, err := ae.eng.Query(ctx, objs, q, 10); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s: %.1f allocs/op (budget %d)", ae.name, got, budgetKNNAllocs)
			if got > budgetKNNAllocs {
				t.Fatalf("steady-state KNN k=10 allocates %.1f/op, budget %d", got, budgetKNNAllocs)
			}
		})
	}
}

// TestAllocBudgetRange enforces the same property for the range query.
func TestAllocBudgetRange(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net, objs, _, queries := allocFixture(t)
	ctx := context.Background()
	q := queries[1]
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			got := measureAllocs(func() {
				if _, err := ae.eng.WithinDistance(ctx, objs, q, 0.25); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s: %.1f allocs/op (budget %d)", ae.name, got, budgetRangeAllocs)
			if got > budgetRangeAllocs {
				t.Fatalf("steady-state range allocates %.1f/op, budget %d", got, budgetRangeAllocs)
			}
		})
	}
}

// TestAllocBudgetNeighbors enforces the budget for a 10-element incremental
// browsing stream; the whole stream is one operation.
func TestAllocBudgetNeighbors(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net, objs, _, queries := allocFixture(t)
	ctx := context.Background()
	q := queries[2]
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			got := measureAllocs(func() {
				count := 0
				for _, err := range ae.eng.Neighbors(ctx, objs, q) {
					if err != nil {
						t.Fatal(err)
					}
					if count++; count == 10 {
						break
					}
				}
			})
			t.Logf("%s: %.1f allocs/op (budget %d)", ae.name, got, budgetNeighborsAllocs)
			if got > budgetNeighborsAllocs {
				t.Fatalf("steady-state 10-step browse allocates %.1f/op, budget %d", got, budgetNeighborsAllocs)
			}
		})
	}
}

// TestScratchReuseConcurrentOracle is the scratch-safety property test: many
// goroutines interleave queries on ONE shared engine (so pooled contexts,
// scratch arenas, and refiner slabs are constantly recycled across
// goroutines), and every certified distance must match an independent
// all-pairs oracle. Run under -race in CI; a scratch buffer leaking between
// two in-flight queries shows up as either a race report or a wrong
// distance.
func TestScratchReuseConcurrentOracle(t *testing.T) {
	net, objs, objVerts, queries := allocFixture(t)
	ox, err := oracle.BuildExplicitPaths(net.g)
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	// Expected k nearest distances per query vertex, straight from the
	// oracle's all-pairs matrix.
	want := make(map[VertexID][]float64, len(queries))
	for _, q := range queries {
		ds := make([]float64, 0, len(objVerts))
		for _, v := range objVerts {
			ds = append(ds, ox.Distance(q, v))
		}
		sort.Float64s(ds)
		want[q] = ds[:k]
	}
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			ctx := context.Background()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						q := queries[(i+w*3)%len(queries)]
						res, err := ae.eng.Query(ctx, objs, q, k, WithExactDistances())
						if err != nil {
							t.Error(err)
							return
						}
						exp := want[q]
						if len(res.Neighbors) != len(exp) {
							t.Errorf("worker %d: %d neighbors, want %d", w, len(res.Neighbors), len(exp))
							return
						}
						for j, n := range res.Neighbors {
							if math.Abs(n.Dist-exp[j]) > 1e-9 {
								t.Errorf("worker %d query %d neighbor %d: dist %v, oracle %v", w, q, j, n.Dist, exp[j])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if live := ae.eng.liveQueryContexts(); live != 0 {
				t.Fatalf("%d query contexts still checked out after all queries returned", live)
			}
		})
	}
}

// countdownCtx cancels itself after a fixed number of cancellation checks —
// a deterministic way to stop a query mid-refinement, wherever "mid" happens
// to fall for the given countdown.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestCancellationReturnsContextToPool is the cancellation-path leak test:
// queries cancelled at every possible depth must still return their pooled
// context (the engine's live counter falls back to zero) and leave no
// goroutines behind.
func TestCancellationReturnsContextToPool(t *testing.T) {
	net, objs, _, queries := allocFixture(t)
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			cancelled := 0
			for i := 0; i < 60; i++ {
				ctx := &countdownCtx{Context: context.Background(), left: i % 12}
				q := queries[i%len(queries)]
				switch i % 4 {
				case 0:
					if _, err := ae.eng.Query(ctx, objs, q, 10); err != nil {
						cancelled++
					}
				case 1:
					if _, err := ae.eng.WithinDistance(ctx, objs, q, 0.3); err != nil {
						cancelled++
					}
				case 2:
					for _, err := range ae.eng.Neighbors(ctx, objs, q) {
						if err != nil {
							cancelled++
							break
						}
					}
				case 3:
					if _, err := ae.eng.Distance(ctx, q, queries[(i+1)%len(queries)]); err != nil {
						cancelled++
					}
				}
				if live := ae.eng.liveQueryContexts(); live != 0 {
					t.Fatalf("iteration %d: %d contexts leaked", i, live)
				}
			}
			if cancelled == 0 {
				t.Fatal("no query was actually cancelled; countdown too generous to exercise the paths")
			}
			runtime.GC()
			if after := runtime.NumGoroutine(); after > before+2 {
				t.Fatalf("goroutines grew from %d to %d across cancelled queries", before, after)
			}
			t.Logf("%d/60 queries cancelled mid-flight, zero contexts leaked", cancelled)
		})
	}
}

// TestAllocBudgetTraced re-runs the query budgets with metrics recording
// AND phase tracing enabled (Engine.SetTracing — the silcserve
// configuration): the span is a struct field on the pooled context and
// fold-at-release is pure atomics, so full observability must not add a
// single steady-state allocation on any backend.
func TestAllocBudgetTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net, objs, _, queries := allocFixture(t)
	ctx := context.Background()
	for _, ae := range allocEngines(t, net) {
		ae.eng.SetTracing(true)
		t.Run(ae.name+"/knn", func(t *testing.T) {
			got := measureAllocs(func() {
				if _, err := ae.eng.Query(ctx, objs, queries[0], 10); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s traced: %.1f allocs/op (budget %d)", ae.name, got, budgetKNNAllocs)
			if got > budgetKNNAllocs {
				t.Fatalf("traced KNN allocates %.1f/op, budget %d — tracing added per-query garbage", got, budgetKNNAllocs)
			}
		})
		t.Run(ae.name+"/range", func(t *testing.T) {
			got := measureAllocs(func() {
				if _, err := ae.eng.WithinDistance(ctx, objs, queries[1], 0.25); err != nil {
					t.Fatal(err)
				}
			})
			if got > budgetRangeAllocs {
				t.Fatalf("traced range allocates %.1f/op, budget %d", got, budgetRangeAllocs)
			}
		})
		t.Run(ae.name+"/stats-opt", func(t *testing.T) {
			// WithStats on the scalar queries rides the same span; the
			// caller-supplied struct is the only destination, so the stats
			// fill itself must be allocation-free. A zero-option Distance
			// is fully stack-allocated; passing any Option costs exactly
			// one allocation in applyOptions (the resolved queryOptions
			// escapes through the indirect opt(&o) call) — an options-API
			// cost, not a metrics cost, so the bound here is bare+1.
			bare := measureAllocs(func() {
				if _, err := ae.eng.Distance(ctx, queries[2], queries[3]); err != nil {
					t.Fatal(err)
				}
			})
			var st QueryStats
			opt := WithStats(&st)
			got := measureAllocs(func() {
				if _, err := ae.eng.Distance(ctx, queries[2], queries[3], opt); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s traced distance: bare %.1f, +stats %.1f allocs/op", ae.name, bare, got)
			if bare > 0 {
				t.Fatalf("traced bare Distance allocates %.1f/op, want 0", bare)
			}
			if got > bare+1 {
				t.Fatalf("traced Distance with WithStats allocates %.1f/op, want ≤ %.1f", got, bare+1)
			}
		})
	}
}

// TestAllocBudgetScrapeDuringQueries proves a concurrent /metrics scrape
// never adds allocations to the query hot path: scrape-time allocation is
// the scraper's own cost, recording stays plain atomics.
func TestAllocBudgetScrapeDuringQueries(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net, objs, _, queries := allocFixture(t)
	ctx := context.Background()
	ae := allocEngines(t, net)[0] // monolithic: the tightest baseline
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sink bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
				sink.Reset()
				ae.eng.WriteMetrics(&sink)
			}
		}
	}()
	got := measureAllocs(func() {
		if _, err := ae.eng.Query(ctx, objs, queries[0], 10); err != nil {
			t.Fatal(err)
		}
	})
	close(stop)
	wg.Wait()
	t.Logf("KNN under concurrent scrape: %.1f allocs/op (budget %d)", got, budgetKNNAllocs)
	if got > budgetKNNAllocs {
		t.Fatalf("KNN under concurrent scrapes allocates %.1f/op, budget %d", got, budgetKNNAllocs)
	}
}

// TestAllocBudgetLiveKNN enforces the live-world extension of the tentpole
// property: a warm kNN over a pinned snapshot of a mutable object store
// costs no more allocations than one over a static set — View() is a cached
// atomic load while the version is unchanged, not a per-query rebuild.
func TestAllocBudgetLiveKNN(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net, _, vertices, queries := allocFixture(t)
	live, err := NewLiveObjects(net, LiveObjectsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	for _, v := range vertices {
		if _, _, err := live.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	q := queries[0]
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			got := measureAllocs(func() {
				if _, err := ae.eng.Query(ctx, live.View(), q, 10); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s: %.1f allocs/op (budget %d)", ae.name, got, budgetLiveKNNAllocs)
			if got > budgetLiveKNNAllocs {
				t.Fatalf("steady-state live-snapshot KNN allocates %.1f/op, budget %d", got, budgetLiveKNNAllocs)
			}
		})
	}
}
