package silc

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/knn"
	"silc/internal/store"
)

// queryBackend is what the unified Engine needs from an index
// implementation: the generic query surface the kNN family consumes plus
// context-attributed interval and path retrieval. Both the monolithic
// core.Index and the sharded partition index satisfy it, which is what lets
// one generic code path answer every query on both.
type queryBackend interface {
	core.QueryIndex
	DistanceIntervalCtx(qc *core.QueryContext, u, v graph.VertexID) core.Interval
	PathCtx(qc *core.QueryContext, u, v graph.VertexID) []graph.VertexID
}

// Engine is the primary query handle of the package: one request-scoped,
// context-aware query surface shared by the monolithic Index and the
// partitioned ShardedIndex. Obtain one with Index.Engine,
// ShardedIndex.Engine, or LoadEngine; the zero value is not usable.
//
// Every entry point takes a context.Context — cancellation and deadlines
// are checked inside the best-first search loop and the progressive
// refiners, so cancelling a request stops the in-flight work within one
// refinement step — validates its arguments at the API edge (typed errors:
// ErrVertexRange, ErrBadK, ErrNilObjects, ErrBadRadius, ErrBadEpsilon), and
// accepts functional options (WithMethod, WithEpsilon, WithMaxDistance,
// WithWorkers, WithExactDistances) in place of the old positional-argument
// combinatorics.
//
// An Engine is read-only and safe for unlimited concurrent use, exactly
// like the index it wraps.
type Engine struct {
	net   *Network
	qx    queryBackend
	mono  *Index
	shard *ShardedIndex
	// pager is set when the engine runs over a real on-disk store; it
	// reports the actual read counters next to the modeled ones.
	pager *store.Pager

	// qcPool recycles query contexts — and, through QueryContext.Scratch,
	// the per-query search arenas that hang off them — so the steady-state
	// query path stops allocating once the pool is warm. qcLive counts
	// contexts currently checked out; it must return to zero when no query
	// is in flight (the cancellation-leak test asserts exactly that).
	qcPool sync.Pool
	qcLive atomic.Int64

	// obs holds the engine's metric aggregates (see metrics.go). Always
	// non-nil on engines built through the package constructors; each
	// query's trace span is folded into it on context release, which is
	// what keeps recording off the per-query allocation budget.
	obs *engineObs
}

// newEngine is the single Engine constructor behind both index kinds;
// it wires the metric aggregates before the first query can run.
// Callers fill in mono/shard/pager afterwards — the scrape-time
// collectors read those fields lazily.
func newEngine(net *Network, qx queryBackend) *Engine {
	e := &Engine{net: net, qx: qx}
	e.obs = newEngineObs(e)
	return e
}

// acquireQC checks a query context out of the engine's pool, re-armed for
// ctx with its trace span stamped for entry point op. Contexts carry their
// search scratch (knn arenas, refiner slabs) across queries; ResetForReuse
// rewinds everything else.
func (e *Engine) acquireQC(ctx context.Context, op uint8) *core.QueryContext {
	e.qcLive.Add(1)
	qc, ok := e.qcPool.Get().(*core.QueryContext)
	if ok {
		qc.ResetForReuse(ctx)
	} else {
		qc = core.NewQueryContextFor(ctx)
	}
	e.beginSpan(qc, op)
	return qc
}

// releaseQC folds the finished span into the engine aggregates and returns
// the context to the pool. Every acquire must be paired with exactly one
// release on every exit path — including error returns and cancellation
// (cancelled queries fold their partial span) — or the scratch arena leaks
// and qcLive drifts upward.
func (e *Engine) releaseQC(qc *core.QueryContext) {
	e.obs.fold(qc)
	e.qcLive.Add(-1)
	e.qcPool.Put(qc)
}

// liveQueryContexts reports how many pooled contexts are checked out right
// now. Test hook: after all queries return (even cancelled ones) it is zero.
func (e *Engine) liveQueryContexts() int64 { return e.qcLive.Load() }

// Network returns the indexed network.
func (e *Engine) Network() *Network { return e.net }

// Monolithic returns the underlying monolithic index, when the engine wraps
// one (build/format statistics live on the concrete types).
func (e *Engine) Monolithic() (*Index, bool) { return e.mono, e.mono != nil }

// Sharded returns the underlying partitioned index, when the engine wraps
// one.
func (e *Engine) Sharded() (*ShardedIndex, bool) { return e.shard, e.shard != nil }

// IOStats returns cumulative pool-wide buffer-pool statistics (zeros for
// memory-resident indexes). Per-query traffic is on each Result's Stats;
// summing the per-query counters over a workload reproduces these
// pool-wide totals exactly, because the pool charges each touch to both
// at once. For disk-backed engines (OpenIndex / OpenEngine) the actual
// read count and measured read time appear next to the modeled figures;
// on a sharded paged engine (OpenShardedIndex) all cell stores share one
// pool and one pager, so every figure here aggregates across all cells —
// there is no per-cell breakdown at this level (WriteMetrics exposes
// per-store series).
func (e *Engine) IOStats() IOStats {
	t := e.qx.Tracker()
	s := t.Stats()
	out := IOStats{PageHits: s.Hits, PageMisses: s.Misses, ModeledIOTime: t.ModeledIOTime()}
	if e.pager != nil {
		rs := e.pager.ReadStats()
		out.PageReads = rs.Reads
		out.MeasuredIOTime = rs.Time
	}
	return out
}

// Close releases the file behind a disk-backed engine (OpenEngine); it is
// a no-op for in-RAM engines and engines whose reader the caller owns.
func (e *Engine) Close() error {
	switch {
	case e.mono != nil:
		return e.mono.Close()
	case e.shard != nil:
		return e.shard.Close()
	}
	return nil
}

// ResetIOStats zeroes the buffer-pool counters — and, on a disk-backed
// engine, the actual read counters of every registered store with them
// (all cells of a sharded paged engine), so a measurement window's
// modeled and measured figures describe the same workload. Cache contents
// stay warm. The Prometheus counters (WriteMetrics) are monotone and are
// deliberately NOT reset.
func (e *Engine) ResetIOStats() {
	if t := e.qx.Tracker(); t != nil {
		t.ResetStats()
	}
	if e.pager != nil {
		e.pager.ResetReadStats()
	}
}

// Distance returns the exact network distance from u to v by full
// progressive refinement (+Inf when v is unreachable or beyond a
// proximity-bounded index's radius). Cancelling ctx stops the refinement
// and returns ctx's error. WithStats captures the query's execution
// statistics; other options are accepted and ignored.
func (e *Engine) Distance(ctx context.Context, u, v VertexID, opts ...Option) (float64, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return 0, err
	}
	if err := checkVertex(e.net, "src", u); err != nil {
		return 0, err
	}
	if err := checkVertex(e.net, "dst", v); err != nil {
		return 0, err
	}
	qc := e.acquireQC(ctx, opDistance)
	defer e.releaseQC(qc)
	d := core.ExactDistance(e.qx, qc, u, v)
	if err := qc.Err(); err != nil {
		return 0, err
	}
	if o.statsInto != nil {
		e.fillStats(qc, "DISTANCE", o.statsInto)
	}
	return d, nil
}

// DistanceInterval returns the zero-refinement network-distance interval
// between u and v: a bounded number of lookups, no graph search.
// WithStats captures the query's execution statistics.
func (e *Engine) DistanceInterval(ctx context.Context, u, v VertexID, opts ...Option) (Interval, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return Interval{}, err
	}
	if err := checkVertex(e.net, "src", u); err != nil {
		return Interval{}, err
	}
	if err := checkVertex(e.net, "dst", v); err != nil {
		return Interval{}, err
	}
	qc := e.acquireQC(ctx, opInterval)
	defer e.releaseQC(qc)
	iv := e.qx.DistanceIntervalCtx(qc, u, v)
	if err := qc.Err(); err != nil {
		return Interval{}, err
	}
	if o.statsInto != nil {
		e.fillStats(qc, "INTERVAL", o.statsInto)
	}
	return iv, nil
}

// ShortestPath retrieves the exact shortest path from u to v, inclusive of
// both endpoints (nil when v is unreachable). Cancelling ctx abandons the
// retrieval and returns ctx's error. WithStats captures the query's
// execution statistics.
func (e *Engine) ShortestPath(ctx context.Context, u, v VertexID, opts ...Option) ([]VertexID, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := checkVertex(e.net, "src", u); err != nil {
		return nil, err
	}
	if err := checkVertex(e.net, "dst", v); err != nil {
		return nil, err
	}
	qc := e.acquireQC(ctx, opPath)
	defer e.releaseQC(qc)
	path := e.qx.PathCtx(qc, u, v)
	if err := qc.Err(); err != nil {
		return nil, err
	}
	if o.statsInto != nil {
		e.fillStats(qc, "PATH", o.statsInto)
	}
	return path, nil
}

// IsCloser reports whether u is strictly closer to a than to b by network
// distance, refining both intervals only as far as the comparison requires.
func (e *Engine) IsCloser(ctx context.Context, u, a, b VertexID) (bool, error) {
	if err := checkVertex(e.net, "src", u); err != nil {
		return false, err
	}
	if err := checkVertex(e.net, "a", a); err != nil {
		return false, err
	}
	if err := checkVertex(e.net, "b", b); err != nil {
		return false, err
	}
	qc := e.acquireQC(ctx, opIsCloser)
	defer e.releaseQC(qc)
	ra := e.qx.Refine(qc, u, a)
	rb := e.qx.Refine(qc, u, b)
	for {
		if err := qc.Err(); err != nil {
			return false, err
		}
		ia, ib := ra.Interval(), rb.Interval()
		if ia.Hi < ib.Lo {
			return true, nil
		}
		if ib.Hi <= ia.Lo {
			return false, nil
		}
		// Intervals collide: refine the wider one first; a stuck refiner
		// (exact, or out of range) cedes to the other.
		aStuck := ra.Done() || ra.OutOfRange()
		bStuck := rb.Done() || rb.OutOfRange()
		switch {
		case aStuck && bStuck:
			return ia.Lo < ib.Lo, nil
		case aStuck:
			rb.Step()
		case bStuck:
			ra.Step()
		case ia.Hi-ia.Lo >= ib.Hi-ib.Lo:
			ra.Step()
		default:
			rb.Step()
		}
	}
}

// Query returns up to k objects of objs nearest to q by network distance.
// Options: WithMethod selects the algorithm (default MethodKNN), WithEpsilon
// relaxes ranking to ε-approximate, WithMaxDistance bounds results to a
// radius (the hybrid kNN∩range query), WithExactDistances refines every
// reported distance to exact. Distances are otherwise refined only as far
// as the ranking requires — exact only where Neighbor.Exact is set.
//
// Cancelling ctx stops the search within one refinement step; the neighbors
// certified so far are returned alongside ctx's error.
func (e *Engine) Query(ctx context.Context, objs *ObjectSet, q VertexID, k int, opts ...Option) (Result, error) {
	o, err := e.checkQuery(objs, q, k, opts)
	if err != nil {
		return Result{}, err
	}
	qc := e.acquireQC(ctx, opKNN)
	defer e.releaseQC(qc)
	res, err := e.runSpec(qc, objs, q, k, o)
	res.Stats.SnapshotVersion = objs.version
	if err != nil {
		return res, err
	}
	if o.exact {
		if err := e.exactify(qc, q, &res); err != nil {
			return res, err
		}
	}
	e.foldIO(qc, &res.Stats)
	return res, nil
}

// checkQuery validates the shared (objs, q, k, opts) prefix of the kNN
// entry points.
func (e *Engine) checkQuery(objs *ObjectSet, q VertexID, k int, opts []Option) (queryOptions, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return o, err
	}
	if err := checkObjects(objs); err != nil {
		return o, err
	}
	if err := checkVertex(e.net, "q", q); err != nil {
		return o, err
	}
	if err := checkK(k); err != nil {
		return o, err
	}
	return o, nil
}

// runSpec dispatches one kNN query to the selected algorithm — the single
// generic code path behind both engines and every public entry point.
func (e *Engine) runSpec(qc *core.QueryContext, objs *ObjectSet, q VertexID, k int, o queryOptions) (Result, error) {
	spec := knn.Spec{K: k, Epsilon: o.epsilon, MaxDist: o.maxDist}
	var raw knn.Result
	switch o.method {
	case MethodINE:
		raw = knn.INESpec(e.qx, qc, objs.objs, q, spec)
	case MethodIER:
		raw = knn.IERSpec(e.qx, qc, objs.objs, q, spec)
	case MethodINN:
		spec.Variant = knn.VariantINN
		raw = knn.SearchSpec(e.qx, qc, objs.objs, q, spec)
	case MethodKNNI:
		spec.Variant = knn.VariantKNNI
		raw = knn.SearchSpec(e.qx, qc, objs.objs, q, spec)
	case MethodKNNM:
		spec.Variant = knn.VariantKNNM
		raw = knn.SearchSpec(e.qx, qc, objs.objs, q, spec)
	default:
		spec.Variant = knn.VariantKNN
		raw = knn.SearchSpec(e.qx, qc, objs.objs, q, spec)
	}
	return convertResult(raw), raw.Err
}

// exactify refines every reported neighbor's distance to exact, charging
// the work to the query's own context.
func (e *Engine) exactify(qc *core.QueryContext, q VertexID, res *Result) error {
	for i := range res.Neighbors {
		n := &res.Neighbors[i]
		if n.Exact {
			continue
		}
		d := core.ExactDistance(e.qx, qc, q, n.Vertex)
		if err := qc.Err(); err != nil {
			return err
		}
		n.Dist = d
		n.Interval = Interval{Lo: d, Hi: d}
		n.Exact = true
	}
	return nil
}

// foldIO re-reads the query context's accumulated buffer-pool traffic and
// trace span into the result statistics, covering follow-up work
// (exactification) performed after the algorithm's own clock stopped.
func (e *Engine) foldIO(qc *core.QueryContext, s *QueryStats) {
	s.PageHits = qc.IO.Hits
	s.PageMisses = qc.IO.Misses
	s.PageReads = qc.IO.Reads
	s.Evictions = qc.IO.Evictions
	s.BlocksDecoded = qc.IO.BlocksDecoded
	s.IOTime = qc.IO.ModeledIOTime(e.qx.Tracker().MissLatency())
	s.HeapPushes = qc.Span.HeapPushes
	s.GatewayRoutes = qc.Span.GatewayRoutes
	if qc.Span.Timed {
		s.FilterTime = time.Duration(qc.Span.FilterNanos)
		if s.CPUTime > s.FilterTime {
			s.RefineTime = s.CPUTime - s.FilterTime
		}
	}
}

// fillStats builds QueryStats for the point-query entry points (Distance,
// DistanceInterval, ShortestPath), which have no knn.Stats to convert: the
// refinement count and clock come from the trace span.
func (e *Engine) fillStats(qc *core.QueryContext, method string, s *QueryStats) {
	*s = QueryStats{
		Method:      method,
		Refinements: int(qc.Span.Refinements),
		CPUTime:     time.Since(qc.Span.Begin),
	}
	e.foldIO(qc, s)
}

// WithinDistance returns every object whose network distance from q is at
// most radius — the network-distance range query. Results are unordered;
// intervals are refined exactly far enough to decide membership, so Dist is
// exact only where Exact is set (WithExactDistances refines the rest).
func (e *Engine) WithinDistance(ctx context.Context, objs *ObjectSet, q VertexID, radius float64, opts ...Option) (Result, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return Result{}, err
	}
	if err := checkObjects(objs); err != nil {
		return Result{}, err
	}
	if err := checkVertex(e.net, "q", q); err != nil {
		return Result{}, err
	}
	if err := checkRadius(radius); err != nil {
		return Result{}, err
	}
	qc := e.acquireQC(ctx, opRange)
	defer e.releaseQC(qc)
	raw := knn.RangeSearchCtx(e.qx, qc, objs.objs, q, radius)
	res := convertResult(raw)
	res.Stats.SnapshotVersion = objs.version
	if raw.Err != nil {
		return res, raw.Err
	}
	if o.exact {
		if err := e.exactify(qc, q, &res); err != nil {
			return res, err
		}
	}
	e.foldIO(qc, &res.Stats)
	return res, nil
}

// Neighbors streams the objects of objs in increasing network distance from
// q — the paper's incremental "distance browsing" as a Go iterator. The
// (k+1)st neighbor costs only incremental search; breaking out of the range
// loop abandons the remaining work, and cancelling ctx ends the stream with
// ctx's error within one refinement step.
//
// Options: WithEpsilon streams ε-approximate neighbors (distances then
// carry their certifying interval, Exact false, and are NOT post-refined);
// WithMaxDistance ends the stream at the distance bound. Without epsilon
// every yielded distance is refined to exact, like the classic Browser.
//
// A yielded non-nil error (argument validation, or ctx cancellation) is the
// final element of the sequence.
func (e *Engine) Neighbors(ctx context.Context, objs *ObjectSet, q VertexID, opts ...Option) iter.Seq2[Neighbor, error] {
	return func(yield func(Neighbor, error) bool) {
		o, err := resolveOptions(opts)
		if err == nil {
			if err = checkObjects(objs); err == nil {
				err = checkVertex(e.net, "q", q)
			}
		}
		if err != nil {
			yield(Neighbor{}, err)
			return
		}
		// The context is released when the iterator ends — whether the
		// stream drains, the consumer breaks, or cancellation cuts it short.
		qc := e.acquireQC(ctx, opNeighbors)
		defer e.releaseQC(qc)
		br := knn.NewBrowserSpec(e.qx, qc, objs.objs, q, knn.Spec{Epsilon: o.epsilon, MaxDist: o.maxDist})
		flushStats := func() {
			if o.statsInto != nil {
				*o.statsInto = convertBrowserStats(br.Stats())
				o.statsInto.SnapshotVersion = objs.version
				e.foldIO(qc, o.statsInto)
			}
		}
		defer flushStats()
		for {
			raw, ok := br.Next()
			if !ok {
				if err := br.Err(); err != nil {
					yield(Neighbor{}, err)
				}
				return
			}
			n := Neighbor{
				ID:       raw.Object.ID,
				Vertex:   raw.Object.Vertex,
				Dist:     raw.Dist,
				Interval: raw.Interval,
				Exact:    raw.Exact,
			}
			if !n.Exact && o.epsilon == 0 {
				// Exact-mode browsing refines each reported neighbor fully,
				// charging the cursor's own context.
				d := core.ExactDistance(e.qx, qc, q, n.Vertex)
				if err := qc.Err(); err != nil {
					yield(Neighbor{}, err)
					return
				}
				n.Dist, n.Interval, n.Exact = d, Interval{Lo: d, Hi: d}, true
			}
			if !yield(n, nil) {
				return
			}
		}
	}
}

// Browse positions a classic incremental cursor at q over objs, bound to
// ctx: Next returns false once ctx is cancelled (inspect Browser.Err).
// Most callers want the Neighbors iterator instead; Browse remains for
// cursor-style consumers that interleave Next with other work.
func (e *Engine) Browse(ctx context.Context, objs *ObjectSet, q VertexID, opts ...Option) (*Browser, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := checkObjects(objs); err != nil {
		return nil, err
	}
	if err := checkVertex(e.net, "q", q); err != nil {
		return nil, err
	}
	// Deliberately unpooled: the Browser owns this context for its whole
	// lifetime and the engine never learns when the caller is done with it.
	qc := core.NewQueryContextFor(ctx)
	b := knn.NewBrowserSpec(e.qx, qc, objs.objs, q, knn.Spec{Epsilon: o.epsilon, MaxDist: o.maxDist})
	return &Browser{qx: e.qx, b: b, eps: o.epsilon, ver: objs.version}, nil
}
