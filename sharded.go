package silc

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"silc/internal/partition"
	"silc/internal/store"
)

// ShardedBuildOptions configures BuildShardedIndex.
type ShardedBuildOptions struct {
	// Partitions is the cell count P. Each cell builds an independent SILC
	// index over its induced subnetwork — O(n/P) Dijkstra sources per cell
	// instead of O(n) overall, and Θ(n^1.5/√P) Morton blocks in total — and
	// a one-time boundary closure stitches cross-cell queries back to exact
	// answers. 0 and 1 both mean a single cell.
	Partitions int
	// Parallelism bounds the build workers (0 = all CPUs).
	Parallelism int
	// DiskResident attaches one paged-storage tracker shared by every cell
	// index and the network, so CacheFraction stays a property of the whole
	// database (the paper's 5% setting), not of each shard.
	DiskResident bool
	// CacheFraction sizes the shared LRU buffer pool (default 0.05).
	CacheFraction float64
	// MissLatency is the modeled cost of one page miss (0 = the 200µs
	// default).
	MissLatency time.Duration
	// Compression selects the paged image encoding WritePaged/WriteFile
	// emit for every cell image — CompressionNone (fixed-width SILCSPG1) or
	// CompressionDelta (delta+varint SILCSPG2). Opening sniffs the format.
	Compression Compression
	// Mmap makes OpenShardedIndex access the file through one read-only
	// memory mapping shared by every cell store, falling back to positioned
	// reads on platforms without mmap.
	Mmap bool
}

// ShardedStats describes a completed sharded build: per-cell index
// statistics plus the partitioner's and closure's own accounting.
type ShardedStats = partition.Stats

// ShardedIndex is a partitioned SILC index: P per-cell shortest-path
// quadtree indexes plus an exact boundary-vertex distance closure. It
// answers exactly the same query surface as Index — through the same
// unified Engine handle (ShardedIndex.Engine) and the same generic code
// path: intra-cell queries in self-contained cells delegate straight to the
// cell index, and cross-cell queries route through the closure. Like Index,
// a ShardedIndex is read-only on the query path and safe for unlimited
// concurrent readers. The query methods on ShardedIndex itself are thin
// deprecated shims kept for pre-Engine callers.
type ShardedIndex struct {
	net    *Network
	sx     *partition.Sharded
	eng    *Engine
	closer io.Closer // file behind a disk-backed sharded index; nil in-RAM
}

// newShardedIndex wires a built partition index to its unified query engine.
func newShardedIndex(net *Network, sx *partition.Sharded) *ShardedIndex {
	ix := &ShardedIndex{net: net, sx: sx}
	ix.eng = newEngine(net, sx)
	ix.eng.shard = ix
	ix.eng.pager = sx.StorePager()
	return ix
}

// Close releases the file behind a disk-backed sharded index (no-op
// otherwise). Queries must not run concurrently with or after Close.
func (sx *ShardedIndex) Close() error {
	if sx.closer != nil {
		return sx.closer.Close()
	}
	return nil
}

// Engine returns the unified context-aware query handle over this sharded
// index — the primary query surface of the package.
func (sx *ShardedIndex) Engine() *Engine { return sx.eng }

func shardedOptions(opts ShardedBuildOptions) partition.Options {
	return partition.Options{
		Partitions:    opts.Partitions,
		Parallelism:   opts.Parallelism,
		DiskResident:  opts.DiskResident,
		CacheFraction: opts.CacheFraction,
		MissLatency:   opts.MissLatency,
		Compression:   opts.Compression,
	}
}

// WritePaged serializes the sharded index in the page-aligned on-disk
// format (conventionally *.silcspg): the global network and partition
// metadata embedded, plus one complete paged store image per cell that
// OpenShardedIndex reads back on demand through one shared buffer pool.
func (sx *ShardedIndex) WritePaged(w io.Writer) (int64, error) { return sx.sx.WritePaged(w) }

// WriteFile writes the paged on-disk format to path (fsynced).
func (sx *ShardedIndex) WriteFile(path string) error {
	return writeFileSynced(path, sx.WritePaged)
}

// PagedImageInfo reports the section layout and compression ratio of the
// sharded paged image WritePaged would produce, without writing it.
func (sx *ShardedIndex) PagedImageInfo() (ImageInfo, error) {
	return sx.sx.PagedImageInfo()
}

// writeFileSynced writes one serialization to path, fsyncing before close
// so a crash cannot leave a torn file behind a successful return.
func writeFileSynced(path string, write func(io.Writer) (int64, error)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenShardedIndex opens a sharded paged file (ShardedIndex.WriteFile or
// silcbuild -format=paged -partitions N). The file is self-contained; each
// cell opens its own on-disk store and all cells share one buffer pool
// sized by opts.CacheFraction of the whole database. Close the returned
// index to release the file.
func OpenShardedIndex(path string, opts ShardedBuildOptions) (*ShardedIndex, error) {
	if opts.Mmap {
		if data, closer, err := store.MapFile(path); err == nil {
			po := shardedOptions(opts)
			po.Mapped = data
			sx, err := partition.OpenPaged(bytes.NewReader(data), int64(len(data)), po)
			if err != nil {
				closer.Close()
				return nil, err
			}
			ix := newShardedIndex(&Network{g: sx.Network()}, sx)
			ix.closer = closer
			return ix, nil
		}
		// mmap unavailable: fall through to the positioned-read open.
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sx, err := partition.OpenPaged(f, info.Size(), shardedOptions(opts))
	if err != nil {
		f.Close()
		return nil, err
	}
	ix := newShardedIndex(&Network{g: sx.Network()}, sx)
	ix.closer = f
	return ix, nil
}

// OpenShardedIndexAt is OpenShardedIndex over an arbitrary ReaderAt; the
// caller owns ra's lifetime.
func OpenShardedIndexAt(ra io.ReaderAt, size int64, opts ShardedBuildOptions) (*ShardedIndex, error) {
	sx, err := partition.OpenPaged(ra, size, shardedOptions(opts))
	if err != nil {
		return nil, err
	}
	return newShardedIndex(&Network{g: sx.Network()}, sx), nil
}

// BuildShardedIndex partitions net into opts.Partitions spatial cells
// (kd-cut over vertex coordinates), builds one SILC index per cell, and
// computes the boundary closure. The network must be strongly connected —
// validated during the build even though individual cells may be internally
// disconnected.
func BuildShardedIndex(net *Network, opts ShardedBuildOptions) (*ShardedIndex, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	sx, err := partition.Build(net.g, shardedOptions(opts))
	if err != nil {
		return nil, err
	}
	return newShardedIndex(net, sx), nil
}

// WriteTo serializes the sharded index — partition labels, every cell
// index, and the boundary closure — so the precomputation is reusable
// across processes, mirroring Index.WriteTo.
func (sx *ShardedIndex) WriteTo(w io.Writer) (int64, error) { return sx.sx.WriteTo(w) }

// LoadShardedIndex deserializes a sharded index produced by
// ShardedIndex.WriteTo and binds it to net, which must be the network it
// was built from. Partitions in opts is ignored (the file records P).
func LoadShardedIndex(r io.Reader, net *Network, opts ShardedBuildOptions) (*ShardedIndex, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	sx, err := partition.Load(r, net.g, shardedOptions(opts))
	if err != nil {
		return nil, err
	}
	return newShardedIndex(net, sx), nil
}

// Network returns the indexed network.
func (sx *ShardedIndex) Network() *Network { return sx.net }

// Stats returns the sharded build statistics.
func (sx *ShardedIndex) Stats() ShardedStats { return sx.sx.Stats() }

// NumPartitions returns the cell count P.
func (sx *ShardedIndex) NumPartitions() int { return sx.sx.NumPartitions() }

// PartitionOf returns the cell holding vertex v.
func (sx *ShardedIndex) PartitionOf(v VertexID) int { return sx.sx.CellOf(v) }

// Distance returns the exact global network distance from u to v.
//
// Deprecated: use Engine.Distance for cancellation and error returns.
func (sx *ShardedIndex) Distance(u, v VertexID) float64 { return legacyDistance(sx.eng, u, v) }

// DistanceInterval returns a refinement-free interval guaranteed to contain
// the exact network distance: one quadtree lookup for intra-cell pairs in
// self-contained cells, boundary-interval × closure bounds otherwise.
//
// Deprecated: use Engine.DistanceInterval.
func (sx *ShardedIndex) DistanceInterval(u, v VertexID) Interval {
	return legacyInterval(sx.eng, u, v)
}

// ShortestPath retrieves an exact shortest path from u to v, inclusive of
// both endpoints, stitched across cells through the closure's hop chains.
//
// Deprecated: use Engine.ShortestPath for cancellation and error returns.
func (sx *ShardedIndex) ShortestPath(u, v VertexID) []VertexID { return legacyPath(sx.eng, u, v) }

// IsCloser reports whether u is strictly closer to a than to b by network
// distance, refining only as far as the comparison requires.
//
// Deprecated: use Engine.IsCloser for cancellation and error returns.
func (sx *ShardedIndex) IsCloser(u, a, b VertexID) bool { return legacyIsCloser(sx.eng, u, a, b) }

// NearestNeighbors returns the k nearest objects to q by exact network
// distance (the paper's kNN algorithm, fully refined).
//
// Deprecated: use Engine.Query with WithExactDistances.
func (sx *ShardedIndex) NearestNeighbors(objs *ObjectSet, q VertexID, k int) Result {
	return legacyQuery(sx.eng, objs, q, k, WithExactDistances())
}

// Query runs the selected kNN method over the sharded index; all methods —
// including the INE/IER graph-expansion baselines — are supported.
//
// Deprecated: use Engine.Query with WithMethod.
func (sx *ShardedIndex) Query(objs *ObjectSet, q VertexID, k int, method Method) Result {
	return legacyQuery(sx.eng, objs, q, k, WithMethod(method))
}

// QueryBatch answers one kNN query per vertex over a bounded worker pool,
// exactly like Index.QueryBatch.
//
// Deprecated: use Engine.QueryBatch.
func (sx *ShardedIndex) QueryBatch(objs *ObjectSet, queries []VertexID, k int, method Method) BatchResult {
	return legacyBatch(sx.eng, objs, queries, k, method, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit worker-pool bound.
//
// Deprecated: use Engine.QueryBatch with WithWorkers.
func (sx *ShardedIndex) QueryBatchWorkers(objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult {
	return legacyBatch(sx.eng, objs, queries, k, method, workers)
}

// WithinDistance returns every object within network distance radius of q.
//
// Deprecated: use Engine.WithinDistance for cancellation and error returns.
func (sx *ShardedIndex) WithinDistance(objs *ObjectSet, q VertexID, radius float64) Result {
	return legacyWithin(sx.eng, objs, q, radius)
}

// Browse positions an incremental distance-browsing cursor at q over objs.
//
// Deprecated: use Engine.Neighbors (iterator) or Engine.Browse.
func (sx *ShardedIndex) Browse(objs *ObjectSet, q VertexID) *Browser {
	return legacyBrowse(sx.eng, objs, q)
}

// IOStats returns cumulative traffic of the shared buffer pool (zeros when
// memory-resident).
func (sx *ShardedIndex) IOStats() IOStats { return sx.eng.IOStats() }

// ResetIOStats zeroes the shared pool's counters, keeping cache contents
// warm.
func (sx *ShardedIndex) ResetIOStats() { sx.eng.ResetIOStats() }

// LoadEngine sniffs the index file format and loads any of the six index
// formats — legacy monolithic (SILCIDX1), legacy sharded (SILCSHD1), paged
// monolithic fixed-width or compressed (SILCPG1, SILCPG2), paged sharded
// fixed-width or compressed (SILCSPG1, SILCSPG2) — returning its unified
// query Engine; this is the loader the CLI tools use so one -index flag
// accepts every format. The concrete index is reachable through
// Engine.Monolithic / Engine.Sharded.
//
// The paged formats are self-contained (the network is embedded), demand-
// paged, and require r to be an io.ReaderAt with a known size (*os.File,
// *bytes.Reader); the reader must stay open for the engine's lifetime.
// When net is non-nil it is cross-checked against the embedded network.
// The legacy formats load fully into memory and require net.
func LoadEngine(r io.Reader, net *Network, opts BuildOptions) (*Engine, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, err
	}
	switch string(magic) {
	case store.MagicString, store.Magic2String, store.ShardedMagicString, store.ShardedMagic2String:
		ra, size, err := readerAtSize(r)
		if err != nil {
			return nil, err
		}
		var eng *Engine
		if m := string(magic); m == store.MagicString || m == store.Magic2String {
			ix, err := OpenIndexAt(ra, size, opts)
			if err != nil {
				return nil, err
			}
			eng = ix.Engine()
		} else {
			sx, err := OpenShardedIndexAt(ra, size, ShardedBuildOptions{
				CacheFraction: opts.CacheFraction,
				MissLatency:   opts.MissLatency,
			})
			if err != nil {
				return nil, err
			}
			eng = sx.Engine()
		}
		if net != nil && (net.NumVertices() != eng.Network().NumVertices() || net.NumEdges() != eng.Network().NumEdges()) {
			return nil, fmt.Errorf("silc: paged index embeds a %d-vertex network, supplied network has %d",
				eng.Network().NumVertices(), net.NumVertices())
		}
		return eng, nil
	case partition.MagicString:
		sx, err := LoadShardedIndex(br, net, ShardedBuildOptions{
			Parallelism:   opts.Parallelism,
			DiskResident:  opts.DiskResident,
			CacheFraction: opts.CacheFraction,
			MissLatency:   opts.MissLatency,
		})
		if err != nil {
			return nil, err
		}
		return sx.Engine(), nil
	}
	ix, err := LoadIndex(br, net, opts)
	if err != nil {
		return nil, err
	}
	return ix.Engine(), nil
}

// readerAtSize extracts random access plus a total size from a sequential
// reader — satisfied by *os.File and *bytes.Reader, the two ways paged
// indexes are actually opened.
func readerAtSize(r io.Reader) (io.ReaderAt, int64, error) {
	ra, ok := r.(io.ReaderAt)
	if !ok {
		return nil, 0, errors.New("silc: paged index formats need an io.ReaderAt (open the file with OpenEngine, OpenIndex, or OpenShardedIndex)")
	}
	switch s := r.(type) {
	case interface{ Stat() (fs.FileInfo, error) }:
		info, err := s.Stat()
		if err != nil {
			return nil, 0, err
		}
		return ra, info.Size(), nil
	case interface{ Size() int64 }:
		return ra, s.Size(), nil
	}
	return nil, 0, errors.New("silc: cannot determine the paged index size (reader has neither Stat nor Size)")
}

// OpenEngine opens an index file by path, sniffing its format: the paged
// formats open demand-paged and self-contained (net may be nil), the
// legacy formats load fully and require net. The returned engine owns the
// file; Engine.Close releases it.
func OpenEngine(path string, net *Network, opts BuildOptions) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	switch string(magic[:]) {
	case store.MagicString, store.Magic2String, store.ShardedMagicString, store.ShardedMagic2String:
		if opts.Mmap {
			// Route by path so the paged stores read through a memory
			// mapping; the mapped opens own their file handle.
			f.Close()
			var eng *Engine
			if m := string(magic[:]); m == store.MagicString || m == store.Magic2String {
				ix, err := OpenIndex(path, opts)
				if err != nil {
					return nil, err
				}
				eng = ix.Engine()
			} else {
				sx, err := OpenShardedIndex(path, ShardedBuildOptions{
					CacheFraction: opts.CacheFraction,
					MissLatency:   opts.MissLatency,
					Mmap:          true,
				})
				if err != nil {
					return nil, err
				}
				eng = sx.Engine()
			}
			if net != nil && (net.NumVertices() != eng.Network().NumVertices() || net.NumEdges() != eng.Network().NumEdges()) {
				eng.Close()
				return nil, fmt.Errorf("silc: paged index embeds a %d-vertex network, supplied network has %d",
					eng.Network().NumVertices(), net.NumVertices())
			}
			return eng, nil
		}
		eng, err := LoadEngine(f, net, opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		// The engine reads pages from f for its whole lifetime.
		switch {
		case eng.mono != nil:
			eng.mono.closer = f
		case eng.shard != nil:
			eng.shard.closer = f
		}
		return eng, nil
	default:
		if net == nil {
			f.Close()
			return nil, fmt.Errorf("silc: index %s is a legacy format, which does not embed the network — supply one", path)
		}
		eng, err := LoadEngine(f, net, opts)
		f.Close() // legacy formats are fully loaded
		if err != nil {
			return nil, err
		}
		return eng, nil
	}
}
