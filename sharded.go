package silc

import (
	"bufio"
	"errors"
	"io"
	"time"

	"silc/internal/knn"
	"silc/internal/partition"
)

// ShardedBuildOptions configures BuildShardedIndex.
type ShardedBuildOptions struct {
	// Partitions is the cell count P. Each cell builds an independent SILC
	// index over its induced subnetwork — O(n/P) Dijkstra sources per cell
	// instead of O(n) overall, and Θ(n^1.5/√P) Morton blocks in total — and
	// a one-time boundary closure stitches cross-cell queries back to exact
	// answers. 0 and 1 both mean a single cell.
	Partitions int
	// Parallelism bounds the build workers (0 = all CPUs).
	Parallelism int
	// DiskResident attaches one paged-storage tracker shared by every cell
	// index and the network, so CacheFraction stays a property of the whole
	// database (the paper's 5% setting), not of each shard.
	DiskResident bool
	// CacheFraction sizes the shared LRU buffer pool (default 0.05).
	CacheFraction float64
	// MissLatency is the modeled cost of one page miss (0 = the 200µs
	// default).
	MissLatency time.Duration
}

// ShardedStats describes a completed sharded build: per-cell index
// statistics plus the partitioner's and closure's own accounting.
type ShardedStats = partition.Stats

// ShardedIndex is a partitioned SILC index: P per-cell shortest-path
// quadtree indexes plus an exact boundary-vertex distance closure. It
// answers the same query surface as Index — Distance, DistanceInterval,
// ShortestPath, NearestNeighbors, Query/QueryBatch, WithinDistance,
// IsCloser, Browse — with identical (exact) results: intra-cell queries in
// self-contained cells delegate straight to the cell index, and cross-cell
// queries route through the closure. Like Index, a ShardedIndex is
// read-only on the query path and safe for unlimited concurrent readers.
type ShardedIndex struct {
	net *Network
	sx  *partition.Sharded
}

func shardedOptions(opts ShardedBuildOptions) partition.Options {
	return partition.Options{
		Partitions:    opts.Partitions,
		Parallelism:   opts.Parallelism,
		DiskResident:  opts.DiskResident,
		CacheFraction: opts.CacheFraction,
		MissLatency:   opts.MissLatency,
	}
}

// BuildShardedIndex partitions net into opts.Partitions spatial cells
// (kd-cut over vertex coordinates), builds one SILC index per cell, and
// computes the boundary closure. The network must be strongly connected —
// validated during the build even though individual cells may be internally
// disconnected.
func BuildShardedIndex(net *Network, opts ShardedBuildOptions) (*ShardedIndex, error) {
	if net == nil {
		return nil, errors.New("silc: nil network")
	}
	sx, err := partition.Build(net.g, shardedOptions(opts))
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{net: net, sx: sx}, nil
}

// WriteTo serializes the sharded index — partition labels, every cell
// index, and the boundary closure — so the precomputation is reusable
// across processes, mirroring Index.WriteTo.
func (sx *ShardedIndex) WriteTo(w io.Writer) (int64, error) { return sx.sx.WriteTo(w) }

// LoadShardedIndex deserializes a sharded index produced by
// ShardedIndex.WriteTo and binds it to net, which must be the network it
// was built from. Partitions in opts is ignored (the file records P).
func LoadShardedIndex(r io.Reader, net *Network, opts ShardedBuildOptions) (*ShardedIndex, error) {
	if net == nil {
		return nil, errors.New("silc: nil network")
	}
	sx, err := partition.Load(r, net.g, shardedOptions(opts))
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{net: net, sx: sx}, nil
}

// Network returns the indexed network.
func (sx *ShardedIndex) Network() *Network { return sx.net }

// Stats returns the sharded build statistics.
func (sx *ShardedIndex) Stats() ShardedStats { return sx.sx.Stats() }

// NumPartitions returns the cell count P.
func (sx *ShardedIndex) NumPartitions() int { return sx.sx.NumPartitions() }

// PartitionOf returns the cell holding vertex v.
func (sx *ShardedIndex) PartitionOf(v VertexID) int { return sx.sx.CellOf(v) }

// Distance returns the exact global network distance from u to v.
func (sx *ShardedIndex) Distance(u, v VertexID) float64 { return sx.sx.Distance(u, v) }

// DistanceInterval returns a refinement-free interval guaranteed to contain
// the exact network distance: one quadtree lookup for intra-cell pairs in
// self-contained cells, boundary-interval × closure bounds otherwise.
func (sx *ShardedIndex) DistanceInterval(u, v VertexID) Interval {
	return sx.sx.DistanceInterval(u, v)
}

// ShortestPath retrieves an exact shortest path from u to v, inclusive of
// both endpoints, stitched across cells through the closure's hop chains.
func (sx *ShardedIndex) ShortestPath(u, v VertexID) []VertexID { return sx.sx.Path(u, v) }

// IsCloser reports whether u is strictly closer to a than to b by network
// distance, refining only as far as the comparison requires.
func (sx *ShardedIndex) IsCloser(u, a, b VertexID) bool { return isCloser(sx.sx, u, a, b) }

// NearestNeighbors returns the k nearest objects to q by exact network
// distance (the paper's kNN algorithm, fully refined).
func (sx *ShardedIndex) NearestNeighbors(objs *ObjectSet, q VertexID, k int) Result {
	return nearestNeighbors(sx.sx, objs, q, k)
}

// Query runs the selected kNN method over the sharded index; all methods —
// including the INE/IER graph-expansion baselines — are supported.
func (sx *ShardedIndex) Query(objs *ObjectSet, q VertexID, k int, method Method) Result {
	return runQuery(sx.sx, objs, q, k, method)
}

// QueryBatch answers one kNN query per vertex over a bounded worker pool,
// exactly like Index.QueryBatch.
func (sx *ShardedIndex) QueryBatch(objs *ObjectSet, queries []VertexID, k int, method Method) BatchResult {
	return queryBatchWorkers(sx.sx, objs, queries, k, method, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit worker-pool bound.
func (sx *ShardedIndex) QueryBatchWorkers(objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult {
	return queryBatchWorkers(sx.sx, objs, queries, k, method, workers)
}

// WithinDistance returns every object within network distance radius of q.
func (sx *ShardedIndex) WithinDistance(objs *ObjectSet, q VertexID, radius float64) Result {
	return convertResult(knn.RangeSearch(sx.sx, objs.objs, q, radius))
}

// Browse positions an incremental distance-browsing cursor at q over objs.
func (sx *ShardedIndex) Browse(objs *ObjectSet, q VertexID) *Browser {
	return browse(sx.sx, objs, q)
}

// IOStats returns cumulative traffic of the shared buffer pool (zeros when
// memory-resident).
func (sx *ShardedIndex) IOStats() IOStats {
	t := sx.sx.Tracker()
	s := t.Stats()
	return IOStats{PageHits: s.Hits, PageMisses: s.Misses, ModeledIOTime: t.ModeledIOTime()}
}

// ResetIOStats zeroes the shared pool's counters, keeping cache contents
// warm.
func (sx *ShardedIndex) ResetIOStats() {
	if t := sx.sx.Tracker(); t != nil {
		t.ResetStats()
	}
}

// LoadEngine sniffs the index file format and loads either a monolithic
// Index or a ShardedIndex as an Engine — the loader the CLI tools use so
// one -index flag accepts both formats.
func LoadEngine(r io.Reader, net *Network, opts BuildOptions) (Engine, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(partition.MagicString))
	if err != nil {
		return nil, err
	}
	if string(magic) == partition.MagicString {
		return LoadShardedIndex(br, net, ShardedBuildOptions{
			Parallelism:   opts.Parallelism,
			DiskResident:  opts.DiskResident,
			CacheFraction: opts.CacheFraction,
			MissLatency:   opts.MissLatency,
		})
	}
	return LoadIndex(br, net, opts)
}

// Engine is the query surface shared by Index and ShardedIndex: everything
// a serving layer needs, independent of whether the index is monolithic or
// partitioned. cmd/silcserve serves either through this interface.
type Engine interface {
	Network() *Network
	Distance(u, v VertexID) float64
	DistanceInterval(u, v VertexID) Interval
	ShortestPath(u, v VertexID) []VertexID
	IsCloser(u, a, b VertexID) bool
	NearestNeighbors(objs *ObjectSet, q VertexID, k int) Result
	Query(objs *ObjectSet, q VertexID, k int, method Method) Result
	QueryBatch(objs *ObjectSet, queries []VertexID, k int, method Method) BatchResult
	QueryBatchWorkers(objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult
	WithinDistance(objs *ObjectSet, q VertexID, radius float64) Result
	Browse(objs *ObjectSet, q VertexID) *Browser
	IOStats() IOStats
	ResetIOStats()
}

var _ Engine = (*Index)(nil)
var _ Engine = (*ShardedIndex)(nil)
