package silc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

func batchFixture(t *testing.T) (*Engine, *ObjectSet, []VertexID) {
	t.Helper()
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var objVerts []VertexID
	for v := 0; v < net.NumVertices(); v += 3 {
		objVerts = append(objVerts, VertexID(v))
	}
	objs, err := NewObjectSet(net, objVerts)
	if err != nil {
		t.Fatal(err)
	}
	var queries []VertexID
	for v := 0; v < net.NumVertices(); v += 7 {
		queries = append(queries, VertexID(v))
	}
	return ix.Engine(), objs, queries
}

// TestQueryBatchDeadlinePropagates: the request context's deadline reaches
// the batch workers — an already-expired deadline must stop the batch
// before any query runs and surface as the returned error, exactly like an
// HTTP request timeout hitting the /knn batch endpoint.
func TestQueryBatchDeadlinePropagates(t *testing.T) {
	eng, objs, queries := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulate a deadline that fired before the batch started
	br, err := eng.QueryBatch(ctx, objs, queries, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context: got err %v, want context.Canceled", err)
	}
	for i, res := range br.Results {
		if len(res.Neighbors) != 0 {
			t.Fatalf("query %d ran despite the expired context", i)
		}
	}
}

// flakyReaderAt injects a bounded number of read failures into an
// otherwise-working ReaderAt, so a test can break exactly one query's page
// reads.
type flakyReaderAt struct {
	ra       io.ReaderAt
	failures atomic.Int64 // remaining ReadAt calls to fail
}

var errInjected = errors.New("injected read failure")

func (f *flakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if f.failures.Load() > 0 && f.failures.Add(-1) >= 0 {
		return 0, errInjected
	}
	return f.ra.ReadAt(p, off)
}

// TestQueryBatchSurvivesQueryFailure is the regression test for the silent
// worker-abandonment bug: a storage fault failing one query used to kill
// its worker with a bare return, so the queries that worker would have
// claimed were never run — and because only ctx.Err() was returned, the
// caller saw a nil error with silently-zero result slots. A per-query
// failure must instead be reported AND leave every other query answered.
func TestQueryBatchSurvivesQueryFailure(t *testing.T) {
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sx.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyReaderAt{ra: bytes.NewReader(buf.Bytes())}
	paged, err := OpenShardedIndexAt(flaky, int64(buf.Len()), ShardedBuildOptions{CacheFraction: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	eng := paged.Engine()

	var objVerts []VertexID
	for v := 0; v < net.NumVertices(); v += 3 {
		objVerts = append(objVerts, VertexID(v))
	}
	objs, err := NewObjectSet(net, objVerts)
	if err != nil {
		t.Fatal(err)
	}
	var queries []VertexID
	for v := 0; v < net.NumVertices(); v += 17 {
		queries = append(queries, VertexID(v))
	}

	// One worker, one injected read failure: deterministically, the first
	// query that touches the store fails and every later one must still run.
	flaky.failures.Store(1)
	br, err := eng.QueryBatch(context.Background(), objs, queries, 3, WithWorkers(1))
	if err == nil {
		t.Fatal("one query's storage fault was silently swallowed: QueryBatch returned nil error")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("batch error %v does not wrap the injected read failure", err)
	}
	if !strings.Contains(err.Error(), "queries[0]") {
		t.Fatalf("batch error %q does not name the failed query", err)
	}
	if len(br.Results[0].Neighbors) != 0 {
		t.Fatal("the failed query's slot is not zero")
	}
	for i := 1; i < len(queries); i++ {
		if len(br.Results[i].Neighbors) == 0 {
			t.Fatalf("query %d was abandoned after query 0's failure", i)
		}
	}

	// Same batch with the fault gone: no error, every slot filled.
	br, err = eng.QueryBatch(context.Background(), objs, queries, 3, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if len(br.Results[i].Neighbors) == 0 {
			t.Fatalf("query %d has no result on a healthy index", i)
		}
	}
}
