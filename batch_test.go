package silc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func batchFixture(t *testing.T) (*Engine, *ObjectSet, []VertexID) {
	t.Helper()
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var objVerts []VertexID
	for v := 0; v < net.NumVertices(); v += 3 {
		objVerts = append(objVerts, VertexID(v))
	}
	objs, err := NewObjectSet(net, objVerts)
	if err != nil {
		t.Fatal(err)
	}
	var queries []VertexID
	for v := 0; v < net.NumVertices(); v += 7 {
		queries = append(queries, VertexID(v))
	}
	return ix.Engine(), objs, queries
}

// TestQueryBatchDeadlinePropagates: the request context's deadline reaches
// the batch workers — an already-expired deadline must stop the batch
// before any query runs and surface as the returned error, exactly like an
// HTTP request timeout hitting the /knn batch endpoint.
func TestQueryBatchDeadlinePropagates(t *testing.T) {
	eng, objs, queries := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulate a deadline that fired before the batch started
	br, err := eng.QueryBatch(ctx, objs, queries, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context: got err %v, want context.Canceled", err)
	}
	for i, res := range br.Results {
		if len(res.Neighbors) != 0 {
			t.Fatalf("query %d ran despite the expired context", i)
		}
	}
}

// flakyReaderAt injects a bounded number of read failures into an
// otherwise-working ReaderAt, so a test can break exactly one query's page
// reads.
type flakyReaderAt struct {
	ra       io.ReaderAt
	failures atomic.Int64 // remaining ReadAt calls to fail
}

var errInjected = errors.New("injected read failure")

func (f *flakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if f.failures.Load() > 0 && f.failures.Add(-1) >= 0 {
		return 0, errInjected
	}
	return f.ra.ReadAt(p, off)
}

// TestQueryBatchSurvivesQueryFailure is the regression test for the silent
// worker-abandonment bug: a storage fault failing one query used to kill
// its worker with a bare return, so the queries that worker would have
// claimed were never run — and because only ctx.Err() was returned, the
// caller saw a nil error with silently-zero result slots. A per-query
// failure must instead be reported AND leave every other query answered.
func TestQueryBatchSurvivesQueryFailure(t *testing.T) {
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sx.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyReaderAt{ra: bytes.NewReader(buf.Bytes())}
	paged, err := OpenShardedIndexAt(flaky, int64(buf.Len()), ShardedBuildOptions{CacheFraction: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	eng := paged.Engine()

	var objVerts []VertexID
	for v := 0; v < net.NumVertices(); v += 3 {
		objVerts = append(objVerts, VertexID(v))
	}
	objs, err := NewObjectSet(net, objVerts)
	if err != nil {
		t.Fatal(err)
	}
	var queries []VertexID
	for v := 0; v < net.NumVertices(); v += 17 {
		queries = append(queries, VertexID(v))
	}

	// One worker, one injected read failure: deterministically, the first
	// query that touches the store fails and every later one must still run.
	flaky.failures.Store(1)
	br, err := eng.QueryBatch(context.Background(), objs, queries, 3, WithWorkers(1))
	if err == nil {
		t.Fatal("one query's storage fault was silently swallowed: QueryBatch returned nil error")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("batch error %v does not wrap the injected read failure", err)
	}
	if !strings.Contains(err.Error(), "queries[0]") {
		t.Fatalf("batch error %q does not name the failed query", err)
	}
	if len(br.Results[0].Neighbors) != 0 {
		t.Fatal("the failed query's slot is not zero")
	}
	for i := 1; i < len(queries); i++ {
		if len(br.Results[i].Neighbors) == 0 {
			t.Fatalf("query %d was abandoned after query 0's failure", i)
		}
	}

	// Same batch with the fault gone: no error, every slot filled.
	br, err = eng.QueryBatch(context.Background(), objs, queries, 3, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if len(br.Results[i].Neighbors) == 0 {
			t.Fatalf("query %d has no result on a healthy index", i)
		}
	}
}

// pagedFlakyIndex opens a paged monolithic index through a fault-injecting
// ReaderAt, with an object set and query list over its network.
func pagedFlakyIndex(t *testing.T) (*Index, *flakyReaderAt, *ObjectSet, []VertexID) {
	t.Helper()
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyReaderAt{ra: bytes.NewReader(buf.Bytes())}
	paged, err := OpenIndexAt(flaky, int64(buf.Len()), BuildOptions{CacheFraction: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var objVerts []VertexID
	for v := 0; v < net.NumVertices(); v += 3 {
		objVerts = append(objVerts, VertexID(v))
	}
	objs, err := NewObjectSet(net, objVerts)
	if err != nil {
		t.Fatal(err)
	}
	var queries []VertexID
	for v := 0; v < net.NumVertices(); v += 17 {
		queries = append(queries, VertexID(v))
	}
	return paged, flaky, objs, queries
}

// TestBatchStatsAccounting is the regression test for the stats-overcount
// bug: BatchStats.Queries used to report len(queries) — and derive QPS from
// it — even when slots failed or were never run. It must count only ANSWERED
// queries, with Failed/Skipped carrying the remainder, so the three always
// add up to the request.
func TestBatchStatsAccounting(t *testing.T) {
	paged, flaky, objs, queries := pagedFlakyIndex(t)
	eng := paged.Engine()

	// One worker, one injected storage fault: the first query fails, the
	// rest must be answered and counted as such.
	flaky.failures.Store(1)
	br, err := eng.QueryBatch(context.Background(), objs, queries, 3, WithWorkers(1))
	if !errors.Is(err, errInjected) {
		t.Fatalf("batch error %v does not wrap the injected fault", err)
	}
	st := br.Stats
	if st.Queries != len(queries)-1 || st.Failed != 1 || st.Skipped != 0 {
		t.Fatalf("answered/failed/skipped = %d/%d/%d, want %d/1/0",
			st.Queries, st.Failed, st.Skipped, len(queries)-1)
	}
	if st.Wall > 0 {
		want := float64(st.Queries) / st.Wall.Seconds()
		if math.Abs(st.QPS-want) > want*1e-6 {
			t.Fatalf("QPS %v not derived from the %d answered queries (want %v)", st.QPS, st.Queries, want)
		}
	}

	// A context cancelled before the batch starts: nothing answered, nothing
	// failed, everything skipped — and a zero QPS, not a fabricated one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err = eng.QueryBatch(ctx, objs, queries, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: got %v", err)
	}
	st = br.Stats
	if st.Queries != 0 || st.Failed != 0 || st.Skipped != len(queries) {
		t.Fatalf("cancelled answered/failed/skipped = %d/%d/%d, want 0/0/%d",
			st.Queries, st.Failed, st.Skipped, len(queries))
	}
	if st.QPS != 0 {
		t.Fatalf("cancelled batch reports QPS %v, want 0", st.QPS)
	}
}

// TestDeprecatedBatchPartialOnStorageFault is the regression test for the
// deprecated shims' panic bug: Index.QueryBatch/QueryBatchWorkers used to
// panic on ANY error from Engine.QueryBatch — including a transient storage
// fault, taking down servers still on the legacy surface. A runtime fault
// must instead degrade to the partial batch (failed slots zero); only the
// documented validation edge (an invalid query vertex) still panics.
func TestDeprecatedBatchPartialOnStorageFault(t *testing.T) {
	paged, flaky, objs, queries := pagedFlakyIndex(t)

	flaky.failures.Store(1)
	br := paged.QueryBatchWorkers(objs, queries, 3, MethodKNN, 1) // must not panic
	if br.Stats.Queries != len(queries)-1 || br.Stats.Failed != 1 {
		t.Fatalf("partial batch answered/failed = %d/%d, want %d/1",
			br.Stats.Queries, br.Stats.Failed, len(queries)-1)
	}
	zero := 0
	for i := range br.Results {
		if len(br.Results[i].Neighbors) == 0 {
			zero++
		}
	}
	if zero != 1 {
		t.Fatalf("%d zero slots in the partial batch, want exactly 1", zero)
	}

	// Healthy rerun through the other shim: every slot answered.
	br = paged.QueryBatch(objs, queries, 3, MethodKNN)
	for i := range br.Results {
		if len(br.Results[i].Neighbors) == 0 {
			t.Fatalf("query %d unanswered on a healthy index", i)
		}
	}

	// The documented validation edge still panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range query vertex did not panic on the deprecated surface")
			}
		}()
		paged.QueryBatch(objs, []VertexID{-7}, 3, MethodKNN)
	}()
}
