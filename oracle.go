package silc

import (
	"silc/internal/oracle"
)

// DistanceOracle answers network-distance queries within a configurable
// relative error from storage that grows subquadratically — the
// path-coherent-pair (well-separated pair) construction the paper sketches
// as "Path Coherence Beyond SILC". It requires a symmetric (undirected)
// network.
type DistanceOracle struct {
	o *oracle.DistanceOracle
}

// BuildDistanceOracle constructs an ε-approximate oracle on top of an
// existing index (the construction uses the index's exact distances).
func BuildDistanceOracle(ix *Index, eps float64) (*DistanceOracle, error) {
	o, err := oracle.BuildDistanceOracle(ix.ix, eps)
	if err != nil {
		return nil, err
	}
	return &DistanceOracle{o: o}, nil
}

// Distance returns the network distance from u to v within relative error ε.
func (d *DistanceOracle) Distance(u, v VertexID) float64 { return d.o.Distance(u, v) }

// Epsilon returns the configured error bound.
func (d *DistanceOracle) Epsilon() float64 { return d.o.Epsilon() }

// NumPairs returns the number of stored path-coherent cell pairs.
func (d *DistanceOracle) NumPairs() int { return d.o.NumPairs() }

// SizeBytes returns the oracle's storage footprint.
func (d *DistanceOracle) SizeBytes() int64 { return d.o.SizeBytes() }
