// Package silc is a Go implementation of the SILC framework from "Scalable
// Network Distance Browsing in Spatial Databases" (Samet, Sankaranarayanan,
// Alborzi; SIGMOD 2008): precomputed all-pairs shortest paths for spatial
// networks, stored as one shortest-path quadtree per vertex in O(N√N) Morton
// blocks, queried through progressively-refined network-distance intervals.
//
// The library answers exact network-distance k-nearest-neighbor queries,
// incremental "distance browsing", shortest-path retrieval, and
// network-distance computation — all without running a graph search at query
// time. The query-object domain is decoupled from the network: object sets
// change freely without touching the precomputed index.
//
// Queries run through the unified Engine handle — context-aware,
// error-returning, with functional options (WithMethod, WithEpsilon,
// WithMaxDistance, WithWorkers, WithExactDistances) — shared by the
// monolithic Index and the partitioned ShardedIndex. Basic use:
//
//	net, _ := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 64, Cols: 64, Seed: 1})
//	ix, _ := silc.BuildIndex(net, silc.BuildOptions{})
//	eng := ix.Engine()
//	objs, _ := silc.NewObjectSet(net, storeVertices)
//	res, _ := eng.Query(ctx, objs, queryVertex, 5, silc.WithExactDistances())
//	for _, n := range res.Neighbors {
//	    fmt.Println(n.Vertex, n.Dist)
//	}
//	for n, err := range eng.Neighbors(ctx, objs, queryVertex) {
//	    if err != nil {
//	        break // cancelled or invalid arguments
//	    }
//	    fmt.Println(n.Vertex, n.Dist) // incremental distance browsing
//	}
//
// See DESIGN.md for the system inventory (§7 covers the query API's
// options model, error taxonomy, and cancellation points).
package silc

import (
	"io"

	"silc/internal/geom"
	"silc/internal/graph"
)

// VertexID identifies a network vertex.
type VertexID = graph.VertexID

// NoVertex is the sentinel for "no vertex".
const NoVertex = graph.NoVertex

// Point is a location in the unit square.
type Point = geom.Point

// RoadNetworkOptions parameterizes the synthetic road-network generator.
type RoadNetworkOptions = graph.RoadNetworkOptions

// Network is a spatial network: a directed graph with vertices embedded in
// the unit square and positive edge weights. Networks are immutable once
// built.
type Network struct {
	g *graph.Network
}

// NumVertices returns the vertex count.
func (n *Network) NumVertices() int { return n.g.NumVertices() }

// NumEdges returns the directed edge count.
func (n *Network) NumEdges() int { return n.g.NumEdges() }

// Point returns the position of v.
func (n *Network) Point(v VertexID) Point { return n.g.Point(v) }

// Degree returns the out-degree of v.
func (n *Network) Degree(v VertexID) int { return n.g.Degree(v) }

// Neighbors returns v's out-neighbors and edge weights (shared storage; do
// not modify).
func (n *Network) Neighbors(v VertexID) ([]VertexID, []float64) { return n.g.Neighbors(v) }

// Euclid returns the Euclidean distance between two vertices.
func (n *Network) Euclid(u, v VertexID) float64 { return n.g.Euclid(u, v) }

// NearestVertex returns the vertex closest to p (linear scan; for query
// snapping at scale put the candidates in an ObjectSet instead).
func (n *Network) NearestVertex(p Point) VertexID { return n.g.NearestVertex(p) }

// Write serializes the network in the text interchange format.
func (n *Network) Write(w io.Writer) error { return graph.Write(w, n.g) }

// LoadNetwork parses a network from the text interchange format.
func LoadNetwork(r io.Reader) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// GenerateRoadNetwork builds a synthetic road network: a perturbed lattice
// with holes, dropped segments and diagonal shortcuts, restricted to its
// largest connected component. Edge weights are Euclidean length times a
// noise factor >= 1, so network distance dominates straight-line distance.
func GenerateRoadNetwork(opts RoadNetworkOptions) (*Network, error) {
	g, err := graph.GenerateRoadNetwork(opts)
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// GenerateGrid builds a clean lattice network (deterministic; useful for
// tests and examples).
func GenerateGrid(rows, cols int) (*Network, error) {
	g, err := graph.GenerateGrid(rows, cols)
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// GenerateRingRadial builds a ring-and-spoke "town" network.
func GenerateRingRadial(rings, spokes int, seed int64) (*Network, error) {
	g, err := graph.GenerateRingRadial(rings, spokes, seed)
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// NetworkBuilder assembles a custom network vertex by vertex.
type NetworkBuilder struct {
	b *graph.Builder
}

// NewNetworkBuilder returns an empty builder.
func NewNetworkBuilder() *NetworkBuilder { return &NetworkBuilder{b: graph.NewBuilder()} }

// AddVertex appends a vertex at p (unit-square coordinates) and returns its id.
func (nb *NetworkBuilder) AddVertex(p Point) VertexID { return nb.b.AddVertex(p) }

// AddRoad adds a bidirectional road segment of the given travel cost.
func (nb *NetworkBuilder) AddRoad(u, v VertexID, cost float64) { nb.b.AddBiEdge(u, v, cost) }

// AddOneWay adds a directed segment. Note that the distance-oracle extension
// requires symmetric networks; the SILC index itself does not.
func (nb *NetworkBuilder) AddOneWay(u, v VertexID, cost float64) { nb.b.AddEdge(u, v, cost) }

// Build validates and returns the network. It fails on out-of-range
// coordinates, non-positive weights, self loops, or two vertices sharing a
// Morton grid cell (closer than 2^-16 in both coordinates).
func (nb *NetworkBuilder) Build() (*Network, error) {
	g, err := nb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}
