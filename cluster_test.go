package silc_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"silc"
)

// The cluster contract: a router fanning queries out to cell-owning nodes
// over the RPC surface answers bit-identically to the in-process engines,
// and a replica failure mid-stream is invisible to clients (zero failed
// queries) as long as every cell keeps at least one live owner.

// clusterHarness is one in-process cluster: two cell-owning nodes splitting
// the partitions, plus one full replica node, each behind an httptest
// server, and a router over all three.
type clusterHarness struct {
	router  *silc.ClusterRouter
	mono    *silc.Engine // in-RAM monolithic reference
	sharded *silc.Engine // in-process paged sharded reference (same file)
	servers map[string]*httptest.Server
	net     *silc.Network
}

func buildCluster(t *testing.T, opt silc.ClusterRouterOptions) *clusterHarness {
	t.Helper()
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 13, Cols: 13, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.silcspg")
	if err := sx.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ref, err := silc.OpenShardedIndex(path, silc.ShardedBuildOptions{CacheFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })

	h := &clusterHarness{
		mono:    ix.Engine(),
		sharded: ref.Engine(),
		servers: make(map[string]*httptest.Server),
		net:     net,
	}
	// Node addresses must exist before the manifest, but the manifest must
	// exist before the nodes: start the servers first, then bind handlers.
	specs := []struct {
		name  string
		cells []int
	}{
		{"node-a", []int{0, 1}},
		{"node-b", []int{2, 3}},
		{"node-c", []int{0, 1, 2, 3}}, // full replica
	}
	m := &silc.ClusterManifest{Index: path}
	for _, spec := range specs {
		srv := httptest.NewServer(nil)
		t.Cleanup(srv.Close)
		h.servers[spec.name] = srv
		m.Nodes = append(m.Nodes, silc.ClusterNodeSpec{Name: spec.name, Addr: srv.URL, Cells: spec.cells})
	}
	for _, spec := range specs {
		nodeIx, err := silc.OpenShardedIndex(path, silc.ShardedBuildOptions{CacheFraction: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nodeIx.Close() })
		node, err := silc.NewClusterNode(nodeIx, m, spec.name)
		if err != nil {
			t.Fatal(err)
		}
		h.servers[spec.name].Config.Handler = node.Handler()
	}
	router, err := silc.OpenClusterRouter(path, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	h.router = router
	return h
}

func objectsEvery(t *testing.T, net *silc.Network, stride int) *silc.ObjectSet {
	t.Helper()
	var vs []silc.VertexID
	for v := 0; v < net.NumVertices(); v += stride {
		vs = append(vs, silc.VertexID(v))
	}
	objs, err := silc.NewObjectSet(net, vs)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

// TestClusterEquivalence: kNN, range, browse, and distance answers from the
// router must match the in-process engines — transcript-identical to the
// monolithic reference and bit-identical (== on float64) to the in-process
// sharded engine serving the very same paged file.
func TestClusterEquivalence(t *testing.T) {
	h := buildCluster(t, silc.ClusterRouterOptions{Timeout: 10 * time.Second})
	ctx := context.Background()
	if err := h.router.Ready(ctx); err != nil {
		t.Fatalf("router not ready: %v", err)
	}
	n := h.net.NumVertices()
	queries := []silc.VertexID{0, silc.VertexID(n / 3), silc.VertexID(n / 2), silc.VertexID(n - 1)}

	for _, q := range queries {
		monoT := queryAll(t, h.mono, objectsEvery(t, h.mono.Network(), 4), q)
		shardT := queryAll(t, h.sharded, objectsEvery(t, h.sharded.Network(), 4), q)
		clusterT := queryAll(t, h.router.Engine(), objectsEvery(t, h.router.Engine().Network(), 4), q)
		if clusterT != monoT {
			t.Fatalf("query %d: cluster transcript diverges from monolithic:\n--- mono\n%s--- cluster\n%s", q, monoT, clusterT)
		}
		if clusterT != shardT {
			t.Fatalf("query %d: cluster transcript diverges from in-process sharded:\n--- sharded\n%s--- cluster\n%s", q, shardT, clusterT)
		}
	}

	// Distances: the router runs the identical routing arithmetic over the
	// identical cell images, so the float64s must be equal to the last bit.
	for u := 0; u < n; u += 11 {
		v := (u*31 + n/2) % n
		want, err := h.sharded.Distance(ctx, silc.VertexID(u), silc.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.router.Engine().Distance(ctx, silc.VertexID(u), silc.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != want { // exact bit equality, not a tolerance
			t.Fatalf("distance(%d,%d): cluster %v != in-process sharded %v", u, v, got, want)
		}
	}

	// Paths: same cost as the in-process engine's path (the chosen gateway
	// may legitimately tie-break differently; the cost cannot).
	for u := 0; u < n; u += 29 {
		v := (u*17 + 3) % n
		want, err := h.sharded.ShortestPath(ctx, silc.VertexID(u), silc.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.router.Engine().ShortestPath(ctx, silc.VertexID(u), silc.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("path(%d,%d): reachability mismatch", u, v)
		}
		if want != nil && pathCostT(h.net, got) != pathCostT(h.net, want) {
			t.Fatalf("path(%d,%d): cost %v != %v", u, v, pathCostT(h.net, got), pathCostT(h.net, want))
		}
	}

	// The router fanned real RPCs out, and the hot-cell signal saw them.
	hot := h.router.HotCells(4)
	total := int64(0)
	for _, c := range hot {
		total += c.Calls
	}
	if total == 0 {
		t.Fatal("router reported zero per-cell RPCs after a full query mix")
	}
	var buf strings.Builder
	if err := h.router.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"silc_cluster_rpcs_total", "silc_cluster_cell_rpcs_total"} {
		if !strings.Contains(buf.String(), family) {
			t.Fatalf("router metrics missing family %s", family)
		}
	}
}

// pathCostT sums the cheapest parallel edge along a returned path.
func pathCostT(net *silc.Network, path []silc.VertexID) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		targets, weights := net.Neighbors(path[i])
		best := 0.0
		first := true
		for j, tg := range targets {
			if tg == path[i+1] && (first || weights[j] < best) {
				best, first = weights[j], false
			}
		}
		total += best
	}
	return total
}

// TestClusterReplicaFailover: with node-c replicating every cell, killing
// it in the middle of a query stream must cause zero client-visible
// failures — the router retries onto the surviving owners — and the
// answers must stay bit-identical throughout.
func TestClusterReplicaFailover(t *testing.T) {
	h := buildCluster(t, silc.ClusterRouterOptions{
		Timeout:      5 * time.Second,
		FailCooldown: 50 * time.Millisecond,
	})
	ctx := context.Background()
	n := h.net.NumVertices()
	objs := objectsEvery(t, h.router.Engine().Network(), 4)
	refObjs := objectsEvery(t, h.sharded.Network(), 4)

	const workers = 4
	const perWorker = 12
	killAt := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/2 {
					once.Do(func() { close(killAt) })
				}
				q := silc.VertexID((w*57 + i*13) % n)
				res, err := h.router.Engine().Query(ctx, objs, q, 5, silc.WithExactDistances())
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, q, err)
					return
				}
				want, err := h.sharded.Query(ctx, refObjs, q, 5, silc.WithExactDistances())
				if err != nil {
					errs <- err
					return
				}
				for j := range res.Neighbors {
					if res.Neighbors[j].Dist != want.Neighbors[j].Dist {
						errs <- fmt.Errorf("worker %d query %d: neighbor %d dist %v != %v",
							w, q, j, res.Neighbors[j].Dist, want.Neighbors[j].Dist)
						return
					}
				}
			}
		}(w)
	}
	// Kill the replica mid-stream: in-flight connections die too, so the
	// failure is a hard one, not a graceful drain.
	go func() {
		<-killAt
		srv := h.servers["node-c"]
		srv.CloseClientConnections()
		srv.Close()
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err) // any entry here is a client-visible failure: the contract is zero
	}
}
