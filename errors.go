package silc

import (
	"errors"
	"fmt"
	"math"
)

// The typed errors of the query API. Every Engine entry point validates its
// arguments at the API edge and returns one of these (wrapped with detail —
// match with errors.Is) instead of panicking deep inside the query
// algorithms. Cancellation and deadline expiry surface as the context's own
// error (context.Canceled / context.DeadlineExceeded).
var (
	// ErrVertexRange reports a vertex id outside [0, NumVertices).
	ErrVertexRange = errors.New("silc: vertex id out of range")
	// ErrBadK reports a non-positive neighbor count.
	ErrBadK = errors.New("silc: k must be positive")
	// ErrNilObjects reports a nil object set.
	ErrNilObjects = errors.New("silc: nil object set")
	// ErrEmptyObjects reports an object set with no objects.
	ErrEmptyObjects = errors.New("silc: empty object set")
	// ErrBadRadius reports a negative or NaN distance bound.
	ErrBadRadius = errors.New("silc: radius must be a non-negative number")
	// ErrBadEpsilon reports a negative or non-finite approximation factor.
	ErrBadEpsilon = errors.New("silc: epsilon must be finite and non-negative")
	// ErrNilNetwork reports a nil network handle.
	ErrNilNetwork = errors.New("silc: nil network")
	// ErrBadMethod reports an unknown kNN method selector.
	ErrBadMethod = errors.New("silc: unknown method")
	// ErrUnknownObject reports a live-store object id that does not exist
	// (never inserted, removed, or expired).
	ErrUnknownObject = errors.New("silc: unknown object id")
)

// isValidationError reports whether err is one of the argument-validation
// errors above — the class the deprecated panicking shims still panic on,
// as their pre-Engine contract documented. Runtime failures (storage
// faults, cancellation) are NOT validation errors.
func isValidationError(err error) bool {
	for _, v := range []error{
		ErrVertexRange, ErrBadK, ErrNilObjects, ErrEmptyObjects,
		ErrBadRadius, ErrBadEpsilon, ErrNilNetwork, ErrBadMethod,
	} {
		if errors.Is(err, v) {
			return true
		}
	}
	return false
}

// checkVertex validates one caller-supplied vertex id against the network.
func checkVertex(net *Network, name string, v VertexID) error {
	if n := net.NumVertices(); v < 0 || int(v) >= n {
		return fmt.Errorf("%w: %s=%d, want [0,%d)", ErrVertexRange, name, v, n)
	}
	return nil
}

// checkObjects validates an object set against the engine's network.
func checkObjects(objs *ObjectSet) error {
	if objs == nil || objs.objs == nil {
		return ErrNilObjects
	}
	if objs.Len() == 0 {
		return ErrEmptyObjects
	}
	return nil
}

// checkK validates a neighbor count.
func checkK(k int) error {
	if k <= 0 {
		return fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	return nil
}

// checkRadius validates a distance bound (non-negative; +Inf is allowed and
// means unbounded).
func checkRadius(r float64) error {
	if math.IsNaN(r) || r < 0 {
		return fmt.Errorf("%w: got %v", ErrBadRadius, r)
	}
	return nil
}
