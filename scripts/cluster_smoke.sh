#!/usr/bin/env bash
# Multi-process cluster smoke test: build one sharded paged index, serve it
# as a real 2-node + router cluster (three silcserve processes), and check
# that the router's kNN/range answers are identical to a standalone server
# over the same file — stats stripped, distances compared verbatim, so any
# routing or transport bug that changes a single bit fails the diff. Also
# scrapes /metrics on all three processes and asserts the cluster metric
# families are being exported.
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

DIR=${1:-$(mktemp -d /tmp/silc-cluster-smoke.XXXXXX)}
mkdir -p "$DIR"
ROUTER=18090
NODE_A=18091
NODE_B=18092
MONO=18093
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_ready() { # url
  for _ in $(seq 1 100); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "timed out waiting for $1" >&2
  return 1
}

echo "== build (workdir $DIR)"
go build -o "$DIR/netgen" ./cmd/netgen
go build -o "$DIR/silcbuild" ./cmd/silcbuild
go build -o "$DIR/silcserve" ./cmd/silcserve

"$DIR/netgen" -kind road -rows 40 -cols 40 -seed 11 -o "$DIR/net.txt"
"$DIR/silcbuild" -net "$DIR/net.txt" -partitions 4 -format=paged -o "$DIR/cluster.silcspg"

cat > "$DIR/manifest.json" <<EOF
{
  "index": "$DIR/cluster.silcspg",
  "nodes": [
    {"name": "node-a", "addr": "http://localhost:$NODE_A", "cells": [0, 1]},
    {"name": "node-b", "addr": "http://localhost:$NODE_B", "cells": [2, 3]}
  ]
}
EOF

echo "== launch: 2 cell nodes, 1 router, 1 standalone reference"
"$DIR/silcserve" -cluster node -manifest "$DIR/manifest.json" -node-name node-a \
  -addr "localhost:$NODE_A" &
PIDS+=($!)
"$DIR/silcserve" -cluster node -manifest "$DIR/manifest.json" -node-name node-b \
  -addr "localhost:$NODE_B" &
PIDS+=($!)
wait_ready "localhost:$NODE_A/readyz"
wait_ready "localhost:$NODE_B/readyz"

# The router and the reference share -objects defaults (same network, same
# object seed), so their object sets are identical by construction.
"$DIR/silcserve" -cluster router -manifest "$DIR/manifest.json" \
  -addr "localhost:$ROUTER" &
PIDS+=($!)
"$DIR/silcserve" -index "$DIR/cluster.silcspg" -addr "localhost:$MONO" &
PIDS+=($!)
wait_ready "localhost:$ROUTER/readyz"
wait_ready "localhost:$MONO/readyz"

echo "== diff router vs standalone (kNN + range sample)"
# del(.stats, ..): per-query stats legitimately differ (RPC-side page
# traffic lands on the nodes); everything else — ids, vertices, every
# distance digit — must match exactly.
norm='del(.stats) | (.neighbors[]? | .dist) |= tostring | del(.neighbors[]?.stats)'
# The 40x40 road network prunes to ~1477 vertices; stay inside it.
for q in 0 97 555 1203 1476; do
  for url in "knn?q=$q&k=5&exact=1" "range?q=$q&radius=0.25&exact=1"; do
    curl -sf "localhost:$ROUTER/$url" | jq -S "$norm" > "$DIR/router.json"
    curl -sf "localhost:$MONO/$url"   | jq -S "$norm" > "$DIR/mono.json"
    if ! diff -u "$DIR/mono.json" "$DIR/router.json"; then
      echo "DIVERGED on /$url" >&2
      exit 1
    fi
  done
done
echo "   answers identical"

echo "== scrape /metrics on all three processes"
curl -sf "localhost:$NODE_A/metrics" > "$DIR/node-a.metrics"
curl -sf "localhost:$NODE_B/metrics" > "$DIR/node-b.metrics"
curl -sf "localhost:$ROUTER/metrics" > "$DIR/router.metrics"
for f in node-a node-b; do
  for fam in silcnode_rpcs_total silcnode_cell_rpcs_total silc_store_page_reads_total; do
    grep -q "^$fam" "$DIR/$f.metrics" || { echo "missing $fam on $f" >&2; exit 1; }
  done
done
for fam in silc_cluster_rpcs_total silc_cluster_cell_rpcs_total silcserve_requests_total; do
  grep -q "^$fam" "$DIR/router.metrics" || { echo "missing $fam on router" >&2; exit 1; }
done
echo "   metric families present"

echo "cluster smoke OK"
