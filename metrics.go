package silc

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/core"
	"silc/internal/obs"
)

// Engine entry-point tags carried on each query's trace span. The span
// travels with the pooled query context; releaseQC folds it into the
// per-op aggregates below.
const (
	opKNN uint8 = iota
	opRange
	opNeighbors
	opDistance
	opInterval
	opPath
	opIsCloser
	opBatch
	numOps
)

var opNames = [numOps]string{
	"knn", "range", "neighbors", "distance", "interval", "path", "is_closer", "batch",
}

// engineObs holds the engine's metric aggregates and their registry.
// Recording is atomic and allocation-free; everything here is created
// once per Engine at construction. Series whose cardinality depends on
// post-construction state (per-pool-shard counters, per-store read
// counters — the pager is attached after the Engine literal is built)
// are registered lazily on the first WriteMetrics, by which point the
// engine's storage topology is final.
type engineObs struct {
	reg     *obs.Registry
	dynOnce sync.Once
	// timed gates the phase wall-clocks (filter vs refinement) stamped
	// onto each span: the extra time.Now pairs in the expansion loop
	// cost real time against warm in-memory queries, so tracing is an
	// explicit opt-in (Engine.SetTracing; silcserve enables it).
	timed atomic.Bool

	queries [numOps]*obs.Counter
	latency [numOps]*obs.Histogram

	refinements *obs.Counter
	lookups     *obs.Counter
	heapPushes  *obs.Counter
	filterSecs  *obs.Counter // nanos, exported as seconds
	refineSecs  *obs.Counter // nanos, exported as seconds

	pageHits      *obs.Counter
	pageMisses    *obs.Counter
	pageReads     *obs.Counter
	evictions     *obs.Counter
	blocksDecoded *obs.Counter

	crossCell     *obs.Counter
	gatewayRoutes *obs.Counter
}

// newEngineObs builds the aggregate set for e, registering the static
// families eagerly. Collector closures dereference engine state at
// scrape time, so fields assigned after construction (e.pager) are
// still observed correctly.
func newEngineObs(e *Engine) *engineObs {
	m := &engineObs{reg: obs.NewRegistry()}
	r := m.reg
	for op := uint8(0); op < numOps; op++ {
		label := `op="` + opNames[op] + `"`
		m.queries[op] = r.Counter("silc_engine_queries_total", label,
			"Queries completed per engine entry point.")
		m.latency[op] = r.Histogram("silc_engine_query_seconds", label,
			"End-to-end query latency per entry point (acquire to release).")
	}
	r.GaugeFunc("silc_engine_inflight_queries", "",
		"Query contexts currently checked out of the engine pool.",
		func() float64 { return float64(e.qcLive.Load()) })

	m.refinements = r.Counter("silc_knn_refinements_total", "",
		"Distance-refiner steps across all layers (search, exactification, routing).")
	m.lookups = r.Counter("silc_knn_lookups_total", "",
		"Object interval computations in the best-first search.")
	m.heapPushes = r.Counter("silc_knn_heap_pushes_total", "",
		"Search-queue pushes in the best-first family.")
	m.filterSecs = r.CounterScaled("silc_knn_filter_seconds_total", "",
		"Wall-clock seconds in the object-hierarchy filter phase (tracing enabled).", 1e-9)
	m.refineSecs = r.CounterScaled("silc_knn_refine_seconds_total", "",
		"Wall-clock seconds outside the filter phase (tracing enabled).", 1e-9)

	m.pageHits = r.Counter("silc_engine_page_hits_total", "",
		"Buffer-pool hits attributed to completed queries.")
	m.pageMisses = r.Counter("silc_engine_page_misses_total", "",
		"Buffer-pool misses attributed to completed queries.")
	m.pageReads = r.Counter("silc_engine_page_reads_total", "",
		"Real page reads attributed to completed queries (paged stores).")
	m.evictions = r.Counter("silc_engine_pool_evictions_total", "",
		"Pool evictions forced by completed queries.")
	m.blocksDecoded = r.Counter("silc_engine_blocks_decoded_total", "",
		"Quadtree blocks decoded on cold loads by completed queries.")

	m.crossCell = r.Counter("silc_partition_cross_cell_refiners_total", "",
		"Cross-cell route refiners built (sharded indexes).")
	m.gatewayRoutes = r.Counter("silc_partition_gateway_routes_total", "",
		"Candidate gateway routes raced by cross-cell refiners.")

	// Pool-wide diskio families read the tracker/pager aggregates at
	// scrape time — they cover untracked traffic too, so comparing them
	// with the query-attributed silc_engine_* counters above exposes
	// non-query pool pressure.
	r.CounterFunc("silc_diskio_pool_hits_total", "",
		"Pool-wide buffer-pool hits (all traffic, query-attributed or not).",
		func() float64 { return float64(e.qx.Tracker().Stats().Hits) })
	r.CounterFunc("silc_diskio_pool_misses_total", "",
		"Pool-wide buffer-pool misses.",
		func() float64 { return float64(e.qx.Tracker().Stats().Misses) })
	r.CounterFunc("silc_diskio_pool_evictions_total", "",
		"Pool-wide buffer-pool evictions.",
		func() float64 { return float64(e.qx.Tracker().Stats().Evictions) })
	r.GaugeFunc("silc_diskio_pool_resident_pages", "",
		"Pages currently resident in the buffer pool.",
		func() float64 {
			if p := e.qx.Tracker().Pool(); p != nil {
				return float64(p.Len())
			}
			return 0
		})
	r.GaugeFunc("silc_diskio_pool_capacity_pages", "",
		"Buffer-pool page capacity.",
		func() float64 {
			if p := e.qx.Tracker().Pool(); p != nil {
				return float64(p.Capacity())
			}
			return 0
		})
	return m
}

// registerDynamic adds the series whose cardinality depends on the
// engine's final storage topology: per-pool-shard hit/miss/eviction
// gauges and per-store read counters (labelled by page source). Called
// once, on the first scrape.
func (m *engineObs) registerDynamic(e *Engine) {
	r := m.reg
	if pool := e.qx.Tracker().Pool(); pool != nil {
		for i := 0; i < pool.NumShards(); i++ {
			i := i
			label := `shard="` + itoa(i) + `"`
			r.CounterFunc("silc_diskio_shard_hits_total", label,
				"Per-pool-shard buffer-pool hits.",
				func() float64 { return float64(pool.ShardStats(i).Hits) })
			r.CounterFunc("silc_diskio_shard_misses_total", label,
				"Per-pool-shard buffer-pool misses.",
				func() float64 { return float64(pool.ShardStats(i).Misses) })
			r.CounterFunc("silc_diskio_shard_evictions_total", label,
				"Per-pool-shard buffer-pool evictions.",
				func() float64 { return float64(pool.ShardStats(i).Evictions) })
			r.GaugeFunc("silc_diskio_shard_resident_pages", label,
				"Per-pool-shard resident pages.",
				func() float64 { return float64(pool.ShardLen(i)) })
		}
	}
	if e.pager == nil {
		return
	}
	for i, st := range e.pager.Stores() {
		st := st
		source := "readat"
		if st.Mapped() {
			source = "mmap"
		}
		label := `store="` + itoa(i) + `",source="` + source + `"`
		r.CounterFunc("silc_store_page_reads_total", label,
			"Real page reads per store (first-touch verification for mmap).",
			func() float64 { return float64(st.ReadStats().Reads) })
		r.CounterFunc("silc_store_read_bytes_total", label,
			"Bytes read per store.",
			func() float64 { return float64(st.ReadStats().Bytes) })
		r.CounterFunc("silc_store_read_seconds_total", label,
			"Wall-clock seconds inside positioned reads per store.",
			func() float64 { return st.ReadStats().Time.Seconds() })
		r.CounterFunc("silc_store_crc_seconds_total", label,
			"Wall-clock seconds checksum-verifying cold pages per store.",
			func() float64 { return st.ReadStats().CRCTime.Seconds() })
		r.CounterFunc("silc_store_blocks_decoded_total", label,
			"Quadtree blocks decoded on cold loads per store.",
			func() float64 { return float64(st.ReadStats().BlocksDecoded) })
		r.GaugeFunc("silc_store_resident_pages", label,
			"Page frames currently held in memory per store.",
			func() float64 { return float64(st.ResidentPages()) })
		r.GaugeFunc("silc_store_resident_trees", label,
			"Decoded per-vertex quadtrees currently cached per store.",
			func() float64 { return float64(st.ResidentTrees()) })
	}
}

// fold adds a finished query's span and I/O counters to the engine
// aggregates and observes its end-to-end latency. Called exactly once
// per checkout, from releaseQC (and from the batch workers, whose
// contexts bypass the pool).
func (m *engineObs) fold(qc *core.QueryContext) {
	sp := &qc.Span
	if sp.Begin.IsZero() {
		return // context never went through beginSpan (legacy/internal path)
	}
	d := time.Since(sp.Begin)
	op := sp.Op
	if op >= numOps {
		op = opKNN
	}
	m.queries[op].Inc()
	m.latency[op].Observe(d)
	m.refinements.Add(sp.Refinements)
	m.lookups.Add(sp.Lookups)
	m.heapPushes.Add(sp.HeapPushes)
	m.crossCell.Add(sp.CrossCell)
	m.gatewayRoutes.Add(sp.GatewayRoutes)
	m.pageHits.Add(qc.IO.Hits)
	m.pageMisses.Add(qc.IO.Misses)
	m.pageReads.Add(qc.IO.Reads)
	m.evictions.Add(qc.IO.Evictions)
	m.blocksDecoded.Add(qc.IO.BlocksDecoded)
	if sp.Timed {
		m.filterSecs.Add(sp.FilterNanos)
		if rest := d.Nanoseconds() - sp.FilterNanos; rest > 0 {
			m.refineSecs.Add(rest)
		}
	}
}

// SetTracing toggles phase wall-clock timing on the query path: with
// tracing on, each query's span carries FilterTime/RefineTime (surfaced
// in QueryStats and the silc_knn_*_seconds_total counters) at the cost
// of one time.Now pair per hierarchy expansion. Counters and latency
// histograms are always on — only the extra clocks are gated. Safe to
// toggle at runtime; in-flight queries keep the setting they started
// with.
func (e *Engine) SetTracing(on bool) { e.obs.timed.Store(on) }

// TracingEnabled reports whether phase wall-clock timing is on.
func (e *Engine) TracingEnabled() bool { return e.obs.timed.Load() }

// WriteMetrics writes the engine's metrics in Prometheus text
// exposition format: per-entry-point query counts and latency
// histograms (silc_engine_*), search-work counters (silc_knn_*),
// pool-wide and per-shard buffer-pool traffic (silc_diskio_*), per-store
// read/decode counters labelled by page source (silc_store_*), and
// cross-cell routing fan-out (silc_partition_*). Safe for concurrent
// use with queries; scraping never blocks the query path.
func (e *Engine) WriteMetrics(w io.Writer) error {
	e.obs.dynOnce.Do(func() { e.obs.registerDynamic(e) })
	return e.obs.reg.WritePrometheus(w)
}

// beginSpan arms qc's trace span for one query.
func (e *Engine) beginSpan(qc *core.QueryContext, op uint8) {
	qc.Span.Begin = time.Now()
	qc.Span.Op = op
	qc.Span.Timed = e.obs.timed.Load()
}

func itoa(i int) string { return strconv.Itoa(i) }
