package silc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func testNetwork(t testing.TB) *Network {
	t.Helper()
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 14, Cols: 14, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testIndex(t testing.TB, net *Network) *Index {
	t.Helper()
	ix, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// mustObjects builds a validated object set or fails the test.
func mustObjects(t testing.TB, net *Network, vertices []VertexID) *ObjectSet {
	t.Helper()
	objs, err := NewObjectSet(net, vertices)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

func TestEndToEndNearestNeighbors(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	rng := rand.New(rand.NewSource(1))

	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 25)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)
	q := VertexID(perm[30])

	res := ix.NearestNeighbors(objs, q, 5)
	if len(res.Neighbors) != 5 || !res.Sorted {
		t.Fatalf("result shape: %d sorted=%v", len(res.Neighbors), res.Sorted)
	}
	prev := -1.0
	for _, n := range res.Neighbors {
		if !n.Exact {
			t.Fatal("NearestNeighbors must return exact distances")
		}
		if n.Dist < prev {
			t.Fatal("results not sorted")
		}
		prev = n.Dist
		// Cross-check against the index's own exact distance.
		if d := ix.Distance(q, n.Vertex); math.Abs(d-n.Dist) > 1e-9 {
			t.Fatalf("distance mismatch: %v vs %v", n.Dist, d)
		}
	}
	if res.Stats.Method != "KNN" || res.Stats.Lookups == 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestAllMethodsAgreeOnResultSet(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 40)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)
	q := VertexID(perm[50])
	k := 7

	reference := ix.NearestNeighbors(objs, q, k)
	refDists := make([]float64, k)
	for i, n := range reference.Neighbors {
		refDists[i] = n.Dist
	}

	for _, m := range []Method{MethodKNN, MethodINN, MethodKNNI, MethodKNNM, MethodINE, MethodIER} {
		res := ix.Query(objs, q, k, m)
		if len(res.Neighbors) != k {
			t.Fatalf("%v: %d results", m, len(res.Neighbors))
		}
		dists := make([]float64, k)
		for i, n := range res.Neighbors {
			dists[i] = ix.Distance(q, n.Vertex)
		}
		if !res.Sorted {
			sortFloats(dists)
		}
		for i := range dists {
			if math.Abs(dists[i]-refDists[i]) > 1e-9 {
				t.Fatalf("%v: rank %d dist %v want %v", m, i, dists[i], refDists[i])
			}
		}
		if res.Stats.Method != m.String() {
			t.Fatalf("%v: stats method %q", m, res.Stats.Method)
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestBrowserMatchesNearestNeighbors(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 20)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)
	q := VertexID(perm[25])

	want := ix.NearestNeighbors(objs, q, objs.Len())
	b := ix.Browse(objs, q)
	for i := 0; ; i++ {
		n, ok := b.Next()
		if !ok {
			if i != objs.Len() {
				t.Fatalf("browser exhausted after %d of %d", i, objs.Len())
			}
			break
		}
		if math.Abs(n.Dist-want.Neighbors[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: browser %v batch %v", i, n.Dist, want.Neighbors[i].Dist)
		}
		if !n.Exact {
			t.Fatal("browser distances must be exact")
		}
	}
}

func TestShortestPathAndIntervals(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	u, v := VertexID(0), VertexID(net.NumVertices()-1)

	iv := ix.DistanceInterval(u, v)
	d := ix.Distance(u, v)
	if iv.Lo > d+1e-9 || iv.Hi < d-1e-9 {
		t.Fatalf("interval [%v,%v] misses %v", iv.Lo, iv.Hi, d)
	}
	path := ix.ShortestPath(u, v)
	if path[0] != u || path[len(path)-1] != v {
		t.Fatal("bad path endpoints")
	}
	total := 0.0
	for i := 1; i < len(path); i++ {
		targets, weights := net.Neighbors(path[i-1])
		found := false
		for j, tgt := range targets {
			if tgt == path[i] {
				if !found || weights[j] < 0 {
					total += weights[j]
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("path hop %d->%d is not an edge", path[i-1], path[i])
		}
	}
	if math.Abs(total-d) > 1e-9 {
		t.Fatalf("path weight %v != distance %v", total, d)
	}
	if hop := ix.NextHop(u, v); hop != path[1] {
		t.Fatalf("NextHop %d != path[1] %d", hop, path[1])
	}
}

func TestRefinerConverges(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	u, v := VertexID(3), VertexID(net.NumVertices()-4)
	r := ix.NewRefiner(u, v)
	want := ix.Distance(u, v)
	steps := 0
	for !r.Done() {
		r.Step()
		steps++
		iv := r.Interval()
		if iv.Lo > want+1e-9 || iv.Hi < want-1e-9 {
			t.Fatalf("interval lost the true distance at step %d", steps)
		}
	}
	if r.Steps() != steps {
		t.Fatal("step count mismatch")
	}
	if via, acc := r.Via(); via != v || math.Abs(acc-want) > 1e-9 {
		t.Fatalf("Via after convergence = %d,%v", via, acc)
	}
}

func TestIsCloser(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		u := VertexID(rng.Intn(net.NumVertices()))
		a := VertexID(rng.Intn(net.NumVertices()))
		b := VertexID(rng.Intn(net.NumVertices()))
		da, db := ix.Distance(u, a), ix.Distance(u, b)
		if math.Abs(da-db) < 1e-12 {
			continue // tie: either answer acceptable
		}
		if got := ix.IsCloser(u, a, b); got != (da < db) {
			t.Fatalf("IsCloser(%d,%d,%d)=%v but %v vs %v", u, a, b, got, da, db)
		}
	}
}

func TestObjectSetFromPoints(t *testing.T) {
	net := testNetwork(t)
	pts := []Point{{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.8}}
	objs, err := NewObjectSetFromPoints(net, pts)
	if err != nil {
		t.Fatal(err)
	}
	if objs.Len() != 2 {
		t.Fatalf("len = %d", objs.Len())
	}
	for i, p := range pts {
		want := net.NearestVertex(p)
		if got := objs.Vertex(int32(i)); got != want {
			t.Fatalf("object %d snapped to %d want %d", i, got, want)
		}
	}
	got := objs.NearestEuclidean(Point{X: 0.1, Y: 0.1}, 2)
	if len(got) != 2 || got[0] != 0 {
		t.Fatalf("NearestEuclidean = %v", got)
	}
}

func TestNetworkSerializationRoundTrip(t *testing.T) {
	net := testNetwork(t)
	var buf bytes.Buffer
	if err := net.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != net.NumVertices() || back.NumEdges() != net.NumEdges() {
		t.Fatal("round trip changed the network")
	}
}

func TestNetworkBuilderAndCustomQueries(t *testing.T) {
	nb := NewNetworkBuilder()
	a := nb.AddVertex(Point{X: 0.1, Y: 0.5})
	b := nb.AddVertex(Point{X: 0.5, Y: 0.5})
	c := nb.AddVertex(Point{X: 0.9, Y: 0.5})
	d := nb.AddVertex(Point{X: 0.5, Y: 0.9})
	nb.AddRoad(a, b, 0.5)
	nb.AddRoad(b, c, 0.5)
	nb.AddRoad(b, d, 0.6)
	nb.AddRoad(a, d, 0.7)
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := testIndex(t, net)
	if got := ix.Distance(a, c); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Distance(a,c) = %v", got)
	}
	if got := ix.ShortestPath(a, c); len(got) != 3 || got[1] != b {
		t.Fatalf("path = %v", got)
	}
	// Degenerate collinear network must still work.
	if got := ix.Distance(d, c); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("Distance(d,c) = %v", got)
	}
}

func TestDiskResidentIOStats(t *testing.T) {
	net := testNetwork(t)
	ix, err := BuildIndex(net, BuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	ix.Distance(0, VertexID(net.NumVertices()-1))
	s := ix.IOStats()
	if s.PageHits+s.PageMisses == 0 {
		t.Fatal("no IO recorded")
	}
	ix.ResetIOStats()
	if s := ix.IOStats(); s.PageHits+s.PageMisses != 0 {
		t.Fatal("reset failed")
	}

	mem := testIndex(t, net)
	if s := mem.IOStats(); s != (IOStats{}) {
		t.Fatalf("in-memory index reported IO: %+v", s)
	}
}

func TestDistanceOracleFacade(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	o, err := BuildDistanceOracle(ix, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if o.Epsilon() != 0.25 || o.NumPairs() == 0 || o.SizeBytes() == 0 {
		t.Fatal("oracle metadata missing")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		u := VertexID(rng.Intn(net.NumVertices()))
		v := VertexID(rng.Intn(net.NumVertices()))
		want := ix.Distance(u, v)
		got := o.Distance(u, v)
		if math.Abs(got-want) > 0.25*want+1e-9 {
			t.Fatalf("oracle error too large: %v vs %v", got, want)
		}
	}
}

func TestBuildIndexErrors(t *testing.T) {
	if _, err := BuildIndex(nil, BuildOptions{}); err == nil {
		t.Fatal("nil network accepted")
	}
	nb := NewNetworkBuilder()
	nb.AddVertex(Point{X: 0.1, Y: 0.1})
	nb.AddVertex(Point{X: 0.9, Y: 0.9})
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(net, BuildOptions{}); err == nil {
		t.Fatal("disconnected network accepted")
	}
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		MethodKNN: "KNN", MethodINN: "INN", MethodKNNI: "KNN-I",
		MethodKNNM: "KNN-M", MethodINE: "INE", MethodIER: "IER", Method(99): "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}
