// Command silcquery answers network-distance queries over a SILC index:
// k-nearest-neighbor search, exact distances, shortest paths, and
// progressive-refinement traces.
//
// Usage:
//
//	silcquery -rows 48 -cols 48 -mode knn -q 17 -k 5 -objects 0.05 -method KNN
//	silcquery -rows 48 -cols 48 -mode knn -q 17 -k 5 -eps 0.25 -max-dist 0.8
//	silcquery -net network.txt -mode dist -q 17 -dest 423
//	silcquery -net network.txt -mode path -q 17 -dest 423
//	silcquery -net network.txt -mode refine -q 17 -dest 423
//	silcquery -rows 64 -cols 64 -partitions 8 -mode dist -q 17 -dest 423
//
// -partitions N > 1 queries through the sharded index; -index accepts both
// monolithic and sharded files (the format is sniffed). -eps asks for
// ε-approximate ranking (fewer refinements, distances certified within
// (1+ε)×); -max-dist bounds results to a radius. -timeout aborts a query
// through context cancellation. The refine trace mode requires a monolithic
// index. -stats appends one JSON object per query to stdout with the
// query's own statistics (refinements, page traffic, phase timings) and
// the engine-wide I/O aggregates; -trace additionally times the
// filter/refinement phase split.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"silc"
)

func main() {
	var (
		netFile = flag.String("net", "", "network file (generated if empty)")
		idxFile = flag.String("index", "", "prebuilt index file from silcbuild -o (built fresh if empty)")
		rows    = flag.Int("rows", 48, "generated lattice rows")
		cols    = flag.Int("cols", 48, "generated lattice cols")
		seed    = flag.Int64("seed", 1, "generator / workload seed")
		mode    = flag.String("mode", "knn", "query mode: knn, dist, path, refine")
		q       = flag.Int("q", 0, "query vertex")
		dest    = flag.Int("dest", 1, "destination vertex (dist, path, refine)")
		k       = flag.Int("k", 5, "neighbor count (knn)")
		objFrac = flag.Float64("objects", 0.05, "object fraction of N (knn)")
		method  = flag.String("method", "KNN", "algorithm: KNN, INN, KNN-I, KNN-M, INE, IER")
		eps     = flag.Float64("eps", 0, "ε-approximate ranking (knn; 0 = exact)")
		maxDist = flag.Float64("max-dist", 0, "bound results to network distance ≤ d (knn; 0 = unbounded)")
		timeout = flag.Duration("timeout", 0, "per-query timeout (0 = none)")
		parts   = flag.Int("partitions", 1, "spatial partitions (>1 queries the sharded index)")
		mmap    = flag.Bool("mmap", false, "open paged index files through a read-only memory mapping")
		stats   = flag.Bool("stats", false, "print per-query statistics and engine I/O aggregates as JSON")
		trace   = flag.Bool("trace", false, "time the filter/refinement phase split (implies the timing columns in -stats)")
	)
	flag.Parse()

	net, err := loadOrGenerate(*netFile, *rows, *cols, *seed)
	if err != nil {
		fail(err)
	}
	var eng *silc.Engine
	if *idxFile != "" {
		// OpenEngine sniffs the format; paged indexes stay on disk and the
		// engine owns the file handle (released on process exit).
		eng, err = silc.OpenEngine(*idxFile, net, silc.BuildOptions{Mmap: *mmap})
		if err != nil {
			fail(err)
		}
	} else if *parts > 1 {
		sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: *parts})
		if err != nil {
			fail(err)
		}
		eng = sx.Engine()
	} else {
		ix, err := silc.BuildIndex(net, silc.BuildOptions{})
		if err != nil {
			fail(err)
		}
		eng = ix.Engine()
	}
	src, dst := silc.VertexID(*q), silc.VertexID(*dest)
	if *trace {
		eng.SetTracing(true)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch *mode {
	case "knn":
		runKNN(ctx, net, eng, src, *k, *objFrac, *method, *eps, *maxDist, *seed, *stats)
	case "dist":
		iv, err := eng.DistanceInterval(ctx, src, dst)
		if err != nil {
			fail(err)
		}
		var st silc.QueryStats
		d, err := eng.Distance(ctx, src, dst, silc.WithStats(&st))
		if err != nil {
			fail(err)
		}
		fmt.Printf("interval (no refinement): [%.6f, %.6f]\n", iv.Lo, iv.Hi)
		fmt.Printf("exact network distance:   %.6f\n", d)
		fmt.Printf("euclidean distance:       %.6f\n", net.Euclid(src, dst))
		if *stats {
			printStats(eng, st)
		}
	case "path":
		var st silc.QueryStats
		path, err := eng.ShortestPath(ctx, src, dst, silc.WithStats(&st))
		if err != nil {
			fail(err)
		}
		fmt.Printf("shortest path, %d hops:\n", len(path)-1)
		for _, v := range path {
			p := net.Point(v)
			fmt.Printf("  %6d  (%.4f, %.4f)\n", v, p.X, p.Y)
		}
		if *stats {
			printStats(eng, st)
		}
	case "refine":
		mono, ok := eng.Monolithic()
		if !ok {
			fail(fmt.Errorf("the refine trace requires a monolithic index"))
		}
		if *q < 0 || *q >= net.NumVertices() || *dest < 0 || *dest >= net.NumVertices() {
			fail(fmt.Errorf("vertex out of range [0,%d)", net.NumVertices()))
		}
		r := mono.NewRefiner(src, dst)
		iv := r.Interval()
		fmt.Printf("step %2d: [%.6f, %.6f] width %.6f\n", 0, iv.Lo, iv.Hi, iv.Hi-iv.Lo)
		for !r.Done() {
			r.Step()
			iv = r.Interval()
			via, acc := r.Via()
			fmt.Printf("step %2d: [%.6f, %.6f] width %.6f  via %d at exact %.6f\n",
				r.Steps(), iv.Lo, iv.Hi, iv.Hi-iv.Lo, via, acc)
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func runKNN(ctx context.Context, net *silc.Network, eng *silc.Engine, q silc.VertexID, k int, frac float64, methodName string, eps, maxDist float64, seed int64, stats bool) {
	rng := rand.New(rand.NewSource(seed + 1))
	m := int(frac * float64(net.NumVertices()))
	if m < 1 {
		m = 1
	}
	perm := rng.Perm(net.NumVertices())
	vertices := make([]silc.VertexID, m)
	for i := 0; i < m; i++ {
		vertices[i] = silc.VertexID(perm[i])
	}
	objs, err := silc.NewObjectSet(net, vertices)
	if err != nil {
		fail(err)
	}

	method, err := silc.ParseMethod(methodName)
	if err != nil {
		fail(err)
	}
	opts := []silc.Option{silc.WithMethod(method)}
	if eps > 0 {
		opts = append(opts, silc.WithEpsilon(eps))
	}
	if maxDist > 0 {
		opts = append(opts, silc.WithMaxDistance(maxDist))
	}
	res, err := eng.Query(ctx, objs, q, k, opts...)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d neighbors of vertex %d over |S|=%d (sorted=%v)\n",
		method, len(res.Neighbors), q, objs.Len(), res.Sorted)
	for i, n := range res.Neighbors {
		marker := "~"
		if n.Exact {
			marker = "="
		}
		fmt.Printf("  %2d. object %4d at vertex %6d  dist %s %.6f  [%.6f, %.6f]\n",
			i+1, n.ID, n.Vertex, marker, n.Dist, n.Interval.Lo, n.Interval.Hi)
	}
	s := res.Stats
	fmt.Printf("stats: maxQueue=%d refinements=%d lookups=%d settled=%d cpu=%v\n",
		s.MaxQueue, s.Refinements, s.Lookups, s.Settled, s.CPUTime)
	if stats {
		printStats(eng, s)
	}
}

// printStats emits one JSON object pairing the finished query's own
// statistics with the engine-wide I/O aggregates — on a warm pool the
// per-query figures explain which part of the pool-wide traffic this
// query caused. Durations are reported in microseconds.
func printStats(eng *silc.Engine, st silc.QueryStats) {
	io := eng.IOStats()
	out := map[string]any{
		"query": map[string]any{
			"method":         st.Method,
			"max_queue":      st.MaxQueue,
			"refinements":    st.Refinements,
			"lookups":        st.Lookups,
			"settled":        st.Settled,
			"heap_pushes":    st.HeapPushes,
			"page_hits":      st.PageHits,
			"page_misses":    st.PageMisses,
			"page_reads":     st.PageReads,
			"evictions":      st.Evictions,
			"blocks_decoded": st.BlocksDecoded,
			"gateway_routes": st.GatewayRoutes,
			"io_time_us":     st.IOTime.Microseconds(),
			"cpu_time_us":    st.CPUTime.Microseconds(),
			"filter_time_us": st.FilterTime.Microseconds(),
			"refine_time_us": st.RefineTime.Microseconds(),
		},
		"engine_io": map[string]any{
			"page_hits":           io.PageHits,
			"page_misses":         io.PageMisses,
			"page_reads":          io.PageReads,
			"modeled_io_time_us":  io.ModeledIOTime.Microseconds(),
			"measured_io_time_us": io.MeasuredIOTime.Microseconds(),
		},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func loadOrGenerate(file string, rows, cols int, seed int64) (*silc.Network, error) {
	if file == "" {
		return silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return silc.LoadNetwork(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "silcquery:", err)
	os.Exit(1)
}
