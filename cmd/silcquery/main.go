// Command silcquery answers network-distance queries over a SILC index:
// k-nearest-neighbor search, exact distances, shortest paths, and
// progressive-refinement traces.
//
// Usage:
//
//	silcquery -rows 48 -cols 48 -mode knn -q 17 -k 5 -objects 0.05 -method KNN
//	silcquery -net network.txt -mode dist -q 17 -dest 423
//	silcquery -net network.txt -mode path -q 17 -dest 423
//	silcquery -net network.txt -mode refine -q 17 -dest 423
//	silcquery -rows 64 -cols 64 -partitions 8 -mode dist -q 17 -dest 423
//
// -partitions N > 1 queries through the sharded index; -index accepts both
// monolithic and sharded files (the format is sniffed). The refine trace
// mode requires a monolithic index.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"silc"
)

func main() {
	var (
		netFile = flag.String("net", "", "network file (generated if empty)")
		idxFile = flag.String("index", "", "prebuilt index file from silcbuild -o (built fresh if empty)")
		rows    = flag.Int("rows", 48, "generated lattice rows")
		cols    = flag.Int("cols", 48, "generated lattice cols")
		seed    = flag.Int64("seed", 1, "generator / workload seed")
		mode    = flag.String("mode", "knn", "query mode: knn, dist, path, refine")
		q       = flag.Int("q", 0, "query vertex")
		dest    = flag.Int("dest", 1, "destination vertex (dist, path, refine)")
		k       = flag.Int("k", 5, "neighbor count (knn)")
		objFrac = flag.Float64("objects", 0.05, "object fraction of N (knn)")
		method  = flag.String("method", "KNN", "algorithm: KNN, INN, KNN-I, KNN-M, INE, IER")
		parts   = flag.Int("partitions", 1, "spatial partitions (>1 queries the sharded index)")
	)
	flag.Parse()

	net, err := loadOrGenerate(*netFile, *rows, *cols, *seed)
	if err != nil {
		fail(err)
	}
	if *q < 0 || *q >= net.NumVertices() || *dest < 0 || *dest >= net.NumVertices() {
		fail(fmt.Errorf("vertex out of range [0,%d)", net.NumVertices()))
	}
	var ix silc.Engine
	if *idxFile != "" {
		f, err := os.Open(*idxFile)
		if err != nil {
			fail(err)
		}
		ix, err = silc.LoadEngine(f, net, silc.BuildOptions{})
		f.Close()
		if err != nil {
			fail(err)
		}
	} else if *parts > 1 {
		if ix, err = silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: *parts}); err != nil {
			fail(err)
		}
	} else if ix, err = silc.BuildIndex(net, silc.BuildOptions{}); err != nil {
		fail(err)
	}
	src, dst := silc.VertexID(*q), silc.VertexID(*dest)

	switch *mode {
	case "knn":
		runKNN(net, ix, src, *k, *objFrac, *method, *seed)
	case "dist":
		iv := ix.DistanceInterval(src, dst)
		fmt.Printf("interval (no refinement): [%.6f, %.6f]\n", iv.Lo, iv.Hi)
		fmt.Printf("exact network distance:   %.6f\n", ix.Distance(src, dst))
		fmt.Printf("euclidean distance:       %.6f\n", net.Euclid(src, dst))
	case "path":
		path := ix.ShortestPath(src, dst)
		fmt.Printf("shortest path, %d hops:\n", len(path)-1)
		for _, v := range path {
			p := net.Point(v)
			fmt.Printf("  %6d  (%.4f, %.4f)\n", v, p.X, p.Y)
		}
	case "refine":
		mono, ok := ix.(*silc.Index)
		if !ok {
			fail(fmt.Errorf("the refine trace requires a monolithic index"))
		}
		r := mono.NewRefiner(src, dst)
		iv := r.Interval()
		fmt.Printf("step %2d: [%.6f, %.6f] width %.6f\n", 0, iv.Lo, iv.Hi, iv.Hi-iv.Lo)
		for !r.Done() {
			r.Step()
			iv = r.Interval()
			via, acc := r.Via()
			fmt.Printf("step %2d: [%.6f, %.6f] width %.6f  via %d at exact %.6f\n",
				r.Steps(), iv.Lo, iv.Hi, iv.Hi-iv.Lo, via, acc)
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func runKNN(net *silc.Network, ix silc.Engine, q silc.VertexID, k int, frac float64, methodName string, seed int64) {
	rng := rand.New(rand.NewSource(seed + 1))
	m := int(frac * float64(net.NumVertices()))
	if m < 1 {
		m = 1
	}
	perm := rng.Perm(net.NumVertices())
	vertices := make([]silc.VertexID, m)
	for i := 0; i < m; i++ {
		vertices[i] = silc.VertexID(perm[i])
	}
	objs := silc.NewObjectSet(net, vertices)

	method, err := parseMethod(methodName)
	if err != nil {
		fail(err)
	}
	res := ix.Query(objs, q, k, method)
	fmt.Printf("%s: %d neighbors of vertex %d over |S|=%d (sorted=%v)\n",
		method, len(res.Neighbors), q, objs.Len(), res.Sorted)
	for i, n := range res.Neighbors {
		marker := "~"
		if n.Exact {
			marker = "="
		}
		fmt.Printf("  %2d. object %4d at vertex %6d  dist %s %.6f  [%.6f, %.6f]\n",
			i+1, n.ID, n.Vertex, marker, n.Dist, n.Interval.Lo, n.Interval.Hi)
	}
	s := res.Stats
	fmt.Printf("stats: maxQueue=%d refinements=%d lookups=%d settled=%d cpu=%v\n",
		s.MaxQueue, s.Refinements, s.Lookups, s.Settled, s.CPUTime)
}

func parseMethod(s string) (silc.Method, error) {
	switch strings.ToUpper(s) {
	case "KNN":
		return silc.MethodKNN, nil
	case "INN":
		return silc.MethodINN, nil
	case "KNN-I", "KNNI":
		return silc.MethodKNNI, nil
	case "KNN-M", "KNNM":
		return silc.MethodKNNM, nil
	case "INE":
		return silc.MethodINE, nil
	case "IER":
		return silc.MethodIER, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func loadOrGenerate(file string, rows, cols int, seed int64) (*silc.Network, error) {
	if file == "" {
		return silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return silc.LoadNetwork(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "silcquery:", err)
	os.Exit(1)
}
