// Command netgen generates synthetic spatial networks in the silc text
// interchange format.
//
// Usage:
//
//	netgen -kind road -rows 64 -cols 64 -seed 1 -o network.txt
//	netgen -kind grid -rows 10 -cols 10
//	netgen -kind town -rings 6 -spokes 24
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"silc"
)

func main() {
	var (
		kind   = flag.String("kind", "road", "network kind: road, grid, town")
		rows   = flag.Int("rows", 64, "lattice rows (road, grid)")
		cols   = flag.Int("cols", 64, "lattice cols (road, grid)")
		rings  = flag.Int("rings", 6, "ring count (town)")
		spokes = flag.Int("spokes", 24, "spoke count (town)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	net, err := generate(*kind, *rows, *cols, *rings, *spokes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := net.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "netgen: %d vertices, %d directed edges\n", net.NumVertices(), net.NumEdges())
}

// generate builds one network from the flag values. The output is a pure
// function of the arguments — the same seed must reproduce the same network
// byte for byte, which is what makes a manifest-referenced index rebuildable
// anywhere.
func generate(kind string, rows, cols, rings, spokes int, seed int64) (*silc.Network, error) {
	switch kind {
	case "road":
		return silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	case "grid":
		return silc.GenerateGrid(rows, cols)
	case "town":
		return silc.GenerateRingRadial(rings, spokes, seed)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
