package main

import (
	"bytes"
	"testing"
)

// render runs one generation and returns the exact bytes netgen would emit.
func render(t *testing.T, kind string, seed int64) []byte {
	t.Helper()
	net, err := generate(kind, 12, 12, 4, 9, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeedDeterminism: the same -seed reproduces the network byte for byte,
// and a different seed actually changes the randomized kinds. CI and the
// cluster docs rely on this — every node of a cluster rebuilds or verifies
// the same network from just (kind, dims, seed).
func TestSeedDeterminism(t *testing.T) {
	for _, kind := range []string{"road", "town"} {
		a := render(t, kind, 7)
		b := render(t, kind, 7)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: same seed produced different networks", kind)
		}
		c := render(t, kind, 8)
		if bytes.Equal(a, c) {
			t.Fatalf("%s: seed is ignored — seeds 7 and 8 agree byte for byte", kind)
		}
	}
	// grid takes no randomness; it must still be self-consistent.
	if !bytes.Equal(render(t, "grid", 1), render(t, "grid", 2)) {
		t.Fatal("grid generation is not deterministic")
	}
	if _, err := generate("hexes", 4, 4, 1, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
