package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"silc"
)

// testLiveServer is testServer plus a live object world over the same
// network, as -live would wire it up.
func testLiveServer(t *testing.T) *server {
	t.Helper()
	srv := testServer(t)
	live, err := silc.NewLiveObjects(srv.eng.Network(), silc.LiveObjectsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	srv.live = live
	return srv
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body map[string]any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp
}

func TestServerLiveObjectsCRUD(t *testing.T) {
	ts := httptest.NewServer(testLiveServer(t).routes())
	defer ts.Close()

	// Insert at a vertex.
	var ins struct {
		ID      int32  `json:"id"`
		Vertex  int64  `json:"vertex"`
		Version uint64 `json:"version"`
	}
	if resp := postJSON(t, ts, "/objects", map[string]any{"vertex": 9}, &ins); resp.StatusCode != 200 {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	if ins.Vertex != 9 || ins.Version == 0 {
		t.Fatalf("insert response: %+v", ins)
	}

	// Insert at a point: the response reports the snapped vertex.
	var pt struct {
		ID      int32  `json:"id"`
		Vertex  int64  `json:"vertex"`
		Version uint64 `json:"version"`
	}
	if resp := postJSON(t, ts, "/objects", map[string]any{"x": 0.0, "y": 0.0}, &pt); resp.StatusCode != 200 {
		t.Fatalf("point insert status %d", resp.StatusCode)
	}
	if pt.ID == ins.ID || pt.Version <= ins.Version {
		t.Fatalf("point insert response: %+v after %+v", pt, ins)
	}

	// Live query pins a snapshot and stamps its version.
	var knn struct {
		Neighbors []struct {
			Vertex int64   `json:"vertex"`
			Dist   float64 `json:"dist"`
		} `json:"neighbors"`
		Stats struct {
			SnapshotVersion uint64 `json:"snapshot_version"`
		} `json:"stats"`
	}
	if resp := getJSON(t, ts, "/knn?q=9&k=1&live=1", &knn); resp.StatusCode != 200 {
		t.Fatalf("live knn status %d", resp.StatusCode)
	}
	if len(knn.Neighbors) != 1 || knn.Neighbors[0].Vertex != 9 || knn.Neighbors[0].Dist != 0 {
		t.Fatalf("live knn response: %+v", knn)
	}
	if knn.Stats.SnapshotVersion != pt.Version {
		t.Fatalf("live knn stamped version %d, want %d", knn.Stats.SnapshotVersion, pt.Version)
	}
	// The static set (live omitted) is unaffected and stamps no version.
	var static struct {
		Stats struct {
			SnapshotVersion uint64 `json:"snapshot_version"`
		} `json:"stats"`
	}
	getJSON(t, ts, "/knn?q=9&k=1", &static)
	if static.Stats.SnapshotVersion != 0 {
		t.Fatalf("static knn stamped version %d", static.Stats.SnapshotVersion)
	}

	// Move.
	var mv struct {
		Version uint64 `json:"version"`
	}
	if resp := postJSON(t, ts, "/objects", map[string]any{"id": ins.ID, "vertex": 12}, &mv); resp.StatusCode != 200 {
		t.Fatalf("move status %d", resp.StatusCode)
	}
	if mv.Version <= pt.Version {
		t.Fatalf("move version %d not past %d", mv.Version, pt.Version)
	}

	// List reflects both objects at their current vertices.
	var list struct {
		Version uint64 `json:"version"`
		Count   int    `json:"count"`
		Objects []struct {
			ID     int32 `json:"id"`
			Vertex int64 `json:"vertex"`
		} `json:"objects"`
	}
	getJSON(t, ts, "/objects", &list)
	if list.Count != 2 || list.Version != mv.Version {
		t.Fatalf("list response: %+v", list)
	}
	vertices := map[int32]int64{}
	for _, o := range list.Objects {
		vertices[o.ID] = o.Vertex
	}
	if vertices[ins.ID] != 12 {
		t.Fatalf("moved object at vertex %d, want 12", vertices[ins.ID])
	}

	// Remove; unknown ids are 404s; a bad live param is a 400.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects?id="+strconv.Itoa(int(ins.ID)), nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects?id=9999", nil)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown id status %d, want 404", resp2.StatusCode)
	}
	if resp := getJSON(t, ts, "/knn?q=0&k=1&live=maybe", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad live param status %d, want 400", resp.StatusCode)
	}

	// Batch against the live world.
	var batch struct {
		Results []struct {
			Neighbors []struct {
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
		} `json:"results"`
		Batch struct {
			Queries int `json:"queries"`
			Failed  int `json:"failed"`
			Skipped int `json:"skipped"`
		} `json:"batch"`
	}
	if resp := postJSON(t, ts, "/knn", map[string]any{
		"queries": []int64{0, 9}, "k": 1, "live": true,
	}, &batch); resp.StatusCode != 200 {
		t.Fatalf("live batch status %d", resp.StatusCode)
	}
	if batch.Batch.Queries != 2 || batch.Batch.Failed != 0 || batch.Batch.Skipped != 0 {
		t.Fatalf("live batch stats: %+v", batch.Batch)
	}

	// The live store's metrics surface through /metrics.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"silc_objstore_inserts_total", "silc_objstore_objects", "silc_objstore_version"} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerLiveDisabled: without -live every live surface is a 404.
func TestServerLiveDisabled(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()
	for _, path := range []string{"/objects", "/watch?q=0&k=2", "/knn?q=0&k=1&live=1"} {
		resp := getJSON(t, ts, path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServerWatchStream reads the continuous-kNN NDJSON stream: the first
// line is the full initial top-k, a live insert produces a delta line.
func TestServerWatchStream(t *testing.T) {
	srv := testLiveServer(t)
	if _, _, err := srv.live.Insert(3); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/watch?q=3&k=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/watch content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var first struct {
		Version   uint64           `json:"version"`
		Neighbors []map[string]any `json:"neighbors"`
	}
	if err := dec.Decode(&first); err != nil {
		t.Fatalf("initial watch line: %v", err)
	}
	if len(first.Neighbors) != 1 || first.Version == 0 {
		t.Fatalf("initial watch line: %+v", first)
	}

	// A mutation that changes the top-k yields a delta line.
	if _, _, err := srv.live.Insert(4); err != nil {
		t.Fatal(err)
	}
	var second struct {
		Version   uint64           `json:"version"`
		Neighbors []map[string]any `json:"neighbors"`
		Added     []map[string]any `json:"added"`
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatalf("delta watch line: %v", err)
	}
	if second.Version <= first.Version || len(second.Neighbors) != 2 || len(second.Added) != 1 {
		t.Fatalf("delta watch line: %+v", second)
	}
}
