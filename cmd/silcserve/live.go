package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"silc"
)

// errLiveDisabled is the 404 every live endpoint returns when the server
// runs without -live.
var errLiveDisabled = httpError{status: http.StatusNotFound, msg: "live object world disabled (start with -live)"}

// liveView pins the current live snapshot, or fails when -live is off.
func (s *server) liveView() (*silc.ObjectSet, error) {
	if s.live == nil {
		return nil, errLiveDisabled
	}
	return s.live.View(), nil
}

// querySet resolves the object set a query runs against: the static startup
// set, or — with live=1 — a pinned snapshot of the live world, exact for the
// version stamped into the result's stats.
func (s *server) querySet(liveRaw string) (*silc.ObjectSet, error) {
	switch liveRaw {
	case "", "0", "false":
		return s.objs, nil
	case "1", "true":
		return s.liveView()
	}
	return nil, badRequest("parameter live must be 0/1/true/false")
}

// objectRequest is the POST /objects body: insert ({"vertex":V} or
// {"x":X,"y":Y}, snapped to the nearest vertex) or move ({"id":I,"vertex":V}
// — an id makes it a move).
type objectRequest struct {
	ID     *int32   `json:"id"`
	Vertex *int64   `json:"vertex"`
	X      *float64 `json:"x"`
	Y      *float64 `json:"y"`
}

// handleObjects is the live-world CRUD endpoint: GET lists one consistent
// snapshot, POST inserts or moves, DELETE removes. Every mutation response
// carries the first store version reflecting it, so a client can correlate
// its write with the SnapshotVersion stamped on later query results.
func (s *server) handleObjects(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		writeError(w, errLiveDisabled)
		return
	}
	switch r.Method {
	case http.MethodGet:
		objects, version := s.live.List()
		list := make([]map[string]any, len(objects))
		for i, o := range objects {
			list[i] = map[string]any{"id": o.ID, "vertex": int64(o.Vertex)}
		}
		writeJSON(w, map[string]any{"version": version, "count": len(list), "objects": list})
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, 4096)
		var req objectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, badRequest("bad JSON body: %v", err))
			return
		}
		switch {
		case req.ID != nil: // move
			if req.Vertex == nil {
				writeError(w, badRequest(`move needs a "vertex"`))
				return
			}
			ver, err := s.live.Move(*req.ID, silc.VertexID(*req.Vertex))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, map[string]any{"id": *req.ID, "vertex": *req.Vertex, "version": ver})
		case req.Vertex != nil: // insert at a vertex
			id, ver, err := s.live.Insert(silc.VertexID(*req.Vertex))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, map[string]any{"id": id, "vertex": *req.Vertex, "version": ver})
		case req.X != nil && req.Y != nil: // insert at a point, snapped
			id, ver, err := s.live.InsertPoint(silc.Point{X: *req.X, Y: *req.Y})
			if err != nil {
				writeError(w, err)
				return
			}
			v, _ := s.live.Vertex(id)
			writeJSON(w, map[string]any{"id": id, "vertex": int64(v), "version": ver})
		default:
			writeError(w, badRequest(`body needs a "vertex", an "x"/"y" point, or an "id" plus "vertex" to move`))
		}
	case http.MethodDelete:
		raw := r.URL.Query().Get("id")
		id, err := strconv.Atoi(raw)
		if raw == "" || err != nil {
			writeError(w, badRequest("parameter id must be an object id"))
			return
		}
		ver, err := s.live.Remove(int32(id))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"id": id, "version": ver})
	default:
		writeError(w, httpError{status: http.StatusMethodNotAllowed, msg: "use GET, POST, or DELETE"})
	}
}

// handleWatch streams continuous kNN over the live world: one NDJSON line
// per change to the top-k (the first line is the full initial result),
// flushed as each is produced. The stream runs until the client disconnects
// or the request deadline fires; a trailing line reports why it ended.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		writeError(w, errLiveDisabled)
		return
	}
	q, err := s.vertexParam(r, "q")
	if err != nil {
		writeError(w, err)
		return
	}
	k, err := s.kParam(r.URL.Query().Get("k"))
	if err != nil {
		writeError(w, err)
		return
	}
	maxDist, err := maxDistParam(r.URL.Query().Get("max_dist"))
	if err != nil {
		writeError(w, err)
		return
	}
	var opts []silc.Option
	if maxDist > 0 {
		opts = append(opts, silc.WithMaxDistance(maxDist))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	events := 0
	for ev, err := range s.eng.Watch(r.Context(), s.live, q, k, opts...) {
		if err != nil {
			// Disconnect or deadline: the watch is already stopped; tell
			// anyone still listening why (a vanished client reads nothing).
			if !errors.Is(err, context.Canceled) {
				enc.Encode(map[string]any{"error": err.Error(), "events": events})
			}
			break
		}
		line := map[string]any{
			"version":   ev.Version,
			"neighbors": toNeighbors(ev.Neighbors),
		}
		if len(ev.Added) > 0 {
			line["added"] = toNeighbors(ev.Added)
		}
		if len(ev.Removed) > 0 {
			line["removed"] = ev.Removed
		}
		if len(ev.Changed) > 0 {
			line["changed"] = toNeighbors(ev.Changed)
		}
		if err := enc.Encode(line); err != nil {
			break // write failed (disconnect): stop streaming
		}
		if flusher != nil {
			flusher.Flush()
		}
		events++
	}
	s.queries.Add(int64(events))
}
