// Command silcserve serves network-distance queries over HTTP/JSON from one
// shared SILC index — the "heavy traffic" deployment the concurrent query
// engine enables. Endpoints:
//
//	GET  /knn?q=V&k=K[&method=KNN][&eps=E][&max_dist=D][&exact=1]
//	                                 k nearest objects to vertex V; eps asks
//	                                 for ε-approximate ranking, max_dist for
//	                                 the hybrid kNN∩range query, exact=1
//	                                 refines every reported distance to exact
//	POST /knn {"queries":[...],"k":K[,"method":"KNN","eps":E,"max_dist":D,"exact":true]}
//	                                 batch kNN over a bounded worker pool
//	GET  /browse?src=V&n=N[&eps=E]   stream the first N neighbors of V
//	                                 incrementally (NDJSON, one line per
//	                                 neighbor) — the paper's distance
//	                                 browsing over HTTP
//	GET  /distance?src=U&dst=V       exact network distance
//	GET  /path?src=U&dst=V           exact shortest path
//	GET  /range?q=V&radius=R[&exact=1]
//	                                 objects within network distance R
//
// With -live the server additionally owns a mutable object world (seeded
// from the startup object set) whose mutations never touch the index:
//
//	GET    /objects                  list live objects + store version
//	POST   /objects {"vertex":V}     insert an object (or {"x":X,"y":Y},
//	                                 snapped to the nearest vertex)
//	POST   /objects {"id":I,"vertex":V}  move object I
//	DELETE /objects?id=I             remove object I
//	GET  /knn?q=V&k=K&live=1         query the live world — the answer is
//	                                 exact for the snapshot version stamped
//	                                 into its stats (range and batch kNN
//	                                 accept live=1 / "live":true too)
//	GET  /watch?q=V&k=K              continuous kNN: NDJSON delta stream,
//	                                 one line per top-k change
//	GET  /stats                      build, buffer-pool, and server counters
//	                                 plus per-endpoint latency quantiles
//	GET  /metrics                    Prometheus text exposition: the
//	                                 engine's silc_* families plus the
//	                                 server's silcserve_* request metrics
//	GET  /debug/pprof/*              Go runtime profiles (with -pprof)
//	GET  /healthz                    liveness probe
//	GET  /readyz                     readiness probe: 503 while draining
//
// On SIGTERM/SIGINT the server drains before it stops: /readyz flips to 503
// so load balancers and the cluster router's health probes steer new work
// away, -drain-grace elapses, and only then does the listener close and
// http.Server.Shutdown finish the in-flight requests.
//
// Cluster modes (-cluster, with -manifest): "node" serves the internal
// cell RPC surface for the cells the manifest assigns -node-name — the
// demand-paged index means only those cells' pages ever materialize —
// while "router" serves this same public query API statelessly, holding
// only the index metadata (network, cell labels, boundary closure) and
// fanning per-cell work out to the owning nodes. Router answers are
// bit-identical to a monolithic server over the same index.
//
// The engine runs with tracing enabled, so per-query filter/refinement
// phase timings feed the silc_knn_*_seconds_total counters and the
// structured slow-query log: -slowlog FILE appends one NDJSON line per
// request slower than -slow-threshold, carrying the endpoint, raw query,
// wall time, and the query's own statistics (refinements, page traffic,
// phase split).
//
// Every handler threads its request context into the query engine, so a
// client disconnect or the -request-timeout deadline cancels the in-flight
// search itself — refinement stops within one step — not just the response
// writes.
//
// The index is either loaded (-index, produced by silcbuild; all four
// formats are sniffed — legacy files additionally need -network, while the
// paged formats embed it and serve straight from disk through the buffer
// pool; -format=paged/legacy asserts the expectation) or built at startup
// from a generated road network — sharded when -partitions N > 1. The
// query-object set defaults to a random sample of vertices
// (-object-fraction) or is read from -objects, one vertex id per line. All
// queries run concurrently over one shared index; batch requests
// additionally fan out over a bounded worker pool.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"silc"
	"silc/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		networkPath = flag.String("network", "", "network file (silcbuild text format); empty = generate")
		indexPath   = flag.String("index", "", "prebuilt index file (paged formats embed the network; legacy formats require -network)")
		format      = flag.String("format", "auto", "index file format expectation: auto (sniff), paged (demand-paged SILCPG1/SILCSPG1), legacy (fully loaded)")
		rows        = flag.Int("rows", 64, "generated network rows (when no -network)")
		cols        = flag.Int("cols", 64, "generated network cols")
		seed        = flag.Int64("seed", 1, "generated network seed")
		disk        = flag.Bool("disk", false, "attach the disk-resident storage model")
		mmap        = flag.Bool("mmap", false, "open paged index files through a read-only memory mapping (falls back to positioned reads where unsupported)")
		cacheFrac   = flag.Float64("cache-fraction", 0.05, "buffer-pool size as a fraction of total pages")
		missLatency = flag.Duration("miss-latency", 0, "modeled page-miss latency (0 = default 200µs)")
		objectsPath = flag.String("objects", "", "object vertices file, one id per line; empty = random sample")
		objectFrac  = flag.Float64("object-fraction", 0.05, "fraction of vertices carrying an object (when no -objects)")
		objectSeed  = flag.Int64("object-seed", 2008, "object sample seed")
		liveOn      = flag.Bool("live", false, "serve a mutable live object world (/objects, /watch, live=1 queries), seeded from the startup objects")
		liveTTL     = flag.Duration("live-ttl", 0, "expire live objects not inserted/moved within this duration (0 = never)")
		partitions  = flag.Int("partitions", 1, "spatial partitions (>1 builds/serves the sharded index)")
		maxK        = flag.Int("max-k", 1000, "largest k a request may ask for")
		maxBatch    = flag.Int("max-batch", 10000, "largest batch request size")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline cancelling in-flight queries (0 = none)")
		pprofOn     = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
		slowlogPath = flag.String("slowlog", "", "append slow-query NDJSON entries to this file (empty = disabled)")
		slowThresh  = flag.Duration("slow-threshold", 100*time.Millisecond, "minimum request latency for a -slowlog entry")

		clusterMode   = flag.String("cluster", "", `cluster role: "node" (serve owned cells' RPC surface) or "router" (stateless query router); empty = standalone`)
		manifestPath  = flag.String("manifest", "", "cluster manifest JSON file (required with -cluster)")
		nodeName      = flag.String("node-name", "", "this node's name in the manifest (required with -cluster node)")
		drainGrace    = flag.Duration("drain-grace", 5*time.Second, "on SIGTERM, time between failing /readyz and closing the listener")
		probeInterval = flag.Duration("probe-interval", time.Second, "router: how often to re-probe failed replicas on /readyz")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "router: hedge a slow RPC onto another replica after this delay (0 = off)")
		readyWait     = flag.Duration("ready-wait", 30*time.Second, "router: how long to wait at startup for every manifest node's /readyz")
	)
	flag.Parse()

	switch *clusterMode {
	case "node":
		runClusterNode(*addr, *manifestPath, *nodeName, *indexPath, silc.ShardedBuildOptions{
			DiskResident:  *disk,
			CacheFraction: *cacheFrac,
			MissLatency:   *missLatency,
			Mmap:          *mmap,
		}, *drainGrace)
		return
	case "router", "":
	default:
		log.Fatalf("silcserve: unknown -cluster %q (node, router)", *clusterMode)
	}

	if *format != "auto" && *format != "paged" && *format != "legacy" {
		log.Fatalf("silcserve: unknown -format %q (auto, paged, legacy)", *format)
	}
	if *format != "auto" && *indexPath == "" {
		log.Fatal("silcserve: -format asserts the -index file's format; it requires -index")
	}
	var (
		net    *silc.Network
		eng    *silc.Engine
		router *silc.ClusterRouter
		err    error
	)
	if *clusterMode == "router" {
		router, err = openRouter(*manifestPath, *indexPath, silc.ClusterRouterOptions{
			HedgeDelay: *hedgeDelay,
		}, *readyWait)
		if err != nil {
			log.Fatalf("silcserve: %v", err)
		}
		eng = router.Engine()
		net = eng.Network()
	} else {
		net, eng, err = loadOrBuild(*networkPath, *indexPath, *format, *rows, *cols, *seed, *partitions, silc.BuildOptions{
			DiskResident:  *disk,
			CacheFraction: *cacheFrac,
			MissLatency:   *missLatency,
			Mmap:          *mmap,
		})
		if err != nil {
			log.Fatalf("silcserve: %v", err)
		}
	}
	objs, objVertices, err := loadObjects(net, *objectsPath, *objectFrac, *objectSeed)
	if err != nil {
		log.Fatalf("silcserve: %v", err)
	}
	nObjs := len(objVertices)
	if sx, ok := eng.Sharded(); ok {
		st := sx.Stats()
		log.Printf("serving %d vertices, %d edges, %d objects (%d partitions, %d boundary vertices)",
			st.Vertices, st.Edges, nObjs, st.Partitions, st.BoundaryVertices)
	} else if mono, ok := eng.Monolithic(); ok {
		st := mono.Stats()
		log.Printf("serving %d vertices, %d edges, %d objects (%.1f blocks/vertex)",
			st.Vertices, st.Edges, nObjs, st.BlocksPerVertex())
	}

	// Tracing stamps each query's filter/refinement phase split onto its
	// span — the serving deployment trades the extra clock reads for
	// phase-attributed metrics and slow-log entries.
	eng.SetTracing(true)

	s := newServer(eng, objs, *maxK, *maxBatch)
	s.timeout = *reqTimeout
	s.pprof = *pprofOn
	if *liveOn {
		live, err := silc.NewLiveObjects(net, silc.LiveObjectsOptions{TTL: *liveTTL})
		if err != nil {
			log.Fatalf("silcserve: %v", err)
		}
		defer live.Close()
		for _, v := range objVertices {
			live.Insert(v)
		}
		s.live = live
		log.Printf("live object world: %d objects seeded (ttl %v)", live.Len(), *liveTTL)
	}
	if router != nil {
		s.aux = router.Registry() // adds the silc_cluster_* families to /metrics
		probeCtx, stopProbing := context.WithCancel(context.Background())
		defer stopProbing()
		router.StartProbing(probeCtx, *probeInterval)
	}
	if *slowlogPath != "" {
		slow, err := openSlowLog(*slowlogPath, *slowThresh)
		if err != nil {
			log.Fatalf("silcserve: %v", err)
		}
		defer slow.Close()
		s.slow = slow
		log.Printf("slow-query log: %s (threshold %v)", *slowlogPath, *slowThresh)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveAndDrain(httpServer, *drainGrace, func() { s.draining.Store(true) })
}

// serveAndDrain runs the server until SIGTERM/SIGINT, then drains before
// stopping: onDrain flips /readyz to 503 so load balancers (and the cluster
// router's replica probes) steer new work away, the grace period gives them
// time to notice, and only then does Shutdown close the listener and finish
// the in-flight requests.
func serveAndDrain(srv *http.Server, grace time.Duration, onDrain func()) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", srv.Addr)

	select {
	case err := <-errc:
		log.Fatalf("silcserve: %v", err)
	case <-ctx.Done():
	}
	onDrain()
	log.Printf("draining: /readyz failing, shutdown in %v", grace)
	time.Sleep(grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("silcserve: shutdown: %v", err)
	}
}

// runClusterNode is the -cluster node main: open the shared paged index,
// bind this node's manifest entry, and serve the internal RPC surface until
// a drain-then-shutdown signal. Only the owned cells' pages ever
// materialize, so a node's memory footprint is its share of the database,
// not the whole file.
func runClusterNode(addr, manifestPath, name, indexPath string, opts silc.ShardedBuildOptions, grace time.Duration) {
	m, indexPath, err := loadManifest(manifestPath, indexPath)
	if err != nil {
		log.Fatalf("silcserve: %v", err)
	}
	if name == "" {
		log.Fatal("silcserve: -cluster node requires -node-name")
	}
	ix, err := silc.OpenShardedIndex(indexPath, opts)
	if err != nil {
		log.Fatalf("silcserve: open index: %v", err)
	}
	node, err := silc.NewClusterNode(ix, m, name)
	if err != nil {
		log.Fatalf("silcserve: %v", err)
	}
	defer node.Close()
	spec := m.Node(name)
	log.Printf("cluster node %s serving cells %v of %s", name, spec.Cells, indexPath)

	// The node handler's own /metrics only has the silcnode_* families;
	// mount a richer one in front that prepends the engine's silc_* ones.
	mux := http.NewServeMux()
	mux.Handle("/", node.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		node.WriteMetrics(w)
	})
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveAndDrain(httpServer, grace, node.StartDrain)
}

// openRouter is the -cluster router setup: read the index metadata (no cell
// pages), wire the RPC client over the manifest, and wait for every node's
// /readyz so the router never serves ahead of its backends.
func openRouter(manifestPath, indexPath string, opt silc.ClusterRouterOptions, readyWait time.Duration) (*silc.ClusterRouter, error) {
	m, indexPath, err := loadManifest(manifestPath, indexPath)
	if err != nil {
		return nil, err
	}
	router, err := silc.OpenClusterRouter(indexPath, m, opt)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(readyWait)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err = router.Ready(ctx)
		cancel()
		if err == nil {
			return router, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster not ready after %v: %w", readyWait, err)
		}
		log.Printf("waiting for cluster: %v", err)
		time.Sleep(500 * time.Millisecond)
	}
}

// loadManifest reads the cluster manifest and resolves the index path:
// -index overrides the manifest's own index entry.
func loadManifest(manifestPath, indexPath string) (*silc.ClusterManifest, string, error) {
	if manifestPath == "" {
		return nil, "", errors.New("-cluster requires -manifest")
	}
	m, err := silc.LoadClusterManifest(manifestPath)
	if err != nil {
		return nil, "", err
	}
	if indexPath == "" {
		indexPath = m.Index
	}
	if indexPath == "" {
		return nil, "", errors.New("no index: pass -index or set the manifest's \"index\"")
	}
	return m, indexPath, nil
}

// checkFormat enforces the -format expectation against the file's magic:
// "paged" demands a demand-paged SILCPG1/SILCPG2/SILCSPG1/SILCSPG2 file,
// "legacy" a fully loaded SILCIDX1/SILCSHD1 one, "auto" accepts anything
// OpenEngine sniffs.
func checkFormat(indexPath, format string) error {
	if format == "auto" {
		return nil
	}
	f, err := os.Open(indexPath)
	if err != nil {
		return err
	}
	var magic [8]byte
	_, err = io.ReadFull(f, magic[:])
	f.Close()
	if err != nil {
		return err
	}
	var paged bool
	switch string(magic[:]) {
	case "SILCPG1\x00", "SILCPG2\x00", "SILCSPG1", "SILCSPG2":
		paged = true
	}
	switch format {
	case "paged":
		if !paged {
			return fmt.Errorf("-format=paged but %s has magic %q (build it with silcbuild -format=paged)", indexPath, magic[:])
		}
	case "legacy":
		if paged {
			return fmt.Errorf("-format=legacy but %s is a paged index", indexPath)
		}
	default:
		return fmt.Errorf("unknown -format %q (auto, paged, legacy)", format)
	}
	return nil
}

func loadOrBuild(networkPath, indexPath, format string, rows, cols int, seed int64, partitions int, opts silc.BuildOptions) (*silc.Network, *silc.Engine, error) {
	var net *silc.Network
	var err error
	if networkPath != "" {
		f, err := os.Open(networkPath)
		if err != nil {
			return nil, nil, err
		}
		net, err = silc.LoadNetwork(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("load network: %w", err)
		}
	} else if indexPath == "" {
		net, err = silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
	}
	if indexPath != "" {
		if err := checkFormat(indexPath, format); err != nil {
			return nil, nil, err
		}
		// OpenEngine sniffs the format: the paged formats (SILCPG1/SILCSPG1)
		// are self-contained and demand-paged, so net may be nil; the legacy
		// formats load fully and need -network.
		eng, err := silc.OpenEngine(indexPath, net, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("load index: %w", err)
		}
		return eng.Network(), eng, nil
	}
	if partitions > 1 {
		log.Printf("building sharded index over %d vertices (%d partitions)...", net.NumVertices(), partitions)
		sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{
			Partitions:    partitions,
			DiskResident:  opts.DiskResident,
			CacheFraction: opts.CacheFraction,
			MissLatency:   opts.MissLatency,
		})
		if err != nil {
			return nil, nil, err
		}
		return net, sx.Engine(), nil
	}
	log.Printf("building index over %d vertices...", net.NumVertices())
	ix, err := silc.BuildIndex(net, opts)
	if err != nil {
		return nil, nil, err
	}
	return net, ix.Engine(), nil
}

func loadObjects(net *silc.Network, path string, fraction float64, seed int64) (*silc.ObjectSet, []silc.VertexID, error) {
	var vs []silc.VertexID
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		for _, line := range strings.Fields(string(data)) {
			id, err := strconv.Atoi(line)
			if err != nil || id < 0 || id >= net.NumVertices() {
				return nil, nil, fmt.Errorf("bad object vertex %q", line)
			}
			vs = append(vs, silc.VertexID(id))
		}
	} else {
		n := net.NumVertices()
		m := int(math.Round(fraction * float64(n)))
		if m < 1 {
			m = 1
		}
		if m > n {
			m = n
		}
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		for _, v := range perm[:m] {
			vs = append(vs, silc.VertexID(v))
		}
	}
	objs, err := silc.NewObjectSet(net, vs)
	if err != nil {
		return nil, nil, err
	}
	return objs, vs, nil
}

// server holds the shared read-only state plus request counters.
type server struct {
	eng      *silc.Engine
	objs     *silc.ObjectSet
	live     *silc.LiveObjects // mutable live world (-live; nil otherwise)
	maxK     int
	maxBatch int
	timeout  time.Duration // per-request deadline (0 = none)
	pprof    bool          // mount /debug/pprof/
	started  time.Time
	requests atomic.Int64
	queries  atomic.Int64 // logical queries answered (a batch counts each)

	// Server-side metrics live in their own registry: /metrics emits the
	// engine's silc_* families followed by these silcserve_* ones — the
	// family names are disjoint, so the concatenation is a valid text-
	// format exposition.
	reg       *obs.Registry
	aux       *obs.Registry // extra /metrics families (router: silc_cluster_*)
	inflight  *obs.Gauge
	endpoints map[string]*endpointMetrics
	slow      *slowLog
	draining  atomic.Bool // set on SIGTERM: /readyz fails while queries drain
}

// endpointMetrics is one HTTP endpoint's request counter and latency
// histogram.
type endpointMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// endpointNames lists the instrumented query endpoints; /metrics and
// /healthz are deliberately excluded so scrapes and probes don't pollute
// the latency distributions.
var endpointNames = []string{"/knn", "/browse", "/distance", "/path", "/range", "/stats", "/objects", "/watch"}

func newServer(eng *silc.Engine, objs *silc.ObjectSet, maxK, maxBatch int) *server {
	s := &server{eng: eng, objs: objs, maxK: maxK, maxBatch: maxBatch, started: time.Now()}
	s.reg = obs.NewRegistry()
	s.inflight = s.reg.Gauge("silcserve_inflight_requests", "",
		"HTTP requests currently being handled.")
	s.endpoints = make(map[string]*endpointMetrics, len(endpointNames))
	for _, name := range endpointNames {
		label := `endpoint="` + name + `"`
		s.endpoints[name] = &endpointMetrics{
			requests: s.reg.Counter("silcserve_requests_total", label,
				"HTTP requests handled per endpoint."),
			latency: s.reg.Histogram("silcserve_request_seconds", label,
				"HTTP request latency per endpoint."),
		}
	}
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/knn", s.observe("/knn", s.handleKNN))
	mux.HandleFunc("/browse", s.observe("/browse", s.handleBrowse))
	mux.HandleFunc("/distance", s.observe("/distance", s.handleDistance))
	mux.HandleFunc("/path", s.observe("/path", s.handlePath))
	mux.HandleFunc("/range", s.observe("/range", s.handleRange))
	mux.HandleFunc("/stats", s.observe("/stats", s.handleStats))
	mux.HandleFunc("/objects", s.observe("/objects", s.handleObjects))
	mux.HandleFunc("/watch", s.observe("/watch", s.handleWatch))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statsCtxKey carries a per-request holder the handler fills with the
// query's own statistics, so the middleware can attach them to slow-log
// entries without re-plumbing every handler signature.
type statsCtxKey struct{}

type statsHolder struct{ st *silc.QueryStats }

// noteStats records one finished query's statistics against the current
// request (for the slow-query log).
func noteStats(r *http.Request, st silc.QueryStats) {
	if h, ok := r.Context().Value(statsCtxKey{}).(*statsHolder); ok {
		h.st = &st
	}
}

// observe is the request middleware: it bumps the counters, observes the
// endpoint's latency histogram, applies the -request-timeout deadline to
// the request context — so a slow query is cancelled inside the engine
// rather than left running after the client gave up — and appends a
// slow-log entry when the request crosses the threshold.
// (http.TimeoutHandler is unsuitable here: it buffers responses, which
// would break /browse streaming.)
func (s *server) observe(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		em.requests.Inc()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		holder := &statsHolder{}
		r = r.WithContext(context.WithValue(ctx, statsCtxKey{}, holder))
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		em.latency.Observe(d)
		if s.slow != nil && d >= s.slow.threshold {
			s.slow.record(endpoint, r, d, holder.st)
		}
	}
}

// handleMetrics serves the Prometheus text exposition: engine families
// first (silc_engine_*, silc_knn_*, silc_diskio_*, silc_store_*,
// silc_partition_*), then the server's silcserve_* request metrics.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.eng.WriteMetrics(w); err != nil {
		return // client went away mid-scrape; nothing to salvage
	}
	if s.aux != nil {
		if err := s.aux.WritePrometheus(w); err != nil {
			return
		}
	}
	if s.live != nil {
		if err := s.live.Registry().WritePrometheus(w); err != nil {
			return
		}
	}
	s.reg.WritePrometheus(w)
}

// slowLog appends one NDJSON entry per slow request. Writes are
// serialized under a mutex — slow requests are rare by definition, so
// contention here is negligible.
type slowLog struct {
	mu        sync.Mutex
	f         *os.File
	enc       *json.Encoder
	threshold time.Duration
}

func openSlowLog(path string, threshold time.Duration) (*slowLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("slowlog: %w", err)
	}
	return &slowLog{f: f, enc: json.NewEncoder(f), threshold: threshold}, nil
}

func (l *slowLog) Close() error { return l.f.Close() }

func (l *slowLog) record(endpoint string, r *http.Request, d time.Duration, st *silc.QueryStats) {
	entry := map[string]any{
		"ts":          time.Now().UTC().Format(time.RFC3339Nano),
		"endpoint":    endpoint,
		"method":      r.Method,
		"query":       r.URL.RawQuery,
		"duration_us": d.Microseconds(),
	}
	if st != nil {
		entry["stats"] = toStats(*st)
	}
	l.mu.Lock()
	l.enc.Encode(entry)
	l.mu.Unlock()
}

type httpError struct {
	status int
	msg    string
}

func (e httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) httpError {
	return httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps an error to its HTTP status: the engine's typed
// validation errors and explicit httpErrors are 400s, a request-timeout
// deadline is 503, a client disconnect (context.Canceled) gets no response
// at all — nobody is listening.
func writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) {
		return
	}
	status := http.StatusInternalServerError
	var he httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, silc.ErrUnknownObject):
		status = http.StatusNotFound
	case errors.Is(err, silc.ErrVertexRange),
		errors.Is(err, silc.ErrBadK),
		errors.Is(err, silc.ErrBadRadius),
		errors.Is(err, silc.ErrBadEpsilon),
		errors.Is(err, silc.ErrBadMethod),
		errors.Is(err, silc.ErrNilObjects),
		errors.Is(err, silc.ErrEmptyObjects):
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *server) vertexParam(r *http.Request, name string) (silc.VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, badRequest("missing parameter %q", name)
	}
	id, err := strconv.Atoi(raw)
	if err != nil || id < 0 || id >= s.eng.Network().NumVertices() {
		return 0, badRequest("parameter %q: not a vertex id in [0,%d)", name, s.eng.Network().NumVertices())
	}
	return silc.VertexID(id), nil
}

// epsParam parses the optional ε-approximation parameter.
func epsParam(raw string) (float64, error) {
	if raw == "" {
		return 0, nil
	}
	eps, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
		return 0, badRequest("parameter eps must be a finite non-negative number")
	}
	return eps, nil
}

// maxDistParam parses the optional hybrid-query distance bound.
func maxDistParam(raw string) (float64, error) {
	if raw == "" {
		return 0, nil
	}
	d, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(d) || d < 0 {
		return 0, badRequest("parameter max_dist must be a non-negative number")
	}
	return d, nil
}

type neighborJSON struct {
	ID     int32   `json:"id"`
	Vertex int64   `json:"vertex"`
	Dist   float64 `json:"dist"`
	Exact  bool    `json:"exact"`
}

type queryStatsJSON struct {
	Method        string `json:"method"`
	Refinements   int    `json:"refinements"`
	Lookups       int    `json:"lookups"`
	Settled       int    `json:"settled,omitempty"`
	HeapPushes    int64  `json:"heap_pushes,omitempty"`
	PageHits      int64  `json:"page_hits"`
	PageMisses    int64  `json:"page_misses"`
	PageReads     int64  `json:"page_reads,omitempty"`
	Evictions     int64  `json:"evictions,omitempty"`
	BlocksDecoded int64  `json:"blocks_decoded,omitempty"`
	GatewayRoutes int64  `json:"gateway_routes,omitempty"`
	IOTimeUS      int64  `json:"io_time_us"`
	CPUTimeUS     int64  `json:"cpu_time_us"`
	FilterTimeUS  int64  `json:"filter_time_us,omitempty"`
	RefineTimeUS  int64  `json:"refine_time_us,omitempty"`
	SnapshotVer   uint64 `json:"snapshot_version,omitempty"`
}

func toNeighbors(ns []silc.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(ns))
	for i, n := range ns {
		out[i] = neighborJSON{ID: n.ID, Vertex: int64(n.Vertex), Dist: n.Dist, Exact: n.Exact}
	}
	return out
}

func toStats(st silc.QueryStats) queryStatsJSON {
	return queryStatsJSON{
		Method:        st.Method,
		Refinements:   st.Refinements,
		Lookups:       st.Lookups,
		Settled:       st.Settled,
		HeapPushes:    st.HeapPushes,
		PageHits:      st.PageHits,
		PageMisses:    st.PageMisses,
		PageReads:     st.PageReads,
		Evictions:     st.Evictions,
		BlocksDecoded: st.BlocksDecoded,
		GatewayRoutes: st.GatewayRoutes,
		IOTimeUS:      st.IOTime.Microseconds(),
		CPUTimeUS:     st.CPUTime.Microseconds(),
		FilterTimeUS:  st.FilterTime.Microseconds(),
		RefineTimeUS:  st.RefineTime.Microseconds(),
		SnapshotVer:   st.SnapshotVersion,
	}
}

// knnOptions assembles the query options shared by the GET and POST forms.
func knnOptions(method silc.Method, eps, maxDist float64, exact bool) []silc.Option {
	opts := []silc.Option{silc.WithMethod(method)}
	if eps > 0 {
		opts = append(opts, silc.WithEpsilon(eps))
	}
	if maxDist > 0 {
		opts = append(opts, silc.WithMaxDistance(maxDist))
	}
	if exact {
		opts = append(opts, silc.WithExactDistances())
	}
	return opts
}

// exactParam parses the optional exact-distances toggle.
func exactParam(raw string) (bool, error) {
	switch raw {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	}
	return false, badRequest("parameter exact must be 0/1/true/false")
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleKNNBatch(w, r)
		return
	}
	q, err := s.vertexParam(r, "q")
	if err != nil {
		writeError(w, err)
		return
	}
	k, err := s.kParam(r.URL.Query().Get("k"))
	if err != nil {
		writeError(w, err)
		return
	}
	method, err := silc.ParseMethod(r.URL.Query().Get("method"))
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	eps, err := epsParam(r.URL.Query().Get("eps"))
	if err != nil {
		writeError(w, err)
		return
	}
	maxDist, err := maxDistParam(r.URL.Query().Get("max_dist"))
	if err != nil {
		writeError(w, err)
		return
	}
	exact, err := exactParam(r.URL.Query().Get("exact"))
	if err != nil {
		writeError(w, err)
		return
	}
	objs, err := s.querySet(r.URL.Query().Get("live"))
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.eng.Query(r.Context(), objs, q, k, knnOptions(method, eps, maxDist, exact)...)
	if err != nil {
		writeError(w, err)
		return
	}
	s.queries.Add(1)
	noteStats(r, res.Stats)
	writeJSON(w, map[string]any{
		"query":     int64(q),
		"k":         k,
		"sorted":    res.Sorted,
		"neighbors": toNeighbors(res.Neighbors),
		"stats":     toStats(res.Stats),
	})
}

func (s *server) kParam(raw string) (int, error) {
	if raw == "" {
		return 0, badRequest("missing parameter %q", "k")
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 || k > s.maxK {
		return 0, badRequest("parameter k must be in [1,%d]", s.maxK)
	}
	return k, nil
}

type batchRequest struct {
	Queries []int64 `json:"queries"`
	K       int     `json:"k"`
	Method  string  `json:"method"`
	Eps     float64 `json:"eps"`
	MaxDist float64 `json:"max_dist"`
	Exact   bool    `json:"exact"`
	Live    bool    `json:"live"`
}

func (s *server) handleKNNBatch(w http.ResponseWriter, r *http.Request) {
	// Bound the body before decoding: ~24 bytes per vertex id is generous,
	// and parsing must not be the path to memory exhaustion.
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*24+4096)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest("bad JSON body: %v", err))
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > s.maxBatch {
		writeError(w, badRequest("batch size must be in [1,%d]", s.maxBatch))
		return
	}
	if req.K < 1 || req.K > s.maxK {
		writeError(w, badRequest("k must be in [1,%d]", s.maxK))
		return
	}
	method, err := silc.ParseMethod(req.Method)
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	if math.IsNaN(req.Eps) || math.IsInf(req.Eps, 0) || req.Eps < 0 {
		writeError(w, badRequest("eps must be a finite non-negative number"))
		return
	}
	if math.IsNaN(req.MaxDist) || req.MaxDist < 0 {
		writeError(w, badRequest("max_dist must be a non-negative number"))
		return
	}
	objs := s.objs
	if req.Live {
		var err error
		if objs, err = s.liveView(); err != nil {
			writeError(w, err)
			return
		}
	}
	queries := make([]silc.VertexID, len(req.Queries))
	for i, v := range req.Queries {
		queries[i] = silc.VertexID(v)
	}
	batch, err := s.eng.QueryBatch(r.Context(), objs, queries, req.K,
		knnOptions(method, req.Eps, req.MaxDist, req.Exact)...)
	if err != nil {
		writeError(w, err)
		return
	}
	s.queries.Add(int64(len(queries)))
	results := make([]map[string]any, len(batch.Results))
	for i, res := range batch.Results {
		results[i] = map[string]any{
			"query":     req.Queries[i],
			"sorted":    res.Sorted,
			"neighbors": toNeighbors(res.Neighbors),
			"stats":     toStats(res.Stats),
		}
	}
	writeJSON(w, map[string]any{
		"k":       req.K,
		"results": results,
		"batch": map[string]any{
			"queries":      batch.Stats.Queries,
			"failed":       batch.Stats.Failed,
			"skipped":      batch.Stats.Skipped,
			"workers":      batch.Stats.Workers,
			"wall_us":      batch.Stats.Wall.Microseconds(),
			"qps":          batch.Stats.QPS,
			"total_cpu_us": batch.Stats.TotalCPU.Microseconds(),
			"page_hits":    batch.Stats.PageHits,
			"page_misses":  batch.Stats.PageMisses,
			"io_time_us":   batch.Stats.IOTime.Microseconds(),
		},
	})
}

func (s *server) handleDistance(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "src")
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := s.vertexParam(r, "dst")
	if err != nil {
		writeError(w, err)
		return
	}
	var st silc.QueryStats
	d, err := s.eng.Distance(r.Context(), src, dst, silc.WithStats(&st))
	if err != nil {
		writeError(w, err)
		return
	}
	s.queries.Add(1)
	noteStats(r, st)
	resp := map[string]any{
		"src":       int64(src),
		"dst":       int64(dst),
		"reachable": !math.IsInf(d, 1),
		"stats":     toStats(st),
	}
	if !math.IsInf(d, 1) {
		resp["distance"] = d
	}
	writeJSON(w, resp)
}

func (s *server) handlePath(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "src")
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := s.vertexParam(r, "dst")
	if err != nil {
		writeError(w, err)
		return
	}
	var st silc.QueryStats
	path, err := s.eng.ShortestPath(r.Context(), src, dst, silc.WithStats(&st))
	if err != nil {
		writeError(w, err)
		return
	}
	s.queries.Add(1)
	noteStats(r, st)
	if path == nil {
		writeJSON(w, map[string]any{"src": int64(src), "dst": int64(dst), "reachable": false, "stats": toStats(st)})
		return
	}
	ids := make([]int64, len(path))
	for i, v := range path {
		ids[i] = int64(v)
	}
	writeJSON(w, map[string]any{
		"src":       int64(src),
		"dst":       int64(dst),
		"reachable": true,
		"distance":  pathCost(s.eng.Network(), path),
		"path":      ids,
		"stats":     toStats(st),
	})
}

// pathCost sums edge weights along a path already retrieved from the index,
// avoiding a second full refinement query for the distance.
func pathCost(net *silc.Network, path []silc.VertexID) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		targets, weights := net.Neighbors(path[i])
		best := math.Inf(1)
		for j, t := range targets {
			if t == path[i+1] && weights[j] < best {
				best = weights[j] // cheapest parallel edge = the one on the shortest path
			}
		}
		total += best
	}
	return total
}

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	q, err := s.vertexParam(r, "q")
	if err != nil {
		writeError(w, err)
		return
	}
	radius, err := strconv.ParseFloat(r.URL.Query().Get("radius"), 64)
	if err != nil || radius < 0 || math.IsInf(radius, 0) || math.IsNaN(radius) {
		writeError(w, badRequest("parameter radius must be a non-negative number"))
		return
	}
	exact, err := exactParam(r.URL.Query().Get("exact"))
	if err != nil {
		writeError(w, err)
		return
	}
	objs, err := s.querySet(r.URL.Query().Get("live"))
	if err != nil {
		writeError(w, err)
		return
	}
	var opts []silc.Option
	if exact {
		opts = append(opts, silc.WithExactDistances())
	}
	res, err := s.eng.WithinDistance(r.Context(), objs, q, radius, opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	s.queries.Add(1)
	noteStats(r, res.Stats)
	writeJSON(w, map[string]any{
		"query":     int64(q),
		"radius":    radius,
		"count":     len(res.Neighbors),
		"neighbors": toNeighbors(res.Neighbors),
		"stats":     toStats(res.Stats),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var index map[string]any
	if sx, ok := s.eng.Sharded(); ok {
		st := sx.Stats()
		index = map[string]any{
			"vertices":          st.Vertices,
			"edges":             st.Edges,
			"partitions":        st.Partitions,
			"boundary_vertices": st.BoundaryVertices,
			"cut_edges":         st.CutEdges,
			"self_contained":    st.SelfContained,
			"total_blocks":      st.CellBlocks,
			"cell_bytes":        st.CellBytes,
			"closure_bytes":     st.ClosureBytes,
			"total_bytes":       st.TotalBytes,
			"build_time_ms":     st.BuildTime.Milliseconds(),
		}
	} else if mono, ok := s.eng.Monolithic(); ok {
		st := mono.Stats()
		index = map[string]any{
			"vertices":          st.Vertices,
			"edges":             st.Edges,
			"total_blocks":      st.TotalBlocks,
			"total_bytes":       st.TotalBytes,
			"blocks_per_vertex": st.BlocksPerVertex(),
			"build_time_ms":     st.BuildTime.Milliseconds(),
			"radius":            mono.Radius(),
		}
	}
	io := s.eng.IOStats()
	endpoints := make(map[string]any, len(s.endpoints))
	for name, em := range s.endpoints {
		n := em.latency.Count()
		if n == 0 {
			continue
		}
		endpoints[name] = map[string]any{
			"requests": em.requests.Value(),
			"p50_us":   em.latency.Quantile(0.50).Microseconds(),
			"p90_us":   em.latency.Quantile(0.90).Microseconds(),
			"p99_us":   em.latency.Quantile(0.99).Microseconds(),
		}
	}
	var live map[string]any
	if s.live != nil {
		live = map[string]any{
			"objects": s.live.Len(),
			"version": s.live.Version(),
		}
	}
	writeJSON(w, map[string]any{
		"index":   index,
		"objects": s.objs.Len(),
		"live":    live,
		"pool": map[string]any{
			"page_hits":          io.PageHits,
			"page_misses":        io.PageMisses,
			"modeled_io_time_us": io.ModeledIOTime.Microseconds(),
		},
		"server": map[string]any{
			"uptime_s":  int64(time.Since(s.started).Seconds()),
			"requests":  s.requests.Load(),
			"queries":   s.queries.Load(),
			"inflight":  s.inflight.Value(),
			"tracing":   s.eng.TracingEnabled(),
			"endpoints": endpoints,
		},
	})
}

// handleBrowse streams incremental distance browsing — the paper's headline
// operation — over HTTP, directly from the Engine.Neighbors iterator: the
// first n neighbors of src, one NDJSON line per neighbor, flushed as each
// is produced so clients consume the stream while the cursor is still
// working. The (k+1)st line costs only the incremental search. A client
// disconnect (or the request timeout) cancels the in-flight search itself,
// not just the writes.
func (s *server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "src")
	if err != nil {
		writeError(w, err)
		return
	}
	n := 10
	if n > s.maxK {
		n = s.maxK // the -max-k cap applies to the default too
	}
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err = strconv.Atoi(raw)
		if err != nil || n < 1 || n > s.maxK {
			writeError(w, badRequest("parameter n must be in [1,%d]", s.maxK))
			return
		}
	}
	eps, err := epsParam(r.URL.Query().Get("eps"))
	if err != nil {
		writeError(w, err)
		return
	}
	var st silc.QueryStats
	opts := []silc.Option{silc.WithStats(&st)}
	if eps > 0 {
		opts = append(opts, silc.WithEpsilon(eps))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	for nb, err := range s.eng.Neighbors(r.Context(), s.objs, src, opts...) {
		if err != nil {
			// Disconnect, timeout, or bad argument: the search is already
			// cancelled; tell anyone still listening why the stream ended.
			s.queries.Add(1)
			enc.Encode(map[string]any{"error": err.Error(), "streamed": streamed})
			return
		}
		if err := enc.Encode(map[string]any{
			"rank":   streamed + 1,
			"id":     nb.ID,
			"vertex": int64(nb.Vertex),
			"dist":   nb.Dist,
			"exact":  nb.Exact,
		}); err != nil {
			s.queries.Add(1)
			return // write failed (disconnect): stop streaming
		}
		if flusher != nil {
			flusher.Flush()
		}
		if streamed++; streamed >= n {
			break
		}
	}
	enc.Encode(map[string]any{
		"done":     true,
		"streamed": streamed,
		"stats":    toStats(st),
	})
	s.queries.Add(1)
	noteStats(r, st)
}
