package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"silc"
)

func testServer(t *testing.T) *server {
	t.Helper()
	net, err := silc.GenerateGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]silc.VertexID, net.NumVertices())
	for i := range vs {
		vs[i] = silc.VertexID(i)
	}
	return newServer(ix.Engine(), mustObjects(t, net, vs), 100, 1000)
}

func mustObjects(t *testing.T, net *silc.Network, vs []silc.VertexID) *silc.ObjectSet {
	t.Helper()
	objs, err := silc.NewObjectSet(net, vs)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp
}

func TestServerEndpoints(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	var knn struct {
		Neighbors []struct {
			Vertex int64   `json:"vertex"`
			Dist   float64 `json:"dist"`
			Exact  bool    `json:"exact"`
		} `json:"neighbors"`
		Stats struct {
			Method string `json:"method"`
		} `json:"stats"`
	}
	if resp := getJSON(t, ts, "/knn?q=0&k=3", &knn); resp.StatusCode != 200 {
		t.Fatalf("/knn status %d", resp.StatusCode)
	}
	if len(knn.Neighbors) != 3 || knn.Stats.Method != "KNN" {
		t.Fatalf("knn response: %+v", knn)
	}
	if knn.Neighbors[0].Dist != 0 {
		t.Fatalf("nearest to an object-bearing vertex should be distance 0: %+v", knn.Neighbors[0])
	}

	var dist struct {
		Reachable bool    `json:"reachable"`
		Distance  float64 `json:"distance"`
	}
	getJSON(t, ts, "/distance?src=0&dst=63", &dist)
	if !dist.Reachable || dist.Distance <= 0 {
		t.Fatalf("distance response: %+v", dist)
	}

	var path struct {
		Reachable bool    `json:"reachable"`
		Distance  float64 `json:"distance"`
		Path      []int64 `json:"path"`
	}
	getJSON(t, ts, "/path?src=0&dst=63", &path)
	if !path.Reachable || len(path.Path) < 2 || path.Path[0] != 0 || path.Path[len(path.Path)-1] != 63 {
		t.Fatalf("path response: %+v", path)
	}
	if path.Distance != dist.Distance {
		t.Fatalf("path distance %v != distance %v", path.Distance, dist.Distance)
	}

	var rng struct {
		Count     int `json:"count"`
		Neighbors []struct {
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	getJSON(t, ts, "/range?q=0&radius=0.3", &rng)
	if rng.Count == 0 || rng.Count != len(rng.Neighbors) {
		t.Fatalf("range response: %+v", rng)
	}

	var stats struct {
		Index struct {
			Vertices int `json:"vertices"`
		} `json:"index"`
		Pool struct {
			PageMisses int64 `json:"page_misses"`
		} `json:"page_misses_unused"`
		Server struct {
			Requests int64 `json:"requests"`
			Queries  int64 `json:"queries"`
		} `json:"server"`
	}
	getJSON(t, ts, "/stats", &stats)
	if stats.Index.Vertices != 64 {
		t.Fatalf("stats vertices = %d", stats.Index.Vertices)
	}
	if stats.Server.Queries < 4 {
		t.Fatalf("stats queries = %d", stats.Server.Queries)
	}

	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestServerBadRequests(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()
	for _, path := range []string{
		"/knn?q=0",                 // missing k
		"/knn?q=9999&k=3",          // vertex out of range
		"/knn?q=0&k=0",             // bad k
		"/knn?q=0&k=3&method=WARP", // unknown method
		"/distance?src=0",          // missing dst
		"/range?q=0&radius=-1",
	} {
		resp := getJSON(t, ts, path, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestServerBatchKNN(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"queries": []int64{0, 7, 21, 63},
		"k":       2,
		"method":  "KNN",
	})
	resp, err := ts.Client().Post(ts.URL+"/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Query     int64 `json:"query"`
			Neighbors []struct {
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
		} `json:"results"`
		Batch struct {
			Queries int     `json:"queries"`
			Workers int     `json:"workers"`
			QPS     float64 `json:"qps"`
		} `json:"batch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 || out.Batch.Queries != 4 || out.Batch.Workers < 1 || out.Batch.QPS <= 0 {
		t.Fatalf("batch response: %+v", out)
	}
	for i, r := range out.Results {
		if len(r.Neighbors) != 2 {
			t.Fatalf("result %d: %+v", i, r)
		}
		if r.Neighbors[0].Dist != 0 {
			t.Fatalf("result %d should start at its own vertex: %+v", i, r)
		}
	}
}

// TestServerConcurrentRequests hammers one shared disk-resident index from
// many goroutines; run under -race this is the serving-layer concurrency
// check.
func TestServerConcurrentRequests(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	paths := []string{
		"/knn?q=5&k=4",
		"/knn?q=40&k=2&method=INN",
		"/distance?src=3&dst=60",
		"/path?src=9&dst=54",
		"/range?q=30&radius=0.25",
		"/stats",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := ts.Client().Get(ts.URL + paths[(w+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// testShardedServer builds a server over a sharded engine, exercising the
// Engine-generic serving path.
func testShardedServer(t *testing.T) *server {
	t.Helper()
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 10, Cols: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4, DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]silc.VertexID, net.NumVertices())
	for i := range vs {
		vs[i] = silc.VertexID(i)
	}
	return newServer(ix.Engine(), mustObjects(t, net, vs), 100, 1000)
}

func decodeBrowseStream(t *testing.T, ts *httptest.Server, path string) (ranks []int, dists []float64, trailer map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("%s: content type %q", path, ct)
	}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		if done, _ := line["done"].(bool); done {
			trailer = line
			break
		}
		ranks = append(ranks, int(line["rank"].(float64)))
		dists = append(dists, line["dist"].(float64))
	}
	return ranks, dists, trailer
}

func TestServerBrowseStreaming(t *testing.T) {
	for name, srv := range map[string]*server{
		"monolithic": testServer(t),
		"sharded":    testShardedServer(t),
	} {
		ts := httptest.NewServer(srv.routes())
		ranks, dists, trailer := decodeBrowseStream(t, ts, "/browse?src=0&n=7")
		if len(ranks) != 7 {
			t.Fatalf("%s: streamed %d neighbors, want 7", name, len(ranks))
		}
		for i := range ranks {
			if ranks[i] != i+1 {
				t.Fatalf("%s: rank %d at position %d", name, ranks[i], i)
			}
			if i > 0 && dists[i] < dists[i-1] {
				t.Fatalf("%s: distances not ascending: %v", name, dists)
			}
		}
		if trailer == nil || trailer["streamed"].(float64) != 7 {
			t.Fatalf("%s: bad trailer %v", name, trailer)
		}
		if st, ok := trailer["stats"].(map[string]any); !ok || st["lookups"].(float64) == 0 {
			t.Fatalf("%s: trailer missing cursor stats: %v", name, trailer)
		}
		// Exhausting the object set ends the stream early with the trailer.
		nv := srv.eng.Network().NumVertices()
		ranks, _, trailer = decodeBrowseStream(t, ts, "/browse?src=1&n=100")
		if len(ranks) != nv || trailer == nil {
			t.Fatalf("%s: exhausted stream returned %d of %d objects (trailer %v)", name, len(ranks), nv, trailer)
		}
		// Parameter validation.
		if resp := getJSON(t, ts, "/browse?src=-1&n=3", nil); resp.StatusCode != 400 {
			t.Fatalf("%s: bad src got status %d", name, resp.StatusCode)
		}
		if resp := getJSON(t, ts, "/browse?src=0&n=0", nil); resp.StatusCode != 400 {
			t.Fatalf("%s: n=0 got status %d", name, resp.StatusCode)
		}
		ts.Close()
	}
}

// TestServerEpsilonParam exercises the ε-approximate knob over HTTP: valid
// values answer with certified-approximate distances, bad values are 400s.
func TestServerEpsilonParam(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	var knn struct {
		Neighbors []struct {
			Dist  float64 `json:"dist"`
			Exact bool    `json:"exact"`
		} `json:"neighbors"`
	}
	if resp := getJSON(t, ts, "/knn?q=5&k=4&eps=0.5", &knn); resp.StatusCode != 200 {
		t.Fatalf("/knn eps status %d", resp.StatusCode)
	}
	if len(knn.Neighbors) != 4 {
		t.Fatalf("eps knn: %+v", knn)
	}
	for _, path := range []string{"/knn?q=5&k=4&eps=-1", "/knn?q=5&k=4&eps=nope", "/browse?src=0&eps=-2"} {
		if resp := getJSON(t, ts, path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	ranks, _, trailer := decodeBrowseStream(t, ts, "/browse?src=0&n=5&eps=0.5")
	if len(ranks) != 5 || trailer == nil {
		t.Fatalf("eps browse: %d ranks, trailer %v", len(ranks), trailer)
	}
}

// TestServerRequestTimeout sets a deadline that has to fire before any
// query completes: handlers must answer 503 (and /browse must end its
// stream) rather than hang or serve a stale result.
func TestServerRequestTimeout(t *testing.T) {
	srv := testServer(t)
	srv.timeout = time.Nanosecond
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	for _, path := range []string{"/knn?q=5&k=4", "/distance?src=0&dst=63", "/range?q=0&radius=0.4"} {
		resp := getJSON(t, ts, path, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, resp.StatusCode)
		}
	}
	// The browse stream reports the deadline as its terminating line.
	resp, err := ts.Client().Get(ts.URL + "/browse?src=0&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last map[string]any
	for dec.More() {
		last = nil
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
	}
	if last == nil || last["error"] == nil {
		t.Fatalf("browse under timeout ended with %v, want error line", last)
	}
}

func TestServerShardedEndpoints(t *testing.T) {
	ts := httptest.NewServer(testShardedServer(t).routes())
	defer ts.Close()
	var dist struct {
		Reachable bool    `json:"reachable"`
		Distance  float64 `json:"distance"`
	}
	if resp := getJSON(t, ts, "/distance?src=0&dst=50", &dist); resp.StatusCode != 200 || !dist.Reachable {
		t.Fatalf("sharded /distance failed: %d %+v", resp.StatusCode, dist)
	}
	var stats struct {
		Index map[string]any `json:"index"`
	}
	if resp := getJSON(t, ts, "/stats", &stats); resp.StatusCode != 200 {
		t.Fatalf("sharded /stats status %d", resp.StatusCode)
	}
	if stats.Index["partitions"].(float64) != 4 {
		t.Fatalf("sharded /stats reports %v partitions", stats.Index["partitions"])
	}
	var knn struct {
		Neighbors []struct {
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	if resp := getJSON(t, ts, "/knn?q=3&k=4", &knn); resp.StatusCode != 200 || len(knn.Neighbors) != 4 {
		t.Fatalf("sharded /knn failed: %d %+v", resp.StatusCode, knn)
	}
}

// scrapeMetrics drives a few queries through the server and returns the
// /metrics body.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	for _, path := range []string{"/knn?q=3&k=4", "/distance?src=0&dst=9", "/range?q=5&radius=4", "/browse?src=2&n=3"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerMetrics(t *testing.T) {
	srv := testServer(t)
	srv.eng.SetTracing(true)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()
	out := scrapeMetrics(t, ts)

	// Engine, knn, diskio, store, and server families must all be
	// populated after real traffic on a disk-resident index.
	for _, want := range []string{
		`silc_engine_queries_total{op="knn"}`,
		`silc_engine_query_seconds_bucket{op="knn",le="+Inf"}`,
		`silc_engine_query_seconds_count{op="distance"}`,
		"silc_knn_refinements_total",
		"silc_knn_lookups_total",
		"silc_knn_heap_pushes_total",
		"silc_diskio_pool_hits_total",
		"silc_diskio_pool_capacity_pages",
		`silc_diskio_shard_hits_total{shard="0"}`,
		`silcserve_requests_total{endpoint="/knn"}`,
		`silcserve_request_seconds_bucket{endpoint="/knn"`,
		"silcserve_inflight_requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Each family header must appear exactly once even with many series.
	for _, fam := range []string{"silc_engine_queries_total", "silc_diskio_shard_hits_total", "silcserve_requests_total"} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s has %d TYPE headers, want 1", fam, n)
		}
	}
	// Non-trivial values: the knn query counter must have advanced.
	var knnQueries float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `silc_engine_queries_total{op="knn"} `) {
			fmt.Sscanf(line, `silc_engine_queries_total{op="knn"} %f`, &knnQueries)
		}
	}
	if knnQueries < 1 {
		t.Errorf("silc_engine_queries_total{op=\"knn\"} = %v, want >= 1", knnQueries)
	}
}

// TestServerMetricsPaged checks the per-store silc_store_* families that
// only a paged (SILCPG) engine registers.
func TestServerMetricsPaged(t *testing.T) {
	dir := t.TempDir()
	net, err := silc.GenerateGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/idx.pg"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WritePaged(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	eng, err := silc.OpenEngine(path, nil, silc.BuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]silc.VertexID, net.NumVertices())
	for i := range vs {
		vs[i] = silc.VertexID(i)
	}
	srv := newServer(eng, mustObjects(t, eng.Network(), vs), 100, 1000)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()
	out := scrapeMetrics(t, ts)
	for _, want := range []string{
		`silc_store_page_reads_total{store="0",source="readat"}`,
		`silc_store_blocks_decoded_total{store="0",source="readat"}`,
		`silc_store_resident_pages{store="0",source="readat"}`,
		"silc_engine_page_reads_total",
		"silc_engine_blocks_decoded_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("paged /metrics missing %q", want)
		}
	}
}

func TestServerSlowLog(t *testing.T) {
	srv := testServer(t)
	srv.eng.SetTracing(true)
	logPath := t.TempDir() + "/slow.ndjson"
	slow, err := openSlowLog(logPath, 0) // threshold 0: log everything
	if err != nil {
		t.Fatal(err)
	}
	srv.slow = slow
	ts := httptest.NewServer(srv.routes())
	for _, path := range []string{"/knn?q=3&k=4", "/distance?src=0&dst=9"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	ts.Close()
	slow.Close()

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("slowlog has %d entries, want 2:\n%s", len(lines), data)
	}
	sawKNN := false
	for _, line := range lines {
		var entry struct {
			TS         string `json:"ts"`
			Endpoint   string `json:"endpoint"`
			Method     string `json:"method"`
			Query      string `json:"query"`
			DurationUS *int64 `json:"duration_us"`
			Stats      *struct {
				Method      string `json:"method"`
				Refinements int    `json:"refinements"`
			} `json:"stats"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("slowlog line is not valid JSON: %v\n%s", err, line)
		}
		if entry.TS == "" || entry.Endpoint == "" || entry.DurationUS == nil {
			t.Fatalf("slowlog entry missing fields: %s", line)
		}
		if entry.Endpoint == "/knn" {
			sawKNN = true
			if entry.Stats == nil || entry.Stats.Method == "" {
				t.Fatalf("knn slowlog entry missing query stats: %s", line)
			}
			if entry.Query != "q=3&k=4" {
				t.Fatalf("knn slowlog entry query = %q", entry.Query)
			}
		}
	}
	if !sawKNN {
		t.Fatalf("no /knn entry in slowlog:\n%s", data)
	}
}

func TestServerStatsEndpointLatency(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := ts.Client().Get(ts.URL + "/knn?q=3&k=4")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var stats struct {
		Server struct {
			Requests  int64 `json:"requests"`
			Tracing   bool  `json:"tracing"`
			Endpoints map[string]struct {
				Requests int64 `json:"requests"`
				P50US    int64 `json:"p50_us"`
				P99US    int64 `json:"p99_us"`
			} `json:"endpoints"`
		} `json:"server"`
	}
	if resp := getJSON(t, ts, "/stats", &stats); resp.StatusCode != 200 {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	ep, ok := stats.Server.Endpoints["/knn"]
	if !ok {
		t.Fatalf("/stats has no /knn endpoint block: %+v", stats.Server.Endpoints)
	}
	if ep.Requests != 5 {
		t.Fatalf("/knn endpoint requests = %d, want 5", ep.Requests)
	}
	if ep.P50US <= 0 || ep.P99US < ep.P50US {
		t.Fatalf("bad quantiles: p50=%d p99=%d", ep.P50US, ep.P99US)
	}
}

func TestServerPprofGate(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof served without -pprof: status %d", resp.StatusCode)
	}

	srv2 := testServer(t)
	srv2.pprof = true
	ts2 := httptest.NewServer(srv2.routes())
	defer ts2.Close()
	resp2, err := ts2.Client().Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("pprof index with -pprof: status %d", resp2.StatusCode)
	}
}
