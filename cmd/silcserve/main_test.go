package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"silc"
)

func testServer(t *testing.T) *server {
	t.Helper()
	net, err := silc.GenerateGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]silc.VertexID, net.NumVertices())
	for i := range vs {
		vs[i] = silc.VertexID(i)
	}
	return newServer(ix, silc.NewObjectSet(net, vs), 100, 1000)
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp
}

func TestServerEndpoints(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	var knn struct {
		Neighbors []struct {
			Vertex int64   `json:"vertex"`
			Dist   float64 `json:"dist"`
			Exact  bool    `json:"exact"`
		} `json:"neighbors"`
		Stats struct {
			Method string `json:"method"`
		} `json:"stats"`
	}
	if resp := getJSON(t, ts, "/knn?q=0&k=3", &knn); resp.StatusCode != 200 {
		t.Fatalf("/knn status %d", resp.StatusCode)
	}
	if len(knn.Neighbors) != 3 || knn.Stats.Method != "KNN" {
		t.Fatalf("knn response: %+v", knn)
	}
	if knn.Neighbors[0].Dist != 0 {
		t.Fatalf("nearest to an object-bearing vertex should be distance 0: %+v", knn.Neighbors[0])
	}

	var dist struct {
		Reachable bool    `json:"reachable"`
		Distance  float64 `json:"distance"`
	}
	getJSON(t, ts, "/distance?src=0&dst=63", &dist)
	if !dist.Reachable || dist.Distance <= 0 {
		t.Fatalf("distance response: %+v", dist)
	}

	var path struct {
		Reachable bool    `json:"reachable"`
		Distance  float64 `json:"distance"`
		Path      []int64 `json:"path"`
	}
	getJSON(t, ts, "/path?src=0&dst=63", &path)
	if !path.Reachable || len(path.Path) < 2 || path.Path[0] != 0 || path.Path[len(path.Path)-1] != 63 {
		t.Fatalf("path response: %+v", path)
	}
	if path.Distance != dist.Distance {
		t.Fatalf("path distance %v != distance %v", path.Distance, dist.Distance)
	}

	var rng struct {
		Count     int `json:"count"`
		Neighbors []struct {
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	getJSON(t, ts, "/range?q=0&radius=0.3", &rng)
	if rng.Count == 0 || rng.Count != len(rng.Neighbors) {
		t.Fatalf("range response: %+v", rng)
	}

	var stats struct {
		Index struct {
			Vertices int `json:"vertices"`
		} `json:"index"`
		Pool struct {
			PageMisses int64 `json:"page_misses"`
		} `json:"page_misses_unused"`
		Server struct {
			Requests int64 `json:"requests"`
			Queries  int64 `json:"queries"`
		} `json:"server"`
	}
	getJSON(t, ts, "/stats", &stats)
	if stats.Index.Vertices != 64 {
		t.Fatalf("stats vertices = %d", stats.Index.Vertices)
	}
	if stats.Server.Queries < 4 {
		t.Fatalf("stats queries = %d", stats.Server.Queries)
	}

	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestServerBadRequests(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()
	for _, path := range []string{
		"/knn?q=0",                 // missing k
		"/knn?q=9999&k=3",          // vertex out of range
		"/knn?q=0&k=0",             // bad k
		"/knn?q=0&k=3&method=WARP", // unknown method
		"/distance?src=0",          // missing dst
		"/range?q=0&radius=-1",
	} {
		resp := getJSON(t, ts, path, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestServerBatchKNN(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"queries": []int64{0, 7, 21, 63},
		"k":       2,
		"method":  "KNN",
	})
	resp, err := ts.Client().Post(ts.URL+"/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Query     int64 `json:"query"`
			Neighbors []struct {
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
		} `json:"results"`
		Batch struct {
			Queries int     `json:"queries"`
			Workers int     `json:"workers"`
			QPS     float64 `json:"qps"`
		} `json:"batch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 || out.Batch.Queries != 4 || out.Batch.Workers < 1 || out.Batch.QPS <= 0 {
		t.Fatalf("batch response: %+v", out)
	}
	for i, r := range out.Results {
		if len(r.Neighbors) != 2 {
			t.Fatalf("result %d: %+v", i, r)
		}
		if r.Neighbors[0].Dist != 0 {
			t.Fatalf("result %d should start at its own vertex: %+v", i, r)
		}
	}
}

// TestServerConcurrentRequests hammers one shared disk-resident index from
// many goroutines; run under -race this is the serving-layer concurrency
// check.
func TestServerConcurrentRequests(t *testing.T) {
	ts := httptest.NewServer(testServer(t).routes())
	defer ts.Close()

	paths := []string{
		"/knn?q=5&k=4",
		"/knn?q=40&k=2&method=INN",
		"/distance?src=3&dst=60",
		"/path?src=9&dst=54",
		"/range?q=30&radius=0.25",
		"/stats",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := ts.Client().Get(ts.URL + paths[(w+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
