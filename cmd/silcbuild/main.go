// Command silcbuild builds a SILC index over a network and reports its
// storage statistics (the paper's O(N√N) Morton-block accounting).
//
// Usage:
//
//	silcbuild -net network.txt
//	silcbuild -rows 96 -cols 96 -seed 2008   # generate, then build
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"silc"
)

func main() {
	var (
		netFile  = flag.String("net", "", "network file (generated if empty)")
		rows     = flag.Int("rows", 64, "generated lattice rows")
		cols     = flag.Int("cols", 64, "generated lattice cols")
		seed     = flag.Int64("seed", 1, "generator seed")
		parallel = flag.Int("p", 0, "build workers (0 = all CPUs)")
		out      = flag.String("o", "", "write the built index to this file")
	)
	flag.Parse()

	net, err := loadOrGenerate(*netFile, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{Parallelism: *parallel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	s := ix.Stats()
	n := float64(s.Vertices)
	fmt.Printf("vertices:        %d\n", s.Vertices)
	fmt.Printf("directed edges:  %d\n", s.Edges)
	fmt.Printf("morton blocks:   %d\n", s.TotalBlocks)
	fmt.Printf("blocks/vertex:   %.1f (min %d, max %d)\n", s.BlocksPerVertex(), s.MinBlocks, s.MaxBlocks)
	fmt.Printf("c in c*n^1.5:    %.2f\n", float64(s.TotalBlocks)/(n*math.Sqrt(n)))
	fmt.Printf("encoded size:    %.2f MiB\n", float64(s.TotalBytes)/(1<<20))
	fmt.Printf("build time:      %v\n", s.BuildTime)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcbuild:", err)
			os.Exit(1)
		}
		written, err := ix.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcbuild:", err)
			os.Exit(1)
		}
		fmt.Printf("index written:   %s (%.2f MiB)\n", *out, float64(written)/(1<<20))
	}
}

func loadOrGenerate(file string, rows, cols int, seed int64) (*silc.Network, error) {
	if file == "" {
		return silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return silc.LoadNetwork(f)
}
