// Command silcbuild builds a SILC index over a network and reports its
// storage statistics (the paper's O(N√N) Morton-block accounting).
//
// Usage:
//
//	silcbuild -net network.txt
//	silcbuild -rows 96 -cols 96 -seed 2008   # generate, then build
//	silcbuild -rows 256 -cols 256 -partitions 8 -o idx.shd   # sharded build
//	silcbuild -rows 128 -cols 128 -format=paged -o idx.silcpg
//	                      # page-aligned on-disk index, network embedded:
//	                      # open with silc.OpenIndex / silcserve -index
//	silcbuild -rows 128 -cols 128 -format=paged -compress=delta -o idx.silcpg2
//	                      # compressed block pages (SILCPG2), >2x smaller
//	silcbuild -rows 256 -cols 256 -partitions 8 -format=paged -o idx.silcspg
//
// With -partitions N > 1 the build is sharded: the network splits into N
// spatial cells, each cell builds its own SILC index over only its
// subnetwork (sum of cell builds runs far fewer Dijkstra-vertex pairs than
// the monolithic build), and the boundary closure stitches cross-cell
// queries back to exact answers.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"silc"
)

func main() {
	var (
		netFile    = flag.String("net", "", "network file (generated if empty)")
		rows       = flag.Int("rows", 64, "generated lattice rows")
		cols       = flag.Int("cols", 64, "generated lattice cols")
		seed       = flag.Int64("seed", 1, "generator seed")
		parallel   = flag.Int("p", 0, "build workers (0 = all CPUs)")
		partitions = flag.Int("partitions", 1, "spatial partitions (>1 builds the sharded index)")
		out        = flag.String("o", "", "write the built index to this file")
		format     = flag.String("format", "legacy", "output format: legacy (in-RAM load) or paged (page-aligned, demand-paged, network embedded; open with OpenIndex / silcserve)")
		compress   = flag.String("compress", "none", "paged block-page encoding: none (fixed-width SILCPG1) or delta (delta+varint SILCPG2)")
	)
	flag.Parse()

	if *format != "legacy" && *format != "paged" {
		fmt.Fprintf(os.Stderr, "silcbuild: unknown -format %q (legacy, paged)\n", *format)
		os.Exit(1)
	}
	if *format == "paged" && *out == "" {
		fmt.Fprintln(os.Stderr, "silcbuild: -format=paged requires -o")
		os.Exit(1)
	}
	comp, err := silc.ParseCompression(*compress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	if comp != silc.CompressionNone && *format != "paged" {
		fmt.Fprintln(os.Stderr, "silcbuild: -compress applies to -format=paged only")
		os.Exit(1)
	}
	net, err := loadOrGenerate(*netFile, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	if *partitions > 1 {
		buildSharded(net, *partitions, *parallel, *out, *format, comp)
		return
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{Parallelism: *parallel, Compression: comp})
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	s := ix.Stats()
	n := float64(s.Vertices)
	fmt.Printf("vertices:        %d\n", s.Vertices)
	fmt.Printf("directed edges:  %d\n", s.Edges)
	fmt.Printf("morton blocks:   %d\n", s.TotalBlocks)
	fmt.Printf("blocks/vertex:   %.1f (min %d, max %d)\n", s.BlocksPerVertex(), s.MinBlocks, s.MaxBlocks)
	fmt.Printf("c in c*n^1.5:    %.2f\n", float64(s.TotalBlocks)/(n*math.Sqrt(n)))
	fmt.Printf("encoded size:    %.2f MiB\n", float64(s.TotalBytes)/(1<<20))
	fmt.Printf("build time:      %v\n", s.BuildTime)

	if *out != "" {
		if *format == "paged" {
			info, err := ix.PagedImageInfo()
			if err != nil {
				fmt.Fprintln(os.Stderr, "silcbuild:", err)
				os.Exit(1)
			}
			printImageInfo(info)
			writeIndex(*out, func(f *os.File) (int64, error) { return ix.WritePaged(f) })
		} else {
			writeIndex(*out, func(f *os.File) (int64, error) { return ix.WriteTo(f) })
		}
	}
}

// printImageInfo prints the per-section size table of a planned paged image
// and its compression ratio against the fixed-width encoding.
func printImageInfo(info silc.ImageInfo) {
	mib := func(b int64) float64 { return float64(b) / (1 << 20) }
	fmt.Printf("paged image:     %.2f MiB, %s (%.2fx vs fixed-width %.2f MiB)\n",
		mib(info.Total), info.Compression, info.Ratio(), mib(info.FixedWidthTotal))
	fmt.Printf("  superblock:    %d B\n", info.Superblock)
	fmt.Printf("  network:       %.2f MiB\n", mib(info.Network))
	fmt.Printf("  extents:       %.2f MiB\n", mib(info.Extents))
	fmt.Printf("  block pages:   %.2f MiB (%d pages, %d blocks, raw %.2f MiB)\n",
		mib(info.BlockSection), info.BlockPages, info.TotalBlocks, mib(info.RawBlockBytes))
	fmt.Printf("  crc table:     %d B\n", info.CRCTable)
}

func buildSharded(net *silc.Network, partitions, parallel int, out, format string, comp silc.Compression) {
	ix, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{
		Partitions:  partitions,
		Parallelism: parallel,
		Compression: comp,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	s := ix.Stats()
	n := float64(s.Vertices)
	fmt.Printf("vertices:        %d\n", s.Vertices)
	fmt.Printf("directed edges:  %d\n", s.Edges)
	fmt.Printf("partitions:      %d (cells of %d..%d vertices, %d self-contained)\n",
		s.Partitions, s.MinCellVertices, s.MaxCellVertices, s.SelfContained)
	fmt.Printf("boundary:        %d vertices, %d cut edges\n", s.BoundaryVertices, s.CutEdges)
	fmt.Printf("morton blocks:   %d (%.1f/vertex)\n", s.CellBlocks, float64(s.CellBlocks)/n)
	fmt.Printf("c in c*n^1.5:    %.2f (monolithic-equivalent exponent base)\n",
		float64(s.CellBlocks)/(n*math.Sqrt(n)))
	fmt.Printf("cell bytes:      %.2f MiB\n", float64(s.CellBytes)/(1<<20))
	fmt.Printf("closure bytes:   %.2f MiB\n", float64(s.ClosureBytes)/(1<<20))
	fmt.Printf("total bytes:     %.2f MiB\n", float64(s.TotalBytes)/(1<<20))
	fmt.Printf("build time:      %v (partition %v, cells %v, closure %v)\n",
		s.BuildTime.Round(time.Millisecond), s.PartitionTime.Round(time.Millisecond),
		s.CellBuildTime.Round(time.Millisecond), s.ClosureTime.Round(time.Millisecond))

	if out != "" {
		if format == "paged" {
			info, err := ix.PagedImageInfo()
			if err != nil {
				fmt.Fprintln(os.Stderr, "silcbuild:", err)
				os.Exit(1)
			}
			printImageInfo(info)
			writeIndex(out, func(f *os.File) (int64, error) { return ix.WritePaged(f) })
		} else {
			writeIndex(out, func(f *os.File) (int64, error) { return ix.WriteTo(f) })
		}
	}
}

func writeIndex(path string, write func(*os.File) (int64, error)) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	written, err := write(f)
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcbuild:", err)
		os.Exit(1)
	}
	fmt.Printf("index written:   %s (%.2f MiB)\n", path, float64(written)/(1<<20))
}

func loadOrGenerate(file string, rows, cols int, seed int64) (*silc.Network, error) {
	if file == "" {
		return silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return silc.LoadNetwork(f)
}
