// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results):
//
//	T1  storage-model trade-offs           (paper p.11)
//	F1  Morton-block storage growth        (paper p.16, slope ~1.5)
//	F2  Dijkstra vs SILC vertices visited  (paper pp.3/7)
//	F3  execution time comparison          (paper p.33)
//	F4  max priority-queue size vs INN     (paper p.34)
//	F5  refinement operations vs INN       (paper p.35)
//	F6  KMINDIST pruning in kNN-M          (paper p.36)
//	F7  quality of D0k and KMINDIST        (paper p.37)
//	F8  total and I/O time decomposition   (paper p.38)
//	TP  parallel query throughput          (beyond the paper: QPS vs
//	    goroutine count on one shared index, memory- and disk-resident)
//	SH  sharded vs monolithic index        (beyond the paper: build time,
//	    storage, and QPS of the partitioned index against the monolith)
//	PG  real paged store vs modeled disk   (beyond the paper: the same
//	    workload on the on-disk SILCPG1 store — actual reads and measured
//	    I/O time next to the modeled misses × latency figure)
//
// Usage:
//
//	experiments                 # full run (~minutes)
//	experiments -quick          # reduced sizes and query counts (~seconds)
//	experiments -only F3,F4     # subset
//	experiments -json           # also write BENCH_<id>.json result files
//	experiments -baseline       # write canonical BENCH_F3/TP/ALLOC/PG.json baselines
//	experiments -check          # fail on regression against committed baselines
//
// With -json every selected experiment additionally writes its raw
// measurements as machine-readable BENCH_<id>.json (into -json-dir), so the
// perf trajectory of the repo can be tracked without parsing tables.
//
// -baseline and -check are the benchmark-trajectory gate (see regress.go):
// -baseline runs a fixed smoke suite and writes the canonical committed
// baselines; -check reruns it and exits nonzero if allocs/op grew at all or
// calibrated ns/op drifted outside the tolerance band.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"silc/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced sizes and query counts")
		only     = flag.String("only", "", "comma-separated subset, e.g. F1,F3,T1")
		rows     = flag.Int("rows", bench.DefaultRows, "evaluation lattice rows")
		cols     = flag.Int("cols", bench.DefaultCols, "evaluation lattice cols")
		queries  = flag.Int("queries", 50, "queries per sweep point (paper: >=50)")
		seed     = flag.Int64("seed", bench.DefaultSeed, "master seed")
		jsonOut  = flag.Bool("json", false, "write machine-readable BENCH_<id>.json result files")
		jsonDir  = flag.String("json-dir", ".", "directory for -json result files")
		baseline = flag.Bool("baseline", false, "run the F3/TP/ALLOC/PG smoke suite and write the canonical BENCH_*.json baselines into -json-dir")
		regCheck = flag.Bool("check", false, "rerun the F3/TP/ALLOC/PG smoke suite and fail on regression against the committed BENCH_*.json baselines")
	)
	flag.Parse()
	if *baseline || *regCheck {
		if *baseline && *regCheck {
			check(fmt.Errorf("-baseline and -check are mutually exclusive"))
		}
		check(runRegress(*baseline, *jsonDir, *seed))
		return
	}
	record := func(id string, payload any) {
		if !*jsonOut {
			return
		}
		if err := writeJSON(*jsonDir, id, payload); err != nil {
			check(err)
		}
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(s))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	if *quick {
		*rows, *cols, *queries = 32, 32, 10
	}
	out := os.Stdout
	start := time.Now()

	fmt.Fprintf(out, "SILC evaluation — reproducing Samet, Sankaranarayanan, Alborzi (SIGMOD 2008)\n")
	fmt.Fprintf(out, "substrate: synthetic road network (see DESIGN.md §5), %dx%d lattice, seed %d\n\n",
		*rows, *cols, *seed)

	if want("T1") {
		t1rows, t1cols := 32, 32
		if *quick {
			t1rows, t1cols = 16, 16
		}
		rowsT1, err := bench.StorageModels(t1rows, t1cols, *seed, 0.25, 200)
		check(err)
		bench.RenderModels(out, rowsT1)
		record("T1", map[string]any{"lattice": t1rows, "models": rowsT1})
	}

	if want("F1") {
		lattices := []int{16, 24, 32, 48, 64, 96, 128}
		if *quick {
			lattices = []int{12, 16, 24, 32}
		}
		rowsF1, slope, err := bench.StorageGrowth(lattices, *seed)
		check(err)
		bench.RenderStorageGrowth(out, rowsF1, slope)
		record("F1", map[string]any{"rows": rowsF1, "slope": slope})
	}

	if want("PG") {
		pgRows, pgCols, pgQueries := *rows, *cols, 500
		if *quick {
			pgRows, pgCols, pgQueries = 32, 32, 100
		}
		pg, err := bench.PagedIO(pgRows, pgCols, pgQueries, *seed, 0.05)
		check(err)
		bench.RenderPagedIO(out, pg)
		record("PG", pg)
	}

	if want("SH") {
		shRows, shCols, shParts, shQueries := *rows, *cols, 8, 2000
		if *quick {
			shRows, shCols, shParts, shQueries = 32, 32, 4, 200
		}
		cmp, err := bench.CompareSharded(shRows, shCols, shParts, shQueries, *seed)
		check(err)
		bench.RenderSharded(out, cmp)
		record("SH", cmp)
	}

	needEnv := want("F2") || want("F3") || want("F4") || want("F5") ||
		want("F6") || want("F7") || want("F8") || want("TP")
	if !needEnv {
		fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	fmt.Fprintf(out, "building evaluation index (%dx%d lattice)...\n", *rows, *cols)
	env, err := bench.NewEnv(*rows, *cols, *seed, true)
	check(err)
	s := env.Ix.Stats()
	fmt.Fprintf(out, "index: %d vertices, %d edges, %d Morton blocks (%.1f/vertex), built in %v\n\n",
		s.Vertices, s.Edges, s.TotalBlocks, s.BlocksPerVertex(), s.BuildTime.Round(time.Millisecond))

	if want("F2") {
		rowsF2, sum := env.DijkstraVsSILC(*queries, *seed+1)
		bench.RenderVisitSummary(out, sum, rowsF2)
		record("F2", map[string]any{"summary": sum, "queries": rowsF2})
	}

	needSweep := want("F3") || want("F4") || want("F5") || want("F6") || want("F7") || want("F8")
	if needSweep {
		algos := bench.Algorithms()
		fmt.Fprintf(out, "running sweeps (%d queries per point, %d algorithms)...\n\n", *queries, len(algos))
		varyS := env.Sweep(bench.VarySSpec(), *queries, algos, *seed+2)
		varyK := env.Sweep(bench.VaryKSpec(), *queries, algos, *seed+3)
		panels := []struct {
			title  string
			points []bench.SweepPoint
		}{
			{"k=10 varying |S|", varyS},
			{"|S|=0.07N varying k", varyK},
		}
		sweepPayload := map[string]any{"vary_s": varyS, "vary_k": varyK, "queries_per_point": *queries}
		for _, id := range []string{"F3", "F4", "F5", "F6", "F7", "F8"} {
			if want(id) {
				record(id, sweepPayload)
			}
		}
		for _, p := range panels {
			if want("F3") {
				bench.RenderF3(out, p.title, p.points)
			}
			if want("F4") {
				bench.RenderF4(out, p.title, p.points)
			}
			if want("F5") {
				bench.RenderF5(out, p.title, p.points)
			}
			if want("F6") {
				bench.RenderF6(out, p.title, p.points)
			}
			if want("F7") {
				bench.RenderF7(out, p.title, p.points)
			}
			if want("F8") {
				bench.RenderF8(out, p.title, p.points)
			}
		}
	}

	if want("TP") {
		gcs := []int{1, 2, 4, 8, 16}
		nq := 2000
		if *quick {
			gcs, nq = []int{1, 2, 4}, 400
		}
		w := env.NewThroughputWorkload(nq, 0.05, 10, *seed+4)
		diskPts := bench.ThroughputSweep(env.Ix, w, gcs)
		fmt.Fprintln(out, bench.ThroughputTable(
			fmt.Sprintf("TP: parallel kNN throughput, disk-resident (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
			diskPts))
		memEnv, err := bench.NewEnv(*rows, *cols, *seed, false)
		check(err)
		wm := memEnv.NewThroughputWorkload(nq, 0.05, 10, *seed+4)
		memPts := bench.ThroughputSweep(memEnv.Ix, wm, gcs)
		fmt.Fprintln(out, bench.ThroughputTable(
			"TP: parallel kNN throughput, memory-resident",
			memPts))
		record("TP", map[string]any{"disk_resident": diskPts, "memory_resident": memPts})
	}
	fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// writeJSON writes one experiment's payload as BENCH_<id>.json.
func writeJSON(dir, id string, payload any) error {
	data, err := json.MarshalIndent(map[string]any{"id": id, "result": payload}, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
