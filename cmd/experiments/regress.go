// Benchmark-trajectory regression gate.
//
// `experiments -baseline` runs a fixed smoke-sized measurement suite —
// F3 (kNN execution time), TP (parallel throughput), and ALLOC
// (steady-state allocations on the public Engine surface) — and writes the
// results as the canonical BENCH_F3.json / BENCH_TP.json / BENCH_ALLOC.json
// files, which are committed to the repository.
//
// `experiments -check` (the CI bench-regress job) reruns the identical suite
// and compares it against the committed files:
//
//   - any increase in allocs/op fails — the hot path is allocation-free by
//     design and a single new steady-state allocation is a regression;
//   - ns/op (and QPS, inverted) may drift up to 25% after calibration.
//
// Machines differ, so raw nanoseconds are not comparable across the machine
// that wrote the baseline and the machine running the check. Both runs
// therefore measure a fixed CPU-bound calibration loop; the checker rescales
// the committed numbers by the ratio of the two calibration times before
// applying the 25% band. Allocation counts need no calibration — they are
// exact and machine-independent.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"silc"
	"silc/internal/bench"
)

// The smoke suite is sized for CI: large enough that per-query medians are
// stable, small enough to finish in well under a minute.
const (
	regressLattice = 48 // rows == cols of the evaluation lattice
	regressQueries = 24 // queries per sweep point
	regressRepeats = 5  // sweeps per point; per-cell median is recorded
	regressBand    = 1.25
)

// regressSpecs returns the F3 sweep points the gate tracks: the paper's
// |S|=0.07N column at a small and a large k.
func regressSpecs() []bench.SweepSpec {
	return []bench.SweepSpec{
		{Label: "k=10", Fraction: 0.07, K: 10},
		{Label: "k=100", Fraction: 0.07, K: 100},
	}
}

type f3Baseline struct {
	CalibrationNs   float64   `json:"calibration_ns"`
	Lattice         int       `json:"lattice"`
	QueriesPerPoint int       `json:"queries_per_point"`
	Repeats         int       `json:"repeats"`
	Points          []f3Point `json:"points"`
}

type f3Point struct {
	Label string `json:"label"`
	K     int    `json:"k"`
	// Fraction is |S|/N, the object-set density of the point.
	Fraction float64 `json:"s_fraction"`
	// NsPerQuery maps algorithm name to the median-of-repeats mean total
	// time (CPU + modeled I/O) per query, in nanoseconds.
	NsPerQuery map[string]float64 `json:"ns_per_query"`
}

type tpBaseline struct {
	CalibrationNs float64   `json:"calibration_ns"`
	Lattice       int       `json:"lattice"`
	Queries       int       `json:"queries"`
	Points        []tpPoint `json:"points"`
}

type tpPoint struct {
	Goroutines int     `json:"goroutines"`
	QPS        float64 `json:"qps"`
}

type allocBaseline struct {
	CalibrationNs float64    `json:"calibration_ns"`
	Rows          []allocRow `json:"rows"`
}

// allocRow is one steady-state operation measured through testing.Benchmark
// on the public Engine API with a warm query-context pool.
type allocRow struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

var calibrationSink uint64

// calibrate times a fixed CPU-bound xorshift loop (best of three) as a
// machine-speed proxy. The checker divides fresh by baseline calibration to
// rescale committed ns/op figures onto the current machine.
func calibrate() float64 {
	best := math.MaxFloat64
	for t := 0; t < 3; t++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 1<<23; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibrationSink = x
		if d := float64(time.Since(start).Nanoseconds()); d < best {
			best = d
		}
	}
	return best
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// measureF3 runs the smoke sweep regressRepeats times and records the
// per-(point, algorithm) median mean-time-per-query.
func measureF3(seed int64, cal float64) (f3Baseline, error) {
	env, err := bench.NewEnv(regressLattice, regressLattice, seed, true)
	if err != nil {
		return f3Baseline{}, err
	}
	specs := regressSpecs()
	samples := make([]map[string]float64, len(specs))
	for i := range samples {
		samples[i] = map[string]float64{}
	}
	raw := make([]map[string][]float64, len(specs))
	for i := range raw {
		raw[i] = map[string][]float64{}
	}
	for rep := 0; rep < regressRepeats; rep++ {
		// Same seed every repeat: the workload is identical, only the
		// wall-clock measurement varies, so the median isolates noise.
		pts := env.Sweep(specs, regressQueries, bench.Algorithms(), seed+2)
		for i, pt := range pts {
			for name, agg := range pt.Per {
				raw[i][name] = append(raw[i][name], float64(agg.TotalTime.Nanoseconds()))
			}
		}
	}
	out := f3Baseline{
		CalibrationNs:   cal,
		Lattice:         regressLattice,
		QueriesPerPoint: regressQueries,
		Repeats:         regressRepeats,
	}
	for i, spec := range specs {
		p := f3Point{Label: spec.Label, K: spec.K, Fraction: spec.Fraction, NsPerQuery: map[string]float64{}}
		for name, xs := range raw[i] {
			p.NsPerQuery[name] = median(xs)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// measureTP runs the throughput smoke: one shared disk-resident index, kNN
// k=10, at 1 and 4 goroutines.
func measureTP(seed int64, cal float64) (tpBaseline, error) {
	env, err := bench.NewEnv(regressLattice, regressLattice, seed, true)
	if err != nil {
		return tpBaseline{}, err
	}
	const nq = 400
	w := env.NewThroughputWorkload(nq, 0.05, 10, seed+4)
	out := tpBaseline{CalibrationNs: cal, Lattice: regressLattice, Queries: nq}
	// Median-of-repeats per goroutine count: throughput is the noisiest of
	// the three suites.
	qps := map[int][]float64{}
	for rep := 0; rep < regressRepeats; rep++ {
		for _, pt := range bench.ThroughputSweep(env.Ix, w, []int{1, 4}) {
			qps[pt.Goroutines] = append(qps[pt.Goroutines], pt.QPS)
		}
	}
	for _, g := range []int{1, 4} {
		out.Points = append(out.Points, tpPoint{Goroutines: g, QPS: median(qps[g])})
	}
	return out, nil
}

// measureAlloc measures the steady-state public-Engine operations the
// allocation budgets in allocbudget_test.go cover, via testing.Benchmark so
// allocs/op and ns/op come from the standard tooling.
func measureAlloc(seed int64, cal float64) (allocBaseline, error) {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 32, Cols: 32, Seed: seed})
	if err != nil {
		return allocBaseline{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(net.NumVertices())
	verts := make([]silc.VertexID, 48)
	for i := range verts {
		verts[i] = silc.VertexID(perm[i])
	}
	objs, err := silc.NewObjectSet(net, verts)
	if err != nil {
		return allocBaseline{}, err
	}
	q := silc.VertexID(perm[len(perm)-1])

	mono, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		return allocBaseline{}, err
	}
	shard, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4})
	if err != nil {
		return allocBaseline{}, err
	}
	var pg bytes.Buffer
	if _, err := mono.WritePaged(&pg); err != nil {
		return allocBaseline{}, err
	}
	paged, err := silc.OpenIndexAt(bytes.NewReader(pg.Bytes()), int64(pg.Len()), silc.BuildOptions{CacheFraction: 1.0})
	if err != nil {
		return allocBaseline{}, err
	}

	ctx := context.Background()
	ops := []struct {
		name string
		op   func() error
	}{
		{"knn-k10/monolithic", func() error { _, err := mono.Engine().Query(ctx, objs, q, 10); return err }},
		{"knn-k10/sharded", func() error { _, err := shard.Engine().Query(ctx, objs, q, 10); return err }},
		{"knn-k10/paged-warm", func() error { _, err := paged.Engine().Query(ctx, objs, q, 10); return err }},
		{"range-0.25/monolithic", func() error { _, err := mono.Engine().WithinDistance(ctx, objs, q, 0.25); return err }},
		{"neighbors-10/monolithic", func() error {
			count := 0
			for _, err := range mono.Engine().Neighbors(ctx, objs, q) {
				if err != nil {
					return err
				}
				if count++; count == 10 {
					break
				}
			}
			return nil
		}},
	}
	out := allocBaseline{CalibrationNs: cal}
	for _, o := range ops {
		op := o.op
		for i := 0; i < 5; i++ { // warm the context pool and page cache
			if err := op(); err != nil {
				return allocBaseline{}, fmt.Errorf("%s: %w", o.name, err)
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Rows = append(out.Rows, allocRow{
			Op:          o.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// runRegress drives both modes. In baseline mode the three canonical files
// are (re)written into dir; in check mode fresh runs are compared against
// the committed files and any regression returns an error.
func runRegress(baseline bool, dir string, seed int64) error {
	mode := "check"
	if baseline {
		mode = "baseline"
	}
	fmt.Printf("bench-regress (%s): lattice %dx%d, %d queries/point, median of %d repeats\n",
		mode, regressLattice, regressLattice, regressQueries, regressRepeats)
	cal := calibrate()
	fmt.Printf("calibration: %.0f ns (fixed xorshift loop, best of 3)\n\n", cal)

	f3, err := measureF3(seed, cal)
	if err != nil {
		return err
	}
	tp, err := measureTP(seed, cal)
	if err != nil {
		return err
	}
	al, err := measureAlloc(seed, cal)
	if err != nil {
		return err
	}

	if baseline {
		if err := writeJSON(dir, "F3", f3); err != nil {
			return err
		}
		if err := writeJSON(dir, "TP", tp); err != nil {
			return err
		}
		return writeJSON(dir, "ALLOC", al)
	}

	var base3 f3Baseline
	var baseTP tpBaseline
	var baseAL allocBaseline
	if err := readBaseline(dir, "F3", &base3); err != nil {
		return err
	}
	if err := readBaseline(dir, "TP", &baseTP); err != nil {
		return err
	}
	if err := readBaseline(dir, "ALLOC", &baseAL); err != nil {
		return err
	}

	failures := 0
	failures += checkF3(base3, f3, cal)
	failures += checkTP(baseTP, tp, cal)
	failures += checkAlloc(baseAL, al, cal)
	if failures > 0 {
		return fmt.Errorf("bench-regress: %d regression(s) against committed BENCH_*.json", failures)
	}
	fmt.Println("\nbench-regress: all checks within tolerance")
	return nil
}

// scaleFactor converts a baseline-machine time into the expected time on
// this machine, clamped so a pathological calibration cannot hide (or
// invent) an order-of-magnitude regression.
func scaleFactor(freshCal, baseCal float64) float64 {
	if baseCal <= 0 {
		return 1
	}
	s := freshCal / baseCal
	if s < 0.25 {
		s = 0.25
	}
	if s > 4 {
		s = 4
	}
	return s
}

func checkF3(base, fresh f3Baseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("F3 (machine scale %.2fx, band %.0f%%):\n", scale, (regressBand-1)*100)
	failures := 0
	for _, bp := range base.Points {
		var fp *f3Point
		for i := range fresh.Points {
			if fresh.Points[i].Label == bp.Label {
				fp = &fresh.Points[i]
			}
		}
		if fp == nil {
			fmt.Printf("  FAIL %-8s missing from fresh run\n", bp.Label)
			failures++
			continue
		}
		for _, name := range sortedKeys(bp.NsPerQuery) {
			baseNs := bp.NsPerQuery[name]
			freshNs, ok := fp.NsPerQuery[name]
			if !ok {
				fmt.Printf("  FAIL %-8s %-6s missing from fresh run\n", bp.Label, name)
				failures++
				continue
			}
			allowed := baseNs * scale * regressBand
			status := "ok  "
			if freshNs > allowed {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  %s %-8s %-6s base %10.0fns  fresh %10.0fns  (%.2fx of scaled base)\n",
				status, bp.Label, name, baseNs, freshNs, freshNs/(baseNs*scale))
		}
	}
	return failures
}

func checkTP(base, fresh tpBaseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("TP (machine scale %.2fx, band %.0f%%):\n", scale, (regressBand-1)*100)
	failures := 0
	for _, bp := range base.Points {
		var fp *tpPoint
		for i := range fresh.Points {
			if fresh.Points[i].Goroutines == bp.Goroutines {
				fp = &fresh.Points[i]
			}
		}
		if fp == nil {
			fmt.Printf("  FAIL g=%d missing from fresh run\n", bp.Goroutines)
			failures++
			continue
		}
		// QPS scales inversely with machine time: a machine 2x slower on
		// the calibration loop is expected to deliver half the QPS.
		expected := bp.QPS / scale
		status := "ok  "
		if fp.QPS < expected/regressBand {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s g=%d  base %8.0f qps  fresh %8.0f qps  (%.2fx of scaled base)\n",
			status, bp.Goroutines, bp.QPS, fp.QPS, fp.QPS/expected)
	}
	return failures
}

func checkAlloc(base, fresh allocBaseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("ALLOC (machine scale %.2fx; allocs/op must not increase at all):\n", scale)
	failures := 0
	freshByOp := map[string]allocRow{}
	for _, r := range fresh.Rows {
		freshByOp[r.Op] = r
	}
	for _, br := range base.Rows {
		fr, ok := freshByOp[br.Op]
		if !ok {
			fmt.Printf("  FAIL %-24s missing from fresh run\n", br.Op)
			failures++
			continue
		}
		status := "ok  "
		reason := ""
		if fr.AllocsPerOp > br.AllocsPerOp {
			status = "FAIL"
			reason = fmt.Sprintf("  <- allocs/op grew %d -> %d", br.AllocsPerOp, fr.AllocsPerOp)
			failures++
		} else if fr.NsPerOp > br.NsPerOp*scale*regressBand {
			status = "FAIL"
			reason = "  <- ns/op outside band"
			failures++
		}
		fmt.Printf("  %s %-24s base %8.0fns %3d allocs  fresh %8.0fns %3d allocs%s\n",
			status, br.Op, br.NsPerOp, br.AllocsPerOp, fr.NsPerOp, fr.AllocsPerOp, reason)
	}
	return failures
}

// readBaseline loads a committed BENCH_<id>.json (the {"id","result"}
// wrapper writeJSON produces) and decodes result into out.
func readBaseline(dir, id string, out any) error {
	path := filepath.Join(dir, "BENCH_"+id+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading committed baseline: %w (run `experiments -baseline` to create it)", err)
	}
	var wrapper struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return json.Unmarshal(wrapper.Result, out)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
