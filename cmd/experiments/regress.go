// Benchmark-trajectory regression gate.
//
// `experiments -baseline` runs a fixed smoke-sized measurement suite —
// F3 (kNN execution time), TP (parallel throughput), ALLOC (steady-state
// allocations on the public Engine surface), and PG (compressed block-page
// image sizes, cold pool counters, and warm mmap-path timing) — and writes
// the results as the canonical BENCH_F3.json / BENCH_TP.json /
// BENCH_ALLOC.json / BENCH_PG.json files, which are committed to the
// repository.
//
// `experiments -check` (the CI bench-regress job) reruns the identical suite
// and compares it against the committed files:
//
//   - any increase in allocs/op fails — the hot path is allocation-free by
//     design and a single new steady-state allocation is a regression;
//   - ns/op (and QPS, inverted) may drift up to 25% after calibration.
//
// Machines differ, so raw nanoseconds are not comparable across the machine
// that wrote the baseline and the machine running the check. Both runs
// therefore measure a fixed CPU-bound calibration loop; the checker rescales
// the committed numbers by the ratio of the two calibration times before
// applying the 25% band. Allocation counts need no calibration — they are
// exact and machine-independent.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"silc"
	"silc/internal/bench"
)

// The smoke suite is sized for CI: large enough that per-query medians are
// stable, small enough to finish in well under a minute.
const (
	regressLattice = 48 // rows == cols of the evaluation lattice
	regressQueries = 24 // queries per sweep point
	regressRepeats = 5  // sweeps per point; per-cell median is recorded
	regressBand    = 1.25
)

// regressSpecs returns the F3 sweep points the gate tracks: the paper's
// |S|=0.07N column at a small and a large k.
func regressSpecs() []bench.SweepSpec {
	return []bench.SweepSpec{
		{Label: "k=10", Fraction: 0.07, K: 10},
		{Label: "k=100", Fraction: 0.07, K: 100},
	}
}

type f3Baseline struct {
	CalibrationNs   float64   `json:"calibration_ns"`
	Lattice         int       `json:"lattice"`
	QueriesPerPoint int       `json:"queries_per_point"`
	Repeats         int       `json:"repeats"`
	Points          []f3Point `json:"points"`
}

type f3Point struct {
	Label string `json:"label"`
	K     int    `json:"k"`
	// Fraction is |S|/N, the object-set density of the point.
	Fraction float64 `json:"s_fraction"`
	// NsPerQuery maps algorithm name to the median-of-repeats mean total
	// time (CPU + modeled I/O) per query, in nanoseconds.
	NsPerQuery map[string]float64 `json:"ns_per_query"`
}

type tpBaseline struct {
	CalibrationNs float64   `json:"calibration_ns"`
	Lattice       int       `json:"lattice"`
	Queries       int       `json:"queries"`
	Points        []tpPoint `json:"points"`
}

type tpPoint struct {
	Goroutines int     `json:"goroutines"`
	QPS        float64 `json:"qps"`
}

type allocBaseline struct {
	CalibrationNs float64    `json:"calibration_ns"`
	Rows          []allocRow `json:"rows"`
}

// allocRow is one steady-state operation measured through testing.Benchmark
// on the public Engine API with a warm query-context pool.
type allocRow struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// pgBaseline tracks the compressed block-page format: exact image sizes in
// both encodings (byte-deterministic — any drift means the on-disk format
// changed and the baseline must be consciously regenerated), exact cold-scan
// pool counters under a 5% pool, and warm-path timing/allocations through
// positioned reads and mmap.
type pgBaseline struct {
	CalibrationNs float64    `json:"calibration_ns"`
	Lattice       int        `json:"lattice"`
	Images        []pgImage  `json:"images"`
	ColdIO        []pgColdIO `json:"cold_io"`
	Rows          []allocRow `json:"rows"`
}

// pgImage records one index layout's paged image size in both encodings.
// Ratio is fixed-width ÷ compressed over the whole image, straight from
// ImageInfo (page alignment included, so it understates the block-section
// compression on small images).
type pgImage struct {
	Name       string  `json:"name"`
	FixedBytes int64   `json:"fixed_bytes"`
	DeltaBytes int64   `json:"delta_bytes"`
	Ratio      float64 `json:"ratio"`
}

// pgColdIO records the exact pool traffic of a fixed single-threaded query
// scan over a cold store with a 5%-sized pool. Reads, misses, and hits are
// deterministic: same workload, same LRU, same page layout.
type pgColdIO struct {
	Name   string `json:"name"`
	Reads  int64  `json:"page_reads"`
	Misses int64  `json:"page_misses"`
	Hits   int64  `json:"page_hits"`
}

var calibrationSink uint64

// calibrate times a fixed CPU-bound xorshift loop (best of three) as a
// machine-speed proxy. The checker divides fresh by baseline calibration to
// rescale committed ns/op figures onto the current machine.
func calibrate() float64 {
	best := math.MaxFloat64
	for t := 0; t < 3; t++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 1<<23; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibrationSink = x
		if d := float64(time.Since(start).Nanoseconds()); d < best {
			best = d
		}
	}
	return best
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// measureF3 runs the smoke sweep regressRepeats times and records the
// per-(point, algorithm) median mean-time-per-query.
func measureF3(seed int64, cal float64) (f3Baseline, error) {
	env, err := bench.NewEnv(regressLattice, regressLattice, seed, true)
	if err != nil {
		return f3Baseline{}, err
	}
	specs := regressSpecs()
	samples := make([]map[string]float64, len(specs))
	for i := range samples {
		samples[i] = map[string]float64{}
	}
	raw := make([]map[string][]float64, len(specs))
	for i := range raw {
		raw[i] = map[string][]float64{}
	}
	for rep := 0; rep < regressRepeats; rep++ {
		// Same seed every repeat: the workload is identical, only the
		// wall-clock measurement varies, so the median isolates noise.
		pts := env.Sweep(specs, regressQueries, bench.Algorithms(), seed+2)
		for i, pt := range pts {
			for name, agg := range pt.Per {
				raw[i][name] = append(raw[i][name], float64(agg.TotalTime.Nanoseconds()))
			}
		}
	}
	out := f3Baseline{
		CalibrationNs:   cal,
		Lattice:         regressLattice,
		QueriesPerPoint: regressQueries,
		Repeats:         regressRepeats,
	}
	for i, spec := range specs {
		p := f3Point{Label: spec.Label, K: spec.K, Fraction: spec.Fraction, NsPerQuery: map[string]float64{}}
		for name, xs := range raw[i] {
			p.NsPerQuery[name] = median(xs)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// measureTP runs the throughput smoke: one shared disk-resident index, kNN
// k=10, at 1 and 4 goroutines.
func measureTP(seed int64, cal float64) (tpBaseline, error) {
	env, err := bench.NewEnv(regressLattice, regressLattice, seed, true)
	if err != nil {
		return tpBaseline{}, err
	}
	const nq = 400
	w := env.NewThroughputWorkload(nq, 0.05, 10, seed+4)
	out := tpBaseline{CalibrationNs: cal, Lattice: regressLattice, Queries: nq}
	// Median-of-repeats per goroutine count: throughput is the noisiest of
	// the three suites.
	qps := map[int][]float64{}
	for rep := 0; rep < regressRepeats; rep++ {
		for _, pt := range bench.ThroughputSweep(env.Ix, w, []int{1, 4}) {
			qps[pt.Goroutines] = append(qps[pt.Goroutines], pt.QPS)
		}
	}
	for _, g := range []int{1, 4} {
		out.Points = append(out.Points, tpPoint{Goroutines: g, QPS: median(qps[g])})
	}
	return out, nil
}

// measureAlloc measures the steady-state public-Engine operations the
// allocation budgets in allocbudget_test.go cover, via testing.Benchmark so
// allocs/op and ns/op come from the standard tooling.
func measureAlloc(seed int64, cal float64) (allocBaseline, error) {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 32, Cols: 32, Seed: seed})
	if err != nil {
		return allocBaseline{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(net.NumVertices())
	verts := make([]silc.VertexID, 48)
	for i := range verts {
		verts[i] = silc.VertexID(perm[i])
	}
	objs, err := silc.NewObjectSet(net, verts)
	if err != nil {
		return allocBaseline{}, err
	}
	q := silc.VertexID(perm[len(perm)-1])

	mono, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		return allocBaseline{}, err
	}
	shard, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4})
	if err != nil {
		return allocBaseline{}, err
	}
	var pg bytes.Buffer
	if _, err := mono.WritePaged(&pg); err != nil {
		return allocBaseline{}, err
	}
	paged, err := silc.OpenIndexAt(bytes.NewReader(pg.Bytes()), int64(pg.Len()), silc.BuildOptions{CacheFraction: 1.0})
	if err != nil {
		return allocBaseline{}, err
	}

	ctx := context.Background()
	ops := []struct {
		name string
		op   func() error
	}{
		{"knn-k10/monolithic", func() error { _, err := mono.Engine().Query(ctx, objs, q, 10); return err }},
		{"knn-k10/sharded", func() error { _, err := shard.Engine().Query(ctx, objs, q, 10); return err }},
		{"knn-k10/paged-warm", func() error { _, err := paged.Engine().Query(ctx, objs, q, 10); return err }},
		{"range-0.25/monolithic", func() error { _, err := mono.Engine().WithinDistance(ctx, objs, q, 0.25); return err }},
		{"neighbors-10/monolithic", func() error {
			count := 0
			for _, err := range mono.Engine().Neighbors(ctx, objs, q) {
				if err != nil {
					return err
				}
				if count++; count == 10 {
					break
				}
			}
			return nil
		}},
	}
	out := allocBaseline{CalibrationNs: cal}
	for _, o := range ops {
		op := o.op
		for i := 0; i < 5; i++ { // warm the context pool and page cache
			if err := op(); err != nil {
				return allocBaseline{}, fmt.Errorf("%s: %w", o.name, err)
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Rows = append(out.Rows, allocRow{
			Op:          o.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// measurePG builds the 48x48 index in both page encodings, records exact
// image sizes, runs a fixed cold kNN scan against each encoding under a 5%
// pool recording exact pool counters, and benchmarks the warm compressed
// path through positioned reads and (where supported) a memory mapping.
func measurePG(seed int64, cal float64) (pgBaseline, error) {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: regressLattice, Cols: regressLattice, Seed: seed})
	if err != nil {
		return pgBaseline{}, err
	}
	out := pgBaseline{CalibrationNs: cal, Lattice: regressLattice}

	type layout struct {
		name  string
		build func(c silc.Compression) (interface {
			WritePaged(w io.Writer) (int64, error)
		}, error)
	}
	layouts := []layout{
		{"mono", func(c silc.Compression) (interface {
			WritePaged(w io.Writer) (int64, error)
		}, error) {
			return silc.BuildIndex(net, silc.BuildOptions{Compression: c})
		}},
		{"sharded-4", func(c silc.Compression) (interface {
			WritePaged(w io.Writer) (int64, error)
		}, error) {
			return silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4, Compression: c})
		}},
	}
	images := map[string]map[silc.Compression]*bytes.Buffer{}
	for _, l := range layouts {
		img := pgImage{Name: l.name}
		images[l.name] = map[silc.Compression]*bytes.Buffer{}
		for _, c := range []silc.Compression{silc.CompressionNone, silc.CompressionDelta} {
			ix, err := l.build(c)
			if err != nil {
				return pgBaseline{}, err
			}
			var buf bytes.Buffer
			if _, err := ix.WritePaged(&buf); err != nil {
				return pgBaseline{}, err
			}
			images[l.name][c] = &buf
			if c == silc.CompressionNone {
				img.FixedBytes = int64(buf.Len())
			} else {
				img.DeltaBytes = int64(buf.Len())
			}
		}
		img.Ratio = float64(img.FixedBytes) / float64(img.DeltaBytes)
		out.Images = append(out.Images, img)
	}

	// Fixed cold scan: every 7th vertex queries kNN k=10 against a 5% pool.
	// Single-threaded over a deterministic LRU, so the counters are exact.
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(net.NumVertices())
	verts := make([]silc.VertexID, 48)
	for i := range verts {
		verts[i] = silc.VertexID(perm[i])
	}
	objs, err := silc.NewObjectSet(net, verts)
	if err != nil {
		return pgBaseline{}, err
	}
	ctx := context.Background()
	for _, enc := range []struct {
		name string
		comp silc.Compression
	}{{"pg1", silc.CompressionNone}, {"pg2", silc.CompressionDelta}} {
		img := images["mono"][enc.comp].Bytes()
		cold, err := silc.OpenIndexAt(bytes.NewReader(img), int64(len(img)), silc.BuildOptions{CacheFraction: 0.05})
		if err != nil {
			return pgBaseline{}, err
		}
		for q := 0; q < net.NumVertices(); q += 7 {
			if _, err := cold.Engine().Query(ctx, objs, silc.VertexID(q), 10); err != nil {
				return pgBaseline{}, fmt.Errorf("cold %s query %d: %w", enc.name, q, err)
			}
		}
		io := cold.IOStats()
		out.ColdIO = append(out.ColdIO, pgColdIO{Name: enc.name, Reads: io.PageReads, Misses: io.PageMisses, Hits: io.PageHits})
	}

	// Warm compressed path: kNN k=10 through a never-evicting pool, once per
	// page source. The mmap open goes through a temp file; on platforms
	// without mmap it degrades to positioned reads, which keeps the row
	// comparable (same decode path, same steady-state allocations).
	img2 := images["mono"][silc.CompressionDelta].Bytes()
	warm, err := silc.OpenIndexAt(bytes.NewReader(img2), int64(len(img2)), silc.BuildOptions{CacheFraction: 1.0})
	if err != nil {
		return pgBaseline{}, err
	}
	tmp, err := os.CreateTemp("", "silc-pg-*.silcpg2")
	if err != nil {
		return pgBaseline{}, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(img2); err != nil {
		return pgBaseline{}, err
	}
	if err := tmp.Close(); err != nil {
		return pgBaseline{}, err
	}
	mapped, err := silc.OpenIndex(tmp.Name(), silc.BuildOptions{CacheFraction: 1.0, Mmap: true})
	if err != nil {
		return pgBaseline{}, err
	}
	defer mapped.Close()
	q := silc.VertexID(perm[len(perm)-1])
	for _, row := range []struct {
		name string
		eng  *silc.Engine
	}{
		{"knn-k10/paged-pg2-warm", warm.Engine()},
		{"knn-k10/paged-pg2-mmap-warm", mapped.Engine()},
	} {
		eng := row.eng
		for i := 0; i < 5; i++ {
			if _, err := eng.Query(ctx, objs, q, 10); err != nil {
				return pgBaseline{}, fmt.Errorf("%s: %w", row.name, err)
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(ctx, objs, q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Rows = append(out.Rows, allocRow{
			Op:          row.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// runRegress drives both modes. In baseline mode the three canonical files
// are (re)written into dir; in check mode fresh runs are compared against
// the committed files and any regression returns an error.
func runRegress(baseline bool, dir string, seed int64) error {
	mode := "check"
	if baseline {
		mode = "baseline"
	}
	fmt.Printf("bench-regress (%s): lattice %dx%d, %d queries/point, median of %d repeats\n",
		mode, regressLattice, regressLattice, regressQueries, regressRepeats)
	cal := calibrate()
	fmt.Printf("calibration: %.0f ns (fixed xorshift loop, best of 3)\n\n", cal)

	f3, err := measureF3(seed, cal)
	if err != nil {
		return err
	}
	tp, err := measureTP(seed, cal)
	if err != nil {
		return err
	}
	al, err := measureAlloc(seed, cal)
	if err != nil {
		return err
	}
	pg, err := measurePG(seed, cal)
	if err != nil {
		return err
	}

	if baseline {
		if err := writeJSON(dir, "F3", f3); err != nil {
			return err
		}
		if err := writeJSON(dir, "TP", tp); err != nil {
			return err
		}
		if err := writeJSON(dir, "ALLOC", al); err != nil {
			return err
		}
		return writeJSON(dir, "PG", pg)
	}

	var base3 f3Baseline
	var baseTP tpBaseline
	var baseAL allocBaseline
	var basePG pgBaseline
	if err := readBaseline(dir, "F3", &base3); err != nil {
		return err
	}
	if err := readBaseline(dir, "TP", &baseTP); err != nil {
		return err
	}
	if err := readBaseline(dir, "ALLOC", &baseAL); err != nil {
		return err
	}
	if err := readBaseline(dir, "PG", &basePG); err != nil {
		return err
	}

	failures := 0
	failures += checkF3(base3, f3, cal)
	failures += checkTP(baseTP, tp, cal)
	failures += checkAlloc(baseAL, al, cal)
	failures += checkPG(basePG, pg, cal)
	if failures > 0 {
		return fmt.Errorf("bench-regress: %d regression(s) against committed BENCH_*.json", failures)
	}
	fmt.Println("\nbench-regress: all checks within tolerance")
	return nil
}

// scaleFactor converts a baseline-machine time into the expected time on
// this machine, clamped so a pathological calibration cannot hide (or
// invent) an order-of-magnitude regression.
func scaleFactor(freshCal, baseCal float64) float64 {
	if baseCal <= 0 {
		return 1
	}
	s := freshCal / baseCal
	if s < 0.25 {
		s = 0.25
	}
	if s > 4 {
		s = 4
	}
	return s
}

func checkF3(base, fresh f3Baseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("F3 (machine scale %.2fx, band %.0f%%):\n", scale, (regressBand-1)*100)
	failures := 0
	for _, bp := range base.Points {
		var fp *f3Point
		for i := range fresh.Points {
			if fresh.Points[i].Label == bp.Label {
				fp = &fresh.Points[i]
			}
		}
		if fp == nil {
			fmt.Printf("  FAIL %-8s missing from fresh run\n", bp.Label)
			failures++
			continue
		}
		for _, name := range sortedKeys(bp.NsPerQuery) {
			baseNs := bp.NsPerQuery[name]
			freshNs, ok := fp.NsPerQuery[name]
			if !ok {
				fmt.Printf("  FAIL %-8s %-6s missing from fresh run\n", bp.Label, name)
				failures++
				continue
			}
			allowed := baseNs * scale * regressBand
			status := "ok  "
			if freshNs > allowed {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  %s %-8s %-6s base %10.0fns  fresh %10.0fns  (%.2fx of scaled base)\n",
				status, bp.Label, name, baseNs, freshNs, freshNs/(baseNs*scale))
		}
	}
	return failures
}

func checkTP(base, fresh tpBaseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("TP (machine scale %.2fx, band %.0f%%):\n", scale, (regressBand-1)*100)
	failures := 0
	for _, bp := range base.Points {
		var fp *tpPoint
		for i := range fresh.Points {
			if fresh.Points[i].Goroutines == bp.Goroutines {
				fp = &fresh.Points[i]
			}
		}
		if fp == nil {
			fmt.Printf("  FAIL g=%d missing from fresh run\n", bp.Goroutines)
			failures++
			continue
		}
		// QPS scales inversely with machine time: a machine 2x slower on
		// the calibration loop is expected to deliver half the QPS.
		expected := bp.QPS / scale
		status := "ok  "
		if fp.QPS < expected/regressBand {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s g=%d  base %8.0f qps  fresh %8.0f qps  (%.2fx of scaled base)\n",
			status, bp.Goroutines, bp.QPS, fp.QPS, fp.QPS/expected)
	}
	return failures
}

func checkAlloc(base, fresh allocBaseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("ALLOC (machine scale %.2fx; allocs/op must not increase at all):\n", scale)
	failures := 0
	freshByOp := map[string]allocRow{}
	for _, r := range fresh.Rows {
		freshByOp[r.Op] = r
	}
	for _, br := range base.Rows {
		fr, ok := freshByOp[br.Op]
		if !ok {
			fmt.Printf("  FAIL %-24s missing from fresh run\n", br.Op)
			failures++
			continue
		}
		status := "ok  "
		reason := ""
		if fr.AllocsPerOp > br.AllocsPerOp {
			status = "FAIL"
			reason = fmt.Sprintf("  <- allocs/op grew %d -> %d", br.AllocsPerOp, fr.AllocsPerOp)
			failures++
		} else if fr.NsPerOp > br.NsPerOp*scale*regressBand {
			status = "FAIL"
			reason = "  <- ns/op outside band"
			failures++
		}
		fmt.Printf("  %s %-24s base %8.0fns %3d allocs  fresh %8.0fns %3d allocs%s\n",
			status, br.Op, br.NsPerOp, br.AllocsPerOp, fr.NsPerOp, fr.AllocsPerOp, reason)
	}
	return failures
}

// checkPG compares the page-format suite. Image sizes and cold pool
// counters are byte-deterministic, so they must match EXACTLY — any drift
// means the on-disk encoding changed, and the baseline (plus the golden
// files) must be regenerated deliberately, never absorbed by a tolerance
// band. The warm rows follow the ALLOC rules: allocs/op must never grow,
// ns/op gets the calibrated band.
func checkPG(base, fresh pgBaseline, freshCal float64) int {
	scale := scaleFactor(freshCal, base.CalibrationNs)
	fmt.Printf("PG (image sizes and cold pool counters exact; machine scale %.2fx for warm ns):\n", scale)
	failures := 0

	freshImg := map[string]pgImage{}
	for _, im := range fresh.Images {
		freshImg[im.Name] = im
	}
	for _, bi := range base.Images {
		fi, ok := freshImg[bi.Name]
		if !ok {
			fmt.Printf("  FAIL %-10s missing from fresh run\n", bi.Name)
			failures++
			continue
		}
		status := "ok  "
		if fi.FixedBytes != bi.FixedBytes || fi.DeltaBytes != bi.DeltaBytes {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s %-10s fixed %9d B  delta %9d B  ratio %.2fx", status, bi.Name, fi.FixedBytes, fi.DeltaBytes, fi.Ratio)
		if status == "FAIL" {
			fmt.Printf("  <- baseline %d/%d B: on-disk format drifted; regenerate baselines+goldens if intended", bi.FixedBytes, bi.DeltaBytes)
		}
		fmt.Println()
	}

	freshIO := map[string]pgColdIO{}
	for _, c := range fresh.ColdIO {
		freshIO[c.Name] = c
	}
	for _, bc := range base.ColdIO {
		fc, ok := freshIO[bc.Name]
		if !ok {
			fmt.Printf("  FAIL cold-%-5s missing from fresh run\n", bc.Name)
			failures++
			continue
		}
		status := "ok  "
		if fc != bc {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s cold-%-5s reads %6d  misses %6d  hits %8d", status, bc.Name, fc.Reads, fc.Misses, fc.Hits)
		if status == "FAIL" {
			fmt.Printf("  <- baseline %d/%d/%d: paging behavior drifted", bc.Reads, bc.Misses, bc.Hits)
		}
		fmt.Println()
	}

	freshByOp := map[string]allocRow{}
	for _, r := range fresh.Rows {
		freshByOp[r.Op] = r
	}
	for _, br := range base.Rows {
		fr, ok := freshByOp[br.Op]
		if !ok {
			fmt.Printf("  FAIL %-28s missing from fresh run\n", br.Op)
			failures++
			continue
		}
		status := "ok  "
		reason := ""
		if fr.AllocsPerOp > br.AllocsPerOp {
			status = "FAIL"
			reason = fmt.Sprintf("  <- allocs/op grew %d -> %d", br.AllocsPerOp, fr.AllocsPerOp)
			failures++
		} else if fr.NsPerOp > br.NsPerOp*scale*regressBand {
			status = "FAIL"
			reason = "  <- ns/op outside band"
			failures++
		}
		fmt.Printf("  %s %-28s base %8.0fns %3d allocs  fresh %8.0fns %3d allocs%s\n",
			status, br.Op, br.NsPerOp, br.AllocsPerOp, fr.NsPerOp, fr.AllocsPerOp, reason)
	}
	return failures
}

// readBaseline loads a committed BENCH_<id>.json (the {"id","result"}
// wrapper writeJSON produces) and decodes result into out.
func readBaseline(dir, id string, out any) error {
	path := filepath.Join(dir, "BENCH_"+id+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading committed baseline: %w (run `experiments -baseline` to create it)", err)
	}
	var wrapper struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return json.Unmarshal(wrapper.Result, out)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
