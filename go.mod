module silc

go 1.24
