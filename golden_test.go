package silc_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"silc"
)

// The golden files under testdata/golden pin all four serialization
// formats byte for byte: format drift — a changed field, a reordered
// section, a different rounding — breaks these tests loudly instead of
// silently invalidating every index file in the field. Regenerate with
// SILC_UPDATE_GOLDEN=1 go test -run Golden (and justify the diff in the
// PR).

// goldenNetwork returns the deterministic network all golden indexes are
// built over. It must never change.
func goldenNetwork(t testing.TB) *silc.Network {
	t.Helper()
	net, err := silc.GenerateGrid(8, 8)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return net
}

// checkGolden compares got against the named golden file, rewriting it
// under SILC_UPDATE_GOLDEN=1.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if os.Getenv("SILC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with SILC_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("%s: serialization drifted from the golden file: %d vs %d bytes, first difference at offset %d", name, len(got), len(want), i)
	}
}

// checkEngineEquivalence compares a loaded engine's answers against the
// freshly built reference on exact kNN and distances.
func checkEngineEquivalence(t *testing.T, ref, got *silc.Engine) {
	t.Helper()
	ctx := context.Background()
	net := ref.Network()
	n := net.NumVertices()
	objVerts := make([]silc.VertexID, 0, n/3)
	for v := 0; v < n; v += 3 {
		objVerts = append(objVerts, silc.VertexID(v))
	}
	objs, err := silc.NewObjectSet(net, objVerts)
	if err != nil {
		t.Fatal(err)
	}
	gotObjs, err := silc.NewObjectSet(got.Network(), objVerts)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < n; q += 5 {
		rr, err := ref.Query(ctx, objs, silc.VertexID(q), 4, silc.WithExactDistances())
		if err != nil {
			t.Fatalf("ref query %d: %v", q, err)
		}
		gr, err := got.Query(ctx, gotObjs, silc.VertexID(q), 4, silc.WithExactDistances())
		if err != nil {
			t.Fatalf("loaded query %d: %v", q, err)
		}
		if len(rr.Neighbors) != len(gr.Neighbors) {
			t.Fatalf("query %d: %d vs %d neighbors", q, len(gr.Neighbors), len(rr.Neighbors))
		}
		for i := range rr.Neighbors {
			if math.Abs(rr.Neighbors[i].Dist-gr.Neighbors[i].Dist) > 1e-12 {
				t.Fatalf("query %d neighbor %d: dist %v vs %v", q, i, gr.Neighbors[i].Dist, rr.Neighbors[i].Dist)
			}
		}
		d1, err := ref.Distance(ctx, silc.VertexID(q), silc.VertexID(n-1-q))
		if err != nil {
			t.Fatal(err)
		}
		d2, err := got.Distance(ctx, silc.VertexID(q), silc.VertexID(n-1-q))
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("distance %d->%d: %v vs %v", q, n-1-q, d2, d1)
		}
	}
}

func TestGoldenMonolithicLegacy(t *testing.T) {
	net := goldenNetwork(t)
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "grid8.silc", buf.Bytes())

	loaded, err := silc.LoadIndex(bytes.NewReader(buf.Bytes()), net, silc.BuildOptions{})
	if err != nil {
		t.Fatalf("loading golden: %v", err)
	}
	var re bytes.Buffer
	if _, err := loaded.WriteTo(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("load → re-serialize is not byte-identical")
	}
	checkEngineEquivalence(t, ix.Engine(), loaded.Engine())
}

func TestGoldenMonolithicPaged(t *testing.T) {
	net := goldenNetwork(t)
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "grid8.silcpg", buf.Bytes())

	opened, err := silc.OpenIndexAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()), silc.BuildOptions{})
	if err != nil {
		t.Fatalf("opening golden: %v", err)
	}
	// Round trip THROUGH the demand-paged store: materialize every tree
	// from pages and re-serialize; the image must be byte-identical.
	var re bytes.Buffer
	if _, err := opened.WritePaged(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("open → re-serialize is not byte-identical")
	}
	// And the legacy stream produced from the paged store must equal the
	// one from the in-RAM index (cross-format consistency).
	var legacyFromPaged, legacyFromRAM bytes.Buffer
	if _, err := opened.WriteTo(&legacyFromPaged); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&legacyFromRAM); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyFromPaged.Bytes(), legacyFromRAM.Bytes()) {
		t.Fatal("legacy stream from the paged store differs from the in-RAM one")
	}
	checkEngineEquivalence(t, ix.Engine(), opened.Engine())
}

// TestGoldenMonolithicPagedCompressed pins the compressed paged format
// (SILCPG2): delta+varint block runs. The open → re-serialize round trip
// goes through the demand-paged store and must reproduce the image byte for
// byte — the encoder is deterministic — and an index opened from a PG2
// image re-serializes as PG2 without being asked.
func TestGoldenMonolithicPagedCompressed(t *testing.T) {
	net := goldenNetwork(t)
	ix, err := silc.BuildIndex(net, silc.BuildOptions{Compression: silc.CompressionDelta})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "grid8.silcpg2", buf.Bytes())

	// The compressed image must undercut the fixed-width one.
	var fixed bytes.Buffer
	info, err := ix.PagedImageInfo()
	if err != nil {
		t.Fatal(err)
	}
	fixedIx, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixedIx.WritePaged(&fixed); err != nil {
		t.Fatal(err)
	}
	if int64(fixed.Len()) != info.FixedWidthTotal {
		t.Fatalf("ImageInfo predicts fixed-width %d bytes, actual %d", info.FixedWidthTotal, fixed.Len())
	}
	if buf.Len() >= fixed.Len() {
		t.Fatalf("compressed image %d bytes, fixed-width %d", buf.Len(), fixed.Len())
	}

	opened, err := silc.OpenIndexAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()), silc.BuildOptions{})
	if err != nil {
		t.Fatalf("opening golden: %v", err)
	}
	var re bytes.Buffer
	if _, err := opened.WritePaged(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("open → re-serialize is not byte-identical")
	}
	checkEngineEquivalence(t, ix.Engine(), opened.Engine())
}

func TestGoldenShardedLegacy(t *testing.T) {
	net := goldenNetwork(t)
	sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "grid8x4.silcshd1", buf.Bytes())

	loaded, err := silc.LoadShardedIndex(bytes.NewReader(buf.Bytes()), net, silc.ShardedBuildOptions{})
	if err != nil {
		t.Fatalf("loading golden: %v", err)
	}
	var re bytes.Buffer
	if _, err := loaded.WriteTo(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("load → re-serialize is not byte-identical")
	}
	checkEngineEquivalence(t, sx.Engine(), loaded.Engine())
}

func TestGoldenShardedPaged(t *testing.T) {
	net := goldenNetwork(t)
	sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sx.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "grid8x4.silcspg", buf.Bytes())

	opened, err := silc.OpenShardedIndexAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()), silc.ShardedBuildOptions{})
	if err != nil {
		t.Fatalf("opening golden: %v", err)
	}
	var re bytes.Buffer
	if _, err := opened.WritePaged(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("open → re-serialize is not byte-identical")
	}
	checkEngineEquivalence(t, sx.Engine(), opened.Engine())
}

// TestGoldenShardedPagedCompressed pins the compressed sharded paged format
// (SILCSPG2): every embedded cell image is a SILCPG2 image.
func TestGoldenShardedPagedCompressed(t *testing.T) {
	net := goldenNetwork(t)
	sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4, Compression: silc.CompressionDelta})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sx.WritePaged(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "grid8x4.silcspg2", buf.Bytes())

	opened, err := silc.OpenShardedIndexAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()), silc.ShardedBuildOptions{})
	if err != nil {
		t.Fatalf("opening golden: %v", err)
	}
	var re bytes.Buffer
	if _, err := opened.WritePaged(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("open → re-serialize is not byte-identical")
	}
	checkEngineEquivalence(t, sx.Engine(), opened.Engine())
}

// TestGoldenLoadEngineSniffing loads every golden file through the
// format-sniffing loaders and checks the right engine comes back.
func TestGoldenLoadEngineSniffing(t *testing.T) {
	net := goldenNetwork(t)
	for _, tc := range []struct {
		file    string
		sharded bool
	}{
		{"grid8.silc", false},
		{"grid8.silcpg", false},
		{"grid8.silcpg2", false},
		{"grid8x4.silcshd1", true},
		{"grid8x4.silcspg", true},
		{"grid8x4.silcspg2", true},
	} {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", tc.file))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with SILC_UPDATE_GOLDEN=1)", tc.file, err)
		}
		eng, err := silc.LoadEngine(bytes.NewReader(data), net, silc.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: LoadEngine: %v", tc.file, err)
		}
		if _, ok := eng.Sharded(); ok != tc.sharded {
			t.Fatalf("%s: sharded=%v, want %v", tc.file, ok, tc.sharded)
		}
		if eng.Network().NumVertices() != net.NumVertices() {
			t.Fatalf("%s: %d vertices, want %d", tc.file, eng.Network().NumVertices(), net.NumVertices())
		}
	}
}
