package silc

import (
	"context"
	"fmt"
	"iter"
	"sort"
	"sync/atomic"
	"time"

	"silc/internal/objstore"
	"silc/internal/obs"
)

// LiveObjectsOptions configures a live object store.
type LiveObjectsOptions struct {
	// TTL expires objects not inserted or moved within this duration
	// (0 = objects never expire and no sweeper goroutine runs).
	TTL time.Duration
	// SweepInterval is the TTL sweeper's period (default TTL/4). Ignored
	// when TTL is 0.
	SweepInterval time.Duration
}

// LiveObjects is the mutable query-object world: a versioned, concurrent
// object store whose mutations — Insert, Remove, Move, Expire — publish
// immutable copy-on-write snapshots. It is the live-world counterpart of the
// static ObjectSet and slots into every Engine query entry point through
// View():
//
//	live, _ := silc.NewLiveObjects(net, silc.LiveObjectsOptions{})
//	defer live.Close()
//	id, _, _ := live.Insert(someVertex)
//	res, _ := eng.Query(ctx, live.View(), q, 5)   // exact for one version
//	live.Move(id, otherVertex)                    // never blocks readers
//
// View pins the current snapshot with one atomic load: the returned
// ObjectSet is immutable, so a query running against it is exact for that
// version however many mutations land mid-query — the version is stamped
// into Result.Stats.SnapshotVersion. Mutators never block readers, and the
// precomputed SILC index is untouched by any mutation (the paper's
// decoupling property: shortest-path quadtrees encode path identity, so the
// distance index survives arbitrary object churn).
//
// All methods are safe for concurrent use. Object ids are stable across
// versions (unlike the dense ids of a static ObjectSet).
type LiveObjects struct {
	net *Network
	st  *objstore.Store
	// view caches the public wrapper of the current snapshot so steady-state
	// View calls are a pure atomic load (zero allocations — the query hot
	// path's budget covers live sets too).
	view atomic.Pointer[ObjectSet]
}

// NewLiveObjects returns an empty live object store over net's vertices.
// Close it to stop the TTL sweeper (a no-op without a TTL, but always safe).
func NewLiveObjects(net *Network, opt LiveObjectsOptions) (*LiveObjects, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	st := objstore.New(net.g, objstore.Options{TTL: opt.TTL, SweepInterval: opt.SweepInterval})
	return &LiveObjects{net: net, st: st}, nil
}

// Insert places a new object on v and returns its stable id and the first
// store version containing it.
func (l *LiveObjects) Insert(v VertexID) (int32, uint64, error) {
	if err := checkVertex(l.net, "v", v); err != nil {
		return 0, 0, err
	}
	id, ver := l.st.Insert(v)
	return id, ver, nil
}

// InsertPoint snaps p to its nearest network vertex and inserts an object
// there.
func (l *LiveObjects) InsertPoint(p Point) (int32, uint64, error) {
	return l.Insert(l.net.g.NearestVertex(p))
}

// Move relocates the object to v, refreshing its TTL clock. It returns the
// first version reflecting the move, or ErrUnknownObject.
func (l *LiveObjects) Move(id int32, v VertexID) (uint64, error) {
	if err := checkVertex(l.net, "v", v); err != nil {
		return 0, err
	}
	ver, ok := l.st.Move(id, v)
	if !ok {
		return ver, fmt.Errorf("%w: id=%d", ErrUnknownObject, id)
	}
	return ver, nil
}

// Remove deletes the object. It returns the first version without it, or
// ErrUnknownObject.
func (l *LiveObjects) Remove(id int32) (uint64, error) {
	ver, ok := l.st.Remove(id)
	if !ok {
		return ver, fmt.Errorf("%w: id=%d", ErrUnknownObject, id)
	}
	return ver, nil
}

// Expire removes every object not inserted or moved within olderThan,
// returning the number removed and the resulting version (unchanged when
// nothing expired). The TTL sweeper calls this automatically when the store
// was built with a TTL.
func (l *LiveObjects) Expire(olderThan time.Duration) (int, uint64) {
	return l.st.ExpireOlderThan(time.Now().Add(-olderThan))
}

// Len returns the number of live objects.
func (l *LiveObjects) Len() int { return l.st.Len() }

// Version returns the current store version (monotone; one bump per
// mutation).
func (l *LiveObjects) Version() uint64 { return l.st.Version() }

// LiveObject is one object of a List snapshot: its stable id and current
// vertex.
type LiveObject struct {
	ID     int32
	Vertex VertexID
}

// List returns every live object of one consistent snapshot, ascending by
// id, along with the snapshot's version.
func (l *LiveObjects) List() ([]LiveObject, uint64) {
	snap := l.st.Snapshot()
	out := make([]LiveObject, len(snap.IDs))
	for i, id := range snap.IDs {
		out[i] = LiveObject{ID: id, Vertex: snap.Vertices[i]}
	}
	return out, snap.Version
}

// Vertex returns the object's current vertex, ok=false for an unknown id.
func (l *LiveObjects) Vertex(id int32) (VertexID, bool) {
	snap := l.st.Snapshot()
	i := sort.Search(len(snap.IDs), func(i int) bool { return snap.IDs[i] >= id })
	if i < len(snap.IDs) && snap.IDs[i] == id {
		return snap.Vertices[i], true
	}
	return NoVertex, false
}

// View pins the current snapshot as an immutable ObjectSet: one atomic load,
// O(1), never blocked by concurrent mutators, allocation-free while the
// version is unchanged. Queries over the returned set are exact for its
// version and stamp it into Result.Stats.SnapshotVersion. A view of an
// empty world is valid to hold but rejected by queries with
// ErrEmptyObjects, like any empty object set.
func (l *LiveObjects) View() *ObjectSet {
	snap := l.st.Snapshot()
	if cached := l.view.Load(); cached != nil && cached.version == snap.Version {
		return cached
	}
	v := &ObjectSet{net: l.net, objs: snap.Objects, version: snap.Version}
	// Benign race: a concurrent caller may publish a wrapper for a different
	// snapshot; whoever loses just rebuilds on the next call. Correctness
	// never depends on the cache — View re-checks the version every time.
	l.view.Store(v)
	return v
}

// Changed returns a channel closed at the next mutation after this call —
// grab the channel, then View: if a mutation lands in between, the channel
// is already closed and a fresh View sees it. Watch uses this to re-evaluate
// without polling.
func (l *LiveObjects) Changed() <-chan struct{} { return l.st.Changed() }

// Registry returns the store's metric registry (the silc_objstore_*
// families); serve it next to the engine's metrics.
func (l *LiveObjects) Registry() *obs.Registry { return l.st.Registry() }

// Close stops the TTL sweeper and waits for it to exit. The store stays
// usable afterwards; only background expiry stops. Safe to call repeatedly.
func (l *LiveObjects) Close() { l.st.Close() }

// WatchEvent is one delta of a continuous kNN query: the pinned snapshot
// version, the full current top-k, and the changes since the previous event.
type WatchEvent struct {
	// Version is the store version this evaluation was exact against.
	Version uint64
	// Neighbors is the current result: up to k nearest, ascending exact
	// network distance.
	Neighbors []Neighbor
	// Added holds neighbors that entered the top-k since the last event.
	Added []Neighbor
	// Removed holds the object ids that left the top-k (removed, expired,
	// moved away, or displaced), ascending.
	Removed []int32
	// Changed holds neighbors still in the top-k whose distance changed
	// (the object moved, yet stayed among the k nearest).
	Changed []Neighbor
}

// Watch is continuous kNN over the live world: it evaluates the k nearest
// objects to q, yields the initial result as an event (everything Added),
// then re-evaluates whenever the store's version changes and yields an
// event per change to the top-k — a moving fleet streamed as deltas. Events
// carry exact distances (diffs must be deterministic), and each is exact
// for the version it pins: mutations landing mid-evaluation are picked up
// by the next event. Version changes that leave the top-k identical yield
// nothing.
//
// The stream ends when ctx is cancelled (the final element yields ctx's
// error) or the consumer breaks out of the loop. WithMaxDistance and
// WithMethod are honored per evaluation; an empty world evaluates to zero
// neighbors rather than an error.
func (e *Engine) Watch(ctx context.Context, live *LiveObjects, q VertexID, k int, opts ...Option) iter.Seq2[WatchEvent, error] {
	return func(yield func(WatchEvent, error) bool) {
		if live == nil {
			yield(WatchEvent{}, ErrNilObjects)
			return
		}
		if err := checkVertex(e.net, "q", q); err != nil {
			yield(WatchEvent{}, err)
			return
		}
		if err := checkK(k); err != nil {
			yield(WatchEvent{}, err)
			return
		}
		// Exact distances keep the delta computation deterministic; the
		// caller's own options still select method and distance bound.
		qopts := make([]Option, 0, len(opts)+1)
		qopts = append(qopts, opts...)
		qopts = append(qopts, WithExactDistances())

		prev := make(map[int32]float64)
		first := true
		var lastVersion uint64
		for {
			if err := ctx.Err(); err != nil {
				yield(WatchEvent{}, err)
				return
			}
			changed := live.Changed() // before View: no lost wakeups
			view := live.View()
			if !first && view.version == lastVersion {
				select {
				case <-changed:
					continue
				case <-ctx.Done():
					yield(WatchEvent{}, ctx.Err())
					return
				}
			}
			var res Result
			if view.Len() > 0 {
				var err error
				res, err = e.Query(ctx, view, q, k, qopts...)
				if err != nil {
					yield(WatchEvent{}, err)
					return
				}
			}
			lastVersion = view.version
			ev, dirty := diffWatch(prev, res.Neighbors, view.version)
			if first || dirty {
				if !yield(ev, nil) {
					return
				}
			}
			first = false
			clear(prev)
			for _, n := range res.Neighbors {
				prev[n.ID] = n.Dist
			}
		}
	}
}

// diffWatch computes one watch delta against the previous top-k.
func diffWatch(prev map[int32]float64, now []Neighbor, version uint64) (WatchEvent, bool) {
	ev := WatchEvent{Version: version, Neighbors: now}
	for _, n := range now {
		d, ok := prev[n.ID]
		switch {
		case !ok:
			ev.Added = append(ev.Added, n)
		case d != n.Dist:
			ev.Changed = append(ev.Changed, n)
		}
	}
	inNow := make(map[int32]bool, len(now))
	for _, n := range now {
		inNow[n.ID] = true
	}
	for id := range prev {
		if !inNow[id] {
			ev.Removed = append(ev.Removed, id)
		}
	}
	sort.Slice(ev.Removed, func(i, j int) bool { return ev.Removed[i] < ev.Removed[j] })
	dirty := len(ev.Added)+len(ev.Removed)+len(ev.Changed) > 0
	return ev, dirty
}
