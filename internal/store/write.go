package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"silc/internal/graph"
	"silc/internal/quadtree"
)

// Source describes a built index to be serialized as a paged store image.
// For fixed-width (CompressionNone) images Tree is called twice per vertex
// in vertex order — once to plan the layout, once to stream the blocks; for
// compressed images the planning pass encodes the runs, so Tree is called
// once.
type Source struct {
	Graph       *graph.Network
	Radius      float64
	Lenient     bool
	Compression Compression
	Tree        func(v graph.VertexID) *quadtree.Tree
}

// ImagePlan is a fully laid-out paged image ready to stream: every section
// offset is fixed, and for compressed images the block section is already
// encoded (its size is not predictable from block counts alone). The
// sharded writer plans every cell up front to compute the cell table, then
// streams the plans.
type ImagePlan struct {
	src      Source
	sb       *superblock
	counts   []uint32
	byteLens []uint32 // compressed images only
	comp     []byte   // compressed images: concatenated per-vertex runs
}

// ImageInfo describes the section layout of a planned image — what
// silcbuild prints as the per-section size table.
type ImageInfo struct {
	Compression Compression
	Superblock  int64
	Network     int64
	Extents     int64
	// BlockSection is the on-disk size of the demand-paged block section
	// (BlockPages full pages, zero-padded tail included).
	BlockSection int64
	CRCTable     int64
	Total        int64
	BlockPages   int64
	TotalBlocks  int64
	// RawBlockBytes is the fixed-width footprint of the same blocks —
	// TotalBlocks x 16 — the numerator of the block-stream ratio.
	RawBlockBytes int64
	// FixedWidthTotal is the image size a CompressionNone write of the same
	// index would produce; Ratio() compares against it.
	FixedWidthTotal int64
}

// Ratio returns the whole-image compression ratio (>= 1 in practice; 1 for
// CompressionNone images).
func (i ImageInfo) Ratio() float64 {
	if i.Total == 0 {
		return 1
	}
	return float64(i.FixedWidthTotal) / float64(i.Total)
}

// PlanImage lays out the paged image for src: per-vertex block counts, all
// section offsets, and — under CompressionDelta — the encoded block
// section. The plan is then streamed by WriteTo.
func PlanImage(src Source) (*ImagePlan, error) {
	g := src.Graph
	n, m := g.NumVertices(), g.NumEdges()
	sb := &superblock{
		version:  1,
		pageSize: PageSize,
		lenient:  src.Lenient,
		n:        n,
		m:        m,
		radius:   src.Radius,
	}
	p := &ImagePlan{src: src, sb: sb, counts: make([]uint32, n)}
	switch src.Compression {
	case CompressionNone:
		for v := 0; v < n; v++ {
			nb := src.Tree(graph.VertexID(v)).NumBlocks()
			p.counts[v] = uint32(nb)
			sb.totalBlocks += int64(nb)
		}
		epp := int64(PageSize / entrySize)
		sb.netOff = superblockSize
		sb.extentOff = sb.netOff + NetworkSectionSize(n, m)
		sb.blockOff = Align(sb.extentOff+extentSectionSize(n), PageSize)
		sb.blockPages = (sb.totalBlocks + epp - 1) / epp
	case CompressionDelta:
		sb.version = 2
		p.byteLens = make([]uint32, n)
		for v := 0; v < n; v++ {
			t := src.Tree(graph.VertexID(v))
			nb := t.NumBlocks()
			p.counts[v] = uint32(nb)
			sb.totalBlocks += int64(nb)
			if nb == 0 {
				continue
			}
			before := len(p.comp)
			var err error
			p.comp, err = CompressRun(p.comp, t.Blocks)
			if err != nil {
				return nil, fmt.Errorf("store: vertex %d: %w", v, err)
			}
			runLen := len(p.comp) - before
			if int64(runLen) > math.MaxUint32 {
				return nil, fmt.Errorf("store: vertex %d run of %d bytes overflows the extent width", v, runLen)
			}
			p.byteLens[v] = uint32(runLen)
		}
		sb.compBytes = int64(len(p.comp))
		sb.netOff = superblockSize2
		sb.extentOff = sb.netOff + NetworkSectionSize(n, m)
		sb.blockOff = Align(sb.extentOff+extent2SectionSize(n), PageSize)
		sb.blockPages = (sb.compBytes + PageSize - 1) / PageSize
	default:
		return nil, fmt.Errorf("store: unknown compression %d", src.Compression)
	}
	sb.crcTabOff = sb.blockOff + sb.blockPages*PageSize
	sb.imageSize = sb.crcTabOff + sb.blockPages*4 + 4
	return p, nil
}

// ImageSize returns the byte size WriteTo will produce.
func (p *ImagePlan) ImageSize() int64 { return p.sb.imageSize }

// BlockPages returns the number of demand-paged block pages of the planned
// image.
func (p *ImagePlan) BlockPages() int64 { return p.sb.blockPages }

// Info returns the section layout of the planned image.
func (p *ImagePlan) Info() ImageInfo {
	sb := p.sb
	extents := extentSectionSize(sb.n)
	if sb.version == 2 {
		extents = extent2SectionSize(sb.n)
	}
	return ImageInfo{
		Compression:     p.src.Compression,
		Superblock:      sb.headerSize(),
		Network:         NetworkSectionSize(sb.n, sb.m),
		Extents:         extents,
		BlockSection:    sb.blockPages * int64(sb.pageSize),
		CRCTable:        sb.blockPages*4 + 4,
		Total:           sb.imageSize,
		BlockPages:      sb.blockPages,
		TotalBlocks:     sb.totalBlocks,
		RawBlockBytes:   sb.totalBlocks * entrySize,
		FixedWidthTotal: ImageSize(sb.n, sb.m, sb.totalBlocks),
	}
}

// WriteTo streams the planned image to w in a single pass and returns the
// byte count, which always equals ImageSize on success.
func (p *ImagePlan) WriteTo(w io.Writer) (int64, error) {
	sb := p.sb
	cw := &countingWriter{w: bufio.NewWriter(w)}
	var head, extents []byte
	if sb.version == 2 {
		head = sb.encode2()
		extents = encodeExtent2Section(p.counts, p.byteLens)
	} else {
		head = sb.encode()
		extents = encodeExtentSection(p.counts)
	}
	for _, section := range [][]byte{head, EncodeNetworkSection(p.src.Graph), extents} {
		if _, err := cw.Write(section); err != nil {
			return cw.n, err
		}
	}
	if err := padTo(cw, sb.blockOff); err != nil {
		return cw.n, err
	}
	var pageCRCs []uint32
	var err error
	if sb.version == 2 {
		pageCRCs, err = p.writeCompressedPages(cw)
	} else {
		pageCRCs, err = p.writeFixedPages(cw)
	}
	if err != nil {
		return cw.n, err
	}
	if int64(len(pageCRCs)) != sb.blockPages {
		return cw.n, fmt.Errorf("store: wrote %d block pages, layout predicts %d", len(pageCRCs), sb.blockPages)
	}

	// Trailing page CRC table plus its own CRC.
	le := binary.LittleEndian
	tab := make([]byte, sb.blockPages*4+4)
	for i, c := range pageCRCs {
		le.PutUint32(tab[i*4:], c)
	}
	le.PutUint32(tab[sb.blockPages*4:], crc32.ChecksumIEEE(tab[:sb.blockPages*4]))
	if _, err := cw.Write(tab); err != nil {
		return cw.n, err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	if cw.n != sb.imageSize {
		return cw.n, fmt.Errorf("store: wrote %d bytes, layout predicts %d (format drift)", cw.n, sb.imageSize)
	}
	return cw.n, nil
}

// writeFixedPages streams the v1 block section: 16-byte entries densely
// packed vertex-major, one CRC accumulated per completed page.
func (p *ImagePlan) writeFixedPages(cw *countingWriter) ([]uint32, error) {
	pageCRCs := make([]uint32, 0, p.sb.blockPages)
	page := make([]byte, 0, PageSize)
	flushPage := func() error {
		page = page[:PageSize] // zero-pad the partial tail
		pageCRCs = append(pageCRCs, crc32.ChecksumIEEE(page))
		if _, err := cw.Write(page); err != nil {
			return err
		}
		page = page[:0]
		return nil
	}
	var entry [entrySize]byte
	le := binary.LittleEndian
	n := p.src.Graph.NumVertices()
	for v := 0; v < n; v++ {
		for _, b := range p.src.Tree(graph.VertexID(v)).Blocks {
			if b.Color < 0 || b.Color > 255 {
				return nil, fmt.Errorf("store: vertex %d color %d exceeds the disk format's 8-bit width", v, b.Color)
			}
			le.PutUint32(entry[0:4], uint32(b.Cell.Code))
			entry[4] = b.Cell.Level
			entry[5] = byte(b.Color)
			entry[6], entry[7] = 0, 0
			le.PutUint32(entry[8:12], math.Float32bits(b.LamLo))
			le.PutUint32(entry[12:16], math.Float32bits(b.LamHi))
			page = append(page, entry[:]...)
			if len(page) == PageSize {
				if err := flushPage(); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(page) > 0 {
		if err := flushPage(); err != nil {
			return nil, err
		}
	}
	return pageCRCs, nil
}

// writeCompressedPages streams the already-encoded v2 block section page by
// page, zero-padding the tail.
func (p *ImagePlan) writeCompressedPages(cw *countingWriter) ([]uint32, error) {
	pageCRCs := make([]uint32, 0, p.sb.blockPages)
	page := make([]byte, PageSize)
	for at := 0; at < len(p.comp); at += PageSize {
		end := at + PageSize
		if end > len(p.comp) {
			end = len(p.comp)
		}
		nc := copy(page, p.comp[at:end])
		clear(page[nc:])
		pageCRCs = append(pageCRCs, crc32.ChecksumIEEE(page))
		if _, err := cw.Write(page); err != nil {
			return nil, err
		}
	}
	return pageCRCs, nil
}

// Write serializes a paged store image to w in a single streaming pass. It
// returns the image size in bytes.
func Write(w io.Writer, src Source) (int64, error) {
	p, err := PlanImage(src)
	if err != nil {
		return 0, err
	}
	return p.WriteTo(w)
}

// ImageSize predicts the byte size of the fixed-width (CompressionNone)
// paged image Write would produce, without writing it. The sharded v1
// writer uses it to lay out cell sections up front; compressed images are
// planned instead (PlanImage), since their size depends on the encoded
// bytes.
func ImageSize(n, m int, totalBlocks int64) int64 {
	epp := int64(PageSize / entrySize)
	blockOff := Align(superblockSize+NetworkSectionSize(n, m)+extentSectionSize(n), PageSize)
	blockPages := (totalBlocks + epp - 1) / epp
	return blockOff + blockPages*PageSize + blockPages*4 + 4
}

// BlockPages returns the number of demand-paged block pages the fixed-width
// image for totalBlocks entries occupies.
func BlockPages(totalBlocks int64) int64 {
	epp := int64(PageSize / entrySize)
	return (totalBlocks + epp - 1) / epp
}

func padTo(cw *countingWriter, off int64) error {
	if cw.n > off {
		return fmt.Errorf("store: overran section boundary %d (at %d)", off, cw.n)
	}
	pad := make([]byte, off-cw.n)
	_, err := cw.Write(pad)
	return err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
