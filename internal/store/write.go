package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"silc/internal/graph"
	"silc/internal/quadtree"
)

// Source describes a built index to be serialized as a paged store image.
// Tree is called once per vertex, in vertex order.
type Source struct {
	Graph   *graph.Network
	Radius  float64
	Lenient bool
	Tree    func(v graph.VertexID) *quadtree.Tree
}

// Write serializes a paged store image to w in a single streaming pass
// (every section offset is computable from the per-vertex block counts
// alone, so no seeking is required). It returns the image size in bytes.
func Write(w io.Writer, src Source) (int64, error) {
	g := src.Graph
	n, m := g.NumVertices(), g.NumEdges()
	counts := make([]uint32, n)
	var totalBlocks int64
	for v := 0; v < n; v++ {
		nb := src.Tree(graph.VertexID(v)).NumBlocks()
		counts[v] = uint32(nb)
		totalBlocks += int64(nb)
	}
	epp := int64(PageSize / entrySize)
	sb := &superblock{
		pageSize:    PageSize,
		lenient:     src.Lenient,
		n:           n,
		m:           m,
		radius:      src.Radius,
		totalBlocks: totalBlocks,
		netOff:      superblockSize,
	}
	sb.extentOff = sb.netOff + NetworkSectionSize(n, m)
	sb.blockOff = Align(sb.extentOff+extentSectionSize(n), PageSize)
	sb.blockPages = (totalBlocks + epp - 1) / epp
	sb.crcTabOff = sb.blockOff + sb.blockPages*PageSize
	sb.imageSize = sb.crcTabOff + sb.blockPages*4 + 4

	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, section := range [][]byte{
		sb.encode(),
		EncodeNetworkSection(g),
		encodeExtentSection(counts),
	} {
		if _, err := cw.Write(section); err != nil {
			return cw.n, err
		}
	}
	if err := padTo(cw, sb.blockOff); err != nil {
		return cw.n, err
	}

	// Block pages: 16-byte entries densely packed vertex-major, one CRC
	// accumulated per completed page.
	pageCRCs := make([]uint32, 0, sb.blockPages)
	page := make([]byte, 0, PageSize)
	flushPage := func() error {
		page = page[:PageSize] // zero-pad the partial tail
		pageCRCs = append(pageCRCs, crc32.ChecksumIEEE(page))
		if _, err := cw.Write(page); err != nil {
			return err
		}
		page = page[:0]
		return nil
	}
	var entry [entrySize]byte
	le := binary.LittleEndian
	for v := 0; v < n; v++ {
		for _, b := range src.Tree(graph.VertexID(v)).Blocks {
			if b.Color < 0 || b.Color > 255 {
				return cw.n, fmt.Errorf("store: vertex %d color %d exceeds the disk format's 8-bit width", v, b.Color)
			}
			le.PutUint32(entry[0:4], uint32(b.Cell.Code))
			entry[4] = b.Cell.Level
			entry[5] = byte(b.Color)
			entry[6], entry[7] = 0, 0
			le.PutUint32(entry[8:12], math.Float32bits(b.LamLo))
			le.PutUint32(entry[12:16], math.Float32bits(b.LamHi))
			page = append(page, entry[:]...)
			if len(page) == PageSize {
				if err := flushPage(); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if len(page) > 0 {
		if err := flushPage(); err != nil {
			return cw.n, err
		}
	}
	if int64(len(pageCRCs)) != sb.blockPages {
		return cw.n, fmt.Errorf("store: wrote %d block pages, layout predicts %d", len(pageCRCs), sb.blockPages)
	}

	// Trailing page CRC table plus its own CRC.
	tab := make([]byte, sb.blockPages*4+4)
	for i, c := range pageCRCs {
		le.PutUint32(tab[i*4:], c)
	}
	le.PutUint32(tab[sb.blockPages*4:], crc32.ChecksumIEEE(tab[:sb.blockPages*4]))
	if _, err := cw.Write(tab); err != nil {
		return cw.n, err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	if cw.n != sb.imageSize {
		return cw.n, fmt.Errorf("store: wrote %d bytes, layout predicts %d (format drift)", cw.n, sb.imageSize)
	}
	return cw.n, nil
}

// ImageSize predicts the byte size of the paged image Write would produce,
// without writing it. The sharded writer uses it to lay out cell sections
// up front.
func ImageSize(n, m int, totalBlocks int64) int64 {
	epp := int64(PageSize / entrySize)
	blockOff := Align(superblockSize+NetworkSectionSize(n, m)+extentSectionSize(n), PageSize)
	blockPages := (totalBlocks + epp - 1) / epp
	return blockOff + blockPages*PageSize + blockPages*4 + 4
}

// BlockPages returns the number of demand-paged block pages the image for
// totalBlocks entries occupies.
func BlockPages(totalBlocks int64) int64 {
	epp := int64(PageSize / entrySize)
	return (totalBlocks + epp - 1) / epp
}

func padTo(cw *countingWriter, off int64) error {
	if cw.n > off {
		return fmt.Errorf("store: overran section boundary %d (at %d)", off, cw.n)
	}
	pad := make([]byte, off-cw.n)
	_, err := cw.Write(pad)
	return err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
