//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform maps files natively;
// OpenMapped falls back to ReadAt elsewhere.
const mmapSupported = true

// mmapFile maps [0, size) of f read-only and returns the mapping plus its
// unmap function. The mapping outlives the file descriptor, but Close keeps
// both until the store is done with them.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("store: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
