package store_test

import (
	"bytes"
	"math"
	"testing"

	"silc/internal/core"
	"silc/internal/diskio"
	"silc/internal/graph"
	"silc/internal/store"
)

// buildTestIndex builds a small road network and its in-RAM index.
func buildTestIndex(t *testing.T, rows, cols int) (*graph.Network, *core.Index) {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: 7})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g, ix
}

// writeImage serializes ix as a paged image.
func writeImage(t *testing.T, ix *core.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		t.Fatalf("WritePaged: %v", err)
	}
	return buf.Bytes()
}

// TestPagedRoundTrip checks that a paged-backed index answers exactly like
// the in-RAM index it was serialized from, for distances, intervals, and
// paths.
func TestPagedRoundTrip(t *testing.T) {
	g, ix := buildTestIndex(t, 12, 12)
	img := writeImage(t, ix)

	st, err := store.Open(bytes.NewReader(img), int64(len(img)), store.OpenOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.Graph().NumVertices() != g.NumVertices() || st.Graph().NumEdges() != g.NumEdges() {
		t.Fatalf("embedded network %d/%d, want %d/%d",
			st.Graph().NumVertices(), st.Graph().NumEdges(), g.NumVertices(), g.NumEdges())
	}
	total, _, _ := st.BlockStats()
	px := core.NewPagedIndex(core.PagedConfig{
		Graph: st.Graph(), Source: st, Tracker: st.Tracker(),
		Radius: st.Radius(), Lenient: st.Lenient(),
		Stats: core.BuildStats{TotalBlocks: total},
	})
	if px.Stats().TotalBlocks != ix.Stats().TotalBlocks {
		t.Fatalf("total blocks %d, want %d", px.Stats().TotalBlocks, ix.Stats().TotalBlocks)
	}

	n := g.NumVertices()
	qc := core.NewQueryContext()
	for u := 0; u < n; u += 3 {
		for v := 0; v < n; v += 7 {
			uu, vv := graph.VertexID(u), graph.VertexID(v)
			want := ix.Distance(uu, vv)
			got := core.ExactDistance(px, qc, uu, vv)
			if err := qc.Err(); err != nil {
				t.Fatalf("paged distance %d->%d: %v", u, v, err)
			}
			if math.Abs(want-got) > 1e-9*(1+want) {
				t.Fatalf("distance %d->%d: paged %v, in-RAM %v", u, v, got, want)
			}
			wiv := ix.DistanceInterval(uu, vv)
			giv := px.DistanceIntervalCtx(qc, uu, vv)
			if wiv != giv {
				t.Fatalf("interval %d->%d: paged %+v, in-RAM %+v", u, v, giv, wiv)
			}
		}
	}
	wp := ix.Path(0, graph.VertexID(n-1))
	gp := px.PathCtx(qc, 0, graph.VertexID(n-1))
	if len(wp) != len(gp) {
		t.Fatalf("path length %d, want %d", len(gp), len(wp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("path diverges at %d: %v vs %v", i, gp, wp)
		}
	}
	if st.ReadStats().Reads == 0 {
		t.Fatal("no actual page reads recorded")
	}
}

// TestEvictionBoundsResidency forces heavy eviction with a pool much
// smaller than the index and checks that resident memory — page frames and
// decoded trees — stays bounded by the pool capacity rather than growing
// with the pages touched. This is the disk-residency acceptance property:
// the full index exceeds the pool, yet queries run within it.
func TestEvictionBoundsResidency(t *testing.T) {
	g, ix := buildTestIndex(t, 16, 16)
	img := writeImage(t, ix)

	const capacity = 8
	st, err := store.Open(bytes.NewReader(img), int64(len(img)), store.OpenOptions{CachePages: capacity})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.BlockPages() <= capacity {
		t.Fatalf("index has %d pages, need more than pool capacity %d for this test", st.BlockPages(), capacity)
	}
	px := core.NewPagedIndex(core.PagedConfig{
		Graph: st.Graph(), Source: st, Tracker: st.Tracker(),
		Radius: st.Radius(), Lenient: st.Lenient(),
	})

	n := g.NumVertices()
	qc := core.NewQueryContext()
	for u := 0; u < n; u += 5 {
		for v := 0; v < n; v += 11 {
			core.ExactDistance(px, qc, graph.VertexID(u), graph.VertexID(v))
			if err := qc.Err(); err != nil {
				t.Fatalf("distance %d->%d: %v", u, v, err)
			}
			if rp := st.ResidentPages(); rp > capacity {
				t.Fatalf("resident pages %d exceed pool capacity %d", rp, capacity)
			}
		}
	}
	pool := st.Tracker().Pool()
	if pool.Len() > capacity {
		t.Fatalf("pool holds %d pages, capacity %d", pool.Len(), capacity)
	}
	// Every decoded tree must sit over resident pages only, so the tree
	// cache cannot exceed the owners overlapping the resident pages.
	if rt, rp := st.ResidentTrees(), st.ResidentPages(); rt > 0 && rp == 0 {
		t.Fatalf("%d trees cached with no resident pages", rt)
	}
	stats := pool.Stats()
	if stats.Misses != st.ReadStats().Reads {
		t.Fatalf("pool misses %d but %d actual reads — misses must be real reads", stats.Misses, st.ReadStats().Reads)
	}
	if qc.IO.Accesses() == 0 {
		t.Fatal("per-query counter saw no traffic")
	}
}

// TestCorruptPageSurfacesError flips a byte inside a block page and checks
// the failure surfaces as a query error (never a panic, never a wrong
// answer).
func TestCorruptPageSurfacesError(t *testing.T) {
	_, ix := buildTestIndex(t, 10, 10)
	img := writeImage(t, ix)

	st, err := store.Open(bytes.NewReader(img), int64(len(img)), store.OpenOptions{})
	if err != nil {
		t.Fatalf("Open clean: %v", err)
	}
	// Find the block section offset by probing: corrupt the LAST page, then
	// query everything until some vertex's tree hits it.
	corrupt := make([]byte, len(img))
	copy(corrupt, img)
	// The page CRC table is the trailing blockPages*4+4 bytes; the last
	// block page ends right before it.
	tail := int64(len(img)) - (st.BlockPages()*4 + 4)
	corrupt[tail-1] ^= 0xFF

	st2, err := store.Open(bytes.NewReader(corrupt), int64(len(corrupt)), store.OpenOptions{})
	if err != nil {
		t.Fatalf("Open corrupt (lazy pages must not fail open): %v", err)
	}
	px := core.NewPagedIndex(core.PagedConfig{
		Graph: st2.Graph(), Source: st2, Tracker: st2.Tracker(),
	})
	n := st2.Graph().NumVertices()
	sawErr := false
	for u := 0; u < n && !sawErr; u++ {
		qc := core.NewQueryContext()
		core.ExactDistance(px, qc, graph.VertexID(u), graph.VertexID((u+n/2)%n))
		if err := qc.Err(); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("corrupted page never surfaced as a query error")
	}
}

// TestSharedPagerEvictionRouting opens two stores over one pool and checks
// that evictions caused by one store release frames held by the other.
func TestSharedPagerEvictionRouting(t *testing.T) {
	_, ixA := buildTestIndex(t, 10, 10)
	_, ixB := buildTestIndex(t, 12, 12)
	imgA, imgB := writeImage(t, ixA), writeImage(t, ixB)

	pager := store.NewPager(diskio.NewPool(4, 4))
	stA, err := store.Open(bytes.NewReader(imgA), int64(len(imgA)), store.OpenOptions{Pager: pager})
	if err != nil {
		t.Fatalf("Open A: %v", err)
	}
	stB, err := store.Open(bytes.NewReader(imgB), int64(len(imgB)), store.OpenOptions{Pager: pager, PageBase: diskio.PageID(stA.BlockPages())})
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	gA, gB := stA.Graph(), stB.Graph()
	for v := 0; v < gA.NumVertices(); v += 2 {
		if _, err := stA.Tree(nil, graph.VertexID(v)); err != nil {
			t.Fatalf("A tree %d: %v", v, err)
		}
	}
	for v := 0; v < gB.NumVertices(); v += 2 {
		if _, err := stB.Tree(nil, graph.VertexID(v)); err != nil {
			t.Fatalf("B tree %d: %v", v, err)
		}
	}
	if total := stA.ResidentPages() + stB.ResidentPages(); total > 4 {
		t.Fatalf("resident pages %d exceed shared capacity 4", total)
	}
	rs := pager.ReadStats()
	if rs.Reads == 0 || rs.Bytes == 0 {
		t.Fatalf("pager read stats empty: %+v", rs)
	}
}

// TestDecodeBlocksRejectsCorruption spot-checks the structural validation
// of the demand-paging deserializer.
func TestDecodeBlocksRejectsCorruption(t *testing.T) {
	valid := make([]byte, 16)
	valid[4] = 2 // level 2
	valid[5] = 0 // color 0
	for _, tc := range []struct {
		name   string
		mutate func(b []byte)
	}{
		{"short", func(b []byte) {}}, // handled below with odd length
		{"level", func(b []byte) { b[4] = 30 }},
		{"color", func(b []byte) { b[5] = 9 }},
		{"nan-lambda", func(b []byte) { b[8], b[9], b[10], b[11] = 0, 0, 0xC0, 0x7F }},
	} {
		b := append([]byte(nil), valid...)
		tc.mutate(b)
		if tc.name == "short" {
			b = b[:7]
		}
		if _, _, err := store.DecodeBlocks(b, 3); err == nil {
			t.Errorf("%s: corrupt run decoded without error", tc.name)
		}
	}
	if _, _, err := store.DecodeBlocks(valid, 3); err != nil {
		t.Errorf("valid run rejected: %v", err)
	}
	// Unsorted pair.
	two := append(append([]byte(nil), valid...), valid...)
	if _, _, err := store.DecodeBlocks(two, 3); err == nil {
		t.Error("overlapping blocks decoded without error")
	}
}
