package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// The compressed monolithic image ("SILCPG2\0") shares the SILCPG1 section
// plan — superblock, eager network and extent sections, page-aligned
// demand-paged block section, trailing per-page CRC table — but the block
// section holds the byte-packed delta+varint runs of compress.go instead of
// fixed 16-byte entries, and the extent section carries each vertex's
// compressed byte length next to its block count so the page layout stays
// computable without touching the block section. Offsets stay image-relative,
// so SILCPG2 images embed inside the sharded format ("SILCSPG2") exactly
// like their v1 counterparts.

// Magic2String identifies a compressed (delta) monolithic paged image.
const Magic2String = "SILCPG2\x00"

// ShardedMagic2String identifies a sharded paged file whose embedded cell
// images are compressed.
const ShardedMagic2String = "SILCSPG2"

// superblockSize2 is the fixed byte size of the v2 superblock: the v1
// fields plus the total compressed block-section byte count.
const superblockSize2 = 100

func (sb *superblock) encode2() []byte {
	buf := make([]byte, superblockSize2)
	copy(buf[0:8], Magic2String)
	le := binary.LittleEndian
	le.PutUint32(buf[8:12], uint32(sb.pageSize))
	var flags uint32
	if sb.lenient {
		flags |= flagLenient
	}
	le.PutUint32(buf[12:16], flags)
	le.PutUint32(buf[16:20], uint32(sb.n))
	le.PutUint32(buf[20:24], uint32(sb.m))
	le.PutUint64(buf[24:32], math.Float64bits(sb.radius))
	le.PutUint64(buf[32:40], uint64(sb.totalBlocks))
	le.PutUint64(buf[40:48], uint64(sb.compBytes))
	le.PutUint64(buf[48:56], uint64(sb.netOff))
	le.PutUint64(buf[56:64], uint64(sb.extentOff))
	le.PutUint64(buf[64:72], uint64(sb.blockOff))
	le.PutUint64(buf[72:80], uint64(sb.blockPages))
	le.PutUint64(buf[80:88], uint64(sb.crcTabOff))
	le.PutUint64(buf[88:96], uint64(sb.imageSize))
	le.PutUint32(buf[96:100], crc32.ChecksumIEEE(buf[:96]))
	return buf
}

// decodeSuperblock2 parses and sanity-checks a v2 superblock, mirroring the
// v1 validation chain with the byte-packed block-section arithmetic.
func decodeSuperblock2(buf []byte, size int64) (*superblock, error) {
	if len(buf) != superblockSize2 {
		return nil, fmt.Errorf("store: v2 superblock is %d bytes, want %d", len(buf), superblockSize2)
	}
	if string(buf[0:8]) != Magic2String {
		return nil, fmt.Errorf("store: bad magic %q", buf[0:8])
	}
	le := binary.LittleEndian
	if stored, computed := le.Uint32(buf[96:100]), crc32.ChecksumIEEE(buf[:96]); stored != computed {
		return nil, fmt.Errorf("store: superblock checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	sb := &superblock{
		version:     2,
		pageSize:    int(le.Uint32(buf[8:12])),
		lenient:     le.Uint32(buf[12:16])&flagLenient != 0,
		n:           int(le.Uint32(buf[16:20])),
		m:           int(le.Uint32(buf[20:24])),
		radius:      math.Float64frombits(le.Uint64(buf[24:32])),
		totalBlocks: int64(le.Uint64(buf[32:40])),
		compBytes:   int64(le.Uint64(buf[40:48])),
		netOff:      int64(le.Uint64(buf[48:56])),
		extentOff:   int64(le.Uint64(buf[56:64])),
		blockOff:    int64(le.Uint64(buf[64:72])),
		blockPages:  int64(le.Uint64(buf[72:80])),
		crcTabOff:   int64(le.Uint64(buf[80:88])),
		imageSize:   int64(le.Uint64(buf[88:96])),
	}
	if sb.pageSize < entrySize || sb.pageSize > 1<<20 || sb.pageSize%entrySize != 0 {
		return nil, fmt.Errorf("store: invalid page size %d", sb.pageSize)
	}
	if sb.n <= 0 {
		return nil, fmt.Errorf("store: invalid vertex count %d", sb.n)
	}
	if sb.m < 0 {
		return nil, fmt.Errorf("store: invalid edge count %d", sb.m)
	}
	if math.IsNaN(sb.radius) || sb.radius < 0 {
		return nil, fmt.Errorf("store: invalid proximity radius %v", sb.radius)
	}
	if sb.imageSize <= 0 || sb.imageSize > size {
		return nil, fmt.Errorf("store: image size %d exceeds available %d bytes", sb.imageSize, size)
	}
	if sb.netOff != superblockSize2 {
		return nil, fmt.Errorf("store: network section at %d, want %d", sb.netOff, superblockSize2)
	}
	if sb.extentOff != sb.netOff+NetworkSectionSize(sb.n, sb.m) {
		return nil, fmt.Errorf("store: extent section at %d, inconsistent with n=%d m=%d", sb.extentOff, sb.n, sb.m)
	}
	if sb.blockOff != Align(sb.extentOff+extent2SectionSize(sb.n), int64(sb.pageSize)) {
		return nil, fmt.Errorf("store: block section at %d not page-aligned after extents", sb.blockOff)
	}
	if sb.totalBlocks < 0 || sb.totalBlocks > int64(sb.n)*int64(sb.n) {
		return nil, fmt.Errorf("store: implausible total block count %d for %d vertices", sb.totalBlocks, sb.n)
	}
	// Every stored block costs at least runMinPerBlock bytes, so compBytes
	// bounds totalBlocks from above before any run is decoded.
	if sb.compBytes < runMinPerBlock*sb.totalBlocks || (sb.compBytes > 0) != (sb.totalBlocks > 0) {
		return nil, fmt.Errorf("store: %d compressed bytes implausible for %d blocks", sb.compBytes, sb.totalBlocks)
	}
	ps := int64(sb.pageSize)
	if wantPages := (sb.compBytes + ps - 1) / ps; sb.blockPages != wantPages {
		return nil, fmt.Errorf("store: %d block pages recorded, %d compressed bytes imply %d", sb.blockPages, sb.compBytes, wantPages)
	}
	if sb.crcTabOff != sb.blockOff+sb.blockPages*ps {
		return nil, fmt.Errorf("store: page CRC table at %d, inconsistent with %d block pages", sb.crcTabOff, sb.blockPages)
	}
	if sb.imageSize != sb.crcTabOff+sb.blockPages*4+4 {
		return nil, fmt.Errorf("store: image size %d inconsistent with section layout", sb.imageSize)
	}
	return sb, nil
}

// extent2SectionSize returns the byte size of the v2 extent table — block
// count plus compressed byte length per vertex — including its trailing CRC.
func extent2SectionSize(n int) int64 {
	return int64(n)*8 + 4
}

// encodeExtent2Section serializes the per-vertex block counts followed by
// the per-vertex compressed run lengths.
func encodeExtent2Section(counts, byteLens []uint32) []byte {
	n := len(counts)
	buf := make([]byte, extent2SectionSize(n))
	le := binary.LittleEndian
	for i, c := range counts {
		le.PutUint32(buf[i*4:], c)
	}
	for i, l := range byteLens {
		le.PutUint32(buf[(n+i)*4:], l)
	}
	le.PutUint32(buf[n*8:], crc32.ChecksumIEEE(buf[:n*8]))
	return buf
}

// decodeExtent2Section parses and validates the v2 extent table. The same
// counts<n alloc-bomb guard as v1 applies, and the byte lengths must tile
// compBytes exactly with a plausible floor per stored block — a corrupt
// table cannot make a vertex's run claim more bytes than the section holds
// or fewer than its blocks need.
func decodeExtent2Section(buf []byte, n int, totalBlocks, compBytes int64) (counts, byteLens []uint32, err error) {
	if int64(len(buf)) != extent2SectionSize(n) {
		return nil, nil, fmt.Errorf("store: extent section is %d bytes, want %d", len(buf), extent2SectionSize(n))
	}
	le := binary.LittleEndian
	payload := buf[:n*8]
	if stored, computed := le.Uint32(buf[n*8:]), crc32.ChecksumIEEE(payload); stored != computed {
		return nil, nil, fmt.Errorf("store: extent section checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	counts = make([]uint32, n)
	byteLens = make([]uint32, n)
	var total, totalBytes int64
	for v := range counts {
		counts[v] = le.Uint32(payload[v*4:])
		byteLens[v] = le.Uint32(payload[(n+v)*4:])
		if counts[v] >= uint32(n) {
			return nil, nil, fmt.Errorf("store: vertex %d records %d blocks, impossible for %d vertices", v, counts[v], n)
		}
		if counts[v] == 0 {
			if byteLens[v] != 0 {
				return nil, nil, fmt.Errorf("store: vertex %d has no blocks but %d run bytes", v, byteLens[v])
			}
		} else if int64(byteLens[v]) < runMinPerBlock*int64(counts[v])+runOverhead {
			return nil, nil, fmt.Errorf("store: vertex %d run of %d bytes cannot hold %d blocks", v, byteLens[v], counts[v])
		}
		total += int64(counts[v])
		totalBytes += int64(byteLens[v])
	}
	if total != totalBlocks {
		return nil, nil, fmt.Errorf("store: extent counts sum to %d blocks, superblock records %d", total, totalBlocks)
	}
	if totalBytes != compBytes {
		return nil, nil, fmt.Errorf("store: extent run lengths sum to %d bytes, superblock records %d", totalBytes, compBytes)
	}
	return counts, byteLens, nil
}
