package store_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/store"
)

// quadtreeDecodeSeeds builds seed block runs for the demand-paging
// deserializer: a real vertex run from a built index plus hand-mangled
// variants.
func quadtreeDecodeSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	g, err := graph.GenerateGrid(5, 5)
	if err != nil {
		tb.Fatalf("grid: %v", err)
	}
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		tb.Fatalf("write: %v", err)
	}
	img := buf.Bytes()
	st, err := store.Open(bytes.NewReader(img), int64(len(img)), store.OpenOptions{})
	if err != nil {
		tb.Fatalf("open: %v", err)
	}
	// Re-encode vertex 0's run straight from the decoded tree.
	t0, err := st.Tree(nil, 0)
	if err != nil {
		tb.Fatalf("tree: %v", err)
	}
	run := make([]byte, 0, len(t0.Blocks)*16)
	var e [16]byte
	for _, b := range t0.Blocks {
		binary.LittleEndian.PutUint32(e[0:4], uint32(b.Cell.Code))
		e[4] = b.Cell.Level
		e[5] = byte(b.Color)
		e[6], e[7] = 0, 0
		binary.LittleEndian.PutUint32(e[8:12], math.Float32bits(b.LamLo))
		binary.LittleEndian.PutUint32(e[12:16], math.Float32bits(b.LamHi))
		run = append(run, e[:]...)
	}
	flip := append([]byte(nil), run...)
	if len(flip) > 4 {
		flip[4] = 29 // absurd level
	}
	return [][]byte{run, run[:len(run)/2], flip, {}, make([]byte, 16)}
}

// FuzzQuadtreeDecode feeds arbitrary byte runs and out-degrees to the
// per-vertex block deserializer: error-not-panic, and any accepted run
// must satisfy the structural invariants the query path relies on.
func FuzzQuadtreeDecode(f *testing.F) {
	for _, seed := range quadtreeDecodeSeeds(f) {
		f.Add(seed, uint8(4))
	}
	f.Fuzz(func(t *testing.T, data []byte, deg uint8) {
		blocks, minLambda, err := store.DecodeBlocks(data, int(deg))
		if err != nil {
			return
		}
		prevEnd := uint64(0)
		for _, b := range blocks {
			if int(b.Color) >= int(deg) || b.Color < 0 {
				t.Fatalf("accepted block with color %d for out-degree %d", b.Color, deg)
			}
			if uint64(b.Cell.Code) < prevEnd {
				t.Fatal("accepted unsorted blocks")
			}
			prevEnd = uint64(b.Cell.End())
			if float64(b.LamLo) < minLambda {
				t.Fatalf("minLambda %v above block lower bound %v", minLambda, b.LamLo)
			}
		}
	})
}

// pageDecodeSeeds builds seed inputs for the compressed-run decoder: a real
// delta-compressed vertex run plus hand-mangled variants.
func pageDecodeSeeds(tb testing.TB) []struct {
	data  []byte
	count uint16
} {
	tb.Helper()
	g, err := graph.GenerateGrid(5, 5)
	if err != nil {
		tb.Fatalf("grid: %v", err)
	}
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		tb.Fatalf("write: %v", err)
	}
	img := buf.Bytes()
	st, err := store.Open(bytes.NewReader(img), int64(len(img)), store.OpenOptions{})
	if err != nil {
		tb.Fatalf("open: %v", err)
	}
	t0, err := st.Tree(nil, 0)
	if err != nil {
		tb.Fatalf("tree: %v", err)
	}
	run, err := store.CompressRun(nil, t0.Blocks)
	if err != nil {
		tb.Fatalf("compress: %v", err)
	}
	count := uint16(len(t0.Blocks))
	flipGap := append([]byte(nil), run...)
	if len(flipGap) > 3 {
		flipGap[3] ^= 0x80 // extend a varint into the following stream
	}
	flipHeader := append([]byte(nil), run...)
	if len(flipHeader) > 2 {
		flipHeader[2] = 0x1F // absurd level in the first block header
	}
	return []struct {
		data  []byte
		count uint16
	}{
		{run, count},
		{run[:len(run)/2], count},
		{run, count / 2},
		{flipGap, count},
		{flipHeader, count},
		{nil, 0},
		{make([]byte, 64), 7},
	}
}

// FuzzPageDecode feeds arbitrary byte streams, block counts, and out-degrees
// to the compressed-run decoder. Error-not-panic, allocation bounded by the
// input length, and any accepted run must satisfy the structural invariants
// the query path relies on AND survive a re-encode/re-decode round trip
// bit-identically — the encoder is canonical, so a decode that cannot be
// reproduced by the writer indicates the decoder accepted garbage.
func FuzzPageDecode(f *testing.F) {
	for _, seed := range pageDecodeSeeds(f) {
		f.Add(seed.data, seed.count, uint8(4))
	}
	f.Fuzz(func(t *testing.T, data []byte, count uint16, deg uint8) {
		blocks, minLambda, err := store.DecompressRun(data, int(count), int(deg))
		if err != nil {
			return
		}
		if len(blocks) != int(count) {
			t.Fatalf("accepted %d blocks, extent declared %d", len(blocks), count)
		}
		prevEnd := uint64(0)
		for _, b := range blocks {
			if int(b.Color) >= int(deg) || b.Color < 0 {
				t.Fatalf("accepted block with color %d for out-degree %d", b.Color, deg)
			}
			if uint64(b.Cell.Code) < prevEnd {
				t.Fatal("accepted unsorted blocks")
			}
			prevEnd = uint64(b.Cell.End())
			if float64(b.LamLo) < minLambda {
				t.Fatalf("minLambda %v above block lower bound %v", minLambda, b.LamLo)
			}
		}
		if len(blocks) == 0 {
			return
		}
		reenc, err := store.CompressRun(nil, blocks)
		if err != nil {
			t.Fatalf("accepted run fails to re-encode: %v", err)
		}
		again, minLambda2, err := store.DecompressRun(reenc, int(count), int(deg))
		if err != nil {
			t.Fatalf("re-encoded run fails to decode: %v", err)
		}
		if minLambda2 != minLambda {
			t.Fatalf("minLambda drifted across round trip: %v vs %v", minLambda2, minLambda)
		}
		for i := range blocks {
			if blocks[i] != again[i] {
				t.Fatalf("block %d drifted across round trip: %+v vs %+v", i, blocks[i], again[i])
			}
		}
	})
}

// openPagedSeeds builds seed images for the store opener, in both the
// fixed-width v1 and delta-compressed v2 encodings.
func openPagedSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	g, err := graph.GenerateGrid(5, 5)
	if err != nil {
		tb.Fatalf("grid: %v", err)
	}
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := ix.WritePaged(&buf); err != nil {
		tb.Fatalf("write: %v", err)
	}
	valid := buf.Bytes()
	flipHeader := append([]byte(nil), valid...)
	flipHeader[30] ^= 0xFF
	flipPage := append([]byte(nil), valid...)
	flipPage[len(flipPage)-64] ^= 0x01 // inside the last block page / CRC table

	cix, err := core.Build(g, core.BuildOptions{Compression: store.CompressionDelta})
	if err != nil {
		tb.Fatalf("build compressed: %v", err)
	}
	var buf2 bytes.Buffer
	if _, err := cix.WritePaged(&buf2); err != nil {
		tb.Fatalf("write compressed: %v", err)
	}
	valid2 := buf2.Bytes()
	flipRun := append([]byte(nil), valid2...)
	flipRun[len(flipRun)-64] ^= 0x01 // inside the last compressed page / CRC table
	return [][]byte{
		valid,
		valid[:40],
		valid[:len(valid)/2],
		flipHeader,
		flipPage,
		{},
		[]byte("SILCPG1\x00short"),
		valid2,
		valid2[:len(valid2)/2],
		flipRun,
		[]byte("SILCPG2\x00short"),
	}
}

// FuzzOpenPaged drives the store opener with arbitrary images. A
// successful open is fully exercised: every vertex's quadtree is
// materialized, so lazily-detected page corruption also surfaces as
// errors, never panics.
func FuzzOpenPaged(f *testing.F) {
	for _, seed := range openPagedSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := store.Open(bytes.NewReader(data), int64(len(data)), store.OpenOptions{CachePages: 4})
		if err != nil {
			return
		}
		n := st.Graph().NumVertices()
		for v := 0; v < n; v++ {
			if _, err := st.Tree(nil, graph.VertexID(v)); err != nil {
				return // corrupt page detected lazily — fine
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpora under
// testdata/fuzz when SILC_GEN_CORPUS=1.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SILC_GEN_CORPUS") == "" {
		t.Skip("set SILC_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	write := func(dir, name, body string) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range quadtreeDecodeSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\nbyte('\\x04')\n"
		write(filepath.Join("testdata", "fuzz", "FuzzQuadtreeDecode"), "seed-"+strconv.Itoa(i), body)
	}
	for i, seed := range openPagedSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		write(filepath.Join("testdata", "fuzz", "FuzzOpenPaged"), "seed-"+strconv.Itoa(i), body)
	}
	for i, seed := range pageDecodeSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed.data)) + ")\nuint16(" +
			strconv.Itoa(int(seed.count)) + ")\nbyte('\\x04')\n"
		write(filepath.Join("testdata", "fuzz", "FuzzPageDecode"), "seed-"+strconv.Itoa(i), body)
	}
}
