// Package store implements the real disk-resident SILC index: a
// page-aligned file format for shortest-path quadtrees and a lazy,
// ReadAt-backed store that materializes per-vertex quadtrees on demand
// through the sharded buffer pool of internal/diskio — so pool hits and
// misses correspond to actual page reads, and eviction actually frees the
// decoded trees built over the evicted page.
//
// The monolithic paged image ("SILCPG1\0", conventionally *.silcpg) is laid
// out so every structure a query touches repeatedly sits on fixed-size
// pages:
//
//	superblock   92 bytes   magic, page size, counts, radius, section offsets
//	network      coords + CSR adjacency + CRC   (loaded eagerly: O(n+m))
//	extents      per-vertex block counts + CRC  (loaded eagerly: O(n))
//	  ...zero padding to a page boundary...
//	block pages  16-byte Morton-block entries, densely packed vertex-major,
//	             pageSize/16 entries per page   (demand-paged)
//	page CRCs    one CRC-32 per block page + table CRC (loaded eagerly)
//
// All integers are little-endian. Offsets are relative to the image start,
// so a complete image can be embedded inside a larger file (the sharded
// paged format does exactly that) and opened through an io.SectionReader.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"silc/internal/diskio"
	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/quadtree"
)

// MagicString identifies a monolithic paged store image.
const MagicString = "SILCPG1\x00"

// ShardedMagicString identifies a sharded paged file (partition metadata
// plus one embedded store image per cell).
const ShardedMagicString = "SILCSPG1"

// PageSize is the on-disk page size the writer emits. Readers accept any
// sane recorded page size; the pool's page math adapts.
const PageSize = diskio.DefaultPageSize

// entrySize is the 16-byte Morton-block disk entry (same layout as the
// legacy SILCIDX1 stream): code u32, level u8, color u8, pad u16, lamLo
// f32, lamHi f32.
const entrySize = quadtree.EncodedSizeBytes

// superblockSize is the fixed byte size of the leading superblock.
const superblockSize = 92

const flagLenient = 1 << 0

// superblock is the decoded leading block of a monolithic image. version 1
// ("SILCPG1\0") lays fixed 16-byte entries on the block pages; version 2
// ("SILCPG2\0", format2.go) byte-packs compressed runs and additionally
// records compBytes, the dense length of the block section.
type superblock struct {
	version     int // 1 or 2; zero value means 1
	pageSize    int
	lenient     bool
	n           int
	m           int
	radius      float64
	totalBlocks int64
	compBytes   int64 // version 2 only
	netOff      int64
	extentOff   int64
	blockOff    int64
	blockPages  int64
	crcTabOff   int64
	imageSize   int64
}

// headerSize returns the byte size of the encoded superblock.
func (sb *superblock) headerSize() int64 {
	if sb.version == 2 {
		return superblockSize2
	}
	return superblockSize
}

func (sb *superblock) encode() []byte {
	buf := make([]byte, superblockSize)
	copy(buf[0:8], MagicString)
	le := binary.LittleEndian
	le.PutUint32(buf[8:12], uint32(sb.pageSize))
	var flags uint32
	if sb.lenient {
		flags |= flagLenient
	}
	le.PutUint32(buf[12:16], flags)
	le.PutUint32(buf[16:20], uint32(sb.n))
	le.PutUint32(buf[20:24], uint32(sb.m))
	le.PutUint64(buf[24:32], math.Float64bits(sb.radius))
	le.PutUint64(buf[32:40], uint64(sb.totalBlocks))
	le.PutUint64(buf[40:48], uint64(sb.netOff))
	le.PutUint64(buf[48:56], uint64(sb.extentOff))
	le.PutUint64(buf[56:64], uint64(sb.blockOff))
	le.PutUint64(buf[64:72], uint64(sb.blockPages))
	le.PutUint64(buf[72:80], uint64(sb.crcTabOff))
	le.PutUint64(buf[80:88], uint64(sb.imageSize))
	le.PutUint32(buf[88:92], crc32.ChecksumIEEE(buf[:88]))
	return buf
}

// decodeSuperblock parses and sanity-checks a superblock against the
// available image size.
func decodeSuperblock(buf []byte, size int64) (*superblock, error) {
	if len(buf) != superblockSize {
		return nil, fmt.Errorf("store: superblock is %d bytes, want %d", len(buf), superblockSize)
	}
	if string(buf[0:8]) != MagicString {
		return nil, fmt.Errorf("store: bad magic %q", buf[0:8])
	}
	le := binary.LittleEndian
	if stored, computed := le.Uint32(buf[88:92]), crc32.ChecksumIEEE(buf[:88]); stored != computed {
		return nil, fmt.Errorf("store: superblock checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	sb := &superblock{
		version:     1,
		pageSize:    int(le.Uint32(buf[8:12])),
		lenient:     le.Uint32(buf[12:16])&flagLenient != 0,
		n:           int(le.Uint32(buf[16:20])),
		m:           int(le.Uint32(buf[20:24])),
		radius:      math.Float64frombits(le.Uint64(buf[24:32])),
		totalBlocks: int64(le.Uint64(buf[32:40])),
		netOff:      int64(le.Uint64(buf[40:48])),
		extentOff:   int64(le.Uint64(buf[48:56])),
		blockOff:    int64(le.Uint64(buf[56:64])),
		blockPages:  int64(le.Uint64(buf[64:72])),
		crcTabOff:   int64(le.Uint64(buf[72:80])),
		imageSize:   int64(le.Uint64(buf[80:88])),
	}
	if sb.pageSize < entrySize || sb.pageSize > 1<<20 || sb.pageSize%entrySize != 0 {
		return nil, fmt.Errorf("store: invalid page size %d", sb.pageSize)
	}
	if sb.n <= 0 {
		return nil, fmt.Errorf("store: invalid vertex count %d", sb.n)
	}
	if sb.m < 0 {
		return nil, fmt.Errorf("store: invalid edge count %d", sb.m)
	}
	if math.IsNaN(sb.radius) || sb.radius < 0 {
		return nil, fmt.Errorf("store: invalid proximity radius %v", sb.radius)
	}
	if sb.imageSize <= 0 || sb.imageSize > size {
		return nil, fmt.Errorf("store: image size %d exceeds available %d bytes", sb.imageSize, size)
	}
	// Sections must be ordered, in range, and sized exactly as the counts
	// imply — every later read is then bounded by imageSize.
	if sb.netOff != superblockSize {
		return nil, fmt.Errorf("store: network section at %d, want %d", sb.netOff, superblockSize)
	}
	if sb.extentOff != sb.netOff+NetworkSectionSize(sb.n, sb.m) {
		return nil, fmt.Errorf("store: extent section at %d, inconsistent with n=%d m=%d", sb.extentOff, sb.n, sb.m)
	}
	if sb.blockOff != Align(sb.extentOff+extentSectionSize(sb.n), int64(sb.pageSize)) {
		return nil, fmt.Errorf("store: block section at %d not page-aligned after extents", sb.blockOff)
	}
	if sb.totalBlocks < 0 || sb.totalBlocks > int64(sb.n)*int64(sb.n) {
		return nil, fmt.Errorf("store: implausible total block count %d for %d vertices", sb.totalBlocks, sb.n)
	}
	epp := int64(sb.pageSize / entrySize)
	wantPages := (sb.totalBlocks + epp - 1) / epp
	if sb.blockPages != wantPages {
		return nil, fmt.Errorf("store: %d block pages recorded, %d blocks imply %d", sb.blockPages, sb.totalBlocks, wantPages)
	}
	if sb.crcTabOff != sb.blockOff+sb.blockPages*int64(sb.pageSize) {
		return nil, fmt.Errorf("store: page CRC table at %d, inconsistent with %d block pages", sb.crcTabOff, sb.blockPages)
	}
	if sb.imageSize != sb.crcTabOff+sb.blockPages*4+4 {
		return nil, fmt.Errorf("store: image size %d inconsistent with section layout", sb.imageSize)
	}
	return sb, nil
}

// Align rounds off up to the next multiple of pageSize.
func Align(off, pageSize int64) int64 {
	return (off + pageSize - 1) / pageSize * pageSize
}

// NetworkSectionSize returns the byte size of the network section for n
// vertices and m directed edges, including its trailing CRC.
func NetworkSectionSize(n, m int) int64 {
	return int64(n)*16 + int64(n+1)*4 + int64(m)*12 + 4
}

// extentSectionSize returns the byte size of the extent table, including
// its trailing CRC.
func extentSectionSize(n int) int64 {
	return int64(n)*4 + 4
}

// EncodeNetworkSection serializes g's coordinates and CSR adjacency.
func EncodeNetworkSection(g *graph.Network) []byte {
	n, m := g.NumVertices(), g.NumEdges()
	buf := make([]byte, NetworkSectionSize(n, m))
	le := binary.LittleEndian
	at := 0
	for v := 0; v < n; v++ {
		p := g.Point(graph.VertexID(v))
		le.PutUint64(buf[at:], math.Float64bits(p.X))
		le.PutUint64(buf[at+8:], math.Float64bits(p.Y))
		at += 16
	}
	edges := 0
	for v := 0; v <= n; v++ {
		le.PutUint32(buf[at:], uint32(edges))
		at += 4
		if v < n {
			edges += g.Degree(graph.VertexID(v))
		}
	}
	for v := 0; v < n; v++ {
		targets, weights := g.Neighbors(graph.VertexID(v))
		for i := range targets {
			le.PutUint32(buf[at:], uint32(targets[i]))
			le.PutUint64(buf[at+4:], math.Float64bits(weights[i]))
			at += 12
		}
	}
	le.PutUint32(buf[at:], crc32.ChecksumIEEE(buf[:at]))
	return buf
}

// DecodeNetworkSection rebuilds the network from an encoded section,
// revalidating it through graph.Builder (coordinates in range, positive
// weights, no self loops, distinct Morton cells).
func DecodeNetworkSection(buf []byte, n, m int) (*graph.Network, error) {
	if int64(len(buf)) != NetworkSectionSize(n, m) {
		return nil, fmt.Errorf("store: network section is %d bytes, want %d", len(buf), NetworkSectionSize(n, m))
	}
	le := binary.LittleEndian
	payload := buf[:len(buf)-4]
	if stored, computed := le.Uint32(buf[len(buf)-4:]), crc32.ChecksumIEEE(payload); stored != computed {
		return nil, fmt.Errorf("store: network section checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	b := graph.NewBuilder()
	at := 0
	for v := 0; v < n; v++ {
		x := math.Float64frombits(le.Uint64(buf[at:]))
		y := math.Float64frombits(le.Uint64(buf[at+8:]))
		at += 16
		// graph.Builder range-checks coordinates, but NaN slips through
		// comparisons — reject non-finite values here.
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("store: vertex %d has non-finite coordinates (%v, %v)", v, x, y)
		}
		b.AddVertex(geom.Point{X: x, Y: y})
	}
	offsets := make([]int, n+1)
	for v := 0; v <= n; v++ {
		offsets[v] = int(le.Uint32(buf[at:]))
		at += 4
	}
	if offsets[0] != 0 || offsets[n] != m {
		return nil, fmt.Errorf("store: adjacency offsets cover %d..%d, want 0..%d", offsets[0], offsets[n], m)
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("store: adjacency offsets decrease at vertex %d", v)
		}
	}
	for v := 0; v < n; v++ {
		for i := offsets[v]; i < offsets[v+1]; i++ {
			target := le.Uint32(buf[at:])
			weight := math.Float64frombits(le.Uint64(buf[at+4:]))
			at += 12
			if int(target) >= n {
				return nil, fmt.Errorf("store: edge target %d out of %d vertices", target, n)
			}
			b.AddEdge(graph.VertexID(v), graph.VertexID(target), weight)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("store: rebuilding network: %w", err)
	}
	return g, nil
}

// encodeExtentSection serializes the per-vertex block counts.
func encodeExtentSection(counts []uint32) []byte {
	buf := make([]byte, extentSectionSize(len(counts)))
	le := binary.LittleEndian
	for i, c := range counts {
		le.PutUint32(buf[i*4:], c)
	}
	le.PutUint32(buf[len(counts)*4:], crc32.ChecksumIEEE(buf[:len(counts)*4]))
	return buf
}

// decodeExtentSection parses and validates the per-vertex block counts. A
// shortest-path quadtree block contains at least one colored vertex, so no
// vertex can own n or more blocks.
func decodeExtentSection(buf []byte, n int, totalBlocks int64) ([]uint32, error) {
	if int64(len(buf)) != extentSectionSize(n) {
		return nil, fmt.Errorf("store: extent section is %d bytes, want %d", len(buf), extentSectionSize(n))
	}
	le := binary.LittleEndian
	payload := buf[:n*4]
	if stored, computed := le.Uint32(buf[n*4:]), crc32.ChecksumIEEE(payload); stored != computed {
		return nil, fmt.Errorf("store: extent section checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	counts := make([]uint32, n)
	var total int64
	for v := range counts {
		counts[v] = le.Uint32(payload[v*4:])
		if counts[v] >= uint32(n) {
			return nil, fmt.Errorf("store: vertex %d records %d blocks, impossible for %d vertices", v, counts[v], n)
		}
		total += int64(counts[v])
	}
	if total != totalBlocks {
		return nil, fmt.Errorf("store: extent counts sum to %d blocks, superblock records %d", total, totalBlocks)
	}
	return counts, nil
}

// readSection reads exactly [off, off+size) from ra.
func readSection(ra io.ReaderAt, off, size int64) ([]byte, error) {
	buf := make([]byte, size)
	if _, err := ra.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}
