package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"silc/internal/geom"
	"silc/internal/quadtree"
)

// DecodeBlocks decodes one vertex's contiguous run of 16-byte Morton-block
// entries into quadtree blocks, validating every structural invariant the
// query path relies on: cell levels within the grid, cell codes aligned to
// their level, blocks sorted and disjoint, colors inside the vertex's
// out-degree, and ratio bounds that are ordered and not NaN. It returns the
// blocks and the minimum LamLo across them (1 for an empty run, matching
// quadtree.Tree.MinLambda semantics).
//
// This is the demand-paging deserializer: a corrupted block page surfaces
// here as an error, never as a panic or a silently wrong tree.
func DecodeBlocks(data []byte, deg int) ([]quadtree.Block, float64, error) {
	if len(data)%entrySize != 0 {
		return nil, 0, fmt.Errorf("store: block run of %d bytes is not a multiple of %d", len(data), entrySize)
	}
	count := len(data) / entrySize
	blocks := make([]quadtree.Block, count)
	minLambda := math.Inf(1)
	le := binary.LittleEndian
	var prevEnd uint64
	for i := range blocks {
		e := data[i*entrySize : (i+1)*entrySize]
		b := &blocks[i]
		b.Cell.Code = geom.Code(le.Uint32(e[0:4]))
		b.Cell.Level = e[4]
		b.Color = int32(e[5])
		b.LamLo = math.Float32frombits(le.Uint32(e[8:12]))
		b.LamHi = math.Float32frombits(le.Uint32(e[12:16]))
		if b.Cell.Level > geom.MaxLevel {
			return nil, 0, fmt.Errorf("store: block %d has level %d beyond %d", i, b.Cell.Level, geom.MaxLevel)
		}
		if uint64(b.Cell.Code)%b.Cell.Span() != 0 {
			return nil, 0, fmt.Errorf("store: block %d code %x not aligned to level %d", i, uint64(b.Cell.Code), b.Cell.Level)
		}
		if int(b.Color) >= deg {
			return nil, 0, fmt.Errorf("store: block %d color %d exceeds out-degree %d", i, b.Color, deg)
		}
		if uint64(b.Cell.Code) < prevEnd {
			return nil, 0, fmt.Errorf("store: blocks not sorted/disjoint at %d", i)
		}
		prevEnd = uint64(b.Cell.End())
		lo, hi := float64(b.LamLo), float64(b.LamHi)
		if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
			return nil, 0, fmt.Errorf("store: block %d has invalid ratio bounds [%v, %v]", i, lo, hi)
		}
		if lo < minLambda {
			minLambda = lo
		}
	}
	if count == 0 {
		minLambda = 1
	}
	return blocks, minLambda, nil
}
