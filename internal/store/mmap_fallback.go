//go:build !linux && !darwin

package store

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform maps files natively;
// OpenMapped falls back to ReadAt elsewhere.
const mmapSupported = false

var errNoMmap = errors.New("store: memory mapping not supported on this platform")

// mmapFile is the portable stub: OpenMapped degrades to a plain
// ReadAt-backed store.
func mmapFile(*os.File, int64) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}
