package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"silc/internal/geom"
	"silc/internal/quadtree"
)

// Compression selects the block-page encoding of a paged image.
type Compression uint8

const (
	// CompressionNone is the fixed-width SILCPG1 layout: 16 bytes per
	// Morton block, pageSize/16 entries per page.
	CompressionNone Compression = iota
	// CompressionDelta is the SILCPG2 layout: per-vertex runs compressed as
	// delta+varint streams (Morton gaps, per-run color dictionaries,
	// float-bit deltas for the ratio bounds), byte-packed onto pages.
	CompressionDelta
)

// String returns the silcbuild -compress spelling of c.
func (c Compression) String() string {
	switch c {
	case CompressionNone:
		return "none"
	case CompressionDelta:
		return "delta"
	default:
		return fmt.Sprintf("Compression(%d)", uint8(c))
	}
}

// ParseCompression maps the -compress flag spellings back to a Compression.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "none":
		return CompressionNone, nil
	case "delta":
		return CompressionDelta, nil
	default:
		return 0, fmt.Errorf("store: unknown compression %q (want none or delta)", s)
	}
}

// The compressed run layout (one run per vertex with at least one block,
// byte-packed; DESIGN.md §11 documents it normatively):
//
//	uvarint  nblocks            cross-checked against the extent count
//	u8       ncolors            size of the per-run color dictionary (>=1)
//	u8 x ncolors                dictionary, first-appearance order, each < deg
//	per block:
//	  u8     header             bits 0..4 level, bit 5 gap follows,
//	                            bit 6 lamHi == lamLo, bit 7 color changes
//	  uvarint gap               if bit 5: Morton gap to the previous block's
//	                            end, aligned-encoded (value>>2t)<<4 | t
//	  uvarint colorIdx          if bit 7: new dictionary index
//	  uvarint zigzag(dLo)       float32-bit delta of lamLo vs the previous
//	                            block's lamLo (seeded with bits(1.0))
//	  uvarint dHi               if bit 6 clear: bits(lamHi) - bits(lamLo),
//	                            non-negative because 0 <= lamLo <= lamHi
//	                            orders their float bits
//
// Sorted Morton runs make the gap zero for adjacent blocks and a tiny
// aligned multiple of 4^k across holes; ratio bounds of nearby blocks share
// high float bits, so their bit deltas are short varints. The decoder
// reconstructs codes by accumulating gaps, which re-establishes the
// sorted/disjoint invariant for free; everything else is revalidated exactly
// like the fixed-width DecodeBlocks path.
const (
	runFlagGap     = 1 << 5
	runFlagHiEqLo  = 1 << 6
	runFlagColor   = 1 << 7
	runLevelMask   = runFlagGap - 1
	lamSeedBits    = 0x3F800000 // float32 bits of 1.0, the ratio floor
	gapShiftMax    = 15         // aligned-gap encoding: at most 15 code-pair shifts
	runMinPerBlock = 2          // header byte + >=1-byte lamLo delta
	runOverhead    = 3          // nblocks varint + ncolors + >=1 dictionary byte
)

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeGap aligned-encodes a positive Morton gap: gaps are sums of
// level-aligned cell spans, i.e. multiples of 4^t, so shifting the factored
// power of four into the low bits keeps the varint short.
func encodeGap(gap uint64) uint64 {
	t := uint64(bits.TrailingZeros64(gap)) / 2
	if t > gapShiftMax {
		t = gapShiftMax
	}
	return (gap>>(2*t))<<4 | t
}

// decodeGap inverts encodeGap. The shift cannot overflow into the guard
// range: callers bound the reconstructed code right after.
func decodeGap(enc uint64) (uint64, error) {
	t := enc & 0xF
	g := enc >> 4
	if g == 0 {
		return 0, fmt.Errorf("store: zero gap with gap flag set")
	}
	if bits.LeadingZeros64(g) < int(2*t) {
		return 0, fmt.Errorf("store: gap %d<<%d overflows", g, 2*t)
	}
	return g << (2 * t), nil
}

// CompressRun appends the delta+varint encoding of one vertex's sorted
// Morton-block run to dst. The encoder is deterministic, so re-serializing
// a decoded image reproduces it byte for byte. Runs must be non-empty,
// sorted, and carry colors in the disk format's 8-bit width — the same
// preconditions the fixed-width writer enforces.
func CompressRun(dst []byte, blocks []quadtree.Block) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("store: empty runs are not stored")
	}
	dst = binary.AppendUvarint(dst, uint64(len(blocks)))

	// Per-run color dictionary in first-appearance order: block colors become
	// small indexes, and consecutive blocks sharing a color cost nothing.
	var dictIdx [256]int16
	for i := range dictIdx {
		dictIdx[i] = -1
	}
	dict := make([]byte, 0, 16)
	for i := range blocks {
		c := blocks[i].Color
		if c < 0 || c > 255 {
			return nil, fmt.Errorf("store: block %d color %d exceeds the disk format's 8-bit width", i, c)
		}
		if dictIdx[c] < 0 {
			dictIdx[c] = int16(len(dict))
			dict = append(dict, byte(c))
		}
	}
	if len(dict) > 255 {
		return nil, fmt.Errorf("store: %d distinct colors overflow the dictionary byte", len(dict))
	}
	dst = append(dst, byte(len(dict)))
	dst = append(dst, dict...)

	var prevEnd uint64
	prevLo := int64(lamSeedBits)
	curIdx := int16(0)
	for i := range blocks {
		b := &blocks[i]
		if b.Cell.Level > geom.MaxLevel {
			return nil, fmt.Errorf("store: block %d has level %d beyond %d", i, b.Cell.Level, geom.MaxLevel)
		}
		code := uint64(b.Cell.Code)
		if code < prevEnd {
			return nil, fmt.Errorf("store: blocks not sorted/disjoint at %d", i)
		}
		gap := code - prevEnd
		prevEnd = uint64(b.Cell.End())

		loBits := int64(math.Float32bits(b.LamLo))
		hiBits := int64(math.Float32bits(b.LamHi))
		if hiBits < loBits {
			// Valid ratio bounds are non-negative and ordered, which orders
			// their float bits; anything else never came out of a build.
			return nil, fmt.Errorf("store: block %d has uncompressible ratio bounds [%v, %v]", i, b.LamLo, b.LamHi)
		}

		h := b.Cell.Level
		if gap != 0 {
			h |= runFlagGap
		}
		if hiBits == loBits {
			h |= runFlagHiEqLo
		}
		if dictIdx[b.Color] != curIdx {
			h |= runFlagColor
		}
		dst = append(dst, h)
		if gap != 0 {
			dst = binary.AppendUvarint(dst, encodeGap(gap))
		}
		if h&runFlagColor != 0 {
			curIdx = dictIdx[b.Color]
			dst = binary.AppendUvarint(dst, uint64(curIdx))
		}
		dst = binary.AppendUvarint(dst, zigzag(loBits-prevLo))
		prevLo = loBits
		if h&runFlagHiEqLo == 0 {
			dst = binary.AppendUvarint(dst, uint64(hiBits-loBits))
		}
	}
	return dst, nil
}

// DecompressRun decodes one vertex's compressed run, revalidating every
// structural invariant the query path relies on — exactly the checks of the
// fixed-width DecodeBlocks, plus the run must declare the expected block
// count and consume its bytes exactly. It returns the blocks and the
// minimum LamLo (1 for an empty run, matching Tree.MinLambda semantics).
//
// count comes from the validated extent table (counts[v] < n), and the
// length guard below bounds the allocation by len(data) — a corrupt page
// cannot demand more memory than its own size times a small constant.
func DecompressRun(data []byte, count, deg int) ([]quadtree.Block, float64, error) {
	if count == 0 {
		if len(data) != 0 {
			return nil, 0, fmt.Errorf("store: %d bytes for an empty run", len(data))
		}
		return nil, 1, nil
	}
	if count < 0 || len(data) < runMinPerBlock*count+runOverhead {
		return nil, 0, fmt.Errorf("store: run of %d bytes cannot hold %d blocks", len(data), count)
	}
	nb, at := binary.Uvarint(data)
	if at <= 0 || nb != uint64(count) {
		return nil, 0, fmt.Errorf("store: run declares %d blocks, extent records %d", nb, count)
	}
	ncolors := int(data[at])
	at++
	if ncolors == 0 || ncolors > deg || len(data)-at < ncolors {
		return nil, 0, fmt.Errorf("store: invalid color dictionary of %d entries for out-degree %d", ncolors, deg)
	}
	dict := data[at : at+ncolors]
	at += ncolors
	for _, c := range dict {
		if int(c) >= deg {
			return nil, 0, fmt.Errorf("store: dictionary color %d exceeds out-degree %d", c, deg)
		}
	}

	uvarint := func() (uint64, bool) {
		v, w := binary.Uvarint(data[at:])
		if w <= 0 {
			return 0, false
		}
		at += w
		return v, true
	}

	blocks := make([]quadtree.Block, count)
	minLambda := math.Inf(1)
	var prevEnd uint64
	prevLo := int64(lamSeedBits)
	curIdx := 0
	for i := range blocks {
		if at >= len(data) {
			return nil, 0, fmt.Errorf("store: run truncated at block %d", i)
		}
		h := data[at]
		at++
		b := &blocks[i]
		b.Cell.Level = h & runLevelMask
		if b.Cell.Level > geom.MaxLevel {
			return nil, 0, fmt.Errorf("store: block %d has level %d beyond %d", i, b.Cell.Level, geom.MaxLevel)
		}
		code := prevEnd
		if h&runFlagGap != 0 {
			enc, ok := uvarint()
			if !ok {
				return nil, 0, fmt.Errorf("store: block %d gap truncated", i)
			}
			gap, err := decodeGap(enc)
			if err != nil {
				return nil, 0, fmt.Errorf("store: block %d: %w", i, err)
			}
			if gap > 1<<(2*geom.MaxLevel) {
				return nil, 0, fmt.Errorf("store: block %d gap %d beyond the grid", i, gap)
			}
			code += gap
		}
		if code >= 1<<(2*geom.MaxLevel) {
			return nil, 0, fmt.Errorf("store: block %d code %x beyond the grid", i, code)
		}
		b.Cell.Code = geom.Code(code)
		if code%b.Cell.Span() != 0 {
			return nil, 0, fmt.Errorf("store: block %d code %x not aligned to level %d", i, code, b.Cell.Level)
		}
		prevEnd = uint64(b.Cell.End())
		if h&runFlagColor != 0 {
			idx, ok := uvarint()
			if !ok || idx >= uint64(ncolors) {
				return nil, 0, fmt.Errorf("store: block %d color index out of dictionary", i)
			}
			curIdx = int(idx)
		}
		b.Color = int32(dict[curIdx])
		dLo, ok := uvarint()
		if !ok {
			return nil, 0, fmt.Errorf("store: block %d ratio delta truncated", i)
		}
		loBits := prevLo + unzigzag(dLo)
		if loBits < 0 || loBits > math.MaxUint32 {
			return nil, 0, fmt.Errorf("store: block %d ratio bits out of range", i)
		}
		prevLo = loBits
		hiBits := loBits
		if h&runFlagHiEqLo == 0 {
			dHi, ok := uvarint()
			if !ok {
				return nil, 0, fmt.Errorf("store: block %d ratio span truncated", i)
			}
			hiBits = loBits + int64(dHi&math.MaxUint32) // mask keeps the sum in int64 range
			if dHi > math.MaxUint32 || hiBits > math.MaxUint32 {
				return nil, 0, fmt.Errorf("store: block %d ratio bits out of range", i)
			}
		}
		b.LamLo = math.Float32frombits(uint32(loBits))
		b.LamHi = math.Float32frombits(uint32(hiBits))
		lo, hi := float64(b.LamLo), float64(b.LamHi)
		if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
			return nil, 0, fmt.Errorf("store: block %d has invalid ratio bounds [%v, %v]", i, lo, hi)
		}
		if lo < minLambda {
			minLambda = lo
		}
	}
	if at != len(data) {
		return nil, 0, fmt.Errorf("store: %d trailing bytes after %d blocks", len(data)-at, count)
	}
	return blocks, minLambda, nil
}
