package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/diskio"
	"silc/internal/graph"
	"silc/internal/quadtree"
)

// OpenOptions configures Open.
type OpenOptions struct {
	// CacheFraction sizes the private buffer pool as a fraction of the
	// image's total pages (block pages + modeled adjacency pages); default
	// 0.05, the paper's setting.
	CacheFraction float64
	// CachePages, when positive, overrides CacheFraction with an absolute
	// page capacity. Tests use it to force heavy eviction.
	CachePages int
	// MissLatency is the modeled per-miss latency reported alongside the
	// measured read time (0 = diskio.DefaultMissLatency).
	MissLatency time.Duration
	// Pager shares an externally owned pool across several stores — the
	// sharded open gives every cell store the same Pager so the cache
	// fraction stays a property of the whole database. When set, PageBase
	// is this store's first block-page id in the shared namespace and no
	// private pool or tracker is created.
	Pager    *Pager
	PageBase diskio.PageID
	// Mapped, when non-nil, is the whole image held in (usually mmap'd)
	// memory: page frames become subslices of it — no ReadAt syscall, no
	// gather copy — while pool accounting, eviction feedback, and CRC
	// verification on first touch keep working unchanged. The slice must
	// cover the image and stay valid until Close.
	Mapped []byte
}

// Pager owns one shared buffer pool and routes eviction feedback to the
// store owning each page-id range, so evicting a page actually releases the
// frame and the decoded quadtrees built over it. Register every store
// (Open does it) before queries start; registration is not synchronized
// with concurrent touches.
type Pager struct {
	pool   *diskio.Pool
	stores []*Store
}

// NewPager returns a Pager over pool (which may be nil until SetPool).
func NewPager(pool *diskio.Pool) *Pager { return &Pager{pool: pool} }

// Pool returns the shared pool.
func (pg *Pager) Pool() *diskio.Pool { return pg.pool }

// SetPool installs the shared pool. The sharded open sizes the pool only
// after every cell store is open (capacity depends on their page counts);
// it must be called before the first query touches any registered store.
func (pg *Pager) SetPool(pool *diskio.Pool) { pg.pool = pool }

// Evict routes one evicted page id to the store owning it. Ids outside
// every store's block range (modeled adjacency pages) need no release.
func (pg *Pager) Evict(id diskio.PageID) {
	for _, s := range pg.stores {
		if id >= s.pageBase && id < s.pageBase+diskio.PageID(s.sb.blockPages) {
			s.dropPage(id - s.pageBase)
			return
		}
	}
}

// ResetReadStats zeroes the real read counters of every registered store,
// so a measurement window's actual reads line up with a pool-counter reset.
func (pg *Pager) ResetReadStats() {
	for _, s := range pg.stores {
		s.ResetReadStats()
	}
}

// ReadStats sums the real read counters across registered stores.
func (pg *Pager) ReadStats() ReadStats {
	var total ReadStats
	for _, s := range pg.stores {
		rs := s.ReadStats()
		total.Reads += rs.Reads
		total.Bytes += rs.Bytes
		total.Time += rs.Time
		total.CRCTime += rs.CRCTime
		total.BlocksDecoded += rs.BlocksDecoded
	}
	return total
}

// Stores returns the registered stores, in registration order (cell
// order for sharded images). Callers must treat the slice as read-only.
func (pg *Pager) Stores() []*Store { return pg.stores }

// ReadStats counts the actual disk reads a store performed.
type ReadStats struct {
	Reads int64
	Bytes int64
	// Time is the wall-clock time spent inside ReadAt — the measured I/O
	// time reported next to the modeled (misses × latency) one. For
	// mapped stores the subslice itself is free; the first-touch cost is
	// the checksum, reported separately as CRCTime.
	Time time.Duration
	// CRCTime is the wall-clock time spent checksum-verifying cold
	// pages — the dominant first-touch cost of the mmap page source.
	CRCTime time.Duration
	// BlocksDecoded counts quadtree blocks decoded on cold tree
	// materializations.
	BlocksDecoded int64
}

// Store is an open paged index image: the network and extent table resident
// (O(n+m)), the Morton-block pages demand-paged through the buffer pool.
// Every pool miss is an actual ReadAt; every eviction releases the page
// frame and the decoded per-vertex quadtrees overlapping it, so resident
// memory tracks the pool capacity rather than the index size.
//
// A Store is safe for unlimited concurrent readers. The residency invariant
// — a decoded tree is cached only while all its pages are pool-resident —
// is maintained exactly under serial access and self-healingly under
// concurrency (a stale tree is dropped or its pages re-read on the next
// touch).
type Store struct {
	ra       io.ReaderAt
	closer   io.Closer
	sb       *superblock
	g        *graph.Network
	counts   []uint32
	byteLens []uint32 // v2 images: per-vertex compressed run lengths
	mapped   []byte   // whole image in memory; nil for ReadAt-backed stores
	layout   *diskio.Layout
	pageCRCs []uint32
	pageBase diskio.PageID
	pager    *Pager
	tracker  *diskio.Tracker // private-pool opens only; nil under a shared Pager

	mu     sync.RWMutex
	frames map[diskio.PageID][]byte          // resident raw page bytes, keyed by local page
	trees  map[graph.VertexID]*quadtree.Tree // decoded trees over resident pages

	reads     atomic.Int64
	readBytes atomic.Int64
	readNanos atomic.Int64
	crcNanos  atomic.Int64
	decoded   atomic.Int64 // quadtree blocks decoded on cold loads
}

// emptyTree is shared by every vertex with no blocks (the degenerate
// single-vertex cell of a lenient build).
var emptyTree = &quadtree.Tree{MinLambda: 1}

// loadScratch carries the gather buffers of one cold tree load: the
// per-page frame pointers and the contiguous entry run handed to
// DecodeBlocks. Both are scratch — DecodeBlocks copies values out — so they
// recycle through a pool instead of being reallocated per cold load.
type loadScratch struct {
	bufs [][]byte
	run  []byte
}

var loadPool = sync.Pool{New: func() any { return new(loadScratch) }}

// Open parses a paged store image from ra, whose total size must be given
// (files: Stat; embedded sections: the section length). Both the
// fixed-width SILCPG1 and the compressed SILCPG2 layouts are accepted — the
// magic decides. The network, extent table, and page CRC table load
// eagerly; block pages are read only on demand.
func Open(ra io.ReaderAt, size int64, opts OpenOptions) (*Store, error) {
	magic, err := readSection(ra, 0, 8)
	if err != nil {
		return nil, fmt.Errorf("store: reading superblock: %w", err)
	}
	var sb *superblock
	switch string(magic) {
	case Magic2String:
		head, err := readSection(ra, 0, superblockSize2)
		if err != nil {
			return nil, fmt.Errorf("store: reading superblock: %w", err)
		}
		sb, err = decodeSuperblock2(head, size)
		if err != nil {
			return nil, err
		}
	default: // v1 path also produces the canonical bad-magic error
		head, err := readSection(ra, 0, superblockSize)
		if err != nil {
			return nil, fmt.Errorf("store: reading superblock: %w", err)
		}
		sb, err = decodeSuperblock(head, size)
		if err != nil {
			return nil, err
		}
	}
	if opts.Mapped != nil && int64(len(opts.Mapped)) < sb.imageSize {
		return nil, fmt.Errorf("store: mapped image of %d bytes shorter than recorded size %d", len(opts.Mapped), sb.imageSize)
	}
	netBuf, err := readSection(ra, sb.netOff, NetworkSectionSize(sb.n, sb.m))
	if err != nil {
		return nil, fmt.Errorf("store: reading network section: %w", err)
	}
	g, err := DecodeNetworkSection(netBuf, sb.n, sb.m)
	if err != nil {
		return nil, err
	}
	var counts, byteLens []uint32
	if sb.version == 2 {
		extBuf, err := readSection(ra, sb.extentOff, extent2SectionSize(sb.n))
		if err != nil {
			return nil, fmt.Errorf("store: reading extent section: %w", err)
		}
		counts, byteLens, err = decodeExtent2Section(extBuf, sb.n, sb.totalBlocks, sb.compBytes)
		if err != nil {
			return nil, err
		}
	} else {
		extBuf, err := readSection(ra, sb.extentOff, extentSectionSize(sb.n))
		if err != nil {
			return nil, fmt.Errorf("store: reading extent section: %w", err)
		}
		counts, err = decodeExtentSection(extBuf, sb.n, sb.totalBlocks)
		if err != nil {
			return nil, err
		}
	}
	tabBuf, err := readSection(ra, sb.crcTabOff, sb.blockPages*4+4)
	if err != nil {
		return nil, fmt.Errorf("store: reading page CRC table: %w", err)
	}
	if stored, computed := leU32(tabBuf[sb.blockPages*4:]), crc32.ChecksumIEEE(tabBuf[:sb.blockPages*4]); stored != computed {
		return nil, fmt.Errorf("store: page CRC table checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	pageCRCs := make([]uint32, sb.blockPages)
	for i := range pageCRCs {
		pageCRCs[i] = leU32(tabBuf[i*4:])
	}
	// The page layout maps each vertex's entry run to its pages: 16-byte
	// entries for v1, single bytes for v2's byte-packed compressed runs —
	// OwnerPages/OwnerRange and the eviction feedback work identically.
	var layout *diskio.Layout
	if sb.version == 2 {
		intLens := make([]int, sb.n)
		for v, l := range byteLens {
			intLens[v] = int(l)
		}
		layout = diskio.NewLayout(intLens, 1, sb.pageSize)
	} else {
		intCounts := make([]int, sb.n)
		for v, c := range counts {
			intCounts[v] = int(c)
		}
		layout = diskio.NewLayout(intCounts, entrySize, sb.pageSize)
	}
	if layout.TotalPages() != sb.blockPages {
		return nil, fmt.Errorf("store: layout spans %d pages, superblock records %d", layout.TotalPages(), sb.blockPages)
	}

	s := &Store{
		ra:       ra,
		sb:       sb,
		g:        g,
		counts:   counts,
		byteLens: byteLens,
		mapped:   opts.Mapped,
		layout:   layout,
		pageCRCs: pageCRCs,
		frames:   make(map[diskio.PageID][]byte),
		trees:    make(map[graph.VertexID]*quadtree.Tree),
	}
	if opts.Pager != nil {
		s.pager = opts.Pager
		s.pageBase = opts.PageBase
	} else {
		degrees := make([]int, sb.n)
		for v := 0; v < sb.n; v++ {
			degrees[v] = g.Degree(graph.VertexID(v))
		}
		adjPages := diskio.NewLayout(degrees, diskio.AdjacencyEntrySize, diskio.DefaultPageSize).TotalPages()
		capacity := opts.CachePages
		if capacity <= 0 {
			fraction := opts.CacheFraction
			if fraction <= 0 {
				fraction = 0.05
			}
			capacity = int(float64(sb.blockPages+adjPages) * fraction)
		}
		pool := diskio.NewPool(capacity, diskio.DefaultPoolShards)
		s.pager = NewPager(pool)
		s.tracker = diskio.NewStoreTracker(sb.blockPages, degrees, pool, opts.MissLatency)
		s.tracker.SetEvictionHandler(s.pager.Evict)
	}
	s.pager.stores = append(s.pager.stores, s)
	return s, nil
}

// OpenFile opens a paged store file, keeping the file handle for the
// store's lifetime; Close releases it.
func OpenFile(path string, opts OpenOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := Open(f, info.Size(), opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// Close releases the underlying file when the store owns one.
func (s *Store) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// Graph returns the network rebuilt from the image's network section.
func (s *Store) Graph() *graph.Network { return s.g }

// Radius returns the recorded proximity bound (0 = unbounded).
func (s *Store) Radius() float64 { return s.sb.radius }

// Lenient reports whether the index was built with AllowUnreachable.
func (s *Store) Lenient() bool { return s.sb.lenient }

// Compression returns the block-page encoding of the opened image.
func (s *Store) Compression() Compression {
	if s.sb.version == 2 {
		return CompressionDelta
	}
	return CompressionNone
}

// Mapped reports whether page frames alias an in-memory image instead of
// being read through ReadAt.
func (s *Store) Mapped() bool { return s.mapped != nil }

// Tracker returns the store's private tracker (nil when the store shares a
// Pager owned by someone else).
func (s *Store) Tracker() *diskio.Tracker { return s.tracker }

// Pager returns the pager routing this store's evictions.
func (s *Store) Pager() *Pager { return s.pager }

// BlockPages returns the number of demand-paged block pages.
func (s *Store) BlockPages() int64 { return s.sb.blockPages }

// BlockStats returns the total, minimum, and maximum per-vertex block
// counts recorded in the extent table.
func (s *Store) BlockStats() (total int64, minBlocks, maxBlocks int) {
	minBlocks = int(^uint(0) >> 1)
	for _, c := range s.counts {
		if int(c) < minBlocks {
			minBlocks = int(c)
		}
		if int(c) > maxBlocks {
			maxBlocks = int(c)
		}
		total += int64(c)
	}
	return total, minBlocks, maxBlocks
}

// BlockCount implements core.TreeSource.
func (s *Store) BlockCount(v graph.VertexID) int { return int(s.counts[v]) }

// ResidentPages returns the number of page frames currently held in
// memory — bounded by the pool capacity (plus transient staleness under
// concurrency).
func (s *Store) ResidentPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.frames)
}

// ResidentTrees returns the number of decoded per-vertex quadtrees
// currently cached.
func (s *Store) ResidentTrees() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.trees)
}

// ResetReadStats zeroes the actual read counters (cache contents stay).
func (s *Store) ResetReadStats() {
	s.reads.Store(0)
	s.readBytes.Store(0)
	s.readNanos.Store(0)
	s.crcNanos.Store(0)
	s.decoded.Store(0)
}

// ReadStats returns the actual read counters.
func (s *Store) ReadStats() ReadStats {
	return ReadStats{
		Reads:         s.reads.Load(),
		Bytes:         s.readBytes.Load(),
		Time:          time.Duration(s.readNanos.Load()),
		CRCTime:       time.Duration(s.crcNanos.Load()),
		BlocksDecoded: s.decoded.Load(),
	}
}

// Tree implements core.TreeSource: it returns v's shortest-path quadtree,
// materializing it from disk on first touch. Page traffic is charged to the
// shared pool and to ioStats (nil = untracked); misses perform real reads.
func (s *Store) Tree(ioStats *diskio.Stats, v graph.VertexID) (*quadtree.Tree, error) {
	if s.counts[v] == 0 {
		return emptyTree, nil
	}
	first, last, _ := s.layout.OwnerPages(int(v))
	s.mu.RLock()
	t := s.trees[v]
	s.mu.RUnlock()
	if t != nil {
		// Cached: touch the pages for LRU recency and accounting. A miss
		// here means another load (or an adjacency touch) evicted one of
		// our pages moments ago; the touch re-reads it and heals.
		for p := first; p <= last; p++ {
			if _, err := s.touch(p, ioStats, false); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	// Load: touch every page of v's run, reading missed ones, then decode —
	// straight out of the mapping when one is attached (the run is
	// contiguous there, so no gather copy happens), otherwise gathering the
	// per-page frames into pooled scratch first.
	var blocks []quadtree.Block
	var minLambda float64
	var err error
	if s.mapped != nil {
		for p := first; p <= last; p++ {
			if _, err := s.touch(p, ioStats, false); err != nil {
				return nil, err
			}
		}
		lo, hi := s.layout.EntryRange(int(v))
		w := s.entryWidth()
		run := s.mapped[s.sb.blockOff+lo*w : s.sb.blockOff+hi*w]
		blocks, minLambda, err = s.decodeRun(run, v)
	} else {
		sc := loadPool.Get().(*loadScratch)
		np := int(last - first + 1)
		if cap(sc.bufs) < np {
			sc.bufs = make([][]byte, np)
		}
		bufs := sc.bufs[:np]
		for p := first; p <= last; p++ {
			b, err := s.touch(p, ioStats, true)
			if err != nil {
				clear(bufs)
				loadPool.Put(sc)
				return nil, err
			}
			bufs[p-first] = b
		}
		lo, hi := s.layout.EntryRange(int(v))
		epp := int64(s.layout.EntriesPerPage())
		w := s.entryWidth()
		run := sc.run[:0]
		for i := lo; i < hi; {
			page := i / epp
			end := (page + 1) * epp
			if end > hi {
				end = hi
			}
			buf := bufs[page-int64(first)]
			run = append(run, buf[(i%epp)*w:(i%epp+end-i)*w]...)
			i = end
		}
		blocks, minLambda, err = s.decodeRun(run, v)
		sc.run = run // keep the grown capacity for the next load
		clear(bufs)  // don't pin evicted frames from inside the pool
		loadPool.Put(sc)
	}
	if err != nil {
		return nil, fmt.Errorf("store: vertex %d: %w", v, err)
	}
	s.decoded.Add(int64(s.counts[v]))
	if ioStats != nil {
		ioStats.BlocksDecoded += int64(s.counts[v])
	}
	t = &quadtree.Tree{Blocks: blocks, MinLambda: minLambda}
	t.Seal()
	s.mu.Lock()
	s.trees[v] = t
	s.mu.Unlock()
	return t, nil
}

// touch charges local page p to the pool, processes eviction feedback, and
// — on a miss, or when the caller needs the bytes — ensures the page frame
// is resident, reading it from disk as required. Returns the frame bytes
// when want is true.
func (s *Store) touch(p diskio.PageID, ioStats *diskio.Stats, want bool) ([]byte, error) {
	hit, evicted, hasEvict := s.pager.pool.TouchEvict(s.pageBase+p, ioStats)
	if hasEvict {
		s.pager.Evict(evicted)
	}
	if hit {
		if !want {
			return nil, nil
		}
		s.mu.RLock()
		b := s.frames[p]
		s.mu.RUnlock()
		if b != nil {
			return b, nil
		}
		// Frame lost to a concurrent eviction between the pool touch and
		// here — fall through to a real read.
	}
	b, err := s.readPage(p)
	if err != nil {
		return nil, err
	}
	if ioStats != nil {
		ioStats.Reads++
	}
	s.mu.Lock()
	s.frames[p] = b
	s.mu.Unlock()
	if !want {
		return nil, nil
	}
	return b, nil
}

// readPage materializes one block page: an actual disk read for
// ReadAt-backed stores, a checksum-verified subslice of the mapping for
// mapped ones. Either way the page counts as one read in ReadStats — for a
// mapping, "read" means first-touch verification, the moment the page
// faults in.
func (s *Store) readPage(p diskio.PageID) ([]byte, error) {
	off := s.sb.blockOff + int64(p)*int64(s.sb.pageSize)
	var buf []byte
	start := time.Now()
	if s.mapped != nil {
		buf = s.mapped[off : off+int64(s.sb.pageSize)]
	} else {
		buf = make([]byte, s.sb.pageSize)
		if _, err := s.ra.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("store: reading block page %d: %w", p, err)
		}
	}
	s.readNanos.Add(time.Since(start).Nanoseconds())
	crcStart := time.Now()
	sum := crc32.ChecksumIEEE(buf)
	s.crcNanos.Add(time.Since(crcStart).Nanoseconds())
	s.reads.Add(1)
	s.readBytes.Add(int64(s.sb.pageSize))
	if sum != s.pageCRCs[p] {
		return nil, fmt.Errorf("store: block page %d checksum mismatch: stored %08x computed %08x", p, s.pageCRCs[p], sum)
	}
	return buf, nil
}

// entryWidth returns the byte width of one layout entry: 16-byte fixed
// entries for v1 images, single bytes for v2's compressed runs.
func (s *Store) entryWidth() int64 {
	if s.sb.version == 2 {
		return 1
	}
	return entrySize
}

// decodeRun decodes one vertex's gathered (or mapped) run bytes through the
// image's codec.
func (s *Store) decodeRun(run []byte, v graph.VertexID) ([]quadtree.Block, float64, error) {
	if s.sb.version == 2 {
		return DecompressRun(run, int(s.counts[v]), s.g.Degree(v))
	}
	return DecodeBlocks(run, s.g.Degree(v))
}

// dropPage releases the frame of local page p and every decoded tree whose
// run overlaps it — the real-memory counterpart of a pool eviction.
func (s *Store) dropPage(p diskio.PageID) {
	lo, hi := s.layout.OwnerRange(p)
	s.mu.Lock()
	delete(s.frames, p)
	for v := lo; v < hi; v++ {
		delete(s.trees, graph.VertexID(v))
	}
	s.mu.Unlock()
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
