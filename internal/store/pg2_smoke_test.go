package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"silc/internal/graph"
	"silc/internal/quadtree"
	"silc/internal/store"
)

// TestPG2StoreRoundTrip writes a CompressionDelta image, opens it through
// every page source (ReadAt, in-memory mapping, OpenMapped on a real file),
// and checks each decoded tree is bit-identical to the v1 decode.
func TestPG2StoreRoundTrip(t *testing.T) {
	g, ix := buildTestIndex(t, 16, 16)
	img1 := writeImage(t, ix)
	ref, err := store.Open(bytes.NewReader(img1), int64(len(img1)), store.OpenOptions{CacheFraction: 1})
	if err != nil {
		t.Fatalf("open v1: %v", err)
	}
	treeFor := func(v graph.VertexID) *quadtree.Tree {
		tr, err := ref.Tree(nil, v)
		if err != nil {
			t.Fatalf("ref tree %d: %v", v, err)
		}
		return tr
	}
	var buf bytes.Buffer
	n2, err := store.Write(&buf, store.Source{
		Graph: g, Radius: ref.Radius(), Lenient: ref.Lenient(),
		Compression: store.CompressionDelta, Tree: treeFor,
	})
	if err != nil {
		t.Fatalf("write v2: %v", err)
	}
	if ratio := float64(len(img1)) / float64(n2); ratio < 1.5 {
		t.Errorf("v2 image %d bytes vs v1 %d: ratio %.2f", n2, len(img1), ratio)
	} else {
		t.Logf("v1 %d bytes, v2 %d bytes, ratio %.2fx", len(img1), n2, ratio)
	}
	img2 := buf.Bytes()

	check := func(t *testing.T, s *store.Store) {
		t.Helper()
		if s.Compression() != store.CompressionDelta {
			t.Fatalf("compression %v, want delta", s.Compression())
		}
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			got, err := s.Tree(nil, vid)
			if err != nil {
				t.Fatalf("tree %d: %v", v, err)
			}
			want := treeFor(vid)
			if len(got.Blocks) != len(want.Blocks) {
				t.Fatalf("vertex %d: %d blocks, want %d", v, len(got.Blocks), len(want.Blocks))
			}
			for i := range got.Blocks {
				if got.Blocks[i] != want.Blocks[i] {
					t.Fatalf("vertex %d block %d: %+v want %+v", v, i, got.Blocks[i], want.Blocks[i])
				}
			}
			if got.MinLambda != want.MinLambda {
				t.Fatalf("vertex %d minLambda %v want %v", v, got.MinLambda, want.MinLambda)
			}
		}
	}

	t.Run("readat", func(t *testing.T) {
		s, err := store.Open(bytes.NewReader(img2), int64(len(img2)), store.OpenOptions{CacheFraction: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s)
	})
	t.Run("bytes", func(t *testing.T) {
		s, err := store.OpenBytes(img2, store.OpenOptions{CacheFraction: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Mapped() {
			t.Fatal("OpenBytes store not mapped")
		}
		check(t, s)
		if rs := s.ReadStats(); rs.Reads == 0 {
			t.Error("mapped store recorded no first-touch reads")
		}
	})
	t.Run("mmap", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "grid.silcpg2")
		if err := os.WriteFile(path, img2, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := store.OpenMapped(path, store.OpenOptions{CacheFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s)
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}
