package store_test

import (
	"bytes"
	"math"
	"testing"

	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/quadtree"
	"silc/internal/store"
)

// mustCell builds a level-aligned quadtree cell.
func mustCell(t *testing.T, code uint64, level uint8) geom.Cell {
	t.Helper()
	c := geom.Cell{Code: geom.Code(code), Level: level}
	if code%c.Span() != 0 {
		t.Fatalf("cell %d not aligned to level %d", code, level)
	}
	return c
}

// TestCompressRunRoundTrip compresses every vertex run of a real index and
// checks the decoded blocks are bit-identical — codes, levels, colors, and
// the exact float32 ratio bounds — and that the compression actually pays:
// the delta+varint streams must undercut the 16-byte fixed entries by at
// least 2x in aggregate, the tentpole's storage claim at codec level.
func TestCompressRunRoundTrip(t *testing.T) {
	g, ix := buildTestIndex(t, 16, 16)
	img := writeImage(t, ix)
	st, err := store.Open(bytes.NewReader(img), int64(len(img)), store.OpenOptions{CacheFraction: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var rawBytes, compBytes int64
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		tree, err := st.Tree(nil, vid)
		if err != nil {
			t.Fatalf("tree %d: %v", v, err)
		}
		if len(tree.Blocks) == 0 {
			continue
		}
		enc, err := store.CompressRun(nil, tree.Blocks)
		if err != nil {
			t.Fatalf("compress %d: %v", v, err)
		}
		rawBytes += int64(len(tree.Blocks)) * quadtree.EncodedSizeBytes
		compBytes += int64(len(enc))
		dec, minLambda, err := store.DecompressRun(enc, len(tree.Blocks), g.Degree(vid))
		if err != nil {
			t.Fatalf("decompress %d: %v", v, err)
		}
		if len(dec) != len(tree.Blocks) {
			t.Fatalf("vertex %d: %d blocks decoded, want %d", v, len(dec), len(tree.Blocks))
		}
		for i := range dec {
			a, b := &dec[i], &tree.Blocks[i]
			if a.Cell != b.Cell || a.Color != b.Color ||
				math.Float32bits(a.LamLo) != math.Float32bits(b.LamLo) ||
				math.Float32bits(a.LamHi) != math.Float32bits(b.LamHi) {
				t.Fatalf("vertex %d block %d: decoded %+v, want %+v", v, i, *a, *b)
			}
		}
		if minLambda != tree.MinLambda {
			t.Fatalf("vertex %d: MinLambda %v, want %v", v, minLambda, tree.MinLambda)
		}
	}
	ratio := float64(rawBytes) / float64(compBytes)
	t.Logf("block streams: %d raw -> %d compressed bytes (%.2fx, %.1f bytes/block)",
		rawBytes, compBytes, ratio, float64(compBytes)*16/float64(rawBytes))
	if ratio < 2 {
		t.Fatalf("codec compresses blocks only %.2fx, tentpole requires >=2x", ratio)
	}
}

// TestDecompressRunRejectsCorruption mangles valid runs every which way and
// checks the decoder reports an error rather than panicking or fabricating
// blocks, mirroring TestDecodeBlocksRejectsCorruption for the v2 codec.
func TestDecompressRunRejectsCorruption(t *testing.T) {
	blocks := []quadtree.Block{
		{Cell: mustCell(t, 0, 14), Color: 0, LamLo: 1.0, LamHi: 1.25},
		{Cell: mustCell(t, 16, 14), Color: 1, LamLo: 1.1, LamHi: 1.1},
		{Cell: mustCell(t, 64, 13), Color: 0, LamLo: 1.3, LamHi: 2.5},
	}
	enc, err := store.CompressRun(nil, blocks)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	const deg = 2
	if _, _, err := store.DecompressRun(enc, len(blocks), deg); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}

	cases := []struct {
		name  string
		data  []byte
		count int
		deg   int
	}{
		{"truncated", enc[:len(enc)-1], 3, deg},
		{"trailing garbage", append(append([]byte{}, enc...), 0), 3, deg},
		{"count mismatch", enc, 2, deg},
		{"count exceeds data", []byte{1, 2, 3}, 1 << 20, deg},
		{"negative count", enc, -1, deg},
		{"empty run with data", enc, 0, deg},
		{"zero dictionary", append([]byte{3, 0}, enc[2:]...), 3, deg},
		{"color beyond degree", enc, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := store.DecompressRun(tc.data, tc.count, tc.deg); err == nil {
				t.Fatal("corrupted run decoded without error")
			}
		})
	}

	// Every single-byte mangle must either error out or still decode into a
	// structurally valid run — never panic, never overrun.
	for i := range enc {
		for _, delta := range []byte{0x01, 0x80, 0xFF} {
			bad := append([]byte{}, enc...)
			bad[i] ^= delta
			dec, _, err := store.DecompressRun(bad, len(blocks), deg)
			if err != nil {
				continue
			}
			var prevEnd uint64
			for j := range dec {
				b := &dec[j]
				if b.Cell.Level > 16 || uint64(b.Cell.Code) < prevEnd || int(b.Color) >= deg {
					t.Fatalf("mangle at %d: invariant-breaking block %d: %+v", i, j, *b)
				}
				prevEnd = uint64(b.Cell.End())
			}
		}
	}
}

// TestCompressRunRejectsBadInput covers the writer-side guards.
func TestCompressRunRejectsBadInput(t *testing.T) {
	if _, err := store.CompressRun(nil, nil); err == nil {
		t.Fatal("empty run compressed without error")
	}
	unsorted := []quadtree.Block{
		{Cell: mustCell(t, 64, 13), LamLo: 1, LamHi: 1},
		{Cell: mustCell(t, 0, 14), LamLo: 1, LamHi: 1},
	}
	if _, err := store.CompressRun(nil, unsorted); err == nil {
		t.Fatal("unsorted run compressed without error")
	}
	wide := []quadtree.Block{{Cell: mustCell(t, 0, 14), Color: 300, LamLo: 1, LamHi: 1}}
	if _, err := store.CompressRun(nil, wide); err == nil {
		t.Fatal("9-bit color compressed without error")
	}
}
