package store

import (
	"bytes"
	"io"
	"os"
)

// OpenBytes opens an image held wholly in memory without copying it: page
// frames alias data, cold loads decode straight out of it, and the pool
// still accounts every touch (a "read" is the first-touch CRC
// verification). data must stay valid and immutable for the store's
// lifetime. The sharded open uses it to hand each cell its slice of one
// file-wide mapping.
func OpenBytes(data []byte, opts OpenOptions) (*Store, error) {
	opts.Mapped = data
	return Open(bytes.NewReader(data), int64(len(data)), opts)
}

// MapFile opens path through a read-only memory mapping and returns the
// mapped bytes plus the closer that unmaps and releases the file. It fails
// on platforms without mmap support (and on empty files); callers fall back
// to ReadAt-backed opens then.
func MapFile(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	data, unmap, err := mmapFile(f, info.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return data, &mappedCloser{f: f, unmap: unmap}, nil
}

// OpenMapped opens a paged store file through a read-only memory mapping:
// warm pages decode straight from the mapping with no syscall and no
// gather-buffer copy. On platforms without mmap support (or when the map
// fails) it degrades to a plain ReadAt-backed OpenFile — same semantics,
// page reads go through syscalls again. Close unmaps and releases the file.
func OpenMapped(path string, opts OpenOptions) (*Store, error) {
	data, closer, err := MapFile(path)
	if err != nil {
		return OpenFile(path, opts)
	}
	opts.Mapped = data
	s, err := Open(bytes.NewReader(data), int64(len(data)), opts)
	if err != nil {
		closer.Close()
		return nil, err
	}
	s.closer = closer
	return s, nil
}

// mappedCloser unmaps then closes the file behind a mapped store.
type mappedCloser struct {
	f     *os.File
	unmap func() error
}

func (mc *mappedCloser) Close() error {
	err := mc.unmap()
	if cerr := mc.f.Close(); err == nil {
		err = cerr
	}
	return err
}
