// Package geom provides the planar geometry primitives used throughout the
// library: points in the unit square, axis-aligned rectangles, and the
// Morton (Z-order) space-filling curve machinery on which shortest-path
// quadtrees are built.
//
// All spatial data is quantized onto a 2^GridBits x 2^GridBits integer grid.
// A Morton code interleaves the bits of the (x, y) cell coordinates so that
// every quadtree cell corresponds to a contiguous range of codes, which lets
// a quadtree be stored as a sorted slice of (code, level) pairs.
package geom

import (
	"fmt"
	"math"
)

// GridBits is the number of bits per axis of the Morton grid. The embedding
// space is the unit square; a cell has side 2^-GridBits.
const GridBits = 16

// GridSize is the number of cells along one axis.
const GridSize = 1 << GridBits

// MaxLevel is the deepest quadtree level; level 0 is the root cell covering
// the whole unit square, level MaxLevel is a single grid cell.
const MaxLevel = GridBits

// Point is a location in the unit square [0,1) x [0,1).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Cell returns the integer grid cell containing p. Points outside the unit
// square are clamped to the boundary cells.
func (p Point) Cell() (ix, iy uint32) {
	ix = clampCell(p.X)
	iy = clampCell(p.Y)
	return ix, iy
}

// Code returns the Morton code of the grid cell containing p.
func (p Point) Code() Code {
	ix, iy := p.Cell()
	return Encode(ix, iy)
}

func clampCell(v float64) uint32 {
	c := int64(v * GridSize)
	if c < 0 {
		c = 0
	}
	if c >= GridSize {
		c = GridSize - 1
	}
	return uint32(c)
}

// Rect is a closed axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitRect covers the whole embedding space.
func UnitRect() Rect { return Rect{0, 0, 1, 1} }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero if p is inside r).
func (r Rect) MinDist(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// Code is a Morton (Z-order) code: the interleaved bits of a grid cell's
// (x, y) coordinates, y bits in the odd positions. Codes occupy the low
// 2*GridBits bits.
type Code uint64

// Encode interleaves the low GridBits bits of x and y into a Morton code.
func Encode(x, y uint32) Code {
	return Code(spread(x) | spread(y)<<1)
}

// Decode splits a Morton code back into grid coordinates.
func (c Code) Decode() (x, y uint32) {
	return compact(uint64(c)), compact(uint64(c) >> 1)
}

// spread inserts a zero bit between each of the low 16 bits of v.
func spread(v uint32) uint64 {
	x := uint64(v) & 0xffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact removes the zero bits inserted by spread.
func compact(v uint64) uint32 {
	x := v & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// Cell identifies one quadtree cell: a Morton-code prefix. Code holds the
// code of the cell's minimum corner; Level is the quadtree depth (0 = root).
// The cell covers codes [Code, Code + Span(Level)).
type Cell struct {
	Code  Code
	Level uint8
}

// RootCell covers the entire grid.
func RootCell() Cell { return Cell{Code: 0, Level: 0} }

// Span returns the number of Morton codes covered by a cell at the given
// level.
func Span(level uint8) uint64 {
	return 1 << (2 * (MaxLevel - uint(level)))
}

// Span returns the number of Morton codes covered by c.
func (c Cell) Span() uint64 { return Span(c.Level) }

// End returns the first code after the cell's range.
func (c Cell) End() Code { return c.Code + Code(c.Span()) }

// ContainsCode reports whether code lies inside c's code range.
func (c Cell) ContainsCode(code Code) bool {
	return code >= c.Code && code < c.End()
}

// Child returns the i-th (0..3, Morton order) child of c.
func (c Cell) Child(i int) Cell {
	if c.Level >= MaxLevel {
		panic("geom: Child on a leaf-level cell")
	}
	child := Cell{Level: c.Level + 1}
	child.Code = c.Code + Code(uint64(i))*Code(child.Span())
	return child
}

// Rect returns the cell's rectangle in unit-square coordinates.
func (c Cell) Rect() Rect {
	x, y := c.Code.Decode()
	side := 1.0 / float64(uint64(1)<<c.Level)
	fx := float64(x) / GridSize
	fy := float64(y) / GridSize
	return Rect{MinX: fx, MinY: fy, MaxX: fx + side, MaxY: fy + side}
}

// String renders a cell as "level:code" for diagnostics.
func (c Cell) String() string {
	return fmt.Sprintf("L%d:%x", c.Level, uint64(c.Code))
}
