package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= GridSize - 1
		y &= GridSize - 1
		gx, gy := Encode(x, y).Decode()
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMonotoneInQuadrants(t *testing.T) {
	// The four children of the root must partition the code space in
	// Morton order: (0,0), (1,0), (0,1), (1,1) quadrants.
	half := uint32(GridSize / 2)
	quadrants := [][2]uint32{{0, 0}, {half, 0}, {0, half}, {half, half}}
	root := RootCell()
	for i, q := range quadrants {
		child := root.Child(i)
		code := Encode(q[0], q[1])
		if code != child.Code {
			t.Errorf("quadrant %d: Encode(%d,%d)=%x, want child code %x",
				i, q[0], q[1], uint64(code), uint64(child.Code))
		}
	}
}

func TestCellContainsOwnPoints(t *testing.T) {
	f := func(x, y uint32, level uint8) bool {
		x &= GridSize - 1
		y &= GridSize - 1
		level %= MaxLevel + 1
		code := Encode(x, y)
		// The ancestor cell of `code` at `level` is obtained by masking
		// off the low bits.
		span := Span(level)
		cell := Cell{Code: code &^ Code(span-1), Level: level}
		return cell.ContainsCode(code) && cell.Rect().Contains(Point{
			X: (float64(x) + 0.5) / GridSize,
			Y: (float64(y) + 0.5) / GridSize,
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	cell := Cell{Code: Encode(1234, 5678) &^ Code(Span(5)-1), Level: 5}
	var total uint64
	prevEnd := cell.Code
	for i := 0; i < 4; i++ {
		ch := cell.Child(i)
		if ch.Code != prevEnd {
			t.Fatalf("child %d starts at %x, want %x", i, uint64(ch.Code), uint64(prevEnd))
		}
		prevEnd = ch.End()
		total += ch.Span()
	}
	if total != cell.Span() {
		t.Fatalf("children cover %d codes, parent covers %d", total, cell.Span())
	}
	if prevEnd != cell.End() {
		t.Fatalf("children end at %x, parent ends at %x", uint64(prevEnd), uint64(cell.End()))
	}
}

func TestChildRects(t *testing.T) {
	parent := RootCell()
	pr := parent.Rect()
	area := 0.0
	for i := 0; i < 4; i++ {
		cr := parent.Child(i).Rect()
		if !pr.Intersects(cr) {
			t.Fatalf("child %d rect %v outside parent %v", i, cr, pr)
		}
		area += (cr.MaxX - cr.MinX) * (cr.MaxY - cr.MinY)
	}
	if math.Abs(area-1.0) > 1e-12 {
		t.Fatalf("child rects cover area %v, want 1.0", area)
	}
}

func TestPointCodeMatchesCellRect(t *testing.T) {
	f := func(xf, yf float64) bool {
		p := Point{X: frac(xf), Y: frac(yf)}
		code := p.Code()
		leaf := Cell{Code: code, Level: MaxLevel}
		return leaf.Rect().Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func frac(v float64) float64 {
	v = math.Abs(v)
	v -= math.Floor(v)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return v
}

func TestRectMinMaxDist(t *testing.T) {
	r := Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{0.3, 0.3}, 0, math.Hypot(0.1, 0.1)},                    // inside
		{Point{0.0, 0.3}, 0.2, math.Hypot(0.4, 0.1)},                  // left of
		{Point{0.5, 0.5}, math.Hypot(0.1, 0.1), math.Hypot(0.3, 0.3)}, // above right
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v)=%v want %v", c.p, got, c.min)
		}
		if got := r.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v)=%v want %v", c.p, got, c.max)
		}
	}
}

func TestRectMinDistLowerBoundsPointDist(t *testing.T) {
	// Property: for any point q of the rect, MinDist(p) <= p.Dist(q) <= MaxDist(p).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := randRect(rng)
		p := Point{rng.Float64() * 2, rng.Float64() * 2}
		q := Point{
			X: r.MinX + rng.Float64()*(r.MaxX-r.MinX),
			Y: r.MinY + rng.Float64()*(r.MaxY-r.MinY),
		}
		d := p.Dist(q)
		if lo := r.MinDist(p); lo > d+1e-12 {
			t.Fatalf("MinDist %v > dist %v (p=%v q=%v r=%v)", lo, d, p, q, r)
		}
		if hi := r.MaxDist(p); hi < d-1e-12 {
			t.Fatalf("MaxDist %v < dist %v (p=%v q=%v r=%v)", hi, d, p, q, r)
		}
	}
}

func randRect(rng *rand.Rand) Rect {
	x1, x2 := rng.Float64(), rng.Float64()
	y1, y2 := rng.Float64(), rng.Float64()
	return Rect{
		MinX: math.Min(x1, x2), MaxX: math.Max(x1, x2),
		MinY: math.Min(y1, y2), MaxY: math.Max(y1, y2),
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 0.5, 0.5}
	b := Rect{0.25, 0.25, 1, 1}
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := Rect{0.25, 0.25, 0.5, 0.5}
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
	c := Rect{0.6, 0.6, 0.7, 0.7}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("expected no intersection")
	}
	if a.Intersects(c) {
		t.Fatal("Intersects should be false")
	}
}

func TestClampCell(t *testing.T) {
	for _, p := range []Point{{-1, -1}, {2, 2}, {1.0, 1.0}} {
		ix, iy := p.Cell()
		if ix >= GridSize || iy >= GridSize {
			t.Fatalf("cell out of range: %d,%d", ix, iy)
		}
	}
}

func TestSpan(t *testing.T) {
	if got := Span(MaxLevel); got != 1 {
		t.Fatalf("Span(MaxLevel)=%d want 1", got)
	}
	if got := Span(0); got != uint64(GridSize)*uint64(GridSize) {
		t.Fatalf("Span(0)=%d want %d", got, uint64(GridSize)*uint64(GridSize))
	}
}
