package objstore

import (
	"sync"
	"testing"
	"time"

	"silc/internal/graph"
)

func testGraph(t testing.TB) *graph.Network {
	t.Helper()
	g, err := graph.GenerateGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCRUDAndVersions(t *testing.T) {
	g := testGraph(t)
	s := New(g, Options{})
	defer s.Close()

	if s.Version() != 0 || s.Len() != 0 {
		t.Fatalf("fresh store: version %d len %d, want 0/0", s.Version(), s.Len())
	}
	empty := s.Snapshot()
	if empty.Objects.Len() != 0 {
		t.Fatal("version-0 snapshot is not empty")
	}

	a, v1 := s.Insert(3)
	b, v2 := s.Insert(9)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("insert versions %d,%d, want 1,2", v1, v2)
	}
	if a == b {
		t.Fatal("ids not distinct")
	}
	snap := s.Snapshot()
	if snap.Version != 2 || len(snap.IDs) != 2 {
		t.Fatalf("snapshot version %d with %d members, want 2/2", snap.Version, len(snap.IDs))
	}
	if snap.Objects.ByID(a).Vertex != 3 || snap.Objects.ByID(b).Vertex != 9 {
		t.Fatal("snapshot objects on wrong vertices")
	}

	v3, ok := s.Move(a, 17)
	if !ok || v3 != 3 {
		t.Fatalf("move: ok=%v version=%d", ok, v3)
	}
	// The pinned snapshot must not see the move (immutability).
	if snap.Objects.ByID(a).Vertex != 3 {
		t.Fatal("pinned snapshot mutated by Move")
	}
	if got := s.Snapshot().Objects.ByID(a).Vertex; got != 17 {
		t.Fatalf("current snapshot has object a at %d, want 17", got)
	}

	v4, ok := s.Remove(b)
	if !ok || v4 != 4 {
		t.Fatalf("remove: ok=%v version=%d", ok, v4)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after remove, want 1", s.Len())
	}
	if _, ok := s.Remove(b); ok {
		t.Fatal("removing a removed id reported ok")
	}
	if _, ok := s.Move(b, 1); ok {
		t.Fatal("moving a removed id reported ok")
	}
	// Unknown-id mutations must not bump the version.
	if s.Version() != 4 {
		t.Fatalf("version %d after no-op mutations, want 4", s.Version())
	}
}

func TestExpireOlderThan(t *testing.T) {
	g := testGraph(t)
	clock := time.Unix(1000, 0)
	s := New(g, Options{Now: func() time.Time { return clock }})
	defer s.Close()

	old, _ := s.Insert(1)
	clock = clock.Add(time.Minute)
	fresh, _ := s.Insert(2)
	ver := s.Version()

	n, v := s.ExpireOlderThan(clock.Add(-30 * time.Second))
	if n != 1 || v != ver+1 {
		t.Fatalf("expire removed %d at version %d, want 1 at %d", n, v, ver+1)
	}
	snap := s.Snapshot()
	if len(snap.IDs) != 1 || snap.IDs[0] != fresh {
		t.Fatalf("surviving ids %v, want [%d]", snap.IDs, fresh)
	}
	if _, ok := s.Move(old, 3); ok {
		t.Fatal("expired object still movable")
	}
	// Nothing left to expire: no version bump.
	if n, v := s.ExpireOlderThan(clock.Add(-30 * time.Second)); n != 0 || v != snap.Version {
		t.Fatalf("idle expire removed %d, version %d", n, v)
	}
	// A Move refreshes the TTL clock.
	clock = clock.Add(time.Hour)
	s.Move(fresh, 5)
	if n, _ := s.ExpireOlderThan(clock.Add(-time.Minute)); n != 0 {
		t.Fatal("moved object expired despite fresh touch")
	}
}

func TestSweeperExpires(t *testing.T) {
	g := testGraph(t)
	s := New(g, Options{TTL: 30 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	defer s.Close()

	s.Insert(1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never expired the object")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close stops the sweeper and is idempotent.
	s.Close()
	s.Close()
}

func TestChangedWakesOnPublish(t *testing.T) {
	g := testGraph(t)
	s := New(g, Options{})
	defer s.Close()

	ch := s.Changed()
	select {
	case <-ch:
		t.Fatal("change channel closed before any mutation")
	default:
	}
	s.Insert(0)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("publish did not close the change channel")
	}
}

// TestConcurrentChurn hammers the store from many writers while readers pin
// snapshots; run under -race in CI. Every pinned snapshot must be
// self-consistent: ascending distinct ids, parallel tables, monotone
// versions per reader.
func TestConcurrentChurn(t *testing.T) {
	g := testGraph(t)
	s := New(g, Options{})
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int32
			for i := 0; i < 300; i++ {
				switch i % 3 {
				case 0:
					id, _ := s.Insert(graph.VertexID((w*7 + i) % g.NumVertices()))
					mine = append(mine, id)
				case 1:
					if len(mine) > 0 {
						s.Move(mine[i%len(mine)], graph.VertexID(i%g.NumVertices()))
					}
				case 2:
					if len(mine) > 2 {
						s.Remove(mine[0])
						mine = mine[1:]
					}
				}
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.Version < last {
					t.Errorf("version went backwards: %d after %d", snap.Version, last)
					return
				}
				last = snap.Version
				if len(snap.IDs) != len(snap.Vertices) || snap.Objects.Len() != len(snap.IDs) {
					t.Errorf("snapshot tables out of sync: %d ids, %d vertices, %d objects",
						len(snap.IDs), len(snap.Vertices), snap.Objects.Len())
					return
				}
				for i := 1; i < len(snap.IDs); i++ {
					if snap.IDs[i] <= snap.IDs[i-1] {
						t.Errorf("ids not ascending: %v", snap.IDs)
						return
					}
				}
				for i, id := range snap.IDs {
					if snap.Objects.ByID(id).Vertex != snap.Vertices[i] {
						t.Errorf("object %d vertex mismatch", id)
						return
					}
				}
			}
		}()
	}
	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("churn goroutines did not finish")
	}
}
