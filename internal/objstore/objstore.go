// Package objstore is the live-world object store: a versioned, concurrent
// CRUD surface (Insert/Remove/Move/Expire) over the query-object domain,
// publishing an immutable knn.Objects snapshot per version.
//
// The design leans on the paper's decoupling property: SILC's shortest-path
// quadtrees encode path *identity*, so object churn never invalidates the
// distance index — mutating the world is purely an object-set problem. The
// store therefore keeps one authoritative table of live objects and, on
// every mutation, publishes a fresh copy-on-write snapshot (a PMR quadtree
// plus the id/vertex tables) behind an atomic pointer:
//
//   - Readers pin the current snapshot with one atomic load — O(1), no
//     locks, never blocked by writers — and every query they run against it
//     is exact for that version.
//   - Writers serialize under a mutex, bump the monotonically increasing
//     version, rebuild the snapshot from the live table (O(n log n) in the
//     object count — the network index is untouched), and publish it.
//   - Each publish closes the store's change channel, waking continuous
//     queries (Engine.Watch) without polling.
//
// A TTL sweeper goroutine (Options.TTL > 0) expires objects not touched
// within the TTL — the ExpireOldNodes scenario of moving-fleet workloads —
// and shuts down gracefully on Close.
package objstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/graph"
	"silc/internal/knn"
	"silc/internal/obs"
)

// Snapshot is one immutable version of the object set. All fields are
// read-only after publication; any number of queries may share one snapshot
// while mutators publish successors.
type Snapshot struct {
	// Version is the store version this snapshot reflects. Versions are
	// monotonically increasing; version 0 is the empty store at birth.
	Version uint64
	// Objects is the immutable query view (stable ids; empty set valid).
	Objects *knn.Objects
	// IDs and Vertices are the members in ascending stable-id order.
	IDs      []int32
	Vertices []graph.VertexID

	// payload caches one caller-owned value derived from this snapshot
	// (the silc layer stores its public ObjectSet wrapper here), so
	// repeated pins of an unchanged version stay allocation-free.
	payload atomic.Pointer[any]
}

// Payload returns the cached derived value, nil before SetPayload.
func (s *Snapshot) Payload() any {
	if p := s.payload.Load(); p != nil {
		return *p
	}
	return nil
}

// SetPayload caches a value derived from this snapshot. Concurrent setters
// race benignly: every caller derives an equivalent value for the same
// immutable snapshot, so last-writer-wins is correct.
func (s *Snapshot) SetPayload(v any) { s.payload.Store(&v) }

// entry is one live object in the authoritative table.
type entry struct {
	vertex  graph.VertexID
	touched time.Time // last Insert/Move, drives TTL expiry
}

// Options configures a Store.
type Options struct {
	// TTL expires objects not inserted or moved within this duration
	// (0 = objects never expire and no sweeper runs).
	TTL time.Duration
	// SweepInterval is the TTL sweeper's period (default TTL/4, floored at
	// 10ms). Ignored when TTL is 0.
	SweepInterval time.Duration
	// Now is the clock (tests inject a fake one; nil = time.Now).
	Now func() time.Time
}

// Store is the versioned concurrent object store. The zero value is not
// usable; construct with New and release the sweeper with Close.
type Store struct {
	g   *graph.Network
	now func() time.Time

	// mu serializes mutators (writers). Readers never take it: they pin
	// snapshots through the atomic pointer below.
	mu      sync.Mutex
	objs    map[int32]entry
	ids     []int32 // live ids, ascending (nextID is monotone, appends keep order)
	nextID  int32
	version uint64        // guarded by mu; published value mirrored in snap
	changed chan struct{} // closed and replaced on every publish

	snap atomic.Pointer[Snapshot]

	ttl        time.Duration
	sweepEvery time.Duration
	stopSweep  chan struct{}
	sweepDone  chan struct{}
	closeOnce  sync.Once

	// Metrics: silc_objstore_* families, registered on the store's own
	// registry so servers can append them to any exposition.
	reg            *obs.Registry
	inserts        *obs.Counter
	removes        *obs.Counter
	moves          *obs.Counter
	expired        *obs.Counter
	snapshotBuilds *obs.Counter
	buildSecs      *obs.Counter
}

// New returns an empty store over g's vertex domain and starts the TTL
// sweeper when opt.TTL > 0. Callers must Close the store to stop the
// sweeper.
func New(g *graph.Network, opt Options) *Store {
	s := &Store{
		g:       g,
		now:     opt.Now,
		objs:    make(map[int32]entry),
		changed: make(chan struct{}),
		ttl:     opt.TTL,
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.reg = obs.NewRegistry()
	s.inserts = s.reg.Counter("silc_objstore_inserts_total", "",
		"Objects inserted into the live store.")
	s.removes = s.reg.Counter("silc_objstore_removes_total", "",
		"Objects removed from the live store (explicit Remove only).")
	s.moves = s.reg.Counter("silc_objstore_moves_total", "",
		"Objects moved to a new vertex.")
	s.expired = s.reg.Counter("silc_objstore_expired_total", "",
		"Objects expired by TTL or explicit Expire.")
	s.snapshotBuilds = s.reg.Counter("silc_objstore_snapshot_builds_total", "",
		"Copy-on-write snapshot rebuilds (one per published version).")
	s.buildSecs = s.reg.CounterScaled("silc_objstore_snapshot_build_seconds_total", "",
		"Wall-clock seconds spent rebuilding snapshots.", 1e-9)
	s.reg.GaugeFunc("silc_objstore_objects", "",
		"Objects currently live in the store.",
		func() float64 { return float64(s.Len()) })
	s.reg.GaugeFunc("silc_objstore_version", "",
		"Current store version (monotone; one bump per mutation).",
		func() float64 { return float64(s.Version()) })

	s.snap.Store(s.buildSnapshotLocked()) // version 0: the empty world
	if opt.TTL > 0 {
		s.sweepEvery = opt.SweepInterval
		if s.sweepEvery <= 0 {
			s.sweepEvery = opt.TTL / 4
		}
		if s.sweepEvery < 10*time.Millisecond {
			s.sweepEvery = 10 * time.Millisecond
		}
		s.stopSweep = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweep()
	}
	return s
}

// Registry returns the store's metric registry (silc_objstore_* families).
func (s *Store) Registry() *obs.Registry { return s.reg }

// Len returns the number of live objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objs)
}

// Version returns the current store version.
func (s *Store) Version() uint64 { return s.snap.Load().Version }

// Snapshot pins the current immutable snapshot: one atomic load, O(1),
// never blocked by writers. The snapshot stays valid (and exact for its
// version) however long the caller holds it.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Changed returns a channel closed at the next publish after this call.
// Pin a snapshot AFTER grabbing the channel: if a publish lands in between,
// the channel is already closed and the caller simply re-pins — no lost
// wakeups.
func (s *Store) Changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.changed
}

// Insert places a new object on v and returns its stable id and the store
// version that first contains it.
func (s *Store) Insert(v graph.VertexID) (int32, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.objs[id] = entry{vertex: v, touched: s.now()}
	s.ids = append(s.ids, id) // nextID is monotone: append keeps ids sorted
	s.inserts.Inc()
	return id, s.publishLocked()
}

// Remove deletes the object. It returns the version that no longer contains
// it, or ok=false (version unchanged) for an unknown id.
func (s *Store) Remove(id int32) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objs[id]; !ok {
		return s.version, false
	}
	delete(s.objs, id)
	s.dropIDLocked(id)
	s.removes.Inc()
	return s.publishLocked(), true
}

// Move relocates the object to v (refreshing its TTL clock) and returns the
// first version reflecting the move, or ok=false for an unknown id.
func (s *Store) Move(id int32, v graph.VertexID) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objs[id]; !ok {
		return s.version, false
	}
	s.objs[id] = entry{vertex: v, touched: s.now()}
	s.moves.Inc()
	return s.publishLocked(), true
}

// ExpireOlderThan removes every object last touched strictly before cutoff.
// It returns the number removed and the resulting version (one version bump
// covers the whole sweep; zero removals publish nothing).
func (s *Store) ExpireOlderThan(cutoff time.Time) (int, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for i := 0; i < len(s.ids); {
		id := s.ids[i]
		if s.objs[id].touched.Before(cutoff) {
			delete(s.objs, id)
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			removed++
			continue
		}
		i++
	}
	if removed == 0 {
		return 0, s.version
	}
	s.expired.Add(int64(removed))
	return removed, s.publishLocked()
}

// Close stops the TTL sweeper and waits for it to exit. The store remains
// readable and mutable after Close; only background expiry stops. Safe to
// call multiple times.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.stopSweep != nil {
			close(s.stopSweep)
			<-s.sweepDone
		}
	})
}

// sweep is the TTL sweeper goroutine.
func (s *Store) sweep() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.sweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.ExpireOlderThan(s.now().Add(-s.ttl))
		}
	}
}

// dropIDLocked removes id from the sorted id list.
func (s *Store) dropIDLocked(id int32) {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

// publishLocked bumps the version, rebuilds the snapshot from the live
// table, publishes it, and wakes the change watchers. Callers hold mu.
func (s *Store) publishLocked() uint64 {
	s.version++
	s.snap.Store(s.buildSnapshotLocked())
	close(s.changed)
	s.changed = make(chan struct{})
	return s.version
}

// buildSnapshotLocked materializes the immutable view of the current table:
// fresh id/vertex slices (ascending id) and a fresh PMR quadtree. Nothing
// is shared with previous snapshots, so published versions are frozen.
func (s *Store) buildSnapshotLocked() *Snapshot {
	start := time.Now()
	ids := make([]int32, len(s.ids))
	copy(ids, s.ids)
	verts := make([]graph.VertexID, len(ids))
	for i, id := range ids {
		verts[i] = s.objs[id].vertex
	}
	snap := &Snapshot{
		Version:  s.version,
		Objects:  knn.NewObjectsWithIDs(s.g, ids, verts),
		IDs:      ids,
		Vertices: verts,
	}
	s.snapshotBuilds.Inc()
	s.buildSecs.Add(time.Since(start).Nanoseconds())
	return snap
}
