package graph

import (
	"bytes"
	"math"
	"testing"

	"silc/internal/geom"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder()
	a := b.AddVertex(geom.Point{X: 0.1, Y: 0.1})
	c := b.AddVertex(geom.Point{X: 0.9, Y: 0.1})
	d := b.AddVertex(geom.Point{X: 0.5, Y: 0.9})
	b.AddBiEdge(a, c, 1.0)
	b.AddEdge(c, d, 2.0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if got := g.Degree(c); got != 2 {
		t.Fatalf("Degree(c)=%d want 2", got)
	}
	if w, ok := g.EdgeWeight(c, d); !ok || w != 2.0 {
		t.Fatalf("EdgeWeight(c,d)=%v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(d, c); ok {
		t.Fatal("edge d->c should not exist")
	}
	if got := g.NeighborIndex(a, c); got != 0 {
		t.Fatalf("NeighborIndex(a,c)=%d", got)
	}
	if got := g.NeighborIndex(a, d); got != -1 {
		t.Fatalf("NeighborIndex(a,d)=%d want -1", got)
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		setup func(*Builder)
	}{
		{"empty", func(b *Builder) {}},
		{"out of square", func(b *Builder) {
			b.AddVertex(geom.Point{X: 1.5, Y: 0.5})
		}},
		{"duplicate cell", func(b *Builder) {
			b.AddVertex(geom.Point{X: 0.5, Y: 0.5})
			b.AddVertex(geom.Point{X: 0.5, Y: 0.5})
		}},
		{"self loop", func(b *Builder) {
			v := b.AddVertex(geom.Point{X: 0.5, Y: 0.5})
			b.AddEdge(v, v, 1)
		}},
		{"bad endpoint", func(b *Builder) {
			v := b.AddVertex(geom.Point{X: 0.5, Y: 0.5})
			b.AddEdge(v, v+7, 1)
		}},
		{"zero weight", func(b *Builder) {
			u := b.AddVertex(geom.Point{X: 0.25, Y: 0.5})
			v := b.AddVertex(geom.Point{X: 0.75, Y: 0.5})
			b.AddEdge(u, v, 0)
		}},
		{"nan weight", func(b *Builder) {
			u := b.AddVertex(geom.Point{X: 0.25, Y: 0.5})
			v := b.AddVertex(geom.Point{X: 0.75, Y: 0.5})
			b.AddEdge(u, v, math.NaN())
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.setup(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("expected Build error")
			}
		})
	}
}

func TestMortonOrderSorted(t *testing.T) {
	g, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	order := g.MortonOrder()
	for i := 1; i < len(order); i++ {
		if g.Code(order[i-1]) >= g.Code(order[i]) {
			t.Fatalf("order not strictly increasing at %d", i)
		}
	}
	for i, v := range order {
		if int(g.MortonRank(v)) != i {
			t.Fatalf("rank mismatch for %d", v)
		}
		if got := g.VertexAtCode(g.Code(v)); got != v {
			t.Fatalf("VertexAtCode(%x)=%d want %d", uint64(g.Code(v)), got, v)
		}
	}
	if got := g.VertexAtCode(geom.Code(1<<40 + 12345)); got != NoVertex {
		t.Fatalf("VertexAtCode on absent code = %d", got)
	}
}

func TestGenerateRoadNetworkProperties(t *testing.T) {
	g, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 20, Cols: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 200 {
		t.Fatalf("suspiciously small network: %d vertices", g.NumVertices())
	}
	// Weight >= Euclidean length of the segment (lambda >= 1 precondition).
	for _, e := range g.Edges() {
		d := g.Euclid(e.From, e.To)
		if e.Weight < d-1e-12 {
			t.Fatalf("edge %d->%d weight %v below Euclid %v", e.From, e.To, e.Weight, d)
		}
	}
	// Symmetry: the generator emits bidirectional roads.
	for _, e := range g.Edges() {
		if w, ok := g.EdgeWeight(e.To, e.From); !ok || w != e.Weight {
			t.Fatalf("edge %d->%d not symmetric", e.From, e.To)
		}
	}
	// Connectivity: every vertex reachable from vertex 0 (undirected BFS is
	// what LargestComponent guarantees; edges are symmetric so this suffices).
	seen := make([]bool, g.NumVertices())
	stack := []VertexID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		targets, _ := g.Neighbors(v)
		for _, tgt := range targets {
			if !seen[tgt] {
				seen[tgt] = true
				stack = append(stack, tgt)
			}
		}
	}
	if count != g.NumVertices() {
		t.Fatalf("component extraction failed: reached %d of %d", count, g.NumVertices())
	}
}

func TestGenerateRoadNetworkDeterministic(t *testing.T) {
	a, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 10, Cols: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 10, Cols: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Point(VertexID(v)) != b.Point(VertexID(v)) {
			t.Fatalf("vertex %d differs", v)
		}
	}
}

func TestGenerateGrid(t *testing.T) {
	g, err := GenerateGrid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Interior degree 4, corner degree 2.
	if got := g.Degree(0); got != 2 {
		t.Fatalf("corner degree = %d", got)
	}
	if got := g.Degree(5); got != 4 { // row 1, col 1 is interior
		t.Fatalf("interior degree = %d", got)
	}
}

func TestGenerateRingRadial(t *testing.T) {
	g, err := GenerateRingRadial(3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1+3*8 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.Degree(0) != 8 { // plaza connects to first ring
		t.Fatalf("plaza degree = %d", g.Degree(0))
	}
}

func TestGenerateRandomConnected(t *testing.T) {
	g, err := GenerateRandomConnected(50, 40, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	for _, e := range g.Edges() {
		if e.Weight < g.Euclid(e.From, e.To)-1e-12 {
			t.Fatal("weight below Euclidean length")
		}
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder()
	// Component 1: three vertices in a path.
	v0 := b.AddVertex(geom.Point{X: 0.1, Y: 0.1})
	v1 := b.AddVertex(geom.Point{X: 0.2, Y: 0.1})
	v2 := b.AddVertex(geom.Point{X: 0.3, Y: 0.1})
	b.AddBiEdge(v0, v1, 1)
	b.AddBiEdge(v1, v2, 1)
	// Component 2: a pair.
	v3 := b.AddVertex(geom.Point{X: 0.7, Y: 0.7})
	v4 := b.AddVertex(geom.Point{X: 0.8, Y: 0.7})
	b.AddBiEdge(v3, v4, 1)
	// Isolated vertex.
	b.AddVertex(geom.Point{X: 0.9, Y: 0.9})

	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, oldIDs, err := LargestComponent(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("largest component has %d vertices, want 3", sub.NumVertices())
	}
	if len(oldIDs) != 3 || oldIDs[0] != v0 || oldIDs[1] != v1 || oldIDs[2] != v2 {
		t.Fatalf("oldIDs = %v", oldIDs)
	}
	if sub.NumEdges() != 4 {
		t.Fatalf("edges = %d want 4", sub.NumEdges())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	g, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 8, Cols: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Point(VertexID(v)) != g2.Point(VertexID(v)) {
			t.Fatalf("vertex %d position differs", v)
		}
		ta, wa := g.Neighbors(VertexID(v))
		tb, wb := g2.Neighbors(VertexID(v))
		if len(ta) != len(tb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range ta {
			if ta[i] != tb[i] || wa[i] != wb[i] {
				t.Fatalf("vertex %d edge %d differs", v, i)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"not-a-network 1\n",
		"silc-network 99\n1 0\n0.5 0.5\n",
		"silc-network 1\n2 1\n0.5 0.5\n",        // missing vertex + edge lines
		"silc-network 1\n1 1\n0.5 0.5\n0 0 1\n", // self loop
	} {
		if _, err := Read(bytes.NewReader([]byte(s))); err == nil {
			t.Fatalf("expected error for %q", s)
		}
	}
}

func TestNearestVertex(t *testing.T) {
	g, err := GenerateGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got := g.NearestVertex(g.Point(VertexID(v))); got != VertexID(v) {
			t.Fatalf("NearestVertex of vertex %d = %d", v, got)
		}
	}
}
