// Package graph implements the spatial-network substrate of the library: a
// directed graph whose vertices are embedded in the unit square and whose
// edge weights represent travel cost along road segments.
//
// The representation is a compressed sparse row (CSR) adjacency list plus a
// Morton-sorted vertex permutation shared by every shortest-path quadtree
// built over the network (the sort order depends only on vertex positions,
// so it is computed once per network rather than once per source vertex).
package graph

import (
	"errors"
	"fmt"
	"sort"

	"silc/internal/geom"
)

// VertexID identifies a vertex of a Network. IDs are dense: 0..NumVertices-1.
type VertexID int32

// NoVertex is the sentinel for "no vertex".
const NoVertex VertexID = -1

// Network is an immutable spatial network.
type Network struct {
	pts     []geom.Point
	codes   []geom.Code
	offsets []int32
	targets []VertexID
	weights []float64

	order []VertexID // vertex ids sorted by Morton code
	rank  []int32    // vertex id -> position in order
}

// NumVertices returns the number of vertices.
func (g *Network) NumVertices() int { return len(g.pts) }

// NumEdges returns the number of directed edges.
func (g *Network) NumEdges() int { return len(g.targets) }

// Point returns the position of v.
func (g *Network) Point(v VertexID) geom.Point { return g.pts[v] }

// Code returns the Morton code of v's grid cell.
func (g *Network) Code(v VertexID) geom.Code { return g.codes[v] }

// Euclid returns the Euclidean distance between two vertices.
func (g *Network) Euclid(u, v VertexID) float64 { return g.pts[u].Dist(g.pts[v]) }

// Degree returns the out-degree of v.
func (g *Network) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbors of v and the corresponding edge
// weights. The returned slices alias the network's internal storage and must
// not be modified.
func (g *Network) Neighbors(v VertexID) ([]VertexID, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// NeighborIndex returns the index of w within v's adjacency list, or -1.
// The index serves as the "color" of a first hop in shortest-path maps.
// Among parallel edges the minimum-weight one is returned — the edge any
// shortest path actually uses.
func (g *Network) NeighborIndex(v, w VertexID) int {
	targets, weights := g.Neighbors(v)
	best := -1
	for i, t := range targets {
		if t == w && (best < 0 || weights[i] < weights[best]) {
			best = i
		}
	}
	return best
}

// EdgeWeight returns the weight of the directed edge (u,v) and whether the
// edge exists. Parallel edges are permitted; the minimum weight is returned,
// matching what any shortest path would use.
func (g *Network) EdgeWeight(u, v VertexID) (float64, bool) {
	targets, weights := g.Neighbors(u)
	best, found := 0.0, false
	for i, t := range targets {
		if t == v && (!found || weights[i] < best) {
			best, found = weights[i], true
		}
	}
	return best, found
}

// MortonOrder returns the vertex ids sorted by Morton code. The slice aliases
// internal storage and must not be modified.
func (g *Network) MortonOrder() []VertexID { return g.order }

// MortonRank returns the position of v in the Morton-sorted order.
func (g *Network) MortonRank(v VertexID) int32 { return g.rank[v] }

// VertexAtCode returns the vertex whose grid cell has the given Morton code,
// or NoVertex. Cells hold at most one vertex (enforced at build time).
func (g *Network) VertexAtCode(code geom.Code) VertexID {
	i := sort.Search(len(g.order), func(i int) bool {
		return g.codes[g.order[i]] >= code
	})
	if i < len(g.order) && g.codes[g.order[i]] == code {
		return g.order[i]
	}
	return NoVertex
}

// NearestVertex returns the vertex nearest to p by Euclidean distance using
// a linear scan. Query snapping in the public API goes through the object
// index instead; this is a convenience for small networks and tests.
func (g *Network) NearestVertex(p geom.Point) VertexID {
	best := NoVertex
	bestD := -1.0
	for v := range g.pts {
		d := g.pts[v].DistSq(p)
		if best == NoVertex || d < bestD {
			best, bestD = VertexID(v), d
		}
	}
	return best
}

// Edge is one directed edge, used by Builder and serialization.
type Edge struct {
	From, To VertexID
	Weight   float64
}

// Edges returns a copy of all directed edges.
func (g *Network) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		targets, weights := g.Neighbors(VertexID(v))
		for i := range targets {
			out = append(out, Edge{From: VertexID(v), To: targets[i], Weight: weights[i]})
		}
	}
	return out
}

// Builder accumulates vertices and edges and assembles a validated Network.
type Builder struct {
	pts   []geom.Point
	edges []Edge
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddVertex appends a vertex at p and returns its id.
func (b *Builder) AddVertex(p geom.Point) VertexID {
	b.pts = append(b.pts, p)
	return VertexID(len(b.pts) - 1)
}

// AddEdge appends the directed edge (u,v) with weight w.
func (b *Builder) AddEdge(u, v VertexID, w float64) {
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: w})
}

// AddBiEdge appends both directions of an undirected road segment.
func (b *Builder) AddBiEdge(u, v VertexID, w float64) {
	b.AddEdge(u, v, w)
	b.AddEdge(v, u, w)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.pts) }

// Build validates the accumulated data and produces a Network.
//
// Validation enforces the preconditions of the SILC framework: positive
// finite edge weights, edge endpoints in range, no self loops, and at most
// one vertex per Morton grid cell (required for the shortest-path quadtree
// decomposition to terminate with single-colored leaves).
func (b *Builder) Build() (*Network, error) {
	n := len(b.pts)
	if n == 0 {
		return nil, errors.New("graph: network has no vertices")
	}
	codes := make([]geom.Code, n)
	for i, p := range b.pts {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			return nil, fmt.Errorf("graph: vertex %d at %v outside the unit square", i, p)
		}
		codes[i] = p.Code()
	}
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool { return codes[order[i]] < codes[order[j]] })
	for i := 1; i < n; i++ {
		if codes[order[i]] == codes[order[i-1]] {
			return nil, fmt.Errorf("graph: vertices %d and %d share Morton cell %x",
				order[i-1], order[i], uint64(codes[order[i]]))
		}
	}
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}

	deg := make([]int32, n+1)
	for _, e := range b.edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("graph: edge %v has out-of-range endpoint", e)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("graph: self loop at vertex %d", e.From)
		}
		if !(e.Weight > 0) {
			return nil, fmt.Errorf("graph: edge %d->%d has non-positive weight %v", e.From, e.To, e.Weight)
		}
		deg[e.From+1]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]VertexID, len(b.edges))
	weights := make([]float64, len(b.edges))
	fill := make([]int32, n)
	copy(fill, offsets[:n])
	for _, e := range b.edges {
		i := fill[e.From]
		targets[i] = e.To
		weights[i] = e.Weight
		fill[e.From]++
	}

	return &Network{
		pts:     b.pts,
		codes:   codes,
		offsets: offsets,
		targets: targets,
		weights: weights,
		order:   order,
		rank:    rank,
	}, nil
}

// LargestComponent returns the subnetwork induced by the largest weakly
// connected component of g, with vertices renumbered densely, and a mapping
// from new ids to original ids. Road networks built with AddBiEdge are
// symmetric, so weak connectivity coincides with strong connectivity.
func LargestComponent(g *Network) (*Network, []VertexID, error) {
	n := g.NumVertices()
	// Undirected closure adjacency for the component sweep.
	undirected := make([][]VertexID, n)
	for v := 0; v < n; v++ {
		targets, _ := g.Neighbors(VertexID(v))
		for _, t := range targets {
			undirected[v] = append(undirected[v], t)
			undirected[t] = append(undirected[t], VertexID(v))
		}
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []VertexID
	bestComp, bestSize := int32(-1), 0
	nextComp := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		size := 0
		queue = append(queue[:0], VertexID(s))
		comp[s] = nextComp
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, t := range undirected[v] {
				if comp[t] < 0 {
					comp[t] = nextComp
					queue = append(queue, t)
				}
			}
		}
		if size > bestSize {
			bestComp, bestSize = nextComp, size
		}
		nextComp++
	}

	remap := make([]VertexID, n)
	var oldIDs []VertexID
	b := NewBuilder()
	for v := 0; v < n; v++ {
		if comp[v] == bestComp {
			remap[v] = b.AddVertex(g.Point(VertexID(v)))
			oldIDs = append(oldIDs, VertexID(v))
		} else {
			remap[v] = NoVertex
		}
	}
	for v := 0; v < n; v++ {
		if comp[v] != bestComp {
			continue
		}
		targets, weights := g.Neighbors(VertexID(v))
		for i, t := range targets {
			if comp[t] == bestComp {
				b.AddEdge(remap[v], remap[t], weights[i])
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, oldIDs, nil
}
