package graph

import (
	"fmt"
	"math"
	"math/rand"

	"silc/internal/geom"
)

// RoadNetworkOptions parameterizes the synthetic road-network generator that
// stands in for the paper's US eastern-seaboard extract (see DESIGN.md §5).
// The generator produces a perturbed lattice with holes, dropped segments,
// occasional diagonal shortcuts, and edge weights equal to Euclidean length
// scaled by a uniform noise factor >= 1. The result is near-planar with
// network distance bounded below by Euclidean distance — the two properties
// the paper's storage and query results rest on.
type RoadNetworkOptions struct {
	// Rows and Cols set the lattice dimensions; the network has at most
	// Rows*Cols vertices before deletions and component extraction.
	Rows, Cols int
	// Jitter is the vertex displacement as a fraction of lattice spacing
	// (0..0.49). Default 0.35.
	Jitter float64
	// DeleteProb removes lattice vertices to create holes. Default 0.08.
	DeleteProb float64
	// EdgeDropProb removes individual road segments. Default 0.05.
	EdgeDropProb float64
	// DiagonalProb adds a diagonal shortcut at a lattice cell. Default 0.05.
	DiagonalProb float64
	// WeightNoise rho makes weight = euclid * Uniform[1, 1+rho]. Default 0.3.
	WeightNoise float64
	// Seed drives all randomness; the generator is deterministic per seed.
	Seed int64
}

func (o *RoadNetworkOptions) setDefaults() {
	if o.Rows == 0 {
		o.Rows = 64
	}
	if o.Cols == 0 {
		o.Cols = 64
	}
	if o.Jitter == 0 {
		o.Jitter = 0.35
	}
	if o.DeleteProb == 0 {
		o.DeleteProb = 0.08
	}
	if o.EdgeDropProb == 0 {
		o.EdgeDropProb = 0.05
	}
	if o.DiagonalProb == 0 {
		o.DiagonalProb = 0.05
	}
	if o.WeightNoise == 0 {
		o.WeightNoise = 0.3
	}
}

// GenerateRoadNetwork builds a synthetic road network per opts, restricted to
// its largest connected component.
func GenerateRoadNetwork(opts RoadNetworkOptions) (*Network, error) {
	opts.setDefaults()
	if opts.Rows < 2 || opts.Cols < 2 {
		return nil, fmt.Errorf("graph: lattice %dx%d too small", opts.Rows, opts.Cols)
	}
	if opts.Jitter < 0 || opts.Jitter > 0.49 {
		return nil, fmt.Errorf("graph: jitter %v out of range [0, 0.49]", opts.Jitter)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	rows, cols := opts.Rows, opts.Cols
	// Lattice spacing leaves a small margin so jittered points stay inside
	// the unit square.
	sx := 1.0 / float64(cols+1)
	sy := 1.0 / float64(rows+1)

	b := NewBuilder()
	ids := make([]VertexID, rows*cols)
	used := make(map[geom.Code]bool, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if rng.Float64() < opts.DeleteProb {
				ids[i] = NoVertex
				continue
			}
			p := geom.Point{
				X: sx * (float64(c) + 1 + opts.Jitter*(2*rng.Float64()-1)),
				Y: sy * (float64(r) + 1 + opts.Jitter*(2*rng.Float64()-1)),
			}
			p = resolveCell(p, used, rng)
			ids[i] = b.AddVertex(p)
		}
	}

	addRoad := func(u, v VertexID) {
		if u == NoVertex || v == NoVertex {
			return
		}
		if rng.Float64() < opts.EdgeDropProb {
			return
		}
		d := b.pts[u].Dist(b.pts[v])
		w := d * (1 + opts.WeightNoise*rng.Float64())
		b.AddBiEdge(u, v, w)
	}

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols {
				addRoad(ids[i], ids[i+1])
			}
			if r+1 < rows {
				addRoad(ids[i], ids[i+cols])
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < opts.DiagonalProb {
				if rng.Intn(2) == 0 {
					addRoad(ids[i], ids[i+cols+1])
				} else {
					addRoad(ids[i+1], ids[i+cols])
				}
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	sub, _, err := LargestComponent(g)
	return sub, err
}

// resolveCell nudges p until it occupies an unused Morton grid cell and
// records the cell. Collisions are rare (2^32 cells); the nudge walks in a
// random direction one cell at a time.
func resolveCell(p geom.Point, used map[geom.Code]bool, rng *rand.Rand) geom.Point {
	const step = 1.5 / geom.GridSize
	for tries := 0; ; tries++ {
		code := p.Code()
		if !used[code] {
			used[code] = true
			return p
		}
		p.X += step * (rng.Float64() - 0.5) * 4
		p.Y += step * (rng.Float64() - 0.5) * 4
		p.X = clamp01(p.X)
		p.Y = clamp01(p.Y)
		if tries > 1000 {
			panic("graph: could not resolve Morton cell collision")
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// GenerateGrid builds a clean rows x cols lattice with unit-spacing weights
// and no randomness. Useful for tests where distances are predictable.
func GenerateGrid(rows, cols int) (*Network, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid %dx%d too small", rows, cols)
	}
	sx := 1.0 / float64(cols+1)
	sy := 1.0 / float64(rows+1)
	b := NewBuilder()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddVertex(geom.Point{X: sx * float64(c+1), Y: sy * float64(r+1)})
		}
	}
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddBiEdge(id(r, c), id(r, c+1), b.pts[id(r, c)].Dist(b.pts[id(r, c+1)]))
			}
			if r+1 < rows {
				b.AddBiEdge(id(r, c), id(r+1, c), b.pts[id(r, c)].Dist(b.pts[id(r+1, c)]))
			}
		}
	}
	return b.Build()
}

// GenerateRingRadial builds a "town" network: concentric ring roads crossed
// by radial avenues, all meeting at a central plaza vertex. Used by the
// examples; exercises non-lattice topology.
func GenerateRingRadial(rings, spokes int, seed int64) (*Network, error) {
	if rings < 1 || spokes < 3 {
		return nil, fmt.Errorf("graph: need >=1 ring and >=3 spokes, got %d/%d", rings, spokes)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	center := b.AddVertex(geom.Point{X: 0.5, Y: 0.5})
	noise := func() float64 { return 1 + 0.2*rng.Float64() }

	ids := make([][]VertexID, rings)
	maxR := 0.45
	for r := 0; r < rings; r++ {
		radius := maxR * float64(r+1) / float64(rings)
		ids[r] = make([]VertexID, spokes)
		for s := 0; s < spokes; s++ {
			ang := 2 * math.Pi * (float64(s) + 0.15*rng.Float64()) / float64(spokes)
			p := geom.Point{X: 0.5 + radius*math.Cos(ang), Y: 0.5 + radius*math.Sin(ang)}
			ids[r][s] = b.AddVertex(p)
		}
	}
	for r := 0; r < rings; r++ {
		for s := 0; s < spokes; s++ {
			next := ids[r][(s+1)%spokes]
			b.AddBiEdge(ids[r][s], next, b.pts[ids[r][s]].Dist(b.pts[next])*noise())
			if r == 0 {
				b.AddBiEdge(center, ids[r][s], b.pts[center].Dist(b.pts[ids[r][s]])*noise())
			} else {
				b.AddBiEdge(ids[r-1][s], ids[r][s], b.pts[ids[r-1][s]].Dist(b.pts[ids[r][s]])*noise())
			}
		}
	}
	return b.Build()
}

// GenerateRandomConnected builds a connected (non-planar) network of n
// random points: a random spanning chain plus extra random edges. Weights
// are Euclidean length times Uniform[1, 1+noise]. Used by property tests to
// exercise SILC on topologies the generator's lattice never produces.
func GenerateRandomConnected(n, extraEdges int, noise float64, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: need >= 2 vertices, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	used := make(map[geom.Code]bool, n)
	for i := 0; i < n; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		p = resolveCell(p, used, rng)
		b.AddVertex(p)
	}
	perm := rng.Perm(n)
	w := func(u, v VertexID) float64 {
		return b.pts[u].Dist(b.pts[v]) * (1 + noise*rng.Float64())
	}
	for i := 1; i < n; i++ {
		u, v := VertexID(perm[i-1]), VertexID(perm[i])
		b.AddBiEdge(u, v, w(u, v))
	}
	for e := 0; e < extraEdges; e++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddBiEdge(u, v, w(u, v))
	}
	return b.Build()
}
