package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"silc/internal/geom"
)

// The network text format is line oriented:
//
//	# comments and blank lines are ignored
//	silc-network 1
//	<numVertices> <numDirectedEdges>
//	<x> <y>            one line per vertex, unit-square coordinates
//	<from> <to> <w>    one line per directed edge
//
// The format is self-describing enough for interchange with the cmd tools
// and small enough to diff in tests.

const formatMagic = "silc-network"
const formatVersion = 1

// Write serializes g in the network text format.
func Write(w io.Writer, g *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", formatMagic, formatVersion)
	fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Point(VertexID(v))
		fmt.Fprintf(bw, "%.17g %.17g\n", p.X, p.Y)
	}
	for v := 0; v < g.NumVertices(); v++ {
		targets, weights := g.Neighbors(VertexID(v))
		for i := range targets {
			fmt.Fprintf(bw, "%d %d %.17g\n", v, targets[i], weights[i])
		}
	}
	return bw.Flush()
}

// Read parses a network in the text format and validates it through Builder.
func Read(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	var version int
	if _, err := fmt.Sscanf(header, formatMagic+" %d", &version); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", header, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("graph: unsupported format version %d", version)
	}

	counts, err := next()
	if err != nil {
		return nil, fmt.Errorf("graph: reading counts: %w", err)
	}
	var n, m int
	if _, err := fmt.Sscanf(counts, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad counts %q: %w", counts, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative counts %d %d", n, m)
	}

	b := NewBuilder()
	for i := 0; i < n; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("graph: reading vertex %d: %w", i, err)
		}
		var p geom.Point
		if _, err := fmt.Sscanf(line, "%g %g", &p.X, &p.Y); err != nil {
			return nil, fmt.Errorf("graph: bad vertex line %q: %w", line, err)
		}
		b.AddVertex(p)
	}
	for i := 0; i < m; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		var from, to int
		var w float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &from, &to, &w); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", line, err)
		}
		b.AddEdge(VertexID(from), VertexID(to), w)
	}
	return b.Build()
}
