package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/knn"
)

// ThroughputPoint is the outcome of replaying one query workload at one
// goroutine count.
type ThroughputPoint struct {
	Goroutines int
	Queries    int
	Wall       time.Duration
	QPS        float64
	// Speedup is QPS relative to the sweep's first point (1.0 for that
	// point itself); pass goroutines starting at 1 to read it as
	// parallel speedup.
	Speedup float64
	// PageHits/PageMisses are the pool-wide traffic of the run (zeros for
	// memory-resident indexes).
	PageHits   int64
	PageMisses int64
}

// ThroughputWorkload is a fixed random workload replayed identically at
// every goroutine count of a sweep.
type ThroughputWorkload struct {
	Objs    *knn.Objects
	Queries []graph.VertexID
	K       int
}

// NewThroughputWorkload draws one shared object set (fraction*N objects)
// and n random query vertices.
func (e *Env) NewThroughputWorkload(n int, fraction float64, k int, seed int64) ThroughputWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := ThroughputWorkload{
		Objs:    e.ObjectSet(fraction, rng),
		Queries: make([]graph.VertexID, n),
		K:       k,
	}
	for i := range w.Queries {
		w.Queries[i] = e.Query(rng)
	}
	return w
}

// ThroughputSweep replays the workload once per goroutine count and reports
// QPS at each — the query-throughput scaling curve. Every run answers the
// identical queries with the paper's kNN algorithm over one shared index;
// for disk-resident indexes each run starts from a cold buffer pool so
// later runs don't ride pages faulted in by earlier ones.
func ThroughputSweep(ix core.QueryIndex, w ThroughputWorkload, goroutines []int) []ThroughputPoint {
	points := make([]ThroughputPoint, 0, len(goroutines))
	var baseQPS float64
	for _, gc := range goroutines {
		if gc < 1 {
			gc = 1
		}
		ix.Tracker().ClearCache()
		start := time.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < gc; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One context per worker: each goroutine reuses its own
				// scratch arena across the queries it drains, the same
				// steady state a pooled server reaches.
				qc := core.NewQueryContext()
				for {
					qi := next.Add(1) - 1
					if qi >= int64(len(w.Queries)) {
						return
					}
					qc.ResetForReuse(nil)
					knn.SearchSpec(ix, qc, w.Objs, w.Queries[qi], knn.UnboundedSpec(w.K, knn.VariantKNN))
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		pt := ThroughputPoint{Goroutines: gc, Queries: len(w.Queries), Wall: wall}
		if wall > 0 {
			pt.QPS = float64(pt.Queries) / wall.Seconds()
		}
		if baseQPS == 0 {
			baseQPS = pt.QPS
		}
		if baseQPS > 0 {
			pt.Speedup = pt.QPS / baseQPS
		}
		io := ix.Tracker().Stats()
		pt.PageHits, pt.PageMisses = io.Hits, io.Misses
		points = append(points, pt)
	}
	return points
}

// ThroughputTable renders a sweep as a plain-text table.
func ThroughputTable(title string, points []ThroughputPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%12s %10s %12s %12s %10s %12s %12s\n",
		"goroutines", "queries", "wall", "QPS", "speedup", "page-hits", "page-misses")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %10d %12s %12.0f %9.2fx %12d %12d\n",
			p.Goroutines, p.Queries, p.Wall.Round(time.Microsecond), p.QPS, p.Speedup,
			p.PageHits, p.PageMisses)
	}
	return b.String()
}
