package bench

import (
	"runtime"
	"strings"
	"testing"
)

func TestThroughputSweepReplaysWholeWorkload(t *testing.T) {
	env := smallEnv(t)
	w := env.NewThroughputWorkload(40, 0.2, 3, 5)
	points := ThroughputSweep(env.Ix, w, []int{1, 2})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Queries != 40 {
			t.Fatalf("queries = %d", p.Queries)
		}
		if p.QPS <= 0 || p.Wall <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.PageHits+p.PageMisses == 0 {
			t.Fatal("disk-resident sweep should report pool traffic")
		}
	}
	if points[0].Speedup != 1.0 {
		t.Fatalf("base speedup = %v", points[0].Speedup)
	}
	table := ThroughputTable("t", points)
	if !strings.Contains(table, "QPS") || len(strings.Split(strings.TrimSpace(table), "\n")) != 4 {
		t.Fatalf("table:\n%s", table)
	}
}

// TestThroughputScalesWithGoroutines is the acceptance check that parallel
// QPS beats single-goroutine QPS on a shared disk-resident index. Margins
// stay loose: the point is "sharding unlocked parallelism", not a precise
// speedup figure.
func TestThroughputScalesWithGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput scaling check skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs >= 4 CPUs to demonstrate scaling")
	}
	env, err := NewEnv(48, 48, DefaultSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	w := env.NewThroughputWorkload(600, 0.05, 10, 9)
	// Best of two sweeps guards against scheduler noise on loaded CI boxes.
	best := 0.0
	for try := 0; try < 2; try++ {
		points := ThroughputSweep(env.Ix, w, []int{1, 4})
		if s := points[1].Speedup; s > best {
			best = s
		}
		if best >= 1.3 {
			break
		}
	}
	if best < 1.15 {
		t.Fatalf("4-goroutine speedup = %.2fx; parallel querying should beat single-goroutine", best)
	}
}
