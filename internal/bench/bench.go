// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index). It
// provides the default experiment environment (a synthetic road network with
// a disk-resident SILC index and a 5% LRU buffer pool, standing in for the
// paper's US eastern-seaboard extract), workload generators, per-algorithm
// aggregation, and plain-text table rendering used by cmd/experiments and
// the package-level benchmarks.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/knn"
)

// Env is one experiment environment: a network plus its SILC index.
type Env struct {
	G  *graph.Network
	Ix *core.Index
}

// DefaultRows/DefaultCols size the default experiment lattice (~15k vertices
// after deletions; the paper's network has 91k — shapes, not absolute
// numbers, are the reproduction target). The size is chosen so the paper's
// smallest object fraction, |S| = 0.001N, still exceeds k = 10.
const (
	DefaultRows = 128
	DefaultCols = 128
	DefaultSeed = 2008 // the paper's year; any seed works
)

// NewEnv builds an environment on a rows x cols lattice. diskResident
// attaches the paged-storage model with the paper's 5% LRU buffer pool.
//
// The evaluation network uses mild weight noise (travel cost close to road
// length, as in the paper's TIGER-derived network): interval tightness — and
// with it the refinement counts the figures measure — is a property of the
// weights, and wildly noisy weights belong in correctness tests, not in the
// evaluation substrate.
func NewEnv(rows, cols int, seed int64, diskResident bool) (*Env, error) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{
		Rows: rows, Cols: cols, Seed: seed,
		WeightNoise: 0.1,
	})
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(g, core.BuildOptions{
		DiskResident:  diskResident,
		CacheFraction: 0.05,
	})
	if err != nil {
		return nil, err
	}
	return &Env{G: g, Ix: ix}, nil
}

// DefaultEnv builds the standard evaluation environment.
func DefaultEnv() (*Env, error) {
	return NewEnv(DefaultRows, DefaultCols, DefaultSeed, true)
}

// ObjectSet draws round(fraction*N) distinct random vertices as S (the
// paper's "object distribution |S| as a fraction of N").
func (e *Env) ObjectSet(fraction float64, rng *rand.Rand) *knn.Objects {
	n := e.G.NumVertices()
	m := int(math.Round(fraction * float64(n)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	perm := rng.Perm(n)
	vs := make([]graph.VertexID, m)
	for i := 0; i < m; i++ {
		vs[i] = graph.VertexID(perm[i])
	}
	return knn.NewObjects(e.G, vs)
}

// Query draws a random query vertex.
func (e *Env) Query(rng *rand.Rand) graph.VertexID {
	return graph.VertexID(rng.Intn(e.G.NumVertices()))
}

// Algorithm is a named kNN algorithm. Baseline marks the graph-expansion
// comparators whose disk-resident database is the network alone.
//
// Each Algorithm owns one reusable query context, so consecutive Run calls
// measure the steady state the query path is designed for (scratch arenas
// warm, zero allocations) rather than cold-start setup. Run is therefore
// not safe for concurrent use; the harness batches queries sequentially.
type Algorithm struct {
	Name     string
	Baseline bool
	Run      func(core.QueryIndex, *knn.Objects, graph.VertexID, int) knn.Result
}

// pooled wraps a Spec-style entry point with a persistent query context,
// re-armed before every call like the Engine layer's context pool does.
func pooled(run func(core.QueryIndex, *core.QueryContext, *knn.Objects, graph.VertexID, knn.Spec) knn.Result) func(core.QueryIndex, *knn.Objects, graph.VertexID, int) knn.Result {
	qc := core.NewQueryContext()
	return func(ix core.QueryIndex, o *knn.Objects, q graph.VertexID, k int) knn.Result {
		qc.ResetForReuse(nil)
		return run(ix, qc, o, q, knn.UnboundedSpec(k, knn.VariantKNN))
	}
}

// Algorithms returns the full comparison set in the paper's order.
func Algorithms() []Algorithm {
	algos := []Algorithm{
		{Name: "INE", Baseline: true, Run: pooled(knn.INESpec)},
		{Name: "IER", Baseline: true, Run: pooled(knn.IERSpec)},
	}
	for _, v := range knn.Variants {
		v := v
		qc := core.NewQueryContext()
		algos = append(algos, Algorithm{
			Name: v.String(),
			Run: func(ix core.QueryIndex, o *knn.Objects, q graph.VertexID, k int) knn.Result {
				qc.ResetForReuse(nil)
				return knn.SearchSpec(ix, qc, o, q, knn.UnboundedSpec(k, v))
			},
		})
	}
	return algos
}

// IERAStarAlgorithm is the ablation variant of IER using A* instead of the
// paper's per-candidate Dijkstra.
func IERAStarAlgorithm() Algorithm {
	qc := core.NewQueryContext()
	return Algorithm{Name: "IER-A*", Baseline: true, Run: func(ix core.QueryIndex, o *knn.Objects, q graph.VertexID, k int) knn.Result {
		qc.ResetForReuse(nil)
		return knn.IERAStarSpec(ix, qc, o, q, knn.UnboundedSpec(k, knn.VariantKNN))
	}}
}

// SILCVariants returns only the SILC-driven family.
func SILCVariants() []Algorithm {
	return Algorithms()[2:]
}

// Agg aggregates query statistics for one algorithm at one sweep point.
// All means are per query.
type Agg struct {
	Algorithm string
	Queries   int

	TotalTime time.Duration // CPU + modeled I/O
	CPUTime   time.Duration
	IOTime    time.Duration
	PQTime    time.Duration

	MaxQueue    float64
	Refinements float64
	Lookups     float64
	KMinAccepts float64 // per query
	LOps        float64
	Settled     float64
	IOAccesses  float64
	IOMisses    float64

	// Estimate-quality ratios, averaged over queries where defined.
	D0kOverDk      float64
	KMinDistOverDk float64
	ratioCount     int

	sumTotal, sumCPU, sumIO, sumPQ time.Duration
}

func (a *Agg) add(s knn.Stats) {
	a.Queries++
	a.sumCPU += s.CPU
	a.sumIO += s.IOTime
	a.sumPQ += s.PQTime
	a.sumTotal += s.CPU + s.IOTime
	a.MaxQueue += float64(s.MaxQueue)
	a.Refinements += float64(s.Refinements)
	a.Lookups += float64(s.Lookups)
	a.KMinAccepts += float64(s.KMinDistAccepts)
	a.LOps += float64(s.LOps)
	a.Settled += float64(s.Settled)
	a.IOAccesses += float64(s.IO.Accesses())
	a.IOMisses += float64(s.IO.Misses)
	if s.D0k > 0 && s.DkFinal > 0 {
		a.D0kOverDk += s.D0k / s.DkFinal
		a.KMinDistOverDk += s.KMinDist0 / s.DkFinal
		a.ratioCount++
	}
}

func (a *Agg) finish() {
	q := float64(a.Queries)
	if a.Queries == 0 {
		return
	}
	a.TotalTime = a.sumTotal / time.Duration(a.Queries)
	a.CPUTime = a.sumCPU / time.Duration(a.Queries)
	a.IOTime = a.sumIO / time.Duration(a.Queries)
	a.PQTime = a.sumPQ / time.Duration(a.Queries)
	a.MaxQueue /= q
	a.Refinements /= q
	a.Lookups /= q
	a.KMinAccepts /= q
	a.LOps /= q
	a.Settled /= q
	a.IOAccesses /= q
	a.IOMisses /= q
	if a.ratioCount > 0 {
		a.D0kOverDk /= float64(a.ratioCount)
		a.KMinDistOverDk /= float64(a.ratioCount)
	}
}

// SweepSpec is one point of the evaluation sweeps: the paper varies either
// the object fraction |S|/N at fixed k, or k at fixed |S| = 0.07N.
type SweepSpec struct {
	Label    string
	Fraction float64
	K        int
}

// VarySSpec reproduces the paper's |S| sweep at k=10.
func VarySSpec() []SweepSpec {
	out := []SweepSpec{}
	for _, f := range []float64{0.001, 0.01, 0.05, 0.2} {
		out = append(out, SweepSpec{Label: fmt.Sprintf("|S|=%gN", f), Fraction: f, K: 10})
	}
	return out
}

// VaryKSpec reproduces the paper's k sweep at |S| = 0.07N.
func VaryKSpec() []SweepSpec {
	out := []SweepSpec{}
	for _, k := range []int{5, 10, 50, 100, 300} {
		out = append(out, SweepSpec{Label: fmt.Sprintf("k=%d", k), Fraction: 0.07, K: k})
	}
	return out
}

// SweepPoint is the aggregated outcome of one spec across all algorithms.
type SweepPoint struct {
	Spec SweepSpec
	Per  map[string]*Agg
}

// Sweep runs queriesPer random (object set, query) pairs per spec through
// every algorithm, regenerating object sets per query as the paper does
// ("each query run on at least 50 random input datasets of same size").
//
// Every algorithm replays the identical workload, and each algorithm's batch
// starts from a cold buffer pool and warms its own cache across the batch —
// running the algorithms interleaved on one pool would let later algorithms
// ride the pages the first one faulted in.
func (e *Env) Sweep(specs []SweepSpec, queriesPer int, algos []Algorithm, seed int64) []SweepPoint {
	rng := rand.New(rand.NewSource(seed))
	points := make([]SweepPoint, 0, len(specs))
	for _, spec := range specs {
		type workload struct {
			objs *knn.Objects
			q    graph.VertexID
		}
		queries := make([]workload, queriesPer)
		for qi := range queries {
			queries[qi] = workload{objs: e.ObjectSet(spec.Fraction, rng), q: e.Query(rng)}
		}
		pt := SweepPoint{Spec: spec, Per: make(map[string]*Agg, len(algos))}
		for _, a := range algos {
			agg := &Agg{Algorithm: a.Name}
			pt.Per[a.Name] = agg
			e.Ix.Tracker().SetScope(a.Baseline)
			for _, w := range queries {
				res := a.Run(e.Ix, w.objs, w.q, spec.K)
				agg.add(res.Stats)
			}
			agg.finish()
		}
		points = append(points, pt)
	}
	return points
}

// FitLogLogSlope fits a least-squares line to (log x, log y) and returns its
// slope — the storage-growth exponent of the paper's fig. p.16.
func FitLogLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("bench: need >= 2 points with equal lengths")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// SortedAlgorithmNames returns the map keys of a sweep point in the paper's
// presentation order.
func SortedAlgorithmNames(per map[string]*Agg) []string {
	order := map[string]int{"INE": 0, "IER": 1, "INN": 2, "KNN-I": 3, "KNN": 4, "KNN-M": 5}
	names := make([]string, 0, len(per))
	for name := range per {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	return names
}
