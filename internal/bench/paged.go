package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"silc/internal/core"
	"silc/internal/diskio"
	"silc/internal/graph"
	"silc/internal/store"
)

// PagedIOResult compares the modeled disk-resident configuration (in-RAM
// index, paging simulated over a block layout) with the real paged store
// (quadtrees on disk, pool misses are actual reads) on the same network and
// query mix — finally putting a measured I/O time next to the modeled one.
type PagedIOResult struct {
	Lattice  int     `json:"lattice"`
	Vertices int     `json:"vertices"`
	Queries  int     `json:"queries"`
	CacheFr  float64 `json:"cache_fraction"`

	FileBytes  int64 `json:"file_bytes"`
	BlockPages int64 `json:"block_pages"`
	PoolPages  int   `json:"pool_pages"`

	ModeledHits   int64         `json:"modeled_hits"`
	ModeledMisses int64         `json:"modeled_misses"`
	ModeledIOTime time.Duration `json:"modeled_io_time_ns"`

	PagedHits     int64         `json:"paged_hits"`
	PagedMisses   int64         `json:"paged_misses"`
	PagedModelIO  time.Duration `json:"paged_modeled_io_time_ns"`
	ActualReads   int64         `json:"actual_reads"`
	ActualBytes   int64         `json:"actual_read_bytes"`
	MeasuredIO    time.Duration `json:"measured_io_time_ns"`
	ResidentPages int           `json:"resident_pages"`
}

// PagedIO builds one index, serves the same random exact-distance workload
// from (a) the modeled disk-resident index and (b) a real paged store file,
// and reports both I/O accountings.
func PagedIO(rows, cols, queries int, seed int64, cacheFraction float64) (*PagedIOResult, error) {
	if cacheFraction <= 0 {
		cacheFraction = 0.05
	}
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(g, core.BuildOptions{
		DiskResident:  true,
		CacheFraction: cacheFraction,
	})
	if err != nil {
		return nil, err
	}

	f, err := os.CreateTemp("", "silc-bench-*.silcpg")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	defer os.Remove(path)
	if _, err := ix.WritePaged(f); err != nil {
		f.Close()
		return nil, err
	}
	fileBytes, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	st, err := store.OpenFile(path, store.OpenOptions{CacheFraction: cacheFraction})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	px := core.NewPagedIndex(core.PagedConfig{
		Graph: st.Graph(), Source: st, Tracker: st.Tracker(),
		Radius: st.Radius(), Lenient: st.Lenient(),
	})

	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed * 7919))
	pairs := make([][2]graph.VertexID, queries)
	for i := range pairs {
		pairs[i] = [2]graph.VertexID{graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))}
	}

	run := func(target core.QueryIndex) diskio.Stats {
		var total diskio.Stats
		for _, p := range pairs {
			qc := core.NewQueryContext()
			core.ExactDistance(target, qc, p[0], p[1])
			if err := qc.Err(); err != nil {
				panic(fmt.Sprintf("bench: paged query failed: %v", err))
			}
			total.Add(qc.IO)
		}
		return total
	}

	ix.Tracker().ClearCache()
	modeled := run(ix)
	paged := run(px)

	return &PagedIOResult{
		Lattice:       rows,
		Vertices:      n,
		Queries:       queries,
		CacheFr:       cacheFraction,
		FileBytes:     fileBytes,
		BlockPages:    st.BlockPages(),
		PoolPages:     st.Tracker().Pool().Capacity(),
		ModeledHits:   modeled.Hits,
		ModeledMisses: modeled.Misses,
		ModeledIOTime: modeled.ModeledIOTime(ix.Tracker().MissLatency()),
		PagedHits:     paged.Hits,
		PagedMisses:   paged.Misses,
		PagedModelIO:  paged.ModeledIOTime(st.Tracker().MissLatency()),
		ActualReads:   st.ReadStats().Reads,
		ActualBytes:   st.ReadStats().Bytes,
		MeasuredIO:    st.ReadStats().Time,
		ResidentPages: st.ResidentPages(),
	}, nil
}

// RenderPagedIO prints the modeled-vs-measured comparison.
func RenderPagedIO(w io.Writer, r *PagedIOResult) {
	fmt.Fprintf(w, "PG — real paged store vs modeled disk residency (%d queries, %dx%d, cache %.0f%%)\n",
		r.Queries, r.Lattice, r.Lattice, r.CacheFr*100)
	fmt.Fprintf(w, "  paged file:     %.2f MiB, %d block pages, pool %d pages\n",
		float64(r.FileBytes)/(1<<20), r.BlockPages, r.PoolPages)
	fmt.Fprintf(w, "  modeled index:  %d hits, %d misses, modeled I/O %v\n",
		r.ModeledHits, r.ModeledMisses, r.ModeledIOTime.Round(time.Microsecond))
	fmt.Fprintf(w, "  paged store:    %d hits, %d misses, modeled I/O %v\n",
		r.PagedHits, r.PagedMisses, r.PagedModelIO.Round(time.Microsecond))
	fmt.Fprintf(w, "  actual reads:   %d (%.2f MiB), measured I/O %v, %d pages resident\n\n",
		r.ActualReads, float64(r.ActualBytes)/(1<<20), r.MeasuredIO.Round(time.Microsecond), r.ResidentPages)
}
