package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// RenderStorageGrowth prints the F1 table (Morton blocks vs network size).
func RenderStorageGrowth(w io.Writer, rows []StorageRow, slope float64) {
	fmt.Fprintln(w, "F1 — Shortest-path quadtree storage growth (paper p.16, slope ~1.5)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "lattice\tvertices\tedges\tMorton blocks\tblocks/vertex\tbytes\tbuild")
	for _, r := range rows {
		fmt.Fprintf(tw, "%dx%d\t%d\t%d\t%d\t%.1f\t%s\t%s\n",
			r.Lattice, r.Lattice, r.Vertices, r.Edges, r.Blocks, r.PerVertex,
			byteCount(r.Bytes), r.BuildTime.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Fprintf(w, "fitted log-log slope: %.3f (paper: 1.5)\n\n", slope)
}

// RenderVisitSummary prints the F2 comparison (Dijkstra vs SILC retrieval).
func RenderVisitSummary(w io.Writer, sum VisitSummary, sample []VisitRow) {
	fmt.Fprintln(w, "F2 — Vertices visited for point-to-point shortest paths (paper pp.3/7)")
	fmt.Fprintf(w, "network: %d vertices, %d queries\n", sum.NetworkVertices, sum.Queries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tmean vertices visited\tshare of network")
	fmt.Fprintf(tw, "Dijkstra\t%.0f\t%.0f%%\n", sum.MeanDijkstra, 100*sum.DijkstraFraction)
	fmt.Fprintf(tw, "A*\t%.0f\t%.0f%%\n", sum.MeanAStar, 100*sum.MeanAStar/float64(sum.NetworkVertices))
	fmt.Fprintf(tw, "SILC\t%.0f\t%.1f%%\n", sum.MeanSILC, 100*sum.MeanSILC/float64(sum.NetworkVertices))
	tw.Flush()
	fmt.Fprintf(w, "mean path length: %.0f hops (SILC visits exactly the path)\n", sum.MeanPathHops)
	if len(sample) > 0 {
		r := sample[0]
		fmt.Fprintf(w, "example query: %d-hop path; Dijkstra settled %d of %d vertices, SILC %d\n",
			r.PathHops, r.DijkstraSettled, sum.NetworkVertices, r.SILCSteps)
	}
	fmt.Fprintln(w)
}

// RenderModels prints the T1 storage-model trade-off table (paper p.11).
func RenderModels(w io.Writer, rows []ModelRow) {
	fmt.Fprintln(w, "T1 — Shortest-path storage models (paper p.11)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tstorage\tbuild\tdistance query\tpath query\tcomplexity")
	for _, r := range rows {
		path := "-"
		if r.PathQuery > 0 {
			path = fmtDur(r.PathQuery)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Model, byteCount(r.Bytes), r.BuildTime.Round(time.Millisecond),
			fmtDur(r.DistQuery), path, r.Note)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// metricFn extracts one formatted cell per algorithm aggregate.
type metricFn func(point SweepPoint, name string) string

// renderSweep prints one metric across sweep points (rows) and algorithms
// (columns).
func renderSweep(w io.Writer, title string, points []SweepPoint, names []string, metric metricFn) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "point")
	for _, n := range names {
		fmt.Fprintf(tw, "\t%s", n)
	}
	fmt.Fprintln(tw)
	for _, pt := range points {
		fmt.Fprint(tw, pt.Spec.Label)
		for _, n := range names {
			fmt.Fprintf(tw, "\t%s", metric(pt, n))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func namesOf(points []SweepPoint, only []string) []string {
	if len(points) == 0 {
		return nil
	}
	all := SortedAlgorithmNames(points[0].Per)
	if only == nil {
		return all
	}
	var out []string
	for _, n := range all {
		for _, o := range only {
			if n == o {
				out = append(out, n)
			}
		}
	}
	return out
}

// RenderF3 prints mean total execution time (CPU + modeled I/O) per
// algorithm — the paper's fig. p.33.
func RenderF3(w io.Writer, title string, points []SweepPoint) {
	renderSweep(w, "F3 — Execution time, "+title+" (paper p.33)", points, namesOf(points, nil),
		func(pt SweepPoint, name string) string {
			return fmtDur(pt.Per[name].TotalTime)
		})
}

// RenderF4 prints the maximum priority-queue size of the SILC variants as a
// percentage of INN's — the paper's fig. p.34.
func RenderF4(w io.Writer, title string, points []SweepPoint) {
	renderSweep(w, "F4 — Max queue size as % of INN, "+title+" (paper p.34)", points,
		namesOf(points, []string{"KNN-I", "KNN", "KNN-M"}),
		func(pt SweepPoint, name string) string {
			inn := pt.Per["INN"]
			if inn == nil || inn.MaxQueue == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*pt.Per[name].MaxQueue/inn.MaxQueue)
		})
}

// RenderF5 prints refinement operations as a percentage of INN's — the
// paper's fig. p.35.
func RenderF5(w io.Writer, title string, points []SweepPoint) {
	renderSweep(w, "F5 — Refinements as % of INN, "+title+" (paper p.35)", points,
		namesOf(points, []string{"KNN-I", "KNN", "KNN-M"}),
		func(pt SweepPoint, name string) string {
			inn := pt.Per["INN"]
			if inn == nil || inn.Refinements == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*pt.Per[name].Refinements/inn.Refinements)
		})
}

// RenderF6 prints the share of kNN-M's results accepted directly against
// KMINDIST — the paper's fig. p.36.
func RenderF6(w io.Writer, title string, points []SweepPoint) {
	renderSweep(w, "F6 — kNN-M neighbors accepted via KMINDIST, "+title+" (paper p.36)", points,
		namesOf(points, []string{"KNN-M"}),
		func(pt SweepPoint, name string) string {
			a := pt.Per[name]
			if a == nil || pt.Spec.K == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*a.KMinAccepts/float64(pt.Spec.K))
		})
}

// RenderF7 prints the estimate-quality ratios D0k/Dk and KMINDIST/Dk from
// the kNN runs — the paper's fig. p.37 (~120% and ~90%).
func RenderF7(w io.Writer, title string, points []SweepPoint) {
	renderSweep(w, "F7 — Quality of estimates vs true Dk, "+title+" (paper p.37)", points,
		[]string{"D0k/Dk", "KMINDIST/Dk"},
		func(pt SweepPoint, name string) string {
			a := pt.Per["KNN"]
			if a == nil {
				return "-"
			}
			if name == "D0k/Dk" {
				return fmt.Sprintf("%.0f%%", 100*a.D0kOverDk)
			}
			return fmt.Sprintf("%.0f%%", 100*a.KMinDistOverDk)
		})
}

// RenderF8 prints the time decomposition of the SILC variants: total,
// modeled I/O, and the L/Dk manipulation component (KNN-PQ) — the paper's
// fig. p.38.
func RenderF8(w io.Writer, title string, points []SweepPoint) {
	names := namesOf(points, []string{"INN", "KNN-I", "KNN", "KNN-M"})
	renderSweep(w, "F8a — Total time, "+title+" (paper p.38)", points, names,
		func(pt SweepPoint, name string) string { return fmtDur(pt.Per[name].TotalTime) })
	renderSweep(w, "F8b — Modeled I/O time, "+title+" (paper p.38)", points, names,
		func(pt SweepPoint, name string) string { return fmtDur(pt.Per[name].IOTime) })
	renderSweep(w, "F8c — KNN-PQ (result-queue manipulation) time, "+title, points,
		namesOf(points, []string{"KNN-I", "KNN", "KNN-M"}),
		func(pt SweepPoint, name string) string { return fmtDur(pt.Per[name].PQTime) })
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func byteCount(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
