package bench

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func smallEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(16, 16, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestObjectSetSizes(t *testing.T) {
	env := smallEnv(t)
	rng := rand.New(rand.NewSource(1))
	n := env.G.NumVertices()
	for _, f := range []float64{0.001, 0.05, 0.5, 1.0, 2.0} {
		objs := env.ObjectSet(f, rng)
		want := int(math.Round(f * float64(n)))
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		if objs.Len() != want {
			t.Fatalf("fraction %v: got %d objects want %d", f, objs.Len(), want)
		}
	}
}

func TestSweepProducesAllAlgorithms(t *testing.T) {
	env := smallEnv(t)
	specs := []SweepSpec{{Label: "test", Fraction: 0.1, K: 3}}
	points := env.Sweep(specs, 3, Algorithms(), 42)
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	pt := points[0]
	for _, name := range []string{"INE", "IER", "INN", "KNN", "KNN-I", "KNN-M"} {
		agg := pt.Per[name]
		if agg == nil {
			t.Fatalf("missing algorithm %s", name)
		}
		if agg.Queries != 3 {
			t.Fatalf("%s: queries = %d", name, agg.Queries)
		}
		if agg.TotalTime <= 0 {
			t.Fatalf("%s: no time recorded", name)
		}
	}
}

func TestSweepDeterministicWorkload(t *testing.T) {
	env := smallEnv(t)
	specs := []SweepSpec{{Label: "d", Fraction: 0.1, K: 4}}
	a := env.Sweep(specs, 4, SILCVariants(), 11)
	b := env.Sweep(specs, 4, SILCVariants(), 11)
	// Counting stats must be identical for identical seeds (times differ).
	for name, agg := range a[0].Per {
		other := b[0].Per[name]
		if agg.Refinements != other.Refinements || agg.MaxQueue != other.MaxQueue {
			t.Fatalf("%s: sweep not deterministic: %v/%v vs %v/%v",
				name, agg.Refinements, agg.MaxQueue, other.Refinements, other.MaxQueue)
		}
	}
}

func TestFitLogLogSlope(t *testing.T) {
	// y = 3 x^1.5 exactly.
	xs := []float64{100, 400, 1600, 6400}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	if got := FitLogLogSlope(xs, ys); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("slope = %v", got)
	}
}

func TestFitLogLogSlopePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitLogLogSlope([]float64{1}, []float64{1})
}

func TestStorageGrowthSlopeNearPaper(t *testing.T) {
	rows, slope, err := StorageGrowth([]int{12, 20, 32, 48}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Blocks <= rows[i-1].Blocks {
			t.Fatal("block counts not increasing")
		}
	}
	// The paper reports slope 1.5; accept the same regime.
	if slope < 1.2 || slope > 1.8 {
		t.Fatalf("slope %.3f outside the paper's regime [1.2, 1.8]", slope)
	}
}

func TestDijkstraVsSILCShape(t *testing.T) {
	env := smallEnv(t)
	rows, sum := env.DijkstraVsSILC(20, 3)
	if len(rows) != 20 || sum.Queries != 20 {
		t.Fatal("row count mismatch")
	}
	// Dijkstra must settle far more vertices than the path length; SILC
	// touches exactly the path.
	if sum.MeanDijkstra <= sum.MeanSILC {
		t.Fatalf("Dijkstra %.0f should dwarf SILC %.0f", sum.MeanDijkstra, sum.MeanSILC)
	}
	if sum.MeanAStar > sum.MeanDijkstra {
		t.Fatalf("A* %.0f settled more than Dijkstra %.0f", sum.MeanAStar, sum.MeanDijkstra)
	}
	for _, r := range rows {
		if r.SILCSteps != r.PathHops {
			t.Fatalf("SILC steps %d != path hops %d", r.SILCSteps, r.PathHops)
		}
	}
}

func TestStorageModelsTable(t *testing.T) {
	rows, err := StorageModels(12, 12, 9, 0.25, 50)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ModelRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	exp, ok1 := byName["Explicit paths"]
	nh, ok2 := byName["Next-hop matrix"]
	silc, ok3 := byName["SILC"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing models: %v", rows)
	}
	// The storage hierarchy of the paper's table: explicit > next-hop > SILC
	// at this size regime.
	if !(exp.Bytes > nh.Bytes) {
		t.Fatalf("explicit %d not above next-hop %d", exp.Bytes, nh.Bytes)
	}
	if !(nh.Bytes > silc.Bytes) {
		t.Fatalf("next-hop %d not above SILC %d", nh.Bytes, silc.Bytes)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	env := smallEnv(t)
	points := env.Sweep([]SweepSpec{{Label: "|S|=0.1N", Fraction: 0.1, K: 3}}, 2, Algorithms(), 13)
	var buf bytes.Buffer
	RenderF3(&buf, "vary |S|", points)
	RenderF4(&buf, "vary |S|", points)
	RenderF5(&buf, "vary |S|", points)
	RenderF6(&buf, "vary |S|", points)
	RenderF7(&buf, "vary |S|", points)
	RenderF8(&buf, "vary |S|", points)

	srows, slope, err := StorageGrowth([]int{8, 12}, 3)
	if err != nil {
		t.Fatal(err)
	}
	RenderStorageGrowth(&buf, srows, slope)
	vrows, vsum := env.DijkstraVsSILC(5, 1)
	RenderVisitSummary(&buf, vsum, vrows)
	mrows, err := StorageModels(8, 8, 2, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	RenderModels(&buf, mrows)

	out := buf.String()
	for _, want := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8a", "T1", "KNN-M", "INE", "slope"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestSortedAlgorithmNames(t *testing.T) {
	per := map[string]*Agg{
		"KNN": {}, "INE": {}, "ZZZ": {}, "IER": {}, "KNN-M": {}, "INN": {}, "KNN-I": {},
	}
	got := SortedAlgorithmNames(per)
	want := []string{"INE", "IER", "INN", "KNN-I", "KNN", "KNN-M", "ZZZ"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}
