package bench

import (
	"fmt"
	"math/rand"
	"time"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/oracle"
	"silc/internal/sssp"
)

// StorageRow is one point of the storage-growth experiment (fig. p.16):
// Morton block count as a function of network size.
type StorageRow struct {
	Lattice   int
	Vertices  int
	Edges     int
	Blocks    int64
	Bytes     int64
	PerVertex float64
	BuildTime time.Duration
}

// StorageGrowth builds SILC indexes over increasingly large road networks
// and returns the measurements plus the fitted log-log slope (the paper
// reports 1.5).
func StorageGrowth(lattices []int, seed int64) ([]StorageRow, float64, error) {
	rows := make([]StorageRow, 0, len(lattices))
	xs := make([]float64, 0, len(lattices))
	ys := make([]float64, 0, len(lattices))
	for _, rc := range lattices {
		g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rc, Cols: rc, Seed: seed})
		if err != nil {
			return nil, 0, err
		}
		ix, err := core.Build(g, core.BuildOptions{})
		if err != nil {
			return nil, 0, err
		}
		s := ix.Stats()
		rows = append(rows, StorageRow{
			Lattice:   rc,
			Vertices:  s.Vertices,
			Edges:     s.Edges,
			Blocks:    s.TotalBlocks,
			Bytes:     s.TotalBytes,
			PerVertex: s.BlocksPerVertex(),
			BuildTime: s.BuildTime,
		})
		xs = append(xs, float64(s.Vertices))
		ys = append(ys, float64(s.TotalBlocks))
	}
	return rows, FitLogLogSlope(xs, ys), nil
}

// VisitRow is one point-to-point query of the Dijkstra-vs-SILC comparison
// (the paper's motivating example: Dijkstra settles 3191 of 4233 vertices
// for a 76-edge path, while SILC touches only path vertices).
type VisitRow struct {
	PathHops        int
	DijkstraSettled int
	AStarSettled    int
	SILCSteps       int
}

// VisitSummary aggregates the comparison.
type VisitSummary struct {
	Queries          int
	NetworkVertices  int
	MeanPathHops     float64
	MeanDijkstra     float64
	MeanAStar        float64
	MeanSILC         float64
	DijkstraFraction float64 // mean settled / network size
}

// DijkstraVsSILC measures, for random point-to-point queries, how many
// vertices each method touches to retrieve the shortest path.
func (e *Env) DijkstraVsSILC(queries int, seed int64) ([]VisitRow, VisitSummary) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]VisitRow, 0, queries)
	sum := VisitSummary{Queries: queries, NetworkVertices: e.G.NumVertices()}
	for i := 0; i < queries; i++ {
		s := e.Query(rng)
		d := e.Query(rng)
		if s == d {
			d = graph.VertexID((int(d) + 1) % e.G.NumVertices())
		}
		dij := sssp.ShortestPath(e.G, s, d)
		ast := sssp.AStar(e.G, s, d)
		path := e.Ix.Path(s, d)
		row := VisitRow{
			PathHops:        len(path) - 1,
			DijkstraSettled: dij.Settled,
			AStarSettled:    ast.Settled,
			SILCSteps:       len(path) - 1, // one block lookup per hop
		}
		rows = append(rows, row)
		sum.MeanPathHops += float64(row.PathHops)
		sum.MeanDijkstra += float64(row.DijkstraSettled)
		sum.MeanAStar += float64(row.AStarSettled)
		sum.MeanSILC += float64(row.SILCSteps)
	}
	q := float64(queries)
	sum.MeanPathHops /= q
	sum.MeanDijkstra /= q
	sum.MeanAStar /= q
	sum.MeanSILC /= q
	sum.DijkstraFraction = sum.MeanDijkstra / float64(sum.NetworkVertices)
	return rows, sum
}

// ModelRow is one row of the storage-model trade-off table (paper p.11).
type ModelRow struct {
	Model     string
	Bytes     int64
	BuildTime time.Duration
	DistQuery time.Duration // mean exact (or eps-approximate) distance query
	PathQuery time.Duration // mean path retrieval; 0 if unsupported
	Note      string
}

// StorageModels measures the space/query-time trade-off across every
// storage model on one network small enough for the O(n^3) strawman.
func StorageModels(rows, cols int, seed int64, eps float64, queries int) ([]ModelRow, error) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ s, d graph.VertexID }
	pairs := make([]pair, queries)
	for i := range pairs {
		pairs[i] = pair{
			s: graph.VertexID(rng.Intn(g.NumVertices())),
			d: graph.VertexID(rng.Intn(g.NumVertices())),
		}
	}
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start) / time.Duration(len(pairs))
	}
	var out []ModelRow

	// Dijkstra: no precomputation, per-query graph search.
	start := time.Now()
	dist := timeIt(func() {
		for _, p := range pairs {
			sssp.ShortestPath(g, p.s, p.d)
		}
	})
	out = append(out, ModelRow{
		Model: "Dijkstra", Bytes: int64(g.NumEdges()) * 12,
		BuildTime: time.Since(start) - dist*time.Duration(len(pairs)),
		DistQuery: dist, PathQuery: dist,
		Note: "O(m+n) space, O(m+n log n) query",
	})

	// Explicit all-pairs paths.
	start = time.Now()
	exp, err := oracle.BuildExplicitPaths(g)
	if err != nil {
		return nil, err
	}
	buildExp := time.Since(start)
	out = append(out, ModelRow{
		Model: "Explicit paths", Bytes: exp.SizeBytes(), BuildTime: buildExp,
		DistQuery: timeIt(func() {
			for _, p := range pairs {
				exp.Distance(p.s, p.d)
			}
		}),
		PathQuery: timeIt(func() {
			for _, p := range pairs {
				exp.Path(p.s, p.d)
			}
		}),
		Note: "O(n^3) space, O(1) query",
	})

	// Next-hop matrix.
	start = time.Now()
	nh, err := oracle.BuildNextHop(g)
	if err != nil {
		return nil, err
	}
	buildNH := time.Since(start)
	out = append(out, ModelRow{
		Model: "Next-hop matrix", Bytes: nh.SizeBytes(), BuildTime: buildNH,
		DistQuery: timeIt(func() {
			for _, p := range pairs {
				nh.Distance(p.s, p.d)
			}
		}),
		PathQuery: timeIt(func() {
			for _, p := range pairs {
				nh.Path(p.s, p.d)
			}
		}),
		Note: "O(n^2) space, O(k) query",
	})

	// SILC.
	start = time.Now()
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	buildSILC := time.Since(start)
	out = append(out, ModelRow{
		Model: "SILC", Bytes: ix.Stats().TotalBytes, BuildTime: buildSILC,
		DistQuery: timeIt(func() {
			for _, p := range pairs {
				ix.Distance(p.s, p.d)
			}
		}),
		PathQuery: timeIt(func() {
			for _, p := range pairs {
				ix.Path(p.s, p.d)
			}
		}),
		Note: "O(n^1.5) space, O(k log n) query",
	})

	// eps-approximate distance oracle.
	start = time.Now()
	or, err := oracle.BuildDistanceOracle(ix, eps)
	if err != nil {
		return nil, err
	}
	buildOr := time.Since(start)
	out = append(out, ModelRow{
		Model: fmt.Sprintf("Distance oracle (eps=%g)", eps), Bytes: or.SizeBytes(), BuildTime: buildOr,
		DistQuery: timeIt(func() {
			for _, p := range pairs {
				or.Distance(p.s, p.d)
			}
		}),
		Note: "O(n/eps^2)-style space, approx distance only",
	})
	return out, nil
}
