package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/partition"
)

// ShardedComparison measures the sharded index against the monolithic one
// on the same network and workload: build wall time, index storage, and
// parallel kNN query throughput — the SH experiment.
type ShardedComparison struct {
	Rows, Cols int
	Vertices   int
	Edges      int
	Partitions int
	Queries    int
	Workers    int

	MonoBuild  time.Duration
	MonoBlocks int64
	MonoBytes  int64
	MonoQPS    float64

	ShardBuild        time.Duration
	ShardPartition    time.Duration
	ShardCells        time.Duration
	ShardClosure      time.Duration
	ShardBlocks       int64
	ShardCellBytes    int64
	ShardClosureBytes int64
	ShardBytes        int64
	Boundary          int
	CutEdges          int
	SelfContained     int
	ShardQPS          float64
}

// CompareSharded builds both indexes over one rows×cols road network and
// replays an identical kNN workload through each at full parallelism.
func CompareSharded(rows, cols, partitions, queries int, seed int64) (*ShardedComparison, error) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{
		Rows: rows, Cols: cols, Seed: seed, WeightNoise: 0.1,
	})
	if err != nil {
		return nil, err
	}
	cmp := &ShardedComparison{
		Rows: rows, Cols: cols,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Partitions: partitions,
		Queries:    queries,
		Workers:    runtime.GOMAXPROCS(0),
	}

	mono, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	ms := mono.Stats()
	cmp.MonoBuild = ms.BuildTime
	cmp.MonoBlocks = ms.TotalBlocks
	cmp.MonoBytes = ms.TotalBytes

	shard, err := partition.Build(g, partition.Options{Partitions: partitions})
	if err != nil {
		return nil, err
	}
	ss := shard.Stats()
	cmp.ShardBuild = ss.BuildTime
	cmp.ShardPartition = ss.PartitionTime
	cmp.ShardCells = ss.CellBuildTime
	cmp.ShardClosure = ss.ClosureTime
	cmp.ShardBlocks = ss.CellBlocks
	cmp.ShardCellBytes = ss.CellBytes
	cmp.ShardClosureBytes = ss.ClosureBytes
	cmp.ShardBytes = ss.TotalBytes
	cmp.Boundary = ss.BoundaryVertices
	cmp.CutEdges = ss.CutEdges
	cmp.SelfContained = ss.SelfContained

	env := &Env{G: g, Ix: mono}
	w := env.NewThroughputWorkload(queries, 0.05, 10, seed+1)
	if pts := ThroughputSweep(mono, w, []int{cmp.Workers}); len(pts) > 0 {
		cmp.MonoQPS = pts[0].QPS
	}
	if pts := ThroughputSweep(shard, w, []int{cmp.Workers}); len(pts) > 0 {
		cmp.ShardQPS = pts[0].QPS
	}
	return cmp, nil
}

// RenderSharded prints the SH comparison table.
func RenderSharded(w io.Writer, c *ShardedComparison) {
	fmt.Fprintf(w, "SH — Sharded vs monolithic index (beyond the paper: P=%d partitions)\n", c.Partitions)
	fmt.Fprintf(w, "network: %dx%d lattice, %d vertices, %d edges; %d kNN queries at %d workers\n",
		c.Rows, c.Cols, c.Vertices, c.Edges, c.Queries, c.Workers)
	fmt.Fprintf(w, "%-12s %14s %14s %14s %12s\n", "index", "build", "Morton blocks", "index bytes", "kNN QPS")
	fmt.Fprintf(w, "%-12s %14s %14d %14s %12.0f\n", "monolithic",
		c.MonoBuild.Round(time.Millisecond), c.MonoBlocks, byteCount(c.MonoBytes), c.MonoQPS)
	fmt.Fprintf(w, "%-12s %14s %14d %14s %12.0f\n", fmt.Sprintf("sharded P=%d", c.Partitions),
		c.ShardBuild.Round(time.Millisecond), c.ShardBlocks, byteCount(c.ShardBytes), c.ShardQPS)
	fmt.Fprintf(w, "sharded detail: partition %v + cells %v + closure %v; %d boundary vertices, %d cut edges, %d/%d cells self-contained\n",
		c.ShardPartition.Round(time.Millisecond), c.ShardCells.Round(time.Millisecond),
		c.ShardClosure.Round(time.Millisecond), c.Boundary, c.CutEdges, c.SelfContained, c.Partitions)
	fmt.Fprintf(w, "sharded storage: %s cell blocks + %s closure; build speedup %.2fx, block-storage ratio %.2fx\n\n",
		byteCount(c.ShardCellBytes), byteCount(c.ShardClosureBytes),
		ratio(c.MonoBuild.Seconds(), c.ShardBuild.Seconds()),
		ratio(float64(c.MonoBlocks), float64(c.ShardBlocks)))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
