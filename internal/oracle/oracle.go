// Package oracle implements the alternative shortest-path storage models the
// paper compares SILC against in its space/query-time trade-off table
// (p.11): explicit all-pairs path storage (O(n³) space, O(1) query),
// next-hop matrices (O(n²) space, O(k) path retrieval), and an
// ε-approximate network distance oracle built from path-coherent pairs —
// the well-separated-pair construction sketched in the talk's "Path
// Coherence Beyond SILC" section (the PCP framework of the authors'
// follow-on work).
package oracle

import (
	"fmt"
	"math"
	"sort"

	"silc/internal/core"
	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/sssp"
)

// NextHop is the O(n²) routing-table baseline: for every (u,v) the first
// vertex after u on the shortest path. Path retrieval walks the table hop by
// hop; distances sum edge weights along the walk.
type NextHop struct {
	g   *graph.Network
	n   int
	hop []graph.VertexID // n*n, row-major by source
}

// BuildNextHop runs one Dijkstra per vertex and materializes the table.
func BuildNextHop(g *graph.Network) (*NextHop, error) {
	n := g.NumVertices()
	m := &NextHop{g: g, n: n, hop: make([]graph.VertexID, n*n)}
	ws := sssp.NewWorkspace(n)
	for s := 0; s < n; s++ {
		tree := ws.Run(g, graph.VertexID(s))
		row := m.hop[s*n : (s+1)*n]
		for v := 0; v < n; v++ {
			if v != s && math.IsInf(tree.Dist[v], 1) {
				return nil, fmt.Errorf("oracle: vertex %d unreachable from %d", v, s)
			}
			row[v] = tree.FirstHop[v]
		}
	}
	return m, nil
}

// SizeBytes returns the table's storage footprint (4 bytes per entry).
func (m *NextHop) SizeBytes() int64 { return int64(m.n) * int64(m.n) * 4 }

// Next returns the first hop from u toward v (v itself when u == v).
func (m *NextHop) Next(u, v graph.VertexID) graph.VertexID {
	if u == v {
		return v
	}
	return m.hop[int(u)*m.n+int(v)]
}

// Path reconstructs the shortest path from u to v, inclusive.
func (m *NextHop) Path(u, v graph.VertexID) []graph.VertexID {
	path := []graph.VertexID{u}
	for cur := u; cur != v; {
		cur = m.Next(cur, v)
		path = append(path, cur)
	}
	return path
}

// Distance walks the table summing edge weights.
func (m *NextHop) Distance(u, v graph.VertexID) float64 {
	total := 0.0
	for cur := u; cur != v; {
		next := m.Next(cur, v)
		w, ok := m.g.EdgeWeight(cur, next)
		if !ok {
			panic("oracle: next-hop table names a non-edge")
		}
		total += w
		cur = next
	}
	return total
}

// ExplicitPaths is the O(n³) strawman: every shortest path stored verbatim,
// giving O(1) distance and O(1) path access. MaxVerticesExplicit caps the
// build, since the representation is cubic by design.
type ExplicitPaths struct {
	n     int
	dist  []float64 // n*n
	paths [][]graph.VertexID
}

// MaxVerticesExplicit is the largest network ExplicitPaths will materialize.
const MaxVerticesExplicit = 1500

// BuildExplicitPaths materializes every shortest path.
func BuildExplicitPaths(g *graph.Network) (*ExplicitPaths, error) {
	n := g.NumVertices()
	if n > MaxVerticesExplicit {
		return nil, fmt.Errorf("oracle: %d vertices exceeds the explicit-path cap of %d", n, MaxVerticesExplicit)
	}
	e := &ExplicitPaths{
		n:     n,
		dist:  make([]float64, n*n),
		paths: make([][]graph.VertexID, n*n),
	}
	ws := sssp.NewWorkspace(n)
	for s := 0; s < n; s++ {
		tree := ws.Run(g, graph.VertexID(s))
		for v := 0; v < n; v++ {
			if v != s && math.IsInf(tree.Dist[v], 1) {
				return nil, fmt.Errorf("oracle: vertex %d unreachable from %d", v, s)
			}
			e.dist[s*n+v] = tree.Dist[v]
			e.paths[s*n+v] = tree.PathTo(graph.VertexID(v))
		}
	}
	return e, nil
}

// Distance returns the stored distance.
func (e *ExplicitPaths) Distance(u, v graph.VertexID) float64 { return e.dist[int(u)*e.n+int(v)] }

// Path returns the stored path (shared storage; do not modify).
func (e *ExplicitPaths) Path(u, v graph.VertexID) []graph.VertexID { return e.paths[int(u)*e.n+int(v)] }

// SizeBytes returns the storage footprint: 8 bytes per distance plus 4 bytes
// per stored path vertex.
func (e *ExplicitPaths) SizeBytes() int64 {
	total := int64(e.n) * int64(e.n) * 8
	for _, p := range e.paths {
		total += int64(len(p)) * 4
	}
	return total
}

// pairKey identifies an ordered cell pair of the decomposition.
type pairKey struct {
	aCode, bCode   geom.Code
	aLevel, bLevel uint8
}

// DistanceOracle answers network-distance queries within a relative error ε
// from O(n/ε²)-style storage. It decomposes the vertex set into
// path-coherent cell pairs: a pair (A, B) is emitted once the network radii
// of A and B are small relative to the distance between their
// representatives, at which point that single representative distance
// serves every (u, v) in A x B — the dumbbell of the PCP framework.
//
// The construction requires a symmetric network (undirected road networks),
// since its error argument applies the triangle inequality in both
// directions.
type DistanceOracle struct {
	g       *graph.Network
	eps     float64
	codes   []geom.Code      // vertex codes in Morton order
	order   []graph.VertexID // Morton order
	pairs   map[pairKey]float64
	numRads int
}

// BuildDistanceOracle constructs the oracle with relative error eps,
// using ix for the exact distances the construction needs.
func BuildDistanceOracle(ix *core.Index, eps float64) (*DistanceOracle, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("oracle: eps %v out of range (0,1)", eps)
	}
	g := ix.Network()
	if err := checkSymmetric(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	o := &DistanceOracle{
		g:     g,
		eps:   eps,
		codes: make([]geom.Code, n),
		order: g.MortonOrder(),
		pairs: make(map[pairKey]float64),
	}
	for i, v := range o.order {
		o.codes[i] = g.Code(v)
	}
	b := &oracleBuilder{o: o, ix: ix, radii: make(map[geom.Cell]cellInfo)}
	root := span{cell: geom.RootCell(), lo: 0, hi: n}
	b.decompose(root, root)
	o.numRads = len(b.radii)
	return o, nil
}

func checkSymmetric(g *graph.Network) error {
	for _, e := range g.Edges() {
		w, ok := g.EdgeWeight(e.To, e.From)
		if !ok || math.Abs(w-e.Weight) > 1e-12*(1+w) {
			return fmt.Errorf("oracle: edge %d->%d not symmetric; the distance oracle requires an undirected network", e.From, e.To)
		}
	}
	return nil
}

// span is a quadtree cell plus its vertex range in Morton order.
type span struct {
	cell   geom.Cell
	lo, hi int
}

func (s span) size() int { return s.hi - s.lo }

type cellInfo struct {
	rep    graph.VertexID
	radius float64
}

type oracleBuilder struct {
	o     *DistanceOracle
	ix    *core.Index
	radii map[geom.Cell]cellInfo
}

// info returns (computing on demand) the representative and network radius
// of a cell: the maximum network distance between the representative and any
// vertex of the cell, in either direction (the network is symmetric).
func (b *oracleBuilder) info(s span) cellInfo {
	if ci, ok := b.radii[s.cell]; ok {
		return ci
	}
	rep := b.o.order[(s.lo+s.hi)/2]
	radius := 0.0
	for i := s.lo; i < s.hi; i++ {
		v := b.o.order[i]
		if v == rep {
			continue
		}
		if d := b.ix.Distance(rep, v); d > radius {
			radius = d
		}
	}
	ci := cellInfo{rep: rep, radius: radius}
	b.radii[s.cell] = ci
	return ci
}

func (b *oracleBuilder) decompose(a, c span) {
	if a.size() == 0 || c.size() == 0 {
		return
	}
	if a.cell == c.cell && a.size() == 1 {
		return // the only pair is (u,u), answered directly
	}
	if a.cell != c.cell {
		ia, ic := b.info(a), b.info(c)
		d := b.ix.Distance(ia.rep, ic.rep)
		err := ia.radius + ic.radius
		if err <= b.o.eps*(d-err) {
			b.o.pairs[pairKey{a.cell.Code, c.cell.Code, a.cell.Level, c.cell.Level}] = d
			return
		}
	}
	// Split the coarser cell; ties split the first. The query replays this
	// exact rule, so it revisits the same pair sequence.
	if a.cell.Level <= c.cell.Level {
		for _, child := range b.children(a) {
			b.decompose(child, c)
		}
	} else {
		for _, child := range b.children(c) {
			b.decompose(a, child)
		}
	}
}

func (b *oracleBuilder) children(s span) []span {
	if s.cell.Level >= geom.MaxLevel {
		panic("oracle: cannot split a unit cell with multiple vertices")
	}
	out := make([]span, 0, 4)
	at := s.lo
	for i := 0; i < 4; i++ {
		child := s.cell.Child(i)
		end := child.End()
		hi := at + sort.Search(s.hi-at, func(j int) bool { return b.o.codes[at+j] >= end })
		if hi > at {
			out = append(out, span{cell: child, lo: at, hi: hi})
		}
		at = hi
	}
	return out
}

// NumPairs returns the number of stored cell pairs.
func (o *DistanceOracle) NumPairs() int { return len(o.pairs) }

// SizeBytes returns the oracle's storage footprint: 26 bytes per pair (two
// packed cells plus one distance).
func (o *DistanceOracle) SizeBytes() int64 { return int64(len(o.pairs)) * 26 }

// Epsilon returns the configured relative error bound.
func (o *DistanceOracle) Epsilon() float64 { return o.eps }

// Distance returns an approximation of the network distance from u to v with
// relative error at most ε.
func (o *DistanceOracle) Distance(u, v graph.VertexID) float64 {
	if u == v {
		return 0
	}
	cu, cv := o.g.Code(u), o.g.Code(v)
	a, c := geom.RootCell(), geom.RootCell()
	for {
		if d, ok := o.pairs[pairKey{a.Code, c.Code, a.Level, c.Level}]; ok {
			return d
		}
		if a.Level <= c.Level {
			a = childContaining(a, cu)
		} else {
			c = childContaining(c, cv)
		}
	}
}

func childContaining(cell geom.Cell, code geom.Code) geom.Cell {
	if cell.Level >= geom.MaxLevel {
		panic("oracle: query descended past a unit cell; pair table incomplete")
	}
	span := geom.Span(cell.Level + 1)
	i := int(uint64(code-cell.Code) / span)
	return cell.Child(i)
}
