package oracle

import (
	"math"
	"math/rand"
	"testing"

	"silc/internal/core"
	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/sssp"
)

func testNet(t *testing.T, rows, cols int, seed int64) *graph.Network {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNextHopMatchesDijkstra(t *testing.T) {
	g := testNet(t, 7, 7, 1)
	m, err := BuildNextHop(g)
	if err != nil {
		t.Fatal(err)
	}
	oracle := sssp.FloydWarshall(g)
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			uu, vv := graph.VertexID(u), graph.VertexID(v)
			got := m.Distance(uu, vv)
			if math.Abs(got-oracle[u][v]) > 1e-9 {
				t.Fatalf("Distance(%d,%d)=%v want %v", u, v, got, oracle[u][v])
			}
			path := m.Path(uu, vv)
			if path[0] != uu || path[len(path)-1] != vv {
				t.Fatalf("bad path endpoints for (%d,%d)", u, v)
			}
			if u != v {
				if w := sssp.PathWeight(g, path); math.Abs(w-oracle[u][v]) > 1e-9 {
					t.Fatalf("path weight %v want %v", w, oracle[u][v])
				}
			}
		}
	}
	if m.SizeBytes() != int64(g.NumVertices())*int64(g.NumVertices())*4 {
		t.Fatal("SizeBytes wrong")
	}
}

func TestNextHopRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder()
	b.AddVertex(pt(0.1, 0.1))
	b.AddVertex(pt(0.9, 0.9))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildNextHop(g); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildExplicitPaths(g); err == nil {
		t.Fatal("expected error")
	}
}

func TestExplicitPathsMatchDijkstra(t *testing.T) {
	g := testNet(t, 6, 6, 2)
	e, err := BuildExplicitPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	oracle := sssp.FloydWarshall(g)
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			uu, vv := graph.VertexID(u), graph.VertexID(v)
			if got := e.Distance(uu, vv); math.Abs(got-oracle[u][v]) > 1e-9 {
				t.Fatalf("Distance(%d,%d)=%v want %v", u, v, got, oracle[u][v])
			}
			if u != v {
				path := e.Path(uu, vv)
				if w := sssp.PathWeight(g, path); math.Abs(w-oracle[u][v]) > 1e-9 {
					t.Fatalf("path weight mismatch (%d,%d)", u, v)
				}
			}
		}
	}
	if e.SizeBytes() <= int64(g.NumVertices())*int64(g.NumVertices())*8 {
		t.Fatal("SizeBytes must include path storage")
	}
}

func TestExplicitPathsCap(t *testing.T) {
	g := testNet(t, 45, 45, 3) // ~1.8k vertices, above the cap
	if g.NumVertices() <= MaxVerticesExplicit {
		t.Skipf("network only %d vertices", g.NumVertices())
	}
	if _, err := BuildExplicitPaths(g); err == nil {
		t.Fatal("expected cap error")
	}
}

func buildOracle(t *testing.T, g *graph.Network, eps float64) *DistanceOracle {
	t.Helper()
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildDistanceOracle(ix, eps)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDistanceOracleErrorBound(t *testing.T) {
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		g := testNet(t, 8, 8, 4)
		o := buildOracle(t, g, eps)
		// Exhaustive check against ground truth.
		for u := 0; u < g.NumVertices(); u++ {
			tree := sssp.Dijkstra(g, graph.VertexID(u))
			for v := 0; v < g.NumVertices(); v++ {
				want := tree.Dist[v]
				got := o.Distance(graph.VertexID(u), graph.VertexID(v))
				if u == v {
					if got != 0 {
						t.Fatalf("eps %v: self distance %v", eps, got)
					}
					continue
				}
				if math.Abs(got-want) > eps*want+1e-9 {
					t.Fatalf("eps %v: (%d,%d) approx %v true %v (err %.1f%%)",
						eps, u, v, got, want, 100*math.Abs(got-want)/want)
				}
			}
		}
	}
}

func TestDistanceOraclePairCountGrowsWithPrecision(t *testing.T) {
	g := testNet(t, 8, 8, 5)
	loose := buildOracle(t, g, 0.5)
	tight := buildOracle(t, g, 0.1)
	if tight.NumPairs() <= loose.NumPairs() {
		t.Fatalf("pairs: eps=0.1 %d should exceed eps=0.5 %d", tight.NumPairs(), loose.NumPairs())
	}
	if loose.SizeBytes() != int64(loose.NumPairs())*26 {
		t.Fatal("SizeBytes inconsistent with pair count")
	}
	if loose.Epsilon() != 0.5 {
		t.Fatal("Epsilon not stored")
	}
}

func TestDistanceOracleSubquadraticGrowth(t *testing.T) {
	// The PCP idea: far-apart regions share one entry, so the pairs/n^2
	// ratio must fall as the network grows (the absolute byte win over a
	// next-hop matrix appears at scales beyond unit-test budgets).
	small := testNet(t, 14, 14, 6)
	large := testNet(t, 20, 20, 6)
	oSmall := buildOracle(t, small, 0.5)
	oLarge := buildOracle(t, large, 0.5)
	rSmall := float64(oSmall.NumPairs()) / float64(small.NumVertices()*small.NumVertices())
	rLarge := float64(oLarge.NumPairs()) / float64(large.NumVertices()*large.NumVertices())
	if rLarge >= rSmall {
		t.Fatalf("pair density did not fall: %.3f (n=%d) -> %.3f (n=%d)",
			rSmall, small.NumVertices(), rLarge, large.NumVertices())
	}
	// And at this size the pair table is already well below n^2 entries.
	n := large.NumVertices()
	if oLarge.NumPairs() >= n*n/3 {
		t.Fatalf("oracle stores %d pairs for %d vertices; no compression", oLarge.NumPairs(), n)
	}
}

func TestDistanceOracleRejectsBadEps(t *testing.T) {
	g := testNet(t, 5, 5, 7)
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, -0.5, 1, 2} {
		if _, err := BuildDistanceOracle(ix, eps); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

func TestDistanceOracleRejectsAsymmetric(t *testing.T) {
	b := graph.NewBuilder()
	u := b.AddVertex(pt(0.2, 0.2))
	v := b.AddVertex(pt(0.8, 0.8))
	b.AddEdge(u, v, 1.0)
	b.AddEdge(v, u, 2.0) // asymmetric weights
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDistanceOracle(ix, 0.25); err == nil {
		t.Fatal("asymmetric network accepted")
	}
}

func TestDistanceOracleRandomQueries(t *testing.T) {
	g := testNet(t, 12, 12, 8)
	eps := 0.2
	o := buildOracle(t, g, eps)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		u := graph.VertexID(rng.Intn(g.NumVertices()))
		v := graph.VertexID(rng.Intn(g.NumVertices()))
		want := sssp.ShortestPath(g, u, v).Dist
		if u == v {
			want = 0
		}
		got := o.Distance(u, v)
		if math.Abs(got-want) > eps*want+1e-9 {
			t.Fatalf("(%d,%d): approx %v true %v", u, v, got, want)
		}
	}
}

func pt(x, y float64) geom.Point {
	return geom.Point{X: x, Y: y}
}
