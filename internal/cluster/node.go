package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"silc/internal/core"
	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/obs"
	"silc/internal/partition"
)

// Node serves one cluster node's share of a partitioned index: the RPC
// surface for the cells the manifest assigns it, plus health and metrics
// endpoints. It holds a full *partition.Sharded opened from the shared
// paged file — the demand-paged stores mean only the owned cells' pages
// ever materialize — and rejects RPCs for cells it does not own, so a
// routing bug surfaces as a loud 4xx instead of silently serving from an
// unwarmed replica.
//
// A Node is safe for unlimited concurrent requests, like the index under
// it. Draining flips /readyz to 503 while every RPC keeps being served;
// load balancers (and the cluster client's health probes) stop sending new
// work, and http.Server.Shutdown finishes what is in flight.
type Node struct {
	name  string
	s     *partition.Sharded
	owned []bool

	reg      *obs.Registry
	rpcs     map[string]*nodeEndpointMetrics
	rejects  *obs.Counter
	cellRPCs []*obs.Counter
	draining atomic.Bool
}

type nodeEndpointMetrics struct {
	calls   *obs.Counter
	errors  *obs.Counter
	latency *obs.Histogram
}

// NewNode builds the node named name from the manifest, serving cells out
// of s. The manifest must cover s's partition count and list the node.
func NewNode(name string, m *Manifest, s *partition.Sharded) (*Node, error) {
	p := s.NumPartitions()
	if err := m.Validate(p); err != nil {
		return nil, err
	}
	spec := m.Node(name)
	if spec == nil {
		return nil, fmt.Errorf("cluster: manifest has no node %q", name)
	}
	n := &Node{
		name:  name,
		s:     s,
		owned: make([]bool, p),
		reg:   obs.NewRegistry(),
	}
	for _, c := range spec.Cells {
		n.owned[c] = true
	}
	n.rpcs = make(map[string]*nodeEndpointMetrics, 8)
	for _, ep := range []string{
		PathBoundary, PathIntervals, PathInterval, PathExact,
		PathRace, PathRegion, PathPath,
	} {
		label := `endpoint="` + ep + `"`
		n.rpcs[ep] = &nodeEndpointMetrics{
			calls: n.reg.Counter("silcnode_rpcs_total", label,
				"RPC calls served per endpoint."),
			errors: n.reg.Counter("silcnode_rpc_errors_total", label,
				"RPC calls that failed per endpoint (bad request, unowned cell, or storage failure)."),
			latency: n.reg.Histogram("silcnode_rpc_seconds", label,
				"RPC service latency per endpoint."),
		}
	}
	n.rejects = n.reg.Counter("silcnode_rejected_total", "",
		"RPCs rejected because this node does not own the requested cell.")
	n.cellRPCs = make([]*obs.Counter, p)
	for _, c := range spec.Cells {
		n.cellRPCs[c] = n.reg.Counter("silcnode_cell_rpcs_total",
			`cell="`+strconv.Itoa(c)+`"`,
			"RPC calls served per owned cell.")
	}
	n.reg.GaugeFunc("silcnode_draining", `node="`+name+`"`,
		"1 while the node is draining (readyz failing), else 0.",
		func() float64 {
			if n.draining.Load() {
				return 1
			}
			return 0
		})
	return n, nil
}

// Name returns the node's manifest name.
func (n *Node) Name() string { return n.name }

// Registry exposes the node's silcnode_* metrics for serving alongside the
// index's own families.
func (n *Node) Registry() *obs.Registry { return n.reg }

// StartDrain flips /readyz to 503. RPCs keep being served; callers follow
// with http.Server.Shutdown to finish in-flight connections.
func (n *Node) StartDrain() { n.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (n *Node) Draining() bool { return n.draining.Load() }

// Handler returns the node's HTTP surface: the RPC endpoints plus
// /healthz, /readyz and /metrics.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathBoundary, rpc(n, PathBoundary, n.boundary))
	mux.HandleFunc(PathIntervals, rpc(n, PathIntervals, n.intervals))
	mux.HandleFunc(PathInterval, rpc(n, PathInterval, n.interval))
	mux.HandleFunc(PathExact, rpc(n, PathExact, n.exact))
	mux.HandleFunc(PathRace, rpc(n, PathRace, n.race))
	mux.HandleFunc(PathRegion, rpc(n, PathRegion, n.region))
	mux.HandleFunc(PathPath, rpc(n, PathPath, n.path))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if n.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.reg.WritePrometheus(w)
	})
	return mux
}

// rpcError carries an HTTP status through a handler's error return.
type rpcError struct {
	status int
	msg    string
}

func (e rpcError) Error() string { return e.msg }

// rpc wraps one endpoint handler with decoding, metrics, and error
// rendering. Handlers receive a decoded request and a query context bound
// to the HTTP request's context — the router's deadline and disconnects
// cancel the node-side computation within one refinement step.
func rpc[Req any, Resp any](n *Node, ep string, h func(qc *core.QueryContext, req *Req) (Resp, error)) http.HandlerFunc {
	em := n.rpcs[ep]
	return func(w http.ResponseWriter, r *http.Request) {
		em.calls.Inc()
		start := time.Now()
		defer func() { em.latency.Observe(time.Since(start)) }()
		if r.Method != http.MethodPost {
			em.errors.Inc()
			writeRPCError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req Req
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
			em.errors.Inc()
			writeRPCError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
			return
		}
		qc := core.NewQueryContextFor(r.Context())
		resp, err := h(qc, &req)
		if err == nil && qc.Failed() {
			err = qc.Err() // storage failure during the computation
		}
		if err != nil {
			em.errors.Inc()
			if re, ok := err.(rpcError); ok {
				writeRPCError(w, re.status, re.msg)
			} else {
				writeRPCError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}
}

func writeRPCError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResp{Error: msg})
}

// checkCell validates ownership plus every local vertex id, returning the
// cell's index. Misrouted cells get 421 (misdirected request) so the client
// can distinguish "wrong node" from a transient failure it should retry.
func (n *Node) checkCell(cell int32, verts ...uint32) (partition.CellIndex, error) {
	if cell < 0 || int(cell) >= len(n.owned) {
		return nil, rpcError{http.StatusBadRequest, fmt.Sprintf("cell %d out of range", cell)}
	}
	if !n.owned[cell] {
		n.rejects.Inc()
		return nil, rpcError{http.StatusMisdirectedRequest,
			fmt.Sprintf("node %s does not own cell %d", n.name, cell)}
	}
	nv := n.s.CellVertexCount(int(cell))
	for _, v := range verts {
		if int(v) >= nv {
			return nil, rpcError{http.StatusBadRequest,
				fmt.Sprintf("vertex %d out of cell %d's %d vertices", v, cell, nv)}
		}
	}
	if c := n.cellRPCs[cell]; c != nil {
		c.Inc()
	}
	return n.s.CellIndexAt(int(cell)), nil
}

func (n *Node) boundary(qc *core.QueryContext, req *BoundaryReq) (BoundaryResp, error) {
	cx, err := n.checkCell(req.Cell, req.Src)
	if err != nil {
		return BoundaryResp{}, err
	}
	bs := n.s.BoundaryLocals(int(req.Cell))
	dists := make([]uint64, len(bs))
	for i, b := range bs {
		dists[i] = Bits(partition.CellExact(cx, qc, graph.VertexID(req.Src), b))
	}
	return BoundaryResp{Dists: dists, IO: toIOStats(qc.IO)}, nil
}

func (n *Node) intervals(qc *core.QueryContext, req *IntervalsReq) (IntervalsResp, error) {
	cx, err := n.checkCell(req.Cell, req.V)
	if err != nil {
		return IntervalsResp{}, err
	}
	bs := n.s.BoundaryLocals(int(req.Cell))
	los := make([]uint64, len(bs))
	his := make([]uint64, len(bs))
	for i, b := range bs {
		var iv core.Interval
		if req.ToV {
			iv = cx.DistanceIntervalCtx(qc, b, graph.VertexID(req.V))
		} else {
			iv = cx.DistanceIntervalCtx(qc, graph.VertexID(req.V), b)
		}
		los[i], his[i] = Bits(iv.Lo), Bits(iv.Hi)
	}
	return IntervalsResp{Los: los, His: his, IO: toIOStats(qc.IO)}, nil
}

func (n *Node) interval(qc *core.QueryContext, req *IntervalReq) (IntervalResp, error) {
	cx, err := n.checkCell(req.Cell, req.U, req.V)
	if err != nil {
		return IntervalResp{}, err
	}
	iv := cx.DistanceIntervalCtx(qc, graph.VertexID(req.U), graph.VertexID(req.V))
	return IntervalResp{Lo: Bits(iv.Lo), Hi: Bits(iv.Hi), IO: toIOStats(qc.IO)}, nil
}

func (n *Node) exact(qc *core.QueryContext, req *ExactReq) (ExactResp, error) {
	cx, err := n.checkCell(req.Cell, req.U, req.V)
	if err != nil {
		return ExactResp{}, err
	}
	d := partition.CellExact(cx, qc, graph.VertexID(req.U), graph.VertexID(req.V))
	return ExactResp{D: Bits(d), IO: toIOStats(qc.IO)}, nil
}

func (n *Node) race(qc *core.QueryContext, req *RaceReq) (RaceResp, error) {
	if len(req.Offs) != len(req.Us) {
		return RaceResp{}, rpcError{http.StatusBadRequest,
			fmt.Sprintf("%d offsets for %d candidates", len(req.Offs), len(req.Us))}
	}
	cx, err := n.checkCell(req.Cell, append([]uint32{req.Dst}, req.Us...)...)
	if err != nil {
		return RaceResp{}, err
	}
	offs := make([]float64, len(req.Offs))
	us := make([]graph.VertexID, len(req.Us))
	for i := range req.Offs {
		offs[i] = FromBits(req.Offs[i])
		us[i] = graph.VertexID(req.Us[i])
	}
	d, arg := partition.RaceCellRoutes(cx, qc, graph.VertexID(req.Dst), offs, us)
	return RaceResp{D: Bits(d), Arg: arg, IO: toIOStats(qc.IO)}, nil
}

func (n *Node) region(qc *core.QueryContext, req *RegionReq) (RegionResp, error) {
	cx, err := n.checkCell(req.Cell, req.Q)
	if err != nil {
		return RegionResp{}, err
	}
	rect := geom.Rect{
		MinX: FromBits(req.MinX), MinY: FromBits(req.MinY),
		MaxX: FromBits(req.MaxX), MaxY: FromBits(req.MaxY),
	}
	if math.IsNaN(rect.MinX) || math.IsNaN(rect.MinY) || math.IsNaN(rect.MaxX) || math.IsNaN(rect.MaxY) {
		return RegionResp{}, rpcError{http.StatusBadRequest, "NaN rectangle bound"}
	}
	d := cx.RegionLowerBoundCtx(qc, graph.VertexID(req.Q), rect)
	return RegionResp{D: Bits(d), IO: toIOStats(qc.IO)}, nil
}

func (n *Node) path(qc *core.QueryContext, req *PathReq) (PathResp, error) {
	cx, err := n.checkCell(req.Cell, req.U, req.V)
	if err != nil {
		return PathResp{}, err
	}
	p := cx.PathCtx(qc, graph.VertexID(req.U), graph.VertexID(req.V))
	verts := make([]uint32, len(p))
	for i, v := range p {
		verts[i] = uint32(v)
	}
	return PathResp{Verts: verts, IO: toIOStats(qc.IO)}, nil
}
