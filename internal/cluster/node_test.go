package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"silc/internal/cluster"
	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/partition"
)

func buildNode(t *testing.T) (*partition.Sharded, *cluster.Node, *httptest.Server) {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 10, Cols: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := partition.Build(g, partition.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := &cluster.Manifest{Nodes: []cluster.NodeSpec{
		{Name: "a", Addr: "http://placeholder", Cells: []int{0, 1}},
		{Name: "b", Addr: "http://placeholder", Cells: []int{2, 3}},
	}}
	node, err := cluster.NewNode("a", m, s)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(srv.Close)
	return s, node, srv
}

func post(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestNodeOwnershipAndValidation: RPCs for owned cells answer with exactly
// the in-process arithmetic; unowned cells are 421s; bad vertex ids 400s.
func TestNodeOwnershipAndValidation(t *testing.T) {
	s, _, srv := buildNode(t)

	// Owned cell: the boundary sweep must equal CellExact run in process.
	bs := s.BoundaryLocals(0)
	if len(bs) == 0 {
		t.Fatal("cell 0 has no boundary vertices")
	}
	resp, data := post(t, srv.URL+cluster.PathBoundary, &cluster.BoundaryReq{Cell: 0, Src: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("boundary status %d: %s", resp.StatusCode, data)
	}
	var br cluster.BoundaryResp
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Dists) != len(bs) {
		t.Fatalf("%d boundary distances for %d rows", len(br.Dists), len(bs))
	}
	cx := s.CellIndexAt(0)
	for i, b := range bs {
		want := partition.CellExact(cx, core.NewQueryContext(), 0, b)
		if got := cluster.FromBits(br.Dists[i]); got != want {
			t.Fatalf("row %d: node says %v, in-process says %v", i, got, want)
		}
	}

	// Unowned cell: 421 so the client can tell routing bugs from failures.
	resp, _ = post(t, srv.URL+cluster.PathExact, &cluster.ExactReq{Cell: 2, U: 0, V: 1})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("unowned cell status %d, want 421", resp.StatusCode)
	}

	// Vertex out of the cell's local range: 400.
	nv := s.CellVertexCount(0)
	resp, _ = post(t, srv.URL+cluster.PathExact, &cluster.ExactReq{Cell: 0, U: uint32(nv), V: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad vertex status %d, want 400", resp.StatusCode)
	}

	// Race candidate count mismatch: 400.
	resp, _ = post(t, srv.URL+cluster.PathRace, &cluster.RaceReq{Cell: 0, Dst: 0, Offs: []uint64{0}, Us: nil})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched race status %d, want 400", resp.StatusCode)
	}
}

func TestNodeReadyzDraining(t *testing.T) {
	_, node, srv := buildNode(t)
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain: %d", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz: %d", got)
	}
	node.StartDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", got)
	}
	// Liveness and RPCs keep working while draining.
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain: %d", got)
	}
	resp, _ := post(t, srv.URL+cluster.PathInterval, &cluster.IntervalReq{Cell: 0, U: 0, V: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("RPC during drain: %d", resp.StatusCode)
	}
}

// TestNodeDeadlinePropagates: a client deadline expiring mid-RPC cancels
// the node-side computation (the query context is bound to the HTTP
// request's context) and surfaces as a failed attempt, not a hang.
func TestNodeDeadlinePropagates(t *testing.T) {
	_, _, srv := buildNode(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	body, _ := json.Marshal(&cluster.BoundaryReq{Cell: 0, Src: 0})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+cluster.PathBoundary, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request with expired deadline succeeded")
	}
}
