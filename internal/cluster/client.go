package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"silc/internal/obs"
)

// ClientOptions tunes the router-side RPC client.
type ClientOptions struct {
	// Timeout bounds each individual attempt (default 5s). The caller's
	// context still caps the whole call.
	Timeout time.Duration
	// HedgeDelay launches a second attempt on another replica when the
	// first has not answered within the delay — the classic tail-latency
	// hedge; the first response wins and the loser is cancelled. Zero
	// disables hedging. Every RPC in the protocol is a read, so hedging is
	// always safe.
	HedgeDelay time.Duration
	// FailCooldown is how long a replica stays deprioritized after a failed
	// attempt (default 2s). Probing (Client.Probe) can clear it earlier.
	FailCooldown time.Duration
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
}

// Client fans per-cell RPCs out to the owning nodes with replica load
// balancing, per-attempt timeouts, failover retries, and optional hedging.
// It is the transport half of the router: one Client serves any number of
// concurrent queries.
type Client struct {
	m      *Manifest
	p      int
	owners [][]int // per cell: manifest node indices serving it
	nodes  []nodeState
	httpc  *http.Client
	opt    ClientOptions

	reg       *obs.Registry
	rpcs      map[string]*clientEndpointMetrics
	retries   *obs.Counter
	hedges    *obs.Counter
	failures  *obs.Counter
	cellCalls []*obs.Counter
	cellLoad  []atomic.Int64 // per-cell RPC counts for hot-cell detection
	rr        []atomic.Uint32
}

type clientEndpointMetrics struct {
	calls   *obs.Counter
	errors  *obs.Counter
	latency *obs.Histogram
}

type nodeState struct {
	addr string
	name string
	// downUntil is the unix-nano timestamp until which the replica is
	// deprioritized after a failure; 0 = healthy.
	downUntil atomic.Int64
}

// NewClient builds a client over the manifest for a p-partition index.
func NewClient(m *Manifest, p int, opt ClientOptions) (*Client, error) {
	if err := m.Validate(p); err != nil {
		return nil, err
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.FailCooldown <= 0 {
		opt.FailCooldown = 2 * time.Second
	}
	httpc := opt.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	c := &Client{
		m:      m,
		p:      p,
		owners: m.Owners(p),
		nodes:  make([]nodeState, len(m.Nodes)),
		httpc:  httpc,
		opt:    opt,
		reg:    obs.NewRegistry(),
		rr:     make([]atomic.Uint32, p),
	}
	for i, n := range m.Nodes {
		c.nodes[i].addr = n.Addr
		c.nodes[i].name = n.Name
	}
	c.rpcs = make(map[string]*clientEndpointMetrics, 8)
	for _, ep := range []string{
		PathBoundary, PathIntervals, PathInterval, PathExact,
		PathRace, PathRegion, PathPath,
	} {
		label := `endpoint="` + ep + `"`
		c.rpcs[ep] = &clientEndpointMetrics{
			calls: c.reg.Counter("silc_cluster_rpcs_total", label,
				"Cluster RPC calls issued per endpoint."),
			errors: c.reg.Counter("silc_cluster_rpc_errors_total", label,
				"Failed cluster RPC attempts per endpoint (each retried attempt counts)."),
			latency: c.reg.Histogram("silc_cluster_rpc_seconds", label,
				"Cluster RPC call latency per endpoint, across all attempts of the call."),
		}
	}
	c.retries = c.reg.Counter("silc_cluster_retries_total", "",
		"Attempts launched because a previous replica attempt failed.")
	c.hedges = c.reg.Counter("silc_cluster_hedges_total", "",
		"Hedged attempts launched because a replica was slow.")
	c.failures = c.reg.Counter("silc_cluster_call_failures_total", "",
		"Cluster RPC calls that exhausted every replica (client-visible failures).")
	c.cellCalls = make([]*obs.Counter, p)
	c.cellLoad = make([]atomic.Int64, p)
	for cell := 0; cell < p; cell++ {
		c.cellCalls[cell] = c.reg.Counter("silc_cluster_cell_rpcs_total",
			`cell="`+strconv.Itoa(cell)+`"`,
			"Cluster RPC calls issued per cell — the router-side per-cell load signal behind hot-cell detection.")
	}
	return c, nil
}

// Registry exposes the client's silc_cluster_* metrics.
func (c *Client) Registry() *obs.Registry { return c.reg }

// NumPartitions returns the partition count the client routes for.
func (c *Client) NumPartitions() int { return c.p }

// CellLoad is one cell's cumulative RPC count.
type CellLoad struct {
	Cell  int
	Calls int64
}

// HotCells returns the k most-called cells in descending call order — the
// signal an operator (or an autoscaler) uses to add replicas for skewed
// cells. Backed by the same per-cell counters /metrics exports.
func (c *Client) HotCells(k int) []CellLoad {
	loads := make([]CellLoad, c.p)
	for i := range loads {
		loads[i] = CellLoad{Cell: i, Calls: c.cellLoad[i].Load()}
	}
	sort.Slice(loads, func(a, b int) bool {
		if loads[a].Calls != loads[b].Calls {
			return loads[a].Calls > loads[b].Calls
		}
		return loads[a].Cell < loads[b].Cell
	})
	if k < len(loads) {
		loads = loads[:k]
	}
	return loads
}

// Probe checks /readyz on every node currently marked down and re-admits
// the ones that answer 200 — so a replica that restarted rejoins rotation
// before its cooldown expires. Call it periodically from a background
// goroutine; it bounds itself by ctx.
func (c *Client) Probe(ctx context.Context) {
	now := time.Now().UnixNano()
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.downUntil.Load() == 0 || n.downUntil.Load() < now {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.addr+"/readyz", nil)
		if err != nil {
			continue
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			n.downUntil.Store(0)
		}
	}
}

// StartProbing runs Probe every interval until ctx is cancelled.
func (c *Client) StartProbing(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.Probe(ctx)
			}
		}
	}()
}

// Ready verifies every node in the manifest answers /readyz, so a router
// can gate its own readiness on the cluster being dialable.
func (c *Client) Ready(ctx context.Context) error {
	for i := range c.nodes {
		n := &c.nodes[i]
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.addr+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: node %s: %w", n.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: node %s: readyz status %d", n.name, resp.StatusCode)
		}
	}
	return nil
}

// Call issues one RPC for cell against its replica set: replicas are tried
// in round-robin rotation (healthy ones first), a failed attempt
// immediately fails over to the next replica, and a slow attempt launches a
// hedge after HedgeDelay. The first successful response wins. Each replica
// is attempted at most once per call; the call fails only when every
// replica has failed (or ctx expired) — a single replica failure is
// invisible to the query.
func (c *Client) Call(ctx context.Context, cell int32, endpoint string, req, resp any) error {
	em := c.rpcs[endpoint]
	if em == nil {
		return fmt.Errorf("cluster: unknown endpoint %s", endpoint)
	}
	em.calls.Inc()
	c.cellCalls[cell].Inc()
	c.cellLoad[cell].Add(1)
	start := time.Now()
	defer func() { em.latency.Observe(time.Since(start)) }()

	// The request body is encoded once and replayed per attempt.
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", endpoint, err)
	}
	order := c.replicaOrder(cell)

	type result struct {
		data []byte
		ni   int
		err  error
	}
	results := make(chan result, len(order))
	attemptCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	attempt := func(ni int) {
		data, err := c.attempt(attemptCtx, ni, cell, endpoint, body)
		results <- result{data: data, ni: ni, err: err}
	}

	launched := 1
	go attempt(order[0])
	pending := 1
	var hedge <-chan time.Time
	if c.opt.HedgeDelay > 0 && launched < len(order) {
		t := time.NewTimer(c.opt.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	var lastErr error
	for pending > 0 {
		select {
		case <-ctx.Done():
			c.failures.Inc()
			em.errors.Inc()
			return ctx.Err()
		case <-hedge:
			hedge = nil
			if launched < len(order) {
				c.hedges.Inc()
				go attempt(order[launched])
				launched++
				pending++
			}
		case res := <-results:
			pending--
			if res.err == nil {
				if err := json.Unmarshal(res.data, resp); err != nil {
					res.err = fmt.Errorf("cluster: decoding %s response: %w", endpoint, err)
				} else {
					return nil
				}
			}
			em.errors.Inc()
			lastErr = res.err
			c.markDown(res.ni)
			if launched < len(order) {
				c.retries.Inc()
				go attempt(order[launched])
				launched++
				pending++
			}
		}
	}
	c.failures.Inc()
	return fmt.Errorf("cluster: cell %d: every replica failed: %w", cell, lastErr)
}

// attempt performs one HTTP POST against one replica under the per-attempt
// timeout.
func (c *Client) attempt(ctx context.Context, ni int, cell int32, endpoint string, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		c.nodes[ni].addr+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", c.nodes[ni].name, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("node %s: reading response: %w", c.nodes[ni].name, err)
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResp
		msg := ""
		if json.Unmarshal(data, &er) == nil {
			msg = ": " + er.Error
		}
		return nil, fmt.Errorf("node %s: %s status %d%s", c.nodes[ni].name, endpoint, resp.StatusCode, msg)
	}
	return data, nil
}

// replicaOrder returns cell's replicas in attempt order: round-robin
// rotated for load balancing, with currently-down replicas moved to the
// back (they remain last-resort candidates — a cell whose every replica is
// cooling down still gets attempts rather than an instant failure).
func (c *Client) replicaOrder(cell int32) []int {
	owners := c.owners[cell]
	start := int(c.rr[cell].Add(1)-1) % len(owners)
	order := make([]int, 0, len(owners))
	now := time.Now().UnixNano()
	var down []int
	for i := 0; i < len(owners); i++ {
		ni := owners[(start+i)%len(owners)]
		if du := c.nodes[ni].downUntil.Load(); du != 0 && du > now {
			down = append(down, ni)
			continue
		}
		order = append(order, ni)
	}
	return append(order, down...)
}

func (c *Client) markDown(ni int) {
	c.nodes[ni].downUntil.Store(time.Now().Add(c.opt.FailCooldown).UnixNano())
}
