package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Manifest is the static cluster topology: which node serves which cells.
// A cell listed by more than one node has replicas — the router load-
// balances across them and fails over when one dies. The manifest is plain
// JSON so deployments can generate it from whatever inventory they have:
//
//	{
//	  "index": "net.sidx",
//	  "nodes": [
//	    {"name": "node-a", "addr": "http://127.0.0.1:7101", "cells": [0, 1]},
//	    {"name": "node-b", "addr": "http://127.0.0.1:7102", "cells": [2, 3]},
//	    {"name": "node-c", "addr": "http://127.0.0.1:7103", "cells": [0, 1, 2, 3]}
//	  ]
//	}
//
// Index names the sharded paged index file (relative paths resolve against
// the process working directory): nodes open it for the cell images, the
// router reads only its metadata half (network + cell labels + closure).
type Manifest struct {
	Index string     `json:"index"`
	Nodes []NodeSpec `json:"nodes"`
}

// NodeSpec is one node's entry: a unique name (what -node-name selects), a
// base URL the router dials, and the cells it owns.
type NodeSpec struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Cells []int  `json:"cells"`
}

// LoadManifest reads and structurally validates a manifest file. Coverage
// against a concrete partition count is checked separately by Validate,
// because the count comes from the index file the manifest points at.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	return ParseManifest(data)
}

// ParseManifest decodes and structurally validates manifest JSON.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: manifest lists no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: manifest node %d has no name", i)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: manifest names node %q twice", n.Name)
		}
		seen[n.Name] = true
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: manifest node %q has no addr", n.Name)
		}
		if len(n.Cells) == 0 {
			return nil, fmt.Errorf("cluster: manifest node %q owns no cells", n.Name)
		}
		cells := make(map[int]bool, len(n.Cells))
		for _, c := range n.Cells {
			if c < 0 {
				return nil, fmt.Errorf("cluster: manifest node %q lists negative cell %d", n.Name, c)
			}
			if cells[c] {
				return nil, fmt.Errorf("cluster: manifest node %q lists cell %d twice", n.Name, c)
			}
			cells[c] = true
		}
	}
	return &m, nil
}

// Validate checks the manifest against a concrete partition count: every
// cell in [0, p) must have at least one owner, and no node may claim a cell
// beyond the index's partitions.
func (m *Manifest) Validate(p int) error {
	covered := make([]bool, p)
	for _, n := range m.Nodes {
		for _, c := range n.Cells {
			if c >= p {
				return fmt.Errorf("cluster: node %q claims cell %d, index has %d partitions", n.Name, c, p)
			}
			covered[c] = true
		}
	}
	for c, ok := range covered {
		if !ok {
			return fmt.Errorf("cluster: cell %d has no owning node in the manifest", c)
		}
	}
	return nil
}

// Node returns the spec for name, nil when absent.
func (m *Manifest) Node(name string) *NodeSpec {
	for i := range m.Nodes {
		if m.Nodes[i].Name == name {
			return &m.Nodes[i]
		}
	}
	return nil
}

// Owners returns, per cell in [0, p), the manifest indices of the nodes
// serving it — each cell's replica set, in manifest order.
func (m *Manifest) Owners(p int) [][]int {
	owners := make([][]int, p)
	for i, n := range m.Nodes {
		for _, c := range n.Cells {
			if c < p {
				owners[c] = append(owners[c], i)
			}
		}
	}
	for _, o := range owners {
		sort.Ints(o)
	}
	return owners
}
