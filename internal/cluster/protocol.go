// Package cluster implements distributed serving of a partitioned SILC
// index: cell-owning nodes answer an internal RPC surface over their local
// cell indexes, and a stateless router — holding only the global network,
// the cell labels, and the boundary closure — fans cross-cell queries out to
// the owning nodes and merges the answers exactly.
//
// The RPC surface is deliberately tiny and data-parallel: every call is one
// of the per-cell primitives the routing layer already consumes through the
// partition.CellIndex seam (progressive refinement collapsed to its exact
// endpoint, zero-refinement intervals, boundary sweeps, route races, region
// lower bounds, path retrieval). Because a node runs the identical cell
// index code the in-process engine runs, and distances travel as raw IEEE
// 754 bits, the router's merged answers are bit-identical to the monolithic
// engine's.
package cluster

import (
	"math"

	"silc/internal/core"
	"silc/internal/diskio"
)

// RPC endpoint paths, all POST with JSON bodies. The /rpc/v1 prefix
// versions the wire contract: a node and router disagreeing on the protocol
// fail loudly on 404 rather than subtly on skewed semantics.
const (
	PathBoundary  = "/rpc/v1/boundary"  // exact src→every-boundary distances
	PathIntervals = "/rpc/v1/intervals" // zero-refinement intervals, v↔every boundary
	PathInterval  = "/rpc/v1/interval"  // zero-refinement interval for one pair
	PathExact     = "/rpc/v1/exact"     // fully refined distance for one pair
	PathRace      = "/rpc/v1/race"      // min over i of offs[i]+d(us[i],dst), exact
	PathRegion    = "/rpc/v1/region"    // lower bound to a rectangle
	PathPath      = "/rpc/v1/path"      // within-cell shortest path
)

// Distances cross the wire as their IEEE 754 bit patterns (uint64), never
// as decimal text: JSON number formatting would round-trip most float64
// values but not guarantee it for every value and not represent ±Inf at
// all, and the cluster's contract is bit-identical answers.

// Bits encodes a float64 for transport.
func Bits(f float64) uint64 { return math.Float64bits(f) }

// FromBits decodes a transported float64.
func FromBits(b uint64) float64 { return math.Float64frombits(b) }

// IOStats is the per-call buffer-pool traffic the node charged answering a
// request. The router folds it into the originating query's own counters,
// so a cross-cell query's I/O attribution spans the cluster exactly like it
// spans the shared pool in process.
type IOStats struct {
	Hits          int64 `json:"hits,omitempty"`
	Misses        int64 `json:"misses,omitempty"`
	Evictions     int64 `json:"evictions,omitempty"`
	Reads         int64 `json:"reads,omitempty"`
	BlocksDecoded int64 `json:"blocks_decoded,omitempty"`
}

func toIOStats(s diskio.Stats) IOStats {
	return IOStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Reads:         s.Reads,
		BlocksDecoded: s.BlocksDecoded,
	}
}

// Fold adds the node-side traffic to a router-side query context.
func (s IOStats) Fold(qc *core.QueryContext) {
	if qc == nil {
		return
	}
	qc.IO.Add(diskio.Stats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Reads:         s.Reads,
		BlocksDecoded: s.BlocksDecoded,
	})
}

// BoundaryReq asks for the exact within-cell distance from Src to every
// boundary vertex of Cell, in closure row order. Vertex ids are cell-local.
type BoundaryReq struct {
	Cell int32  `json:"cell"`
	Src  uint32 `json:"src"`
}

type BoundaryResp struct {
	Dists []uint64 `json:"dists"`
	IO    IOStats  `json:"io"`
}

// IntervalsReq asks for the zero-refinement interval between V and every
// boundary vertex of Cell, in closure row order. ToV selects the direction:
// boundary→V when true, V→boundary when false.
type IntervalsReq struct {
	Cell int32  `json:"cell"`
	V    uint32 `json:"v"`
	ToV  bool   `json:"to_v"`
}

type IntervalsResp struct {
	Los []uint64 `json:"los"`
	His []uint64 `json:"his"`
	IO  IOStats  `json:"io"`
}

// IntervalReq asks for the zero-refinement interval on d_cell(U, V).
type IntervalReq struct {
	Cell int32  `json:"cell"`
	U    uint32 `json:"u"`
	V    uint32 `json:"v"`
}

type IntervalResp struct {
	Lo uint64  `json:"lo"`
	Hi uint64  `json:"hi"`
	IO IOStats `json:"io"`
}

// ExactReq asks for the fully refined within-cell distance d_cell(U, V)
// (+Inf bits when unreachable inside the cell).
type ExactReq struct {
	Cell int32  `json:"cell"`
	U    uint32 `json:"u"`
	V    uint32 `json:"v"`
}

type ExactResp struct {
	D  uint64  `json:"d"`
	IO IOStats `json:"io"`
}

// RaceReq asks for min over i of offs[i] + d_cell(us[i], Dst), resolved
// exactly (candidates refine in lower-bound order with a cutoff).
type RaceReq struct {
	Cell int32    `json:"cell"`
	Dst  uint32   `json:"dst"`
	Offs []uint64 `json:"offs"`
	Us   []uint32 `json:"us"`
}

type RaceResp struct {
	D   uint64  `json:"d"`
	Arg int     `json:"arg"` // index into Offs/Us; -1 when all unreachable
	IO  IOStats `json:"io"`
}

// RegionReq asks for the cell index's lower bound on the distance from Q to
// any vertex inside the rectangle.
type RegionReq struct {
	Cell int32  `json:"cell"`
	Q    uint32 `json:"q"`
	MinX uint64 `json:"min_x"`
	MinY uint64 `json:"min_y"`
	MaxX uint64 `json:"max_x"`
	MaxY uint64 `json:"max_y"`
}

type RegionResp struct {
	D  uint64  `json:"d"`
	IO IOStats `json:"io"`
}

// PathReq asks for a within-cell shortest path from U to V, in cell-local
// vertex ids.
type PathReq struct {
	Cell int32  `json:"cell"`
	U    uint32 `json:"u"`
	V    uint32 `json:"v"`
}

type PathResp struct {
	Verts []uint32 `json:"verts"`
	IO    IOStats  `json:"io"`
}

// ErrorResp is the JSON body of every non-200 RPC response.
type ErrorResp struct {
	Error string `json:"error"`
}
