package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestManifestParseAndValidate(t *testing.T) {
	good := []byte(`{
		"index": "net.sidx",
		"nodes": [
			{"name": "a", "addr": "http://x:1", "cells": [0, 1]},
			{"name": "b", "addr": "http://x:2", "cells": [1, 2]}
		]
	}`)
	m, err := ParseManifest(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(4); err == nil {
		t.Fatal("cell 3 has no owner; Validate(4) must fail")
	}
	if err := m.Validate(2); err == nil {
		t.Fatal("node b claims cell 2 of a 2-partition index; Validate(2) must fail")
	}
	owners := m.Owners(3)
	if len(owners[1]) != 2 || owners[1][0] != 0 || owners[1][1] != 1 {
		t.Fatalf("cell 1 owners = %v, want [0 1]", owners[1])
	}
	if m.Node("a") == nil || m.Node("zz") != nil {
		t.Fatal("Node lookup broken")
	}

	bad := []string{
		`{}`, // no nodes
		`{"nodes": [{"name": "", "addr": "http://x", "cells": [0]}]}`,                                                   // empty name
		`{"nodes": [{"name": "a", "addr": "", "cells": [0]}]}`,                                                          // empty addr
		`{"nodes": [{"name": "a", "addr": "http://x", "cells": []}]}`,                                                   // no cells
		`{"nodes": [{"name": "a", "addr": "http://x", "cells": [0, 0]}]}`,                                               // dup cell
		`{"nodes": [{"name": "a", "addr": "http://x", "cells": [-1]}]}`,                                                 // negative cell
		`{"nodes": [{"name": "a", "addr": "http://x", "cells": [0]}, {"name": "a", "addr": "http://y", "cells": [0]}]}`, // dup name
	}
	for _, src := range bad {
		if _, err := ParseManifest([]byte(src)); err == nil {
			t.Fatalf("ParseManifest accepted invalid manifest %s", src)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 0.1, 1e300, 5e-324, math.Inf(1), math.Inf(-1), math.MaxFloat64}
	for _, v := range vals {
		if got := FromBits(Bits(v)); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	// NaN: bits survive even though NaN != NaN.
	nan := math.Float64frombits(0x7ff8000000000001)
	if Bits(FromBits(Bits(nan))) != Bits(nan) {
		t.Fatal("NaN bit pattern not preserved")
	}
	// And through JSON, the transport that matters.
	type wrap struct {
		D uint64 `json:"d"`
	}
	for _, v := range vals {
		data, err := json.Marshal(wrap{D: Bits(v)})
		if err != nil {
			t.Fatal(err)
		}
		var back wrap
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if FromBits(back.D) != v {
			t.Fatalf("JSON round trip %v -> %v", v, FromBits(back.D))
		}
	}
}

// twoReplicaClient builds a client over two fake replicas for cell 0.
func twoReplicaClient(t *testing.T, addrA, addrB string, opt ClientOptions) *Client {
	t.Helper()
	m := &Manifest{Nodes: []NodeSpec{
		{Name: "a", Addr: addrA, Cells: []int{0}},
		{Name: "b", Addr: addrB, Cells: []int{0}},
	}}
	c, err := NewClient(m, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func okHandler(d uint64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ExactResp{D: d})
	}
}

func TestClientRetriesAcrossReplicas(t *testing.T) {
	var aCalls, bCalls atomic.Int64
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aCalls.Add(1)
		http.Error(w, `{"error":"broken"}`, http.StatusInternalServerError)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bCalls.Add(1)
		okHandler(Bits(2.5))(w, r)
	}))
	defer b.Close()

	c := twoReplicaClient(t, a.URL, b.URL, ClientOptions{Timeout: 2 * time.Second})
	// Run several calls: whichever replica rotation starts on, every call
	// must succeed, and replica a must never surface its failure.
	for i := 0; i < 6; i++ {
		var resp ExactResp
		if err := c.Call(context.Background(), 0, PathExact, &ExactReq{}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if FromBits(resp.D) != 2.5 {
			t.Fatalf("call %d: got %v", i, FromBits(resp.D))
		}
	}
	if bCalls.Load() < 6 {
		t.Fatalf("replica b served %d of 6 calls", bCalls.Load())
	}
	if c.failures.Value() != 0 {
		t.Fatalf("client-visible failures: %d", c.failures.Value())
	}
	// a failed at least once, was marked down, and the cooldown kept later
	// rotations off it (6 calls in far less than the cooldown).
	if got := c.retries.Value(); got < 1 {
		t.Fatalf("no retries recorded (a calls: %d)", aCalls.Load())
	}
}

func TestClientAllReplicasFailing(t *testing.T) {
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"broken"}`, http.StatusInternalServerError)
	})
	a := httptest.NewServer(bad)
	defer a.Close()
	b := httptest.NewServer(bad)
	defer b.Close()
	c := twoReplicaClient(t, a.URL, b.URL, ClientOptions{Timeout: time.Second})
	var resp ExactResp
	if err := c.Call(context.Background(), 0, PathExact, &ExactReq{}, &resp); err == nil {
		t.Fatal("call succeeded with every replica failing")
	}
	if c.failures.Value() != 1 {
		t.Fatalf("failures counter = %d, want 1", c.failures.Value())
	}
}

func TestClientHedgesSlowReplica(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		okHandler(Bits(1.0))(w, r)
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(okHandler(Bits(1.0)))
	defer fast.Close()

	c := twoReplicaClient(t, slow.URL, fast.URL, ClientOptions{
		Timeout:    5 * time.Second,
		HedgeDelay: 20 * time.Millisecond,
	})
	// Force rotation to start on the slow replica: try both rotations; at
	// least one call begins on slow and must be rescued by the hedge.
	for i := 0; i < 2; i++ {
		var resp ExactResp
		start := time.Now()
		if err := c.Call(context.Background(), 0, PathExact, &ExactReq{}, &resp); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("call %d took %v; hedge did not rescue it", i, d)
		}
	}
	if c.hedges.Value() < 1 {
		t.Fatal("no hedged attempts recorded")
	}
}

func TestClientProbeReadmitsNode(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if ready.Load() {
				w.Write([]byte("ready\n"))
			} else {
				http.Error(w, "down", http.StatusServiceUnavailable)
			}
			return
		}
		okHandler(Bits(3.0))(w, r)
	}))
	defer srv.Close()
	c := twoReplicaClient(t, srv.URL, srv.URL, ClientOptions{
		Timeout:      time.Second,
		FailCooldown: time.Hour, // only Probe can re-admit
	})
	c.markDown(0)
	ready.Store(true)
	c.Probe(context.Background())
	if c.nodes[0].downUntil.Load() != 0 {
		t.Fatal("Probe did not re-admit a ready node")
	}
	c.markDown(0)
	ready.Store(false)
	c.Probe(context.Background())
	if c.nodes[0].downUntil.Load() == 0 {
		t.Fatal("Probe re-admitted a node that is not ready")
	}
}
