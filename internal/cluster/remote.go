package cluster

import (
	"fmt"
	"math"

	"silc/internal/core"
	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/partition"
)

// RemoteCell is the router-side stand-in for one cell's index: every
// partition.CellIndex operation becomes one RPC to the cell's replica set.
// It also implements the three batch hooks (BoundaryDistancer,
// BoundaryIntervaler, RouteRacer), which is what keeps a cross-cell query's
// RPC count at a handful rather than one per boundary row or refinement
// step.
//
// Failure semantics mirror a local paged index with a broken disk: when
// every replica fails, the error is recorded on the query context via Fail
// — the engine reports it and discards the result — and the method returns
// a safe value (+Inf distances, [0,+Inf) intervals, 0 lower bounds, nil
// paths). A single replica failure never reaches here; the Client retries
// it away.
type RemoteCell struct {
	c    *Client
	cell int32
	nb   int // boundary rows of this cell (len of batch replies)
}

var (
	_ partition.CellIndex          = (*RemoteCell)(nil)
	_ partition.BoundaryDistancer  = (*RemoteCell)(nil)
	_ partition.BoundaryIntervaler = (*RemoteCell)(nil)
	_ partition.RouteRacer         = (*RemoteCell)(nil)
)

// RemoteCells builds the full per-cell backend slice for NewRemote from the
// router metadata's row counts.
func RemoteCells(c *Client, meta *partition.RouterMeta) []partition.CellIndex {
	out := make([]partition.CellIndex, c.p)
	for cell := 0; cell < c.p; cell++ {
		lo, hi := meta.BoundaryRows(cell)
		out[cell] = &RemoteCell{c: c, cell: int32(cell), nb: int(hi - lo)}
	}
	return out
}

// BoundaryDistances implements partition.BoundaryDistancer: one RPC for
// the whole src→boundary sweep.
func (rc *RemoteCell) BoundaryDistances(qc *core.QueryContext, src graph.VertexID) []float64 {
	var resp BoundaryResp
	err := rc.c.Call(qc.Context(), rc.cell, PathBoundary,
		&BoundaryReq{Cell: rc.cell, Src: uint32(src)}, &resp)
	if err != nil {
		qc.Fail(err)
		return infDists(rc.nb)
	}
	resp.IO.Fold(qc)
	if len(resp.Dists) != rc.nb {
		qc.Fail(errRowCount(rc.cell, len(resp.Dists), rc.nb))
		return infDists(rc.nb)
	}
	out := make([]float64, rc.nb)
	for i, b := range resp.Dists {
		out[i] = FromBits(b)
	}
	return out
}

// BoundaryIntervals implements partition.BoundaryIntervaler: one RPC for
// the whole v↔boundary interval sweep.
func (rc *RemoteCell) BoundaryIntervals(qc *core.QueryContext, v graph.VertexID, toV bool) []core.Interval {
	var resp IntervalsResp
	err := rc.c.Call(qc.Context(), rc.cell, PathIntervals,
		&IntervalsReq{Cell: rc.cell, V: uint32(v), ToV: toV}, &resp)
	if err != nil {
		qc.Fail(err)
		return looseIntervals(rc.nb)
	}
	resp.IO.Fold(qc)
	if len(resp.Los) != rc.nb || len(resp.His) != rc.nb {
		qc.Fail(errRowCount(rc.cell, len(resp.Los), rc.nb))
		return looseIntervals(rc.nb)
	}
	out := make([]core.Interval, rc.nb)
	for i := range out {
		out[i] = core.Interval{Lo: FromBits(resp.Los[i]), Hi: FromBits(resp.His[i])}
	}
	return out
}

// RaceRoutes implements partition.RouteRacer: the whole candidate race in
// one RPC.
func (rc *RemoteCell) RaceRoutes(qc *core.QueryContext, dst graph.VertexID, offs []float64, us []graph.VertexID) (float64, int) {
	req := &RaceReq{Cell: rc.cell, Dst: uint32(dst),
		Offs: make([]uint64, len(offs)), Us: make([]uint32, len(us))}
	for i := range offs {
		req.Offs[i] = Bits(offs[i])
		req.Us[i] = uint32(us[i])
	}
	var resp RaceResp
	if err := rc.c.Call(qc.Context(), rc.cell, PathRace, req, &resp); err != nil {
		qc.Fail(err)
		return math.Inf(1), -1
	}
	resp.IO.Fold(qc)
	if resp.Arg < -1 || resp.Arg >= len(offs) {
		qc.Fail(errRowCount(rc.cell, resp.Arg, len(offs)))
		return math.Inf(1), -1
	}
	return FromBits(resp.D), resp.Arg
}

// DistanceIntervalCtx implements partition.CellIndex.
func (rc *RemoteCell) DistanceIntervalCtx(qc *core.QueryContext, u, v graph.VertexID) core.Interval {
	var resp IntervalResp
	err := rc.c.Call(qc.Context(), rc.cell, PathInterval,
		&IntervalReq{Cell: rc.cell, U: uint32(u), V: uint32(v)}, &resp)
	if err != nil {
		qc.Fail(err)
		return core.Interval{Lo: 0, Hi: math.Inf(1)}
	}
	resp.IO.Fold(qc)
	return core.Interval{Lo: FromBits(resp.Lo), Hi: FromBits(resp.Hi)}
}

// RegionLowerBoundCtx implements partition.CellIndex.
func (rc *RemoteCell) RegionLowerBoundCtx(qc *core.QueryContext, q graph.VertexID, rect geom.Rect) float64 {
	var resp RegionResp
	err := rc.c.Call(qc.Context(), rc.cell, PathRegion, &RegionReq{
		Cell: rc.cell, Q: uint32(q),
		MinX: Bits(rect.MinX), MinY: Bits(rect.MinY),
		MaxX: Bits(rect.MaxX), MaxY: Bits(rect.MaxY),
	}, &resp)
	if err != nil {
		qc.Fail(err)
		return 0 // distances are non-negative, so 0 is a valid lower bound
	}
	resp.IO.Fold(qc)
	return FromBits(resp.D)
}

// PathCtx implements partition.CellIndex.
func (rc *RemoteCell) PathCtx(qc *core.QueryContext, u, v graph.VertexID) []graph.VertexID {
	var resp PathResp
	err := rc.c.Call(qc.Context(), rc.cell, PathPath,
		&PathReq{Cell: rc.cell, U: uint32(u), V: uint32(v)}, &resp)
	if err != nil {
		qc.Fail(err)
		return nil
	}
	resp.IO.Fold(qc)
	out := make([]graph.VertexID, len(resp.Verts))
	for i, v := range resp.Verts {
		out[i] = graph.VertexID(v)
	}
	return out
}

// Refine implements partition.CellIndex: the refiner starts from the
// node's zero-refinement interval (one RPC) and collapses straight to the
// exact distance on its first Step (a second RPC) — remote refinement has
// no useful intermediate granularity, and the routing layer's RouteRacer
// fast path means Step is only ever reached for intra-cell pairs.
func (rc *RemoteCell) Refine(qc *core.QueryContext, src, dst graph.VertexID) core.DistanceRefiner {
	r := &remoteRefiner{rc: rc, qc: qc, u: src, v: dst}
	r.iv = rc.DistanceIntervalCtx(qc, src, dst)
	if r.iv.Lo >= r.iv.Hi || math.IsInf(r.iv.Lo, 1) {
		r.done = true
		r.oor = math.IsInf(r.iv.Lo, 1)
	}
	return r
}

type remoteRefiner struct {
	rc   *RemoteCell
	qc   *core.QueryContext
	u, v graph.VertexID
	iv   core.Interval
	done bool
	oor  bool
}

func (r *remoteRefiner) Interval() core.Interval { return r.iv }
func (r *remoteRefiner) Done() bool              { return r.done }
func (r *remoteRefiner) OutOfRange() bool        { return r.oor }

func (r *remoteRefiner) Step() bool {
	if r.done {
		return false
	}
	if r.qc.Err() != nil {
		return false
	}
	var resp ExactResp
	err := r.rc.c.Call(r.qc.Context(), r.rc.cell, PathExact,
		&ExactReq{Cell: r.rc.cell, U: uint32(r.u), V: uint32(r.v)}, &resp)
	if err != nil {
		r.qc.Fail(err)
		return false
	}
	resp.IO.Fold(r.qc)
	d := FromBits(resp.D)
	r.iv = core.Interval{Lo: d, Hi: d}
	r.done = true
	r.oor = math.IsInf(d, 1)
	return false
}

func infDists(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	return out
}

func looseIntervals(n int) []core.Interval {
	out := make([]core.Interval, n)
	for i := range out {
		out[i] = core.Interval{Lo: 0, Hi: math.Inf(1)}
	}
	return out
}

func errRowCount(cell int32, got, want int) error {
	return fmt.Errorf("cluster: cell %d replied with %d entries, expected %d", cell, got, want)
}
