// Package knn implements the paper's k-nearest-neighbor algorithms over a
// SILC index: the non-incremental best-first kNN (paper §4) and its variants
// INN, kNN-I, and kNN-M, plus the two comparison baselines from Papadias et
// al. (VLDB 2003) — INE (incremental network expansion, i.e. Dijkstra with a
// result buffer) and IER (incremental Euclidean restriction).
//
// All algorithms consume the same inputs — a core.QueryIndex (the monolithic
// SILC index or the sharded partition index), an object set S in a PMR
// quadtree, a query vertex, and k — and report uniform statistics (queue
// sizes, refinement counts, buffer-pool traffic) so the paper's evaluation
// can be regenerated measure for measure.
package knn

import (
	"math"
	"time"

	"silc/internal/core"
	"silc/internal/diskio"
	"silc/internal/graph"
	"silc/internal/pmr"
)

// Objects is the query set S: a PMR quadtree plus the vertex->objects map
// the network-expansion baseline needs.
// Internally every structure — the quadtree, the vertex map, the search
// engines' state arrays — works in DENSE slot indices 0..Len-1, so the
// algorithms can index arrays by object id regardless of how the set was
// built. Sets built by NewObjectsWithIDs additionally carry caller-assigned
// stable ids, applied to an object only at the reporting boundary
// (resultAt/Label), so Neighbor.Object.ID is always the caller's id.
type Objects struct {
	tree *pmr.Tree
	objs []pmr.Object
	at   map[graph.VertexID][]int32
	// labels maps a dense slot to its public id; nil means identity (the
	// NewObjects fast path stays a bare slice load everywhere).
	labels []int32
	// byID is the reverse map, public id -> dense slot; nil for dense sets.
	byID map[int32]int32
}

// NewObjects builds an object set from network vertices. Object IDs are
// dense in input order. Multiple objects may share a vertex.
func NewObjects(g *graph.Network, vertices []graph.VertexID) *Objects {
	s := &Objects{
		tree: pmr.FromVertices(g, vertices, 0),
		at:   make(map[graph.VertexID][]int32, len(vertices)),
	}
	s.objs = make([]pmr.Object, len(vertices))
	for i, v := range vertices {
		s.objs[i] = pmr.Object{ID: int32(i), Vertex: v, Pos: g.Point(v)}
		s.at[v] = append(s.at[v], int32(i))
	}
	return s
}

// NewObjectsWithIDs builds an object set whose objects carry caller-assigned
// stable ids (not necessarily dense): the live object store's snapshots keep
// their ids across versions so Remove(id)/Move(id) stay meaningful against
// query results. ids and vertices are parallel; ids must be distinct.
// Multiple objects may share a vertex. An empty set is valid (queries over
// it are rejected at the engine's API edge, not here).
func NewObjectsWithIDs(g *graph.Network, ids []int32, vertices []graph.VertexID) *Objects {
	s := &Objects{
		tree:   pmr.New(0),
		at:     make(map[graph.VertexID][]int32, len(vertices)),
		labels: make([]int32, len(ids)),
		byID:   make(map[int32]int32, len(ids)),
	}
	copy(s.labels, ids)
	s.objs = make([]pmr.Object, len(vertices))
	for i, v := range vertices {
		// Dense slot ids inside every search structure; the stable public id
		// is applied only at the reporting boundary.
		o := pmr.Object{ID: int32(i), Vertex: v, Pos: g.Point(v)}
		s.objs[i] = o
		s.tree.Insert(o)
		s.at[v] = append(s.at[v], int32(i))
		s.byID[ids[i]] = int32(i)
	}
	return s
}

// Len returns |S|.
func (s *Objects) Len() int { return len(s.objs) }

// Tree returns the PMR quadtree over S.
func (s *Objects) Tree() *pmr.Tree { return s.tree }

// ByID returns the object with the given PUBLIC id, carrying that id. For
// NewObjects sets public ids are the dense slots; NewObjectsWithIDs sets go
// through the stable-id map.
func (s *Objects) ByID(id int32) pmr.Object {
	if s.byID == nil {
		return s.objs[id]
	}
	o := s.objs[s.byID[id]]
	o.ID = id
	return o
}

// Label maps a dense slot index to its public id (identity for NewObjects
// sets).
func (s *Objects) Label(i int32) int32 {
	if s.labels != nil {
		return s.labels[i]
	}
	return i
}

// resultAt returns the object at dense slot i carrying its public id — the
// only form a reported Neighbor may expose.
func (s *Objects) resultAt(i int32) pmr.Object {
	o := s.objs[i]
	o.ID = s.Label(i)
	return o
}

// All returns the objects in storage order (ascending public id for
// NewObjectsWithIDs sets). ID fields are dense slots — use Label for public
// ids. The slice aliases internal storage; do not modify.
func (s *Objects) All() []pmr.Object { return s.objs }

// AtVertex returns the dense slot ids of objects located at v.
func (s *Objects) AtVertex(v graph.VertexID) []int32 { return s.at[v] }

// Neighbor is one reported nearest neighbor.
type Neighbor struct {
	Object pmr.Object
	// Interval is the final network-distance interval; exact algorithms
	// report a point interval.
	Interval core.Interval
	// Dist is the network distance (Interval.Lo; exact when Exact).
	Dist float64
	// Exact reports whether Dist is the exact network distance.
	Exact bool
}

// Stats describes one query execution; fields irrelevant to an algorithm
// stay zero. These are the quantities the paper's figures plot.
type Stats struct {
	Algorithm string
	K         int

	MaxQueue    int // maximum size of the search priority queue Q
	MaxL        int // maximum size of the result priority queue L
	Lookups     int // zero-refinement interval computations
	Refinements int // progressive-refinement steps
	// KMinDistAccepts counts kNN-M results accepted directly against
	// KMINDIST, skipping refinement ("pruned" in the paper's fig. p.36).
	KMinDistAccepts int
	// LOps counts manipulations of L (the KNN-PQ cost component).
	LOps int
	// PQTime is the measured time spent manipulating L and Dk.
	PQTime time.Duration

	// D0k is the first-k upper-bound estimate of Dk (kNN-I / kNN-M; also
	// recorded by kNN for the estimate-quality figure). Zero when no
	// estimate was formed.
	D0k float64
	// KMinDist0 is the lower bound of the object defining D0k at the moment
	// the estimate was formed.
	KMinDist0 float64
	// DkFinal is the distance of the kth reported neighbor.
	DkFinal float64

	Settled    int // INE/IER: vertices settled by graph expansion
	Relaxed    int // INE/IER: edges relaxed
	AStarCalls int // IER: per-candidate shortest-path computations

	IO     diskio.Stats  // buffer-pool traffic during the query
	IOTime time.Duration // modeled I/O time for the traffic above
	CPU    time.Duration // measured wall time of the query computation
}

// Result is the outcome of one kNN query.
type Result struct {
	// Neighbors holds up to k neighbors. Sorted is true when they are in
	// increasing network-distance order (kNN-M trades the ordering away).
	Neighbors []Neighbor
	Sorted    bool
	Stats     Stats
	// Err is non-nil when the query's context was cancelled mid-search; the
	// neighbors gathered so far are still returned.
	Err error
}

// Spec parameterizes one query beyond (objs, q): the result size, the
// algorithm, and the two relaxation knobs the unified API exposes.
type Spec struct {
	// K is the result size.
	K int
	// Variant selects the best-first family member (Search only).
	Variant Variant
	// Epsilon relaxes rank certification: a neighbor is reported as soon as
	// its interval satisfies δ⁺ ≤ (1+ε)·δ⁻, which certifies its true
	// distance within (1+ε)× of the true distance at that rank. 0 keeps the
	// paper's exact-rank contract. The exact baselines (INE/IER) ignore it —
	// exact answers satisfy every ε.
	Epsilon float64
	// MaxDist bounds reported neighbors to network distance ≤ MaxDist — the
	// hybrid kNN∩range query. +Inf disables it. Note that the zero value is
	// a real bound (only distance-0 objects): callers wanting "unbounded"
	// must say math.Inf(1), which UnboundedSpec and the package-level
	// convenience wrappers do.
	MaxDist float64
	// MeasurePQ enables wall-clock instrumentation of the L/Dk priority
	// queue operations (Stats.PQTime, the paper's KNN-PQ cost split). It is
	// off by default because the time.Now pairs around every L operation
	// cost a measurable fraction of a warm in-memory query.
	MeasurePQ bool
}

// UnboundedSpec returns a Spec with the distance bound disabled.
func UnboundedSpec(k int, variant Variant) Spec {
	return Spec{K: k, Variant: variant, MaxDist: inf}
}

// Distances returns the reported distances in result order.
func (r Result) Distances() []float64 {
	out := make([]float64, len(r.Neighbors))
	for i, n := range r.Neighbors {
		out[i] = n.Dist
	}
	return out
}

// queryClock pairs one query's wall clock with its own I/O counters. Every
// page access the query performs is charged to qc, so concurrent queries on
// one shared index each report exactly their own traffic (the previous
// design diffed the index-global counters around the query, which
// misattributes under concurrency).
type queryClock struct {
	ix    core.QueryIndex
	qc    *core.QueryContext
	start time.Time
}

func beginQuery(ix core.QueryIndex) queryClock {
	return beginQueryWith(ix, core.NewQueryContext())
}

// beginQueryWith charges the query to a caller-owned context, so the caller
// both attributes I/O and can cancel the query mid-flight.
func beginQueryWith(ix core.QueryIndex, qc *core.QueryContext) queryClock {
	if qc == nil {
		qc = core.NewQueryContext()
	}
	return queryClock{ix: ix, qc: qc, start: time.Now()}
}

func (b queryClock) finish(s *Stats) {
	s.CPU = time.Since(b.start)
	s.IO = b.qc.IO
	s.IOTime = s.IO.ModeledIOTime(b.ix.Tracker().MissLatency())
}

var inf = math.Inf(1)
