package knn

import (
	"math/rand"
	"sort"
	"testing"

	"silc/internal/graph"
	"silc/internal/sssp"
)

// rangeTruth returns the ids of objects within radius by brute force.
func rangeTruth(h *harness, objs *Objects, q graph.VertexID, radius float64) map[int32]float64 {
	tree := sssp.Dijkstra(h.g, q)
	out := make(map[int32]float64)
	for id := int32(0); id < int32(objs.Len()); id++ {
		if d := tree.Dist[objs.ByID(id).Vertex]; d <= radius {
			out[id] = d
		}
	}
	return out
}

func checkRange(t *testing.T, name string, res Result, want map[int32]float64) {
	t.Helper()
	got := make(map[int32]bool, len(res.Neighbors))
	for _, nb := range res.Neighbors {
		if got[nb.Object.ID] {
			t.Fatalf("%s: duplicate object %d", name, nb.Object.ID)
		}
		got[nb.Object.ID] = true
		d, ok := want[nb.Object.ID]
		if !ok {
			t.Fatalf("%s: object %d reported but out of range", name, nb.Object.ID)
		}
		if nb.Interval.Lo > d+distTol || nb.Interval.Hi < d-distTol {
			t.Fatalf("%s: interval [%v,%v] misses true %v", name, nb.Interval.Lo, nb.Interval.Hi, d)
		}
	}
	if len(got) != len(want) {
		missing := []int32{}
		for id := range want {
			if !got[id] {
				missing = append(missing, id)
			}
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		t.Fatalf("%s: returned %d of %d; missing %v", name, len(got), len(want), missing)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	h := roadHarness(t, 10, 10, 31)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		objs := h.randomObjects(rng.Intn(40)+1, rng)
		q := graph.VertexID(rng.Intn(h.g.NumVertices()))
		radius := rng.Float64() * 0.8
		want := rangeTruth(h, objs, q, radius)
		checkRange(t, "RANGE", RangeSearch(h.ix, objs, q, radius), want)
		checkRange(t, "RANGE-INE", ObjectsInRange(h.ix, objs, q, radius), want)
	}
}

func TestRangeSearchOnRandomTopology(t *testing.T) {
	g, err := graph.GenerateRandomConnected(60, 50, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, g)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		objs := h.randomObjects(rng.Intn(30)+1, rng)
		q := graph.VertexID(rng.Intn(g.NumVertices()))
		radius := rng.Float64() * 1.5
		want := rangeTruth(h, objs, q, radius)
		checkRange(t, "RANGE", RangeSearch(h.ix, objs, q, radius), want)
	}
}

func TestRangeSearchEdgeCases(t *testing.T) {
	h := roadHarness(t, 8, 8, 33)
	rng := rand.New(rand.NewSource(11))
	objs := h.randomObjects(20, rng)
	q := objs.ByID(0).Vertex

	// Zero radius: exactly the objects at q.
	res := RangeSearch(h.ix, objs, q, 0)
	if len(res.Neighbors) != len(objs.AtVertex(q)) {
		t.Fatalf("radius 0: got %d want %d", len(res.Neighbors), len(objs.AtVertex(q)))
	}
	// Negative radius: empty.
	if res := RangeSearch(h.ix, objs, q, -1); len(res.Neighbors) != 0 {
		t.Fatal("negative radius returned objects")
	}
	// Huge radius: everything.
	if res := RangeSearch(h.ix, objs, q, 1e9); len(res.Neighbors) != objs.Len() {
		t.Fatalf("huge radius returned %d of %d", len(res.Neighbors), objs.Len())
	}
	// Empty set.
	if res := RangeSearch(h.ix, NewObjects(h.g, nil), q, 1); len(res.Neighbors) != 0 {
		t.Fatal("empty set returned objects")
	}
}

func TestRangeSearchRefinesOnlyStraddlers(t *testing.T) {
	// Objects far outside or far inside the radius must not be refined:
	// refinement count should be well below full-path refinement for all
	// objects.
	h := roadHarness(t, 12, 12, 35)
	rng := rand.New(rand.NewSource(13))
	objs := h.randomObjects(60, rng)
	q := graph.VertexID(rng.Intn(h.g.NumVertices()))
	res := RangeSearch(h.ix, objs, q, 0.3)

	full := 0
	for id := int32(0); id < int32(objs.Len()); id++ {
		full += len(sssp.ShortestPath(h.g, q, objs.ByID(id).Vertex).Path)
	}
	if res.Stats.Refinements >= full/2 {
		t.Fatalf("range search refined %d times; full refinement would be ~%d", res.Stats.Refinements, full)
	}
	if res.Stats.Lookups == 0 || res.Stats.MaxQueue == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}
