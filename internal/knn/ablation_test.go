package knn

import (
	"math"
	"math/rand"
	"testing"

	"silc/internal/graph"
)

func TestIERAStarMatchesIER(t *testing.T) {
	// The A* ablation must return identical results to the paper-faithful
	// Dijkstra-based IER while settling fewer vertices.
	h := roadHarness(t, 12, 12, 71)
	rng := rand.New(rand.NewSource(3))
	totalDij, totalAst := 0, 0
	for trial := 0; trial < 15; trial++ {
		objs := h.randomObjects(rng.Intn(50)+5, rng)
		q := graph.VertexID(rng.Intn(h.g.NumVertices()))
		k := rng.Intn(6) + 1
		a := IER(h.ix, objs, q, k)
		b := IERAStar(h.ix, objs, q, k)
		if len(a.Neighbors) != len(b.Neighbors) {
			t.Fatalf("result sizes differ: %d vs %d", len(a.Neighbors), len(b.Neighbors))
		}
		for i := range a.Neighbors {
			if math.Abs(a.Neighbors[i].Dist-b.Neighbors[i].Dist) > distTol {
				t.Fatalf("rank %d: %v vs %v", i, a.Neighbors[i].Dist, b.Neighbors[i].Dist)
			}
		}
		totalDij += a.Stats.Settled
		totalAst += b.Stats.Settled
		if b.Stats.Algorithm != "IER-A*" {
			t.Fatalf("algorithm label %q", b.Stats.Algorithm)
		}
	}
	if totalAst >= totalDij {
		t.Fatalf("A* settled %d vs Dijkstra %d; heuristic not focusing", totalAst, totalDij)
	}
}

func TestINEDegenerateSingleObject(t *testing.T) {
	h := roadHarness(t, 6, 6, 72)
	objs := NewObjects(h.g, []graph.VertexID{5})
	res := INE(h.ix, objs, 5, 1)
	if len(res.Neighbors) != 1 || res.Neighbors[0].Dist != 0 {
		t.Fatalf("INE self-object: %+v", res.Neighbors)
	}
	// k exceeding |S| with INE must expand the whole reachable network and
	// still terminate with one object.
	res = INE(h.ix, objs, 0, 4)
	if len(res.Neighbors) != 1 {
		t.Fatalf("INE k>|S|: %d neighbors", len(res.Neighbors))
	}
	if res.Stats.Settled != h.g.NumVertices() {
		t.Fatalf("INE should have exhausted the network: settled %d of %d",
			res.Stats.Settled, h.g.NumVertices())
	}
}

func TestSearchResultDistancesHelper(t *testing.T) {
	h := roadHarness(t, 6, 6, 73)
	rng := rand.New(rand.NewSource(5))
	objs := h.randomObjects(10, rng)
	res := Search(h.ix, objs, 0, 3, VariantKNN)
	d := res.Distances()
	if len(d) != len(res.Neighbors) {
		t.Fatal("Distances length mismatch")
	}
	for i := range d {
		if d[i] != res.Neighbors[i].Dist {
			t.Fatal("Distances content mismatch")
		}
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{
		VariantKNN: "KNN", VariantINN: "INN", VariantKNNI: "KNN-I",
		VariantKNNM: "KNN-M", Variant(99): "unknown",
	}
	for v, s := range want {
		if v.String() != s {
			t.Fatalf("%d.String() = %q want %q", v, v.String(), s)
		}
	}
	if len(Variants) != 4 {
		t.Fatalf("Variants = %v", Variants)
	}
}
