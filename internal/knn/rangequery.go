package knn

import (
	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/pqueue"
)

// RangeSearch returns every object within network distance radius of q —
// the paper's "general framework" claim instantiated for a second query
// type. The same machinery as kNN applies: object-index blocks prune on
// their interval lower bound, objects accept on δ⁺ <= radius, reject on
// δ⁻ > radius, and refine only while their interval straddles the radius.
// Results are unordered; distances are intervals refined just far enough to
// decide membership.
func RangeSearch(ix core.QueryIndex, objs *Objects, q graph.VertexID, radius float64) Result {
	return RangeSearchCtx(ix, core.NewQueryContext(), objs, q, radius)
}

// RangeSearchCtx is RangeSearch under a caller-supplied query context, so
// the caller attributes I/O and can cancel the search between refinements.
func RangeSearchCtx(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, radius float64) Result {
	clock := beginQueryWith(ix, qc)
	stats := Stats{Algorithm: "RANGE"}
	var res []Neighbor
	var cancelErr error

	if radius >= 0 && objs.Len() > 0 {
		var queue pqueue.Min[qelem]
		states := make([]*objState, objs.Len())
		queue.Push(0, qelem{node: objs.Tree().Root()})
		stats.MaxQueue = 1
		for queue.Len() > 0 {
			if cancelErr = clock.qc.Err(); cancelErr != nil {
				break
			}
			key, el := queue.Pop()
			if key > radius {
				break // min-ordered: everything remaining is out of range
			}
			if el.node != nil {
				if el.node.IsLeaf() {
					for _, o := range el.node.Objects() {
						st := &objState{id: o.ID, refiner: ix.Refine(clock.qc, q, o.Vertex)}
						st.iv = st.refiner.Interval()
						states[o.ID] = st
						stats.Lookups++
						if st.iv.Lo <= radius {
							queue.Push(st.iv.Lo, qelem{obj: o.ID})
						}
					}
				} else {
					for _, c := range el.node.Children() {
						if c == nil {
							continue
						}
						if lb := ix.RegionLowerBoundCtx(clock.qc, q, c.Rect()); lb <= radius {
							queue.Push(lb, qelem{node: c})
						}
					}
				}
				if queue.Len() > stats.MaxQueue {
					stats.MaxQueue = queue.Len()
				}
				continue
			}
			st := states[el.obj]
			// Refine until the interval falls on one side of the radius.
			// Out-of-range objects (proximity-bounded indexes) hold
			// [indexRadius, +Inf) forever and are excluded below.
			for st.iv.Lo <= radius && st.iv.Hi > radius &&
				!st.refiner.Done() && !st.refiner.OutOfRange() &&
				clock.qc.Err() == nil {
				st.refiner.Step()
				stats.Refinements++
				st.iv = st.refiner.Interval()
			}
			if st.iv.Hi <= radius || (st.refiner.Done() && st.iv.Lo <= radius) {
				res = append(res, Neighbor{
					Object:   objs.ByID(st.id),
					Interval: st.iv,
					Dist:     st.iv.Lo,
					Exact:    st.refiner.Done() || st.iv.Exact(),
				})
			}
		}
	}

	out := Result{Neighbors: res, Sorted: false, Stats: stats, Err: cancelErr}
	clock.finish(&out.Stats)
	return out
}

// ObjectsInRange is the INE-style baseline for range search: Dijkstra from q
// truncated at radius, collecting objects at settled vertices. Used for
// cross-validation and as the comparison point in tests.
func ObjectsInRange(ix core.QueryIndex, objs *Objects, q graph.VertexID, radius float64) Result {
	clock := beginQuery(ix)
	g := ix.Network()
	tracker := ix.Tracker()
	stats := Stats{Algorithm: "RANGE-INE"}
	var res []Neighbor

	if radius >= 0 && objs.Len() > 0 {
		n := g.NumVertices()
		dist := make([]float64, n)
		settled := make([]bool, n)
		for i := range dist {
			dist[i] = inf
		}
		var frontier pqueue.Min[graph.VertexID]
		dist[q] = 0
		frontier.Push(0, q)
		for frontier.Len() > 0 {
			d, v := frontier.Pop()
			if settled[v] || d > dist[v] {
				continue
			}
			if d > radius {
				break
			}
			settled[v] = true
			stats.Settled++
			for _, id := range objs.AtVertex(v) {
				res = append(res, Neighbor{
					Object:   objs.ByID(id),
					Interval: core.Interval{Lo: d, Hi: d},
					Dist:     d,
					Exact:    true,
				})
			}
			tracker.TouchAdjacency(int(v), &clock.qc.IO)
			targets, weights := g.Neighbors(v)
			for i, t := range targets {
				stats.Relaxed++
				if nd := d + weights[i]; nd < dist[t] {
					dist[t] = nd
					frontier.Push(nd, t)
				}
			}
		}
	}

	out := Result{Neighbors: res, Sorted: false, Stats: stats}
	clock.finish(&out.Stats)
	return out
}
