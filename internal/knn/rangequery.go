package knn

import (
	"silc/internal/core"
	"silc/internal/graph"
)

// RangeSearch returns every object within network distance radius of q —
// the paper's "general framework" claim instantiated for a second query
// type. The same machinery as kNN applies: object-index blocks prune on
// their interval lower bound, objects accept on δ⁺ <= radius, reject on
// δ⁻ > radius, and refine only while their interval straddles the radius.
// Results are unordered; distances are intervals refined just far enough to
// decide membership.
func RangeSearch(ix core.QueryIndex, objs *Objects, q graph.VertexID, radius float64) Result {
	return RangeSearchCtx(ix, core.NewQueryContext(), objs, q, radius)
}

// RangeSearchCtx is RangeSearch under a caller-supplied query context, so
// the caller attributes I/O and can cancel the search between refinements.
// Like SearchSpec it runs on the context's reusable scratch arena and copies
// the results out, so a pooled context answers steady-state range queries
// without allocating.
func RangeSearchCtx(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, radius float64) Result {
	clock := beginQueryWith(ix, qc)
	// k=0 keeps the engine frame passive (no root push, no L); the range
	// loop below drives the shared queue/state/result buffers itself.
	e := scratchFor(clock.qc).engineFor(ix, clock.qc, objs, q, 0, VariantINN)
	e.stats.Algorithm = "RANGE"

	if radius >= 0 && objs.Len() > 0 {
		e.queue.Push(0, qelem{node: objs.Tree().Root()})
		e.stats.MaxQueue = 1
		for e.queue.Len() > 0 {
			if e.err = clock.qc.Err(); e.err != nil {
				break
			}
			key, el := e.queue.Pop()
			if key > radius {
				break // min-ordered: everything remaining is out of range
			}
			if el.node != nil {
				if el.node.IsLeaf() {
					for _, o := range el.node.Objects() {
						st := &e.states[o.ID]
						*st = objState{id: o.ID, refiner: ix.Refine(clock.qc, q, o.Vertex), epoch: e.epoch}
						st.iv = st.refiner.Interval()
						e.stats.Lookups++
						if st.iv.Lo <= radius {
							e.queue.Push(st.iv.Lo, qelem{obj: o.ID})
						}
					}
				} else {
					for _, c := range el.node.Children() {
						if c == nil {
							continue
						}
						if lb := ix.RegionLowerBoundCtx(clock.qc, q, c.Rect()); lb <= radius {
							e.queue.Push(lb, qelem{node: c})
						}
					}
				}
				e.noteQueue()
				continue
			}
			st := &e.states[el.obj]
			// Refine until the interval falls on one side of the radius.
			// Out-of-range objects (proximity-bounded indexes) hold
			// [indexRadius, +Inf) forever and are excluded below.
			for st.iv.Lo <= radius && st.iv.Hi > radius &&
				!st.refiner.Done() && !st.refiner.OutOfRange() &&
				clock.qc.Err() == nil {
				st.refiner.Step()
				e.stats.Refinements++
				st.iv = st.refiner.Interval()
			}
			if st.iv.Hi <= radius || (st.refiner.Done() && st.iv.Lo <= radius) {
				e.results = append(e.results, Neighbor{
					Object:   objs.resultAt(st.id),
					Interval: st.iv,
					Dist:     st.iv.Lo,
					Exact:    st.refiner.Done() || st.iv.Exact(),
				})
			}
		}
	}

	out := e.result()
	out.Sorted = false
	clock.finish(&out.Stats)
	return out
}

// ObjectsInRange is the INE-style baseline for range search: Dijkstra from q
// truncated at radius, collecting objects at settled vertices. Used for
// cross-validation and as the comparison point in tests.
func ObjectsInRange(ix core.QueryIndex, objs *Objects, q graph.VertexID, radius float64) Result {
	clock := beginQuery(ix)
	g := ix.Network()
	tracker := ix.Tracker()
	stats := Stats{Algorithm: "RANGE-INE"}
	var res []Neighbor

	if radius >= 0 && objs.Len() > 0 {
		ws := &scratchFor(clock.qc).ws
		ws.reset(g.NumVertices())
		ws.setDist(q, 0)
		ws.frontier.Push(0, q)
		for ws.frontier.Len() > 0 {
			d, v := ws.frontier.Pop()
			if ws.settled(v) || d > ws.distOf(v) {
				continue
			}
			if d > radius {
				break
			}
			ws.settle(v)
			stats.Settled++
			for _, id := range objs.AtVertex(v) {
				res = append(res, Neighbor{
					Object:   objs.resultAt(id),
					Interval: core.Interval{Lo: d, Hi: d},
					Dist:     d,
					Exact:    true,
				})
			}
			tracker.TouchAdjacency(int(v), &clock.qc.IO)
			targets, weights := g.Neighbors(v)
			for i, t := range targets {
				stats.Relaxed++
				if nd := d + weights[i]; nd < ws.distOf(t) {
					ws.setDist(t, nd)
					ws.frontier.Push(nd, t)
				}
			}
		}
	}

	out := Result{Neighbors: res, Sorted: false, Stats: stats}
	clock.finish(&out.Stats)
	return out
}
