package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/sssp"
)

// harness bundles a network, its SILC index, and ground-truth machinery.
type harness struct {
	g  *graph.Network
	ix *core.Index
}

func newHarness(t testing.TB, g *graph.Network) *harness {
	t.Helper()
	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{g: g, ix: ix}
}

func roadHarness(t testing.TB, rows, cols int, seed int64) *harness {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return newHarness(t, g)
}

// randomObjects picks m distinct vertices as the object set.
func (h *harness) randomObjects(m int, rng *rand.Rand) *Objects {
	perm := rng.Perm(h.g.NumVertices())
	if m > len(perm) {
		m = len(perm)
	}
	vs := make([]graph.VertexID, m)
	for i := 0; i < m; i++ {
		vs[i] = graph.VertexID(perm[i])
	}
	return NewObjects(h.g, vs)
}

// truth returns the true ascending top-k object distances from q, and the
// exact distance of each object by id.
func (h *harness) truth(objs *Objects, q graph.VertexID, k int) (topK []float64, byID map[int32]float64) {
	tree := sssp.Dijkstra(h.g, q)
	byID = make(map[int32]float64, objs.Len())
	all := make([]float64, 0, objs.Len())
	for id := int32(0); id < int32(objs.Len()); id++ {
		d := tree.Dist[objs.ByID(id).Vertex]
		byID[id] = d
		all = append(all, d)
	}
	sort.Float64s(all)
	if k < len(all) {
		all = all[:k]
	}
	return all, byID
}

type algorithm struct {
	name   string
	sorted bool
	run    func(*harness, *Objects, graph.VertexID, int) Result
}

func allAlgorithms() []algorithm {
	algos := []algorithm{
		{"INE", true, func(h *harness, o *Objects, q graph.VertexID, k int) Result { return INE(h.ix, o, q, k) }},
		{"IER", true, func(h *harness, o *Objects, q graph.VertexID, k int) Result { return IER(h.ix, o, q, k) }},
	}
	for _, v := range Variants {
		v := v
		algos = append(algos, algorithm{
			name:   v.String(),
			sorted: v != VariantKNNM,
			run: func(h *harness, o *Objects, q graph.VertexID, k int) Result {
				return Search(h.ix, o, q, k, v)
			},
		})
	}
	return algos
}

const distTol = 1e-9

// checkResult validates a result against ground truth.
func checkResult(t *testing.T, h *harness, algo algorithm, res Result, objs *Objects,
	q graph.VertexID, k int, topK []float64, byID map[int32]float64) {
	t.Helper()
	wantLen := k
	if objs.Len() < k {
		wantLen = objs.Len()
	}
	if len(res.Neighbors) != wantLen {
		t.Fatalf("%s: returned %d neighbors, want %d", algo.name, len(res.Neighbors), wantLen)
	}
	// No duplicates; every reported interval contains the true distance.
	seen := make(map[int32]bool, len(res.Neighbors))
	trueDists := make([]float64, len(res.Neighbors))
	for i, nb := range res.Neighbors {
		if seen[nb.Object.ID] {
			t.Fatalf("%s: duplicate object %d", algo.name, nb.Object.ID)
		}
		seen[nb.Object.ID] = true
		d := byID[nb.Object.ID]
		trueDists[i] = d
		if nb.Interval.Lo > d+distTol || nb.Interval.Hi < d-distTol {
			t.Fatalf("%s: interval [%v,%v] misses true %v", algo.name, nb.Interval.Lo, nb.Interval.Hi, d)
		}
		if nb.Exact && math.Abs(nb.Dist-d) > distTol {
			t.Fatalf("%s: exact dist %v != true %v", algo.name, nb.Dist, d)
		}
	}
	// The multiset of true distances matches the true top-k.
	sorted := append([]float64(nil), trueDists...)
	sort.Float64s(sorted)
	for i := range sorted {
		if math.Abs(sorted[i]-topK[i]) > distTol {
			t.Fatalf("%s: rank %d true dist %v, brute force %v (q=%d k=%d)",
				algo.name, i, sorted[i], topK[i], q, k)
		}
	}
	// Sorted algorithms must emit in true ascending order.
	if algo.sorted != res.Sorted {
		t.Fatalf("%s: Sorted flag %v want %v", algo.name, res.Sorted, algo.sorted)
	}
	if res.Sorted {
		for i := 1; i < len(trueDists); i++ {
			if trueDists[i] < trueDists[i-1]-distTol {
				t.Fatalf("%s: order violated at %d: %v after %v", algo.name, i, trueDists[i], trueDists[i-1])
			}
		}
	}
}

func TestAllAlgorithmsMatchBruteForce(t *testing.T) {
	algos := allAlgorithms()
	configs := []struct {
		rows, cols int
		seed       int64
	}{
		{8, 8, 1},
		{10, 10, 2},
		{6, 12, 3},
	}
	for _, cfg := range configs {
		h := roadHarness(t, cfg.rows, cfg.cols, cfg.seed)
		rng := rand.New(rand.NewSource(cfg.seed * 97))
		for trial := 0; trial < 12; trial++ {
			m := rng.Intn(h.g.NumVertices()-1) + 1
			objs := h.randomObjects(m, rng)
			q := graph.VertexID(rng.Intn(h.g.NumVertices()))
			k := []int{1, 3, 10, m, m + 5}[rng.Intn(5)]
			topK, byID := h.truth(objs, q, k)
			for _, algo := range algos {
				res := algo.run(h, objs, q, k)
				checkResult(t, h, algo, res, objs, q, k, topK, byID)
			}
		}
	}
}

func TestAlgorithmsOnRandomTopology(t *testing.T) {
	// kNN-M is excluded from the exact check here: its KMINDIST shortcut is
	// the paper's heuristic and is only exact on path-coherent networks
	// (see TestKNNMBoundedErrorOnAdversarialTopology for its guarantee).
	algos := allAlgorithms()
	for seed := int64(0); seed < 3; seed++ {
		g, err := graph.GenerateRandomConnected(70, 60, 0.4, seed)
		if err != nil {
			t.Fatal(err)
		}
		h := newHarness(t, g)
		rng := rand.New(rand.NewSource(seed + 500))
		for trial := 0; trial < 8; trial++ {
			objs := h.randomObjects(rng.Intn(40)+2, rng)
			q := graph.VertexID(rng.Intn(g.NumVertices()))
			k := rng.Intn(8) + 1
			topK, byID := h.truth(objs, q, k)
			for _, algo := range algos {
				if algo.name == VariantKNNM.String() {
					continue
				}
				res := algo.run(h, objs, q, k)
				checkResult(t, h, algo, res, objs, q, k, topK, byID)
			}
		}
	}
}

func TestKNNMBoundedErrorOnAdversarialTopology(t *testing.T) {
	// On arbitrary topologies kNN-M still guarantees: exactly min(k,|S|)
	// distinct objects, every reported interval containing its true
	// distance, and every returned object's true distance at most D⁰k (the
	// first-k upper-bound estimate, itself >= the true kth distance).
	for seed := int64(0); seed < 4; seed++ {
		g, err := graph.GenerateRandomConnected(70, 60, 0.4, seed)
		if err != nil {
			t.Fatal(err)
		}
		h := newHarness(t, g)
		rng := rand.New(rand.NewSource(seed + 900))
		for trial := 0; trial < 10; trial++ {
			objs := h.randomObjects(rng.Intn(40)+2, rng)
			q := graph.VertexID(rng.Intn(g.NumVertices()))
			k := rng.Intn(8) + 1
			_, byID := h.truth(objs, q, k)
			res := Search(h.ix, objs, q, k, VariantKNNM)
			want := k
			if objs.Len() < k {
				want = objs.Len()
			}
			if len(res.Neighbors) != want {
				t.Fatalf("seed %d: %d neighbors want %d", seed, len(res.Neighbors), want)
			}
			bound := res.Stats.D0k
			if bound == 0 {
				bound = inf // estimate never formed (|S| < k)
			}
			seen := map[int32]bool{}
			for _, nb := range res.Neighbors {
				if seen[nb.Object.ID] {
					t.Fatalf("duplicate object %d", nb.Object.ID)
				}
				seen[nb.Object.ID] = true
				d := byID[nb.Object.ID]
				if nb.Interval.Lo > d+distTol || nb.Interval.Hi < d-distTol {
					t.Fatalf("interval [%v,%v] misses true %v", nb.Interval.Lo, nb.Interval.Hi, d)
				}
				if d > bound+distTol {
					t.Fatalf("returned object at %v beyond D0k %v", d, bound)
				}
			}
		}
	}
}

func TestQueryVertexHostsObject(t *testing.T) {
	h := roadHarness(t, 8, 8, 4)
	rng := rand.New(rand.NewSource(7))
	objs := h.randomObjects(20, rng)
	// Query from the vertex of object 0: it must come back first at distance 0.
	q := objs.ByID(0).Vertex
	for _, algo := range allAlgorithms() {
		res := algo.run(h, objs, q, 5)
		if len(res.Neighbors) != 5 {
			t.Fatalf("%s: %d results", algo.name, len(res.Neighbors))
		}
		found := false
		for _, nb := range res.Neighbors {
			if nb.Object.Vertex == q && nb.Dist < distTol {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: object at query vertex missing from result", algo.name)
		}
	}
}

func TestKZeroAndEmptySet(t *testing.T) {
	h := roadHarness(t, 6, 6, 5)
	rng := rand.New(rand.NewSource(11))
	objs := h.randomObjects(10, rng)
	empty := NewObjects(h.g, nil)
	for _, algo := range allAlgorithms() {
		if res := algo.run(h, objs, 0, 0); len(res.Neighbors) != 0 {
			t.Fatalf("%s: k=0 returned %d", algo.name, len(res.Neighbors))
		}
		if res := algo.run(h, empty, 0, 3); len(res.Neighbors) != 0 {
			t.Fatalf("%s: empty set returned %d", algo.name, len(res.Neighbors))
		}
	}
}

func TestDuplicateObjectVertices(t *testing.T) {
	// Multiple objects on the same vertex must all be reportable.
	h := roadHarness(t, 6, 6, 6)
	v := graph.VertexID(3)
	objs := NewObjects(h.g, []graph.VertexID{v, v, v, 10, 20})
	topK, byID := h.truth(objs, v, 4)
	for _, algo := range allAlgorithms() {
		res := algo.run(h, objs, v, 4)
		checkResult(t, h, algo, res, objs, v, 4, topK, byID)
	}
}

func TestBrowserStreamsInOrder(t *testing.T) {
	h := roadHarness(t, 9, 9, 7)
	rng := rand.New(rand.NewSource(13))
	objs := h.randomObjects(30, rng)
	q := graph.VertexID(rng.Intn(h.g.NumVertices()))
	_, byID := h.truth(objs, q, objs.Len())

	b := NewBrowser(h.ix, objs, q)
	var dists []float64
	for {
		nb, ok := b.Next()
		if !ok {
			break
		}
		dists = append(dists, byID[nb.Object.ID])
	}
	if len(dists) != objs.Len() {
		t.Fatalf("browser yielded %d of %d", len(dists), objs.Len())
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1]-distTol {
			t.Fatalf("browser order violated at %d", i)
		}
	}
	if b.Stats().Lookups == 0 {
		t.Fatal("browser stats empty")
	}
}

func TestBrowserIncrementalityCheaperThanRestart(t *testing.T) {
	h := roadHarness(t, 9, 9, 8)
	rng := rand.New(rand.NewSource(17))
	objs := h.randomObjects(60, rng)
	q := graph.VertexID(rng.Intn(h.g.NumVertices()))

	b := NewBrowser(h.ix, objs, q)
	for i := 0; i < 5; i++ {
		b.Next()
	}
	after5 := b.Stats().Refinements
	for i := 0; i < 5; i++ {
		b.Next()
	}
	after10 := b.Stats().Refinements
	fresh := Search(h.ix, objs, q, 10, VariantINN).Stats.Refinements
	// Browsing to 10 must not exceed a fresh k=10 search (same state machine).
	if after10 > fresh {
		t.Fatalf("incremental refinements %d > fresh %d", after10, fresh)
	}
	if after5 > after10 {
		t.Fatal("refinement counter went backwards")
	}
}

func TestStatsPopulated(t *testing.T) {
	h := roadHarness(t, 10, 10, 9)
	rng := rand.New(rand.NewSource(19))
	objs := h.randomObjects(40, rng)
	q := graph.VertexID(rng.Intn(h.g.NumVertices()))
	k := 8

	for _, v := range Variants {
		res := Search(h.ix, objs, q, k, v)
		s := res.Stats
		if s.Algorithm != v.String() || s.K != k {
			t.Fatalf("%v: bad labels %+v", v, s)
		}
		if s.MaxQueue == 0 || s.Lookups == 0 {
			t.Fatalf("%v: queue/lookup stats empty: %+v", v, s)
		}
		if s.DkFinal <= 0 {
			t.Fatalf("%v: DkFinal = %v", v, s.DkFinal)
		}
		switch v {
		case VariantINN:
			if s.LOps != 0 || s.MaxL != 0 {
				t.Fatalf("INN must not touch L: %+v", s)
			}
		case VariantKNN, VariantKNNM:
			if s.MaxL != k || s.LOps == 0 {
				t.Fatalf("%v: L stats wrong: MaxL=%d LOps=%d", v, s.MaxL, s.LOps)
			}
			if s.D0k <= 0 || s.KMinDist0 < 0 {
				t.Fatalf("%v: estimate stats missing: %+v", v, s)
			}
		case VariantKNNI:
			if s.D0k <= 0 {
				t.Fatalf("KNN-I: D0k missing")
			}
		}
	}

	ine := INE(h.ix, objs, q, k)
	if ine.Stats.Settled == 0 || ine.Stats.Relaxed == 0 {
		t.Fatalf("INE expansion stats empty: %+v", ine.Stats)
	}
	ier := IER(h.ix, objs, q, k)
	if ier.Stats.AStarCalls < k {
		t.Fatalf("IER must run at least k shortest-path calls: %+v", ier.Stats)
	}
}

func TestD0kOverestimatesAndKMinDistUnderestimatesDk(t *testing.T) {
	// The paper's estimate-quality relationships (fig p.37): D0k >= Dk-true
	// and KMINDIST <= D0k. Averages over queries: D0k modestly above the
	// true Dk.
	h := roadHarness(t, 12, 12, 10)
	rng := rand.New(rand.NewSource(23))
	violations := 0
	trials := 40
	for trial := 0; trial < trials; trial++ {
		objs := h.randomObjects(50, rng)
		q := graph.VertexID(rng.Intn(h.g.NumVertices()))
		k := 10
		topK, _ := h.truth(objs, q, k)
		trueDk := topK[len(topK)-1]
		res := Search(h.ix, objs, q, k, VariantKNN)
		s := res.Stats
		if s.D0k < trueDk-distTol {
			violations++ // D0k must upper-bound the true kth distance
		}
		if s.KMinDist0 > s.D0k+distTol {
			t.Fatalf("KMinDist0 %v > D0k %v", s.KMinDist0, s.D0k)
		}
	}
	if violations > 0 {
		t.Fatalf("D0k under-estimated the true Dk in %d/%d trials", violations, trials)
	}
}

func TestINEStopsEarly(t *testing.T) {
	// With a dense object set, INE must settle far fewer vertices than the
	// whole network.
	h := roadHarness(t, 16, 16, 11)
	rng := rand.New(rand.NewSource(29))
	objs := h.randomObjects(h.g.NumVertices()/4, rng)
	res := INE(h.ix, objs, graph.VertexID(rng.Intn(h.g.NumVertices())), 3)
	if res.Stats.Settled >= h.g.NumVertices()/2 {
		t.Fatalf("INE settled %d of %d vertices", res.Stats.Settled, h.g.NumVertices())
	}
}

func TestIOStatsWithDiskResidentIndex(t *testing.T) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 10, Cols: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(g, core.BuildOptions{DiskResident: true, CacheFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{g: g, ix: ix}
	rng := rand.New(rand.NewSource(31))
	objs := h.randomObjects(30, rng)
	q := graph.VertexID(rng.Intn(g.NumVertices()))

	for _, algo := range allAlgorithms() {
		res := algo.run(h, objs, q, 5)
		if res.Stats.IO.Accesses() == 0 {
			t.Fatalf("%s: no IO recorded on disk-resident index", algo.name)
		}
		if res.Stats.IOTime < 0 || res.Stats.CPU <= 0 {
			t.Fatalf("%s: bad times %+v", algo.name, res.Stats)
		}
	}
}

func TestKNNMAcceptsViaKMinDist(t *testing.T) {
	// On dense object sets, kNN-M should accept a good share of its results
	// directly against KMINDIST (the paper reports up to 80-90%).
	h := roadHarness(t, 14, 14, 13)
	rng := rand.New(rand.NewSource(37))
	totalAccepts, totalResults := 0, 0
	for trial := 0; trial < 20; trial++ {
		objs := h.randomObjects(h.g.NumVertices()/10, rng)
		q := graph.VertexID(rng.Intn(h.g.NumVertices()))
		res := Search(h.ix, objs, q, 10, VariantKNNM)
		totalAccepts += res.Stats.KMinDistAccepts
		totalResults += len(res.Neighbors)
	}
	if totalAccepts == 0 {
		t.Fatal("kNN-M never accepted via KMINDIST")
	}
	if totalAccepts > totalResults {
		t.Fatalf("accepts %d exceed results %d", totalAccepts, totalResults)
	}
}

func TestKNNMRefinesLessThanKNN(t *testing.T) {
	h := roadHarness(t, 14, 14, 14)
	rng := rand.New(rand.NewSource(41))
	knnRef, knnmRef := 0, 0
	for trial := 0; trial < 20; trial++ {
		objs := h.randomObjects(h.g.NumVertices()/10, rng)
		q := graph.VertexID(rng.Intn(h.g.NumVertices()))
		knnRef += Search(h.ix, objs, q, 10, VariantKNN).Stats.Refinements
		knnmRef += Search(h.ix, objs, q, 10, VariantKNNM).Stats.Refinements
	}
	if knnmRef >= knnRef {
		t.Fatalf("kNN-M refinements %d not below kNN %d", knnmRef, knnRef)
	}
}

func TestKNNQueueSmallerThanINN(t *testing.T) {
	h := roadHarness(t, 14, 14, 15)
	rng := rand.New(rand.NewSource(43))
	knnQ, innQ := 0, 0
	for trial := 0; trial < 20; trial++ {
		objs := h.randomObjects(h.g.NumVertices()/10, rng)
		q := graph.VertexID(rng.Intn(h.g.NumVertices()))
		knnQ += Search(h.ix, objs, q, 10, VariantKNN).Stats.MaxQueue
		innQ += Search(h.ix, objs, q, 10, VariantINN).Stats.MaxQueue
	}
	if knnQ >= innQ {
		t.Fatalf("kNN max queue %d not below INN %d (Dk pruning ineffective)", knnQ, innQ)
	}
}
