package knn

import (
	"cmp"
	"math"
	"slices"
	"time"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/pmr"
	"silc/internal/pqueue"
)

// Variant selects one member of the SILC best-first kNN family.
type Variant int

const (
	// VariantKNN is the paper's non-incremental best-first algorithm: a
	// queue Q of blocks and objects ordered by interval lower bound δ⁻, a
	// result list L of the k best upper bounds δ⁺ defining the pruning
	// distance Dk, interval-collision tests against the top of Q, and
	// on-demand refinement.
	VariantKNN Variant = iota
	// VariantINN is the incremental variant: no L, no Dk pruning; neighbors
	// stream out in distance order as their intervals separate.
	VariantINN
	// VariantKNNI estimates D⁰k from the upper bounds of the first k
	// objects discovered and uses that static bound to filter every later
	// enqueue, avoiding further manipulation of L.
	VariantKNNI
	// VariantKNNM additionally accepts an object outright when its upper
	// bound drops below KMINDIST, the lower bound of the object currently
	// defining Dk — skipping the refinements that only establish a total
	// order. Its output is therefore unsorted.
	//
	// The KMINDIST shortcut is the paper's heuristic: it treats the Dk
	// object's lower bound as a lower bound on the true kth-neighbor
	// distance, which holds when intervals are tight and path-coherent (the
	// paper's road networks) but can over-accept a boundary object on
	// adversarial topologies with wildly uneven interval widths. The
	// guarantee kNN-M always provides: k objects, each with true distance
	// at most D⁰k, the first-k upper-bound estimate.
	VariantKNNM
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantKNN:
		return "KNN"
	case VariantINN:
		return "INN"
	case VariantKNNI:
		return "KNN-I"
	case VariantKNNM:
		return "KNN-M"
	default:
		return "unknown"
	}
}

// Variants lists the family in the paper's order.
var Variants = []Variant{VariantINN, VariantKNNI, VariantKNN, VariantKNNM}

// Search runs the selected kNN variant from query vertex q with the exact,
// unbounded, uncancellable defaults.
func Search(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int, variant Variant) Result {
	return SearchSpec(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, variant))
}

// SearchSpec runs the best-first kNN family under a caller-supplied query
// context (cancellation + I/O attribution) and Spec (ε-approximation,
// distance bound). All search scratch lives on the query context and is
// reused by its next query, so a pooled context answers steady-state queries
// without allocating; the returned Result owns its Neighbors slice.
func SearchSpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) Result {
	clock := beginQueryWith(ix, qc)
	e := scratchFor(clock.qc).engineFor(ix, clock.qc, objs, q, spec.K, spec.Variant)
	e.eps = spec.Epsilon
	e.maxDist = spec.MaxDist
	e.measurePQ = spec.MeasurePQ
	e.run()
	res := e.result()
	clock.finish(&res.Stats)
	return res
}

type qelem struct {
	node *pmr.Node // non-nil: an object-index block
	obj  int32     // object id when node == nil
	seq  uint32    // object freshness stamp (lazy deletion)
}

// objState is the per-object refinement state of one query, stored by value
// in the scratch arena's dense id-indexed table. Entries are stamped with the
// arena's query epoch at discovery; between queries nothing is cleared — a
// stale entry is simply overwritten whole when its object is rediscovered,
// and ids are only ever read back after discovery within the same query.
type objState struct {
	refiner  core.DistanceRefiner
	iv       core.Interval
	id       int32
	seq      uint32
	epoch    uint32
	inL      bool
	reported bool
	lh       pqueue.Handle[int32]
}

// engine holds all mutable state of one query: the queues, the per-object
// refinement scratch, and the query context its I/O is charged to. Engines
// never share state, so any number may run concurrently over one Index.
// An engine frame is embedded in a scratch arena and recycled between
// queries; engineFor re-arms it.
type engine struct {
	ix      core.QueryIndex
	qc      *core.QueryContext
	objs    *Objects
	q       graph.VertexID
	k       int
	variant Variant

	queue   pqueue.Min[qelem]
	l       pqueue.Indexed[int32]
	states  []objState
	epoch   uint32
	results []Neighbor
	// drainIDs/drainRest are drainL's reusable buffers.
	drainIDs  []int32
	drainRest []*objState
	stats     Stats

	d0k      float64 // static bound for kNN-I/kNN-M enqueue filtering
	d0kFixed bool
	frozen   bool // kNN-I: stop maintaining L once D0k is fixed
	// measurePQ enables the PQTime wall-clock instrumentation around L
	// operations (the paper's KNN-PQ cost split). Off by default: the
	// time.Now pairs cost ~20% of a warm in-memory query.
	measurePQ bool
	pqClock   time.Duration

	// eps relaxes rank certification: report once δ⁺ ≤ (1+eps)·δ⁻.
	eps float64
	// maxDist excludes objects farther than this bound (+Inf = unbounded).
	maxDist float64
	// err records mid-search cancellation; the loop stops and the partial
	// results stand.
	err error
}

// scratch is the reusable query arena: one engine frame plus its buffers,
// and the graph-expansion workspace of the INE/IER baselines. It rides on
// core.QueryContext.Scratch, so a pooled context carries its warmed-up arena
// from query to query and steady-state searches allocate nothing. A scratch
// serves one query at a time; concurrent queries get their own contexts and
// therefore their own arenas.
type scratch struct {
	eng engine
	// ws is the Dijkstra/A* workspace of the graph-expansion baselines;
	// epoch-stamped so IER resets it per candidate in O(1).
	ws dijkstraWS
	// best accumulates the k best neighbors for INE/IER; drainNb is the
	// reusable drain buffer behind their result sorting.
	best    pqueue.Indexed[Neighbor]
	drainNb []Neighbor
}

// scratchFor returns qc's arena, creating and attaching one on first use.
func scratchFor(qc *core.QueryContext) *scratch {
	if sc, ok := qc.Scratch.(*scratch); ok {
		return sc
	}
	sc := new(scratch)
	qc.Scratch = sc
	return sc
}

// engineFor re-arms the embedded engine frame for one query, reusing every
// buffer the previous query grew. The object-state table is epoch-stamped
// rather than cleared: O(1) per query instead of O(|S|).
func (sc *scratch) engineFor(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, k int, variant Variant) *engine {
	e := &sc.eng
	e.ix, e.qc, e.objs, e.q, e.k, e.variant = ix, qc, objs, q, k, variant
	e.queue.Reset()
	e.l.InitMax()
	n := objs.Len()
	if cap(e.states) < n {
		e.states = make([]objState, n)
	} else {
		e.states = e.states[:n]
	}
	e.epoch++
	if e.epoch == 0 {
		// uint32 wrap: clear stale stamps so none collide with the new epoch.
		clear(e.states)
		e.epoch = 1
	}
	e.results = e.results[:0]
	e.drainIDs = e.drainIDs[:0]
	clear(e.drainRest) // drop stale *objState so old tables aren't pinned
	e.drainRest = e.drainRest[:0]
	e.stats = Stats{Algorithm: variant.String(), K: k}
	e.d0k, e.d0kFixed, e.frozen = inf, false, false
	e.measurePQ, e.pqClock = false, 0
	e.eps, e.maxDist = 0, inf
	e.err = nil
	if k > 0 && n > 0 {
		e.queue.Push(0, qelem{node: objs.Tree().Root()})
		e.noteQueue()
	}
	return e
}

// dk is the evolving pruning distance: the kth-smallest interval upper
// bound, +Inf until L holds k objects.
func (e *engine) dk() float64 {
	if e.l.Len() == e.k {
		return e.l.TopKey()
	}
	return inf
}

// admit reports whether an element with interval lower bound lo can still
// contribute to the result. kNN and kNN-M prune strictly against the
// evolving Dk (boundary cases are completed from L by drainL); kNN-I admits
// up to its static D⁰k inclusively, because after freezing there is no L to
// fall back on and D⁰k itself is attainable by a legitimate kth neighbor.
// A finite maxDist additionally excludes anything provably beyond the bound.
func (e *engine) admit(lo float64) bool {
	if lo > e.maxDist {
		return false
	}
	switch e.variant {
	case VariantKNN, VariantKNNM:
		return lo < e.dk()
	case VariantKNNI:
		return lo <= e.d0k
	default:
		return true
	}
}

// halted reports whether popping a fresh element with the given key proves
// the search complete: the queue is min-ordered, so every remaining element
// is at least this far.
func (e *engine) halted(key float64) bool {
	if key > e.maxDist {
		return true
	}
	switch e.variant {
	case VariantKNN, VariantKNNM:
		return key >= e.dk()
	case VariantKNNI:
		return key > e.d0k
	default:
		return false
	}
}

// noteQueue is called once after every queue push: it tracks the
// high-water mark and counts the push into the query's trace span.
func (e *engine) noteQueue() {
	e.qc.Span.HeapPushes++
	if n := e.queue.Len(); n > e.stats.MaxQueue {
		e.stats.MaxQueue = n
	}
}

func (e *engine) run() {
	for len(e.results) < e.k {
		if !e.step() {
			break
		}
	}
	if e.err == nil && len(e.results) < e.k && (e.variant == VariantKNN || e.variant == VariantKNNM) {
		e.drainL()
	}
	e.stats.PQTime = e.pqClock
	if n := len(e.results); n > 0 {
		e.stats.DkFinal = e.results[n-1].Dist
		if e.variant == VariantKNNM {
			// Unsorted output: take the max.
			for _, nb := range e.results {
				if nb.Dist > e.stats.DkFinal {
					e.stats.DkFinal = nb.Dist
				}
			}
		}
	}
}

// step processes one queue element. It returns false when the search is
// finished (queue exhausted, pruning proves completeness, or the query's
// context was cancelled — checked here so cancellation takes effect within
// one refinement step).
func (e *engine) step() bool {
	if e.err != nil {
		return false
	}
	if err := e.qc.Err(); err != nil {
		e.err = err
		return false
	}
	if e.queue.Len() == 0 {
		return false
	}
	key, el := e.queue.Pop()

	if el.node != nil {
		if e.halted(key) {
			// Nothing better remains; kNN and kNN-M complete from L.
			return false
		}
		e.expand(el.node)
		return true
	}

	st := &e.states[el.obj]
	if st.reported || el.seq != st.seq {
		return true // stale entry
	}
	if e.halted(key) {
		return false
	}

	// Out-of-range objects (proximity-bounded indexes) carry the interval
	// [radius, +Inf) and cannot be ranked; they are never reported.
	if st.refiner.OutOfRange() {
		st.reported = true // drop without emitting
		return true
	}

	// kNN-M: accept directly against KMINDIST, the lower bound of the
	// object defining Dk; its distance certifies membership in the top k
	// without refining p any further (paper p.36).
	if e.variant == VariantKNNM && e.l.Len() == e.k {
		kmin := e.states[topOf(&e.l)].iv.Lo
		if st.iv.Hi <= kmin && st.iv.Hi <= e.maxDist &&
			(e.eps == 0 || st.iv.Hi <= (1+e.eps)*st.iv.Lo) {
			e.stats.KMinDistAccepts++
			e.report(st)
			return true
		}
	}

	// Rank certification against the new top of Q. Block tops carry the
	// interval [key, +Inf); object tops' lower bound is their key; in both
	// cases the intervals intersect iff top's key <= p's upper bound. With
	// ε > 0 a self-certified interval (δ⁺ ≤ (1+ε)·δ⁻) also suffices: every
	// remaining element has true distance ≥ δ⁻, so p's true distance is
	// within (1+ε)× of the true distance at this rank.
	selfCert := st.iv.Hi <= (1+e.eps)*st.iv.Lo
	rankCert := st.refiner.Done() || e.queue.Len() == 0 ||
		st.iv.Hi < e.queue.PeekKey() || selfCert
	// Distance certification: ε = 0 reports the classic loose-interval
	// lower bound (exact ranking is the contract, not exact distances); an
	// ε > 0 query additionally promises every reported distance within
	// (1+ε)× of true, so a separation-certified object keeps refining
	// until its own interval certifies that bound too.
	distCert := e.eps == 0 || selfCert || st.refiner.Done()
	if rankCert && distCert {
		if st.iv.Hi <= e.maxDist {
			e.report(st)
			return true
		}
		if st.refiner.Done() || st.refiner.OutOfRange() {
			st.reported = true // exact but beyond the distance bound: drop
			return true
		}
		// The interval straddles maxDist: membership is undecided, so fall
		// through and refine even though the rank is already certified.
	}

	// Collision: refine one step and reinsert.
	st.refiner.Step()
	e.stats.Refinements++
	st.iv = st.refiner.Interval()
	st.seq++
	e.updateL(st)
	if e.admit(st.iv.Lo) {
		e.queue.Push(st.iv.Lo, qelem{obj: st.id, seq: st.seq})
		e.noteQueue()
	}
	return true
}

// expand processes one object-hierarchy node — the filter phase of the
// search, as opposed to the interval-refinement phase step drives. Its
// wall clock is only taken when the span opted in (Timed): time.Now
// pairs cost real time against a warm in-memory query, the same
// trade-off MeasurePQ makes.
func (e *engine) expand(n *pmr.Node) {
	if e.qc.Span.Timed {
		start := time.Now()
		defer func() { e.qc.Span.FilterNanos += time.Since(start).Nanoseconds() }()
	}
	if n.IsLeaf() {
		for _, o := range n.Objects() {
			e.discover(o)
		}
		return
	}
	for _, c := range n.Children() {
		if c == nil {
			continue
		}
		lb := e.ix.RegionLowerBoundCtx(e.qc, e.q, c.Rect())
		if e.admit(lb) {
			e.queue.Push(lb, qelem{node: c})
			e.noteQueue()
		}
	}
}

func (e *engine) discover(o pmr.Object) {
	st := &e.states[o.ID]
	*st = objState{id: o.ID, refiner: e.ix.Refine(e.qc, e.q, o.Vertex), epoch: e.epoch}
	st.iv = st.refiner.Interval()
	e.stats.Lookups++
	e.qc.Span.Lookups++
	e.maybeInsertL(st)
	if e.admit(st.iv.Lo) {
		e.queue.Push(st.iv.Lo, qelem{obj: o.ID, seq: st.seq})
		e.noteQueue()
	}
}

// maintainsL reports whether the variant manipulates L at this moment.
func (e *engine) maintainsL() bool {
	switch e.variant {
	case VariantKNN, VariantKNNM:
		return true
	case VariantKNNI:
		return !e.frozen
	default:
		return false
	}
}

func (e *engine) maybeInsertL(st *objState) {
	if !e.maintainsL() || st.inL || st.refiner.OutOfRange() {
		return
	}
	var start time.Time
	if e.measurePQ {
		start = time.Now()
	}
	if e.l.Len() < e.k {
		st.lh = e.l.Push(st.iv.Hi, st.id)
		st.inL = true
		e.stats.LOps++
	} else if st.iv.Hi < e.l.TopKey() {
		evicted := topOf(&e.l)
		e.l.Pop()
		e.states[evicted].inL = false
		st.lh = e.l.Push(st.iv.Hi, st.id)
		st.inL = true
		e.stats.LOps += 2
	}
	if e.measurePQ {
		e.pqClock += time.Since(start)
	}
	if n := e.l.Len(); n > e.stats.MaxL {
		e.stats.MaxL = n
	}
	if e.l.Len() == e.k && !e.d0kFixed {
		// The first-k estimate the paper calls D⁰k, and the lower bound of
		// the object defining it (KMINDIST at estimation time).
		e.d0kFixed = true
		e.d0k = e.l.TopKey()
		e.stats.D0k = e.d0k
		e.stats.KMinDist0 = e.states[topOf(&e.l)].iv.Lo
		if e.variant == VariantKNNI {
			e.frozen = true
		}
	}
}

func (e *engine) updateL(st *objState) {
	if !e.maintainsL() {
		return
	}
	if st.inL {
		if e.measurePQ {
			start := time.Now()
			e.l.Update(st.lh, st.iv.Hi)
			e.pqClock += time.Since(start)
		} else {
			e.l.Update(st.lh, st.iv.Hi)
		}
		e.stats.LOps++
		return
	}
	e.maybeInsertL(st)
}

func (e *engine) report(st *objState) {
	st.reported = true
	exact := st.refiner.Done() || st.iv.Exact()
	e.results = append(e.results, Neighbor{
		Object:   e.objs.resultAt(st.id),
		Interval: st.iv,
		Dist:     st.iv.Lo,
		Exact:    exact,
	})
}

// drainL emits the unreported members of L in upper-bound order. When the
// plain exact search halts on the Dk bound, every unreported member of L
// provably holds a point interval (δ⁻ >= Dk >= δ⁺), so this order is exact.
// Under a finite maxDist or an ε > 0 distance promise that proof does not
// apply: the members are refined here until their intervals certify both,
// and filtered against the bound.
func (e *engine) drainL() {
	if e.l.Len() == 0 {
		return
	}
	e.drainIDs = e.l.AppendItems(e.drainIDs[:0])
	rest := e.drainRest[:0]
	for _, id := range e.drainIDs {
		if st := &e.states[id]; !st.reported {
			rest = append(rest, st)
		}
	}
	e.drainRest = rest
	if !math.IsInf(e.maxDist, 1) || e.eps > 0 {
		kept := rest[:0]
		for _, st := range rest {
			for !st.refiner.Done() && !st.refiner.OutOfRange() &&
				!(st.iv.Hi <= e.maxDist && st.iv.Hi <= (1+e.eps)*st.iv.Lo) {
				if err := e.qc.Err(); err != nil {
					// Cancelled mid-drain: reporting the still-uncertified
					// members would break the maxDist/ε guarantees, so stop
					// here and surface the cancellation.
					e.err = err
					return
				}
				st.refiner.Step()
				e.stats.Refinements++
				st.iv = st.refiner.Interval()
			}
			if !st.refiner.OutOfRange() && st.iv.Lo <= e.maxDist {
				kept = append(kept, st)
			}
		}
		rest = kept
	}
	slices.SortFunc(rest, func(a, b *objState) int { return cmp.Compare(a.iv.Hi, b.iv.Hi) })
	for _, st := range rest {
		if len(e.results) >= e.k {
			break
		}
		e.report(st)
	}
}

// result snapshots the search outcome. Neighbors is copied out of the
// scratch arena so the Result stays valid after the arena serves its next
// query.
func (e *engine) result() Result {
	var ns []Neighbor
	if len(e.results) > 0 {
		ns = make([]Neighbor, len(e.results))
		copy(ns, e.results)
	}
	return Result{
		Neighbors: ns,
		Sorted:    e.variant != VariantKNNM,
		Stats:     e.stats,
		Err:       e.err,
	}
}

// topOf returns the object id at the root of L.
func topOf(l *pqueue.Indexed[int32]) int32 {
	_, id := l.Top()
	return id
}

// Browser is an incremental network-distance cursor over an object set: the
// INN algorithm exposed as an iterator ("distance browsing"). Each Next
// returns the next-nearest object; the cursor retains all search state so a
// k+1st neighbor costs only the incremental work.
type Browser struct {
	e  *engine
	at int
}

// NewBrowser positions a cursor before the nearest object to q. Each cursor
// owns its query context, so independent cursors — even over one shared
// DiskResident index — browse concurrently, each accounting its own I/O.
func NewBrowser(ix core.QueryIndex, objs *Objects, q graph.VertexID) *Browser {
	return NewBrowserSpec(ix, core.NewQueryContext(), objs, q, UnboundedSpec(0, VariantINN))
}

// NewBrowserSpec positions a cursor bound to a caller-supplied query context
// (cancellation + I/O attribution) and Spec: Epsilon relaxes per-neighbor
// rank certification, MaxDist ends the stream at the distance bound.
// Spec.K and Spec.Variant are ignored — a browser always streams the whole
// set incrementally (INN).
//
// The cursor owns qc's scratch arena for its whole lifetime: do not run
// another search on the same context while the cursor is live, and do not
// recycle the context until the cursor is dropped.
func NewBrowserSpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) *Browser {
	if qc == nil {
		qc = core.NewQueryContext()
	}
	e := scratchFor(qc).engineFor(ix, qc, objs, q, objs.Len(), VariantINN)
	e.eps = spec.Epsilon
	e.maxDist = spec.MaxDist
	e.measurePQ = spec.MeasurePQ
	return &Browser{e: e}
}

// Next returns the next neighbor in increasing network distance; ok is false
// when the set is exhausted, the distance bound is reached, or the cursor's
// context was cancelled (distinguish with Err).
func (b *Browser) Next() (Neighbor, bool) {
	for len(b.e.results) <= b.at {
		if !b.e.step() {
			return Neighbor{}, false
		}
	}
	n := b.e.results[b.at]
	b.at++
	return n, true
}

// Err reports the cancellation error that ended the browse, nil for a
// normally exhausted (or still live) cursor.
func (b *Browser) Err() error { return b.e.err }

// Query returns the cursor's query vertex.
func (b *Browser) Query() graph.VertexID { return b.e.q }

// Context returns the cursor's query context, so follow-up work on behalf
// of the same logical query (e.g. refining a reported neighbor to exact)
// can charge the same counters.
func (b *Browser) Context() *core.QueryContext { return b.e.qc }

// Stats returns the cursor's accumulated statistics, including the I/O
// traffic charged to its query context so far.
func (b *Browser) Stats() Stats {
	s := b.e.stats
	s.PQTime = b.e.pqClock
	s.IO = b.e.qc.IO
	s.IOTime = s.IO.ModeledIOTime(b.e.ix.Tracker().MissLatency())
	return s
}
