package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/sssp"
)

// TestProximalKNNReturnsInRangeNeighbors: on a proximity-bounded index the
// kNN family must return exactly the in-range portion of the true top-k, in
// the right order, and never an out-of-range object.
func TestProximalKNNReturnsInRangeNeighbors(t *testing.T) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 9, Cols: 9, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	radius := 0.3
	ix, err := core.Build(g, core.BuildOptions{ProximityRadius: radius})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{g: g, ix: ix}
	rng := rand.New(rand.NewSource(21))

	for trial := 0; trial < 25; trial++ {
		objs := h.randomObjects(rng.Intn(30)+5, rng)
		q := graph.VertexID(rng.Intn(g.NumVertices()))
		k := rng.Intn(8) + 1

		// Ground truth: in-range objects sorted by distance, capped at k.
		tree := sssp.Dijkstra(g, q)
		var want []float64
		for id := int32(0); id < int32(objs.Len()); id++ {
			if d := tree.Dist[objs.ByID(id).Vertex]; d <= radius {
				want = append(want, d)
			}
		}
		sort.Float64s(want)
		if len(want) > k {
			want = want[:k]
		}

		for _, v := range Variants {
			res := Search(h.ix, objs, q, k, v)
			if len(res.Neighbors) != len(want) {
				t.Fatalf("%v: got %d in-range neighbors, want %d (trial %d)",
					v, len(res.Neighbors), len(want), trial)
			}
			got := make([]float64, len(res.Neighbors))
			for i, nb := range res.Neighbors {
				got[i] = tree.Dist[nb.Object.Vertex]
				if got[i] > radius+distTol {
					t.Fatalf("%v: returned out-of-range object at %v", v, got[i])
				}
			}
			if !res.Sorted {
				sort.Float64s(got)
			}
			for i := range got {
				if math.Abs(got[i]-want[i]) > distTol {
					t.Fatalf("%v: rank %d dist %v want %v", v, i, got[i], want[i])
				}
			}
		}

		// Range search bounded by a radius below the index bound.
		r := radius * rng.Float64()
		res := RangeSearch(h.ix, objs, q, r)
		wantCount := 0
		for id := int32(0); id < int32(objs.Len()); id++ {
			if tree.Dist[objs.ByID(id).Vertex] <= r {
				wantCount++
			}
		}
		if len(res.Neighbors) != wantCount {
			t.Fatalf("range %v: got %d want %d", r, len(res.Neighbors), wantCount)
		}
	}
}

func TestProximalBrowserStopsAtRadius(t *testing.T) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 8, Cols: 8, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	radius := 0.25
	ix, err := core.Build(g, core.BuildOptions{ProximityRadius: radius})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{g: g, ix: ix}
	rng := rand.New(rand.NewSource(23))
	objs := h.randomObjects(25, rng)
	q := graph.VertexID(rng.Intn(g.NumVertices()))
	tree := sssp.Dijkstra(g, q)

	b := NewBrowser(h.ix, objs, q)
	count := 0
	for {
		nb, ok := b.Next()
		if !ok {
			break
		}
		if tree.Dist[nb.Object.Vertex] > radius+distTol {
			t.Fatal("browser emitted an out-of-range object")
		}
		count++
	}
	wantCount := 0
	for id := int32(0); id < int32(objs.Len()); id++ {
		if tree.Dist[objs.ByID(id).Vertex] <= radius {
			wantCount++
		}
	}
	if count != wantCount {
		t.Fatalf("browser yielded %d, want %d in-range objects", count, wantCount)
	}
}
