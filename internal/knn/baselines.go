package knn

import (
	"cmp"
	"slices"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/pqueue"
)

// dijkstraWS is the reusable workspace of one graph expansion: tentative
// distances, discovery/settlement marks, and the frontier heap. The marks
// are epoch-stamped, so arming the workspace for a new expansion is O(1) —
// which is what lets IER run one point-to-point search per candidate without
// an O(n) clear (let alone an O(n) allocation) per call.
type dijkstraWS struct {
	dist     []float64
	seen     []uint32 // dist[v] is valid iff seen[v] == epoch
	done     []uint32 // v is settled iff done[v] == epoch
	epoch    uint32
	frontier pqueue.Min[graph.VertexID]
}

// reset arms the workspace for one expansion over n vertices.
func (w *dijkstraWS) reset(n int) {
	if cap(w.dist) < n {
		w.dist = make([]float64, n)
		w.seen = make([]uint32, n)
		w.done = make([]uint32, n)
	} else {
		w.dist = w.dist[:n]
		w.seen = w.seen[:n]
		w.done = w.done[:n]
	}
	w.epoch++
	if w.epoch == 0 { // uint32 wrap: clear stale stamps
		clear(w.seen)
		clear(w.done)
		w.epoch = 1
	}
	w.frontier.Reset()
}

// distOf returns v's tentative distance, +Inf when undiscovered.
func (w *dijkstraWS) distOf(v graph.VertexID) float64 {
	if w.seen[v] == w.epoch {
		return w.dist[v]
	}
	return inf
}

func (w *dijkstraWS) setDist(v graph.VertexID, d float64) {
	w.dist[v] = d
	w.seen[v] = w.epoch
}

func (w *dijkstraWS) settled(v graph.VertexID) bool { return w.done[v] == w.epoch }
func (w *dijkstraWS) settle(v graph.VertexID)       { w.done[v] = w.epoch }

// INE is the "incremental network expansion" baseline of Papadias et al.:
// Dijkstra from the query vertex over the disk-resident network, collecting
// objects at settled vertices into a buffer of the k best, halting once the
// expansion frontier passes the kth-best distance. Its cost scales with the
// number of edges closer than the kth neighbor.
func INE(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int) Result {
	return INESpec(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, VariantKNN))
}

// INESpec is INE under a caller-supplied query context (cancellation + I/O
// attribution) and Spec. The expansion truncates at Spec.MaxDist; Epsilon is
// ignored (the baseline is exact, which satisfies every ε).
func INESpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) Result {
	clock := beginQueryWith(ix, qc)
	sc := scratchFor(clock.qc)
	k := spec.K
	maxDist := spec.MaxDist
	g := ix.Network()
	tracker := ix.Tracker()
	stats := Stats{Algorithm: "INE", K: k}
	var cancelErr error

	n := g.NumVertices()
	ws := &sc.ws
	ws.reset(n)
	best := &sc.best
	best.InitMax() // k best objects by network distance

	if k > 0 && objs.Len() > 0 {
		ws.setDist(q, 0)
		ws.frontier.Push(0, q)
	}
	for ws.frontier.Len() > 0 {
		if cancelErr = clock.qc.Err(); cancelErr != nil {
			break
		}
		d, v := ws.frontier.Pop()
		if ws.settled(v) || d > ws.distOf(v) {
			continue
		}
		if d > maxDist {
			break // distance-bounded expansion is complete
		}
		if best.Len() == k && d > best.TopKey() {
			break // every remaining vertex is farther than the kth neighbor
		}
		ws.settle(v)
		stats.Settled++
		for _, id := range objs.AtVertex(v) {
			nb := Neighbor{
				Object:   objs.resultAt(id),
				Interval: core.Interval{Lo: d, Hi: d},
				Dist:     d,
				Exact:    true,
			}
			if best.Len() < k {
				best.Push(d, nb)
			} else if d < best.TopKey() {
				best.Pop()
				best.Push(d, nb)
			}
		}
		tracker.TouchAdjacency(int(v), &clock.qc.IO)
		targets, weights := g.Neighbors(v)
		for i, t := range targets {
			stats.Relaxed++
			if nd := d + weights[i]; nd < ws.distOf(t) {
				ws.setDist(t, nd)
				ws.frontier.Push(nd, t)
			}
		}
		if ws.frontier.Len() > stats.MaxQueue {
			stats.MaxQueue = ws.frontier.Len()
		}
	}

	res := Result{Neighbors: drainAscending(sc, best), Sorted: true, Stats: stats, Err: cancelErr}
	if n := len(res.Neighbors); n > 0 {
		res.Stats.DkFinal = res.Neighbors[n-1].Dist
	}
	clock.finish(&res.Stats)
	return res
}

// IER is the "incremental Euclidean restriction" baseline: objects stream in
// Euclidean-distance order from the PMR quadtree; each candidate's network
// distance is computed with a point-to-point Dijkstra (as in the paper);
// the stream stops once the next Euclidean distance exceeds the kth-best
// network distance, which is sound because network distance dominates
// Euclidean distance.
func IER(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int) Result {
	return IERSpec(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, VariantKNN))
}

// IERSpec is IER under a caller-supplied query context (cancellation + I/O
// attribution) and Spec; candidates beyond Spec.MaxDist are discarded and
// the Euclidean stream stops at the bound (sound because network distance
// dominates Euclidean distance). Epsilon is ignored (the baseline is exact).
func IERSpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) Result {
	return ier(ix, qc, objs, q, spec, false, "IER")
}

// IERAStar is IER with the per-candidate Dijkstra replaced by A* under the
// admissible Euclidean heuristic — an ablation showing how much of IER's
// cost is the unguided per-candidate search.
func IERAStar(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int) Result {
	return ier(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, VariantKNN), true, "IER-A*")
}

// IERAStarSpec is IERAStar under a caller-supplied query context and Spec.
func IERAStarSpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) Result {
	return ier(ix, qc, objs, q, spec, true, "IER-A*")
}

func ier(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec, astar bool, name string) Result {
	clock := beginQueryWith(ix, qc)
	sc := scratchFor(clock.qc)
	k := spec.K
	maxDist := spec.MaxDist
	g := ix.Network()
	stats := Stats{Algorithm: name, K: k}
	var cancelErr error

	best := &sc.best
	best.InitMax()
	if k > 0 {
		cursor := objs.Tree().EuclideanBrowser(g.Point(q))
		for {
			if cancelErr = clock.qc.Err(); cancelErr != nil {
				break
			}
			o, eucl, ok := cursor.Next()
			if !ok {
				break
			}
			if eucl > maxDist {
				break // network distance ≥ Euclidean: nothing ahead qualifies
			}
			if best.Len() == k && eucl >= best.TopKey() {
				break
			}
			d := ierNetworkDistance(ix, clock.qc, &sc.ws, q, o.Vertex, astar, &stats)
			if d > maxDist {
				continue
			}
			nb := Neighbor{
				Object:   objs.resultAt(o.ID), // tree objects carry dense slots
				Interval: core.Interval{Lo: d, Hi: d},
				Dist:     d,
				Exact:    true,
			}
			if best.Len() < k {
				best.Push(d, nb)
			} else if d < best.TopKey() {
				best.Pop()
				best.Push(d, nb)
			}
		}
	}

	res := Result{Neighbors: drainAscending(sc, best), Sorted: true, Stats: stats, Err: cancelErr}
	if n := len(res.Neighbors); n > 0 {
		res.Stats.DkFinal = res.Neighbors[n-1].Dist
	}
	clock.finish(&res.Stats)
	return res
}

// ierNetworkDistance runs a point-to-point search on the paged network,
// charging adjacency-page accesses to the query's context. The workspace is
// re-armed per call in O(1), so IER's dominant per-candidate cost is the
// expansion itself, not workspace churn.
func ierNetworkDistance(ix core.QueryIndex, qc *core.QueryContext, ws *dijkstraWS, s, t graph.VertexID, astar bool, stats *Stats) float64 {
	stats.AStarCalls++
	if s == t {
		return 0
	}
	g := ix.Network()
	tracker := ix.Tracker()
	target := g.Point(t)
	h := func(v graph.VertexID) float64 {
		if !astar {
			return 0
		}
		return g.Point(v).Dist(target)
	}

	ws.reset(g.NumVertices())
	ws.setDist(s, 0)
	ws.frontier.Push(h(s), s)
	for ws.frontier.Len() > 0 {
		if qc.Err() != nil {
			return inf // cancelled mid-search; the caller surfaces the error
		}
		_, v := ws.frontier.Pop()
		if ws.settled(v) {
			continue
		}
		ws.settle(v)
		stats.Settled++
		if v == t {
			return ws.dist[t]
		}
		tracker.TouchAdjacency(int(v), &qc.IO)
		d := ws.dist[v]
		targets, weights := g.Neighbors(v)
		for i, u := range targets {
			stats.Relaxed++
			if nd := d + weights[i]; nd < ws.distOf(u) {
				ws.setDist(u, nd)
				ws.frontier.Push(nd+h(u), u)
			}
		}
	}
	return inf
}

// drainAscending empties the k-best max-heap into a fresh ascending-order
// slice, staging through the arena's drain buffer so the only allocation is
// the returned result itself.
func drainAscending(sc *scratch, best *pqueue.Indexed[Neighbor]) []Neighbor {
	sc.drainNb = best.AppendItems(sc.drainNb[:0])
	slices.SortFunc(sc.drainNb, func(a, b Neighbor) int { return cmp.Compare(a.Dist, b.Dist) })
	if len(sc.drainNb) == 0 {
		return nil
	}
	out := make([]Neighbor, len(sc.drainNb))
	copy(out, sc.drainNb)
	return out
}
