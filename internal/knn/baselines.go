package knn

import (
	"sort"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/pqueue"
)

// INE is the "incremental network expansion" baseline of Papadias et al.:
// Dijkstra from the query vertex over the disk-resident network, collecting
// objects at settled vertices into a buffer of the k best, halting once the
// expansion frontier passes the kth-best distance. Its cost scales with the
// number of edges closer than the kth neighbor.
func INE(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int) Result {
	return INESpec(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, VariantKNN))
}

// INESpec is INE under a caller-supplied query context (cancellation + I/O
// attribution) and Spec. The expansion truncates at Spec.MaxDist; Epsilon is
// ignored (the baseline is exact, which satisfies every ε).
func INESpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) Result {
	clock := beginQueryWith(ix, qc)
	k := spec.K
	maxDist := spec.MaxDist
	g := ix.Network()
	tracker := ix.Tracker()
	stats := Stats{Algorithm: "INE", K: k}
	var cancelErr error

	n := g.NumVertices()
	dist := make([]float64, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	var frontier pqueue.Min[graph.VertexID]
	best := pqueue.NewIndexedMax[Neighbor]() // k best objects by network distance

	if k > 0 && objs.Len() > 0 {
		dist[q] = 0
		frontier.Push(0, q)
	}
	for frontier.Len() > 0 {
		if cancelErr = clock.qc.Err(); cancelErr != nil {
			break
		}
		d, v := frontier.Pop()
		if settled[v] || d > dist[v] {
			continue
		}
		if d > maxDist {
			break // distance-bounded expansion is complete
		}
		if best.Len() == k && d > best.TopKey() {
			break // every remaining vertex is farther than the kth neighbor
		}
		settled[v] = true
		stats.Settled++
		for _, id := range objs.AtVertex(v) {
			nb := Neighbor{
				Object:   objs.ByID(id),
				Interval: core.Interval{Lo: d, Hi: d},
				Dist:     d,
				Exact:    true,
			}
			if best.Len() < k {
				best.Push(d, nb)
			} else if d < best.TopKey() {
				best.Pop()
				best.Push(d, nb)
			}
		}
		tracker.TouchAdjacency(int(v), &clock.qc.IO)
		targets, weights := g.Neighbors(v)
		for i, t := range targets {
			stats.Relaxed++
			if nd := d + weights[i]; nd < dist[t] {
				dist[t] = nd
				frontier.Push(nd, t)
			}
		}
		if frontier.Len() > stats.MaxQueue {
			stats.MaxQueue = frontier.Len()
		}
	}

	res := Result{Neighbors: drainAscending(best), Sorted: true, Stats: stats, Err: cancelErr}
	if n := len(res.Neighbors); n > 0 {
		res.Stats.DkFinal = res.Neighbors[n-1].Dist
	}
	clock.finish(&res.Stats)
	return res
}

// IER is the "incremental Euclidean restriction" baseline: objects stream in
// Euclidean-distance order from the PMR quadtree; each candidate's network
// distance is computed with a point-to-point Dijkstra (as in the paper);
// the stream stops once the next Euclidean distance exceeds the kth-best
// network distance, which is sound because network distance dominates
// Euclidean distance.
func IER(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int) Result {
	return IERSpec(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, VariantKNN))
}

// IERSpec is IER under a caller-supplied query context (cancellation + I/O
// attribution) and Spec; candidates beyond Spec.MaxDist are discarded and
// the Euclidean stream stops at the bound (sound because network distance
// dominates Euclidean distance). Epsilon is ignored (the baseline is exact).
func IERSpec(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec) Result {
	return ier(ix, qc, objs, q, spec, false, "IER")
}

// IERAStar is IER with the per-candidate Dijkstra replaced by A* under the
// admissible Euclidean heuristic — an ablation showing how much of IER's
// cost is the unguided per-candidate search.
func IERAStar(ix core.QueryIndex, objs *Objects, q graph.VertexID, k int) Result {
	return ier(ix, core.NewQueryContext(), objs, q, UnboundedSpec(k, VariantKNN), true, "IER-A*")
}

func ier(ix core.QueryIndex, qc *core.QueryContext, objs *Objects, q graph.VertexID, spec Spec, astar bool, name string) Result {
	clock := beginQueryWith(ix, qc)
	k := spec.K
	maxDist := spec.MaxDist
	g := ix.Network()
	stats := Stats{Algorithm: name, K: k}
	var cancelErr error

	best := pqueue.NewIndexedMax[Neighbor]()
	if k > 0 {
		cursor := objs.Tree().EuclideanBrowser(g.Point(q))
		for {
			if cancelErr = clock.qc.Err(); cancelErr != nil {
				break
			}
			o, eucl, ok := cursor.Next()
			if !ok {
				break
			}
			if eucl > maxDist {
				break // network distance ≥ Euclidean: nothing ahead qualifies
			}
			if best.Len() == k && eucl >= best.TopKey() {
				break
			}
			d := ierNetworkDistance(ix, clock.qc, q, o.Vertex, astar, &stats)
			if d > maxDist {
				continue
			}
			nb := Neighbor{
				Object:   o,
				Interval: core.Interval{Lo: d, Hi: d},
				Dist:     d,
				Exact:    true,
			}
			if best.Len() < k {
				best.Push(d, nb)
			} else if d < best.TopKey() {
				best.Pop()
				best.Push(d, nb)
			}
		}
	}

	res := Result{Neighbors: drainAscending(best), Sorted: true, Stats: stats, Err: cancelErr}
	if n := len(res.Neighbors); n > 0 {
		res.Stats.DkFinal = res.Neighbors[n-1].Dist
	}
	clock.finish(&res.Stats)
	return res
}

// ierNetworkDistance runs a point-to-point search on the paged network,
// charging adjacency-page accesses to the query's context.
func ierNetworkDistance(ix core.QueryIndex, qc *core.QueryContext, s, t graph.VertexID, astar bool, stats *Stats) float64 {
	stats.AStarCalls++
	if s == t {
		return 0
	}
	g := ix.Network()
	tracker := ix.Tracker()
	target := g.Point(t)
	h := func(v graph.VertexID) float64 {
		if !astar {
			return 0
		}
		return g.Point(v).Dist(target)
	}

	n := g.NumVertices()
	dist := make([]float64, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	var open pqueue.Min[graph.VertexID]
	dist[s] = 0
	open.Push(h(s), s)
	for open.Len() > 0 {
		if qc.Err() != nil {
			return inf // cancelled mid-search; the caller surfaces the error
		}
		_, v := open.Pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		stats.Settled++
		if v == t {
			return dist[t]
		}
		tracker.TouchAdjacency(int(v), &qc.IO)
		d := dist[v]
		targets, weights := g.Neighbors(v)
		for i, u := range targets {
			stats.Relaxed++
			if nd := d + weights[i]; nd < dist[u] {
				dist[u] = nd
				open.Push(nd+h(u), u)
			}
		}
	}
	return inf
}

// drainAscending empties a max-heap of neighbors into ascending order.
func drainAscending(best *pqueue.Indexed[Neighbor]) []Neighbor {
	out := best.Items()
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}
