package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinHeapSortsKeys(t *testing.T) {
	f := func(keys []float64) bool {
		var h Min[int]
		clean := keys[:0]
		for _, k := range keys {
			if k == k { // drop NaNs: heaps require a total order
				clean = append(clean, k)
			}
		}
		for i, k := range clean {
			h.Push(k, i)
		}
		want := append([]float64(nil), clean...)
		sort.Float64s(want)
		for _, w := range want {
			got, _ := h.Pop()
			if got != w {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinHeapValuesFollowKeys(t *testing.T) {
	var h Min[string]
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	if k, v := h.Peek(); k != 1 || v != "a" {
		t.Fatalf("Peek = %v,%v", k, v)
	}
	for _, want := range []string{"a", "b", "c"} {
		if _, v := h.Pop(); v != want {
			t.Fatalf("got %q want %q", v, want)
		}
	}
}

func TestMinHeapReset(t *testing.T) {
	var h Min[int]
	for i := 0; i < 10; i++ {
		h.Push(float64(i), i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(5, 5)
	if k, v := h.Pop(); k != 5 || v != 5 {
		t.Fatalf("heap unusable after Reset: %v %v", k, v)
	}
}

func TestIndexedMaxOrdering(t *testing.T) {
	h := NewIndexedMax[int]()
	keys := []float64{5, 1, 9, 3, 7}
	for i, k := range keys {
		h.Push(k, i)
	}
	want := append([]float64(nil), keys...)
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for _, w := range want {
		k, _ := h.Pop()
		if k != w {
			t.Fatalf("got %v want %v", k, w)
		}
	}
}

func TestIndexedUpdateAndRemove(t *testing.T) {
	h := NewIndexedMax[string]()
	a := h.Push(10, "a")
	b := h.Push(20, "b")
	c := h.Push(30, "c")
	if k, v := h.Top(); k != 30 || v != "c" {
		t.Fatalf("Top = %v,%v", k, v)
	}
	h.Update(c, 5) // c sinks to the bottom
	if k, v := h.Top(); k != 20 || v != "b" {
		t.Fatalf("after update Top = %v,%v", k, v)
	}
	h.Remove(b)
	if b.Valid() {
		t.Fatal("handle b should be invalid after Remove")
	}
	if k, v := h.Top(); k != 10 || v != "a" {
		t.Fatalf("after remove Top = %v,%v", k, v)
	}
	h.Update(a, 1)
	if k, _ := h.Top(); k != 5 {
		t.Fatalf("after re-key Top key = %v, want 5 (c)", k)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestIndexedRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		h := NewIndexedMin[int]()
		type item struct {
			key    float64
			handle Handle[int]
		}
		var live []*item
		n := rng.Intn(60) + 1
		for i := 0; i < n; i++ {
			it := &item{key: rng.Float64()}
			it.handle = h.Push(it.key, i)
			live = append(live, it)
		}
		// Random updates and removals.
		for op := 0; op < n; op++ {
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			switch rng.Intn(3) {
			case 0:
				live[i].key = rng.Float64()
				h.Update(live[i].handle, live[i].key)
			case 1:
				h.Remove(live[i].handle)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				// no-op
			}
		}
		want := make([]float64, len(live))
		for i, it := range live {
			want[i] = it.key
		}
		sort.Float64s(want)
		for _, w := range want {
			k, _ := h.Pop()
			if k != w {
				t.Fatalf("trial %d: got %v want %v", trial, k, w)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: leftover items", trial)
		}
	}
}

func TestIndexedItems(t *testing.T) {
	h := NewIndexedMax[int]()
	for i := 0; i < 5; i++ {
		h.Push(float64(i), i)
	}
	items := h.Items()
	if len(items) != 5 {
		t.Fatalf("Items len = %d", len(items))
	}
	seen := map[int]bool{}
	for _, v := range items {
		seen[v] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Fatalf("missing item %d", i)
		}
	}
}

func TestIndexedPanicsOnInvalidHandle(t *testing.T) {
	h := NewIndexedMin[int]()
	hd := h.Push(1, 1)
	h.Remove(hd)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on stale handle")
		}
	}()
	h.Update(hd, 2)
}
