// Package pqueue provides the priority-queue machinery shared by the
// shortest-path and nearest-neighbor algorithms: a plain 4-ary min-heap
// keyed by float64 priorities, an indexed heap with update/remove by handle
// (needed for the kNN result list L, whose members are re-keyed on every
// refinement), and a bounded max-heap for best-k accumulation.
package pqueue

// Min is a 4-ary min-heap of values of type T ordered by a float64 key.
// The zero value is an empty, ready-to-use heap.
//
// The 4-ary shape halves the sift depth of a binary heap and puts each
// node's four child keys in 32 contiguous bytes — at most one cache line
// per level — which matters because the pop-heavy Dijkstra frontiers spend
// most of their heap time sifting down.
type Min[T any] struct {
	keys []float64
	vals []T
}

// Len returns the number of queued items.
func (h *Min[T]) Len() int { return len(h.keys) }

// Push inserts v with the given key.
func (h *Min[T]) Push(key float64, v T) {
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	h.up(len(h.keys) - 1)
}

// Pop removes and returns the minimum-key item. It panics on an empty heap.
func (h *Min[T]) Pop() (float64, T) {
	n := len(h.keys) - 1
	key, val := h.keys[0], h.vals[0]
	h.keys[0], h.vals[0] = h.keys[n], h.vals[n]
	h.keys = h.keys[:n]
	var zero T
	h.vals[n] = zero
	h.vals = h.vals[:n]
	if n > 0 {
		h.down(0)
	}
	return key, val
}

// Peek returns the minimum key and value without removing them.
// It panics on an empty heap.
func (h *Min[T]) Peek() (float64, T) { return h.keys[0], h.vals[0] }

// PeekKey returns the minimum key. It panics on an empty heap.
func (h *Min[T]) PeekKey() float64 { return h.keys[0] }

// Reset empties the heap, retaining capacity.
func (h *Min[T]) Reset() {
	h.keys = h.keys[:0]
	clearSlice(h.vals)
	h.vals = h.vals[:0]
}

func (h *Min[T]) up(i int) {
	key, val := h.keys[i], h.vals[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if h.keys[parent] <= key {
			break
		}
		h.keys[i], h.vals[i] = h.keys[parent], h.vals[parent]
		i = parent
	}
	h.keys[i], h.vals[i] = key, val
}

func (h *Min[T]) down(i int) {
	n := len(h.keys)
	key, val := h.keys[i], h.vals[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		best, bestKey := first, h.keys[first]
		for c := first + 1; c < end; c++ {
			if h.keys[c] < bestKey {
				best, bestKey = c, h.keys[c]
			}
		}
		if key <= bestKey {
			break
		}
		h.keys[i], h.vals[i] = bestKey, h.vals[best]
		i = best
	}
	h.keys[i], h.vals[i] = key, val
}

func clearSlice[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}

// Indexed is a binary heap whose items can be re-keyed or removed through
// handles returned by Push. Ordering is controlled by max: a max-heap keeps
// the largest key at the top (used for the kNN result list L ordered by the
// interval upper bound), a min-heap the smallest.
//
// Storage is a slot slab plus a free list: Push reuses freed slots instead
// of allocating, so a long-lived heap that is Reset between queries performs
// zero allocations in steady state. Handles are generation-stamped slot
// indices — a handle dies when its item is popped, removed, or the heap is
// Reset, and Valid reports false from then on even if the slot is reused.
type Indexed[T any] struct {
	slots []islot[T]
	heap  []int32 // heap order -> slot index
	free  []int32 // recycled slot indices
	max   bool
}

type islot[T any] struct {
	key float64
	val T
	pos int32  // index in heap; -1 when the slot is free
	gen uint32 // bumped on every free, invalidating outstanding handles
}

// Handle identifies an item in an Indexed heap.
type Handle[T any] struct {
	h   *Indexed[T]
	i   int32
	gen uint32
}

// Valid reports whether the handle still refers to a queued item.
func (h Handle[T]) Valid() bool {
	return h.h != nil && int(h.i) < len(h.h.slots) &&
		h.h.slots[h.i].gen == h.gen && h.h.slots[h.i].pos >= 0
}

// Key returns the current key of the handle's item.
func (h Handle[T]) Key() float64 { return h.h.slots[h.i].key }

// Value returns the item stored under the handle.
func (h Handle[T]) Value() T { return h.h.slots[h.i].val }

// NewIndexedMax returns an empty max-ordered indexed heap.
func NewIndexedMax[T any]() *Indexed[T] { return &Indexed[T]{max: true} }

// NewIndexedMin returns an empty min-ordered indexed heap.
func NewIndexedMin[T any]() *Indexed[T] { return &Indexed[T]{} }

// InitMax prepares a zero-value (or previously used) heap as an empty
// max-ordered heap, retaining slab capacity. For embedding an Indexed by
// value in reusable query scratch.
func (h *Indexed[T]) InitMax() {
	h.max = true
	h.Reset()
}

// Len returns the number of queued items.
func (h *Indexed[T]) Len() int { return len(h.heap) }

// Reset empties the heap, invalidating every outstanding handle while
// retaining slab capacity for reuse.
func (h *Indexed[T]) Reset() {
	var zero T
	h.heap = h.heap[:0]
	h.free = h.free[:0]
	for i := range h.slots {
		s := &h.slots[i]
		s.val = zero
		s.pos = -1
		s.gen++
		h.free = append(h.free, int32(i))
	}
}

// Push inserts v with the given key and returns a handle for later updates.
func (h *Indexed[T]) Push(key float64, v T) Handle[T] {
	var i int32
	if n := len(h.free); n > 0 {
		i = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		i = int32(len(h.slots))
		h.slots = append(h.slots, islot[T]{})
	}
	s := &h.slots[i]
	s.key, s.val, s.pos = key, v, int32(len(h.heap))
	h.heap = append(h.heap, i)
	h.up(int(s.pos))
	return Handle[T]{h: h, i: i, gen: s.gen}
}

// Top returns the key and value of the root item without removing it.
// It panics on an empty heap.
func (h *Indexed[T]) Top() (float64, T) {
	s := &h.slots[h.heap[0]]
	return s.key, s.val
}

// TopKey returns the root key. It panics on an empty heap.
func (h *Indexed[T]) TopKey() float64 { return h.slots[h.heap[0]].key }

// TopHandle returns a handle to the root item. It panics on an empty heap.
func (h *Indexed[T]) TopHandle() Handle[T] {
	i := h.heap[0]
	return Handle[T]{h: h, i: i, gen: h.slots[i].gen}
}

// Pop removes and returns the root item.
func (h *Indexed[T]) Pop() (float64, T) {
	i := h.heap[0]
	key, val := h.slots[i].key, h.slots[i].val
	h.removeAt(0)
	return key, val
}

// Update changes the key of the item behind the handle and restores heap
// order. It panics if the handle is no longer valid.
func (h *Indexed[T]) Update(hd Handle[T], key float64) {
	if !hd.Valid() {
		panic("pqueue: Update on invalid handle")
	}
	s := &h.slots[hd.i]
	s.key = key
	h.down(int(s.pos))
	h.up(int(s.pos))
}

// Remove deletes the item behind the handle. It panics if the handle is no
// longer valid.
func (h *Indexed[T]) Remove(hd Handle[T]) {
	if !hd.Valid() {
		panic("pqueue: Remove on invalid handle")
	}
	h.removeAt(int(h.slots[hd.i].pos))
}

// removeAt deletes the item at heap position i and frees its slot.
func (h *Indexed[T]) removeAt(i int) {
	n := len(h.heap) - 1
	si := h.heap[i]
	h.swap(i, n)
	h.heap = h.heap[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	s := &h.slots[si]
	var zero T
	s.val = zero
	s.pos = -1
	s.gen++
	h.free = append(h.free, si)
}

// less orders heap position i before j according to the heap's direction.
func (h *Indexed[T]) less(i, j int) bool {
	if h.max {
		return h.slots[h.heap[i]].key > h.slots[h.heap[j]].key
	}
	return h.slots[h.heap[i]].key < h.slots[h.heap[j]].key
}

func (h *Indexed[T]) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.slots[h.heap[i]].pos = int32(i)
	h.slots[h.heap[j]].pos = int32(j)
}

func (h *Indexed[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Indexed[T]) down(i int) {
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h.swap(i, child)
		i = child
	}
}

// Items returns the queued values in heap (not sorted) order. Intended for
// draining results at the end of a search.
func (h *Indexed[T]) Items() []T {
	return h.AppendItems(make([]T, 0, len(h.heap)))
}

// AppendItems appends the queued values in heap (not sorted) order to dst
// and returns the extended slice — the allocation-free form of Items for
// callers that reuse a drain buffer.
func (h *Indexed[T]) AppendItems(dst []T) []T {
	for _, si := range h.heap {
		dst = append(dst, h.slots[si].val)
	}
	return dst
}
