// Package pqueue provides the priority-queue machinery shared by the
// shortest-path and nearest-neighbor algorithms: a plain binary min-heap
// keyed by float64 priorities, an indexed heap with update/remove by handle
// (needed for the kNN result list L, whose members are re-keyed on every
// refinement), and a bounded max-heap for best-k accumulation.
package pqueue

// Min is a binary min-heap of values of type T ordered by a float64 key.
// The zero value is an empty, ready-to-use heap.
type Min[T any] struct {
	keys []float64
	vals []T
}

// Len returns the number of queued items.
func (h *Min[T]) Len() int { return len(h.keys) }

// Push inserts v with the given key.
func (h *Min[T]) Push(key float64, v T) {
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	h.up(len(h.keys) - 1)
}

// Pop removes and returns the minimum-key item. It panics on an empty heap.
func (h *Min[T]) Pop() (float64, T) {
	n := len(h.keys) - 1
	key, val := h.keys[0], h.vals[0]
	h.keys[0], h.vals[0] = h.keys[n], h.vals[n]
	h.keys = h.keys[:n]
	var zero T
	h.vals[n] = zero
	h.vals = h.vals[:n]
	if n > 0 {
		h.down(0)
	}
	return key, val
}

// Peek returns the minimum key and value without removing them.
// It panics on an empty heap.
func (h *Min[T]) Peek() (float64, T) { return h.keys[0], h.vals[0] }

// PeekKey returns the minimum key. It panics on an empty heap.
func (h *Min[T]) PeekKey() float64 { return h.keys[0] }

// Reset empties the heap, retaining capacity.
func (h *Min[T]) Reset() {
	h.keys = h.keys[:0]
	clearSlice(h.vals)
	h.vals = h.vals[:0]
}

func (h *Min[T]) up(i int) {
	key, val := h.keys[i], h.vals[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= key {
			break
		}
		h.keys[i], h.vals[i] = h.keys[parent], h.vals[parent]
		i = parent
	}
	h.keys[i], h.vals[i] = key, val
}

func (h *Min[T]) down(i int) {
	n := len(h.keys)
	key, val := h.keys[i], h.vals[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.keys[r] < h.keys[child] {
			child = r
		}
		if key <= h.keys[child] {
			break
		}
		h.keys[i], h.vals[i] = h.keys[child], h.vals[child]
		i = child
	}
	h.keys[i], h.vals[i] = key, val
}

func clearSlice[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}

// Indexed is a binary heap whose items can be re-keyed or removed through
// integer handles returned by Push. Ordering is controlled by max: a max-heap
// keeps the largest key at the top (used for the kNN list L ordered by the
// interval upper bound), a min-heap the smallest.
type Indexed[T any] struct {
	entries []*indexedEntry[T]
	max     bool
}

type indexedEntry[T any] struct {
	key float64
	val T
	pos int
}

// Handle identifies an item in an Indexed heap.
type Handle[T any] struct{ e *indexedEntry[T] }

// Valid reports whether the handle still refers to a queued item.
func (h Handle[T]) Valid() bool { return h.e != nil && h.e.pos >= 0 }

// Key returns the current key of the handle's item.
func (h Handle[T]) Key() float64 { return h.e.key }

// Value returns the item stored under the handle.
func (h Handle[T]) Value() T { return h.e.val }

// NewIndexedMax returns an empty max-ordered indexed heap.
func NewIndexedMax[T any]() *Indexed[T] { return &Indexed[T]{max: true} }

// NewIndexedMin returns an empty min-ordered indexed heap.
func NewIndexedMin[T any]() *Indexed[T] { return &Indexed[T]{} }

// Len returns the number of queued items.
func (h *Indexed[T]) Len() int { return len(h.entries) }

// Push inserts v with the given key and returns a handle for later updates.
func (h *Indexed[T]) Push(key float64, v T) Handle[T] {
	e := &indexedEntry[T]{key: key, val: v, pos: len(h.entries)}
	h.entries = append(h.entries, e)
	h.up(e.pos)
	return Handle[T]{e}
}

// Top returns the key and value of the root item without removing it.
// It panics on an empty heap.
func (h *Indexed[T]) Top() (float64, T) {
	e := h.entries[0]
	return e.key, e.val
}

// TopKey returns the root key. It panics on an empty heap.
func (h *Indexed[T]) TopKey() float64 { return h.entries[0].key }

// TopHandle returns a handle to the root item. It panics on an empty heap.
func (h *Indexed[T]) TopHandle() Handle[T] { return Handle[T]{h.entries[0]} }

// Pop removes and returns the root item.
func (h *Indexed[T]) Pop() (float64, T) {
	e := h.entries[0]
	h.remove(0)
	return e.key, e.val
}

// Update changes the key of the item behind the handle and restores heap
// order. It panics if the handle is no longer valid.
func (h *Indexed[T]) Update(hd Handle[T], key float64) {
	e := hd.e
	if e == nil || e.pos < 0 {
		panic("pqueue: Update on invalid handle")
	}
	e.key = key
	h.down(e.pos)
	h.up(e.pos)
}

// Remove deletes the item behind the handle. It panics if the handle is no
// longer valid.
func (h *Indexed[T]) Remove(hd Handle[T]) {
	e := hd.e
	if e == nil || e.pos < 0 {
		panic("pqueue: Remove on invalid handle")
	}
	h.remove(e.pos)
}

func (h *Indexed[T]) remove(i int) {
	n := len(h.entries) - 1
	e := h.entries[i]
	h.swap(i, n)
	h.entries = h.entries[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	e.pos = -1
}

// less orders i before j according to the heap's direction.
func (h *Indexed[T]) less(i, j int) bool {
	if h.max {
		return h.entries[i].key > h.entries[j].key
	}
	return h.entries[i].key < h.entries[j].key
}

func (h *Indexed[T]) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].pos = i
	h.entries[j].pos = j
}

func (h *Indexed[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Indexed[T]) down(i int) {
	n := len(h.entries)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h.swap(i, child)
		i = child
	}
}

// Items returns the queued values in heap (not sorted) order. Intended for
// draining results at the end of a search.
func (h *Indexed[T]) Items() []T {
	out := make([]T, len(h.entries))
	for i, e := range h.entries {
		out[i] = e.val
	}
	return out
}
