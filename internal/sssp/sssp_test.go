package sssp

import (
	"math"
	"math/rand"
	"testing"

	"silc/internal/geom"
	"silc/internal/graph"
)

// smallNetworks returns a varied set of small networks for oracle comparison.
func smallNetworks(t *testing.T) []*graph.Network {
	t.Helper()
	var nets []*graph.Network
	grid, err := graph.GenerateGrid(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, grid)
	for seed := int64(0); seed < 4; seed++ {
		g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 7, Cols: 7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, g)
		r, err := graph.GenerateRandomConnected(40, 30, 0.4, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, r)
	}
	ring, err := graph.GenerateRingRadial(3, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, ring)
	return nets
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	for gi, g := range smallNetworks(t) {
		want := FloydWarshall(g)
		for s := 0; s < g.NumVertices(); s++ {
			tree := Dijkstra(g, graph.VertexID(s))
			for v := 0; v < g.NumVertices(); v++ {
				got := tree.Dist[v]
				if math.Abs(got-want[s][v]) > 1e-9 {
					t.Fatalf("net %d: dist(%d,%d) = %v want %v", gi, s, v, got, want[s][v])
				}
			}
		}
	}
}

func TestDijkstraTreeInvariants(t *testing.T) {
	for gi, g := range smallNetworks(t) {
		s := graph.VertexID(gi % g.NumVertices())
		tree := Dijkstra(g, s)
		if tree.Dist[s] != 0 {
			t.Fatalf("net %d: Dist[source]=%v", gi, tree.Dist[s])
		}
		if tree.FirstHop[s] != graph.NoVertex {
			t.Fatalf("net %d: FirstHop[source] set", gi)
		}
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if vv == s || math.IsInf(tree.Dist[v], 1) {
				continue
			}
			// Parent edge exists and distances are consistent along it.
			p := tree.Parent[v]
			w, ok := g.EdgeWeight(p, vv)
			if !ok {
				t.Fatalf("net %d: parent edge %d->%d missing", gi, p, v)
			}
			if math.Abs(tree.Dist[p]+w-tree.Dist[v]) > 1e-9 {
				t.Fatalf("net %d: dist inconsistent at %d", gi, v)
			}
			// FirstHop is the second vertex of the reconstructed path and a
			// neighbor of the source.
			path := tree.PathTo(vv)
			if len(path) < 2 || path[0] != s || path[len(path)-1] != vv {
				t.Fatalf("net %d: bad path %v", gi, path)
			}
			if path[1] != tree.FirstHop[v] {
				t.Fatalf("net %d: FirstHop[%d]=%d, path says %d", gi, v, tree.FirstHop[v], path[1])
			}
			if g.NeighborIndex(s, tree.FirstHop[v]) < 0 {
				t.Fatalf("net %d: FirstHop[%d]=%d is not a neighbor of source", gi, v, tree.FirstHop[v])
			}
			// The path's summed weight equals the reported distance.
			if math.Abs(PathWeight(g, path)-tree.Dist[v]) > 1e-9 {
				t.Fatalf("net %d: path weight mismatch at %d", gi, v)
			}
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddVertex(pt(0.1, 0.1))
	c := b.AddVertex(pt(0.2, 0.1))
	d := b.AddVertex(pt(0.8, 0.8))
	b.AddBiEdge(a, c, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree := Dijkstra(g, a)
	if !math.IsInf(tree.Dist[d], 1) {
		t.Fatalf("Dist to isolated vertex = %v", tree.Dist[d])
	}
	if tree.PathTo(d) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
	if tree.Settled != 2 {
		t.Fatalf("Settled = %d want 2", tree.Settled)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 8, Cols: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(g.NumVertices())
	fresh := Dijkstra(g, 0)
	want0 := append([]float64(nil), fresh.Dist...)
	// Run from several sources and re-run from 0: results must match a fresh
	// computation (no stale state).
	for s := 0; s < 5; s++ {
		ws.Run(g, graph.VertexID(s))
	}
	got := ws.Run(g, 0)
	for v := range want0 {
		if math.Abs(got.Dist[v]-want0[v]) > 1e-12 {
			t.Fatalf("workspace reuse corrupted dist[%d]: %v vs %v", v, got.Dist[v], want0[v])
		}
	}
}

func TestShortestPathAndAStarAgree(t *testing.T) {
	for gi, g := range smallNetworks(t) {
		rng := rand.New(rand.NewSource(int64(gi)))
		oracle := FloydWarshall(g)
		for trial := 0; trial < 30; trial++ {
			s := graph.VertexID(rng.Intn(g.NumVertices()))
			d := graph.VertexID(rng.Intn(g.NumVertices()))
			dij := ShortestPath(g, s, d)
			ast := AStar(g, s, d)
			want := oracle[s][d]
			if s == d {
				if !dij.Found || dij.Dist != 0 {
					t.Fatalf("net %d: s==d dij=%+v", gi, dij)
				}
				continue
			}
			if math.IsInf(want, 1) {
				if dij.Found || ast.Found {
					t.Fatalf("net %d: found path to unreachable", gi)
				}
				continue
			}
			if !dij.Found || math.Abs(dij.Dist-want) > 1e-9 {
				t.Fatalf("net %d: dijkstra %v want %v", gi, dij.Dist, want)
			}
			if !ast.Found || math.Abs(ast.Dist-want) > 1e-9 {
				t.Fatalf("net %d: astar %v want %v", gi, ast.Dist, want)
			}
			if math.Abs(PathWeight(g, dij.Path)-want) > 1e-9 {
				t.Fatalf("net %d: dijkstra path weight mismatch", gi)
			}
			if math.Abs(PathWeight(g, ast.Path)-want) > 1e-9 {
				t.Fatalf("net %d: astar path weight mismatch", gi)
			}
		}
	}
}

func TestAStarSettlesNoMoreThanDijkstra(t *testing.T) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 20, Cols: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	totalDij, totalAst := 0, 0
	for trial := 0; trial < 25; trial++ {
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		d := graph.VertexID(rng.Intn(g.NumVertices()))
		totalDij += ShortestPath(g, s, d).Settled
		totalAst += AStar(g, s, d).Settled
	}
	// The Euclidean heuristic must focus the search: across a batch of
	// queries A* should settle strictly fewer vertices in total.
	if totalAst >= totalDij {
		t.Fatalf("A* settled %d vs Dijkstra %d; heuristic not helping", totalAst, totalDij)
	}
}

func TestDijkstraVisitsLargeFraction(t *testing.T) {
	// The paper's motivation (p.3): point-to-point Dijkstra settles a large
	// share of the network even for a moderate-length path. Check the shape:
	// a corner-to-corner query on a lattice settles >50% of vertices.
	g, err := graph.GenerateGrid(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	res := ShortestPath(g, 0, graph.VertexID(g.NumVertices()-1))
	if !res.Found {
		t.Fatal("path not found")
	}
	frac := float64(res.Settled) / float64(g.NumVertices())
	if frac < 0.5 {
		t.Fatalf("Dijkstra settled only %.0f%%, expected the pathological >50%%", frac*100)
	}
	if len(res.Path) >= res.Settled {
		t.Fatalf("path length %d should be far below settled %d", len(res.Path), res.Settled)
	}
}

func TestPathWeightRejectsNonPath(t *testing.T) {
	g, err := graph.GenerateGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(PathWeight(g, []graph.VertexID{0, 8}), 1) {
		t.Fatal("PathWeight accepted a non-edge hop")
	}
	if !math.IsInf(PathWeight(g, nil), 1) {
		t.Fatal("PathWeight of empty path should be Inf")
	}
	if got := PathWeight(g, []graph.VertexID{4}); got != 0 {
		t.Fatalf("single-vertex path weight = %v", got)
	}
}

func pt(x, y float64) geom.Point {
	return geom.Point{X: x, Y: y}
}

func TestWorkspaceGrowsForLargerNetwork(t *testing.T) {
	small, err := graph.GenerateGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := graph.GenerateGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(small.NumVertices())
	ws.Run(small, 0)
	tree := ws.Run(big, 0) // must grow transparently
	if tree.Settled != big.NumVertices() {
		t.Fatalf("settled %d of %d after growth", tree.Settled, big.NumVertices())
	}
	want := Dijkstra(big, 0)
	for v := range want.Dist {
		if math.Abs(tree.Dist[v]-want.Dist[v]) > 1e-12 {
			t.Fatalf("dist[%d] differs after workspace growth", v)
		}
	}
}
