// Package sssp implements the shortest-path primitives the SILC framework is
// built from (single-source Dijkstra with first-hop labels) and compares
// against (point-to-point Dijkstra and A*, the engines behind the INE and
// IER baselines), plus a Floyd–Warshall oracle for property tests.
package sssp

import (
	"math"

	"silc/internal/graph"
	"silc/internal/pqueue"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// Tree is the result of a single-source shortest-path computation. The
// slices are indexed by vertex id. FirstHop[v] is the first vertex after the
// source on the shortest path source->v; it is the quantity the SILC
// coloring stores. For the source itself and for unreachable vertices,
// Parent and FirstHop are graph.NoVertex and Dist is 0 or Inf respectively.
//
// Trees produced by a Workspace alias the workspace's buffers and are valid
// only until its next Run.
type Tree struct {
	Source   graph.VertexID
	Dist     []float64
	Parent   []graph.VertexID
	FirstHop []graph.VertexID
	// Settled is the number of vertices permanently labeled.
	Settled int
}

// PathTo reconstructs the shortest path from the tree's source to t,
// inclusive of both endpoints. It returns nil if t is unreachable.
func (t *Tree) PathTo(dst graph.VertexID) []graph.VertexID {
	if math.IsInf(t.Dist[dst], 1) {
		return nil
	}
	var rev []graph.VertexID
	for v := dst; v != graph.NoVertex; v = t.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Workspace holds reusable buffers for repeated Dijkstra runs (the SILC
// builder runs one per vertex; each parallel worker owns a Workspace).
type Workspace struct {
	dist     []float64
	parent   []graph.VertexID
	firstHop []graph.VertexID
	settled  []bool
	heap     pqueue.Min[graph.VertexID]
}

// NewWorkspace returns a workspace for networks of up to n vertices.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		dist:     make([]float64, n),
		parent:   make([]graph.VertexID, n),
		firstHop: make([]graph.VertexID, n),
		settled:  make([]bool, n),
	}
}

// Run computes the full shortest-path tree from source. The returned Tree
// aliases the workspace's buffers.
func (ws *Workspace) Run(g *graph.Network, source graph.VertexID) *Tree {
	n := g.NumVertices()
	if len(ws.dist) < n {
		*ws = *NewWorkspace(n)
	}
	dist, parent, firstHop, settled := ws.dist[:n], ws.parent[:n], ws.firstHop[:n], ws.settled[:n]
	for i := range dist {
		dist[i] = Inf
		parent[i] = graph.NoVertex
		firstHop[i] = graph.NoVertex
		settled[i] = false
	}
	h := &ws.heap
	h.Reset()

	dist[source] = 0
	h.Push(0, source)
	count := 0
	for h.Len() > 0 {
		d, v := h.Pop()
		if settled[v] || d > dist[v] {
			continue
		}
		settled[v] = true
		count++
		targets, weights := g.Neighbors(v)
		for i, t := range targets {
			nd := d + weights[i]
			if nd < dist[t] {
				dist[t] = nd
				parent[t] = v
				if v == source {
					firstHop[t] = t
				} else {
					firstHop[t] = firstHop[v]
				}
				h.Push(nd, t)
			}
		}
	}
	return &Tree{Source: source, Dist: dist, Parent: parent, FirstHop: firstHop, Settled: count}
}

// Dijkstra computes the full shortest-path tree from source with freshly
// allocated buffers.
func Dijkstra(g *graph.Network, source graph.VertexID) *Tree {
	t := NewWorkspace(g.NumVertices()).Run(g, source)
	// Detach from the (otherwise discarded) workspace for clarity.
	return t
}

// PointToPoint is the result of a point-to-point query.
type PointToPoint struct {
	Dist    float64
	Path    []graph.VertexID // inclusive of both endpoints; nil if not found
	Settled int              // vertices permanently labeled ("visited" in the paper)
	Relaxed int              // edges relaxed
	Found   bool
}

// ShortestPath runs Dijkstra from s with early termination at t. Its Settled
// count reproduces the paper's motivating measurement (Dijkstra visits 3191
// of 4233 vertices to find a 76-edge path).
func ShortestPath(g *graph.Network, s, t graph.VertexID) PointToPoint {
	return pointToPoint(g, s, t, nil)
}

// AStar runs A* from s to t with the Euclidean-distance heuristic, which is
// admissible and consistent because every edge weight is at least the
// Euclidean length of the segment. This is the engine the IER baseline uses
// for its per-candidate network-distance computations.
func AStar(g *graph.Network, s, t graph.VertexID) PointToPoint {
	target := g.Point(t)
	h := func(v graph.VertexID) float64 { return g.Point(v).Dist(target) }
	return pointToPoint(g, s, t, h)
}

func pointToPoint(g *graph.Network, s, t graph.VertexID, heuristic func(graph.VertexID) float64) PointToPoint {
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]graph.VertexID, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = graph.NoVertex
	}
	var h pqueue.Min[graph.VertexID]
	dist[s] = 0
	if heuristic != nil {
		h.Push(heuristic(s), s)
	} else {
		h.Push(0, s)
	}
	res := PointToPoint{Dist: Inf}
	for h.Len() > 0 {
		_, v := h.Pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		res.Settled++
		if v == t {
			res.Found = true
			res.Dist = dist[t]
			break
		}
		d := dist[v]
		targets, weights := g.Neighbors(v)
		for i, u := range targets {
			nd := d + weights[i]
			res.Relaxed++
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = v
				key := nd
				if heuristic != nil {
					key += heuristic(u)
				}
				h.Push(key, u)
			}
		}
	}
	if res.Found {
		var rev []graph.VertexID
		for v := t; v != graph.NoVertex; v = parent[v] {
			rev = append(rev, v)
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		res.Path = rev
	}
	return res
}

// FloydWarshall computes the all-pairs distance matrix. It is the test
// oracle for small networks; O(n^3) time and O(n^2) space.
func FloydWarshall(g *graph.Network) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = Inf
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Weight < d[e.From][e.To] {
			d[e.From][e.To] = e.Weight
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
	return d
}

// PathWeight sums the edge weights along a vertex path, returning Inf if any
// hop is not an edge of g. Used to validate reconstructed paths.
func PathWeight(g *graph.Network, path []graph.VertexID) float64 {
	if len(path) == 0 {
		return Inf
	}
	total := 0.0
	for i := 1; i < len(path); i++ {
		w, ok := g.EdgeWeight(path[i-1], path[i])
		if !ok {
			return Inf
		}
		total += w
	}
	return total
}
