package core

import (
	"math"
	"math/rand"
	"testing"

	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/sssp"
)

func buildIndex(t testing.TB, g *graph.Network) *Index {
	t.Helper()
	ix, err := Build(g, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func roadNet(t testing.TB, rows, cols int, seed int64) *graph.Network {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testPairs yields a deterministic sample of vertex pairs.
func testPairs(g *graph.Network, count int, seed int64) [][2]graph.VertexID {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	pairs := make([][2]graph.VertexID, count)
	for i := range pairs {
		pairs[i] = [2]graph.VertexID{
			graph.VertexID(rng.Intn(n)),
			graph.VertexID(rng.Intn(n)),
		}
	}
	return pairs
}

func TestIntervalContainsTrueDistanceAllPairs(t *testing.T) {
	// Exhaustive containment check on a small network: the zero-refinement
	// interval must contain the Dijkstra distance for every pair.
	g := roadNet(t, 7, 7, 1)
	ix := buildIndex(t, g)
	for s := 0; s < g.NumVertices(); s++ {
		tree := sssp.Dijkstra(g, graph.VertexID(s))
		for v := 0; v < g.NumVertices(); v++ {
			iv := ix.DistanceInterval(graph.VertexID(s), graph.VertexID(v))
			d := tree.Dist[v]
			if s == v {
				if iv.Lo != 0 || iv.Hi != 0 {
					t.Fatalf("self interval = %+v", iv)
				}
				continue
			}
			if iv.Lo > d+1e-9 || iv.Hi < d-1e-9 {
				t.Fatalf("interval [%v,%v] misses true %v for (%d,%d)", iv.Lo, iv.Hi, d, s, v)
			}
			if iv.Lo < 0 {
				t.Fatalf("negative lower bound %v", iv.Lo)
			}
		}
	}
}

func TestRefinementMonotoneAndConvergesToExact(t *testing.T) {
	g := roadNet(t, 9, 9, 2)
	ix := buildIndex(t, g)
	for _, pair := range testPairs(g, 120, 3) {
		s, d := pair[0], pair[1]
		truth := sssp.ShortestPath(g, s, d)
		r := ix.NewRefiner(s, d)
		prev := r.Interval()
		if s == d {
			if !r.Done() {
				t.Fatal("refiner for identical pair not done")
			}
			continue
		}
		steps := 0
		for !r.Done() {
			r.Step()
			cur := r.Interval()
			if cur.Lo < prev.Lo-1e-9 || cur.Hi > prev.Hi+1e-9 {
				t.Fatalf("interval widened: %+v -> %+v", prev, cur)
			}
			if cur.Lo > truth.Dist+1e-9 || cur.Hi < truth.Dist-1e-9 {
				t.Fatalf("interval [%v,%v] lost true distance %v", cur.Lo, cur.Hi, truth.Dist)
			}
			prev = cur
			steps++
			if steps > g.NumVertices() {
				t.Fatal("refinement did not terminate")
			}
		}
		// Convergence in at most path-hop-count steps.
		if hops := len(truth.Path) - 1; steps > hops {
			t.Fatalf("took %d refinements for a %d-hop path", steps, hops)
		}
		final := r.Interval()
		if math.Abs(final.Lo-truth.Dist) > 1e-9 || !final.Exact() {
			t.Fatalf("final interval %+v, true %v", final, truth.Dist)
		}
		if r.Steps() != steps {
			t.Fatalf("Steps()=%d counted %d", r.Steps(), steps)
		}
	}
}

func TestViaExposesExactPrefix(t *testing.T) {
	g := roadNet(t, 8, 8, 5)
	ix := buildIndex(t, g)
	for _, pair := range testPairs(g, 40, 7) {
		s, d := pair[0], pair[1]
		if s == d {
			continue
		}
		r := ix.NewRefiner(s, d)
		for !r.Done() {
			r.Step()
			via, acc := r.Via()
			want := sssp.ShortestPath(g, s, via)
			// acc must be an exact distance to the intermediate vertex.
			if via != s && math.Abs(acc-want.Dist) > 1e-9 {
				t.Fatalf("Via prefix %v to %d, Dijkstra says %v", acc, via, want.Dist)
			}
		}
	}
}

func TestDistanceMatchesDijkstra(t *testing.T) {
	g := roadNet(t, 9, 9, 4)
	ix := buildIndex(t, g)
	for _, pair := range testPairs(g, 150, 11) {
		s, d := pair[0], pair[1]
		want := sssp.ShortestPath(g, s, d).Dist
		if s == d {
			want = 0
		}
		if got := ix.Distance(s, d); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Distance(%d,%d)=%v want %v", s, d, got, want)
		}
	}
}

func TestPathIsShortestAndValid(t *testing.T) {
	g := roadNet(t, 9, 9, 6)
	ix := buildIndex(t, g)
	for _, pair := range testPairs(g, 100, 13) {
		s, d := pair[0], pair[1]
		path := ix.Path(s, d)
		if path[0] != s || path[len(path)-1] != d {
			t.Fatalf("path endpoints %v", path)
		}
		want := sssp.ShortestPath(g, s, d).Dist
		if s == d {
			if len(path) != 1 {
				t.Fatalf("self path = %v", path)
			}
			continue
		}
		got := sssp.PathWeight(g, path)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("path weight %v want %v", got, want)
		}
	}
}

func TestNextHopAgreesWithSomeShortestPath(t *testing.T) {
	g := roadNet(t, 8, 8, 8)
	ix := buildIndex(t, g)
	for _, pair := range testPairs(g, 80, 17) {
		s, d := pair[0], pair[1]
		if s == d {
			if ix.NextHop(s, d) != d {
				t.Fatal("NextHop(self) != self")
			}
			continue
		}
		hop := ix.NextHop(s, d)
		w, ok := g.EdgeWeight(s, hop)
		if !ok {
			t.Fatalf("NextHop %d not adjacent to %d", hop, s)
		}
		// Optimal substructure: w + d(hop, dst) == d(s, dst).
		dHop := sssp.ShortestPath(g, hop, d).Dist
		if hop == d {
			dHop = 0
		}
		dFull := sssp.ShortestPath(g, s, d).Dist
		if math.Abs(w+dHop-dFull) > 1e-9 {
			t.Fatalf("NextHop %d is not on a shortest path: %v + %v != %v", hop, w, dHop, dFull)
		}
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder()
	u := b.AddVertex(geom.Point{X: 0.1, Y: 0.1})
	v := b.AddVertex(geom.Point{X: 0.2, Y: 0.1})
	b.AddBiEdge(u, v, 1)
	b.AddVertex(geom.Point{X: 0.9, Y: 0.9}) // isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, BuildOptions{}); err == nil {
		t.Fatal("expected error for disconnected network")
	}
}

func TestBuildStats(t *testing.T) {
	g := roadNet(t, 10, 10, 9)
	ix := buildIndex(t, g)
	s := ix.Stats()
	if s.Vertices != g.NumVertices() || s.Edges != g.NumEdges() {
		t.Fatalf("stats shape %+v", s)
	}
	var total int64
	for v := 0; v < g.NumVertices(); v++ {
		b := ix.BlockCount(graph.VertexID(v))
		total += int64(b)
		if b < s.MinBlocks || b > s.MaxBlocks {
			t.Fatalf("block count %d outside [%d,%d]", b, s.MinBlocks, s.MaxBlocks)
		}
	}
	if total != s.TotalBlocks {
		t.Fatalf("TotalBlocks %d, summed %d", s.TotalBlocks, total)
	}
	if s.TotalBytes != total*16 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes)
	}
	if s.BlocksPerVertex() <= 0 {
		t.Fatal("BlocksPerVertex should be positive")
	}
	if s.BuildTime <= 0 {
		t.Fatal("BuildTime not recorded")
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	g := roadNet(t, 8, 8, 10)
	serial, err := Build(g, BuildOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(g, BuildOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats().TotalBlocks != parallel.Stats().TotalBlocks {
		t.Fatalf("block totals differ: %d vs %d",
			serial.Stats().TotalBlocks, parallel.Stats().TotalBlocks)
	}
	for _, pair := range testPairs(g, 50, 23) {
		a := serial.DistanceInterval(pair[0], pair[1])
		b := parallel.DistanceInterval(pair[0], pair[1])
		if a != b {
			t.Fatalf("intervals differ for %v: %+v vs %+v", pair, a, b)
		}
	}
}

func TestRegionLowerBoundValidAgainstDijkstra(t *testing.T) {
	g := roadNet(t, 8, 8, 12)
	ix := buildIndex(t, g)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		q := graph.VertexID(rng.Intn(g.NumVertices()))
		tree := sssp.Dijkstra(g, q)
		x1, x2 := rng.Float64(), rng.Float64()
		y1, y2 := rng.Float64(), rng.Float64()
		rect := geom.Rect{
			MinX: math.Min(x1, x2), MaxX: math.Max(x1, x2),
			MinY: math.Min(y1, y2), MaxY: math.Max(y1, y2),
		}
		bound := ix.RegionLowerBound(q, rect)
		for v := 0; v < g.NumVertices(); v++ {
			if !rect.Contains(g.Point(graph.VertexID(v))) || graph.VertexID(v) == q {
				continue
			}
			if bound > tree.Dist[v]+1e-9 {
				t.Fatalf("bound %v exceeds dist(%d)=%v", bound, v, tree.Dist[v])
			}
		}
		if rect.Contains(g.Point(q)) && bound != 0 {
			t.Fatalf("rect containing q must bound 0, got %v", bound)
		}
	}
}

func TestDiskResidentTracksIO(t *testing.T) {
	g := roadNet(t, 8, 8, 14)
	ix, err := Build(g, BuildOptions{DiskResident: true, CacheFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	tr := ix.Tracker()
	if tr == nil {
		t.Fatal("tracker missing")
	}
	before := tr.Stats().Accesses()
	ix.Distance(0, graph.VertexID(g.NumVertices()-1))
	after := tr.Stats().Accesses()
	if after <= before {
		t.Fatal("Distance produced no page accesses")
	}
	if tr.ModeledIOTime() < 0 {
		t.Fatal("negative modeled IO time")
	}
	// In-memory index must have no tracker.
	mem := buildIndex(t, g)
	if mem.Tracker() != nil {
		t.Fatal("in-memory index should have nil tracker")
	}
}

func TestIntervalHelpers(t *testing.T) {
	a := Interval{Lo: 1, Hi: 3}
	b := Interval{Lo: 2.5, Hi: 4}
	c := Interval{Lo: 3.5, Hi: 5}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a,b should collide")
	}
	if a.Intersects(c) {
		t.Fatal("a,c should not collide")
	}
	if (Interval{Lo: 2, Hi: 2}).Exact() != true {
		t.Fatal("point interval should be exact")
	}
	if a.Exact() {
		t.Fatal("wide interval should not be exact")
	}
	got := a.intersect(b)
	if got.Lo != 2.5 || got.Hi != 3 {
		t.Fatalf("intersect = %+v", got)
	}
	// Disjoint-by-noise intervals clamp to a point rather than inverting.
	clamped := Interval{Lo: 1, Hi: 2}.intersect(Interval{Lo: 2 + 1e-15, Hi: 3})
	if clamped.Lo > clamped.Hi {
		t.Fatalf("inverted interval %+v", clamped)
	}
}

func TestRandomTopologies(t *testing.T) {
	// SILC must stay correct on non-planar random graphs (compression is
	// what degrades, not correctness).
	for seed := int64(0); seed < 3; seed++ {
		g, err := graph.GenerateRandomConnected(60, 60, 0.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		ix := buildIndex(t, g)
		oracle := sssp.FloydWarshall(g)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 60; trial++ {
			s := graph.VertexID(rng.Intn(g.NumVertices()))
			d := graph.VertexID(rng.Intn(g.NumVertices()))
			want := oracle[s][d]
			if s == d {
				want = 0
			}
			if got := ix.Distance(s, d); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: Distance(%d,%d)=%v want %v", seed, s, d, got, want)
			}
		}
	}
}
