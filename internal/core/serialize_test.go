package core

import (
	"bytes"
	"math"
	"testing"

	"silc/internal/graph"
)

func TestIndexSerializationRoundTrip(t *testing.T) {
	g := roadNet(t, 9, 9, 41)
	ix := buildIndex(t, g)

	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	back, err := Load(bytes.NewReader(buf.Bytes()), g, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().TotalBlocks != ix.Stats().TotalBlocks {
		t.Fatalf("block totals differ: %d vs %d", back.Stats().TotalBlocks, ix.Stats().TotalBlocks)
	}
	// Query equivalence on a sample of pairs.
	for _, pair := range testPairs(g, 80, 43) {
		a := ix.DistanceInterval(pair[0], pair[1])
		b := back.DistanceInterval(pair[0], pair[1])
		if a != b {
			t.Fatalf("interval differs for %v: %+v vs %+v", pair, a, b)
		}
		da, db := ix.Distance(pair[0], pair[1]), back.Distance(pair[0], pair[1])
		if math.Abs(da-db) > 1e-12 {
			t.Fatalf("distance differs for %v: %v vs %v", pair, da, db)
		}
	}
}

func TestLoadDiskResident(t *testing.T) {
	g := roadNet(t, 7, 7, 42)
	ix := buildIndex(t, g)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), g, BuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.Tracker() == nil {
		t.Fatal("tracker missing after disk-resident load")
	}
	back.Distance(0, graph.VertexID(g.NumVertices()-1))
	if back.Tracker().Stats().Accesses() == 0 {
		t.Fatal("no IO recorded")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	g := roadNet(t, 7, 7, 44)
	ix := buildIndex(t, g)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one byte in the block payload: CRC must catch it.
	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(corrupt), g, BuildOptions{}); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Truncated file.
	if _, err := Load(bytes.NewReader(pristine[:len(pristine)-8]), g, BuildOptions{}); err == nil {
		t.Fatal("truncated file accepted")
	}

	// Bad magic.
	bad := append([]byte(nil), pristine...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad), g, BuildOptions{}); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Wrong network (different vertex count).
	other := roadNet(t, 6, 6, 45)
	if other.NumVertices() == g.NumVertices() {
		t.Skip("networks coincidentally equal")
	}
	if _, err := Load(bytes.NewReader(pristine), other, BuildOptions{}); err == nil {
		t.Fatal("mismatched network accepted")
	}
}

func TestLoadRejectsSemanticMismatch(t *testing.T) {
	// Same vertex count, different network: colors can exceed out-degrees
	// or coverage can fail. Build an index on one network and load it
	// against a sparser one with the same vertex set.
	g := roadNet(t, 7, 7, 46)
	ix := buildIndex(t, g)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A chain over the same vertex positions: out-degrees drop to <= 2.
	b := graph.NewBuilder()
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.Point(graph.VertexID(v)))
	}
	for v := 0; v+1 < g.NumVertices(); v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), 0.01)
	}
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), chain, BuildOptions{}); err == nil {
		t.Fatal("index accepted against a structurally different network")
	}
}
