package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"silc/internal/graph"
	"silc/internal/sssp"
)

// Property-based tests (testing/quick) over randomly generated networks:
// the SILC invariants must hold for arbitrary seeds, sizes, and topologies.

// quickNet derives a random connected network from quick's raw inputs.
func quickNet(seedRaw int64, sizeRaw uint8, lattice bool) (*graph.Network, error) {
	if lattice {
		rows := 4 + int(sizeRaw%8)
		cols := 4 + int((sizeRaw/8)%8)
		return graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seedRaw})
	}
	n := 10 + int(sizeRaw%50)
	return graph.GenerateRandomConnected(n, n/2, 0.5, seedRaw)
}

func TestQuickIntervalContainment(t *testing.T) {
	f := func(seedRaw int64, sizeRaw uint8, lattice bool) bool {
		g, err := quickNet(seedRaw, sizeRaw, lattice)
		if err != nil {
			return false
		}
		ix, err := Build(g, BuildOptions{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seedRaw ^ 0x5a5a))
		src := graph.VertexID(rng.Intn(g.NumVertices()))
		tree := sssp.Dijkstra(g, src)
		for v := 0; v < g.NumVertices(); v++ {
			iv := ix.DistanceInterval(src, graph.VertexID(v))
			d := tree.Dist[v]
			if src == graph.VertexID(v) {
				d = 0
			}
			if iv.Lo > d+1e-9 || iv.Hi < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRefinementNeverWidensAndConverges(t *testing.T) {
	f := func(seedRaw int64, sizeRaw uint8, lattice bool) bool {
		g, err := quickNet(seedRaw, sizeRaw, lattice)
		if err != nil {
			return false
		}
		ix, err := Build(g, BuildOptions{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seedRaw ^ 0x3c3c))
		for trial := 0; trial < 5; trial++ {
			s := graph.VertexID(rng.Intn(g.NumVertices()))
			d := graph.VertexID(rng.Intn(g.NumVertices()))
			want := sssp.ShortestPath(g, s, d).Dist
			if s == d {
				want = 0
			}
			r := ix.NewRefiner(s, d)
			prev := r.Interval()
			steps := 0
			for !r.Done() {
				r.Step()
				cur := r.Interval()
				if cur.Lo < prev.Lo-1e-9 || cur.Hi > prev.Hi+1e-9 {
					return false
				}
				prev = cur
				if steps++; steps > g.NumVertices() {
					return false
				}
			}
			if math.Abs(r.Interval().Lo-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathOptimality(t *testing.T) {
	f := func(seedRaw int64, sizeRaw uint8, lattice bool) bool {
		g, err := quickNet(seedRaw, sizeRaw, lattice)
		if err != nil {
			return false
		}
		ix, err := Build(g, BuildOptions{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seedRaw ^ 0x7e7e))
		for trial := 0; trial < 5; trial++ {
			s := graph.VertexID(rng.Intn(g.NumVertices()))
			d := graph.VertexID(rng.Intn(g.NumVertices()))
			path := ix.Path(s, d)
			if path[0] != s || path[len(path)-1] != d {
				return false
			}
			if s == d {
				continue
			}
			want := sssp.ShortestPath(g, s, d).Dist
			if math.Abs(sssp.PathWeight(g, path)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSerializationIdentity(t *testing.T) {
	f := func(seedRaw int64, sizeRaw uint8) bool {
		g, err := quickNet(seedRaw, sizeRaw, true)
		if err != nil {
			return false
		}
		ix, err := Build(g, BuildOptions{})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return false
		}
		back, err := Load(bytes.NewReader(buf.Bytes()), g, BuildOptions{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seedRaw ^ 0x1111))
		for trial := 0; trial < 10; trial++ {
			u := graph.VertexID(rng.Intn(g.NumVertices()))
			v := graph.VertexID(rng.Intn(g.NumVertices()))
			if ix.DistanceInterval(u, v) != back.DistanceInterval(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
