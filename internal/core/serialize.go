package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/quadtree"
	"silc/internal/store"
)

// The index file format is little-endian binary:
//
//	magic   "SILCIDX1"                     8 bytes
//	n       uint32   vertex count
//	radius  float64  proximity bound (0 = unbounded)
//	counts  uint32 x n                     per-vertex block counts
//	blocks  16 bytes x total               all blocks, vertex-major
//	crc     uint32   CRC-32 (IEEE) of everything above
//
// Each block entry is the documented 16-byte disk layout:
//
//	code    uint32   Morton code (2 x 16 bits)
//	level   uint8
//	color   uint8    first-hop adjacency index (outdegree < 256)
//	pad     uint16   zero
//	lamLo   float32
//	lamHi   float32
//
// The network itself is serialized separately (graph.Write); an index file
// is only meaningful alongside the network it was built from, which Load
// cross-checks structurally.

var indexMagic = [8]byte{'S', 'I', 'L', 'C', 'I', 'D', 'X', '1'}

const blockEntrySize = quadtree.EncodedSizeBytes

// treeFor resolves one vertex's quadtree for serialization: directly for a
// memory-resident index, through the paged source (untracked) for a
// disk-backed one.
func (ix *Index) treeFor(v graph.VertexID) (*quadtree.Tree, error) {
	if ix.src == nil {
		return &ix.trees[v], nil
	}
	return ix.src.Tree(nil, v)
}

// pagedSource assembles the store.Source for serializing this index. Tree
// failures (an unreadable page behind a disk-backed index) are recorded in
// *treeErr, which the caller must check after the write/plan completes.
func (ix *Index) pagedSource(treeErr *error) store.Source {
	return store.Source{
		Graph:       ix.g,
		Radius:      ix.radius,
		Lenient:     ix.lenient,
		Compression: ix.comp,
		Tree: func(v graph.VertexID) *quadtree.Tree {
			t, err := ix.treeFor(v)
			if err != nil {
				if *treeErr == nil {
					*treeErr = err
				}
				return &quadtree.Tree{MinLambda: 1}
			}
			return t
		},
	}
}

// WritePaged serializes the index in the page-aligned on-disk format of
// internal/store — the format OpenIndex / store.Open reads back with demand
// paging. The network is embedded, so the image is self-contained. The
// block-page encoding follows BuildOptions.Compression (or, for an index
// opened from a paged image, that image's encoding).
func (ix *Index) WritePaged(w io.Writer) (int64, error) {
	var treeErr error
	written, err := store.Write(w, ix.pagedSource(&treeErr))
	if treeErr != nil {
		return written, treeErr
	}
	return written, err
}

// PlanPaged lays out the paged image WritePaged would produce without
// writing it: the plan reports per-section sizes and the compression ratio
// (ImagePlan.Info) and can then be streamed once with WriteTo. The sharded
// writer and silcbuild's size table both build on this.
func (ix *Index) PlanPaged() (*store.ImagePlan, error) {
	var treeErr error
	p, err := store.PlanImage(ix.pagedSource(&treeErr))
	if treeErr != nil {
		return nil, treeErr
	}
	return p, err
}

// WriteFile writes the paged on-disk format to path — the one-call "make
// this index disk-resident" step. The file is fsynced before close so a
// crash cannot leave a torn image behind a successful return.
func (ix *Index) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WritePaged(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTo serializes the index. It returns an error if any vertex has an
// out-degree above 255 (the disk format's color width).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: newCRCWriter(w)}
	bw := bufio.NewWriter(cw)

	if _, err := bw.Write(indexMagic[:]); err != nil {
		return cw.n, err
	}
	n := ix.g.NumVertices()
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(n))
	if _, err := bw.Write(u32[:]); err != nil {
		return cw.n, err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], math.Float64bits(ix.radius))
	if _, err := bw.Write(u64[:]); err != nil {
		return cw.n, err
	}
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint32(u32[:], uint32(ix.BlockCount(graph.VertexID(v))))
		if _, err := bw.Write(u32[:]); err != nil {
			return cw.n, err
		}
	}
	var entry [blockEntrySize]byte
	for v := 0; v < n; v++ {
		t, err := ix.treeFor(graph.VertexID(v))
		if err != nil {
			return cw.n, err
		}
		for _, b := range t.Blocks {
			if b.Color < 0 || b.Color > 255 {
				return cw.n, fmt.Errorf("core: vertex %d color %d exceeds the disk format's 8-bit width", v, b.Color)
			}
			binary.LittleEndian.PutUint32(entry[0:4], uint32(b.Cell.Code))
			entry[4] = byte(b.Cell.Level)
			entry[5] = byte(b.Color)
			entry[6], entry[7] = 0, 0
			binary.LittleEndian.PutUint32(entry[8:12], math.Float32bits(b.LamLo))
			binary.LittleEndian.PutUint32(entry[12:16], math.Float32bits(b.LamHi))
			if _, err := bw.Write(entry[:]); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Trailer: CRC of everything written so far.
	crc := cw.w.(*crcWriter).sum()
	binary.LittleEndian.PutUint32(u32[:], crc)
	if _, err := w.Write(u32[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// Load deserializes an index previously produced by WriteTo and binds it to
// g, which must be the network the index was built from. Structural
// mismatches (vertex count, block colors beyond out-degrees, uncovered
// vertices) and corruption (CRC) are detected; semantic equality with the
// original network beyond that is the caller's responsibility.
func Load(r io.Reader, g *graph.Network, opts BuildOptions) (*Index, error) {
	cr := newCRCReader(bufio.NewReader(r))

	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic[:])
	}
	var u32 [4]byte
	if _, err := io.ReadFull(cr, u32[:]); err != nil {
		return nil, fmt.Errorf("core: reading vertex count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(u32[:]))
	if n != g.NumVertices() {
		return nil, fmt.Errorf("core: index has %d vertices, network has %d", n, g.NumVertices())
	}
	var u64 [8]byte
	if _, err := io.ReadFull(cr, u64[:]); err != nil {
		return nil, fmt.Errorf("core: reading proximity radius: %w", err)
	}
	radius := math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
	if math.IsNaN(radius) || radius < 0 {
		return nil, fmt.Errorf("core: invalid proximity radius %v", radius)
	}
	counts := make([]uint32, n)
	for v := range counts {
		if _, err := io.ReadFull(cr, u32[:]); err != nil {
			return nil, fmt.Errorf("core: reading block count %d: %w", v, err)
		}
		counts[v] = binary.LittleEndian.Uint32(u32[:])
		// Every quadtree block contains at least one colored vertex, so no
		// vertex can own n or more blocks — and a corrupt count must fail
		// here rather than drive a giant allocation below.
		if counts[v] >= uint32(n) {
			return nil, fmt.Errorf("core: vertex %d records %d blocks, impossible for %d vertices", v, counts[v], n)
		}
	}
	trees := make([]quadtree.Tree, n)
	var entry [blockEntrySize]byte
	for v := 0; v < n; v++ {
		deg := g.Degree(graph.VertexID(v))
		t := &quadtree.Tree{
			Blocks:    make([]quadtree.Block, counts[v]),
			MinLambda: math.Inf(1),
		}
		var prevEnd uint64
		for i := range t.Blocks {
			if _, err := io.ReadFull(cr, entry[:]); err != nil {
				return nil, fmt.Errorf("core: reading block %d of vertex %d: %w", i, v, err)
			}
			b := &t.Blocks[i]
			b.Cell.Code = geom.Code(binary.LittleEndian.Uint32(entry[0:4]))
			b.Cell.Level = entry[4]
			b.Color = int32(entry[5])
			b.LamLo = math.Float32frombits(binary.LittleEndian.Uint32(entry[8:12]))
			b.LamHi = math.Float32frombits(binary.LittleEndian.Uint32(entry[12:16]))
			if b.Cell.Level > geom.MaxLevel {
				return nil, fmt.Errorf("core: vertex %d block %d has level %d", v, i, b.Cell.Level)
			}
			if int(b.Color) >= deg {
				return nil, fmt.Errorf("core: vertex %d block %d color %d exceeds out-degree %d", v, i, b.Color, deg)
			}
			if uint64(b.Cell.Code) < prevEnd {
				return nil, fmt.Errorf("core: vertex %d blocks not sorted/disjoint at %d", v, i)
			}
			prevEnd = uint64(b.Cell.End())
			if float64(b.LamLo) < t.MinLambda {
				t.MinLambda = float64(b.LamLo)
			}
		}
		if len(t.Blocks) == 0 {
			t.MinLambda = 1
		}
		t.Seal()
		trees[v] = *t
	}
	computed := cr.sum()
	if _, err := io.ReadFull(cr.r, u32[:]); err != nil {
		return nil, fmt.Errorf("core: reading checksum: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(u32[:]); stored != computed {
		return nil, fmt.Errorf("core: checksum mismatch: stored %08x computed %08x", stored, computed)
	}

	ix := &Index{g: g, trees: trees, radius: radius, lenient: opts.AllowUnreachable, comp: opts.Compression}
	ix.stats = BuildStats{Vertices: n, Edges: g.NumEdges(), MinBlocks: math.MaxInt}
	for v := 0; v < n; v++ {
		b := trees[v].NumBlocks()
		ix.stats.TotalBlocks += int64(b)
		if b < ix.stats.MinBlocks {
			ix.stats.MinBlocks = b
		}
		if b > ix.stats.MaxBlocks {
			ix.stats.MaxBlocks = b
		}
	}
	ix.stats.TotalBytes = ix.stats.TotalBlocks * quadtree.EncodedSizeBytes
	// Coverage check: every other vertex must fall inside some block of
	// vertex 0's tree. Proximity-bounded and lenient (AllowUnreachable)
	// indexes legitimately leave vertices uncovered, so the check applies to
	// strict unbounded indexes only.
	if n > 1 && radius == 0 && !opts.AllowUnreachable {
		for _, w := range g.MortonOrder() {
			if w == 0 {
				continue
			}
			if _, ok := trees[0].Find(g.Code(w)); !ok {
				return nil, fmt.Errorf("core: loaded index does not cover vertex %d from vertex 0", w)
			}
		}
	}
	if opts.DiskResident {
		fraction := opts.CacheFraction
		if fraction <= 0 {
			fraction = 0.05
		}
		ix.attachTracker(fraction, opts.MissLatency)
	}
	return ix, nil
}

// crcWriter/crcReader thread a CRC-32 through the stream.

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func newCRCWriter(w io.Writer) io.Writer { return &crcWriter{w: w} }

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcWriter) sum() uint32 { return c.crc }

type crcReader struct {
	r   io.Reader
	crc uint32
}

func newCRCReader(r io.Reader) *crcReader { return &crcReader{r: r} }

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcReader) sum() uint32 { return c.crc }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
