package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"silc/internal/graph"
)

// fuzzNetwork is the fixed small network every FuzzLoadIndex input is
// loaded against (Load validates structure relative to a network).
func fuzzNetwork(tb testing.TB) *graph.Network {
	tb.Helper()
	g, err := graph.GenerateGrid(4, 4)
	if err != nil {
		tb.Fatalf("grid: %v", err)
	}
	return g
}

// loadIndexSeeds produces the checked-in seed corpus: a valid index
// stream, truncations at every section, a bit flip, and an empty input.
func loadIndexSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	g := fuzzNetwork(tb)
	ix, err := Build(g, BuildOptions{})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		tb.Fatalf("write: %v", err)
	}
	valid := buf.Bytes()
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	badCount := append([]byte(nil), valid...)
	badCount[21] = 0xFF // inflate a block count
	return [][]byte{
		valid,
		valid[:8],              // magic only
		valid[:20],             // through the radius
		valid[:len(valid)/2],   // mid-blocks
		valid[:len(valid)-2],   // missing checksum tail
		flip,                   // CRC-detectable corruption
		badCount,               // structural corruption
		{},                     // empty
		[]byte("SILCIDX1junk"), // magic then garbage
	}
}

// FuzzLoadIndex feeds corrupted and truncated byte streams to the legacy
// index deserializer: every input must produce an index or an error —
// never a panic, however mangled the bytes.
func FuzzLoadIndex(f *testing.F) {
	for _, seed := range loadIndexSeeds(f) {
		f.Add(seed)
	}
	g := fuzzNetwork(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(bytes.NewReader(data), g, BuildOptions{})
		if err == nil && ix == nil {
			t.Fatal("nil index without error")
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz when SILC_GEN_CORPUS=1 — run it after changing the format
// so the committed seeds track it.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SILC_GEN_CORPUS") == "" {
		t.Skip("set SILC_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadIndex")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range loadIndexSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
