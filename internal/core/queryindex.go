package core

import (
	"math"

	"silc/internal/diskio"
	"silc/internal/geom"
	"silc/internal/graph"
)

// DistanceRefiner is the progressive-refinement surface generic query
// algorithms consume: a network-distance interval that tightens step by step
// toward the exact value. *Refiner implements it for the monolithic index;
// the partition subsystem implements it by racing candidate routes through
// the boundary closure.
type DistanceRefiner interface {
	// Interval returns the current interval, guaranteed to contain the true
	// network distance.
	Interval() Interval
	// Step refines once; it returns false when no further tightening is
	// possible (exact, or out of range).
	Step() bool
	// Done reports whether the interval is exact.
	Done() bool
	// OutOfRange reports whether the destination is beyond reach (proximity
	// bound, or unreachable on a lenient index); the interval then cannot
	// improve.
	OutOfRange() bool
}

// QueryIndex is the query-time surface the kNN algorithms (and every other
// generic consumer) need from a network-distance index. Both the monolithic
// *Index and the sharded partition index implement it, so one set of query
// algorithms serves both.
type QueryIndex interface {
	// Network returns the indexed network (for the sharded index, the full
	// global network).
	Network() *graph.Network
	// Tracker returns the paged-storage tracker, nil for memory-resident
	// indexes. Sharded indexes expose one tracker shared by all cells.
	Tracker() *diskio.Tracker
	// Refine starts progressive refinement for (src, dst), charging every
	// page access to qc (nil = untracked).
	Refine(qc *QueryContext, src, dst graph.VertexID) DistanceRefiner
	// RegionLowerBoundCtx returns a lower bound on the network distance from
	// q to any vertex inside rect. qc carries per-query routing state for
	// implementations that need it; the monolithic index ignores it.
	RegionLowerBoundCtx(qc *QueryContext, q graph.VertexID, rect geom.Rect) float64
}

var _ QueryIndex = (*Index)(nil)
var _ DistanceRefiner = (*Refiner)(nil)

// Refine implements QueryIndex.
func (ix *Index) Refine(qc *QueryContext, src, dst graph.VertexID) DistanceRefiner {
	return ix.NewRefinerCtx(qc, src, dst)
}

// RegionLowerBoundCtx implements QueryIndex. On a memory-resident index the
// walk touches no paged blocks; a disk-backed index materializes q's
// quadtree through qc first.
func (ix *Index) RegionLowerBoundCtx(qc *QueryContext, q graph.VertexID, rect geom.Rect) float64 {
	return ix.regionLowerBound(qc, q, rect)
}

// ExactDistance fully refines (src, dst) on any QueryIndex and returns the
// exact network distance (+Inf when dst is out of range or unreachable).
// When qc carries a cancelled context the loop stops early and the current
// lower bound is returned; callers surfacing errors check qc.Err after.
func ExactDistance(ix QueryIndex, qc *QueryContext, src, dst graph.VertexID) float64 {
	r := ix.Refine(qc, src, dst)
	for !r.Done() {
		if qc.Err() != nil {
			break
		}
		if !r.Step() {
			break
		}
	}
	if r.OutOfRange() {
		return math.Inf(1)
	}
	return r.Interval().Lo
}
