// Package core implements the SILC framework, the paper's primary
// contribution: precomputed all-pairs shortest paths stored as one
// shortest-path quadtree per source vertex, queried through network-distance
// intervals that refine progressively toward exact distances and paths.
//
// Building runs one Dijkstra per vertex (parallelized over sources — the
// paper: "easily parallelizable, data parallelism") and encodes each
// shortest-path tree as colored Morton blocks carrying (λ⁻, λ⁺) ratio
// bounds. A query never touches the graph again: a block lookup yields an
// interval, one refinement advances one hop along the encoded path, and
// full refinement reproduces the exact shortest path in size-of-path steps.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"silc/internal/diskio"
	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/obs"
	"silc/internal/quadtree"
	"silc/internal/sssp"
	"silc/internal/store"
)

// Interval is a closed network-distance interval [Lo, Hi] guaranteed to
// contain the true network distance.
type Interval struct {
	Lo, Hi float64
}

// Exact reports whether the interval has collapsed to a point (within
// floating-point noise).
func (iv Interval) Exact() bool { return iv.Hi-iv.Lo <= exactEps*(1+iv.Hi) }

// Intersects reports whether two intervals overlap — the paper's "collision"
// test between candidate neighbors.
func (iv Interval) Intersects(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// intersect tightens iv by o; both must contain the true value, so the
// intersection is non-empty up to floating-point noise, which is clamped.
func (iv Interval) intersect(o Interval) Interval {
	out := Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
	if out.Lo > out.Hi {
		mid := (out.Lo + out.Hi) / 2
		out.Lo, out.Hi = mid, mid
	}
	return out
}

const exactEps = 1e-12

// BuildOptions configures Build.
type BuildOptions struct {
	// Parallelism is the number of concurrent build workers; 0 means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// DiskResident attaches a paged-storage tracker so queries report
	// buffer-pool traffic and modeled I/O time.
	DiskResident bool
	// CacheFraction sizes the LRU pool as a fraction of total pages.
	// Default 0.05, the paper's setting. Only used when DiskResident.
	CacheFraction float64
	// MissLatency is the modeled cost per page miss; default
	// diskio.DefaultMissLatency (200µs, a buffered 4KiB read).
	MissLatency time.Duration
	// ProximityRadius, when positive, bounds each shortest-path quadtree to
	// the vertices within that network distance of its source — the paper's
	// location-based-services approximation ("shortest-path quadtree on
	// proximal vertices only"). Queries between vertices farther apart than
	// the radius report the interval [radius, +Inf) and cannot be refined;
	// Distance returns +Inf and Path returns nil for them. Proximity-bounded
	// builds accept disconnected networks (unreachable = out of range).
	ProximityRadius float64
	// Compression selects the block-page encoding WritePaged/WriteFile emit:
	// CompressionNone writes the fixed-width 16-byte entries (SILCPG1),
	// CompressionDelta writes delta+varint run streams (SILCPG2), typically
	// over 2x smaller. Either format reads back identically; the knob only
	// changes the image, never query answers.
	Compression store.Compression
	// AllowUnreachable accepts networks that are not strongly connected:
	// unreachable destinations are colored out-of-range instead of failing
	// the build, and queries against them report the interval [+Inf, +Inf]
	// (Distance +Inf, Path nil). The partition subsystem builds its per-cell
	// indexes this way — a cell's induced subgraph need not be strongly
	// connected even when the full network is; cross-cell routing restores
	// reachability through the boundary closure.
	AllowUnreachable bool
}

// BuildStats describes a completed build.
type BuildStats struct {
	Vertices    int
	Edges       int
	TotalBlocks int64 // Morton blocks across all vertices (the paper's unit)
	TotalBytes  int64 // TotalBlocks * 16 in the disk layout
	MinBlocks   int   // smallest per-vertex quadtree
	MaxBlocks   int   // largest per-vertex quadtree
	BuildTime   time.Duration
}

// BlocksPerVertex returns the mean quadtree size.
func (s BuildStats) BlocksPerVertex() float64 {
	if s.Vertices == 0 {
		return 0
	}
	return float64(s.TotalBlocks) / float64(s.Vertices)
}

// QueryContext carries the per-query mutable state of one logical query:
// the buffer-pool traffic counter, the cancellation signal, and whatever
// else a query accumulates. Each context is owned by exactly one goroutine;
// the index itself stays read-only on the query path, which is what makes
// every Index — including DiskResident ones — safe for unlimited concurrent
// readers. A nil *QueryContext is valid everywhere and means "untracked,
// uncancellable": the shared pool is still charged, but no per-query
// attribution happens.
type QueryContext struct {
	// IO counts the buffer-pool traffic this query caused.
	IO diskio.Stats
	// Span is the per-query trace record: refinement/lookup/heap-push
	// counters incremented inline by the query algorithms and folded
	// into engine-level aggregates when the context is released. Like
	// IO it is zeroed (not preserved) by ResetForReuse; the engine
	// layer stamps Begin/Op/Timed right after acquiring a context.
	Span obs.Span
	// Route is a per-query cache slot owned by whichever index implementation
	// the query runs against. The partition subsystem stores its per-source
	// gateway closure here, so one kNN query amortizes the boundary-distance
	// work across all the objects it inspects. Monolithic indexes leave it
	// nil. The slot survives ResetForReuse: implementations detect the stale
	// key and rebuild in place, reusing the allocation.
	Route any
	// Scratch is a per-query scratch slot owned by the query algorithm layer
	// (internal/knn stores its search arena here). Like Route it survives
	// ResetForReuse so a pooled context carries its warmed-up scratch from
	// query to query.
	Scratch any
	// ctx carries the request's cancellation/deadline signal; nil means the
	// query is uncancellable (background work, legacy call sites).
	ctx context.Context
	// ioErr is the sticky storage-level failure of this query (a corrupt or
	// unreadable page on a disk-backed index). Once set, Err reports it and
	// every query algorithm winds down within one step, exactly like a
	// cancellation.
	ioErr error
	// refiners is the per-query refiner slab: NewRefinerCtx hands out slab
	// slots instead of heap-allocating one Refiner per inspected object, and
	// ResetForReuse recycles the whole slab at once. Refiners stay valid for
	// the lifetime of the query they were created under.
	refiners refinerSlab
	// gen counts ResetForReuse calls. Route/Scratch owners compare it against
	// the generation they last saw to learn that a query boundary passed and
	// their own per-query sub-allocations (e.g. the partition layer's
	// route-refiner slab) are safe to recycle.
	gen uint64
}

// Gen returns the context's reuse generation; it changes on every
// ResetForReuse.
func (qc *QueryContext) Gen() uint64 { return qc.gen }

// refinerSlab is a free-list of heap-stable *Refiner. Pointers are handed
// out in order and recycled en masse by reset, so a pooled QueryContext
// allocates refiners only while growing past its high-water mark.
type refinerSlab struct {
	items []*Refiner
	next  int
}

func (s *refinerSlab) get() *Refiner {
	if s.next == len(s.items) {
		s.items = append(s.items, new(Refiner))
	}
	r := s.items[s.next]
	s.next++
	return r
}

func (s *refinerSlab) reset() {
	for _, r := range s.items[:s.next] {
		*r = Refiner{} // drop ix/qc references so a pooled slab pins nothing
	}
	s.next = 0
}

// ResetForReuse returns the context to its fresh state while keeping every
// reusable allocation (the refiner slab and the Route/Scratch arenas), then
// binds it to ctx. It must only be called once no refiner, iterator, or
// cursor created under the previous query is live — the Engine layer's
// query-context pool guarantees that by recycling only after the query's
// last exit point.
func (qc *QueryContext) ResetForReuse(ctx context.Context) {
	qc.IO = diskio.Stats{}
	qc.Span = obs.Span{}
	qc.ioErr = nil
	qc.refiners.reset()
	qc.gen++
	qc.ctx = nil
	if ctx != nil && ctx != context.Background() {
		qc.ctx = ctx
	}
}

// NewQueryContext returns a fresh, uncancellable per-query context.
func NewQueryContext() *QueryContext { return &QueryContext{} }

// NewQueryContextFor returns a per-query context bound to ctx: the query
// algorithms check Err at every refinement step, so cancelling ctx stops an
// in-flight query within one step. context.Background() (or nil) yields an
// uncancellable context identical to NewQueryContext.
func NewQueryContextFor(ctx context.Context) *QueryContext {
	qc := &QueryContext{}
	if ctx != nil && ctx != context.Background() {
		qc.ctx = ctx
	}
	return qc
}

// Context returns the request context the query is bound to —
// context.Background for an unbound (or nil) query context. Remote index
// backends use it to scope their RPCs to the request's deadline.
func (qc *QueryContext) Context() context.Context {
	if qc == nil || qc.ctx == nil {
		return context.Background()
	}
	return qc.ctx
}

// Err reports why the query must stop — a recorded storage failure first,
// then the bound context's cancellation error — or nil while the query may
// continue. It is nil-safe: a nil QueryContext never cancels.
func (qc *QueryContext) Err() error {
	if qc == nil {
		return nil
	}
	if qc.ioErr != nil {
		return qc.ioErr
	}
	if qc.ctx == nil {
		return nil
	}
	return qc.ctx.Err()
}

// Fail records a storage-level failure (the first one wins). Queries that
// run without a context — the deprecated pre-Engine surface — have no error
// channel, so a nil receiver panics with the error instead of silently
// returning wrong answers from a corrupt store.
func (qc *QueryContext) Fail(err error) {
	if qc == nil {
		panic(err)
	}
	if qc.ioErr == nil {
		qc.ioErr = err
	}
}

// Failed reports whether a storage-level failure has been recorded.
func (qc *QueryContext) Failed() bool { return qc != nil && qc.ioErr != nil }

// ioCounter returns the per-query counter to charge, nil when untracked.
func (qc *QueryContext) ioCounter() *diskio.Stats {
	if qc == nil {
		return nil
	}
	return &qc.IO
}

// TreeSource supplies per-vertex shortest-path quadtrees to a disk-backed
// Index. Tree materializes v's quadtree — lazily, through a buffer pool of
// real pages — charging any page traffic to ioStats (nil = untracked) and
// returning an error for unreadable or corrupt storage. Implementations
// must be safe for unlimited concurrent callers; internal/store.Store is
// the canonical one.
type TreeSource interface {
	Tree(ioStats *diskio.Stats, v graph.VertexID) (*quadtree.Tree, error)
	BlockCount(v graph.VertexID) int
}

// Index is a SILC index over one spatial network. The query path never
// mutates the Index: per-query state lives in a QueryContext and the
// buffer pool is sharded, so any number of goroutines may query one shared
// Index concurrently.
type Index struct {
	g *graph.Network
	// Exactly one of trees/src is set: trees holds the memory-resident
	// quadtrees, src pages them in lazily from a disk store.
	trees []quadtree.Tree // indexed by source vertex; by value so the
	// per-lookup header load walks one contiguous array instead of chasing
	// a pointer per tree
	src     TreeSource
	tracker *diskio.Tracker
	// ownerBase offsets this index's vertex ids inside a shared tracker's
	// block layout (see AttachSharedTracker); 0 for a private tracker.
	ownerBase int
	radius    float64 // 0 = unbounded
	lenient   bool    // AllowUnreachable: misses mean unreachable, not corrupt
	comp      store.Compression
	stats     BuildStats
}

// PagedConfig assembles a disk-backed Index from an opened paged store.
type PagedConfig struct {
	Graph   *graph.Network
	Source  TreeSource
	Tracker *diskio.Tracker
	Radius  float64
	Lenient bool
	// Compression records the block-page encoding of the backing image, so
	// re-serializing the opened index preserves its format.
	Compression store.Compression
	Stats       BuildStats
}

// NewPagedIndex returns an Index whose quadtrees live on disk behind cfg's
// TreeSource. It answers exactly the same query surface as a built index;
// storage failures surface through QueryContext.Err (or panic on the
// context-free deprecated surface).
func NewPagedIndex(cfg PagedConfig) *Index {
	return &Index{
		g:       cfg.Graph,
		src:     cfg.Source,
		tracker: cfg.Tracker,
		radius:  cfg.Radius,
		lenient: cfg.Lenient,
		comp:    cfg.Compression,
		stats:   cfg.Stats,
	}
}

// treeOf resolves v's quadtree from memory or the paged source, recording
// source failures on qc.
func (ix *Index) treeOf(qc *QueryContext, v graph.VertexID) (*quadtree.Tree, bool) {
	if ix.src == nil {
		return &ix.trees[v], true
	}
	t, err := ix.src.Tree(qc.ioCounter(), v)
	if err != nil {
		qc.Fail(err) // panics when qc is nil: no error channel
		return nil, false
	}
	return t, true
}

// Build precomputes the SILC index for g. It returns an error if the network
// is not strongly connected (every shortest-path quadtree must color every
// vertex), unless a ProximityRadius bounds the build, in which case
// unreachable vertices are simply out of range.
func Build(g *graph.Network, opts BuildOptions) (*Index, error) {
	start := time.Now()
	n := g.NumVertices()
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	order := g.MortonOrder()
	codes := make([]geom.Code, n)
	for i, v := range order {
		codes[i] = g.Code(v)
	}
	qb := quadtree.NewBuilder(codes) // read-only after construction; shared

	trees := make([]quadtree.Tree, n)
	errs := make([]error, workers)
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sssp.NewWorkspace(n)
			colors := make([]int32, n)
			ratios := make([]float64, n)
			for {
				mu.Lock()
				src := next
				next++
				mu.Unlock()
				if src >= int64(n) {
					return
				}
				source := graph.VertexID(src)
				tree := ws.Run(g, source)
				for i, v := range order {
					if v == source {
						colors[i] = quadtree.NoColor
						ratios[i] = 0
						continue
					}
					if opts.ProximityRadius > 0 && tree.Dist[v] > opts.ProximityRadius {
						colors[i] = quadtree.OutOfRange
						ratios[i] = 0
						continue
					}
					if math.IsInf(tree.Dist[v], 1) {
						if opts.AllowUnreachable {
							colors[i] = quadtree.OutOfRange
							ratios[i] = 0
							continue
						}
						errs[w] = fmt.Errorf("core: vertex %d unreachable from %d; SILC requires a strongly connected network", v, source)
						return
					}
					colors[i] = int32(g.NeighborIndex(source, tree.FirstHop[v]))
					ratios[i] = tree.Dist[v] / g.Euclid(source, v)
				}
				trees[source] = *qb.Build(colors, ratios)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ix := &Index{g: g, trees: trees, radius: opts.ProximityRadius, lenient: opts.AllowUnreachable, comp: opts.Compression}
	ix.stats = BuildStats{
		Vertices:  n,
		Edges:     g.NumEdges(),
		MinBlocks: math.MaxInt,
		BuildTime: time.Since(start),
	}
	for i := range trees {
		b := trees[i].NumBlocks()
		ix.stats.TotalBlocks += int64(b)
		if b < ix.stats.MinBlocks {
			ix.stats.MinBlocks = b
		}
		if b > ix.stats.MaxBlocks {
			ix.stats.MaxBlocks = b
		}
	}
	ix.stats.TotalBytes = ix.stats.TotalBlocks * quadtree.EncodedSizeBytes

	if opts.DiskResident {
		fraction := opts.CacheFraction
		if fraction <= 0 {
			fraction = 0.05
		}
		ix.attachTracker(fraction, opts.MissLatency)
	}
	return ix, nil
}

func (ix *Index) attachTracker(fraction float64, latency time.Duration) {
	n := ix.g.NumVertices()
	blockCounts := make([]int, n)
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		blockCounts[v] = ix.trees[v].NumBlocks()
		degrees[v] = ix.g.Degree(graph.VertexID(v))
	}
	ix.tracker = diskio.NewTracker(blockCounts, degrees, fraction, latency)
}

// AttachSharedTracker binds the index to an externally built paged-storage
// tracker whose block layout spans several indexes (the partition subsystem
// keeps one global buffer pool across all cell indexes so the paper's 5%
// cache fraction stays a property of the whole database). ownerBase is this
// index's first owner slot in the shared block layout: local vertex v's
// blocks live at owner ownerBase+v.
func (ix *Index) AttachSharedTracker(t *diskio.Tracker, ownerBase int) {
	ix.tracker = t
	ix.ownerBase = ownerBase
}

// Network returns the indexed network.
func (ix *Index) Network() *graph.Network { return ix.g }

// Stats returns the build statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Tracker returns the paged-storage tracker, or nil for in-memory indexes.
func (ix *Index) Tracker() *diskio.Tracker { return ix.tracker }

// Radius returns the proximity bound of the index (0 when unbounded).
func (ix *Index) Radius() float64 { return ix.radius }

// Compression returns the block-page encoding WritePaged will emit — for a
// paged index, the encoding of the image it was opened from.
func (ix *Index) Compression() store.Compression { return ix.comp }

// BlockCount returns the Morton block count of v's shortest-path quadtree.
func (ix *Index) BlockCount(v graph.VertexID) int {
	if ix.src != nil {
		return ix.src.BlockCount(v)
	}
	return ix.trees[v].NumBlocks()
}

// lookup finds the block of tree[u] containing dst's cell and charges the
// page access to qc's counter (untracked when qc is nil). A false return
// with qc.Failed() set means the paged store failed, not that dst is
// uncovered.
func (ix *Index) lookup(qc *QueryContext, u, dst graph.VertexID) (quadtree.Block, bool) {
	t, ok := ix.treeOf(qc, u)
	if !ok {
		return quadtree.Block{}, false
	}
	i, ok := t.FindIndex(ix.g.Code(dst))
	if !ok {
		return quadtree.Block{}, false
	}
	if ix.src == nil {
		// The paged source already charged its real page traffic; only the
		// modeled layout charges per-block here.
		ix.tracker.TouchBlock(ix.ownerBase+int(u), i, qc.ioCounter())
	}
	return t.Blocks[i], true
}

// DistanceInterval returns the zero-refinement network-distance interval
// between u and v: one block lookup in u's quadtree.
func (ix *Index) DistanceInterval(u, v graph.VertexID) Interval {
	return ix.DistanceIntervalCtx(nil, u, v)
}

// DistanceIntervalCtx is DistanceInterval with per-query I/O attribution.
func (ix *Index) DistanceIntervalCtx(qc *QueryContext, u, v graph.VertexID) Interval {
	if u == v {
		return Interval{}
	}
	b, ok := ix.lookup(qc, u, v)
	if !ok {
		if qc.Failed() {
			// Storage failure: the error is on qc; [0, +Inf) stays true.
			return Interval{Lo: 0, Hi: math.Inf(1)}
		}
		return ix.missInterval(u, v)
	}
	e := ix.g.Euclid(u, v)
	return Interval{Lo: float64(b.LamLo) * e, Hi: float64(b.LamHi) * e}
}

// missInterval handles a lookup miss: beyond the proximity radius the true
// distance is known to exceed the radius; on a lenient (AllowUnreachable)
// index a miss means the destination is unreachable, so the interval is the
// point [+Inf, +Inf]; on an unbounded strict index a miss is a
// corrupted-index bug.
func (ix *Index) missInterval(u, v graph.VertexID) Interval {
	if ix.radius > 0 {
		return Interval{Lo: ix.radius, Hi: math.Inf(1)}
	}
	if ix.lenient {
		return Interval{Lo: math.Inf(1), Hi: math.Inf(1)}
	}
	panic(fmt.Sprintf("core: vertex %d not covered by quadtree of %d", v, u))
}

// NextHop returns the first vertex after u on the shortest path u→v.
// It returns graph.NoVertex when v lies beyond the proximity radius.
func (ix *Index) NextHop(u, v graph.VertexID) graph.VertexID {
	return ix.NextHopCtx(nil, u, v)
}

// NextHopCtx is NextHop with per-query I/O attribution.
func (ix *Index) NextHopCtx(qc *QueryContext, u, v graph.VertexID) graph.VertexID {
	if u == v {
		return v
	}
	b, ok := ix.lookup(qc, u, v)
	if !ok {
		if !qc.Failed() {
			ix.missInterval(u, v) // panics when the index is strict and unbounded
		}
		return graph.NoVertex
	}
	targets, _ := ix.g.Neighbors(u)
	return targets[b.Color]
}

// Path retrieves the exact shortest path from u to v (inclusive), one block
// lookup per hop — the paper's "entire shortest path in size-of-path steps".
// It returns nil when v lies beyond the proximity radius.
func (ix *Index) Path(u, v graph.VertexID) []graph.VertexID {
	return ix.PathCtx(nil, u, v)
}

// PathCtx is Path with per-query I/O attribution.
func (ix *Index) PathCtx(qc *QueryContext, u, v graph.VertexID) []graph.VertexID {
	path := []graph.VertexID{u}
	for cur := u; cur != v; {
		cur = ix.NextHopCtx(qc, cur, v)
		if cur == graph.NoVertex {
			return nil
		}
		path = append(path, cur)
	}
	return path
}

// Distance fully refines and returns the exact network distance.
// It returns +Inf when v lies beyond the proximity radius.
func (ix *Index) Distance(u, v graph.VertexID) float64 {
	return ix.DistanceCtx(nil, u, v)
}

// DistanceCtx is Distance with per-query I/O attribution.
func (ix *Index) DistanceCtx(qc *QueryContext, u, v graph.VertexID) float64 {
	r := ix.NewRefinerCtx(qc, u, v)
	for !r.Done() {
		if !r.Step() {
			break
		}
	}
	if r.OutOfRange() {
		return math.Inf(1)
	}
	return r.Interval().Lo
}

// RegionLowerBound returns a lower bound on the network distance from q to
// any vertex inside rect, using q's quadtree only (no graph access). This is
// the DISTANCE_INTERVAL(object, Region) primitive the kNN algorithm applies
// to blocks of the object index.
func (ix *Index) RegionLowerBound(q graph.VertexID, rect geom.Rect) float64 {
	return ix.regionLowerBound(nil, q, rect)
}

func (ix *Index) regionLowerBound(qc *QueryContext, q graph.VertexID, rect geom.Rect) float64 {
	if rect.Contains(ix.g.Point(q)) {
		return 0
	}
	t, ok := ix.treeOf(qc, q)
	if !ok {
		return 0 // storage failure recorded on qc; 0 is a valid lower bound
	}
	return t.RegionLowerBound(ix.g.Point(q), rect)
}

// Refiner carries the progressive-refinement state for one (src, dst) pair:
// the last committed intermediate vertex, the exact distance accumulated to
// it, and the current interval. Each Step advances one hop (one block
// lookup) and tightens the interval monotonically; after at most
// path-length steps the interval is exact.
type Refiner struct {
	ix         *Index
	qc         *QueryContext
	src, dst   graph.VertexID
	cur        graph.VertexID
	acc        float64
	color      int32 // color of the block containing dst in cur's quadtree
	iv         Interval
	steps      int
	done       bool
	outOfRange bool
	failed     bool // storage failure recorded on qc; no further stepping
}

// NewRefiner computes the zero-refinement interval and returns the
// refinement cursor for the pair.
func (ix *Index) NewRefiner(src, dst graph.VertexID) *Refiner {
	return ix.NewRefinerCtx(nil, src, dst)
}

// NewRefinerCtx is NewRefiner with per-query I/O attribution: every block
// lookup the cursor performs is charged to qc. With a non-nil qc the cursor
// comes from the context's refiner slab and stays valid until the context is
// recycled (ResetForReuse); context-free callers get a heap allocation.
func (ix *Index) NewRefinerCtx(qc *QueryContext, src, dst graph.VertexID) *Refiner {
	var r *Refiner
	if qc != nil {
		r = qc.refiners.get()
	} else {
		r = new(Refiner)
	}
	*r = Refiner{ix: ix, qc: qc, src: src, dst: dst, cur: src}
	if src == dst {
		r.done = true
		return r
	}
	b, ok := ix.lookup(qc, src, dst)
	if !ok {
		if qc.Failed() {
			r.iv = Interval{Lo: 0, Hi: math.Inf(1)}
			r.failed = true
			return r
		}
		r.iv = ix.missInterval(src, dst)
		r.outOfRange = true
		return r
	}
	e := ix.g.Euclid(src, dst)
	r.color = b.Color
	r.iv = Interval{Lo: float64(b.LamLo) * e, Hi: float64(b.LamHi) * e}
	return r
}

// Interval returns the current network-distance interval.
func (r *Refiner) Interval() Interval { return r.iv }

// Done reports whether the interval is exact (destination reached).
func (r *Refiner) Done() bool { return r.done }

// OutOfRange reports whether the destination lies beyond the index's
// proximity radius; the interval is then [radius, +Inf) and cannot improve.
func (r *Refiner) OutOfRange() bool { return r.outOfRange }

// Steps returns the number of refinement operations performed.
func (r *Refiner) Steps() int { return r.steps }

// Via returns the last committed intermediate vertex and the exact network
// distance from the source to it — the paper's observation that SILC always
// expresses the distance as exact-prefix + interval-suffix.
func (r *Refiner) Via() (graph.VertexID, float64) { return r.cur, r.acc }

// Step performs one refinement: advance one hop along the encoded shortest
// path and tighten the interval. It returns false once the interval is
// exact.
func (r *Refiner) Step() bool {
	if r.done || r.outOfRange || r.failed {
		return false
	}
	r.steps++
	if r.qc != nil {
		r.qc.Span.Refinements++
	}
	g := r.ix.g
	targets, weights := g.Neighbors(r.cur)
	next := targets[r.color]
	r.acc += weights[r.color]
	r.cur = next
	if next == r.dst {
		r.iv = r.iv.intersect(Interval{Lo: r.acc, Hi: r.acc})
		r.done = true
		return false
	}
	b, ok := r.ix.lookup(r.qc, next, r.dst)
	if !ok {
		if r.qc.Failed() {
			r.failed = true // error is on r.qc; the interval remains valid
			return false
		}
		panic(fmt.Sprintf("core: vertex %d not covered by quadtree of %d", r.dst, next))
	}
	r.color = b.Color
	e := g.Euclid(next, r.dst)
	r.iv = r.iv.intersect(Interval{
		Lo: r.acc + float64(b.LamLo)*e,
		Hi: r.acc + float64(b.LamHi)*e,
	})
	return true
}
