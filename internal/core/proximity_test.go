package core

import (
	"bytes"
	"math"
	"testing"

	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/sssp"
)

func buildProximal(t *testing.T, g *graph.Network, radius float64) *Index {
	t.Helper()
	ix, err := Build(g, BuildOptions{ProximityRadius: radius})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestProximalQueriesMatchUnboundedInRange(t *testing.T) {
	g := roadNet(t, 9, 9, 51)
	full := buildIndex(t, g)
	radius := 0.35
	prox := buildProximal(t, g, radius)

	if prox.Radius() != radius {
		t.Fatalf("Radius = %v", prox.Radius())
	}
	inRange, outRange := 0, 0
	for s := 0; s < g.NumVertices(); s += 5 {
		tree := sssp.Dijkstra(g, graph.VertexID(s))
		for v := 0; v < g.NumVertices(); v += 3 {
			ss, vv := graph.VertexID(s), graph.VertexID(v)
			d := tree.Dist[v]
			if ss == vv {
				continue
			}
			if d <= radius {
				inRange++
				if got := prox.Distance(ss, vv); math.Abs(got-d) > 1e-9 {
					t.Fatalf("in-range Distance(%d,%d)=%v want %v", s, v, got, d)
				}
				a, b := full.DistanceInterval(ss, vv), prox.DistanceInterval(ss, vv)
				// Proximal blocks may be finer (split around range borders),
				// so the interval can be tighter but must stay valid.
				if b.Lo > d+1e-9 || b.Hi < d-1e-9 {
					t.Fatalf("proximal interval [%v,%v] misses %v (full: %+v)", b.Lo, b.Hi, d, a)
				}
				path := prox.Path(ss, vv)
				if path == nil || math.Abs(sssp.PathWeight(g, path)-d) > 1e-9 {
					t.Fatalf("in-range Path(%d,%d) wrong", s, v)
				}
			} else {
				outRange++
				iv := prox.DistanceInterval(ss, vv)
				if iv.Lo != radius || !math.IsInf(iv.Hi, 1) {
					t.Fatalf("out-of-range interval = %+v", iv)
				}
				if !math.IsInf(prox.Distance(ss, vv), 1) {
					t.Fatalf("out-of-range Distance finite")
				}
				if prox.Path(ss, vv) != nil {
					t.Fatalf("out-of-range Path not nil")
				}
				if prox.NextHop(ss, vv) != graph.NoVertex {
					t.Fatalf("out-of-range NextHop not NoVertex")
				}
				r := prox.NewRefiner(ss, vv)
				if !r.OutOfRange() || r.Step() {
					t.Fatal("out-of-range refiner should be stuck")
				}
			}
		}
	}
	if inRange == 0 || outRange == 0 {
		t.Fatalf("radius %v did not split pairs (in=%d out=%d)", radius, inRange, outRange)
	}
}

func TestProximalReducesStorage(t *testing.T) {
	g := roadNet(t, 12, 12, 52)
	full := buildIndex(t, g)
	prox := buildProximal(t, g, 0.2)
	if prox.Stats().TotalBlocks >= full.Stats().TotalBlocks {
		t.Fatalf("proximal blocks %d not below full %d",
			prox.Stats().TotalBlocks, full.Stats().TotalBlocks)
	}
}

func TestProximalAcceptsDisconnected(t *testing.T) {
	b := graph.NewBuilder()
	u := b.AddVertex(geom.Point{X: 0.1, Y: 0.1})
	v := b.AddVertex(geom.Point{X: 0.15, Y: 0.1})
	w := b.AddVertex(geom.Point{X: 0.9, Y: 0.9}) // separate island
	x := b.AddVertex(geom.Point{X: 0.85, Y: 0.9})
	b.AddBiEdge(u, v, 0.06)
	b.AddBiEdge(w, x, 0.06)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, BuildOptions{}); err == nil {
		t.Fatal("unbounded build must reject disconnected networks")
	}
	ix, err := Build(g, BuildOptions{ProximityRadius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Distance(u, v); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("island-internal distance = %v", got)
	}
	if !math.IsInf(ix.Distance(u, w), 1) {
		t.Fatal("cross-island distance should be +Inf")
	}
}

func TestProximalSerializationPreservesRadius(t *testing.T) {
	g := roadNet(t, 8, 8, 53)
	prox := buildProximal(t, g, 0.3)
	var buf bytes.Buffer
	if _, err := prox.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), g, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Radius() != 0.3 {
		t.Fatalf("radius lost on reload: %v", back.Radius())
	}
	// Out-of-range behavior must survive the round trip.
	for s := 0; s < g.NumVertices(); s += 7 {
		for v := 0; v < g.NumVertices(); v += 5 {
			a := prox.DistanceInterval(graph.VertexID(s), graph.VertexID(v))
			b := back.DistanceInterval(graph.VertexID(s), graph.VertexID(v))
			if a != b {
				t.Fatalf("interval differs after reload for (%d,%d)", s, v)
			}
		}
	}
}

func TestProximalRegionLowerBoundStillValid(t *testing.T) {
	// Region bounds on a proximal tree cover only in-range vertices, which
	// is fine: bounds for farther vertices are handled by the [R, Inf)
	// interval. Here: the bound must never exceed the true distance of an
	// in-range vertex inside the rect.
	g := roadNet(t, 9, 9, 54)
	radius := 0.4
	prox := buildProximal(t, g, radius)
	q := graph.VertexID(2)
	tree := sssp.Dijkstra(g, q)
	rect := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	bound := prox.RegionLowerBound(q, rect)
	for v := 0; v < g.NumVertices(); v++ {
		vv := graph.VertexID(v)
		if vv == q || !rect.Contains(g.Point(vv)) || tree.Dist[v] > radius {
			continue
		}
		if bound > tree.Dist[v]+1e-9 {
			t.Fatalf("bound %v exceeds in-range dist(%d)=%v", bound, v, tree.Dist[v])
		}
	}
}
