// Package pmr implements the spatial index over the query-object set S: a
// bucket PR quadtree in the PMR style the paper uses. The index is decoupled
// from the network — the same object tree serves any SILC index, and object
// sets can change without touching precomputed shortest paths (the paper's
// decoupling argument).
package pmr

import (
	"math"

	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/pqueue"
)

// Object is one element of S. Objects live on network vertices (the case the
// paper's evaluation exercises); Pos caches the vertex position.
type Object struct {
	ID     int32
	Vertex graph.VertexID
	Pos    geom.Point
}

// DefaultBucketCapacity is the leaf split threshold.
const DefaultBucketCapacity = 8

// Tree is a bucket PR quadtree over objects.
type Tree struct {
	root     *Node
	capacity int
	size     int
}

// Node is one quadtree node. Exported read-only so search algorithms can
// drive their own best-first traversals.
type Node struct {
	cell     geom.Cell
	children *[4]*Node // nil for leaves
	objects  []Object  // leaf payload
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.children == nil }

// Cell returns the node's quadtree cell.
func (n *Node) Cell() geom.Cell { return n.cell }

// Rect returns the node's rectangle.
func (n *Node) Rect() geom.Rect { return n.cell.Rect() }

// Objects returns a leaf's objects (nil for interior nodes). The slice
// aliases internal storage and must not be modified.
func (n *Node) Objects() []Object { return n.objects }

// Children returns the four children of an interior node (entries may be
// nil) or nil for leaves.
func (n *Node) Children() []*Node {
	if n.children == nil {
		return nil
	}
	return n.children[:]
}

// New returns an empty tree with the given bucket capacity (0 selects
// DefaultBucketCapacity).
func New(capacity int) *Tree {
	if capacity <= 0 {
		capacity = DefaultBucketCapacity
	}
	return &Tree{root: &Node{cell: geom.RootCell()}, capacity: capacity}
}

// Len returns the number of stored objects.
func (t *Tree) Len() int { return t.size }

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Insert adds o to the tree.
func (t *Tree) Insert(o Object) {
	t.size++
	n := t.root
	for !n.IsLeaf() {
		n = n.childFor(o.Pos.Code())
	}
	n.objects = append(n.objects, o)
	// Split while over capacity; identical-cell objects stop at MaxLevel.
	for len(n.objects) > t.capacity && n.cell.Level < geom.MaxLevel {
		n.split()
		n = n.childFor(o.Pos.Code())
	}
}

func (n *Node) childFor(code geom.Code) *Node {
	span := geom.Span(n.cell.Level + 1)
	i := int((code - n.cell.Code) / geom.Code(span))
	child := n.children[i]
	if child == nil {
		child = &Node{cell: n.cell.Child(i)}
		n.children[i] = child
	}
	return child
}

func (n *Node) split() {
	n.children = new([4]*Node)
	objs := n.objects
	n.objects = nil
	for _, o := range objs {
		c := n.childFor(o.Pos.Code())
		c.objects = append(c.objects, o)
	}
}

// All returns every object in the tree, in traversal order.
func (t *Tree) All() []Object {
	var out []Object
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n.objects...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// NearestEuclidean returns up to k objects ordered by increasing Euclidean
// distance from p — the incremental filter of the IER baseline and the
// geodesic ("as the crow flies") ranking of the paper's motivating examples.
func (t *Tree) NearestEuclidean(p geom.Point, k int) []Object {
	out := make([]Object, 0, k)
	cursor := t.EuclideanBrowser(p)
	for len(out) < k {
		o, _, ok := cursor.Next()
		if !ok {
			break
		}
		out = append(out, o)
	}
	return out
}

// EuclideanBrowser is an incremental best-first cursor over objects by
// Euclidean distance.
type EuclideanBrowser struct {
	p    geom.Point
	heap pqueue.Min[euclElem]
}

type euclElem struct {
	node *Node
	obj  Object
}

// EuclideanBrowser returns a cursor positioned before the closest object.
func (t *Tree) EuclideanBrowser(p geom.Point) *EuclideanBrowser {
	b := &EuclideanBrowser{p: p}
	b.heap.Push(t.root.Rect().MinDist(p), euclElem{node: t.root})
	return b
}

// Next returns the next object in increasing Euclidean distance, its
// distance, and false when exhausted.
func (b *EuclideanBrowser) Next() (Object, float64, bool) {
	for b.heap.Len() > 0 {
		key, e := b.heap.Pop()
		if e.node == nil {
			return e.obj, key, true
		}
		if e.node.IsLeaf() {
			for _, o := range e.node.objects {
				b.heap.Push(b.p.Dist(o.Pos), euclElem{obj: o})
			}
			continue
		}
		for _, c := range e.node.children {
			if c != nil {
				b.heap.Push(c.Rect().MinDist(b.p), euclElem{node: c})
			}
		}
	}
	return Object{}, math.Inf(1), false
}

// FromVertices builds an object set from network vertices, assigning dense
// object IDs in input order.
func FromVertices(g *graph.Network, vertices []graph.VertexID, capacity int) *Tree {
	t := New(capacity)
	for i, v := range vertices {
		t.Insert(Object{ID: int32(i), Vertex: v, Pos: g.Point(v)})
	}
	return t
}
