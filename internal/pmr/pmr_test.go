package pmr

import (
	"math/rand"
	"sort"
	"testing"

	"silc/internal/geom"
	"silc/internal/graph"
)

func randomObjects(n int, seed int64) []Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID:  int32(i),
			Pos: geom.Point{X: rng.Float64(), Y: rng.Float64()},
		}
	}
	return objs
}

func TestInsertAndAll(t *testing.T) {
	objs := randomObjects(500, 1)
	tree := New(0)
	for _, o := range objs {
		tree.Insert(o)
	}
	if tree.Len() != len(objs) {
		t.Fatalf("Len = %d", tree.Len())
	}
	got := tree.All()
	if len(got) != len(objs) {
		t.Fatalf("All returned %d", len(got))
	}
	seen := make(map[int32]bool)
	for _, o := range got {
		if seen[o.ID] {
			t.Fatalf("duplicate object %d", o.ID)
		}
		seen[o.ID] = true
	}
}

func TestStructureInvariants(t *testing.T) {
	tree := New(4)
	for _, o := range randomObjects(300, 2) {
		tree.Insert(o)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		rect := n.Rect()
		if n.IsLeaf() {
			if len(n.objects) > 4 && n.cell.Level < geom.MaxLevel {
				t.Fatalf("overfull leaf: %d objects at level %d", len(n.objects), n.cell.Level)
			}
			for _, o := range n.objects {
				if !rect.Contains(o.Pos) {
					t.Fatalf("object %d at %v outside leaf %v", o.ID, o.Pos, rect)
				}
			}
			return
		}
		if len(n.objects) != 0 {
			t.Fatal("interior node holds objects")
		}
		for i, c := range n.children {
			if c == nil {
				continue
			}
			if c.cell != n.cell.Child(i) {
				t.Fatalf("child %d cell mismatch", i)
			}
			walk(c)
		}
	}
	walk(tree.Root())
}

func TestNearestEuclideanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		objs := randomObjects(rng.Intn(200)+1, int64(trial+10))
		tree := New(rng.Intn(12) + 1)
		for _, o := range objs {
			tree.Insert(o)
		}
		q := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		k := rng.Intn(len(objs)+5) + 1

		want := append([]Object(nil), objs...)
		sort.Slice(want, func(i, j int) bool {
			return q.DistSq(want[i].Pos) < q.DistSq(want[j].Pos)
		})
		if k < len(want) {
			want = want[:k]
		}
		got := tree.NearestEuclidean(q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			// Compare by distance (ties may reorder ids).
			dg, dw := q.Dist(got[i].Pos), q.Dist(want[i].Pos)
			if dg != dw {
				t.Fatalf("trial %d: rank %d distance %v want %v", trial, i, dg, dw)
			}
		}
	}
}

func TestEuclideanBrowserIncremental(t *testing.T) {
	objs := randomObjects(100, 4)
	tree := New(6)
	for _, o := range objs {
		tree.Insert(o)
	}
	q := geom.Point{X: 0.5, Y: 0.5}
	b := tree.EuclideanBrowser(q)
	prev := -1.0
	count := 0
	for {
		_, d, ok := b.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatalf("distances not non-decreasing: %v after %v", d, prev)
		}
		prev = d
		count++
	}
	if count != len(objs) {
		t.Fatalf("browser yielded %d of %d", count, len(objs))
	}
}

func TestEmptyTree(t *testing.T) {
	tree := New(0)
	if got := tree.NearestEuclidean(geom.Point{X: 0.5, Y: 0.5}, 3); len(got) != 0 {
		t.Fatalf("got %d from empty tree", len(got))
	}
	if tree.Len() != 0 || len(tree.All()) != 0 {
		t.Fatal("empty tree not empty")
	}
}

func TestDuplicatePositionsDoNotLoop(t *testing.T) {
	// Identical positions cannot be separated; the leaf at MaxLevel simply
	// exceeds capacity instead of splitting forever.
	tree := New(2)
	p := geom.Point{X: 0.25, Y: 0.25}
	for i := 0; i < 10; i++ {
		tree.Insert(Object{ID: int32(i), Pos: p})
	}
	if tree.Len() != 10 {
		t.Fatalf("Len = %d", tree.Len())
	}
	got := tree.NearestEuclidean(geom.Point{X: 0.3, Y: 0.3}, 10)
	if len(got) != 10 {
		t.Fatalf("retrieved %d", len(got))
	}
}

func TestFromVertices(t *testing.T) {
	g, err := graph.GenerateGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	vs := []graph.VertexID{3, 7, 11}
	tree := FromVertices(g, vs, 0)
	if tree.Len() != 3 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for i, o := range tree.All() {
		_ = i
		if o.Pos != g.Point(o.Vertex) {
			t.Fatalf("object %d position mismatch", o.ID)
		}
	}
}
