package partition

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/knn"
)

func buildTestSharded(t *testing.T, rows, cols, p int, seed int64, disk bool) (*graph.Network, *Sharded) {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, Options{Partitions: p, DiskResident: disk})
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestKDCutBalanceAndDeterminism(t *testing.T) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 20, Cols: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 5, 8} {
		a1, err := KDCut(g, p)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := KDCut(g, p)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for c := 0; c < p; c++ {
			nc := len(a1.Verts[c])
			total += nc
			if nc == 0 {
				t.Fatalf("P=%d: empty cell %d", p, c)
			}
			// Proportional kd-cut: cells within one vertex of each split's
			// proportional share stay within a factor ~2 of n/P.
			if nc > 2*g.NumVertices()/p+1 {
				t.Fatalf("P=%d: cell %d holds %d of %d vertices", p, c, nc, g.NumVertices())
			}
		}
		if total != g.NumVertices() {
			t.Fatalf("P=%d: cells cover %d of %d vertices", p, total, g.NumVertices())
		}
		for v := range a1.CellOf {
			if a1.CellOf[v] != a2.CellOf[v] {
				t.Fatalf("P=%d: KDCut not deterministic at vertex %d", p, v)
			}
		}
	}
	if _, err := KDCut(g, g.NumVertices()+1); err == nil {
		t.Fatal("KDCut accepted more partitions than vertices")
	}
}

func TestShardedSerializeRoundTrip(t *testing.T) {
	g, s := buildTestSharded(t, 12, 12, 5, 3, false)
	var buf bytes.Buffer
	written, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPartitions() != s.NumPartitions() || loaded.cl.NB() != s.cl.NB() {
		t.Fatalf("loaded shape mismatch: P %d/%d, nb %d/%d",
			loaded.NumPartitions(), s.NumPartitions(), loaded.cl.NB(), s.cl.NB())
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		u := graph.VertexID(rng.Intn(g.NumVertices()))
		v := graph.VertexID(rng.Intn(g.NumVertices()))
		if a, b := s.Distance(u, v), loaded.Distance(u, v); a != b {
			t.Fatalf("Distance(%d,%d) differs after round trip: %v vs %v", u, v, a, b)
		}
	}

	// Corruption anywhere in the stream must be rejected.
	for _, at := range []int{10, buf.Len() / 2, buf.Len() - 2} {
		bad := append([]byte(nil), buf.Bytes()...)
		bad[at] ^= 0x40
		if _, err := Load(bytes.NewReader(bad), g, Options{}); err == nil {
			t.Fatalf("corruption at byte %d went undetected", at)
		}
	}

	// Binding to the wrong network must be rejected.
	other, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 11, Cols: 13, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), other, Options{}); err == nil {
		t.Fatal("loading against a different network went undetected")
	}
}

// TestShardedConcurrentQueries hammers one shared disk-resident sharded
// index from many goroutines — run under -race in CI. Every query kind that
// threads a QueryContext through the cells participates.
func TestShardedConcurrentQueries(t *testing.T) {
	g, s := buildTestSharded(t, 14, 14, 6, 2, true)
	n := g.NumVertices()
	objVerts := make([]graph.VertexID, 0, n/4)
	rng := rand.New(rand.NewSource(1))
	for _, v := range rng.Perm(n)[:n/4] {
		objVerts = append(objVerts, graph.VertexID(v))
	}
	objs := knn.NewObjects(g, objVerts)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				u := graph.VertexID(rng.Intn(n))
				v := graph.VertexID(rng.Intn(n))
				qc := core.NewQueryContext()
				d := s.DistanceCtx(qc, u, v)
				iv := s.DistanceIntervalCtx(qc, u, v)
				if d < iv.Lo-1e-9 || d > iv.Hi+1e-9 {
					t.Errorf("distance %v outside interval [%v,%v]", d, iv.Lo, iv.Hi)
					return
				}
				if p := s.PathCtx(qc, u, v); len(p) == 0 {
					t.Errorf("empty path %d->%d", u, v)
					return
				}
				knn.Search(s, objs, u, 1+rng.Intn(5), knn.Variants[i%len(knn.Variants)])
			}
		}(int64(w))
	}
	wg.Wait()
	if io := s.Tracker().Stats(); io.Accesses() == 0 {
		t.Fatal("disk-resident sharded index recorded no page traffic")
	}
}
