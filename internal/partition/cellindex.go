package partition

import (
	"fmt"
	"math"
	"sort"

	"silc/internal/core"
	"silc/internal/geom"
	"silc/internal/graph"
)

// CellIndex is what the cross-cell routing layer needs from one cell's
// index: progressive refinement, zero-refinement intervals, region lower
// bounds, and path retrieval — all in the cell's LOCAL vertex ids. The
// in-process *core.Index satisfies it directly; a cluster deployment
// substitutes an RPC-backed implementation per remote cell, and the routing
// code above this seam cannot tell the difference.
type CellIndex interface {
	Refine(qc *core.QueryContext, src, dst graph.VertexID) core.DistanceRefiner
	DistanceIntervalCtx(qc *core.QueryContext, u, v graph.VertexID) core.Interval
	RegionLowerBoundCtx(qc *core.QueryContext, q graph.VertexID, rect geom.Rect) float64
	PathCtx(qc *core.QueryContext, u, v graph.VertexID) []graph.VertexID
}

var _ CellIndex = (*core.Index)(nil)

// The optional batch interfaces below collapse the routing layer's per-row
// loops into one call each. A local *core.Index deliberately implements
// none of them — the in-process hot path (and its allocation budgets) is
// untouched — while an RPC-backed cell turns |B| network round-trips into
// one. Implementations report failures through qc.Fail and return safe
// values (+Inf distances, [0,+Inf) intervals), exactly like a storage error
// on a local index.

// BoundaryDistancer computes the exact within-cell distance from src to
// every boundary vertex of the cell, in closure row order.
type BoundaryDistancer interface {
	BoundaryDistances(qc *core.QueryContext, src graph.VertexID) []float64
}

// BoundaryIntervaler returns the zero-refinement interval between v and
// every boundary vertex of the cell, in closure row order. toV selects the
// direction: boundary→v when true, v→boundary when false.
type BoundaryIntervaler interface {
	BoundaryIntervals(qc *core.QueryContext, v graph.VertexID, toV bool) []core.Interval
}

// RouteRacer resolves min over candidates i of offs[i] + d_cell(us[i], dst)
// exactly, returning the minimum and the index achieving it (-1 when every
// candidate is unreachable). It is the one-shot form of the route race the
// refiner otherwise steps through: candidates are sorted by their interval
// lower bound and refined in that order with a cutoff, so the result is the
// same exact float64 the progressive race converges to.
type RouteRacer interface {
	RaceRoutes(qc *core.QueryContext, dst graph.VertexID, offs []float64, us []graph.VertexID) (float64, int)
}

// qcell returns the query index serving cell c: the in-process cell index,
// or the remote backend installed by NewRemote.
func (s *Sharded) qcell(c int32) CellIndex {
	if s.remote != nil {
		return s.remote[c]
	}
	return s.cells[c].ix
}

// CellExact fully refines the within-cell distance from u to v on one cell
// index (+Inf when unreachable inside the cell). It is core.ExactDistance
// over the CellIndex seam — node servers use it to answer boundary and race
// RPCs with exactly the arithmetic the in-process router runs.
func CellExact(cx CellIndex, qc *core.QueryContext, u, v graph.VertexID) float64 {
	r := cx.Refine(qc, u, v)
	for !r.Done() {
		if qc.Err() != nil {
			break
		}
		if !r.Step() {
			break
		}
	}
	if r.OutOfRange() {
		return math.Inf(1)
	}
	return r.Interval().Lo
}

// RaceCellRoutes resolves min over i of offs[i] + d_cell(us[i], dst) on one
// cell index: candidates sort by their zero-refinement lower bound and
// refine to exact in that order, with a cutoff once no remaining candidate
// can be strictly shorter. The minimum is exact and identical to stepping
// the race progressively, because refining past the cutoff can only raise a
// candidate's value. Node servers serve the race RPC with it.
func RaceCellRoutes(cx CellIndex, qc *core.QueryContext, dst graph.VertexID, offs []float64, us []graph.VertexID) (float64, int) {
	type cand struct {
		i  int
		lo float64
	}
	cands := make([]cand, 0, len(offs))
	for i := range offs {
		if math.IsInf(offs[i], 1) {
			continue
		}
		iv := cx.DistanceIntervalCtx(qc, us[i], dst)
		if math.IsInf(iv.Lo, 1) {
			continue
		}
		cands = append(cands, cand{i: i, lo: offs[i] + iv.Lo})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].lo < cands[b].lo })
	best, arg := math.Inf(1), -1
	for _, c := range cands {
		if c.lo >= best {
			break // sorted: no remaining candidate can be strictly shorter
		}
		if qc.Err() != nil {
			break
		}
		d := CellExact(cx, qc, us[c.i], dst)
		if t := offs[c.i] + d; t < best {
			best, arg = t, c.i
		}
	}
	return best, arg
}

// The node-facing accessors below expose exactly the per-cell state a
// cluster node needs to serve its RPC surface, in local vertex ids.

// CellIndexAt returns cell c's query index.
func (s *Sharded) CellIndexAt(c int) CellIndex { return s.qcell(int32(c)) }

// CellVertexCount returns the number of vertices in cell c — the exclusive
// upper bound of its local vertex ids.
func (s *Sharded) CellVertexCount(c int) int { return len(s.asn.Verts[c]) }

// BoundaryLocals returns the local vertex ids of cell c's boundary
// vertices, in closure row order. The returned slice is freshly allocated.
func (s *Sharded) BoundaryLocals(c int) []graph.VertexID {
	lo, hi := s.cl.Rows(int32(c))
	out := make([]graph.VertexID, hi-lo)
	for r := lo; r < hi; r++ {
		out[r-lo] = graph.VertexID(s.asn.LocalOf[s.cl.B[r]])
	}
	return out
}

// SelfContained reports whether cell c's intra-cell distances need no
// closure routing.
func (s *Sharded) SelfContained(c int) bool { return s.selfContained[c] }

// BoundaryRows returns the closure row range [lo, hi) of cell c.
func (s *Sharded) BoundaryRows(c int) (lo, hi int32) { return s.cl.Rows(int32(c)) }

// NewRemote assembles a router-side Sharded over remote cell backends: the
// global network, cell labels, boundary closure, and self-contained flags
// come from meta (OpenPagedMeta), while every per-cell operation goes
// through cells[c] — in a cluster, an RPC client for the cell's owning
// nodes. The result answers the full core.QueryIndex surface with exactly
// the in-process router's arithmetic, holds no cell image data, and is safe
// for unlimited concurrent queries like any Sharded.
func NewRemote(meta *RouterMeta, cells []CellIndex) (*Sharded, error) {
	if meta == nil {
		return nil, fmt.Errorf("partition: NewRemote needs router metadata")
	}
	if len(cells) != meta.asn.P {
		return nil, fmt.Errorf("partition: %d cell backends for %d partitions", len(cells), meta.asn.P)
	}
	for c, cx := range cells {
		if cx == nil {
			return nil, fmt.Errorf("partition: cell %d has no backend", c)
		}
	}
	s := &Sharded{
		g:             meta.g,
		asn:           meta.asn,
		cl:            meta.cl,
		selfContained: meta.selfContained,
		remote:        cells,
		comp:          meta.comp,
	}
	s.stats = Stats{
		Partitions:       meta.asn.P,
		Vertices:         meta.g.NumVertices(),
		Edges:            meta.g.NumEdges(),
		BoundaryVertices: meta.cl.NB(),
		CutEdges:         meta.asn.CutEdges,
		ClosureBytes:     meta.cl.SizeBytes(),
	}
	for _, sc := range meta.selfContained {
		if sc {
			s.stats.SelfContained++
		}
	}
	return s, nil
}
