package partition

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
)

func fuzzNetwork(tb testing.TB) *graph.Network {
	tb.Helper()
	g, err := graph.GenerateGrid(6, 6)
	if err != nil {
		tb.Fatalf("grid: %v", err)
	}
	return g
}

// shd1Seeds produces the checked-in seed corpus for the sharded
// deserializer: a valid SILCSHD1 stream plus truncations, bit flips, and a
// corrupted boundary count.
func shd1Seeds(tb testing.TB) [][]byte {
	tb.Helper()
	g := fuzzNetwork(tb)
	sx, err := Build(g, Options{Partitions: 3})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		tb.Fatalf("write: %v", err)
	}
	valid := buf.Bytes()
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x08
	bigNB := append([]byte(nil), valid...)
	bigNB[16] = 0xFF // inflate the boundary-vertex count
	bigNB[17] = 0xFF
	return [][]byte{
		valid,
		valid[:12],
		valid[:len(valid)/4],
		valid[:len(valid)-3],
		flip,
		bigNB,
		{},
		[]byte("SILCSHD1junkjunkjunk"),
	}
}

// FuzzSHD1 feeds corrupted and truncated byte streams to the sharded-index
// deserializer: error-not-panic, whatever the bytes.
func FuzzSHD1(f *testing.F) {
	for _, seed := range shd1Seeds(f) {
		f.Add(seed)
	}
	g := fuzzNetwork(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sx, err := Load(bytes.NewReader(data), g, Options{})
		if err == nil && sx == nil {
			t.Fatal("nil index without error")
		}
	})
}

// FuzzOpenPagedSharded drives the sharded paged opener with arbitrary
// bytes; beyond parsing, a successful open is queried once so lazily
// -detected corruption also surfaces as errors.
func FuzzOpenPagedSharded(f *testing.F) {
	g := fuzzNetwork(f)
	sx, err := Build(g, Options{Partitions: 3})
	if err != nil {
		f.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := sx.WritePaged(&buf); err != nil {
		f.Fatalf("write paged: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flip := append([]byte(nil), valid...)
	flip[len(flip)-100] ^= 0xFF
	f.Add(flip)
	f.Add([]byte("SILCSPG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		px, err := OpenPaged(bytes.NewReader(data), int64(len(data)), Options{CachePages: 4})
		if err != nil {
			return
		}
		qc := core.NewQueryContext()
		n := px.Network().NumVertices()
		core.ExactDistance(px, qc, 0, graph.VertexID(n-1))
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz when SILC_GEN_CORPUS=1.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SILC_GEN_CORPUS") == "" {
		t.Skip("set SILC_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSHD1")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range shd1Seeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
