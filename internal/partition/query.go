package partition

import (
	"fmt"
	"math"
	"sort"

	"silc/internal/core"
	"silc/internal/graph"
)

var _ core.QueryIndex = (*Sharded)(nil)

// Distance fully refines and returns the exact global network distance.
func (s *Sharded) Distance(u, v graph.VertexID) float64 {
	return s.DistanceCtx(core.NewQueryContext(), u, v)
}

// DistanceCtx is Distance with per-query I/O attribution and router reuse.
func (s *Sharded) DistanceCtx(qc *core.QueryContext, u, v graph.VertexID) float64 {
	return core.ExactDistance(s, qc, u, v)
}

// DistanceInterval returns a zero-refinement interval on the global network
// distance: intra-cell pairs in self-contained cells cost one quadtree
// lookup, exactly like the monolithic index; cross-cell pairs combine the
// cells' boundary intervals with the closure — |B_p|+|B_q| lookups plus an
// O(|B_p|·|B_q|) closure scan, but no progressive refinement at all.
func (s *Sharded) DistanceInterval(u, v graph.VertexID) core.Interval {
	return s.DistanceIntervalCtx(core.NewQueryContext(), u, v)
}

// DistanceIntervalCtx is DistanceInterval with per-query I/O attribution.
func (s *Sharded) DistanceIntervalCtx(qc *core.QueryContext, u, v graph.VertexID) core.Interval {
	if u == v {
		return core.Interval{}
	}
	p, q := s.asn.CellOf[u], s.asn.CellOf[v]
	ul, vl := graph.VertexID(s.asn.LocalOf[u]), graph.VertexID(s.asn.LocalOf[v])
	pcx, qcx := s.qcell(p), s.qcell(q)
	if p == q && s.selfContained[p] {
		return pcx.DistanceIntervalCtx(qc, ul, vl)
	}
	lo, hi := math.Inf(1), math.Inf(1)
	if p == q {
		iv := pcx.DistanceIntervalCtx(qc, ul, vl)
		lo, hi = iv.Lo, iv.Hi
	}
	// True distance = min over boundary pairs (b1 ∈ B_p, b2 ∈ B_q) of
	// d_p(u,b1) + D(b1,b2) + d_q(b2,v) (and the direct route when p == q),
	// so the min of the pairs' lower bounds / upper bounds bounds it from
	// both sides.
	plo, phi := s.cl.Rows(p)
	qlo, qhi := s.cl.Rows(q)
	nb := s.cl.NB()
	// Batch-capable backends answer each boundary sweep in one call (one RPC
	// per direction on remote cells).
	ivV := make([]core.Interval, qhi-qlo)
	if bi, ok := qcx.(BoundaryIntervaler); ok && len(ivV) > 0 {
		copy(ivV, bi.BoundaryIntervals(qc, vl, true))
	} else {
		for j := qlo; j < qhi; j++ {
			bl := graph.VertexID(s.asn.LocalOf[s.cl.B[j]])
			ivV[j-qlo] = qcx.DistanceIntervalCtx(qc, bl, vl)
		}
	}
	var ivUs []core.Interval
	if bi, ok := pcx.(BoundaryIntervaler); ok {
		ivUs = bi.BoundaryIntervals(qc, ul, false)
	}
	for i := plo; i < phi; i++ {
		var ivU core.Interval
		if int(i-plo) < len(ivUs) {
			ivU = ivUs[i-plo]
		} else {
			bl := graph.VertexID(s.asn.LocalOf[s.cl.B[i]])
			ivU = pcx.DistanceIntervalCtx(qc, ul, bl)
		}
		if math.IsInf(ivU.Lo, 1) {
			continue
		}
		row := s.cl.D[int(i)*nb : (int(i)+1)*nb]
		for j := qlo; j < qhi; j++ {
			d := row[j]
			if l := ivU.Lo + d + ivV[j-qlo].Lo; l < lo {
				lo = l
			}
			if h := ivU.Hi + d + ivV[j-qlo].Hi; h < hi {
				hi = h
			}
		}
	}
	return core.Interval{Lo: lo, Hi: hi}
}

// Path retrieves an exact shortest path from u to v across cells: the
// within-cell prefix to the best exit gateway, the closure's hop chain
// (each hop either a within-cell segment or a single cross-cell edge), and
// the within-cell suffix from the best entry gateway.
func (s *Sharded) Path(u, v graph.VertexID) []graph.VertexID {
	return s.PathCtx(core.NewQueryContext(), u, v)
}

// PathCtx is Path with per-query I/O attribution and router reuse.
func (s *Sharded) PathCtx(qc *core.QueryContext, u, v graph.VertexID) []graph.VertexID {
	if u == v {
		return []graph.VertexID{u}
	}
	p, q := s.asn.CellOf[u], s.asn.CellOf[v]
	ul, vl := graph.VertexID(s.asn.LocalOf[u]), graph.VertexID(s.asn.LocalOf[v])
	pcx, qcx := s.qcell(p), s.qcell(q)
	if p == q && s.selfContained[p] {
		return s.globalPath(p, pcx.PathCtx(qc, ul, vl))
	}
	rt := s.routerFor(qc, u)
	a, arg := rt.gateways(q)
	qlo, _ := s.cl.Rows(q)

	best := math.Inf(1)
	direct := false
	bestEntry := int32(-1)
	if rr, ok := qcx.(RouteRacer); ok {
		// One-shot backend: the whole entry race (direct route included when
		// p == q) collapses into one call — one RPC on a remote cell.
		offs := make([]float64, 0, len(a)+1)
		us := make([]graph.VertexID, 0, len(a)+1)
		rows := make([]int32, 0, len(a)+1)
		if p == q {
			offs = append(offs, 0)
			us = append(us, ul)
			rows = append(rows, -1)
		}
		for j, av := range a {
			if math.IsInf(av, 1) {
				continue
			}
			offs = append(offs, av)
			us = append(us, graph.VertexID(s.asn.LocalOf[s.cl.B[qlo+int32(j)]]))
			rows = append(rows, qlo+int32(j))
		}
		d, win := rr.RaceRoutes(qc, vl, offs, us)
		if win >= 0 {
			best = d
			if rows[win] < 0 {
				direct = true
			} else {
				bestEntry = rows[win]
			}
		}
	} else {
		if p == q {
			if d := CellExact(pcx, qc, ul, vl); d < best {
				best = d
				direct = true
			}
		}
		// Race the entry gateways on their zero-refinement intervals and fully
		// refine in ascending lower-bound order, so candidates that cannot beat
		// the best route found so far cost one lookup instead of a complete
		// progressive refinement.
		type gateCand struct {
			row int32
			lo  float64
		}
		cands := make([]gateCand, 0, len(a))
		for j, av := range a {
			if math.IsInf(av, 1) {
				continue
			}
			bl := graph.VertexID(s.asn.LocalOf[s.cl.B[qlo+int32(j)]])
			civ := qcx.DistanceIntervalCtx(qc, bl, vl)
			cands = append(cands, gateCand{row: qlo + int32(j), lo: av + civ.Lo})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].lo < cands[j].lo })
		for _, c := range cands {
			if c.lo >= best {
				break // sorted: no remaining candidate can be strictly shorter
			}
			av := a[c.row-qlo]
			bl := graph.VertexID(s.asn.LocalOf[s.cl.B[c.row]])
			dq := CellExact(qcx, qc, bl, vl)
			if t := av + dq; t < best {
				best = t
				bestEntry = c.row
				direct = false
			}
		}
	}
	switch {
	case direct:
		return s.globalPath(p, pcx.PathCtx(qc, ul, vl))
	case bestEntry < 0:
		return nil // unreachable (prevented at build time by validation)
	}
	exit := arg[bestEntry-qlo] // own-cell gateway row achieving A[bestEntry]
	path := s.globalPath(p, pcx.PathCtx(qc, ul, graph.VertexID(s.asn.LocalOf[s.cl.B[exit]])))
	if qc.Failed() {
		return nil // storage failure recorded on qc; segments may be empty
	}
	path = s.closureWalk(qc, path, exit, bestEntry)
	entryLocal := graph.VertexID(s.asn.LocalOf[s.cl.B[bestEntry]])
	suffix := s.globalPath(q, qcx.PathCtx(qc, entryLocal, vl))
	if qc.Failed() || len(suffix) == 0 {
		return nil
	}
	return append(path, suffix[1:]...)
}

// closureWalk appends the boundary-to-boundary portion of a shortest path
// (rows from → to, exclusive of from's vertex which path already ends with)
// by following the closure's hop chain.
func (s *Sharded) closureWalk(qc *core.QueryContext, path []graph.VertexID, from, to int32) []graph.VertexID {
	nb := s.cl.NB()
	cur := from
	for steps := 0; cur != to; steps++ {
		if steps > nb {
			panic(fmt.Sprintf("partition: closure hop chain from %d to %d does not terminate", from, to))
		}
		nxt := s.cl.Hop[int(cur)*nb+int(to)]
		cv, nv := s.cl.B[cur], s.cl.B[nxt]
		if c := s.asn.CellOf[cv]; c == s.asn.CellOf[nv] {
			// Consecutive boundary vertices in one cell: the segment between
			// them stays inside that cell, and the cell's own shortest path
			// has exactly the segment's cost.
			seg := s.globalPath(c, s.qcell(c).PathCtx(qc,
				graph.VertexID(s.asn.LocalOf[cv]), graph.VertexID(s.asn.LocalOf[nv])))
			if len(seg) == 0 {
				// Storage failure (recorded on qc by the cell index): the
				// caller bails on qc.Failed; a valid index never yields an
				// empty intra-cell boundary segment.
				return path
			}
			path = append(path, seg[1:]...)
		} else {
			// Different cells: consecutive boundary vertices with no interior
			// segment are joined by a single cross-cell edge.
			path = append(path, nv)
		}
		cur = nxt
	}
	return path
}

// globalPath maps a cell-local path onto global vertex ids in place of a
// fresh slice.
func (s *Sharded) globalPath(c int32, local []graph.VertexID) []graph.VertexID {
	out := make([]graph.VertexID, len(local))
	for i, lv := range local {
		out[i] = s.asn.Verts[c][lv]
	}
	return out
}
