package partition

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"silc/internal/graph"
	"silc/internal/sssp"
)

// Closure is the boundary-vertex distance closure: the exact global network
// distance between every ordered pair of boundary vertices (vertices with at
// least one edge to or from another cell), plus a next-boundary-hop matrix
// for path reconstruction. It is computed once at build time — one full
// Dijkstra per boundary vertex — and is what lets per-cell indexes answer
// cross-partition queries exactly.
type Closure struct {
	// B lists the boundary vertices grouped by cell, Morton-ordered within
	// each cell; the position in B is the vertex's closure row.
	B []graph.VertexID
	// RowOf maps a global vertex to its closure row, -1 for interior
	// vertices.
	RowOf []int32
	// CellStart[c]..CellStart[c+1] is cell c's row range.
	CellStart []int32
	// D is the row-major |B|×|B| matrix of exact global distances.
	D []float64
	// Hop is row-major |B|×|B|: Hop[i*|B|+j] is the closure row of the first
	// boundary vertex strictly after B[i] on the shortest path B[i]→B[j]
	// (j itself when the path has no intermediate boundary vertex). The
	// segment between consecutive boundary vertices either lies inside one
	// cell or is a single cross-cell edge, which is all path reconstruction
	// needs.
	Hop []int32
}

// NB returns the boundary-vertex count.
func (c *Closure) NB() int { return len(c.B) }

// At returns the exact global distance from boundary row i to row j.
func (c *Closure) At(i, j int) float64 { return c.D[i*len(c.B)+j] }

// Rows returns cell's closure row range [lo, hi).
func (c *Closure) Rows(cell int32) (lo, hi int32) {
	return c.CellStart[cell], c.CellStart[cell+1]
}

// SizeBytes returns the in-memory footprint of the distance and hop
// matrices (the closure's dominant storage cost).
func (c *Closure) SizeBytes() int64 {
	nb := int64(len(c.B))
	return nb*nb*8 + nb*nb*4
}

// boundaryRows computes the boundary-vertex list (grouped by cell, Morton-
// ordered within each — the iteration order of asn.Verts) and the global
// row index. Deterministic given the assignment, so the loader reconstructs
// it instead of deserializing.
func boundaryRows(g *graph.Network, asn *Assignment) (b []graph.VertexID, rowOf []int32, cellStart []int32) {
	n := g.NumVertices()
	isB := make([]bool, n)
	for v := 0; v < n; v++ {
		targets, _ := g.Neighbors(graph.VertexID(v))
		for _, t := range targets {
			if asn.CellOf[v] != asn.CellOf[t] {
				isB[v] = true
				isB[t] = true
			}
		}
	}
	rowOf = make([]int32, n)
	for i := range rowOf {
		rowOf[i] = -1
	}
	cellStart = make([]int32, asn.P+1)
	for c := 0; c < asn.P; c++ {
		cellStart[c] = int32(len(b))
		for _, v := range asn.Verts[c] {
			if isB[v] {
				rowOf[v] = int32(len(b))
				b = append(b, v)
			}
		}
	}
	cellStart[asn.P] = int32(len(b))
	return b, rowOf, cellStart
}

// buildClosure runs one full-network Dijkstra per boundary vertex (parallel
// over sources) and fills the distance and hop matrices. It fails if any
// boundary vertex cannot reach another — the sharded build's strong-
// connectivity check at the cell-graph level.
func buildClosure(g *graph.Network, asn *Assignment, parallelism int) (*Closure, error) {
	b, rowOf, cellStart := boundaryRows(g, asn)
	nb := len(b)
	cl := &Closure{
		B:         b,
		RowOf:     rowOf,
		CellStart: cellStart,
		D:         make([]float64, nb*nb),
		Hop:       make([]int32, nb*nb),
	}
	if nb == 0 {
		return cl, nil
	}
	n := g.NumVertices()
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nb {
		workers = nb
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sssp.NewWorkspace(n)
			fb := make([]int32, n)
			stack := make([]graph.VertexID, 0, 64)
			for {
				i := int(next.Add(1) - 1)
				if i >= nb {
					return
				}
				src := b[i]
				tree := ws.Run(g, src)
				firstBoundary(tree, src, rowOf, fb, &stack)
				row := cl.D[i*nb : (i+1)*nb]
				hop := cl.Hop[i*nb : (i+1)*nb]
				for j, bj := range b {
					d := tree.Dist[bj]
					if math.IsInf(d, 1) {
						errs[w] = fmt.Errorf("partition: boundary vertex %d unreachable from %d; the network must be strongly connected", bj, src)
						return
					}
					row[j] = d
					if j == i {
						hop[j] = int32(i)
					} else {
						hop[j] = fb[bj]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// firstBoundary fills fb[v] with the closure row of the first boundary
// vertex strictly after src on the shortest path src→v (-1 when the path
// has none, or v is unreached). It resolves lazily along parent chains with
// memoization — O(n) total, no distance sort.
func firstBoundary(tree *sssp.Tree, src graph.VertexID, rowOf []int32, fb []int32, stack *[]graph.VertexID) {
	const unknown = int32(-2)
	for i := range fb {
		fb[i] = unknown
	}
	fb[src] = -1
	for v := range fb {
		if fb[v] != unknown {
			continue
		}
		if tree.Parent[v] == graph.NoVertex {
			fb[v] = -1 // unreached
			continue
		}
		s := (*stack)[:0]
		u := graph.VertexID(v)
		for fb[u] == unknown {
			s = append(s, u)
			u = tree.Parent[u]
		}
		inherited := fb[u]
		for k := len(s) - 1; k >= 0; k-- {
			w := s[k]
			if inherited < 0 && rowOf[w] >= 0 {
				inherited = rowOf[w]
			}
			fb[w] = inherited
		}
		*stack = s
	}
}

// validateCoverage checks that, within every cell, each vertex both reaches
// and is reached by at least one of the cell's boundary vertices through
// intra-cell edges. Combined with closure finiteness between boundary
// vertices this proves the whole network strongly connected; without it an
// isolated interior pocket would silently answer +Inf instead of failing
// the build the way the monolithic index does.
func validateCoverage(g *graph.Network, asn *Assignment, cl *Closure, cells []*cell) error {
	if asn.P == 1 {
		return nil // the single cell was built strict (no AllowUnreachable)
	}
	for c := 0; c < asn.P; c++ {
		lo, hi := cl.Rows(int32(c))
		if lo == hi {
			return fmt.Errorf("partition: cell %d has no boundary vertices; the network is not connected across cells", c)
		}
		sub := cells[c].sub
		nc := sub.NumVertices()
		seeds := make([]graph.VertexID, 0, hi-lo)
		for r := lo; r < hi; r++ {
			seeds = append(seeds, graph.VertexID(asn.LocalOf[cl.B[r]]))
		}
		// Forward: gateways reach every cell vertex.
		if miss := unreachedFrom(nc, seeds, func(v graph.VertexID) []graph.VertexID {
			t, _ := sub.Neighbors(v)
			return t
		}); miss >= 0 {
			return fmt.Errorf("partition: vertex %d unreachable from cell %d's boundary; the network must be strongly connected",
				cells[c].toGlobal[miss], c)
		}
		// Reverse: every cell vertex reaches a gateway.
		rev := make([][]graph.VertexID, nc)
		for v := 0; v < nc; v++ {
			targets, _ := sub.Neighbors(graph.VertexID(v))
			for _, t := range targets {
				rev[t] = append(rev[t], graph.VertexID(v))
			}
		}
		if miss := unreachedFrom(nc, seeds, func(v graph.VertexID) []graph.VertexID {
			return rev[v]
		}); miss >= 0 {
			return fmt.Errorf("partition: vertex %d cannot reach cell %d's boundary; the network must be strongly connected",
				cells[c].toGlobal[miss], c)
		}
	}
	return nil
}

// unreachedFrom runs a multi-source reachability sweep and returns the first
// unreached vertex, or -1 when all n vertices are covered.
func unreachedFrom(n int, seeds []graph.VertexID, adj func(graph.VertexID) []graph.VertexID) int {
	seen := make([]bool, n)
	stack := make([]graph.VertexID, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range adj(v) {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return v
		}
	}
	return -1
}
