package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"silc/internal/core"
	"silc/internal/graph"
)

// The sharded index file format is little-endian binary:
//
//	magic   "SILCSHD1"                    8 bytes
//	p       uint32   partition count
//	n       uint32   vertex count
//	nb      uint32   boundary-vertex count (cross-checked on load)
//	flags   1 byte per cell: bit 0 = self-contained
//	cellOf  uint32 x n                    per-vertex cell labels
//	cells   p x (int64 length + core index stream)
//	        (each cell stream carries its own magic and CRC; the length
//	        prefix exists because the loader reads cells through buffered
//	        readers that must not consume past a cell's end)
//	D       float64 x nb^2               boundary distance matrix
//	hop     int32 x nb^2                 next-boundary-hop matrix
//	crc     uint32   CRC-32 (IEEE) of everything above
//
// Everything else — local-id ordering, subnetworks, boundary rows, bounding
// boxes — is deterministically derived from the network plus cellOf, so it
// is reconstructed rather than stored.

// MagicString is the sharded file format's leading identifier, exposed so
// loaders can sniff whether a file holds a sharded or a monolithic index.
const MagicString = "SILCSHD1"

var shardedMagic = [8]byte{'S', 'I', 'L', 'C', 'S', 'H', 'D', '1'}

// WriteTo serializes the sharded index.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	if s.cells == nil {
		return 0, fmt.Errorf("partition: a remote (router-side) index holds no cell images to serialize")
	}
	cw := &countingWriter{w: &crcWriter{w: w}}
	bw := bufio.NewWriter(cw)

	if _, err := bw.Write(shardedMagic[:]); err != nil {
		return cw.n, err
	}
	var u32 [4]byte
	for _, v := range []uint32{uint32(s.asn.P), uint32(s.g.NumVertices()), uint32(s.cl.NB())} {
		binary.LittleEndian.PutUint32(u32[:], v)
		if _, err := bw.Write(u32[:]); err != nil {
			return cw.n, err
		}
	}
	for c := 0; c < s.asn.P; c++ {
		var b byte
		if s.selfContained[c] {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return cw.n, err
		}
	}
	for _, c := range s.asn.CellOf {
		binary.LittleEndian.PutUint32(u32[:], uint32(c))
		if _, err := bw.Write(u32[:]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	var u64 [8]byte
	for c, cx := range s.cells {
		// The core index stream's length is determined by its format: magic
		// + vertex count + radius + per-vertex block counts + 16-byte blocks
		// + CRC trailer. Cross-checked against the actual write below.
		predicted := int64(8+4+8+4) + 4*int64(cx.sub.NumVertices()) + 16*cx.ix.Stats().TotalBlocks
		binary.LittleEndian.PutUint64(u64[:], uint64(predicted))
		if _, err := cw.Write(u64[:]); err != nil {
			return cw.n, err
		}
		written, err := cx.ix.WriteTo(cw)
		if err != nil {
			return cw.n, err
		}
		if written != predicted {
			return cw.n, fmt.Errorf("partition: cell %d stream wrote %d bytes, predicted %d (format drift)", c, written, predicted)
		}
	}
	for _, d := range s.cl.D {
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(d))
		if _, err := bw.Write(u64[:]); err != nil {
			return cw.n, err
		}
	}
	for _, h := range s.cl.Hop {
		binary.LittleEndian.PutUint32(u32[:], uint32(h))
		if _, err := bw.Write(u32[:]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	binary.LittleEndian.PutUint32(u32[:], cw.w.(*crcWriter).crc)
	if _, err := w.Write(u32[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// Load deserializes a sharded index produced by WriteTo and binds it to g,
// which must be the network it was built from. The assignment, subnetworks
// and boundary rows are rebuilt from the stored cell labels; corruption is
// detected by the trailing CRC (plus each embedded cell index's own CRC).
func Load(r io.Reader, g *graph.Network, opt Options) (*Sharded, error) {
	cr := &crcReader{r: bufio.NewReader(r)}

	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("partition: reading magic: %w", err)
	}
	if magic != shardedMagic {
		return nil, fmt.Errorf("partition: bad magic %q", magic[:])
	}
	var u32 [4]byte
	readU32 := func(what string) (uint32, error) {
		if _, err := io.ReadFull(cr, u32[:]); err != nil {
			return 0, fmt.Errorf("partition: reading %s: %w", what, err)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	p32, err := readU32("partition count")
	if err != nil {
		return nil, err
	}
	n32, err := readU32("vertex count")
	if err != nil {
		return nil, err
	}
	nb32, err := readU32("boundary count")
	if err != nil {
		return nil, err
	}
	p, n, nb := int(p32), int(n32), int(nb32)
	if n != g.NumVertices() {
		return nil, fmt.Errorf("partition: index has %d vertices, network has %d", n, g.NumVertices())
	}
	if p < 1 || p > n {
		return nil, fmt.Errorf("partition: invalid partition count %d", p)
	}
	// Boundary vertices are network vertices: a corrupt count must fail
	// here rather than drive the nb^2 closure allocation below.
	if nb > n {
		return nil, fmt.Errorf("partition: %d boundary vertices recorded for %d network vertices", nb, n)
	}
	selfContained := make([]bool, p)
	for c := 0; c < p; c++ {
		var b [1]byte
		if _, err := io.ReadFull(cr, b[:]); err != nil {
			return nil, fmt.Errorf("partition: reading cell flags: %w", err)
		}
		selfContained[c] = b[0]&1 != 0
	}
	cellOf := make([]int32, n)
	for v := range cellOf {
		c, err := readU32("cell label")
		if err != nil {
			return nil, err
		}
		if int(c) >= p {
			return nil, fmt.Errorf("partition: vertex %d labeled with cell %d of %d", v, c, p)
		}
		cellOf[v] = int32(c)
	}
	asn, err := assignmentFromCellOf(g, cellOf, p)
	if err != nil {
		return nil, err
	}

	cells := make([]*cell, p)
	var u64 [8]byte
	for c := 0; c < p; c++ {
		sub, err := subnetwork(g, asn, c)
		if err != nil {
			return nil, fmt.Errorf("partition: cell %d subnetwork: %w", c, err)
		}
		if _, err := io.ReadFull(cr, u64[:]); err != nil {
			return nil, fmt.Errorf("partition: reading cell %d length: %w", c, err)
		}
		length := int64(binary.LittleEndian.Uint64(u64[:]))
		if length <= 0 {
			return nil, fmt.Errorf("partition: cell %d has invalid stream length %d", c, length)
		}
		// core.Load reads through its own buffered reader; the LimitReader
		// keeps that buffering from consuming past this cell's stream.
		ix, err := core.Load(io.LimitReader(cr, length), sub, core.BuildOptions{AllowUnreachable: p > 1})
		if err != nil {
			return nil, fmt.Errorf("partition: cell %d index: %w", c, err)
		}
		cells[c] = &cell{id: int32(c), sub: sub, ix: ix, toGlobal: asn.Verts[c]}
	}

	b, rowOf, cellStart := boundaryRows(g, asn)
	if len(b) != nb {
		return nil, fmt.Errorf("partition: index records %d boundary vertices, network derives %d", nb, len(b))
	}
	cl := &Closure{
		B:         b,
		RowOf:     rowOf,
		CellStart: cellStart,
		D:         make([]float64, nb*nb),
		Hop:       make([]int32, nb*nb),
	}
	for i := range cl.D {
		if _, err := io.ReadFull(cr, u64[:]); err != nil {
			return nil, fmt.Errorf("partition: reading closure distances: %w", err)
		}
		d := math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
		if math.IsNaN(d) || d < 0 {
			return nil, fmt.Errorf("partition: invalid closure distance %v", d)
		}
		cl.D[i] = d
	}
	for i := range cl.Hop {
		h, err := readU32("closure hops")
		if err != nil {
			return nil, err
		}
		if int(h) >= nb {
			return nil, fmt.Errorf("partition: closure hop %d out of %d rows", h, nb)
		}
		cl.Hop[i] = int32(h)
	}
	computed := cr.crc
	if _, err := io.ReadFull(cr.r, u32[:]); err != nil {
		return nil, fmt.Errorf("partition: reading checksum: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(u32[:]); stored != computed {
		return nil, fmt.Errorf("partition: checksum mismatch: stored %08x computed %08x", stored, computed)
	}

	s := &Sharded{g: g, asn: asn, cells: cells, cl: cl, selfContained: selfContained}
	if opt.DiskResident {
		fraction := opt.CacheFraction
		if fraction <= 0 {
			fraction = 0.05
		}
		s.attachTracker(fraction, opt.MissLatency)
	}
	s.stats = s.computeStats()
	return s, nil
}

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
