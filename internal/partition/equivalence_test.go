package partition

import (
	"math"
	"math/rand"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/knn"
	"silc/internal/sssp"
)

const eps = 1e-9

func approxEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

// testNetworks returns small strongly connected networks spanning the
// generator family plus a hand-built irregular one.
func testNetworks(t *testing.T) map[string]*graph.Network {
	t.Helper()
	out := map[string]*graph.Network{}
	g, err := graph.GenerateGrid(9, 11)
	if err != nil {
		t.Fatal(err)
	}
	out["grid9x11"] = g
	for _, seed := range []int64{1, 7} {
		g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 14, Cols: 14, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out["road14x14"+string(rune('a'+seed))] = g
	}
	g, err = graph.GenerateRingRadial(4, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["ring4x9"] = g
	return out
}

// pathCells counts the distinct cells a vertex path passes through.
func pathCells(s *Sharded, path []graph.VertexID) int {
	seen := map[int32]bool{}
	for _, v := range path {
		seen[s.asn.CellOf[v]] = true
	}
	return len(seen)
}

// TestShardedEquivalence is the sharded-correctness property test: on small
// networks, for every partition count, sharded distances, intervals, paths,
// kNN results and range queries must match the monolithic index and the
// Dijkstra/Floyd-Warshall ground truth — including pairs whose shortest
// path crosses two or more partition boundaries.
func TestShardedEquivalence(t *testing.T) {
	for name, g := range testNetworks(t) {
		mono, err := core.Build(g, core.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: monolithic build: %v", name, err)
		}
		truth := sssp.FloydWarshall(g)
		for _, p := range []int{1, 2, 3, 4, 7} {
			if p > g.NumVertices() {
				continue
			}
			s, err := Build(g, Options{Partitions: p})
			if err != nil {
				t.Fatalf("%s P=%d: build: %v", name, p, err)
			}
			checkEquivalence(t, name, g, mono, s, truth, p)
		}
	}
}

func checkEquivalence(t *testing.T, name string, g *graph.Network, mono *core.Index, s *Sharded, truth [][]float64, p int) {
	t.Helper()
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(42))
	type pair struct{ u, v graph.VertexID }
	var pairs []pair
	if n*n <= 4000 {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				pairs = append(pairs, pair{graph.VertexID(u), graph.VertexID(v)})
			}
		}
	} else {
		for i := 0; i < 4000; i++ {
			pairs = append(pairs, pair{graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))})
		}
	}

	multiCross := 0 // pairs whose sharded path spans ≥ 3 cells (≥ 2 boundary crossings)
	qc := core.NewQueryContext()
	for _, pr := range pairs {
		want := truth[pr.u][pr.v]
		got := s.DistanceCtx(qc, pr.u, pr.v)
		if !approxEq(got, want) {
			t.Fatalf("%s P=%d: Distance(%d,%d) = %v, truth %v", name, p, pr.u, pr.v, got, want)
		}
		iv := s.DistanceIntervalCtx(qc, pr.u, pr.v)
		if iv.Lo > want+eps || iv.Hi < want-eps {
			t.Fatalf("%s P=%d: interval [%v,%v] of (%d,%d) excludes truth %v",
				name, p, iv.Lo, iv.Hi, pr.u, pr.v, want)
		}
		path := s.PathCtx(qc, pr.u, pr.v)
		if len(path) == 0 || path[0] != pr.u || path[len(path)-1] != pr.v {
			t.Fatalf("%s P=%d: path(%d,%d) endpoints wrong: %v", name, p, pr.u, pr.v, path)
		}
		if w := sssp.PathWeight(g, path); !approxEq(w, want) {
			t.Fatalf("%s P=%d: path(%d,%d) weighs %v, truth %v", name, p, pr.u, pr.v, w, want)
		}
		if pathCells(s, path) >= 3 {
			multiCross++
		}
		// The router cache is per source; vary sources across the pair list
		// but keep one context alive to exercise reuse and replacement.
		if rng.Intn(4) == 0 {
			qc = core.NewQueryContext()
		}
	}
	if p >= 4 && multiCross == 0 {
		t.Fatalf("%s P=%d: no test pair crossed ≥ 2 partition boundaries", name, p)
	}

	// kNN and range correctness against ground truth, monolithic and sharded
	// side by side on identical object sets. Reported distances of
	// not-fully-refined neighbors are interval bounds that legitimately
	// differ between the two indexes, so each result is verified against the
	// true k-nearest distance multiset instead of against the other result.
	objVerts := make([]graph.VertexID, 0, n/3+1)
	perm := rng.Perm(n)
	for _, v := range perm[:n/3+1] {
		objVerts = append(objVerts, graph.VertexID(v))
	}
	monoObjs := knn.NewObjects(g, objVerts)
	shardObjs := knn.NewObjects(g, objVerts)
	for trial := 0; trial < 12; trial++ {
		q := graph.VertexID(rng.Intn(n))
		k := 1 + rng.Intn(8)
		trueDists := make([]float64, len(objVerts))
		for i, v := range objVerts {
			trueDists[i] = truth[q][v]
		}
		insertionSort(trueDists)
		for _, variant := range knn.Variants {
			mr := knn.Search(mono, monoObjs, q, k, variant)
			sr := knn.Search(s, shardObjs, q, k, variant)
			verifyKNN(t, name, p, "mono/"+variant.String(), truth, q, k, trueDists, mr)
			verifyKNN(t, name, p, "sharded/"+variant.String(), truth, q, k, trueDists, sr)
		}
		radius := truth[q][graph.VertexID(rng.Intn(n))] * 0.8
		loCount, hiCount := 0, 0
		for _, d := range trueDists {
			if d <= radius-eps {
				loCount++
			}
			if d <= radius+eps {
				hiCount++
			}
		}
		for label, res := range map[string]knn.Result{
			"mono":    knn.RangeSearch(mono, monoObjs, q, radius),
			"sharded": knn.RangeSearch(s, shardObjs, q, radius),
		} {
			if got := len(res.Neighbors); got < loCount || got > hiCount {
				t.Fatalf("%s P=%d %s: range(%d, %v) reported %d objects, truth says [%d,%d]",
					name, p, label, q, radius, got, loCount, hiCount)
			}
		}
	}
}

// verifyKNN checks one kNN result against ground truth: the reported
// objects' true distances must form the k smallest distances in the object
// set (ties may swap members; distances decide), and every Exact-flagged
// distance must be the true one.
func verifyKNN(t *testing.T, name string, p int, label string, truth [][]float64, q graph.VertexID, k int, sortedTrue []float64, r knn.Result) {
	t.Helper()
	want := k
	if len(sortedTrue) < k {
		want = len(sortedTrue)
	}
	if len(r.Neighbors) != want {
		t.Fatalf("%s P=%d %s q=%d k=%d: got %d neighbors, want %d",
			name, p, label, q, k, len(r.Neighbors), want)
	}
	got := make([]float64, 0, len(r.Neighbors))
	for _, nb := range r.Neighbors {
		td := truth[q][nb.Object.Vertex]
		got = append(got, td)
		if nb.Exact && !approxEq(nb.Dist, td) {
			t.Fatalf("%s P=%d %s q=%d k=%d: exact neighbor at %d reports %v, truth %v",
				name, p, label, q, k, nb.Object.Vertex, nb.Dist, td)
		}
		if nb.Interval.Lo > td+eps || nb.Interval.Hi < td-eps {
			t.Fatalf("%s P=%d %s q=%d k=%d: neighbor %d interval [%v,%v] excludes truth %v",
				name, p, label, q, k, nb.Object.Vertex, nb.Interval.Lo, nb.Interval.Hi, td)
		}
	}
	insertionSort(got)
	for i := range got {
		if !approxEq(got[i], sortedTrue[i]) {
			t.Fatalf("%s P=%d %s q=%d k=%d: rank-%d true distance %v, want %v (full: %v)",
				name, p, label, q, k, i, got[i], sortedTrue[i], got)
		}
	}
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
