package partition

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"silc/internal/core"
	"silc/internal/graph"
)

// buildPagedImage builds a sharded index over a road network and returns
// it plus its serialized paged image.
func buildPagedImage(t *testing.T) (*Sharded, []byte) {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 23})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sx, err := Build(g, Options{Partitions: 4})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := sx.WritePaged(&buf); err != nil {
		t.Fatalf("write paged: %v", err)
	}
	return sx, buf.Bytes()
}

// TestOpenPagedRoundTrip checks the paged sharded open answers exactly
// like the in-RAM sharded index.
func TestOpenPagedRoundTrip(t *testing.T) {
	sx, img := buildPagedImage(t)
	px, err := OpenPaged(bytes.NewReader(img), int64(len(img)), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	n := sx.Network().NumVertices()
	for u := 0; u < n; u += 7 {
		for v := 0; v < n; v += 11 {
			qc := core.NewQueryContext()
			want := core.ExactDistance(sx, nil, graph.VertexID(u), graph.VertexID(v))
			got := core.ExactDistance(px, qc, graph.VertexID(u), graph.VertexID(v))
			if err := qc.Err(); err != nil {
				t.Fatalf("paged distance %d->%d: %v", u, v, err)
			}
			if math.Abs(want-got) > 1e-9*(1+want) {
				t.Fatalf("distance %d->%d: paged %v, in-RAM %v", u, v, got, want)
			}
		}
	}
}

// TestCorruptCellPageErrorsNotPanics corrupts one block page inside a cell
// image of a sharded paged file and checks that cross-cell path retrieval
// through that cell surfaces an error on the query context — never a panic
// (the stitcher indexes into cell path segments) and never a wrong path.
func TestCorruptCellPageErrorsNotPanics(t *testing.T) {
	sx, img := buildPagedImage(t)

	// Locate the last cell's image via the cell table, then its first block
	// page via the embedded superblock, and flip a byte there: the page CRC
	// check fails lazily, at query time.
	le := binary.LittleEndian
	p := int(le.Uint32(img[12:16]))
	cellTabOff := int64(le.Uint64(img[44:52]))
	victim := p - 1
	imageOff := int64(le.Uint64(img[cellTabOff+int64(victim)*24:]))
	blockOff := int64(le.Uint64(img[imageOff+56 : imageOff+64]))
	corrupt := append([]byte(nil), img...)
	corrupt[imageOff+blockOff] ^= 0xFF

	px, err := OpenPaged(bytes.NewReader(corrupt), int64(len(corrupt)), Options{})
	if err != nil {
		t.Fatalf("open (block pages are lazy; corruption must not fail open): %v", err)
	}

	// A query vertex outside the victim cell, destinations inside it.
	var src, dst graph.VertexID = -1, -1
	for v := 0; v < px.Network().NumVertices(); v++ {
		if px.CellOf(graph.VertexID(v)) != victim && src < 0 {
			src = graph.VertexID(v)
		}
		if px.CellOf(graph.VertexID(v)) == victim {
			dst = graph.VertexID(v)
		}
	}
	if src < 0 || dst < 0 {
		t.Fatal("could not pick a cross-cell pair")
	}

	sawErr := false
	for v := 0; v < px.Network().NumVertices() && !sawErr; v++ {
		if px.CellOf(graph.VertexID(v)) != victim {
			continue
		}
		qc := core.NewQueryContext()
		path := px.PathCtx(qc, src, graph.VertexID(v)) // must not panic
		if err := qc.Err(); err != nil {
			sawErr = true
			if path != nil {
				t.Fatalf("failed query returned a non-nil path %v", path)
			}
			continue
		}
		// No error: the path must be the correct one.
		want := sx.PathCtx(nil, src, graph.VertexID(v))
		if len(path) != len(want) {
			t.Fatalf("path %d->%d: %d hops, want %d", src, v, len(path)-1, len(want)-1)
		}
	}
	if !sawErr {
		t.Fatal("corrupted cell page never surfaced as a query error")
	}
}
