// Package partition implements the sharded SILC index: a spatial
// partitioner splits the network into P cells, each cell carries its own
// independently built SILC index (O(n_p) Dijkstra sources instead of O(n),
// O(n_p^1.5) Morton blocks instead of O(n^1.5)), and a boundary closure —
// exact network distances between the cells' border vertices, computed once
// at build time — stitches cross-partition queries back together.
//
// The routing identity the whole package rests on: any shortest path that
// leaves or enters a cell does so through a boundary vertex, and every
// maximal path segment between consecutive boundary vertices lies inside a
// single cell (an edge out of a cell-interior vertex cannot cross cells —
// crossing would make the vertex a boundary vertex). Therefore, with
// d_c(·,·) the within-cell distance of cell c and D(·,·) the global
// boundary-to-boundary closure,
//
//	d(u, b)  =  min over b1 ∈ B(cell(u)) of  d_p(u, b1) + D(b1, b)
//
// for every boundary vertex b (the "gateway closure" of u), and
//
//	d(u, v)  =  min( [cell(u) == cell(v)]·d_p(u, v),
//	                 min over b ∈ B(cell(v)) of  d(u, b) + d_q(b, v) )
//
// for every vertex v in cell q. Both are exact, not approximations; the
// equivalence tests assert sharded results match monolithic SILC and
// Dijkstra ground truth.
package partition

import (
	"fmt"
	"sort"

	"silc/internal/geom"
	"silc/internal/graph"
)

// Assignment maps the network's vertices onto P spatial cells. It is fully
// determined by the CellOf labeling; the remaining fields are derived views
// shared by the builder and the loader (see assignmentFromCellOf).
type Assignment struct {
	P int
	// CellOf maps each global vertex to its cell.
	CellOf []int32
	// LocalOf maps each global vertex to its dense id within its cell.
	LocalOf []int32
	// Verts lists each cell's global vertex ids in Morton-rank order; the
	// position in this list is the vertex's local id.
	Verts [][]graph.VertexID
	// Boxes is the bounding box of each cell's vertices, used by region
	// pruning to decide which cells a query rectangle can touch.
	Boxes []geom.Rect
	// CutEdges counts directed edges whose endpoints lie in different cells.
	CutEdges int
}

// KDCut partitions the network into p cells by a recursive kd-cut over the
// vertex coordinates: each recursion splits the current vertex set at the
// proportional median along its wider bounding-box axis, so cells stay
// spatially compact (low edge cut on road networks) and balanced within one
// vertex even when p is not a power of two. Cells are numbered in recursion
// order, which follows a Z-like pattern over space; within each cell local
// ids follow the global Morton order.
func KDCut(g *graph.Network, p int) (*Assignment, error) {
	n := g.NumVertices()
	if p < 1 {
		return nil, fmt.Errorf("partition: need at least 1 partition, got %d", p)
	}
	if p > n {
		return nil, fmt.Errorf("partition: %d partitions exceed %d vertices", p, n)
	}
	cellOf := make([]int32, n)
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	next := int32(0)
	kdcut(g, ids, p, &next, cellOf)
	return assignmentFromCellOf(g, cellOf, p)
}

// kdcut assigns cell labels to ids, consuming parts cell numbers from next.
func kdcut(g *graph.Network, ids []graph.VertexID, parts int, next *int32, cellOf []int32) {
	if parts == 1 {
		c := *next
		*next++
		for _, v := range ids {
			cellOf[v] = c
		}
		return
	}
	left := parts / 2
	// Split proportionally so every final cell receives ≥ 1 vertex (callers
	// guarantee len(ids) ≥ parts).
	at := len(ids) * left / parts
	if at < left {
		at = left
	}
	if rem := len(ids) - at; rem < parts-left {
		at = len(ids) - (parts - left)
	}

	var minX, minY, maxX, maxY float64
	for i, v := range ids {
		pt := g.Point(v)
		if i == 0 || pt.X < minX {
			minX = pt.X
		}
		if i == 0 || pt.X > maxX {
			maxX = pt.X
		}
		if i == 0 || pt.Y < minY {
			minY = pt.Y
		}
		if i == 0 || pt.Y > maxY {
			maxY = pt.Y
		}
	}
	byX := maxX-minX >= maxY-minY
	sort.Slice(ids, func(i, j int) bool {
		a, b := g.Point(ids[i]), g.Point(ids[j])
		if byX {
			if a.X != b.X {
				return a.X < b.X
			}
			if a.Y != b.Y {
				return a.Y < b.Y
			}
		} else {
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			if a.X != b.X {
				return a.X < b.X
			}
		}
		return ids[i] < ids[j]
	})
	kdcut(g, ids[:at], left, next, cellOf)
	kdcut(g, ids[at:], parts-left, next, cellOf)
}

// assignmentFromCellOf derives the full Assignment from a cell labeling.
// It is the single source of truth for local-id ordering (global Morton
// order within each cell), so an assignment reconstructed by the loader is
// bit-identical to the one the builder produced.
func assignmentFromCellOf(g *graph.Network, cellOf []int32, p int) (*Assignment, error) {
	n := g.NumVertices()
	asn := &Assignment{
		P:       p,
		CellOf:  cellOf,
		LocalOf: make([]int32, n),
		Verts:   make([][]graph.VertexID, p),
		Boxes:   make([]geom.Rect, p),
	}
	for _, v := range g.MortonOrder() {
		c := cellOf[v]
		if c < 0 || int(c) >= p {
			return nil, fmt.Errorf("partition: vertex %d has cell %d outside [0,%d)", v, c, p)
		}
		asn.LocalOf[v] = int32(len(asn.Verts[c]))
		asn.Verts[c] = append(asn.Verts[c], v)
	}
	for c := 0; c < p; c++ {
		if len(asn.Verts[c]) == 0 {
			return nil, fmt.Errorf("partition: cell %d is empty", c)
		}
		box := geom.Rect{}
		for i, v := range asn.Verts[c] {
			pt := g.Point(v)
			if i == 0 {
				box = geom.Rect{MinX: pt.X, MinY: pt.Y, MaxX: pt.X, MaxY: pt.Y}
				continue
			}
			if pt.X < box.MinX {
				box.MinX = pt.X
			}
			if pt.X > box.MaxX {
				box.MaxX = pt.X
			}
			if pt.Y < box.MinY {
				box.MinY = pt.Y
			}
			if pt.Y > box.MaxY {
				box.MaxY = pt.Y
			}
		}
		asn.Boxes[c] = box
	}
	for v := 0; v < n; v++ {
		targets, _ := g.Neighbors(graph.VertexID(v))
		for _, t := range targets {
			if cellOf[v] != cellOf[t] {
				asn.CutEdges++
			}
		}
	}
	return asn, nil
}

// subnetwork builds cell c's induced subgraph: the cell's vertices (local
// ids in Verts order) plus every intra-cell edge.
func subnetwork(g *graph.Network, asn *Assignment, c int) (*graph.Network, error) {
	b := graph.NewBuilder()
	for _, v := range asn.Verts[c] {
		b.AddVertex(g.Point(v))
	}
	for _, v := range asn.Verts[c] {
		targets, weights := g.Neighbors(v)
		for i, t := range targets {
			if asn.CellOf[t] == int32(c) {
				b.AddEdge(graph.VertexID(asn.LocalOf[v]), graph.VertexID(asn.LocalOf[t]), weights[i])
			}
		}
	}
	return b.Build()
}
