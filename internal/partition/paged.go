package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"silc/internal/core"
	"silc/internal/diskio"
	"silc/internal/graph"
	"silc/internal/store"
)

// The sharded paged file format ("SILCSPG1"; "SILCSPG2" when the cell
// images are compressed) is the page-aligned, demand-paged counterpart of
// SILCSHD1: partition metadata plus one complete embedded store image per
// cell, each opened as its own ReadAt-backed store while sharing ONE buffer
// pool — the paper's cache fraction stays a property of the whole database.
//
//	superblock   64 bytes   magic, page size, P, n, m, nb, section offsets
//	network      the GLOBAL network (store network-section encoding + CRC)
//	meta         selfContained flags, cellOf labels, closure D/hop + CRC
//	cell table   P x (imageOff, imageSize, pageBase) + CRC
//	cells        page-aligned embedded SILCPG1/SILCPG2 images (one per cell)
//
// Everything is little-endian; offsets are absolute file offsets. The
// global network is embedded, so a sharded paged file is self-contained
// exactly like the monolithic one.

const shardedPagedSuperblockSize = 64

// shardedLayout is the fully planned sharded paged file: section offsets
// plus one ready-to-stream image plan per cell.
type shardedLayout struct {
	metaSize    int64
	cellTabOff  int64
	cellTabSize int64
	plans       []*store.ImagePlan
	offs        []int64
	sizes       []int64
	bases       []int64
	fileSize    int64
}

// planPagedLayout plans every cell image and lays out the sharded file.
// Under compression the per-cell image sizes are only known after encoding,
// which is why planning precedes any writing.
func (s *Sharded) planPagedLayout() (*shardedLayout, error) {
	if s.cells == nil {
		return nil, fmt.Errorf("partition: a remote (router-side) index holds no cell images to serialize")
	}
	g := s.g
	p := s.asn.P
	n, m := g.NumVertices(), g.NumEdges()
	nb := s.cl.NB()

	l := &shardedLayout{
		metaSize: int64(p) + int64(n)*4 + int64(nb)*int64(nb)*12 + 4,
		plans:    make([]*store.ImagePlan, p),
		offs:     make([]int64, p),
		sizes:    make([]int64, p),
		bases:    make([]int64, p),
	}
	l.cellTabOff = shardedPagedSuperblockSize + store.NetworkSectionSize(n, m) + l.metaSize
	l.cellTabSize = int64(p)*24 + 4

	// Cell layout: page-aligned embedded images, page ids concatenated.
	at := store.Align(l.cellTabOff+l.cellTabSize, store.PageSize)
	var pages int64
	for c, cx := range s.cells {
		pl, err := cx.ix.PlanPaged()
		if err != nil {
			return nil, fmt.Errorf("partition: planning cell %d image: %w", c, err)
		}
		l.plans[c] = pl
		l.offs[c] = at
		l.sizes[c] = pl.ImageSize()
		l.bases[c] = pages
		pages += pl.BlockPages()
		at = store.Align(at+l.sizes[c], store.PageSize)
	}
	l.fileSize = at // already page-aligned past the last cell image
	return l, nil
}

// PagedImageInfo reports the section layout of the sharded paged image
// WritePaged would produce: per-cell sections summed, partition metadata
// counted under Extents, and the fixed-width footprint of the same index
// for the compression ratio. It plans (and under compression, encodes)
// every cell image, so it costs about as much as a write.
func (s *Sharded) PagedImageInfo() (store.ImageInfo, error) {
	l, err := s.planPagedLayout()
	if err != nil {
		return store.ImageInfo{}, err
	}
	out := store.ImageInfo{
		Compression: s.comp,
		Superblock:  shardedPagedSuperblockSize,
		Network:     store.NetworkSectionSize(s.g.NumVertices(), s.g.NumEdges()),
		Extents:     l.metaSize + l.cellTabSize,
		Total:       l.fileSize,
	}
	fw := store.Align(l.cellTabOff+l.cellTabSize, store.PageSize)
	for _, pl := range l.plans {
		info := pl.Info()
		out.Superblock += info.Superblock
		out.Network += info.Network
		out.Extents += info.Extents
		out.BlockSection += info.BlockSection
		out.CRCTable += info.CRCTable
		out.BlockPages += info.BlockPages
		out.TotalBlocks += info.TotalBlocks
		out.RawBlockBytes += info.RawBlockBytes
		fw = store.Align(fw+info.FixedWidthTotal, store.PageSize)
	}
	out.FixedWidthTotal = fw
	return out, nil
}

// WritePaged serializes the sharded index in the paged on-disk format in a
// single streaming pass over the planned layout.
func (s *Sharded) WritePaged(w io.Writer) (int64, error) {
	g := s.g
	p := s.asn.P
	n, m := g.NumVertices(), g.NumEdges()
	nb := s.cl.NB()

	l, err := s.planPagedLayout()
	if err != nil {
		return 0, err
	}
	netOff := int64(shardedPagedSuperblockSize)
	metaOff := netOff + store.NetworkSectionSize(n, m)
	metaSize := l.metaSize
	cellTabOff := l.cellTabOff
	cellTabSize := l.cellTabSize
	offs, sizes, bases := l.offs, l.sizes, l.bases
	fileSize := l.fileSize

	cw := &countingWriter{w: bufio.NewWriter(w)}
	le := binary.LittleEndian

	magic := store.ShardedMagicString
	if s.comp == store.CompressionDelta {
		magic = store.ShardedMagic2String
	}
	head := make([]byte, shardedPagedSuperblockSize)
	copy(head[0:8], magic)
	le.PutUint32(head[8:12], uint32(store.PageSize))
	le.PutUint32(head[12:16], uint32(p))
	le.PutUint32(head[16:20], uint32(n))
	le.PutUint32(head[20:24], uint32(m))
	le.PutUint32(head[24:28], uint32(nb))
	le.PutUint64(head[28:36], uint64(netOff))
	le.PutUint64(head[36:44], uint64(metaOff))
	le.PutUint64(head[44:52], uint64(cellTabOff))
	le.PutUint64(head[52:60], uint64(fileSize))
	le.PutUint32(head[60:64], crc32.ChecksumIEEE(head[:60]))
	if _, err := cw.Write(head); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(store.EncodeNetworkSection(g)); err != nil {
		return cw.n, err
	}

	meta := make([]byte, metaSize)
	mb := meta
	for c := 0; c < p; c++ {
		if s.selfContained[c] {
			mb[c] = 1
		}
	}
	mb = mb[p:]
	for i, c := range s.asn.CellOf {
		le.PutUint32(mb[i*4:], uint32(c))
	}
	mb = mb[n*4:]
	for i, d := range s.cl.D {
		le.PutUint64(mb[i*8:], math.Float64bits(d))
	}
	mb = mb[nb*nb*8:]
	for i, h := range s.cl.Hop {
		le.PutUint32(mb[i*4:], uint32(h))
	}
	mb = mb[nb*nb*4:]
	le.PutUint32(mb, crc32.ChecksumIEEE(meta[:metaSize-4]))
	if _, err := cw.Write(meta); err != nil {
		return cw.n, err
	}

	tab := make([]byte, cellTabSize)
	for c := 0; c < p; c++ {
		le.PutUint64(tab[c*24:], uint64(offs[c]))
		le.PutUint64(tab[c*24+8:], uint64(sizes[c]))
		le.PutUint64(tab[c*24+16:], uint64(bases[c]))
	}
	le.PutUint32(tab[p*24:], crc32.ChecksumIEEE(tab[:p*24]))
	if _, err := cw.Write(tab); err != nil {
		return cw.n, err
	}

	for c := range s.cells {
		if err := padTo(cw, offs[c]); err != nil {
			return cw.n, err
		}
		written, err := l.plans[c].WriteTo(cw)
		if err != nil {
			return cw.n, err
		}
		if written != sizes[c] {
			return cw.n, fmt.Errorf("partition: cell %d image wrote %d bytes, predicted %d (format drift)", c, written, sizes[c])
		}
	}
	if err := padTo(cw, fileSize); err != nil {
		return cw.n, err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func padTo(cw *countingWriter, off int64) error {
	if cw.n > off {
		return fmt.Errorf("partition: overran section boundary %d (at %d)", off, cw.n)
	}
	_, err := cw.Write(make([]byte, off-cw.n))
	return err
}

// OpenPaged opens a sharded paged file: partition metadata and the global
// network load eagerly, then every cell opens its own store over its
// embedded image — all cells sharing one buffer pool sized by
// opt.CacheFraction of the whole database (opt.CachePages overrides).
func OpenPaged(ra io.ReaderAt, size int64, opt Options) (*Sharded, error) {
	h, err := readPagedMeta(ra, size)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	comp := h.comp
	p, n := h.asn.P, h.g.NumVertices()
	cellTabOff, fileSize := h.cellTabOff, h.fileSize
	g, asn, cl, selfContained := h.g, h.asn, h.cl, h.selfContained
	if opt.Mapped != nil && int64(len(opt.Mapped)) < fileSize {
		return nil, fmt.Errorf("partition: mapping of %d bytes does not cover the %d-byte file", len(opt.Mapped), fileSize)
	}

	tab := make([]byte, int64(p)*24+4)
	if _, err := ra.ReadAt(tab, cellTabOff); err != nil {
		return nil, fmt.Errorf("partition: reading cell table: %w", err)
	}
	if stored, computed := le.Uint32(tab[p*24:]), crc32.ChecksumIEEE(tab[:p*24]); stored != computed {
		return nil, fmt.Errorf("partition: cell table checksum mismatch: stored %08x computed %08x", stored, computed)
	}

	// One pool for the whole database: block pages of every cell plus the
	// modeled adjacency pages of the global network.
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		degrees[v] = g.Degree(graph.VertexID(v))
	}
	offs := make([]int64, p)
	sizes := make([]int64, p)
	bases := make([]int64, p)
	for c := 0; c < p; c++ {
		offs[c] = int64(le.Uint64(tab[c*24:]))
		sizes[c] = int64(le.Uint64(tab[c*24+8:]))
		bases[c] = int64(le.Uint64(tab[c*24+16:]))
		if offs[c] < cellTabOff || sizes[c] <= 0 || offs[c]+sizes[c] > fileSize {
			return nil, fmt.Errorf("partition: cell %d image [%d, +%d) out of file bounds", c, offs[c], sizes[c])
		}
	}

	// First open every cell store (page counts come from the images), then
	// size the shared pool.
	adjPages := diskio.NewLayout(degrees, diskio.AdjacencyEntrySize, diskio.DefaultPageSize).TotalPages()
	pager := store.NewPager(nil) // pool installed below, before any touch
	cells := make([]*cell, p)
	stores := make([]*store.Store, p)
	var totalBlockPages int64
	for c := 0; c < p; c++ {
		sub, err := subnetwork(g, asn, c)
		if err != nil {
			return nil, fmt.Errorf("partition: cell %d subnetwork: %w", c, err)
		}
		cellOpts := store.OpenOptions{
			Pager:    pager,
			PageBase: diskio.PageID(bases[c]),
		}
		if opt.Mapped != nil {
			cellOpts.Mapped = opt.Mapped[offs[c] : offs[c]+sizes[c]]
		}
		st, err := store.Open(io.NewSectionReader(ra, offs[c], sizes[c]), sizes[c], cellOpts)
		if err != nil {
			return nil, fmt.Errorf("partition: cell %d store: %w", c, err)
		}
		if st.Compression() != comp {
			return nil, fmt.Errorf("partition: cell %d image encoded %v, sharded header says %v", c, st.Compression(), comp)
		}
		if bases[c] != totalBlockPages {
			return nil, fmt.Errorf("partition: cell %d page base %d, want %d", c, bases[c], totalBlockPages)
		}
		totalBlockPages += st.BlockPages()
		if st.Graph().NumVertices() != sub.NumVertices() || st.Graph().NumEdges() != sub.NumEdges() {
			return nil, fmt.Errorf("partition: cell %d embedded network (%d vertices, %d edges) does not match derived subnetwork (%d, %d)",
				c, st.Graph().NumVertices(), st.Graph().NumEdges(), sub.NumVertices(), sub.NumEdges())
		}
		stores[c] = st
		cells[c] = &cell{id: int32(c), sub: sub, toGlobal: asn.Verts[c]}
	}
	fraction := opt.CacheFraction
	if fraction <= 0 {
		fraction = 0.05
	}
	capacity := opt.CachePages
	if capacity <= 0 {
		capacity = int(float64(totalBlockPages+adjPages) * fraction)
	}
	pager.SetPool(diskio.NewPool(capacity, diskio.DefaultPoolShards))
	tracker := diskio.NewStoreTracker(totalBlockPages, degrees, pager.Pool(), opt.MissLatency)
	tracker.SetEvictionHandler(pager.Evict)
	for c := 0; c < p; c++ {
		st := stores[c]
		total, minB, maxB := st.BlockStats()
		cells[c].ix = core.NewPagedIndex(core.PagedConfig{
			Graph:       cells[c].sub,
			Source:      st,
			Tracker:     tracker,
			Radius:      st.Radius(),
			Lenient:     st.Lenient(),
			Compression: st.Compression(),
			Stats: core.BuildStats{
				Vertices:    cells[c].sub.NumVertices(),
				Edges:       cells[c].sub.NumEdges(),
				TotalBlocks: total,
				TotalBytes:  total * 16,
				MinBlocks:   minB,
				MaxBlocks:   maxB,
			},
		})
	}

	s := &Sharded{g: g, asn: asn, cells: cells, cl: cl, selfContained: selfContained, tracker: tracker, pager: pager, comp: comp}
	s.stats = s.computeStats()
	return s, nil
}

// pagedHeader is the parsed superblock + network + meta prefix of a sharded
// paged file — everything except the cell images themselves.
type pagedHeader struct {
	comp          store.Compression
	cellTabOff    int64
	fileSize      int64
	g             *graph.Network
	asn           *Assignment
	cl            *Closure
	selfContained []bool
}

// readPagedMeta reads and validates the metadata half of a sharded paged
// file: superblock, embedded global network, self-contained flags, cell
// labels, and boundary closure. It never touches the cell images, so it is
// cheap relative to a full open and is the whole state a stateless query
// router needs.
func readPagedMeta(ra io.ReaderAt, size int64) (*pagedHeader, error) {
	head := make([]byte, shardedPagedSuperblockSize)
	if _, err := ra.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("partition: reading superblock: %w", err)
	}
	le := binary.LittleEndian
	var comp store.Compression
	switch string(head[0:8]) {
	case store.ShardedMagicString:
		comp = store.CompressionNone
	case store.ShardedMagic2String:
		comp = store.CompressionDelta
	default:
		return nil, fmt.Errorf("partition: bad magic %q", head[0:8])
	}
	if stored, computed := le.Uint32(head[60:64]), crc32.ChecksumIEEE(head[:60]); stored != computed {
		return nil, fmt.Errorf("partition: superblock checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	pageSize := int64(le.Uint32(head[8:12]))
	p := int(le.Uint32(head[12:16]))
	n := int(le.Uint32(head[16:20]))
	m := int(le.Uint32(head[20:24]))
	nb := int(le.Uint32(head[24:28]))
	netOff := int64(le.Uint64(head[28:36]))
	metaOff := int64(le.Uint64(head[36:44]))
	cellTabOff := int64(le.Uint64(head[44:52]))
	fileSize := int64(le.Uint64(head[52:60]))
	if pageSize < 16 || pageSize > 1<<20 {
		return nil, fmt.Errorf("partition: invalid page size %d", pageSize)
	}
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("partition: invalid network dimensions n=%d m=%d", n, m)
	}
	if p < 1 || p > n {
		return nil, fmt.Errorf("partition: invalid partition count %d", p)
	}
	if nb < 0 || nb > n {
		return nil, fmt.Errorf("partition: invalid boundary count %d of %d vertices", nb, n)
	}
	if fileSize <= 0 || fileSize > size {
		return nil, fmt.Errorf("partition: file size %d exceeds available %d bytes", fileSize, size)
	}
	if netOff != shardedPagedSuperblockSize || metaOff != netOff+store.NetworkSectionSize(n, m) {
		return nil, fmt.Errorf("partition: inconsistent section offsets")
	}
	metaSize := int64(p) + int64(n)*4 + int64(nb)*int64(nb)*12 + 4
	if cellTabOff != metaOff+metaSize || cellTabOff+int64(p)*24+4 > fileSize {
		return nil, fmt.Errorf("partition: inconsistent section offsets")
	}

	netBuf := make([]byte, store.NetworkSectionSize(n, m))
	if _, err := ra.ReadAt(netBuf, netOff); err != nil {
		return nil, fmt.Errorf("partition: reading network section: %w", err)
	}
	g, err := store.DecodeNetworkSection(netBuf, n, m)
	if err != nil {
		return nil, err
	}

	meta := make([]byte, metaSize)
	if _, err := ra.ReadAt(meta, metaOff); err != nil {
		return nil, fmt.Errorf("partition: reading metadata: %w", err)
	}
	if stored, computed := le.Uint32(meta[metaSize-4:]), crc32.ChecksumIEEE(meta[:metaSize-4]); stored != computed {
		return nil, fmt.Errorf("partition: metadata checksum mismatch: stored %08x computed %08x", stored, computed)
	}
	selfContained := make([]bool, p)
	for c := 0; c < p; c++ {
		selfContained[c] = meta[c]&1 != 0
	}
	mb := meta[p:]
	cellOf := make([]int32, n)
	for v := range cellOf {
		c := le.Uint32(mb[v*4:])
		if int(c) >= p {
			return nil, fmt.Errorf("partition: vertex %d labeled with cell %d of %d", v, c, p)
		}
		cellOf[v] = int32(c)
	}
	mb = mb[n*4:]
	cl := &Closure{D: make([]float64, nb*nb), Hop: make([]int32, nb*nb)}
	for i := range cl.D {
		d := math.Float64frombits(le.Uint64(mb[i*8:]))
		if math.IsNaN(d) || d < 0 {
			return nil, fmt.Errorf("partition: invalid closure distance %v", d)
		}
		cl.D[i] = d
	}
	mb = mb[nb*nb*8:]
	for i := range cl.Hop {
		h := le.Uint32(mb[i*4:])
		if int(h) >= nb {
			return nil, fmt.Errorf("partition: closure hop %d out of %d rows", h, nb)
		}
		cl.Hop[i] = int32(h)
	}

	asn, err := assignmentFromCellOf(g, cellOf, p)
	if err != nil {
		return nil, err
	}
	b, rowOf, cellStart := boundaryRows(g, asn)
	if len(b) != nb {
		return nil, fmt.Errorf("partition: index records %d boundary vertices, network derives %d", nb, len(b))
	}
	cl.B, cl.RowOf, cl.CellStart = b, rowOf, cellStart
	return &pagedHeader{
		comp:          comp,
		cellTabOff:    cellTabOff,
		fileSize:      fileSize,
		g:             g,
		asn:           asn,
		cl:            cl,
		selfContained: selfContained,
	}, nil
}

// RouterMeta is the router-side view of a sharded paged file: the global
// network, cell labels, boundary closure, and self-contained flags — the
// exact routing state a stateless cluster router needs, read from the same
// bytes the cell nodes serve, so router and nodes can never disagree about
// the partitioning.
type RouterMeta struct {
	g             *graph.Network
	asn           *Assignment
	cl            *Closure
	selfContained []bool
	comp          store.Compression
}

// OpenPagedMeta reads the metadata sections of a sharded paged file without
// opening any cell image.
func OpenPagedMeta(ra io.ReaderAt, size int64) (*RouterMeta, error) {
	h, err := readPagedMeta(ra, size)
	if err != nil {
		return nil, err
	}
	return &RouterMeta{g: h.g, asn: h.asn, cl: h.cl, selfContained: h.selfContained, comp: h.comp}, nil
}

// Network returns the embedded global network.
func (m *RouterMeta) Network() *graph.Network { return m.g }

// NumPartitions returns the cell count P.
func (m *RouterMeta) NumPartitions() int { return m.asn.P }

// NumBoundary returns the total boundary-vertex (closure row) count.
func (m *RouterMeta) NumBoundary() int { return m.cl.NB() }

// CellOf returns the cell holding global vertex v.
func (m *RouterMeta) CellOf(v graph.VertexID) int { return int(m.asn.CellOf[v]) }

// CellVertexCount returns the number of vertices in cell c.
func (m *RouterMeta) CellVertexCount(c int) int { return len(m.asn.Verts[c]) }

// BoundaryRows returns the closure row range [lo, hi) of cell c.
func (m *RouterMeta) BoundaryRows(c int) (lo, hi int32) { return m.cl.Rows(int32(c)) }
