package partition

import (
	"fmt"
	"time"

	"silc/internal/core"
	"silc/internal/diskio"
	"silc/internal/graph"
	"silc/internal/store"
)

// Options configures Build.
type Options struct {
	// Partitions is the cell count P (1 degenerates to a monolithic build
	// behind the sharded interface).
	Partitions int
	// Parallelism bounds the build workers (0 = all CPUs); it applies to the
	// per-cell Dijkstra sweeps and the closure computation alike.
	Parallelism int
	// DiskResident attaches ONE paged-storage tracker spanning every cell
	// index plus the network, so the cache fraction stays a property of the
	// whole database rather than of each shard.
	DiskResident bool
	// CacheFraction sizes the shared LRU pool (default 0.05).
	CacheFraction float64
	// CachePages, when positive, overrides CacheFraction with an absolute
	// page capacity for the paged (OpenPaged) configuration. Tests use it
	// to force heavy eviction.
	CachePages int
	// MissLatency is the modeled cost per page miss (0 = default).
	MissLatency time.Duration
	// Compression selects the block-page encoding WritePaged emits for every
	// cell image: CompressionNone for fixed-width SILCSPG1, CompressionDelta
	// for the delta+varint SILCSPG2. Reading accepts both regardless.
	Compression store.Compression
	// Mapped, when non-nil in OpenPaged, is the whole file memory-mapped (or
	// otherwise resident): each cell store decodes straight out of its
	// subslice with no ReadAt and no gather copy. Must cover the file and
	// stay valid until the index is released.
	Mapped []byte
}

// Stats describes a completed sharded build.
type Stats struct {
	Partitions       int
	Vertices         int
	Edges            int
	BoundaryVertices int
	CutEdges         int
	MinCellVertices  int
	MaxCellVertices  int
	// SelfContained counts cells where no boundary pair has a shorter path
	// through the outside; intra-cell queries there delegate straight to the
	// cell index with no closure work.
	SelfContained int
	// CellBlocks/CellBytes total the Morton-block storage across cells —
	// Θ(n^1.5/√P) versus the monolithic Θ(n^1.5).
	CellBlocks int64
	CellBytes  int64
	// ClosureBytes is the boundary distance+hop matrix footprint.
	ClosureBytes  int64
	TotalBytes    int64
	PartitionTime time.Duration
	CellBuildTime time.Duration
	ClosureTime   time.Duration
	BuildTime     time.Duration
	// Cells holds each cell index's own build statistics.
	Cells []core.BuildStats
}

// cell is one shard: the induced subnetwork and its SILC index, plus the
// local↔global vertex-id mapping.
type cell struct {
	id       int32
	sub      *graph.Network
	ix       *core.Index
	toGlobal []graph.VertexID
}

// Sharded is a partitioned SILC index over one network: P per-cell indexes
// plus the boundary closure. Like the monolithic index it is read-only on
// the query path — per-query state (including the gateway-closure cache)
// lives in core.QueryContext — so any number of goroutines may query one
// shared Sharded concurrently.
type Sharded struct {
	g     *graph.Network
	asn   *Assignment
	cells []*cell
	// remote, when non-nil, replaces the in-process cells with one CellIndex
	// backend per cell (NewRemote): the router-side half of a cluster
	// deployment. All per-cell work goes through qcell, which prefers it.
	remote        []CellIndex
	cl            *Closure
	selfContained []bool
	tracker       *diskio.Tracker
	// pager is set by OpenPaged: the shared real-page pool behind every
	// cell store, reporting actual read counters.
	pager *store.Pager
	// comp is the block-page encoding WritePaged emits (for an opened paged
	// index, the encoding of the file it came from).
	comp  store.Compression
	stats Stats
}

// Compression returns the block-page encoding WritePaged will emit.
func (s *Sharded) Compression() store.Compression { return s.comp }

// StorePager returns the shared on-disk pager of a paged (OpenPaged) index,
// nil for in-RAM and modeled configurations.
func (s *Sharded) StorePager() *store.Pager { return s.pager }

// Build partitions g into opt.Partitions cells, builds one SILC index per
// cell (each cell runs one Dijkstra per cell vertex over the cell subgraph
// only), computes the boundary closure, and validates that the network is
// strongly connected. The per-cell builds use AllowUnreachable — a cell's
// induced subgraph may legitimately be disconnected — and the closure
// restores global reachability.
func Build(g *graph.Network, opt Options) (*Sharded, error) {
	start := time.Now()
	p := opt.Partitions
	if p == 0 {
		p = 1
	}
	asn, err := KDCut(g, p)
	if err != nil {
		return nil, err
	}
	partitionTime := time.Since(start)

	cellStart := time.Now()
	cells := make([]*cell, p)
	for c := 0; c < p; c++ {
		sub, err := subnetwork(g, asn, c)
		if err != nil {
			return nil, fmt.Errorf("partition: cell %d subnetwork: %w", c, err)
		}
		ix, err := core.Build(sub, core.BuildOptions{
			Parallelism:      opt.Parallelism,
			AllowUnreachable: p > 1,
			Compression:      opt.Compression,
		})
		if err != nil {
			return nil, fmt.Errorf("partition: cell %d index: %w", c, err)
		}
		cells[c] = &cell{id: int32(c), sub: sub, ix: ix, toGlobal: asn.Verts[c]}
	}
	cellBuildTime := time.Since(cellStart)

	closureStart := time.Now()
	cl, err := buildClosure(g, asn, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	if err := validateCoverage(g, asn, cl, cells); err != nil {
		return nil, err
	}
	s := &Sharded{g: g, asn: asn, cells: cells, cl: cl, comp: opt.Compression}
	s.selfContained = s.computeSelfContained()
	closureTime := time.Since(closureStart)

	if opt.DiskResident {
		s.attachTracker(opt.CacheFraction, opt.MissLatency)
	}
	s.stats = s.computeStats()
	s.stats.PartitionTime = partitionTime
	s.stats.CellBuildTime = cellBuildTime
	s.stats.ClosureTime = closureTime
	s.stats.BuildTime = time.Since(start)
	return s, nil
}

// computeSelfContained flags cells where every boundary pair's within-cell
// distance already equals the global closure distance — no shortcut through
// the outside exists, so intra-cell queries can bypass the closure entirely.
func (s *Sharded) computeSelfContained() []bool {
	out := make([]bool, s.asn.P)
	for c := range out {
		out[c] = true
		lo, hi := s.cl.Rows(int32(c))
		cx := s.cells[c]
	pairs:
		for i := lo; i < hi; i++ {
			bi := graph.VertexID(s.asn.LocalOf[s.cl.B[i]])
			for j := lo; j < hi; j++ {
				if i == j {
					continue
				}
				bj := graph.VertexID(s.asn.LocalOf[s.cl.B[j]])
				if s.cl.At(int(i), int(j)) < core.ExactDistance(cx.ix, nil, bi, bj) {
					out[c] = false
					break pairs
				}
			}
		}
	}
	return out
}

// attachTracker builds the one shared paged-storage tracker: block owners
// are laid out cell-major (cell c's local vertex v at owner cellBase[c]+v),
// adjacency owners are the global network's vertices, and every cell index
// charges the same pool.
func (s *Sharded) attachTracker(fraction float64, latency time.Duration) {
	if fraction <= 0 {
		fraction = 0.05
	}
	n := s.g.NumVertices()
	blockCounts := make([]int, n)
	base := 0
	bases := make([]int, s.asn.P)
	for c, cx := range s.cells {
		bases[c] = base
		for lv := 0; lv < cx.sub.NumVertices(); lv++ {
			blockCounts[base+lv] = cx.ix.BlockCount(graph.VertexID(lv))
		}
		base += cx.sub.NumVertices()
	}
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		degrees[v] = s.g.Degree(graph.VertexID(v))
	}
	s.tracker = diskio.NewTracker(blockCounts, degrees, fraction, latency)
	for c, cx := range s.cells {
		cx.ix.AttachSharedTracker(s.tracker, bases[c])
	}
}

func (s *Sharded) computeStats() Stats {
	st := Stats{
		Partitions:       s.asn.P,
		Vertices:         s.g.NumVertices(),
		Edges:            s.g.NumEdges(),
		BoundaryVertices: s.cl.NB(),
		CutEdges:         s.asn.CutEdges,
		MinCellVertices:  s.g.NumVertices(),
		ClosureBytes:     s.cl.SizeBytes(),
		Cells:            make([]core.BuildStats, len(s.cells)),
	}
	for c, cx := range s.cells {
		cs := cx.ix.Stats()
		st.Cells[c] = cs
		st.CellBlocks += cs.TotalBlocks
		st.CellBytes += cs.TotalBytes
		if nv := cs.Vertices; nv < st.MinCellVertices {
			st.MinCellVertices = nv
		}
		if nv := cs.Vertices; nv > st.MaxCellVertices {
			st.MaxCellVertices = nv
		}
	}
	for _, sc := range s.selfContained {
		if sc {
			st.SelfContained++
		}
	}
	st.TotalBytes = st.CellBytes + st.ClosureBytes
	return st
}

// Network returns the full indexed network.
func (s *Sharded) Network() *graph.Network { return s.g }

// Tracker returns the shared paged-storage tracker, nil when memory-resident.
func (s *Sharded) Tracker() *diskio.Tracker { return s.tracker }

// Stats returns the sharded build statistics.
func (s *Sharded) Stats() Stats { return s.stats }

// NumPartitions returns P.
func (s *Sharded) NumPartitions() int { return s.asn.P }

// CellOf returns the cell holding vertex v.
func (s *Sharded) CellOf(v graph.VertexID) int { return int(s.asn.CellOf[v]) }

// Closure returns the boundary closure (read-only).
func (s *Sharded) Closure() *Closure { return s.cl }
