package partition

import (
	"math"

	"silc/internal/core"
	"silc/internal/geom"
	"silc/internal/graph"
)

// router is the per-query routing state for one source vertex: the exact
// within-cell distances from the source to its own cell's boundary (du),
// and — lazily per destination cell — the "gateway closure" A, the exact
// global distance from the source to every boundary vertex of that cell
// (A[b] = min over own-cell gateways b1 of du[b1] + D(b1, b)). One router is
// built per (QueryContext, source) and cached on the context, so a kNN
// query amortizes the boundary work across every object it inspects.
// Routers are owned by one goroutine, like the context that carries them.
type router struct {
	s   *Sharded
	qc  *core.QueryContext
	src graph.VertexID
	p   int32 // cell of src

	duReady bool
	du      []float64 // exact d_p(src, b) per own-cell boundary row (offset from row lo)

	gw    [][]float64 // per cell: A values per row offset; nil until computed
	gwArg [][]int32   // per cell: argmin own-cell row (global row id) behind each A value
	minA  []float64   // per cell: min over gw
	// epoch stamps each cell's gw/gwArg/minA entry with the rebind epoch it
	// was computed under; cur advances on every source change, invalidating
	// all cached closures at once without an O(P) clear.
	epoch []uint32
	cur   uint32

	// rrSlab recycles routeRefiners: handed out in order per query, reset en
	// masse when the context's reuse generation moves past qcGen (i.e. at the
	// first router use of a new query, when no refiner of the previous query
	// can still be live).
	rrSlab []*routeRefiner
	rrUsed int
	qcGen  uint64
}

// routerFor returns the context's cached router for src, building one on
// first use. A cached router is rebound in place on a source change —
// keeping the du buffer and every per-cell closure slice — and recycles its
// route-refiner slab whenever the context has been reset since its last
// use. A nil context gets a fresh uncached router.
func (s *Sharded) routerFor(qc *core.QueryContext, src graph.VertexID) *router {
	if qc != nil {
		if rt, ok := qc.Route.(*router); ok && rt.s == s {
			if g := qc.Gen(); g != rt.qcGen {
				rt.qcGen = g
				rt.recycleRefiners()
			}
			if rt.src != src {
				rt.rebind(src)
			}
			return rt
		}
	}
	rt := &router{
		s:     s,
		src:   src,
		p:     s.asn.CellOf[src],
		gw:    make([][]float64, s.asn.P),
		gwArg: make([][]int32, s.asn.P),
		minA:  make([]float64, s.asn.P),
		epoch: make([]uint32, s.asn.P),
		cur:   1,
	}
	if qc != nil {
		rt.qc = qc
		rt.qcGen = qc.Gen()
		qc.Route = rt
	}
	return rt
}

// rebind retargets the router at a new source vertex, invalidating every
// cached closure by advancing the epoch while keeping all allocations.
func (rt *router) rebind(src graph.VertexID) {
	rt.src = src
	rt.p = rt.s.asn.CellOf[src]
	rt.duReady = false
	rt.cur++
	if rt.cur == 0 { // wrapped: nothing may read as valid
		clear(rt.epoch)
		rt.cur = 1
	}
}

// recycleRefiners returns every handed-out routeRefiner to the slab,
// dropping the cell-refiner references they pinned but keeping their gates
// capacity.
func (rt *router) recycleRefiners() {
	for _, r := range rt.rrSlab[:rt.rrUsed] {
		gates := r.gates[:cap(r.gates)]
		clear(gates)
		*r = routeRefiner{gates: gates[:0]}
	}
	rt.rrUsed = 0
}

// newRR hands out the next slab routeRefiner, growing past the high-water
// mark only.
func (rt *router) newRR() *routeRefiner {
	if rt.rrUsed == len(rt.rrSlab) {
		rt.rrSlab = append(rt.rrSlab, new(routeRefiner))
	}
	r := rt.rrSlab[rt.rrUsed]
	rt.rrUsed++
	return r
}

// ensureDU refines the source's distance to each of its own cell's boundary
// vertices to exact. This is the one-time per-query cost of cross-cell
// routing: |B_p| progressive refinements on the source's cell index — or a
// single batch call when the cell backend offers one (a remote cell turns
// the whole sweep into one RPC).
func (rt *router) ensureDU() {
	if rt.duReady {
		return
	}
	s := rt.s
	lo, hi := s.cl.Rows(rt.p)
	if cap(rt.du) < int(hi-lo) {
		rt.du = make([]float64, hi-lo)
	}
	rt.du = rt.du[:hi-lo]
	cx := s.qcell(rt.p)
	srcLocal := graph.VertexID(s.asn.LocalOf[rt.src])
	if bd, ok := cx.(BoundaryDistancer); ok {
		for i := range rt.du {
			rt.du[i] = math.Inf(1)
		}
		copy(rt.du, bd.BoundaryDistances(rt.qc, srcLocal))
		rt.duReady = true
		return
	}
	for r := lo; r < hi; r++ {
		bLocal := graph.VertexID(s.asn.LocalOf[s.cl.B[r]])
		rt.du[r-lo] = CellExact(cx, rt.qc, srcLocal, bLocal)
	}
	rt.duReady = true
}

// gateways returns A (and the argmin own-cell gateway behind each entry) for
// destination cell c, computing and caching it on first use: an
// O(|B_p|·|B_c|) scan over the closure.
func (rt *router) gateways(c int32) ([]float64, []int32) {
	if rt.gw[c] != nil && rt.epoch[c] == rt.cur {
		return rt.gw[c], rt.gwArg[c]
	}
	rt.ensureDU()
	s := rt.s
	plo, phi := s.cl.Rows(rt.p)
	clo, chi := s.cl.Rows(c)
	nb := s.cl.NB()
	// A cell's boundary-row count never changes, so a stale-epoch slice is
	// exactly the right size to overwrite.
	a, arg := rt.gw[c], rt.gwArg[c]
	if a == nil {
		a = make([]float64, chi-clo)
		arg = make([]int32, chi-clo)
	}
	for j := range a {
		a[j] = math.Inf(1)
		arg[j] = -1
	}
	for i := plo; i < phi; i++ {
		d := rt.du[i-plo]
		if math.IsInf(d, 1) {
			continue
		}
		row := s.cl.D[int(i)*nb : (int(i)+1)*nb]
		for j := clo; j < chi; j++ {
			if v := d + row[j]; v < a[j-clo] {
				a[j-clo] = v
				arg[j-clo] = i
			}
		}
	}
	m := math.Inf(1)
	for _, v := range a {
		if v < m {
			m = v
		}
	}
	rt.gw[c] = a
	rt.gwArg[c] = arg
	rt.minA[c] = m
	rt.epoch[c] = rt.cur
	return a, arg
}

// minInto returns a lower bound on the global distance from the source to
// any vertex of cell c routed through c's boundary.
func (rt *router) minInto(c int32) float64 {
	if rt.gw[c] == nil || rt.epoch[c] != rt.cur {
		rt.gateways(c)
	}
	return rt.minA[c]
}

// Refine implements core.QueryIndex: progressive refinement of the global
// network distance (src, dst). Intra-cell pairs in self-contained cells
// delegate straight to the cell index — a single quadtree lookup, exactly
// the monolithic cost. Everything else races candidate routes: the direct
// within-cell route (same cell only) against one gateway route per boundary
// vertex of dst's cell, each bounded by the exact gateway closure plus the
// cell index's interval, refined where the aggregate interval demands.
func (s *Sharded) Refine(qc *core.QueryContext, src, dst graph.VertexID) core.DistanceRefiner {
	p, q := s.asn.CellOf[src], s.asn.CellOf[dst]
	if p == q && s.selfContained[p] {
		return s.qcell(p).Refine(qc,
			graph.VertexID(s.asn.LocalOf[src]), graph.VertexID(s.asn.LocalOf[dst]))
	}
	return s.newRouteRefiner(qc, src, dst)
}

// gate is one candidate route into the destination cell: the exact distance
// a to a boundary vertex of that cell plus the cell index's evolving
// interval for boundary→destination.
type gate struct {
	a      float64
	bLocal graph.VertexID
	civ    core.Interval
	r      core.DistanceRefiner // nil until first stepped
	exact  bool
}

func (g *gate) lo() float64 { return g.a + g.civ.Lo }
func (g *gate) hi() float64 { return g.a + g.civ.Hi }

// routeRefiner races the candidate routes for one (src, dst) pair. Its
// interval is [min over routes of route.lo, min over routes of route.hi] —
// both valid because the true distance is the min over routes of each
// route's exact value.
type routeRefiner struct {
	s        *Sharded
	qc       *core.QueryContext
	q        int32 // destination cell
	dstLocal graph.VertexID
	srcLocal graph.VertexID // valid only when direct != nil (same-cell pair)

	direct      core.DistanceRefiner // same-cell route; nil cross-cell
	directIv    core.Interval
	directExact bool

	gates []gate
	iv    core.Interval
	done  bool
	oor   bool
}

func (s *Sharded) newRouteRefiner(qc *core.QueryContext, src, dst graph.VertexID) *routeRefiner {
	rt := s.routerFor(qc, src)
	r := rt.newRR()
	r.s, r.qc, r.q = s, qc, s.asn.CellOf[dst]
	if src == dst {
		r.done = true
		return r
	}
	r.dstLocal = graph.VertexID(s.asn.LocalOf[dst])
	p := s.asn.CellOf[src]
	if p == r.q {
		r.srcLocal = graph.VertexID(s.asn.LocalOf[src])
		r.direct = s.qcell(p).Refine(qc, r.srcLocal, r.dstLocal)
		r.directIv = r.direct.Interval()
		r.directExact = r.direct.Done() || r.direct.OutOfRange()
	}
	a, _ := rt.gateways(r.q)
	lo, _ := s.cl.Rows(r.q)
	cx := s.qcell(r.q)
	// One batch call fetches every gate's boundary→dst interval when the
	// cell backend offers it (one RPC on a remote cell).
	var civs []core.Interval
	if bi, ok := cx.(BoundaryIntervaler); ok {
		civs = bi.BoundaryIntervals(qc, r.dstLocal, true)
	}
	r.gates = r.gates[:0]
	for j, av := range a {
		if math.IsInf(av, 1) {
			continue
		}
		bLocal := graph.VertexID(s.asn.LocalOf[s.cl.B[lo+int32(j)]])
		var civ core.Interval
		if j < len(civs) {
			civ = civs[j]
		} else {
			civ = cx.DistanceIntervalCtx(qc, bLocal, r.dstLocal)
		}
		g := gate{a: av, bLocal: bLocal, civ: civ}
		g.exact = civ.Lo >= civ.Hi || math.IsInf(civ.Lo, 1)
		r.gates = append(r.gates, g)
	}
	if qc != nil {
		qc.Span.CrossCell++
		qc.Span.GatewayRoutes += int64(len(r.gates))
	}
	r.recompute()
	return r
}

// recompute refreshes the aggregate interval, prunes gates that can no
// longer define the minimum, and decides completion (every surviving route
// exact ⇒ the aggregate has collapsed to the true distance).
func (r *routeRefiner) recompute() {
	lo, hi := math.Inf(1), math.Inf(1)
	if r.direct != nil {
		lo, hi = r.directIv.Lo, r.directIv.Hi
	}
	for i := range r.gates {
		g := &r.gates[i]
		if g.lo() < lo {
			lo = g.lo()
		}
		if g.hi() < hi {
			hi = g.hi()
		}
	}
	r.iv = core.Interval{Lo: lo, Hi: hi}
	kept := r.gates[:0]
	allExact := r.direct == nil || r.directExact || r.directIv.Lo > hi
	for i := range r.gates {
		g := r.gates[i]
		if g.lo() > hi {
			continue // cannot be the minimum: its value is at least lo > hi ≥ true distance
		}
		if !g.exact {
			allExact = false
		}
		kept = append(kept, g)
	}
	r.gates = kept
	if allExact {
		r.done = true
		if math.IsInf(lo, 1) {
			r.oor = true
		}
	}
}

func (r *routeRefiner) Interval() core.Interval { return r.iv }
func (r *routeRefiner) Done() bool              { return r.done }
func (r *routeRefiner) OutOfRange() bool        { return r.oor }

// Step refines the route currently defining the aggregate lower bound by
// one hop and returns false once the aggregate is exact.
func (r *routeRefiner) Step() bool {
	if r.done {
		return false
	}
	// A backend that races routes in one shot (a remote cell: one RPC instead
	// of a Step round-trip per refinement) collapses the whole race now.
	if rr, ok := r.s.qcell(r.q).(RouteRacer); ok {
		return r.stepRace(rr)
	}
	// Pick the non-exact route with the smallest lower bound — the route
	// holding the aggregate open.
	bestLo := math.Inf(1)
	bestGate := -1
	stepDirect := false
	if r.direct != nil && !r.directExact && !(r.directIv.Lo > r.iv.Hi) {
		bestLo = r.directIv.Lo
		stepDirect = true
	}
	for i := range r.gates {
		g := &r.gates[i]
		if g.exact {
			continue
		}
		if g.lo() < bestLo {
			bestLo = g.lo()
			bestGate = i
			stepDirect = false
		}
	}
	switch {
	case bestGate >= 0:
		g := &r.gates[bestGate]
		if g.r == nil {
			g.r = r.s.qcell(r.q).Refine(r.qc, g.bLocal, r.dstLocal)
		}
		g.r.Step()
		g.civ = g.r.Interval()
		g.exact = g.r.Done() || g.r.OutOfRange()
	case stepDirect:
		r.direct.Step()
		r.directIv = r.direct.Interval()
		r.directExact = r.direct.Done() || r.direct.OutOfRange()
	default:
		// Nothing steppable: every surviving route is exact.
		r.done = true
		if math.IsInf(r.iv.Lo, 1) {
			r.oor = true
		}
		return false
	}
	r.recompute()
	return !r.done
}

// stepRace resolves the remaining race in one shot on a RouteRacer backend:
// already-exact routes fold their values into the running minimum locally,
// and the non-exact ones become (offset, vertex) candidates for one
// RaceRoutes call. The result equals what progressive stepping converges to
// — RaceRoutes refines candidates in lower-bound order with the same cutoff
// — so exactness is preserved.
func (r *routeRefiner) stepRace(rr RouteRacer) bool {
	best := math.Inf(1)
	var offs []float64
	var us []graph.VertexID
	if r.direct != nil {
		if r.directExact {
			if !r.direct.OutOfRange() {
				best = r.directIv.Lo
			}
		} else {
			offs = append(offs, 0)
			us = append(us, r.srcLocal)
		}
	}
	for i := range r.gates {
		g := &r.gates[i]
		if g.exact {
			if v := g.lo(); v < best {
				best = v
			}
			continue
		}
		offs = append(offs, g.a)
		us = append(us, g.bLocal)
	}
	if len(offs) > 0 {
		if d, _ := rr.RaceRoutes(r.qc, r.dstLocal, offs, us); d < best {
			best = d
		}
	}
	r.iv = core.Interval{Lo: best, Hi: best}
	r.done = true
	r.oor = math.IsInf(best, 1)
	r.gates = r.gates[:0]
	return false
}

// RegionLowerBoundCtx implements core.QueryIndex: a lower bound on the
// global distance from q to any vertex inside rect. The source's own cell
// contributes its quadtree's region bound; any other cell intersecting the
// rectangle contributes the distance to its nearest gateway.
func (s *Sharded) RegionLowerBoundCtx(qc *core.QueryContext, q graph.VertexID, rect geom.Rect) float64 {
	p := s.asn.CellOf[q]
	var rt *router
	best := math.Inf(1)
	for c := int32(0); c < int32(s.asn.P); c++ {
		if !s.asn.Boxes[c].Intersects(rect) {
			continue
		}
		var m float64
		if c == p {
			m = s.qcell(p).RegionLowerBoundCtx(qc, graph.VertexID(s.asn.LocalOf[q]), rect)
			if !s.selfContained[p] {
				if rt == nil {
					rt = s.routerFor(qc, q)
				}
				if re := rt.minInto(p); re < m {
					m = re
				}
			}
		} else {
			if rt == nil {
				rt = s.routerFor(qc, q)
			}
			m = rt.minInto(c)
		}
		if m < best {
			best = m
		}
	}
	return best
}
