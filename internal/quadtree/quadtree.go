// Package quadtree builds and queries shortest-path quadtrees, the storage
// representation at the heart of the SILC framework (paper §3).
//
// For a source vertex u, every other vertex v is colored by the index of the
// first edge on the shortest path u→v. Path coherence on spatial networks
// makes same-colored vertices spatially contiguous, so the colored vertex
// set compresses into a region quadtree: a set of disjoint Morton blocks,
// each single-colored, covering every vertex. Each block additionally keeps
// the minimum and maximum over its vertices of the ratio network-distance /
// Euclidean-distance (λ⁻, λ⁺), which turns a block lookup into a distance
// interval without touching the graph.
package quadtree

import (
	"math"
	"sort"

	"silc/internal/geom"
)

// NoColor marks the source vertex position, which belongs to no block.
// It acts as a wildcard: the source joins any neighboring block.
const NoColor int32 = -1

// OutOfRange marks vertices beyond a proximity-bounded build's network
// radius (the paper's location-based-services approximation: quadtrees over
// proximal vertices only). Unlike NoColor it is NOT a wildcard — blocks
// split until out-of-range vertices are excluded, so lookups of far
// destinations miss instead of returning a wrong color.
const OutOfRange int32 = -2

// Block is one Morton block of a shortest-path quadtree. It asserts: every
// network vertex whose Morton code falls inside Cell has first-hop Color,
// and its network distance d from the source satisfies
// LamLo*euclid <= d <= LamHi*euclid.
type Block struct {
	Cell  geom.Cell
	Color int32
	LamLo float32
	LamHi float32
}

// EncodedSizeBytes is the size of one block in the paged disk layout:
// 4-byte truncated Morton code + 1-byte level + 3-byte color + two 4-byte
// ratio bounds. Used for storage accounting and I/O page mapping.
const EncodedSizeBytes = 16

// Tree is a shortest-path quadtree: blocks sorted by Morton code, disjoint,
// jointly covering every vertex of the network except the source.
type Tree struct {
	Blocks []Block
	// MinLambda is the smallest LamLo across blocks; it lets region queries
	// prune on Euclidean distance alone. At least 1 whenever edge weights
	// dominate Euclidean segment lengths.
	MinLambda float64
}

// NumBlocks returns the Morton block count (the paper's storage unit).
func (t *Tree) NumBlocks() int { return len(t.Blocks) }

// EncodedBytes returns the tree's size in the disk layout.
func (t *Tree) EncodedBytes() int { return len(t.Blocks) * EncodedSizeBytes }

// Find returns the block containing the given Morton code. ok is false when
// the code lies in uncovered (vertex-free or source) territory.
func (t *Tree) Find(code geom.Code) (Block, bool) {
	i := sort.Search(len(t.Blocks), func(i int) bool {
		return t.Blocks[i].Cell.Code > code
	})
	if i == 0 {
		return Block{}, false
	}
	b := t.Blocks[i-1]
	if !b.Cell.ContainsCode(code) {
		return Block{}, false
	}
	return b, true
}

// FindIndex is Find but returns the block's index, for page-access
// accounting by the disk layer.
func (t *Tree) FindIndex(code geom.Code) (int, bool) {
	i := sort.Search(len(t.Blocks), func(i int) bool {
		return t.Blocks[i].Cell.Code > code
	})
	if i == 0 || !t.Blocks[i-1].Cell.ContainsCode(code) {
		return -1, false
	}
	return i - 1, true
}

// RegionLowerBound returns a lower bound on the network distance from the
// query point q to any vertex lying inside rect: the minimum over blocks b
// intersecting rect of LamLo(b) * minEuclid(q, b ∩ rect). Vertex-free area
// contributes nothing (there is no vertex there to be near). Returns +Inf
// when rect covers no block.
func (t *Tree) RegionLowerBound(q geom.Point, rect geom.Rect) float64 {
	best := math.Inf(1)
	if len(t.Blocks) == 0 {
		return best
	}
	t.regionVisit(geom.RootCell(), 0, len(t.Blocks), q, rect, &best)
	return best
}

func (t *Tree) regionVisit(cell geom.Cell, lo, hi int, q geom.Point, rect geom.Rect, best *float64) {
	if lo == hi {
		return
	}
	cellRect := cell.Rect()
	overlap, ok := cellRect.Intersect(rect)
	if !ok {
		return
	}
	// Prune: nothing in this cell can beat the current best. MinLambda
	// scales the Euclidean bound into a valid network-distance bound.
	if overlap.MinDist(q)*t.MinLambda >= *best {
		return
	}
	if b := t.Blocks[lo]; b.Cell == cell {
		// A single block fills the whole cell: leaf contribution.
		d := overlap.MinDist(q) * float64(b.LamLo)
		if d < *best {
			*best = d
		}
		return
	}
	// Descend: partition the block range among the four children.
	at := lo
	for i := 0; i < 4; i++ {
		child := cell.Child(i)
		end := child.End()
		sub := at + sort.Search(hi-at, func(j int) bool {
			return t.Blocks[at+j].Cell.Code >= end
		})
		t.regionVisit(child, at, sub, q, rect, best)
		at = sub
	}
}

// Builder constructs shortest-path quadtrees over a fixed Morton-sorted
// vertex layout. One Builder serves every source vertex of a network; it is
// not safe for concurrent use (each parallel build worker owns one).
type Builder struct {
	codes []geom.Code // vertex Morton codes in ascending order
}

// NewBuilder returns a Builder over the given ascending Morton codes
// (typically Network.MortonOrder mapped through Network.Code).
func NewBuilder(codes []geom.Code) *Builder {
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			panic("quadtree: codes not strictly ascending")
		}
	}
	return &Builder{codes: codes}
}

// Build constructs the shortest-path quadtree for one source vertex.
//
// colors[i] is the first-hop color of the vertex at Morton rank i and
// ratios[i] its network/Euclidean distance ratio; the source's own rank
// carries NoColor and is treated as a wildcard (it joins any block and
// contributes no ratio). Build panics if decomposition cannot separate two
// differently-colored vertices (impossible when vertex cells are distinct,
// which graph.Builder enforces).
func (b *Builder) Build(colors []int32, ratios []float64) *Tree {
	if len(colors) != len(b.codes) || len(ratios) != len(b.codes) {
		panic("quadtree: input length mismatch")
	}
	t := &Tree{MinLambda: math.Inf(1)}
	b.buildRange(geom.RootCell(), 0, len(b.codes), colors, ratios, t)
	if len(t.Blocks) == 0 {
		t.MinLambda = 1
	}
	return t
}

func (b *Builder) buildRange(cell geom.Cell, lo, hi int, colors []int32, ratios []float64, t *Tree) {
	if lo == hi {
		return
	}
	// Homogeneity scan with wildcard source.
	color := NoColor
	uniform := true
	for i := lo; i < hi; i++ {
		c := colors[i]
		if c == NoColor {
			continue
		}
		if color == NoColor {
			color = c
		} else if c != color {
			uniform = false
			break
		}
	}
	if uniform {
		if color < 0 {
			return // only the source and/or out-of-range vertices: no block
		}
		lamLo, lamHi := float32(math.Inf(1)), float32(math.Inf(-1))
		for i := lo; i < hi; i++ {
			if colors[i] == NoColor {
				continue
			}
			r := ratios[i]
			// Round outward so float32 bounds still contain the ratio.
			if f := nextDown32(r); f < lamLo {
				lamLo = f
			}
			if f := nextUp32(r); f > lamHi {
				lamHi = f
			}
		}
		t.Blocks = append(t.Blocks, Block{Cell: cell, Color: color, LamLo: lamLo, LamHi: lamHi})
		if float64(lamLo) < t.MinLambda {
			t.MinLambda = float64(lamLo)
		}
		return
	}
	if cell.Level >= geom.MaxLevel {
		panic("quadtree: two differently-colored vertices share a grid cell")
	}
	at := lo
	for i := 0; i < 4; i++ {
		child := cell.Child(i)
		end := child.End()
		sub := at + sort.Search(hi-at, func(j int) bool {
			return b.codes[at+j] >= end
		})
		b.buildRange(child, at, sub, colors, ratios, t)
		at = sub
	}
}

// nextDown32 converts v to float32 and steps one ULP down, guaranteeing the
// result does not exceed v even after reconstruction rounding.
func nextDown32(v float64) float32 {
	return math.Nextafter32(float32(v), float32(math.Inf(-1)))
}

// nextUp32 converts v to the smallest float32 not below it, stepping one ULP up.
func nextUp32(v float64) float32 {
	f := float32(v)
	return math.Nextafter32(f, float32(math.Inf(1)))
}
