// Package quadtree builds and queries shortest-path quadtrees, the storage
// representation at the heart of the SILC framework (paper §3).
//
// For a source vertex u, every other vertex v is colored by the index of the
// first edge on the shortest path u→v. Path coherence on spatial networks
// makes same-colored vertices spatially contiguous, so the colored vertex
// set compresses into a region quadtree: a set of disjoint Morton blocks,
// each single-colored, covering every vertex. Each block additionally keeps
// the minimum and maximum over its vertices of the ratio network-distance /
// Euclidean-distance (λ⁻, λ⁺), which turns a block lookup into a distance
// interval without touching the graph.
package quadtree

import (
	"math"
	"sort"

	"silc/internal/geom"
)

// NoColor marks the source vertex position, which belongs to no block.
// It acts as a wildcard: the source joins any neighboring block.
const NoColor int32 = -1

// OutOfRange marks vertices beyond a proximity-bounded build's network
// radius (the paper's location-based-services approximation: quadtrees over
// proximal vertices only). Unlike NoColor it is NOT a wildcard — blocks
// split until out-of-range vertices are excluded, so lookups of far
// destinations miss instead of returning a wrong color.
const OutOfRange int32 = -2

// Block is one Morton block of a shortest-path quadtree. It asserts: every
// network vertex whose Morton code falls inside Cell has first-hop Color,
// and its network distance d from the source satisfies
// LamLo*euclid <= d <= LamHi*euclid.
type Block struct {
	Cell  geom.Cell
	Color int32
	LamLo float32
	LamHi float32
}

// EncodedSizeBytes is the size of one block in the paged disk layout:
// 4-byte truncated Morton code + 1-byte level + 3-byte color + two 4-byte
// ratio bounds. Used for storage accounting and I/O page mapping.
const EncodedSizeBytes = 16

// Tree is a shortest-path quadtree: blocks sorted by Morton code, disjoint,
// jointly covering every vertex of the network except the source.
type Tree struct {
	Blocks []Block
	// MinLambda is the smallest LamLo across blocks; it lets region queries
	// prune on Euclidean distance alone. At least 1 whenever edge weights
	// dominate Euclidean segment lengths.
	MinLambda float64
	// codes mirrors Blocks[i].Cell.Code in a packed side array. The lookup
	// binary search probes it instead of the 24-byte Block structs: eight
	// codes share a cache line where two blocks do, so the tail of the
	// search — the probes that are never prefetchable — stays in one or two
	// lines. Built by Seal; lookups fall back to Blocks when absent.
	codes []geom.Code
}

// Seal builds the packed code side array after Blocks reaches its final
// state. Construction sites call it once; concurrent readers require it to
// happen before the tree is shared (Seal is not synchronized).
func (t *Tree) Seal() {
	if cap(t.codes) < len(t.Blocks) {
		t.codes = make([]geom.Code, len(t.Blocks))
	} else {
		t.codes = t.codes[:len(t.Blocks)]
	}
	for i := range t.Blocks {
		t.codes[i] = t.Blocks[i].Cell.Code
	}
}

// NumBlocks returns the Morton block count (the paper's storage unit).
func (t *Tree) NumBlocks() int { return len(t.Blocks) }

// EncodedBytes returns the tree's size in the disk layout.
func (t *Tree) EncodedBytes() int { return len(t.Blocks) * EncodedSizeBytes }

// Find returns the block containing the given Morton code. ok is false when
// the code lies in uncovered (vertex-free or source) territory.
func (t *Tree) Find(code geom.Code) (Block, bool) {
	i, ok := t.FindIndex(code)
	if !ok {
		return Block{}, false
	}
	return t.Blocks[i], true
}

// FindIndex is Find but returns the block's index, for page-access
// accounting by the disk layer. The binary search is hand-rolled: this is
// the single hottest call of the query path (one per interval lookup), and
// the sort.Search closure costs more than the comparisons themselves.
func (t *Tree) FindIndex(code geom.Code) (int, bool) {
	// Invariant: blocks are sorted by Cell.Code; find the last block whose
	// code is <= the probe, i.e. lower_bound on (Code > code) minus one.
	if codes := t.codes; len(codes) == len(t.Blocks) && len(codes) > 0 {
		lo, hi := 0, len(codes)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if codes[mid] > code {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo == 0 || !t.Blocks[lo-1].Cell.ContainsCode(code) {
			return -1, false
		}
		return lo - 1, true
	}
	lo, hi := 0, len(t.Blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.Blocks[mid].Cell.Code > code {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 || !t.Blocks[lo-1].Cell.ContainsCode(code) {
		return -1, false
	}
	return lo - 1, true
}

// RegionLowerBound returns a lower bound on the network distance from the
// query point q to any vertex lying inside rect: the minimum over blocks b
// intersecting rect of LamLo(b) * minEuclid(q, b ∩ rect). Vertex-free area
// contributes nothing (there is no vertex there to be near). Returns +Inf
// when rect covers no block.
func (t *Tree) RegionLowerBound(q geom.Point, rect geom.Rect) float64 {
	best := math.Inf(1)
	if len(t.Blocks) == 0 {
		return best
	}
	t.regionVisit(geom.RootCell(), geom.UnitRect(), 0, len(t.Blocks), q, rect, &best)
	return best
}

// regionVisit descends the implicit quadtree over the block range [lo, hi).
// cellRect is cell's rectangle, threaded down the recursion (child rects are
// quadrant midpoint splits) so no level re-derives it from the Morton code.
func (t *Tree) regionVisit(cell geom.Cell, cellRect geom.Rect, lo, hi int, q geom.Point, rect geom.Rect, best *float64) {
	if lo == hi {
		return
	}
	overlap, ok := cellRect.Intersect(rect)
	if !ok {
		return
	}
	// Prune: nothing in this cell can beat the current best. MinLambda
	// scales the Euclidean bound into a valid network-distance bound.
	if overlap.MinDist(q)*t.MinLambda >= *best {
		return
	}
	if b := t.Blocks[lo]; b.Cell == cell {
		// A single block fills the whole cell: leaf contribution.
		d := overlap.MinDist(q) * float64(b.LamLo)
		if d < *best {
			*best = d
		}
		return
	}
	// Descend: partition the block range among the four children. Child i's
	// Morton bits are (y<<1)|x, so bit 0 selects the x half, bit 1 the y
	// half of the midpoint split.
	midX := (cellRect.MinX + cellRect.MaxX) / 2
	midY := (cellRect.MinY + cellRect.MaxY) / 2
	at := lo
	for i := 0; i < 4; i++ {
		child := cell.Child(i)
		sub := t.lowerBound(at, hi, child.End())
		childRect := cellRect
		if i&1 == 0 {
			childRect.MaxX = midX
		} else {
			childRect.MinX = midX
		}
		if i&2 == 0 {
			childRect.MaxY = midY
		} else {
			childRect.MinY = midY
		}
		t.regionVisit(child, childRect, at, sub, q, rect, best)
		at = sub
	}
}

// lowerBound returns the first index in [lo, hi) whose block code is >= end,
// probing the packed code array when sealed.
func (t *Tree) lowerBound(lo, hi int, end geom.Code) int {
	if len(t.codes) == len(t.Blocks) {
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.codes[mid] >= end {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.Blocks[mid].Cell.Code >= end {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Builder constructs shortest-path quadtrees over a fixed Morton-sorted
// vertex layout. One Builder serves every source vertex of a network; it is
// not safe for concurrent use (each parallel build worker owns one).
type Builder struct {
	codes []geom.Code // vertex Morton codes in ascending order
}

// NewBuilder returns a Builder over the given ascending Morton codes
// (typically Network.MortonOrder mapped through Network.Code).
func NewBuilder(codes []geom.Code) *Builder {
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			panic("quadtree: codes not strictly ascending")
		}
	}
	return &Builder{codes: codes}
}

// Build constructs the shortest-path quadtree for one source vertex.
//
// colors[i] is the first-hop color of the vertex at Morton rank i and
// ratios[i] its network/Euclidean distance ratio; the source's own rank
// carries NoColor and is treated as a wildcard (it joins any block and
// contributes no ratio). Build panics if decomposition cannot separate two
// differently-colored vertices (impossible when vertex cells are distinct,
// which graph.Builder enforces).
func (b *Builder) Build(colors []int32, ratios []float64) *Tree {
	if len(colors) != len(b.codes) || len(ratios) != len(b.codes) {
		panic("quadtree: input length mismatch")
	}
	t := &Tree{MinLambda: math.Inf(1)}
	b.buildRange(geom.RootCell(), 0, len(b.codes), colors, ratios, t)
	if len(t.Blocks) == 0 {
		t.MinLambda = 1
	}
	t.Seal()
	return t
}

func (b *Builder) buildRange(cell geom.Cell, lo, hi int, colors []int32, ratios []float64, t *Tree) {
	if lo == hi {
		return
	}
	// Homogeneity scan with wildcard source.
	color := NoColor
	uniform := true
	for i := lo; i < hi; i++ {
		c := colors[i]
		if c == NoColor {
			continue
		}
		if color == NoColor {
			color = c
		} else if c != color {
			uniform = false
			break
		}
	}
	if uniform {
		if color < 0 {
			return // only the source and/or out-of-range vertices: no block
		}
		lamLo, lamHi := float32(math.Inf(1)), float32(math.Inf(-1))
		for i := lo; i < hi; i++ {
			if colors[i] == NoColor {
				continue
			}
			r := ratios[i]
			// Round outward so float32 bounds still contain the ratio.
			if f := nextDown32(r); f < lamLo {
				lamLo = f
			}
			if f := nextUp32(r); f > lamHi {
				lamHi = f
			}
		}
		t.Blocks = append(t.Blocks, Block{Cell: cell, Color: color, LamLo: lamLo, LamHi: lamHi})
		if float64(lamLo) < t.MinLambda {
			t.MinLambda = float64(lamLo)
		}
		return
	}
	if cell.Level >= geom.MaxLevel {
		panic("quadtree: two differently-colored vertices share a grid cell")
	}
	at := lo
	for i := 0; i < 4; i++ {
		child := cell.Child(i)
		end := child.End()
		sub := at + sort.Search(hi-at, func(j int) bool {
			return b.codes[at+j] >= end
		})
		b.buildRange(child, at, sub, colors, ratios, t)
		at = sub
	}
}

// nextDown32 converts v to float32 and steps one ULP down, guaranteeing the
// result does not exceed v even after reconstruction rounding.
func nextDown32(v float64) float32 {
	return math.Nextafter32(float32(v), float32(math.Inf(-1)))
}

// nextUp32 converts v to the smallest float32 not below it, stepping one ULP up.
func nextUp32(v float64) float32 {
	f := float32(v)
	return math.Nextafter32(f, float32(math.Inf(1)))
}
