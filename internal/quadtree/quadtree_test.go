package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"silc/internal/geom"
	"silc/internal/graph"
	"silc/internal/sssp"
)

// fixture builds the quadtree inputs for one source vertex of a network:
// Morton-sorted codes, first-hop colors, and distance ratios.
type fixture struct {
	g      *graph.Network
	codes  []geom.Code
	colors []int32
	ratios []float64
	tree   *sssp.Tree
	source graph.VertexID
}

func makeFixture(t *testing.T, g *graph.Network, source graph.VertexID) *fixture {
	t.Helper()
	order := g.MortonOrder()
	codes := make([]geom.Code, len(order))
	for i, v := range order {
		codes[i] = g.Code(v)
	}
	tree := sssp.Dijkstra(g, source)
	colors := make([]int32, len(order))
	ratios := make([]float64, len(order))
	for i, v := range order {
		if v == source {
			colors[i] = NoColor
			continue
		}
		if math.IsInf(tree.Dist[v], 1) {
			t.Fatalf("fixture network disconnected at %d", v)
		}
		hop := tree.FirstHop[v]
		colors[i] = int32(g.NeighborIndex(source, hop))
		ratios[i] = tree.Dist[v] / g.Euclid(source, v)
	}
	return &fixture{g: g, codes: codes, colors: colors, ratios: ratios, tree: tree, source: source}
}

func testNetwork(t *testing.T, seed int64) *graph.Network {
	t.Helper()
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 10, Cols: 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBlocksDisjointSortedAndCovering(t *testing.T) {
	g := testNetwork(t, 1)
	for _, source := range []graph.VertexID{0, graph.VertexID(g.NumVertices() / 2)} {
		fx := makeFixture(t, g, source)
		qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)

		// Sorted and disjoint.
		for i := 1; i < len(qt.Blocks); i++ {
			prev, cur := qt.Blocks[i-1], qt.Blocks[i]
			if prev.Cell.End() > cur.Cell.Code {
				t.Fatalf("blocks %d,%d overlap: %v then %v", i-1, i, prev.Cell, cur.Cell)
			}
		}
		// Every non-source vertex is covered by exactly one block with the
		// right color, and its ratio lies inside the block's lambda range.
		for i, code := range fx.codes {
			if fx.colors[i] == NoColor {
				continue
			}
			b, ok := qt.Find(code)
			if !ok {
				t.Fatalf("vertex at code %x not covered", uint64(code))
			}
			if b.Color != fx.colors[i] {
				t.Fatalf("vertex at code %x: block color %d want %d", uint64(code), b.Color, fx.colors[i])
			}
			if float64(b.LamLo) > fx.ratios[i] || float64(b.LamHi) < fx.ratios[i] {
				t.Fatalf("ratio %v outside [%v,%v]", fx.ratios[i], b.LamLo, b.LamHi)
			}
		}
		if qt.MinLambda < 1 {
			t.Fatalf("MinLambda %v < 1 on a weight>=euclid network", qt.MinLambda)
		}
	}
}

func TestFindMissesUncoveredSpace(t *testing.T) {
	g := testNetwork(t, 2)
	fx := makeFixture(t, g, 0)
	qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)
	// A code beyond the last block's end is uncovered.
	last := qt.Blocks[len(qt.Blocks)-1]
	if _, ok := qt.Find(last.Cell.End()); ok {
		// Only fails if another block starts exactly there, which the sorted
		// disjointness test above already rules out past the last block.
		t.Fatal("Find succeeded past the final block")
	}
	if _, ok := qt.Find(0); ok {
		if b, _ := qt.Find(0); b.Cell.Code != 0 {
			t.Fatal("Find(0) returned a non-covering block")
		}
	}
}

func TestBuildFewerBlocksThanVertices(t *testing.T) {
	// Path coherence must compress: the block count should be well below the
	// vertex count for a lattice-like network (O(sqrt n) vs n).
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 24, Cols: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fx := makeFixture(t, g, graph.VertexID(g.NumVertices()/2))
	qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)
	n := g.NumVertices()
	if qt.NumBlocks() >= n {
		t.Fatalf("no compression: %d blocks for %d vertices", qt.NumBlocks(), n)
	}
	if qt.EncodedBytes() != qt.NumBlocks()*EncodedSizeBytes {
		t.Fatal("EncodedBytes inconsistent")
	}
}

func TestSingleVertexSource(t *testing.T) {
	// A two-vertex network: the tree for each source has exactly one block.
	b := graph.NewBuilder()
	u := b.AddVertex(geom.Point{X: 0.25, Y: 0.5})
	v := b.AddVertex(geom.Point{X: 0.75, Y: 0.5})
	b.AddBiEdge(u, v, 0.6)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fx := makeFixture(t, g, u)
	qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)
	if qt.NumBlocks() != 1 {
		t.Fatalf("blocks = %d want 1", qt.NumBlocks())
	}
	blk := qt.Blocks[0]
	if blk.Color != 0 {
		t.Fatalf("color = %d want 0", blk.Color)
	}
	ratio := 0.6 / 0.5
	if float64(blk.LamLo) > ratio || float64(blk.LamHi) < ratio {
		t.Fatalf("ratio %v outside [%v,%v]", ratio, blk.LamLo, blk.LamHi)
	}
}

func TestRegionLowerBoundIsValid(t *testing.T) {
	g := testNetwork(t, 4)
	source := graph.VertexID(1)
	fx := makeFixture(t, g, source)
	qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)
	q := g.Point(source)
	rng := rand.New(rand.NewSource(17))

	for trial := 0; trial < 300; trial++ {
		x1, x2 := rng.Float64(), rng.Float64()
		y1, y2 := rng.Float64(), rng.Float64()
		rect := geom.Rect{
			MinX: math.Min(x1, x2), MaxX: math.Max(x1, x2),
			MinY: math.Min(y1, y2), MaxY: math.Max(y1, y2),
		}
		bound := qt.RegionLowerBound(q, rect)
		// The bound must not exceed the true network distance to any vertex
		// inside the rect.
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if vv == source || !rect.Contains(g.Point(vv)) {
				continue
			}
			if bound > fx.tree.Dist[v]+1e-9 {
				t.Fatalf("trial %d: bound %v exceeds dist(%d)=%v", trial, bound, v, fx.tree.Dist[v])
			}
		}
	}
}

func TestRegionLowerBoundEmptyRect(t *testing.T) {
	g := testNetwork(t, 5)
	fx := makeFixture(t, g, 0)
	qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)
	// A sliver in the extreme corner outside the network's extent: either
	// +Inf (no blocks) or a large bound; it must not panic and must be >= 0.
	bound := qt.RegionLowerBound(g.Point(0), geom.Rect{MinX: 0.9999, MinY: 0.9999, MaxX: 0.99995, MaxY: 0.99995})
	if bound < 0 {
		t.Fatalf("negative bound %v", bound)
	}
}

func TestBuilderPanicsOnUnsortedCodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder([]geom.Code{5, 3})
}

func TestBuildPanicsOnLengthMismatch(t *testing.T) {
	b := NewBuilder([]geom.Code{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Build([]int32{0, 0}, []float64{1, 1})
}

func TestLambdaBoundsOutwardRounding(t *testing.T) {
	// A ratio that is not exactly representable in float32 must still fall
	// strictly inside [LamLo, LamHi] after the float32 round trip.
	codes := []geom.Code{geom.Encode(10, 10), geom.Encode(50000, 50000)}
	b := NewBuilder(codes)
	ratio := 1.0000000123456789
	tree := b.Build([]int32{NoColor, 0}, []float64{0, ratio})
	if len(tree.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(tree.Blocks))
	}
	blk := tree.Blocks[0]
	if !(float64(blk.LamLo) < ratio && ratio < float64(blk.LamHi)) {
		t.Fatalf("ratio %v not strictly inside [%v,%v]", ratio, blk.LamLo, blk.LamHi)
	}
}

func TestSourceOnlyTree(t *testing.T) {
	codes := []geom.Code{geom.Encode(100, 100)}
	tree := NewBuilder(codes).Build([]int32{NoColor}, []float64{0})
	if tree.NumBlocks() != 0 {
		t.Fatalf("blocks = %d want 0", tree.NumBlocks())
	}
	if _, ok := tree.Find(codes[0]); ok {
		t.Fatal("Find on empty tree succeeded")
	}
	if got := tree.RegionLowerBound(geom.Point{X: 0.5, Y: 0.5}, geom.UnitRect()); !math.IsInf(got, 1) {
		t.Fatalf("RegionLowerBound on empty tree = %v", got)
	}
}

func TestRegionLowerBoundTightOnLeafBlocks(t *testing.T) {
	// For a rect covering exactly one vertex, the bound should equal
	// LamLo * euclid(q, nearest point of rect∩block) which is at most
	// LamLo * euclid(q, vertex) — so bound <= true distance but also
	// reasonably tight (within LamHi/LamLo of it).
	g := testNetwork(t, 6)
	source := graph.VertexID(2)
	fx := makeFixture(t, g, source)
	qt := NewBuilder(fx.codes).Build(fx.colors, fx.ratios)
	q := g.Point(source)
	for v := 0; v < g.NumVertices(); v += 7 {
		vv := graph.VertexID(v)
		if vv == source {
			continue
		}
		p := g.Point(vv)
		eps := 1e-7
		rect := geom.Rect{MinX: p.X - eps, MinY: p.Y - eps, MaxX: p.X + eps, MaxY: p.Y + eps}
		bound := qt.RegionLowerBound(q, rect)
		d := fx.tree.Dist[v]
		if bound > d+1e-9 {
			t.Fatalf("bound %v exceeds true %v", bound, d)
		}
		if bound < d/10 {
			t.Fatalf("bound %v unreasonably loose vs true %v", bound, d)
		}
	}
}
