package obs

import "time"

// Span is the per-query trace record. It is embedded by value in the
// pooled core.QueryContext, so recording into it is a plain struct
// field write — no allocation, no atomics (a query context is owned by
// exactly one goroutine between acquire and release). The engine zeroes
// the span on context reuse, stamps Begin/Op/Timed at acquire, and
// folds the finished span into its atomic aggregates at release; the
// span never outlives the context checkout, which is what keeps the
// steady-state allocation budget untouched.
type Span struct {
	// Begin is the query's wall-clock start, stamped at context
	// acquisition; release observes time.Since(Begin) into the per-op
	// latency histogram.
	Begin time.Time
	// Op tags the engine entry point (an engine-level enum; the obs
	// package does not interpret it).
	Op uint8
	// Timed enables the phase wall-clocks below. Off by default: the
	// extra time.Now pairs in the expansion loop cost real time on
	// warm in-memory queries (the MeasurePQ precedent), so serving
	// processes opt in explicitly.
	Timed bool
	// FilterNanos is time spent in the filter phase — expanding the
	// object-hierarchy (region lower bounds and object discovery) —
	// when Timed. Refinement time is derived at fold as total minus
	// filter rather than paying a second clock in the tighter loop.
	FilterNanos int64
	// Refinements counts distance-refiner steps, across every layer
	// that steps one (best-first search, exactification, cross-cell
	// routing, IsCloser).
	Refinements int64
	// Lookups counts object interval computations in the best-first
	// search.
	Lookups int64
	// HeapPushes counts search-queue pushes.
	HeapPushes int64
	// CrossCell counts cross-cell route refiners built (sharded
	// indexes only).
	CrossCell int64
	// GatewayRoutes counts candidate gateway routes those refiners
	// race (the closure fan-out; sharded indexes only).
	GatewayRoutes int64
}
