// Package obs is the repo's observability core: dependency-free atomic
// counters, gauges, and lock-free log-spaced latency histograms, plus a
// per-query trace Span that rides the pooled core.QueryContext.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Recording — Counter.Add,
//     Gauge.Set, Histogram.Observe, and every Span field increment — is
//     a plain atomic op or a struct-field write. All allocation happens
//     at registration time or at scrape time.
//  2. No dependencies. The exposition side speaks the Prometheus text
//     format (version 0.0.4) directly, so serving binaries need nothing
//     beyond net/http.
//  3. Scrape-time reads may be slightly torn. Counters are monotone and
//     scrapes are advisory; we do not pay for a consistent snapshot.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// metric is one registered exposition unit: a single series for
// counters/gauges, a whole bucket family for histograms.
type metric interface {
	familyName() string
	familyType() string
	familyHelp() string
	writeSeries(w io.Writer) error
}

// Registry owns a set of metrics and writes them in Prometheus text
// format. Registration is synchronized; recording on the returned
// handles is lock-free. Series of the same family (same name, different
// labels) are grouped under one HELP/TYPE header at write time
// regardless of registration order, as the format requires.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// WritePrometheus writes every registered metric to w in Prometheus
// text exposition format, one HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	var order []string
	fams := make(map[string][]metric, len(ms))
	for _, m := range ms {
		n := m.familyName()
		if _, ok := fams[n]; !ok {
			order = append(order, n)
		}
		fams[n] = append(fams[n], m)
	}
	for _, n := range order {
		g := fams[n]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, g[0].familyHelp(), n, g[0].familyType()); err != nil {
			return err
		}
		for _, m := range g {
			if err := m.writeSeries(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesHead writes `name` or `name{labels}` without the value.
func seriesHead(w io.Writer, name, labels string) error {
	var err error
	if labels == "" {
		_, err = io.WriteString(w, name)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s}", name, labels)
	}
	return err
}

// Counter is a monotone atomic int64. A non-unit scale multiplies the
// exported value, letting hot paths accumulate raw nanoseconds while
// the scrape exports seconds.
type Counter struct {
	v      atomic.Int64
	name   string
	labels string
	help   string
	scale  float64
}

// Counter registers a counter series. labels is a pre-rendered label
// set like `op="knn"` (no braces), or empty.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{name: name, labels: labels, help: help, scale: 1}
	r.add(c)
	return c
}

// CounterScaled registers a counter whose exported value is the raw
// count multiplied by scale (e.g. 1e-9 to export nanoseconds as
// seconds).
func (r *Registry) CounterScaled(name, labels, help string, scale float64) *Counter {
	c := &Counter{name: name, labels: labels, help: help, scale: scale}
	r.add(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotone; callers must not pass negatives.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the raw (unscaled) count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) familyName() string { return c.name }
func (c *Counter) familyType() string { return "counter" }
func (c *Counter) familyHelp() string { return c.help }

func (c *Counter) writeSeries(w io.Writer) error {
	if err := seriesHead(w, c.name, c.labels); err != nil {
		return err
	}
	v := c.v.Load()
	if c.scale == 1 {
		_, err := fmt.Fprintf(w, " %d\n", v)
		return err
	}
	_, err := fmt.Fprintf(w, " %s\n", formatFloat(float64(v)*c.scale))
	return err
}

// Gauge is an atomic int64 that can move both ways.
type Gauge struct {
	v      atomic.Int64
	name   string
	labels string
	help   string
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{name: name, labels: labels, help: help}
	r.add(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) familyName() string { return g.name }
func (g *Gauge) familyType() string { return "gauge" }
func (g *Gauge) familyHelp() string { return g.help }

func (g *Gauge) writeSeries(w io.Writer) error {
	if err := seriesHead(w, g.name, g.labels); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " %d\n", g.v.Load())
	return err
}

// funcMetric evaluates a closure at scrape time — the bridge to state
// that already has its own atomic aggregates (buffer-pool stats, store
// read counters) without double-counting or extra hot-path writes.
type funcMetric struct {
	name   string
	labels string
	help   string
	typ    string
	fn     func() float64
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time. fn must be monotone and safe for concurrent use.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	r.add(&funcMetric{name: name, labels: labels, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.add(&funcMetric{name: name, labels: labels, help: help, typ: "gauge", fn: fn})
}

func (f *funcMetric) familyName() string { return f.name }
func (f *funcMetric) familyType() string { return f.typ }
func (f *funcMetric) familyHelp() string { return f.help }

func (f *funcMetric) writeSeries(w io.Writer) error {
	if err := seriesHead(w, f.name, f.labels); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " %s\n", formatFloat(f.fn()))
	return err
}

// formatFloat renders a value the Prometheus text parser accepts,
// preferring the integer form when exact.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
