package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

const (
	// histMinShift is log2 of the first bucket's upper bound in
	// nanoseconds: every observation ≤ 2^10 ns = 1.024µs lands in
	// bucket 0. Warm in-RAM queries sit a few buckets above this.
	histMinShift = 10
	// HistBuckets is the number of finite buckets. Bucket i covers
	// (2^(histMinShift+i-1), 2^(histMinShift+i)] nanoseconds, so the
	// top finite bound is 2^37 ns ≈ 137 s; anything slower only counts
	// toward the implicit +Inf bucket.
	HistBuckets = 28
)

// Histogram is a fixed-size latency histogram with power-of-two
// nanosecond buckets. Observe is lock-free and allocation-free: the
// bucket index is bits.Len64 on the duration (a branch-free log2 —
// no search), and buckets, count, and sum are independent atomics.
// Concurrent scrapes may therefore see a bucket increment before the
// matching count increment; counters are monotone, so the tear is
// bounded and self-heals by the next scrape.
type Histogram struct {
	name    string
	labels  string
	help    string
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [HistBuckets]atomic.Int64
}

// Histogram registers a latency histogram family (name_bucket/_sum/
// _count). Exported bucket bounds and sum are in seconds, per
// Prometheus convention.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	h := &Histogram{name: name, labels: labels, help: help}
	r.add(h)
	return h
}

// bucketIndex maps n nanoseconds to its bucket; indexes ≥ HistBuckets
// mean "above the top finite bound" (only count/sum record it).
func bucketIndex(n int64) int {
	if n <= 1 {
		return 0
	}
	// Upper bounds are inclusive: n = 2^k exactly belongs to the
	// bucket bounded by 2^k, hence Len64(n-1).
	i := bits.Len64(uint64(n-1)) - histMinShift
	if i < 0 {
		return 0
	}
	return i
}

// bucketBounds returns bucket i's half-open range (lo, hi] in
// nanoseconds; bucket 0's lo is 0.
func bucketBounds(i int) (lo, hi int64) {
	hi = 1 << (histMinShift + i)
	if i > 0 {
		lo = 1 << (histMinShift + i - 1)
	}
	return lo, hi
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(n)
	if i := bucketIndex(n); i < HistBuckets {
		h.buckets[i].Add(1)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the log-spaced bucket that contains it, so the
// estimate's relative error is bounded by the bucket width (a factor
// of two). Observations above the top finite bound clamp to it.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		b := h.buckets[i].Load()
		if b == 0 {
			continue
		}
		if float64(cum)+float64(b) >= target {
			lo, hi := bucketBounds(i)
			frac := (target - float64(cum)) / float64(b)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += b
	}
	_, top := bucketBounds(HistBuckets - 1)
	return time.Duration(top)
}

func (h *Histogram) familyName() string { return h.name }
func (h *Histogram) familyType() string { return "histogram" }
func (h *Histogram) familyHelp() string { return h.help }

func (h *Histogram) writeSeries(w io.Writer) error {
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		_, hi := bucketBounds(i)
		le := strconv.FormatFloat(float64(hi)/1e9, 'g', -1, 64)
		if err := h.writeBucket(w, le, cum); err != nil {
			return err
		}
	}
	if err := h.writeBucket(w, "+Inf", h.count.Load()); err != nil {
		return err
	}
	if err := seriesHead(w, h.name+"_sum", h.labels); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, " %s\n", formatFloat(float64(h.sum.Load())/1e9)); err != nil {
		return err
	}
	if err := seriesHead(w, h.name+"_count", h.labels); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " %d\n", h.count.Load())
	return err
}

func (h *Histogram) writeBucket(w io.Writer, le string, v int64) error {
	var err error
	if h.labels == "" {
		_, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, v)
	} else {
		_, err = fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", h.name, h.labels, le, v)
	}
	return err
}
