package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", `op="x"`, "ops")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter value = %d, want 42", got)
	}
	g := r.Gauge("test_depth", "", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %d, want 4", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total ops\n",
		"# TYPE test_ops_total counter\n",
		`test_ops_total{op="x"} 42` + "\n",
		"# TYPE test_depth gauge\n",
		"test_depth 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterScaled(t *testing.T) {
	r := NewRegistry()
	c := r.CounterScaled("test_seconds_total", "", "nanos as seconds", 1e-9)
	c.Add(1_500_000_000) // 1.5s in nanos
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_seconds_total 1.5\n") {
		t.Fatalf("scaled counter not exported as seconds:\n%s", b.String())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.CounterFunc("test_func_total", "", "closure counter", func() float64 { return v })
	r.GaugeFunc("test_func_gauge", `k="v"`, "closure gauge", func() float64 { return 2.5 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test_func_total 3\n") {
		t.Errorf("func counter missing integer form:\n%s", out)
	}
	if !strings.Contains(out, `test_func_gauge{k="v"} 2.5`+"\n") {
		t.Errorf("func gauge missing:\n%s", out)
	}
}

// TestFamilyGrouping checks that series of one family registered out of
// order still share a single HELP/TYPE header — the text format rejects
// repeated headers.
func TestFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_fam_total", `op="a"`, "fam")
	r.Counter("test_other_total", "", "other")
	bc := r.Counter("test_fam_total", `op="b"`, "fam")
	a.Add(1)
	bc.Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# TYPE test_fam_total counter"); n != 1 {
		t.Fatalf("family header written %d times, want 1:\n%s", n, out)
	}
	// Both series must appear contiguously after the single header.
	i := strings.Index(out, "# TYPE test_fam_total counter")
	j := strings.Index(out, "# TYPE test_other_total counter")
	ai := strings.Index(out, `test_fam_total{op="a"} 1`)
	bi := strings.Index(out, `test_fam_total{op="b"} 2`)
	if ai < i || bi < i || (j > i && (ai > j || bi > j)) {
		t.Fatalf("family series not grouped under their header:\n%s", out)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		nanos int64
		want  int
	}{
		{0, 0},
		{1, 0},
		{1023, 0},
		{1024, 0}, // 2^10 is bucket 0's inclusive upper bound
		{1025, 1}, // first value of bucket 1
		{2048, 1}, // 2^11 inclusive
		{2049, 2},
		{1 << 37, HistBuckets - 1},   // top finite bound, inclusive
		{(1 << 37) + 1, HistBuckets}, // above: +Inf only
	}
	for _, c := range cases {
		if got := bucketIndex(c.nanos); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.nanos, got, c.want)
		}
	}
	for i := 0; i < HistBuckets; i++ {
		lo, hi := bucketBounds(i)
		if bucketIndex(hi) != i {
			t.Errorf("bound %d: bucketIndex(hi=%d) = %d, want %d", i, hi, bucketIndex(hi), i)
		}
		if lo > 0 && bucketIndex(lo+1) != i {
			t.Errorf("bound %d: bucketIndex(lo+1=%d) = %d, want %d", i, lo+1, bucketIndex(lo+1), i)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "", "latency")
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)  // 3000ns -> bucket 2 (2048,4096]
	h.Observe(200 * time.Second)     // above top finite bound
	h.Observe(-time.Second)          // clamped to 0 -> bucket 0
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	wantSum := 500*time.Nanosecond + 3*time.Microsecond + 200*time.Second
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="1.024e-06"} 2` + "\n", // bucket 0 cumulative
		`test_latency_seconds_bucket{le="4.096e-06"} 3` + "\n", // through bucket 2
		`test_latency_seconds_bucket{le="+Inf"} 4` + "\n",      // +Inf = count
		"test_latency_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative (monotone in le order): the top finite
	// bucket holds everything except the 200s outlier.
	if !strings.Contains(out, `test_latency_seconds_bucket{le="137.438953472"} 3`+"\n") {
		t.Errorf("top finite bucket should exclude the +Inf-only outlier:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "", "q")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations all in bucket (2048, 4096].
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	lo, hi := time.Duration(2048), time.Duration(4096)
	if p50 <= lo || p50 > hi {
		t.Fatalf("p50 = %v, want within (%v, %v]", p50, lo, hi)
	}
	if p99, p10 := h.Quantile(0.99), h.Quantile(0.10); p99 < p10 {
		t.Fatalf("quantiles not monotone: p99=%v < p10=%v", p99, p10)
	}
	// Out-of-range q clamps rather than panicking.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
	// Observations above the top finite bound clamp to it.
	h2 := r.Histogram("test_q2_seconds", "", "q2")
	h2.Observe(500 * time.Second)
	_, top := bucketBounds(HistBuckets - 1)
	if got := h2.Quantile(0.99); got != time.Duration(top) {
		t.Fatalf("over-top quantile = %v, want clamp to %v", got, time.Duration(top))
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks the exact count and sum afterwards — run under -race this also
// proves Observe is safe without locks.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "", "concurrent")
	c := r.Counter("test_conc_total", "", "concurrent counter")
	const (
		goroutines = 8
		perG       = 10_000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread observations across buckets deterministically.
				h.Observe(time.Duration(1+(g*perG+i)%100_000) * time.Microsecond)
				c.Inc()
				if i%64 == 0 {
					// Concurrent scrapes must not block or race recording.
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	if got := c.Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	var wantSum int64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			wantSum += int64(1+(g*perG+i)%100_000) * 1000
		}
	}
	if got := int64(h.Sum()); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	// Finite buckets + anything above the top bound must equal count.
	var finite int64
	for i := 0; i < HistBuckets; i++ {
		finite += h.buckets[i].Load()
	}
	if finite != total { // 100ms max observation is well under 137s
		t.Fatalf("finite bucket total = %d, want %d", finite, total)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{1.5, "1.5"},
		{0.000001024, "1.024e-06"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
