// Package diskio models the disk-resident setting of the paper's evaluation:
// the SILC quadtrees and the network adjacency lists live in fixed-size
// pages behind an LRU buffer pool sized to a fraction of the total page
// count (the paper uses 5%). Algorithms report page hits/misses and a
// modeled I/O time (misses x per-miss latency), reproducing the paper's
// "I/O time dominates" analysis without a physical disk.
package diskio

import "time"

// PageID identifies one page across all paged structures of an index.
type PageID int64

// DefaultPageSize is the modeled page size in bytes.
const DefaultPageSize = 4096

// DefaultMissLatency is the modeled cost of one page miss. The paper's
// absolute timings imply buffered reads through the OS page cache rather
// than raw seeks (its 1GB evaluation machine held the working set), so the
// default models a buffered 4KiB read, which reproduces the paper's
// magnitudes; raise it toward 5ms to model a cold spinning disk.
const DefaultMissLatency = 200 * time.Microsecond

// AdjacencyEntrySize is the modeled on-disk size of one directed edge in a
// network database: target, weight, and the road-segment record (name,
// geometry) that real road databases carry alongside connectivity.
const AdjacencyEntrySize = 48

// Stats counts buffer-pool traffic.
type Stats struct {
	Hits   int64
	Misses int64
}

// Accesses returns total page touches.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
}

// ModeledIOTime converts the miss count into modeled elapsed I/O time.
func (s Stats) ModeledIOTime(missLatency time.Duration) time.Duration {
	return time.Duration(s.Misses) * missLatency
}

// Cache is an LRU page buffer pool. The zero value is unusable; create with
// NewCache. Not safe for concurrent use (queries own their tracker).
type Cache struct {
	capacity int
	slots    map[PageID]int // page -> slot index
	pages    []PageID       // slot -> page
	prev     []int
	next     []int
	head     int // most recently used
	tail     int // least recently used
	used     int
	stats    Stats
}

// NewCache returns an LRU cache holding up to capacity pages (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity: capacity,
		slots:    make(map[PageID]int, capacity),
		pages:    make([]PageID, capacity),
		prev:     make([]int, capacity),
		next:     make([]int, capacity),
		head:     -1,
		tail:     -1,
	}
	return c
}

// Capacity returns the configured page capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *Cache) Len() int { return c.used }

// Stats returns the accumulated hit/miss counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without evicting pages.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Clear evicts everything and zeroes the counters.
func (c *Cache) Clear() {
	clear(c.slots)
	c.head, c.tail, c.used = -1, -1, 0
	c.stats = Stats{}
}

// Touch accesses page p, returning true on a hit. On a miss the page is
// loaded, evicting the least recently used page if the pool is full.
func (c *Cache) Touch(p PageID) bool {
	if slot, ok := c.slots[p]; ok {
		c.stats.Hits++
		c.moveToFront(slot)
		return true
	}
	c.stats.Misses++
	var slot int
	if c.used < c.capacity {
		slot = c.used
		c.used++
	} else {
		slot = c.tail
		c.detach(slot)
		delete(c.slots, c.pages[slot])
	}
	c.pages[slot] = p
	c.slots[p] = slot
	c.pushFront(slot)
	return false
}

func (c *Cache) detach(slot int) {
	p, n := c.prev[slot], c.next[slot]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail = p
	}
}

func (c *Cache) pushFront(slot int) {
	c.prev[slot] = -1
	c.next[slot] = c.head
	if c.head >= 0 {
		c.prev[c.head] = slot
	}
	c.head = slot
	if c.tail < 0 {
		c.tail = slot
	}
}

func (c *Cache) moveToFront(slot int) {
	if c.head == slot {
		return
	}
	c.detach(slot)
	c.pushFront(slot)
}

// Layout maps (owner, entry) coordinates onto a dense page range: owner v's
// entries start at a prefix-sum base and pack entriesPerPage to a page.
// It describes how per-vertex SILC block arrays (or adjacency lists) are
// serialized onto disk.
type Layout struct {
	base           []int64 // per-owner first entry index; len = owners+1
	entriesPerPage int
}

// NewLayout builds a layout for owners with the given per-owner entry
// counts, entries of entrySize bytes, on pages of pageSize bytes.
func NewLayout(entryCounts []int, entrySize, pageSize int) *Layout {
	if entrySize <= 0 || pageSize < entrySize {
		panic("diskio: invalid entry/page size")
	}
	base := make([]int64, len(entryCounts)+1)
	for i, n := range entryCounts {
		base[i+1] = base[i] + int64(n)
	}
	return &Layout{base: base, entriesPerPage: pageSize / entrySize}
}

// Page returns the page holding entry entryIdx of owner v.
func (l *Layout) Page(v int, entryIdx int) PageID {
	return PageID((l.base[v] + int64(entryIdx)) / int64(l.entriesPerPage))
}

// OwnerPages returns the page range [first, last] spanned by owner v's
// entries; ok is false when v has none.
func (l *Layout) OwnerPages(v int) (first, last PageID, ok bool) {
	lo, hi := l.base[v], l.base[v+1]
	if lo == hi {
		return 0, 0, false
	}
	return PageID(lo / int64(l.entriesPerPage)), PageID((hi - 1) / int64(l.entriesPerPage)), true
}

// TotalPages returns the number of pages the layout occupies.
func (l *Layout) TotalPages() int64 {
	total := l.base[len(l.base)-1]
	if total == 0 {
		return 0
	}
	return (total-1)/int64(l.entriesPerPage) + 1
}

// Tracker combines the SILC block layout and the adjacency layout behind one
// buffer pool with disjoint page-id spaces. A nil *Tracker is valid and
// counts nothing (the pure in-memory configuration).
type Tracker struct {
	cache       *Cache
	blocks      *Layout
	adjacency   *Layout
	adjBase     PageID
	fraction    float64
	missLatency time.Duration
}

// NewTracker builds a tracker for a database whose per-vertex SILC block
// counts and adjacency degrees are given. cacheFraction sizes the LRU pool
// as a fraction of total pages (the paper: 0.05).
func NewTracker(blockCounts, degrees []int, cacheFraction float64, missLatency time.Duration) *Tracker {
	blocks := NewLayout(blockCounts, 16, DefaultPageSize)
	adjacency := NewLayout(degrees, AdjacencyEntrySize, DefaultPageSize)
	total := blocks.TotalPages() + adjacency.TotalPages()
	capacity := int(float64(total) * cacheFraction)
	if missLatency <= 0 {
		missLatency = DefaultMissLatency
	}
	return &Tracker{
		cache:       NewCache(capacity),
		blocks:      blocks,
		adjacency:   adjacency,
		adjBase:     PageID(blocks.TotalPages()),
		fraction:    cacheFraction,
		missLatency: missLatency,
	}
}

// SetScope resizes the buffer pool for the database an algorithm actually
// runs against, starting it cold. The SILC-driven algorithms page the block
// store plus the network; the graph-expansion baselines (INE, IER) carry no
// SILC store, so their pool is the cache fraction of the network pages
// alone — sizing their pool by someone else's index would hand them an
// effectively unbounded cache.
func (t *Tracker) SetScope(networkOnly bool) {
	if t == nil {
		return
	}
	total := t.adjacency.TotalPages()
	if !networkOnly {
		total += t.blocks.TotalPages()
	}
	t.cache = NewCache(int(float64(total) * t.fraction))
}

// TouchBlock records an access to block entryIdx of vertex v's quadtree.
func (t *Tracker) TouchBlock(v, entryIdx int) {
	if t == nil {
		return
	}
	t.cache.Touch(t.blocks.Page(v, entryIdx))
}

// TouchAdjacency records an access to vertex v's adjacency list (INE/IER
// expansion step). Lists rarely straddle pages; the first page is charged.
func (t *Tracker) TouchAdjacency(v int) {
	if t == nil {
		return
	}
	first, _, ok := t.adjacency.OwnerPages(v)
	if !ok {
		return
	}
	t.cache.Touch(t.adjBase + first)
}

// Stats returns the pool counters (zero for a nil tracker).
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return t.cache.Stats()
}

// ResetStats zeroes the counters, keeping cache contents warm (queries in a
// batch share the pool, as in the paper's repeated-query setup).
func (t *Tracker) ResetStats() {
	if t != nil {
		t.cache.ResetStats()
	}
}

// ClearCache evicts all pages and zeroes the counters — the cold-start state
// at the beginning of one algorithm's query batch.
func (t *Tracker) ClearCache() {
	if t != nil {
		t.cache.Clear()
	}
}

// MissLatency returns the modeled per-miss latency (the default for a nil
// tracker).
func (t *Tracker) MissLatency() time.Duration {
	if t == nil {
		return DefaultMissLatency
	}
	return t.missLatency
}

// ModeledIOTime converts current miss counts into modeled I/O time.
func (t *Tracker) ModeledIOTime() time.Duration {
	if t == nil {
		return 0
	}
	return t.cache.Stats().ModeledIOTime(t.missLatency)
}

// TotalPages returns the page count across both layouts.
func (t *Tracker) TotalPages() int64 {
	if t == nil {
		return 0
	}
	return t.blocks.TotalPages() + t.adjacency.TotalPages()
}
